#!/usr/bin/env python3
"""Driver for the in-tree vod-* clang-tidy plugin (tools/vod_tidy).

Two modes, mirroring scripts/lint_determinism.py:

  --self-test   Runs the plugin over tools/vod_tidy/fixtures/*.cc and
                compares the emitted vod-* warnings against the
                `// LINT-EXPECT: <check>` markers in each fixture,
                requiring an exact (file, line, check) match in both
                directions, plus every check exercised by at least one
                positive AND one negative fixture.

  tree scan     Runs the plugin over every src/ translation unit in
                compile_commands.json and fails on any vod-* finding.
                The tree is expected to be clean: true violations get
                fixed, deliberate exceptions go in the per-check
                ApprovedFiles option (set in the check's defaults).

Exit status: 0 clean, 1 findings/self-test mismatch, 2 usage/environment.

The plugin must already be built (the vod_tidy_checks CMake target; CI
builds it against the clang-tools-extra headers matching the pinned
clang-tidy). This script never builds anything.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE_DIR = REPO_ROOT / "tools" / "vod_tidy" / "fixtures"

ALL_CHECKS = (
    "vod-raw-slot-modulo",
    "vod-macro-side-effects",
    "vod-rng-discipline",
    "vod-float-slot-accumulation",
    "vod-nested-vector-hot-path",
)

EXPECT_RE = re.compile(r"//\s*LINT-EXPECT:\s*([a-z0-9-]+)")
# clang-tidy finding lines: "<file>:<line>:<col>: warning: <msg> [<check>]"
FINDING_RE = re.compile(
    r"^(?P<file>[^:\s][^:]*):(?P<line>\d+):\d+:\s+warning:\s.*\[(?P<check>[^\]]+)\]\s*$"
)


def fail(msg: str) -> None:
    print(f"run_vod_tidy: {msg}", file=sys.stderr)


def run_clang_tidy(clang_tidy: str, plugin: str, source: Path,
                   extra_args: list[str]) -> tuple[list[tuple[str, int, str]], str, int]:
    """Runs clang-tidy on one TU; returns (vod findings, raw output, rc)."""
    cmd = [
        clang_tidy,
        f"--load={plugin}",
        "--checks=-*,vod-*",
        "--quiet",
        str(source),
    ] + extra_args
    proc = subprocess.run(cmd, capture_output=True, text=True)
    findings = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if not m:
            continue
        check = m.group("check")
        if not check.startswith("vod-"):
            continue
        findings.append((os.path.realpath(m.group("file")),
                         int(m.group("line")), check))
    return findings, proc.stdout + proc.stderr, proc.returncode


def expected_markers(source: Path) -> list[tuple[str, int, str]]:
    out = []
    for lineno, line in enumerate(source.read_text().splitlines(), start=1):
        for m in EXPECT_RE.finditer(line):
            out.append((str(source.resolve()), lineno, m.group(1)))
    return out


def self_test(clang_tidy: str, plugin: str) -> int:
    fixtures = sorted(FIXTURE_DIR.glob("*.cc"))
    if not fixtures:
        fail(f"no fixtures under {FIXTURE_DIR}")
        return 2
    ok = True
    exercised_positive: set[str] = set()
    exercised_negative: set[str] = set()
    for fixture in fixtures:
        expected = set(expected_markers(fixture))
        findings, raw, rc = run_clang_tidy(
            clang_tidy, plugin, fixture, ["--", "-std=c++20"])
        if "error:" in raw:
            fail(f"{fixture.name}: fixture failed to compile (rc={rc}):\n{raw}")
            ok = False
            continue
        got = set(findings)
        for miss in sorted(expected - got):
            fail(f"{fixture.name}:{miss[1]}: expected {miss[2]}, not emitted")
            ok = False
        for extra in sorted(got - expected):
            fail(f"{fixture.name}:{extra[1]}: unexpected {extra[2]}")
            ok = False
        checks_here = {c for (_, _, c) in expected}
        exercised_positive |= checks_here
        # A clean fixture for check X is one named after X with no markers.
        if not expected:
            for check in ALL_CHECKS:
                if check.replace("vod-", "").replace("-", "_") in fixture.name:
                    exercised_negative.add(check)
        status = "ok" if expected == got else "MISMATCH"
        print(f"  {fixture.name}: {len(got)} finding(s), "
              f"{len(expected)} expected -- {status}")
    for check in ALL_CHECKS:
        if check not in exercised_positive:
            fail(f"no positive fixture exercises {check}")
            ok = False
        if check not in exercised_negative:
            fail(f"no negative (clean) fixture exercises {check}")
            ok = False
    if ok:
        print(f"self-test: {len(fixtures)} fixtures, "
              f"all {len(ALL_CHECKS)} checks exercised both ways")
    return 0 if ok else 1


def tree_scan(clang_tidy: str, plugin: str, build_dir: Path,
              jobs: int) -> int:
    db_path = build_dir / "compile_commands.json"
    if not db_path.exists():
        fail(f"{db_path} not found (configure with "
             "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)")
        return 2
    database = json.loads(db_path.read_text())
    src_root = str(REPO_ROOT / "src") + os.sep
    sources = sorted({
        os.path.realpath(os.path.join(entry["directory"], entry["file"]))
        for entry in database
        if os.path.realpath(os.path.join(entry["directory"],
                                        entry["file"])).startswith(src_root)
    })
    if not sources:
        fail("compile_commands.json lists no src/ translation units")
        return 2

    all_findings: list[tuple[str, int, str]] = []
    hard_errors: list[str] = []

    def scan(source: str):
        return run_clang_tidy(clang_tidy, plugin, Path(source),
                              ["-p", str(build_dir)])

    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        for source, (findings, raw, rc) in zip(
                sources, pool.map(scan, sources)):
            if rc != 0 and "error:" in raw:
                hard_errors.append(f"{source}: clang-tidy failed:\n{raw}")
            all_findings.extend(findings)

    for err in hard_errors:
        fail(err)
    for path, line, check in sorted(set(all_findings)):
        rel = os.path.relpath(path, REPO_ROOT)
        print(f"{rel}:{line}: {check}")
    if all_findings or hard_errors:
        fail(f"{len(set(all_findings))} finding(s) across "
             f"{len(sources)} translation units")
        return 1
    print(f"tree scan: {len(sources)} src/ translation units, 0 findings")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clang-tidy", default="clang-tidy",
                        help="clang-tidy binary (must match the headers the "
                             "plugin was built against)")
    parser.add_argument("--plugin", required=True,
                        help="path to libvod_tidy_checks.so")
    parser.add_argument("--build-dir", type=Path,
                        default=REPO_ROOT / "build",
                        help="build tree with compile_commands.json")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture self-test instead of the "
                             "tree scan")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 4)
    args = parser.parse_args()

    if not Path(args.plugin).exists():
        fail(f"plugin not found: {args.plugin}")
        return 2
    if args.self_test:
        return self_test(args.clang_tidy, args.plugin)
    return tree_scan(args.clang_tidy, args.plugin, args.build_dir, args.jobs)


if __name__ == "__main__":
    sys.exit(main())
