#!/usr/bin/env python3
"""Well-formedness checker for the observability exporters' outputs.

Validates files produced by --trace-out / --metrics-out (vodsim and the
bench binaries) and fails (exit 1) on the first malformed construct, so CI
catches exporter drift with real end-to-end artifacts instead of unit
fixtures. Dispatch is by extension:

* .json  — Chrome trace-event JSON (chrome://tracing, Perfetto). Checks
  the top-level envelope, the process-name metadata for the two clock
  domains (pid 1 slot time, pid 2 wall clock), and every event's phase,
  timestamps, and args. Slot-domain timestamps must be whole slots
  (integer microseconds, 1 slot = 1000 us).
* .prom  — Prometheus text exposition. Checks name charset, that every
  sample belongs to a preceding # TYPE family, and histogram coherence:
  increasing le edges, non-decreasing cumulative buckets, a final +Inf
  bucket equal to _count, and a _sum sample.
* .jsonl — metric snapshots, one JSON object per line. Checks the
  self-describing schema and that histogram bin sums equal counts.

Usage:
  scripts/validate_trace.py FILE [FILE...]
"""

import json
import re
import sys

PROM_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
PROM_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$")
PROM_TYPE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(?P<kind>counter|gauge|histogram|summary|untyped)$")


def fail(path, msg):
    sys.exit(f"{path}: {msg}")


def validate_chrome_trace(path):
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(path, f"invalid JSON: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(path, "missing traceEvents envelope")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(path, "traceEvents empty or not an array")
    if doc.get("displayTimeUnit") != "ms":
        fail(path, "displayTimeUnit must be 'ms'")

    named_pids = {}
    counts = {"X": 0, "i": 0, "C": 0, "M": 0}
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            fail(path, f"{where}: not an object")
        ph = e.get("ph")
        if ph not in counts:
            fail(path, f"{where}: unknown phase {ph!r}")
        counts[ph] += 1
        if not isinstance(e.get("name"), str) or not e["name"]:
            fail(path, f"{where}: missing event name")
        if not isinstance(e.get("pid"), int):
            fail(path, f"{where}: missing integer pid")
        if ph == "M":
            if e["name"] == "process_name":
                named_pids[e["pid"]] = e.get("args", {}).get("name")
            continue
        if e["pid"] not in (1, 2):
            fail(path, f"{where}: pid {e['pid']} is neither slot (1) nor "
                       "wall (2)")
        if not isinstance(e.get("cat"), str) or not e["cat"]:
            fail(path, f"{where}: missing category")
        if not isinstance(e.get("tid"), int) or e["tid"] < 0:
            fail(path, f"{where}: missing non-negative tid")
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(path, f"{where}: missing non-negative ts")
        if e["pid"] == 1 and (not isinstance(ts, int) or ts % 1000 != 0):
            fail(path, f"{where}: slot-domain ts {ts!r} is not a whole slot")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(path, f"{where}: complete event without dur")
        if ph == "i" and e.get("s") not in ("t", "p", "g"):
            fail(path, f"{where}: instant event without scope")
        if ph == "C":
            args = e.get("args")
            if not isinstance(args, dict) or not args:
                fail(path, f"{where}: counter event without args")
        for k, v in e.get("args", {}).items():
            if not isinstance(k, str) or not isinstance(v, (int, float)):
                fail(path, f"{where}: non-numeric arg {k!r}")

    for pid in (1, 2):
        if pid not in named_pids:
            fail(path, f"no process_name metadata for pid {pid}")
    dropped = doc.get("otherData", {}).get("droppedEvents")
    print(f"{path}: ok — {counts['X']} spans, {counts['i']} instants, "
          f"{counts['C']} counter samples, {counts['M']} metadata, "
          f"dropped={dropped}")


def validate_prometheus(path):
    with open(path, "r", encoding="utf-8") as f:
        lines = f.read().splitlines()
    types = {}           # family -> kind
    samples = []         # (lineno, name, labels, value)
    for no, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith("# HELP "):
                continue
            m = PROM_TYPE.match(line)
            if m is None:
                fail(path, f"line {no}: malformed comment {line!r}")
            if m["name"] in types:
                fail(path, f"line {no}: duplicate # TYPE for {m['name']}")
            types[m["name"]] = m["kind"]
            continue
        m = PROM_SAMPLE.match(line)
        if m is None:
            fail(path, f"line {no}: malformed sample {line!r}")
        try:
            value = float(m["value"])
        except ValueError:
            fail(path, f"line {no}: non-numeric value {m['value']!r}")
        samples.append((no, m["name"], m["labels"], value))
    if not samples:
        fail(path, "no samples")

    # Group histogram series under their family name.
    hist_parts = {}
    for no, name, labels, value in samples:
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in types:
                family = name[:-len(suffix)]
                break
        if family not in types:
            fail(path, f"line {no}: sample {name} has no # TYPE declaration")
        kind = types[family]
        if kind == "histogram":
            part = name[len(family):] or "_value"
            hist_parts.setdefault(family, []).append(
                (no, part, labels, value))
        else:
            if labels:
                fail(path, f"line {no}: unexpected labels on {kind} sample")
            if kind == "counter" and value < 0:
                fail(path, f"line {no}: negative counter {name}")

    for family, kind in types.items():
        if kind != "histogram":
            continue
        parts = hist_parts.get(family)
        if parts is None:
            fail(path, f"histogram {family} declared but has no series")
        buckets, total_sum, total_count = [], None, None
        for no, part, labels, value in parts:
            if part == "_bucket":
                m = re.match(r'^le="([^"]+)"$', labels or "")
                if m is None:
                    fail(path, f"line {no}: bucket of {family} without le")
                le = float("inf") if m[1] == "+Inf" else float(m[1])
                buckets.append((no, le, value))
            elif part == "_sum":
                total_sum = value
            elif part == "_count":
                total_count = value
            else:
                fail(path, f"line {no}: unexpected histogram series "
                           f"{family}{part}")
        if total_sum is None or total_count is None:
            fail(path, f"histogram {family}: missing _sum or _count")
        if not buckets or buckets[-1][1] != float("inf"):
            fail(path, f"histogram {family}: buckets must end with le=+Inf")
        prev_le, prev_cum = float("-inf"), 0.0
        for no, le, cum in buckets:
            if le <= prev_le:
                fail(path, f"line {no}: le edges of {family} not increasing")
            if cum < prev_cum:
                fail(path, f"line {no}: buckets of {family} not cumulative")
            prev_le, prev_cum = le, cum
        if buckets[-1][2] != total_count:
            fail(path, f"histogram {family}: +Inf bucket "
                       f"{buckets[-1][2]} != _count {total_count}")

    kinds = sorted(types.values())
    print(f"{path}: ok — {len(samples)} samples in {len(types)} families "
          f"({', '.join(f'{kinds.count(k)} {k}' for k in dict.fromkeys(kinds))})")


def validate_jsonl(path):
    with open(path, "r", encoding="utf-8") as f:
        lines = f.read().splitlines()
    n = 0
    for no, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            fail(path, f"line {no}: invalid JSON: {e}")
        kind = obj.get("kind")
        if kind in ("counter", "gauge"):
            if not isinstance(obj.get("name"), str) or "value" not in obj:
                fail(path, f"line {no}: malformed {kind} snapshot")
        elif kind == "histogram":
            for key in ("name", "count", "sum", "lo", "bin_width", "bins"):
                if key not in obj:
                    fail(path, f"line {no}: histogram missing {key!r}")
            if sum(obj["bins"]) != obj["count"]:
                fail(path, f"line {no}: histogram bins sum "
                           f"{sum(obj['bins'])} != count {obj['count']}")
        else:
            fail(path, f"line {no}: unknown metric kind {kind!r}")
        n += 1
    if n == 0:
        fail(path, "no metric snapshots")
    print(f"{path}: ok — {n} metric snapshots")


def main(argv):
    if len(argv) < 2:
        sys.exit(__doc__)
    for path in argv[1:]:
        if path.endswith(".prom"):
            validate_prometheus(path)
        elif path.endswith(".jsonl"):
            validate_jsonl(path)
        elif path.endswith(".json"):
            validate_chrome_trace(path)
        else:
            fail(path, "unknown extension (expected .json/.prom/.jsonl)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
