#!/usr/bin/env python3
"""Regression guard for the committed benchmark records.

Dispatches on the JSON "benchmark" tag of the two input files:

admission_throughput — compares a fresh BENCH_admission.json against the
committed baseline and fails (exit 1) when the fast admission path
regressed. Two metrics, two thresholds:

* work_ratio (naive work-units-per-request / fast work-units-per-request),
  guarded tightly (default 20% max drop). Both sides are deterministic
  counters over a fixed-length trace, so the ratio is bit-reproducible on
  every machine: it moves if and only if the algorithm itself changed
  (e.g. the placement index or same-slot coalescing stopped engaging).
  Any drop beyond the threshold is a real regression, never runner noise.

* speedup (fast wall-clock requests/sec / naive requests/sec of the same
  binary on the same machine), guarded loosely (default 50% max drop).
  The ratio cancels absolute machine speed but still jitters on shared CI
  runners; the loose bound catches gross constant-factor regressions
  (e.g. an accidentally quadratic index update) without flaking.

observability_overhead — guards the instrumentation layer's two promises
(DESIGN.md §10). Checks applied to BENCH_observability.json pairs:

* determinism: both runs must report bit_identical_across_sinks, and the
  per-point FNV checksums must match exactly between the two files. The
  checksums are deterministic functions of the admission algorithm on a
  fixed trace, so this holds across machines AND across VOD_OBSERVE
  build modes — tracing on, off, or compiled out must never change what
  the simulation does.

* event volume: trace events recorded over the fixed-length identity run
  must stay O(slots), not O(requests) — at most a few events per slot.
  This is the deterministic half of the overhead budget: it proves no
  per-request instrumentation crept into the admission inner loop, and it
  is bit-reproducible everywhere.

* overhead: when exactly one of the two files comes from a VOD_OBSERVE=OFF
  build ("observe_compiled": false), the ON build's nosink requests/sec
  must be within --max-overhead (default 2%) of the OFF build's — the
  disabled-instrumentation budget, measured on the same machine. Either
  side may be a comma-separated list of result files from alternating
  invocations ("on1.json,on2.json,on3.json"); per-point throughputs then
  merge best-of, which is how a wall-clock budget this tight survives
  shared-runner noise (single invocations jitter by ±10%, the best of a
  few alternated runs by ~1%). Checksums must agree across every listed
  file. When both sides are ON builds (baseline vs fresh), the in-binary
  metrics/full sink overheads are guarded by a loose absolute cap
  (--max-sink-overhead, default 50%) that catches gross hot-path
  regressions without flaking.

adaptive_switching — guards the per-video protocol-switching controller
(DESIGN.md §13). Checks applied to BENCH_adaptive.json pairs:

* invariants, re-checked from BOTH files: the migration gap audit must be
  clean (gap_violations == 0 on every point) and the adaptive engine run
  must be bit-identical across every recorded thread count.

* policy quality, per point: frontier_ratio (adaptive provisioned
  bandwidth over the per-video best static pin) must stay at or below
  --max-frontier-ratio (default 1.05), and worst_pin_ratio (adaptive over
  the worst uniform pin) at or below --max-worst-pin-ratio (default 0.80).
  Both sides are deterministic window-peak means over a fixed seed, so
  any breach is a real controller regression, never runner noise.

* determinism: the per-point FNV checksums (folded over every per-video
  provisioned/request/switch figure) must match exactly between the two
  files on shared points — the smoke point reruns the committed mid
  workload in full, so CI replays it bit-for-bit.

multi_video_scale — guards the sharded multi-video engine and the
data-oriented slot kernel under it (DESIGN.md §14). Checks applied to
BENCH_multi_video.json pairs:

* determinism, re-checked from BOTH files: every point must be
  bit-identical across its recorded thread counts, and the per-point FNV
  checksums (folded over requests, measured slots, and every per-slot /
  per-video aggregate) must match exactly between the two files on shared
  (catalog, threads) points. The checksums are deterministic functions of
  the workload on a fixed seed, so any divergence means the slab kernel,
  the coalesced admission path, or the shard merge changed semantics —
  never runner noise.

* throughput: slots/sec per shared point is guarded by a loose wall-clock
  threshold (--max-drop-speedup, default 50%) that catches gross
  constant-factor regressions (an accidental re-layout per slot, a lost
  zero-allocation path) without flaking on shared runners.

Only points present in BOTH inputs (matched on (segments, arrivals_per_slot)
for the admission/observability/adaptive records, on (catalog, threads) for
multi_video_scale) are compared, so a smoke run's subset checks cleanly
against the committed full-grid baseline.

Usage:
  scripts/bench_compare.py BASELINE CURRENT
                           [--max-drop 0.20] [--max-drop-speedup 0.50]
                           [--max-overhead 0.02] [--max-sink-overhead 0.50]
                           [--max-frontier-ratio 1.05]
                           [--max-worst-pin-ratio 0.80]
"""

import argparse
import json
import sys

KNOWN = ("admission_throughput", "observability_overhead",
         "adaptive_switching", "multi_video_scale")

# Ceiling on trace events per slot of the identity run. The instrumented
# paths emit a constant handful per slot/batch (streams counter, one
# admission outcome, one coalescing record); anything near the arrival
# rate means a macro landed in the per-request inner loop.
MAX_EVENTS_PER_SLOT = 8.0

# Best-of merge across alternating invocations; overheads are recomputed
# from the merged throughputs.
RPS_FIELDS = ("nosink_rps", "metrics_rps", "full_rps")


def load_one(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("benchmark") not in KNOWN:
        sys.exit(f"{path}: unknown benchmark tag {doc.get('benchmark')!r}")
    points = {}
    for p in doc.get("points", []):
        if doc["benchmark"] == "multi_video_scale":
            key = (int(p["catalog"]), int(p["threads"]))
        else:
            key = (int(p["segments"]), float(p["arrivals_per_slot"]))
        points[key] = p
    if not points:
        sys.exit(f"{path}: no benchmark points")
    return doc, points


def load_points(arg):
    """Loads one file, or merges a comma-separated list best-of."""
    paths = [p for p in arg.split(",") if p]
    doc, points = load_one(paths[0])
    for path in paths[1:]:
        if doc["benchmark"] != "observability_overhead":
            sys.exit(f"{arg}: file lists are only supported for "
                     "observability_overhead records")
        more_doc, more = load_one(path)
        if more_doc.get("observe_compiled") != doc.get("observe_compiled"):
            sys.exit(f"{path}: observe_compiled differs within one list")
        doc["bit_identical_across_sinks"] = (
            doc.get("bit_identical_across_sinks", True)
            and more_doc.get("bit_identical_across_sinks", True))
        for key, p in more.items():
            if key not in points:
                points[key] = p
                continue
            have = points[key]
            if int(have["checksum"]) != int(p["checksum"]):
                sys.exit(f"{path}: checksum diverges at {key} within the "
                         "file list — runs are not deterministic")
            have["identical"] = (have.get("identical", True)
                                 and p.get("identical", True))
            for field in RPS_FIELDS:
                have[field] = max(float(have[field]), float(p[field]))
    if len(paths) > 1:
        for p in points.values():
            nosink = float(p["nosink_rps"])
            p["metrics_overhead"] = 1.0 - float(p["metrics_rps"]) / nosink
            p["full_overhead"] = 1.0 - float(p["full_rps"]) / nosink
    return doc, points


def compare_metric(name, base, cur, shared, max_drop):
    failures = []
    print(f"metric {name}: max tolerated drop {max_drop:.0%}")
    for key in shared:
        if name not in base[key] or name not in cur[key]:
            print(f"  segments={key[0]:>5} rate={key[1]:>6.2f}  (missing)")
            continue
        want = float(base[key][name])
        got = float(cur[key][name])
        drop = 0.0 if want <= 0 else (want - got) / want
        status = "ok"
        if drop > max_drop:
            status = "REGRESSION"
            failures.append(key)
        print(f"  segments={key[0]:>5} rate={key[1]:>6.2f}  "
              f"baseline={want:10.3f}  current={got:10.3f}  "
              f"drop={drop:+7.1%}  {status}")
    return failures


def compare_admission(base_doc, base, cur_doc, cur, shared, args):
    del base_doc  # baseline identity was checked when it was committed
    if not cur_doc.get("bit_identical_fast_vs_naive", True):
        sys.exit("current run: fast vs naive modes diverged")
    for key, p in cur.items():
        if not p.get("identical", True):
            sys.exit(f"current run: modes diverged at {key}")

    failures = compare_metric("work_ratio", base, cur, shared, args.max_drop)
    failures += compare_metric("speedup", base, cur, shared,
                               args.max_drop_speedup)
    return failures


def compare_observability(base_doc, base, cur_doc, cur, shared, args):
    for path_doc, points, label in ((base_doc, base, "baseline"),
                                    (cur_doc, cur, "current")):
        if not path_doc.get("bit_identical_across_sinks", True):
            sys.exit(f"{label} run: sink modes diverged")
        for key, p in points.items():
            if not p.get("identical", True):
                sys.exit(f"{label} run: sink modes diverged at {key}")

    failures = []
    print("determinism: per-point checksums must match exactly")
    for key in shared:
        want = int(base[key]["checksum"])
        got = int(cur[key]["checksum"])
        status = "ok" if want == got else "DIVERGED"
        if want != got:
            failures.append(key)
        print(f"  segments={key[0]:>5} rate={key[1]:>6.2f}  "
              f"baseline={want:20d}  current={got:20d}  {status}")

    print(f"event volume: at most {MAX_EVENTS_PER_SLOT:.0f} trace events "
          "per identity slot")
    for doc, points, label in ((base_doc, base, "baseline"),
                               (cur_doc, cur, "current")):
        slots = float(doc.get("identity_slots", 0))
        if slots <= 0 or not doc.get("observe_compiled", True):
            continue  # OFF builds record no events
        for key in sorted(points):
            per_slot = float(points[key].get("trace_events", 0)) / slots
            status = "ok"
            if per_slot > MAX_EVENTS_PER_SLOT:
                status = "PER-REQUEST INSTRUMENTATION?"
                failures.append(key)
            print(f"  {label:>8} segments={key[0]:>5} rate={key[1]:>6.2f}  "
                  f"{per_slot:6.2f} events/slot  {status}")

    base_on = bool(base_doc.get("observe_compiled", True))
    cur_on = bool(cur_doc.get("observe_compiled", True))
    if base_on != cur_on:
        # Paired ON vs OFF builds, same machine: the disabled-
        # instrumentation budget. Overhead is what the ON build loses.
        on, off = (base, cur) if base_on else (cur, base)
        print(f"overhead: ON-build nosink throughput within "
              f"{args.max_overhead:.1%} of the OFF build")
        for key in shared:
            on_rps = float(on[key]["nosink_rps"])
            off_rps = float(off[key]["nosink_rps"])
            loss = 0.0 if off_rps <= 0 else 1.0 - on_rps / off_rps
            status = "ok"
            if loss > args.max_overhead:
                status = "OVER BUDGET"
                failures.append(key)
            print(f"  segments={key[0]:>5} rate={key[1]:>6.2f}  "
                  f"off={off_rps:12.1f} req/s  on={on_rps:12.1f} req/s  "
                  f"overhead={loss:+7.2%}  {status}")
    else:
        print(f"overhead: in-binary sink overheads capped at "
              f"{args.max_sink_overhead:.0%} (both files are "
              f"{'ON' if cur_on else 'OFF'} builds)")
        for key in shared:
            for name in ("metrics_overhead", "full_overhead"):
                got = float(cur[key][name])
                status = "ok"
                if got > args.max_sink_overhead:
                    status = "OVER BUDGET"
                    failures.append(key)
                print(f"  segments={key[0]:>5} rate={key[1]:>6.2f}  "
                      f"{name}={got:+7.2%}  {status}")
    return failures


def compare_adaptive(base_doc, base, cur_doc, cur, shared, args):
    for doc, points, label in ((base_doc, base, "baseline"),
                               (cur_doc, cur, "current")):
        if not doc.get("bit_identical_across_threads", True):
            sys.exit(f"{label} run: thread counts diverged")
        if not doc.get("gap_free", True):
            sys.exit(f"{label} run: migration gap audit failed")
        for key, p in points.items():
            if not p.get("bit_identical", True):
                sys.exit(f"{label} run: thread counts diverged at {key}")
            if int(p.get("gap_violations", 0)) != 0:
                sys.exit(f"{label} run: playback gaps at {key}")
            if int(p.get("gap_transitions", 1)) == 0:
                sys.exit(f"{label} run: gap audit saw no transitions at "
                         f"{key} — the controller is inert")

    failures = []
    print(f"policy quality: frontier ratio <= {args.max_frontier_ratio:.2f}, "
          f"worst-pin ratio <= {args.max_worst_pin_ratio:.2f}")
    for points, label in ((base, "baseline"), (cur, "current")):
        for key in sorted(points):
            frontier = float(points[key]["frontier_ratio"])
            worst = float(points[key]["worst_pin_ratio"])
            status = "ok"
            if frontier > args.max_frontier_ratio:
                status = "ABOVE FRONTIER BUDGET"
                failures.append(key)
            if worst > args.max_worst_pin_ratio:
                status = "TOO CLOSE TO WORST PIN"
                failures.append(key)
            print(f"  {label:>8} segments={key[0]:>5} rate={key[1]:>6.2f}  "
                  f"frontier={frontier:6.3f}  worst-pin={worst:6.3f}  "
                  f"{status}")

    print("determinism: per-point checksums must match exactly")
    for key in shared:
        want = int(base[key]["checksum"])
        got = int(cur[key]["checksum"])
        status = "ok" if want == got else "DIVERGED"
        if want != got:
            failures.append(key)
        print(f"  segments={key[0]:>5} rate={key[1]:>6.2f}  "
              f"baseline={want:20d}  current={got:20d}  {status}")
    return failures


def compare_multi_video(base_doc, base, cur_doc, cur, shared, args):
    for doc, points, label in ((base_doc, base, "baseline"),
                               (cur_doc, cur, "current")):
        if not doc.get("bit_identical_across_threads", True):
            sys.exit(f"{label} run: thread counts diverged")
        for key, p in points.items():
            if not p.get("identical", True):
                sys.exit(f"{label} run: thread counts diverged at {key}")

    failures = []
    print("determinism: per-point checksums must match exactly")
    for key in shared:
        want = int(base[key]["checksum"])
        got = int(cur[key]["checksum"])
        status = "ok" if want == got else "DIVERGED"
        if want != got:
            failures.append(key)
        print(f"  catalog={key[0]:>6} threads={key[1]:>2}  "
              f"baseline={want:20d}  current={got:20d}  {status}")

    print(f"throughput: slots/sec drop capped at "
          f"{args.max_drop_speedup:.0%} (loose wall-clock guard)")
    for key in shared:
        want = float(base[key]["slots_per_sec"])
        got = float(cur[key]["slots_per_sec"])
        drop = 0.0 if want <= 0 else (want - got) / want
        status = "ok"
        if drop > args.max_drop_speedup:
            status = "REGRESSION"
            failures.append(key)
        print(f"  catalog={key[0]:>6} threads={key[1]:>2}  "
              f"baseline={want:14.1f}  current={got:14.1f}  "
              f"drop={drop:+7.1%}  {status}")
    return failures


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline", help="committed BENCH_*.json")
    ap.add_argument("current", help="freshly produced BENCH_*.json")
    ap.add_argument(
        "--max-drop",
        type=float,
        default=0.20,
        help="max fractional drop of the deterministic work_ratio (0.20)",
    )
    ap.add_argument(
        "--max-drop-speedup",
        type=float,
        default=0.50,
        help="max fractional drop of the wall-clock speedup (0.50)",
    )
    ap.add_argument(
        "--max-overhead",
        type=float,
        default=0.02,
        help="disabled-instrumentation budget: max throughput the "
             "VOD_OBSERVE=ON build may lose vs the OFF build (0.02)",
    )
    ap.add_argument(
        "--max-sink-overhead",
        type=float,
        default=0.50,
        help="loose cap on the in-binary metrics/full sink overheads (0.50)",
    )
    ap.add_argument(
        "--max-frontier-ratio",
        type=float,
        default=1.05,
        help="adaptive provisioned bandwidth over the per-video best "
             "static pin (1.05)",
    )
    ap.add_argument(
        "--max-worst-pin-ratio",
        type=float,
        default=0.80,
        help="adaptive provisioned bandwidth over the worst uniform "
             "pin (0.80)",
    )
    args = ap.parse_args()

    base_doc, base = load_points(args.baseline)
    cur_doc, cur = load_points(args.current)
    if base_doc["benchmark"] != cur_doc["benchmark"]:
        sys.exit(f"benchmark mismatch: {base_doc['benchmark']} vs "
                 f"{cur_doc['benchmark']}")

    shared = sorted(set(base) & set(cur))
    if not shared:
        sys.exit("no common (segments, arrivals_per_slot) points to compare")
    print(f"comparing {len(shared)} common point(s) "
          f"[{base_doc['benchmark']}]")

    if base_doc["benchmark"] == "admission_throughput":
        failures = compare_admission(base_doc, base, cur_doc, cur, shared,
                                     args)
    elif base_doc["benchmark"] == "adaptive_switching":
        failures = compare_adaptive(base_doc, base, cur_doc, cur, shared,
                                    args)
    elif base_doc["benchmark"] == "multi_video_scale":
        failures = compare_multi_video(base_doc, base, cur_doc, cur, shared,
                                       args)
    else:
        failures = compare_observability(base_doc, base, cur_doc, cur,
                                         shared, args)

    if failures:
        failures = sorted(set(failures))
        print(f"FAIL: {len(failures)} regressed point(s): {failures}")
        return 1
    print("PASS: no regression beyond thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
