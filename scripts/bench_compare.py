#!/usr/bin/env python3
"""Regression guard for the admission-throughput benchmark.

Compares a fresh BENCH_admission.json against the committed baseline and
fails (exit 1) when the fast admission path regressed. Two metrics, two
thresholds:

* work_ratio (naive work-units-per-request / fast work-units-per-request),
  guarded tightly (default 20% max drop). Both sides are deterministic
  counters over a fixed-length trace, so the ratio is bit-reproducible on
  every machine: it moves if and only if the algorithm itself changed
  (e.g. the placement index or same-slot coalescing stopped engaging).
  Any drop beyond the threshold is a real regression, never runner noise.

* speedup (fast wall-clock requests/sec / naive requests/sec of the same
  binary on the same machine), guarded loosely (default 50% max drop).
  The ratio cancels absolute machine speed but still jitters on shared CI
  runners; the loose bound catches gross constant-factor regressions
  (e.g. an accidentally quadratic index update) without flaking.

Only points present in BOTH files (matched on (segments, arrivals_per_slot))
are compared, so a smoke run's subset checks cleanly against the committed
full-grid baseline.

Usage:
  scripts/bench_compare.py BASELINE CURRENT
                           [--max-drop 0.20] [--max-drop-speedup 0.50]
"""

import argparse
import json
import sys


def load_points(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("benchmark") != "admission_throughput":
        sys.exit(f"{path}: not an admission_throughput record")
    points = {}
    for p in doc.get("points", []):
        key = (int(p["segments"]), float(p["arrivals_per_slot"]))
        points[key] = p
    if not points:
        sys.exit(f"{path}: no benchmark points")
    return doc, points


def compare_metric(name, base, cur, shared, max_drop):
    failures = []
    print(f"metric {name}: max tolerated drop {max_drop:.0%}")
    for key in shared:
        if name not in base[key] or name not in cur[key]:
            print(f"  segments={key[0]:>5} rate={key[1]:>6.2f}  (missing)")
            continue
        want = float(base[key][name])
        got = float(cur[key][name])
        drop = 0.0 if want <= 0 else (want - got) / want
        status = "ok"
        if drop > max_drop:
            status = "REGRESSION"
            failures.append(key)
        print(f"  segments={key[0]:>5} rate={key[1]:>6.2f}  "
              f"baseline={want:10.3f}  current={got:10.3f}  "
              f"drop={drop:+7.1%}  {status}")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed BENCH_admission.json")
    ap.add_argument("current", help="freshly produced BENCH_admission.json")
    ap.add_argument(
        "--max-drop",
        type=float,
        default=0.20,
        help="max fractional drop of the deterministic work_ratio (0.20)",
    )
    ap.add_argument(
        "--max-drop-speedup",
        type=float,
        default=0.50,
        help="max fractional drop of the wall-clock speedup (0.50)",
    )
    args = ap.parse_args()

    base_doc, base = load_points(args.baseline)
    cur_doc, cur = load_points(args.current)

    if not cur_doc.get("bit_identical_fast_vs_naive", True):
        sys.exit("current run: fast vs naive modes diverged")
    for key, p in cur.items():
        if not p.get("identical", True):
            sys.exit(f"current run: modes diverged at {key}")

    shared = sorted(set(base) & set(cur))
    if not shared:
        sys.exit("no common (segments, arrivals_per_slot) points to compare")
    print(f"comparing {len(shared)} common point(s)")

    failures = compare_metric("work_ratio", base, cur, shared, args.max_drop)
    failures += compare_metric("speedup", base, cur, shared,
                               args.max_drop_speedup)

    if failures:
        print(f"FAIL: {len(failures)} regressed point(s): {failures}")
        return 1
    print("PASS: no regression beyond thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
