#!/usr/bin/env python3
"""Determinism linter for the DHB codebase.

The library guarantees bit-identical results for a fixed seed at any
thread count (DESIGN.md §8) — a guarantee that dies the moment a
result-affecting path reads the wall clock, draws from an unseeded random
source, or lets hash-table iteration order leak into a returned or
accumulated value. TSan and the checksum benches catch such leaks at
runtime, after the fact; this linter bans them statically, so the CI
`static-analysis` job fails the build instead (DESIGN.md §11).

Rules (ids used in the allowlist and the `// LINT-EXPECT:` markers):

  wall-clock      Wall-clock reads: std::chrono::{system,steady,
                  high_resolution}_clock, ::time()/clock(), gettimeofday,
                  clock_gettime. Scanned in ALL of src/. The only
                  sanctioned use is the kWall trace track in
                  src/obs/trace.cc (profiling spans that never feed back
                  into slot time), carried by the committed allowlist.

  raw-random      Raw randomness: std::rand/srand, std::random_device,
                  and the <random> engines (mt19937, minstd_rand, ...).
                  Every random draw must flow through util::Rng
                  (src/sim/random.h), whose xoshiro256** stream is fully
                  determined by the run seed. Scanned in ALL of src/.

  unordered-iter  Iteration over std::unordered_{map,set,multimap,
                  multiset} that feeds a returned or accumulated value:
                  hash-map order is an implementation detail, so a loop
                  that returns from inside, accumulates into an outer
                  variable, or appends to an outer container is
                  order-dependent. Per-element mutation of the container's
                  own values stays legal. Result-affecting dirs only.

  pointer-key     Pointer-keyed ordered containers (std::map<T*, ...>,
                  std::set<T*>, std::less<T*>, priority_queue of
                  pointers): iteration order follows allocation addresses,
                  which differ run to run. Key by a stable id instead.
                  Result-affecting dirs only.

Result-affecting dirs: src/core, src/schedule, src/sim, src/server,
src/protocols, src/vbr (the paths whose outputs land in results).

File discovery: headers are walked from src/; translation units come from
a compile_commands.json when --build-dir is given (the libclang-free way
to scan exactly what the build compiles), else from the same walk.

Allowlist: scripts/determinism_allowlist.txt — lines of
  <rule>  <path-or-glob>  [required-substring]
Findings matching an entry are suppressed; entries that suppress nothing
are themselves an error, so the allowlist can only shrink by rot. Three
staleness tiers, each fatal: an unknown <rule> id (the rule was renamed
or removed), a path glob matching no scanned file (the file moved or
died), and an entry whose glob matches files but suppresses no finding
(the violation it excused was fixed).

Self-test: --self-test runs every rule over scripts/lint_fixtures/
(one *_flagged.cc + one *_clean.cc per rule). Flagged lines carry a
trailing `// LINT-EXPECT: <rule>` marker; the scan must reproduce the
marker set exactly, and clean fixtures must scan clean. CI runs the
self-test before linting src/.
"""

import argparse
import fnmatch
import json
import os
import re
import sys

RESULT_DIRS = ("core", "schedule", "sim", "server", "protocols", "vbr")

# Every rule id this linter can emit; allowlist entries must use one of
# these, and the self-test must exercise each one both ways.
ALL_RULES = ("wall-clock", "raw-random", "unordered-iter", "pointer-key")

WALL_CLOCK_RE = re.compile(
    r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"
    r"|\bclock_gettime\b|\bgettimeofday\b"
    r"|(?<![\w.>:])(?:time|clock)\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
)

RAW_RANDOM_RE = re.compile(
    r"\bstd::rand\b|\bsrand\b|\brandom_device\b"
    r"|\bmt19937(?:_64)?\b|\bdefault_random_engine\b|\bminstd_rand0?\b"
    r"|\branlux(?:24|48)(?:_base)?\b|\bknuth_b\b"
    r"|(?<![\w.>:])rand\s*\("
)

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<.*>\s+(\w+)\s*[;={(]"
)

POINTER_KEY_RES = (
    # map/multimap whose key type is a pointer
    re.compile(r"\b(?:unordered_)?(?:map|multimap)\s*<\s*[\w:<> ]*?\*\s*,"),
    # set/multiset of pointers
    re.compile(r"\b(?:unordered_)?(?:set|multiset)\s*<\s*[\w:<> ]*?\*\s*[>,]"),
    # explicit pointer comparator / pointer-ordered heap
    re.compile(r"\bless\s*<\s*[\w:<> ]*?\*\s*>"),
    re.compile(r"\bpriority_queue\s*<\s*[\w:<> ]*?\*"),
)

# Accumulation shapes inside an unordered-container loop body. Root
# identifier (group 1) is compared against the loop's own variables: a
# mutation rooted at the loop element is per-element (order-free), one
# rooted outside accumulates in iteration order.
COMPOUND_ASSIGN_RE = re.compile(
    r"\b(\w+)(?:(?:\.|->|\[)[^=<>!+*/|&^-]*?)?\s*"
    r"(?:\+=|-=|\*=|/=|\|=|&=|\^=|<<=|>>=)"
)
PRE_INCDEC_RE = re.compile(r"(?:\+\+|--)\s*(\w+)")
POST_INCDEC_RE = re.compile(r"\b(\w+)\s*(?:\+\+|--)")
MUTATING_CALL_RE = re.compile(
    r"\b(\w+)(?:(?:\.|->)\w+)*(?:\.|->)"
    r"(?:push_back|emplace_back|push_front|emplace_front|push|insert|"
    r"emplace|append|add|merge|observe|inc)\s*\("
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;)]*?):([^;]*?)\)", re.DOTALL)
ITER_FOR_RE = re.compile(r"\bfor\s*\(\s*auto\b[^;]*?=\s*(\w+)\s*\.\s*(?:c?begin)\s*\(")


class Finding:
    def __init__(self, path, line, rule, message, text):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.text = text

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}: " \
               f"{self.text.strip()}"


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving newlines and
    column positions so findings keep their real line numbers."""
    out = []
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR, RAW = range(6)
    state = NORMAL
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out.append("  ")
                i += 2
            elif c == "R" and nxt == '"':
                m = re.match(r'R"([^(\s]*)\(', text[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = RAW
                    out.append(" " * m.end())
                    i += m.end()
                else:
                    out.append(c)
                    i += 1
            elif c == '"':
                state = STRING
                out.append(" ")
                i += 1
            elif c == "'":
                state = CHAR
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == STRING:
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = NORMAL
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == CHAR:
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = NORMAL
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # RAW
            if text.startswith(raw_delim, i):
                state = NORMAL
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def line_text(lines, lineno):
    return lines[lineno - 1] if 0 < lineno <= len(lines) else ""


def extract_loop_vars(header):
    """Loop-variable names of a range-for declaration part."""
    binding = re.search(r"\[([^\]]*)\]", header)
    if binding:
        return {v.strip() for v in binding.group(1).split(",") if v.strip()}
    m = re.search(r"(\w+)\s*$", header.strip())
    return {m.group(1)} if m else set()


def extract_body(text, open_pos):
    """Statement or block following position `open_pos` (just past the
    for-header's closing paren). Returns (body, end)."""
    i = open_pos
    n = len(text)
    while i < n and text[i] in " \t\n":
        i += 1
    if i >= n:
        return "", i
    if text[i] == "{":
        depth = 0
        j = i
        while j < n:
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
                if depth == 0:
                    return text[i : j + 1], j + 1
            j += 1
        return text[i:], n
    j = text.find(";", i)
    if j == -1:
        return text[i:], n
    return text[i : j + 1], j + 1


def find_matching_paren(text, open_pos):
    depth = 0
    for j in range(open_pos, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return j
    return -1


def order_dependent_sinks(body, loop_vars):
    """True when the loop body feeds a returned or accumulated value that
    is not rooted at the loop element (order-dependent accumulation)."""
    if re.search(r"\breturn\b", body):
        return "returns from inside the loop"
    for regex in (COMPOUND_ASSIGN_RE, PRE_INCDEC_RE, POST_INCDEC_RE,
                  MUTATING_CALL_RE):
        for m in regex.finditer(body):
            root = m.group(1)
            if root not in loop_vars:
                return f"accumulates into '{root}' outside the loop element"
    return None


def scan_unordered_iteration(path, stripped, lines, unordered_names):
    findings = []
    for m in RANGE_FOR_RE.finditer(stripped):
        container = m.group(2).strip()
        root = re.match(r"(\w+)", container)
        if not root or root.group(1) not in unordered_names:
            continue
        loop_vars = extract_loop_vars(m.group(1))
        close = find_matching_paren(stripped, m.start() + len("for"))
        body, _ = extract_body(stripped, (close + 1) if close != -1 else m.end())
        why = order_dependent_sinks(body, loop_vars)
        if why:
            lineno = line_of(stripped, m.start())
            findings.append(Finding(
                path, lineno, "unordered-iter",
                f"unordered-container iteration {why}",
                line_text(lines, lineno)))
    for m in ITER_FOR_RE.finditer(stripped):
        if m.group(1) not in unordered_names:
            continue
        close = find_matching_paren(stripped, m.start() + len("for"))
        body, _ = extract_body(stripped, (close + 1) if close != -1 else m.end())
        why = order_dependent_sinks(body, set())
        if why:
            lineno = line_of(stripped, m.start())
            findings.append(Finding(
                path, lineno, "unordered-iter",
                f"unordered-container iteration {why}",
                line_text(lines, lineno)))
    return findings


def collect_unordered_names(stripped):
    return {m.group(1) for m in UNORDERED_DECL_RE.finditer(stripped)}


def scan_file(path, raw, unordered_names, result_affecting):
    stripped = strip_comments_and_strings(raw)
    lines = raw.splitlines()
    stripped_lines = stripped.splitlines()
    findings = []
    for i, line in enumerate(stripped_lines, start=1):
        if WALL_CLOCK_RE.search(line):
            findings.append(Finding(
                path, i, "wall-clock",
                "wall-clock read (slot time is the only simulation clock)",
                line_text(lines, i)))
        if RAW_RANDOM_RE.search(line):
            findings.append(Finding(
                path, i, "raw-random",
                "raw random source (all randomness flows through util::Rng)",
                line_text(lines, i)))
        if result_affecting:
            for regex in POINTER_KEY_RES:
                if regex.search(line):
                    findings.append(Finding(
                        path, i, "pointer-key",
                        "pointer-keyed container or comparator "
                        "(order follows allocation addresses)",
                        line_text(lines, i)))
                    break
    if result_affecting:
        findings.extend(scan_unordered_iteration(
            path, stripped, lines, unordered_names))
    return findings


def is_result_affecting(relpath):
    parts = relpath.replace(os.sep, "/").split("/")
    return len(parts) >= 2 and parts[0] == "src" and parts[1] in RESULT_DIRS


def discover_files(root, build_dir):
    """Headers always come from the walk; translation units come from
    compile_commands.json when available (the set the build compiles)."""
    src = os.path.join(root, "src")
    walked = []
    for dirpath, _, names in os.walk(src):
        for name in sorted(names):
            if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                walked.append(os.path.join(dirpath, name))
    compile_commands = (
        os.path.join(build_dir, "compile_commands.json") if build_dir else
        os.path.join(root, "build", "compile_commands.json"))
    if not os.path.isfile(compile_commands):
        if build_dir:
            sys.exit(f"error: {compile_commands} not found")
        return sorted(walked)
    with open(compile_commands, encoding="utf-8") as f:
        entries = json.load(f)
    units = set()
    for entry in entries:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        if path.startswith(src + os.sep):
            units.add(path)
    headers = [p for p in walked if p.endswith((".h", ".hpp"))]
    sources = [p for p in walked if not p.endswith((".h", ".hpp"))]
    picked = [p for p in sources if p in units] if units else sources
    return sorted(headers + picked)


def load_allowlist(path):
    entries = []
    if not os.path.isfile(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 2)
            if len(parts) < 2:
                sys.exit(f"{path}:{lineno}: malformed allowlist entry "
                         f"(want: <rule> <path-glob> [substring])")
            entries.append({
                "rule": parts[0],
                "glob": parts[1],
                "substring": parts[2].strip() if len(parts) > 2 else "",
                "where": f"{path}:{lineno}",
                "used": False,
                "stale": False,
            })
    return entries


def entry_matches_path(entry, rel):
    return fnmatch.fnmatch(rel, entry["glob"]) or rel.endswith(entry["glob"])


def allowlist_staleness(entries, scanned_rels):
    """Structural staleness, checked before suppression is even attempted:
    entries naming a rule this linter cannot emit, and entries whose glob
    matches no scanned file. Both mean the entry outlived what it excused.
    Returns error strings; flagged entries are marked so the weaker
    suppresses-nothing check does not double-report them."""
    errors = []
    for e in entries:
        if e["rule"] not in ALL_RULES:
            errors.append(
                f"{e['where']}: unknown rule '{e['rule']}' in allowlist "
                f"(known: {', '.join(ALL_RULES)})")
            e["stale"] = True
        elif not any(entry_matches_path(e, rel) for rel in scanned_rels):
            errors.append(
                f"{e['where']}: stale allowlist entry — glob "
                f"'{e['glob']}' matches no scanned file")
            e["stale"] = True
    return errors


def apply_allowlist(findings, entries):
    kept = []
    for f in findings:
        rel = f.path.replace(os.sep, "/")
        suppressed = False
        for e in entries:
            if e["rule"] != f.rule:
                continue
            if not entry_matches_path(e, rel):
                continue
            if e["substring"] and e["substring"] not in f.text:
                continue
            e["used"] = True
            suppressed = True
            break
        if not suppressed:
            kept.append(f)
    return kept


def run_lint(args):
    root = os.path.abspath(args.root)
    files = discover_files(root, args.build_dir)
    if not files:
        sys.exit(f"error: no sources found under {os.path.join(root, 'src')}")

    # Pass 1 (global): names of unordered containers, so a loop in a .cc
    # over a member declared in its header still resolves.
    unordered_names = set()
    contents = {}
    for path in files:
        with open(path, encoding="utf-8") as f:
            contents[path] = f.read()
        unordered_names |= collect_unordered_names(
            strip_comments_and_strings(contents[path]))

    findings = []
    for path in files:
        rel = os.path.relpath(path, root)
        findings.extend(scan_file(rel, contents[path], unordered_names,
                                  is_result_affecting(rel)))

    entries = load_allowlist(args.allowlist)
    scanned_rels = [os.path.relpath(p, root).replace(os.sep, "/")
                    for p in files]
    stale_errors = allowlist_staleness(entries, scanned_rels)
    findings = apply_allowlist(findings, entries)

    status = 0
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        print(f)
        status = 1
    for err in stale_errors:
        print(err)
        status = 1
    for e in entries:
        if not e["used"] and not e["stale"]:
            print(f"{e['where']}: unused allowlist entry "
                  f"({e['rule']} {e['glob']}) — remove it")
            status = 1
    if status == 0:
        print(f"lint_determinism: {len(files)} files clean "
              f"({len(entries)} allowlist entries, all used)")
    return status


def staleness_self_test():
    """Exercises every allowlist-staleness tier against synthetic entries
    (no temp files: staleness is pure entry-vs-file-list logic)."""
    failures = []

    def entry(rule, glob):
        return {"rule": rule, "glob": glob, "substring": "",
                "where": "synthetic:1", "used": False, "stale": False}

    scanned = ["src/obs/trace.cc", "src/core/dhb.cc"]

    # Tier 1: unknown rule id.
    errors = allowlist_staleness([entry("no-such-rule", "src/*")], scanned)
    if not any("unknown rule" in e for e in errors):
        failures.append("staleness self-test: unknown rule id not detected")

    # Tier 2: glob matching no scanned file.
    errors = allowlist_staleness(
        [entry("wall-clock", "src/gone/*.cc")], scanned)
    if not any("matches no scanned file" in e for e in errors):
        failures.append("staleness self-test: dead glob not detected")

    # A live entry (valid rule, glob matching a scanned file) passes both
    # tiers — tier 3 (suppresses nothing) stays apply_allowlist's job.
    live = entry("wall-clock", "src/obs/trace.cc")
    errors = allowlist_staleness([live], scanned)
    if errors or live["stale"]:
        failures.append(
            f"staleness self-test: live entry misflagged: {errors}")

    # Tier 3: a live entry that suppresses no finding is reported as
    # unused (and a suppressing one is not).
    suppressing = entry("wall-clock", "src/obs/trace.cc")
    idle = entry("raw-random", "src/core/dhb.cc")
    kept = apply_allowlist(
        [Finding("src/obs/trace.cc", 1, "wall-clock", "m", "t")],
        [suppressing, idle])
    if kept or not suppressing["used"]:
        failures.append("staleness self-test: suppression did not engage")
    if idle["used"]:
        failures.append("staleness self-test: idle entry counted as used")

    return failures


def run_self_test(fixtures_dir):
    if not os.path.isdir(fixtures_dir):
        sys.exit(f"error: fixtures directory {fixtures_dir} not found")
    fixture_files = sorted(
        os.path.join(fixtures_dir, n) for n in os.listdir(fixtures_dir)
        if n.endswith(".cc"))
    if not fixture_files:
        sys.exit(f"error: no fixtures in {fixtures_dir}")

    failures = []
    rules_exercised = set()
    for path in fixture_files:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        expected = set()
        for i, line in enumerate(raw.splitlines(), start=1):
            for marker in re.finditer(r"//\s*LINT-EXPECT:\s*([\w-]+)", line):
                expected.add((i, marker.group(1)))
                rules_exercised.add(marker.group(1))
        # Fixtures are scanned as result-affecting code with a local
        # unordered-name pass (each fixture is self-contained).
        names = collect_unordered_names(strip_comments_and_strings(raw))
        actual = {(f.line, f.rule)
                  for f in scan_file(os.path.basename(path), raw, names, True)}
        for miss in sorted(expected - actual):
            failures.append(f"{path}:{miss[0]}: expected {miss[1]} finding "
                            f"was not reported")
        for extra in sorted(actual - expected):
            failures.append(f"{path}:{extra[0]}: unexpected {extra[1]} finding")

    for rule in sorted(set(ALL_RULES) - rules_exercised):
        failures.append(f"self-test does not exercise rule '{rule}'")

    failures.extend(staleness_self_test())

    for failure in failures:
        print(failure)
    if not failures:
        print(f"lint_determinism --self-test: "
              f"{len(fixture_files)} fixtures ok, "
              f"rules exercised: {', '.join(sorted(rules_exercised))}")
    return 1 if failures else 0


def main():
    script_dir = os.path.dirname(os.path.abspath(__file__))
    parser = argparse.ArgumentParser(
        description="Determinism linter (see module docstring).")
    parser.add_argument("--root", default=os.path.dirname(script_dir),
                        help="repository root (default: the script's parent)")
    parser.add_argument("--build-dir", default=None,
                        help="build tree holding compile_commands.json")
    parser.add_argument("--allowlist",
                        default=os.path.join(script_dir,
                                             "determinism_allowlist.txt"))
    parser.add_argument("--self-test", action="store_true",
                        help="check the rules against scripts/lint_fixtures/")
    parser.add_argument("--fixtures-dir",
                        default=os.path.join(script_dir, "lint_fixtures"))
    args = parser.parse_args()
    if args.self_test:
        sys.exit(run_self_test(args.fixtures_dir))
    sys.exit(run_lint(args))


if __name__ == "__main__":
    main()
