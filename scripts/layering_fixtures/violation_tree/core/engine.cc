// Fixture: engine code reaching up into analysis.
#include "analysis/auditor.h"  // LINT-EXPECT: layering
#include "util/bad.h"
int engine_main() { vod::audit(); return 0; }
