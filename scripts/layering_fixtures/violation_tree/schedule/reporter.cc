// Fixture: engine layer touching the exporter surface directly.
#include "obs/export.h"  // LINT-EXPECT: layering
void report() { vod::write_json(); }
