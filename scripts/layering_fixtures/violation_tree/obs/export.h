// Fixture: restricted exporter header (file I/O surface).
#pragma once
namespace vod { void write_json(); }
