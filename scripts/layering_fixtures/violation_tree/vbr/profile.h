// Fixture: vbr peer layer, includable by server only.
#pragma once
namespace vod { struct VbrProfile {}; }
