// Fixture: equal-rank layers (protocols vs vbr) are mutually invisible.
#pragma once
#include "vbr/profile.h"  // LINT-EXPECT: layering
namespace vod { struct Peer { VbrProfile p; }; }
