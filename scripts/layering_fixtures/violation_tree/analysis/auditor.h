// Fixture: analysis is the top: nothing may include it.
#pragma once
namespace vod { void audit(); }
