// Fixture: top-layer header dragged downward by util/bad.h.
#pragma once
namespace vod { struct ServerApi {}; }
