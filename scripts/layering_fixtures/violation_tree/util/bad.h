// Fixture: the forbidden upward edge util -> server.
#pragma once
#include "server/api.h"  // LINT-EXPECT: layering
namespace vod { struct UtilThing { ServerApi api; }; }
