// Fixture: sim may include util (rank 1 > 0).
#pragma once
#include "util/base.h"
namespace vod { struct Clock { Slot now = 0; }; }
