// Fixture: server sees every engine layer below it.
#include "schedule/ring.h"
int main() { vod::Ring ring; return static_cast<int>(ring.clock.now); }
