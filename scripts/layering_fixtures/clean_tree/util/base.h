// Fixture: bottom layer, includes nothing.
#pragma once
namespace vod { using Slot = long long; }
