// Fixture: schedule may include sim and util (rank 3 > 1 > 0).
#pragma once
#include "sim/clock.h"
#include "util/base.h"
namespace vod { struct Ring { Clock clock; }; }
