// Self-test fixture: shapes the pointer-key rule must NOT flag — pointers
// as mapped *values*, value-keyed containers, pointer vectors, and
// value-typed priority queues. This file is never compiled.
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Node {
  int weight = 0;
};

struct Graph {
  std::map<int, Node*> by_id_;                     // pointer value: fine
  std::unordered_map<uint64_t, Node*> by_handle_;  // pointer value: fine
  std::set<uint64_t> ids_;
  std::multiset<double> weights_;
  std::vector<Node*> order_;  // sequence of pointers: fine
  std::less<uint64_t> cmp_;
  std::priority_queue<int, std::vector<int>, std::greater<int>> heap_;
};

}  // namespace fixture
