// Self-test fixture: pointer-keyed associative containers and pointer
// comparators. Pointer order depends on the allocator, so any walk or
// ordering over these is a run-to-run hazard. This file is never compiled.
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <vector>

namespace fixture {

struct Node {
  int weight = 0;
};

struct Graph {
  std::map<Node*, int> rank_;                    // LINT-EXPECT: pointer-key
  std::set<const Node*> visited_;                // LINT-EXPECT: pointer-key
  std::multiset<Node*> pending_;                 // LINT-EXPECT: pointer-key
  std::map<Node*, std::vector<int>> adjacency_;  // LINT-EXPECT: pointer-key

  using Cmp = std::less<Node*>;  // LINT-EXPECT: pointer-key

  std::priority_queue<Node*> frontier_;  // LINT-EXPECT: pointer-key
};

}  // namespace fixture
