// Self-test fixture: unordered-container uses the unordered-iter rule must
// NOT flag — per-element mutation (order-independent), lookups and erases
// without iteration, and iteration over *ordered* containers. This file is
// never compiled.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Session {
  int next_segment = 0;
  bool paused = false;
};

struct Server {
  std::unordered_map<uint64_t, Session> sessions_;
  std::map<uint64_t, Session> ordered_;

  // Per-element mutation: each entry is updated independently, so the
  // visit order cannot affect the result.
  void advance_all() {
    for (auto& [id, info] : sessions_) {
      if (!info.paused) ++info.next_segment;
      info.paused = false;
    }
  }

  // Lookup and erase by key — no iteration at all.
  void stop(uint64_t id) {
    auto it = sessions_.find(id);
    if (it != sessions_.end()) sessions_.erase(it);
  }

  // Accumulating over an ordered map is deterministic.
  int count_paused() const {
    int n = 0;
    for (const auto& [id, info] : ordered_) {
      if (info.paused) ++n;
    }
    return n;
  }

  // Accumulating over a vector is deterministic.
  static int sum(const std::vector<int>& xs) {
    int total = 0;
    for (int x : xs) total += x;
    return total;
  }
};

}  // namespace fixture
