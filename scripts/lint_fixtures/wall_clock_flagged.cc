// Self-test fixture: every wall-clock read shape the linter must catch.
// Markers name the rule the line must trigger; the self-test fails on any
// missed or extra finding. This file is never compiled.
#include <chrono>
#include <ctime>

namespace fixture {

long wall_reads() {
  auto a = std::chrono::system_clock::now();    // LINT-EXPECT: wall-clock
  auto b = std::chrono::steady_clock::now();    // LINT-EXPECT: wall-clock
  auto c =
      std::chrono::high_resolution_clock::now();  // LINT-EXPECT: wall-clock
  long d = time(nullptr);  // LINT-EXPECT: wall-clock
  long e = clock();        // LINT-EXPECT: wall-clock
  struct timespec ts;
  clock_gettime(0, &ts);  // LINT-EXPECT: wall-clock
  (void)a;
  (void)b;
  (void)c;
  return d + e + ts.tv_sec;
}

}  // namespace fixture
