// Self-test fixture: unordered-container iterations that feed returned or
// accumulated values — each loop's outcome depends on hash-table order.
// This file is never compiled.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Info {
  int state = 0;
  double weight = 0.0;
};

struct Table {
  std::unordered_map<uint64_t, Info> sessions_;
  std::unordered_set<std::string> names_;

  int count_watching() const {
    int n = 0;
    for (const auto& [id, info] : sessions_) {  // LINT-EXPECT: unordered-iter
      if (info.state == 1) ++n;
    }
    return n;
  }

  std::vector<uint64_t> collect() const {
    std::vector<uint64_t> out;
    for (const auto& [id, info] : sessions_) {  // LINT-EXPECT: unordered-iter
      out.push_back(id);
    }
    return out;
  }

  uint64_t first_match() const {
    for (const auto& [id, info] : sessions_) {  // LINT-EXPECT: unordered-iter
      if (info.state == 2) return id;
    }
    return 0;
  }

  double total_weight() const {
    double sum = 0.0;
    for (auto it = sessions_.begin();  // LINT-EXPECT: unordered-iter
         it != sessions_.end(); ++it) {
      sum += it->second.weight;
    }
    return sum;
  }

  std::string join() const {
    std::string all;
    for (const auto& name : names_) {  // LINT-EXPECT: unordered-iter
      all += name;
    }
    return all;
  }
};

}  // namespace fixture
