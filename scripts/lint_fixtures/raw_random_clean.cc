// Self-test fixture: near-misses the raw-random rule must NOT flag — the
// sanctioned util::Rng surface, identifiers containing "rand", member
// calls named rand(), and mentions in comments. This file is never
// compiled.
#include <cstdint>

namespace fixture {

// The sanctioned source (mirrors src/sim/random.h).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t next_u64() { return state_ += 0x9E3779B97f4A7C15ULL; }
  double uniform() { return 0.5; }

 private:
  uint64_t state_;
};

struct Heuristic {
  // kRandom is an enum-ish name, not a call to rand().
  static constexpr int kRandom = 3;
  int rand_budget = 0;  // identifier containing "rand"
  int operand(int x) { return x; }
};

// std::rand in a comment must not trip the rule.
double draw(Rng& rng, Heuristic& h) {
  return rng.uniform() + h.operand(h.rand_budget);
}

}  // namespace fixture
