// Self-test fixture: raw random sources the linter must catch. All
// randomness in the library flows through util::Rng; each line below is a
// bypass. This file is never compiled.
#include <cstdlib>
#include <random>

namespace fixture {

int raw_draws() {
  std::random_device rd;            // LINT-EXPECT: raw-random
  std::mt19937 gen(rd());           // LINT-EXPECT: raw-random
  std::mt19937_64 gen64(1);         // LINT-EXPECT: raw-random
  std::default_random_engine eng;   // LINT-EXPECT: raw-random
  std::minstd_rand lcg;             // LINT-EXPECT: raw-random
  srand(42);                        // LINT-EXPECT: raw-random
  int a = std::rand();              // LINT-EXPECT: raw-random
  int b = rand();                   // LINT-EXPECT: raw-random
  return a + b + static_cast<int>(gen() + gen64() + eng() + lcg());
}

}  // namespace fixture
