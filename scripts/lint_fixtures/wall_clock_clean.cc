// Self-test fixture: near-misses the wall-clock rule must NOT flag —
// slot-time accessors, identifiers containing "time"/"clock", comments,
// and string literals. This file is never compiled.
#include <cstdint>

namespace fixture {

struct Entry {
  double time = 0.0;  // field named `time`: not a clock read
};

struct Sim {
  uint64_t slot_time() const { return slot_; }  // slot domain, fine
  double runtime(double d) { return d; }
  uint64_t slot_ = 0;
};

// A comment mentioning std::chrono::steady_clock must not trip the rule.
double use(Sim& sim, const Entry& e) {
  const char* label = "steady_clock";  // string literal, not a read
  double total = e.time + sim.runtime(2.0);
  (void)label;
  return total + static_cast<double>(sim.slot_time());
}

}  // namespace fixture
