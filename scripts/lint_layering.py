#!/usr/bin/env python3
"""Architecture-layering linter: the src/ include graph must be a DAG that
respects the layer order documented in DESIGN.md §12 and README's
repository map:

    util < sim < obs < schedule < core < {protocols, vbr} < server
    analysis sits on top: it may include anything, nothing includes it.

Rules, checked per #include edge over the closure of every translation
unit in compile_commands.json (plus every header under src/, so orphaned
headers cannot rot unnoticed):

  1. A file in layer L may include layer M iff M == L or rank(M) <
     rank(L). Equal-rank distinct layers (protocols vs vbr) are mutually
     invisible.
  2. Restricted headers: obs/export.h (exporter surface: file I/O and
     string formatting) is includable only from obs itself and analysis —
     engine layers observe through the macros in obs/trace.h, never
     through the exporters.

Deliberate exceptions go in scripts/layering_allowlist.txt as
"<includer-glob> -> <included-glob>" lines (repo-relative, fnmatch).
An allowlist entry matching no present edge is itself an error — the
exception expired and must be deleted (same staleness contract as
lint_determinism.py's allowlist).

Modes:
  (default)        scan src/ via build/compile_commands.json; exit 1 on
                   any violation or stale allowlist entry
  --graph OUT.dot  also write the layer-level include graph as DOT
                   (violating edges in red)
  --self-test      run against scripts/layering_fixtures/ and verify the
                   violating tree is reported exactly at its
                   `// LINT-EXPECT: layering` markers, the clean tree
                   passes, allowlisting silences the violation, and a
                   stale allowlist entry fails

Exit status: 0 clean, 1 violations/self-test failure, 2 environment.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import re
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE_DIR = REPO_ROOT / "scripts" / "layering_fixtures"

# Layer ranks. Lower may not include higher; equal ranks are mutually
# invisible unless it is the same layer.
LAYER_RANK = {
    "util": 0,
    "sim": 1,
    "obs": 2,
    "schedule": 3,
    "core": 4,
    "protocols": 5,
    "vbr": 5,
    "server": 6,
    "analysis": 7,
}

# Header path (relative to the source root) -> layers allowed to include
# it, overriding rule 1 in the *restrictive* direction.
RESTRICTED_HEADERS = {
    "obs/export.h": {"obs", "analysis"},
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
EXPECT_RE = re.compile(r"//\s*LINT-EXPECT:\s*layering\b")


class Edge:
    """One resolved include: includer file -> included file, with its
    source line for reporting."""

    def __init__(self, includer: str, included: str, line: int):
        self.includer = includer  # source-root-relative, e.g. "core/dhb.cc"
        self.included = included
        self.line = line

    def key(self):
        return (self.includer, self.included)

    def __repr__(self):
        return f"{self.includer}:{self.line} -> {self.included}"


def layer_of(rel_path: str) -> str | None:
    head = rel_path.split("/", 1)[0]
    return head if head in LAYER_RANK else None


def collect_edges(source_root: Path, roots: list[Path]) -> list[Edge]:
    """Resolves quoted includes over the closure of `roots`. Includes that
    do not resolve to a file under source_root (system/third-party) are
    ignored."""
    edges: list[Edge] = []
    seen: set[Path] = set()
    stack = [p for p in roots]
    while stack:
        path = stack.pop()
        if path in seen or not path.exists():
            continue
        seen.add(path)
        rel = path.relative_to(source_root).as_posix()
        for lineno, line in enumerate(
                path.read_text(errors="replace").splitlines(), start=1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            target = source_root / m.group(1)
            if not target.exists():
                continue
            edges.append(Edge(rel, target.relative_to(
                source_root).as_posix(), lineno))
            stack.append(target)
    return edges


def load_allowlist(path: Path) -> list[tuple[str, str, str]]:
    """Returns (includer_glob, included_glob, raw_line) triples."""
    entries = []
    if not path.exists():
        return entries
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "->" not in line:
            print(f"lint_layering: malformed allowlist line: {raw}",
                  file=sys.stderr)
            sys.exit(2)
        left, right = (part.strip() for part in line.split("->", 1))
        entries.append((left, right, line))
    return entries


def check_edges(edges: list[Edge],
                allowlist: list[tuple[str, str, str]]):
    """Returns (violations, used_allowlist_lines)."""
    violations: list[tuple[Edge, str]] = []
    used: set[str] = set()
    for edge in edges:
        src_layer = layer_of(edge.includer)
        dst_layer = layer_of(edge.included)
        if src_layer is None or dst_layer is None:
            continue
        reason = None
        allowed_by_rank = (src_layer == dst_layer or
                           LAYER_RANK[dst_layer] < LAYER_RANK[src_layer])
        if not allowed_by_rank:
            reason = (f"layer '{src_layer}' may not include layer "
                      f"'{dst_layer}'")
        restricted = RESTRICTED_HEADERS.get(edge.included)
        if reason is None and restricted is not None and \
                src_layer not in restricted:
            reason = (f"restricted header: {edge.included} is only "
                      f"includable from {sorted(restricted)}")
        if reason is None:
            continue
        waiver = next(
            (raw for inc_glob, dst_glob, raw in allowlist
             if fnmatch.fnmatch(edge.includer, inc_glob)
             and fnmatch.fnmatch(edge.included, dst_glob)), None)
        if waiver is not None:
            used.add(waiver)
            continue
        violations.append((edge, reason))
    return violations, used


def write_graph(edges: list[Edge],
                violations: list[tuple[Edge, str]], out: Path) -> None:
    bad = {v[0].key() for v in violations}
    layer_edges: dict[tuple[str, str], bool] = {}
    for edge in edges:
        a, b = layer_of(edge.includer), layer_of(edge.included)
        if a is None or b is None or a == b:
            continue
        key = (a, b)
        layer_edges[key] = layer_edges.get(key, False) or edge.key() in bad
    lines = ["digraph layering {", "  rankdir=BT;"]
    for layer in sorted(LAYER_RANK, key=LAYER_RANK.get):
        lines.append(f'  "{layer}";')
    for (a, b), is_bad in sorted(layer_edges.items()):
        attr = ' [color=red, penwidth=2]' if is_bad else ""
        lines.append(f'  "{a}" -> "{b}"{attr};')
    lines.append("}")
    out.write_text("\n".join(lines) + "\n")
    print(f"lint_layering: wrote {out}")


def scan(source_root: Path, roots: list[Path], allowlist_path: Path,
         graph_out: Path | None) -> int:
    edges = collect_edges(source_root, roots)
    allowlist = load_allowlist(allowlist_path)
    violations, used = check_edges(edges, allowlist)
    status = 0
    for edge, reason in sorted(violations, key=lambda v: v[0].key()):
        print(f"{edge.includer}:{edge.line}: includes {edge.included}: "
              f"{reason}")
        status = 1
    for _, _, raw in allowlist:
        if raw not in used:
            print(f"lint_layering: stale allowlist entry (matches no "
                  f"present edge, delete it): {raw}")
            status = 1
    if graph_out is not None:
        write_graph(edges, violations, graph_out)
    if status == 0:
        print(f"lint_layering: {len(edges)} include edges across "
              f"{len({e.includer for e in edges})} files, 0 violations")
    return status


def tree_roots(source_root: Path, build_dir: Path) -> list[Path]:
    db_path = build_dir / "compile_commands.json"
    if not db_path.exists():
        print(f"lint_layering: {db_path} not found (configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)", file=sys.stderr)
        sys.exit(2)
    roots: set[Path] = set()
    for entry in json.loads(db_path.read_text()):
        path = (Path(entry["directory"]) / entry["file"]).resolve()
        if path.is_relative_to(source_root):
            roots.add(path)
    if not roots:
        print("lint_layering: compile_commands.json lists no src/ "
              "translation units", file=sys.stderr)
        sys.exit(2)
    # Orphan headers (not yet reachable from any TU) still obey the rules.
    roots.update(source_root.rglob("*.h"))
    return sorted(roots)


def self_test() -> int:
    ok = True
    clean_root = FIXTURE_DIR / "clean_tree"
    bad_root = FIXTURE_DIR / "violation_tree"
    empty = Path(tempfile.mkstemp(suffix=".allowlist")[1])
    empty.write_text("# empty\n")

    def run(source_root: Path, allowlist: Path):
        roots = sorted(source_root.rglob("*.cc")) + \
            sorted(source_root.rglob("*.h"))
        edges = collect_edges(source_root, roots)
        return edges, *check_edges(edges, load_allowlist(allowlist))

    # 1. The clean mini-tree must pass.
    _, violations, _ = run(clean_root, empty)
    if violations:
        print(f"self-test: clean tree reported violations: {violations}",
              file=sys.stderr)
        ok = False

    # 2. The violating mini-tree must be flagged exactly at its markers.
    expected: set[tuple[str, int]] = set()
    for path in bad_root.rglob("*"):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(bad_root).as_posix()
        for lineno, line in enumerate(path.read_text().splitlines(),
                                      start=1):
            if EXPECT_RE.search(line):
                expected.add((rel, lineno))
    _, violations, _ = run(bad_root, empty)
    got = {(v[0].includer, v[0].line) for v in violations}
    for miss in sorted(expected - got):
        print(f"self-test: expected violation not reported: {miss}",
              file=sys.stderr)
        ok = False
    for extra in sorted(got - expected):
        print(f"self-test: unexpected violation: {extra}", file=sys.stderr)
        ok = False

    # 3. Allowlisting every violating edge silences the scan...
    waiver = Path(tempfile.mkstemp(suffix=".allowlist")[1])
    waiver.write_text("\n".join(
        f"{v[0].includer} -> {v[0].included}" for v in violations) + "\n")
    edges, still, used = run(bad_root, waiver)
    if still:
        print(f"self-test: allowlisted edges still reported: {still}",
              file=sys.stderr)
        ok = False

    # 4. ...and a stale entry is an error in its own right.
    stale = Path(tempfile.mkstemp(suffix=".allowlist")[1])
    stale.write_text("util/nonexistent.h -> server/nothing.h\n")
    _, _, used = run(clean_root, stale)
    stale_entries = [raw for _, _, raw in load_allowlist(stale)
                     if raw not in used]
    if not stale_entries:
        print("self-test: stale allowlist entry was not detected",
              file=sys.stderr)
        ok = False

    for tmp in (empty, waiver, stale):
        tmp.unlink(missing_ok=True)
    print("lint_layering self-test:",
          "ok" if ok else "FAILED", file=sys.stderr if not ok else
          sys.stdout)
    return 0 if ok else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--source-root", type=Path,
                        default=REPO_ROOT / "src")
    parser.add_argument("--build-dir", type=Path,
                        default=REPO_ROOT / "build")
    parser.add_argument("--allowlist", type=Path,
                        default=REPO_ROOT / "scripts" /
                        "layering_allowlist.txt")
    parser.add_argument("--graph", type=Path, default=None,
                        help="write the layer-level include DAG as DOT")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    source_root = args.source_root.resolve()
    roots = tree_roots(source_root, args.build_dir)
    return scan(source_root, roots, args.allowlist, args.graph)


if __name__ == "__main__":
    sys.exit(main())
