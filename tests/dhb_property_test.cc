// Property-based suites for the DHB scheduler: randomized arrival patterns,
// parameterized over (segment count, arrival intensity, heuristic), checking
// the protocol's contracts on every admitted request.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/dhb.h"
#include "protocols/harmonic.h"
#include "sim/random.h"

namespace vod {
namespace {

struct PropertyParams {
  int num_segments;
  double arrivals_per_slot;
  SlotHeuristic heuristic;
};

class DhbPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double, SlotHeuristic>> {
};

// Every admitted request, under every heuristic and load level, must meet
// every deadline, and uncapped DHB must keep the <=1-future-instance
// sharing invariant.
TEST_P(DhbPropertyTest, DeadlinesAndSharingInvariant) {
  const auto [n, per_slot, heuristic] = GetParam();
  DhbConfig c;
  c.num_segments = n;
  c.heuristic = heuristic;
  DhbScheduler s(c);
  Rng rng(static_cast<uint64_t>(n) * 1000003 +
          static_cast<uint64_t>(per_slot * 977) +
          static_cast<uint64_t>(heuristic));

  for (int step = 0; step < 400; ++step) {
    s.advance_slot();
    const uint64_t arrivals = rng.poisson(per_slot);
    for (uint64_t a = 0; a < arrivals; ++a) {
      const DhbRequestResult r = s.on_request();
      const PlanDiagnostics d = verify_plan(r.plan);
      ASSERT_TRUE(d.deadlines_met)
          << "segment S" << d.first_violation << " late at slot "
          << s.current_slot();
      ASSERT_EQ(r.new_instances + r.shared_instances, n);
    }
    for (Segment j = 1; j <= n; ++j) {
      ASSERT_LE(s.schedule().instances_of(j).size(), 1u);
    }
  }
}

// The server never transmits more than one instance of a segment per slot,
// and per-slot bandwidth is bounded by n.
TEST_P(DhbPropertyTest, PerSlotTransmissionsWellFormed) {
  const auto [n, per_slot, heuristic] = GetParam();
  DhbConfig c;
  c.num_segments = n;
  c.heuristic = heuristic;
  DhbScheduler s(c);
  Rng rng(42 + static_cast<uint64_t>(n));

  for (int step = 0; step < 300; ++step) {
    const std::vector<Segment> tx = s.advance_slot();
    ASSERT_LE(static_cast<int>(tx.size()), n);
    std::vector<Segment> sorted = tx;
    std::sort(sorted.begin(), sorted.end());
    ASSERT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end())
        << "duplicate segment in one slot";
    const uint64_t arrivals = rng.poisson(per_slot);
    for (uint64_t a = 0; a < arrivals; ++a) s.on_request();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DhbPropertyTest,
    ::testing::Combine(
        ::testing::Values(1, 2, 6, 25, 99),
        ::testing::Values(0.05, 0.5, 2.0),
        ::testing::Values(SlotHeuristic::kMinLoadLatest,
                          SlotHeuristic::kLatest,
                          SlotHeuristic::kEarliest,
                          SlotHeuristic::kMinLoadEarliest,
                          SlotHeuristic::kRandom)),
    [](const auto& param_info) {
      std::string name =
          "n" + std::to_string(std::get<0>(param_info.param)) + "_load" +
          std::to_string(static_cast<int>(std::get<1>(param_info.param) * 100)) +
          "_" + to_string(std::get<2>(param_info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

class DhbCappedPropertyTest : public ::testing::TestWithParam<int> {};

// The capped variant must still meet every deadline, and whenever it
// reports zero violations the client concurrency must actually be within
// the cap.
TEST_P(DhbCappedPropertyTest, CapRespectedOrReported) {
  const int cap = GetParam();
  DhbConfig c;
  c.num_segments = 40;
  c.client_stream_cap = cap;
  DhbScheduler s(c);
  Rng rng(7u * static_cast<uint64_t>(cap) + 1);

  for (int step = 0; step < 300; ++step) {
    s.advance_slot();
    const uint64_t arrivals = rng.poisson(0.8);
    for (uint64_t a = 0; a < arrivals; ++a) {
      const DhbRequestResult r = s.on_request();
      const PlanDiagnostics d = verify_plan(r.plan);
      ASSERT_TRUE(d.deadlines_met);
      if (r.cap_violations == 0) {
        ASSERT_LE(d.max_concurrent_streams, cap);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Caps, DhbCappedPropertyTest,
                         ::testing::Values(1, 2, 3, 5),
                         [](const auto& param_info) {
                           return "cap" + std::to_string(param_info.param);
                         });

// Saturation behaviour: with at least one request per slot, the average
// bandwidth converges to roughly the harmonic number H_n — each segment
// S_j is transmitted about once every j slots (§3's minimum-frequency
// argument).
TEST(DhbSaturation, AverageApproachesHarmonicNumber) {
  const int n = 99;
  DhbConfig c;
  c.num_segments = n;
  DhbScheduler s(c);
  Rng rng(314);
  uint64_t transmissions = 0;
  const int warmup = 300, measured = 4000;
  for (int step = 0; step < warmup + measured; ++step) {
    const std::vector<Segment> tx = s.advance_slot();
    if (step >= warmup) transmissions += tx.size();
    s.on_request();
    if (rng.uniform() < 0.5) s.on_request();
  }
  const double avg =
      static_cast<double>(transmissions) / static_cast<double>(measured);
  const double h = harmonic_number(n);
  EXPECT_GE(avg, h - 0.05);  // cannot beat the harmonic floor
  EXPECT_LE(avg, h + 0.60);  // and the heuristic stays near it
}

// At saturation every segment's realized transmission period is at most its
// index (the §3 minimum-frequency property), measured on the wire.
TEST(DhbSaturation, WirePeriodsWithinBounds) {
  const int n = 30;
  DhbConfig c;
  c.num_segments = n;
  DhbScheduler s(c);
  std::vector<Slot> last(static_cast<size_t>(n) + 1, 0);
  for (int step = 0; step < 1000; ++step) {
    const std::vector<Segment> tx = s.advance_slot();
    const Slot now = s.current_slot();
    for (Segment j : tx) {
      if (last[static_cast<size_t>(j)] != 0) {
        EXPECT_LE(now - last[static_cast<size_t>(j)], j) << "S" << j;
      }
      last[static_cast<size_t>(j)] = now;
    }
    s.on_request();
  }
}

}  // namespace
}  // namespace vod
