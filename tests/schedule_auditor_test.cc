// ScheduleAuditor must be non-vacuous: every invariant it claims to check
// is exercised here with a hand-built corruption that a correct audit must
// reject with the specific violation kind (and a clean schedule must pass).
#include <gtest/gtest.h>

#include <vector>

#include "analysis/schedule_auditor.h"
#include "core/dhb.h"
#include "schedule/bandwidth_meter.h"
#include "schedule/slot_schedule.h"

namespace vod {

// Test-only backdoor (befriended by SlotSchedule) that corrupts internal
// state in ways the public API forbids, to prove the auditor catches them.
struct SlotScheduleTestPeer {
  // Desynchronizes the per-slot load counter from the real contents.
  static void bump_load(SlotSchedule& s, Slot slot, int delta) {
    s.loads_[s.ring_index(slot)] += delta;
    s.total_ += delta;
  }
  // Plants a slot in the per-segment slab row without scheduling anything.
  static void inject_index_entry(SlotSchedule& s, Segment j, Slot slot) {
    const size_t row = static_cast<size_t>(j);
    if (static_cast<size_t>(s.seg_len_[row]) == s.seg_cap_) s.grow_segments();
    s.seg_row(row)[s.seg_len_[row]++] = slot;
  }
  // Plants a segment in the content ring without indexing it.
  static void inject_ring_entry(SlotSchedule& s, Segment j, Slot slot) {
    const size_t pos = s.ring_index(slot);
    if (static_cast<size_t>(s.contents_len_[pos]) == s.contents_cap_) {
      s.grow_contents();
    }
    s.contents_row(pos)[s.contents_len_[pos]++] = j;
  }
  // Drops the newest indexed instance of segment j (index only).
  static void drop_index_entry(SlotSchedule& s, Segment j) {
    --s.seg_len_[static_cast<size_t>(j)];
  }
};

namespace {

TEST(ScheduleAuditor, CleanScheduleIsAccepted) {
  SlotSchedule s(5, 5);
  s.add_instance(1, 1);
  s.add_instance(2, 2);
  s.add_instance(3, 2);
  ScheduleAuditor auditor;
  const AuditReport report = auditor.audit_schedule(s);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.to_string(), "ok");
}

TEST(ScheduleAuditor, DuplicateFutureInstanceIsRejected) {
  SlotSchedule s(5, 5);
  s.add_instance(2, 1);
  s.add_instance(2, 4);  // legal through the API, illegal for uncapped DHB
  ScheduleAuditor auditor;
  const AuditReport report = auditor.audit_schedule(s);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(AuditViolationKind::kDuplicateFutureInstance))
      << report.to_string();
  // The capped variant is allowed to double-schedule.
  ScheduleAuditor capped(AuditOptions{.allow_multiple_instances = true});
  EXPECT_TRUE(capped.audit_schedule(s).ok());
}

TEST(ScheduleAuditor, OutOfWindowInstanceIsRejected) {
  SlotSchedule s(5, 5);
  s.add_instance(1, 2);
  SlotScheduleTestPeer::inject_index_entry(s, 3, 99);  // beyond now+window
  const AuditReport report = ScheduleAuditor().audit_schedule(s);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(AuditViolationKind::kInstanceOutsideWindow))
      << report.to_string();
}

TEST(ScheduleAuditor, UnsortedIndexIsRejected) {
  SlotSchedule s(5, 5);
  SlotScheduleTestPeer::inject_index_entry(s, 2, 4);
  SlotScheduleTestPeer::inject_index_entry(s, 2, 1);  // breaks ascending order
  const AuditReport report =
      ScheduleAuditor(AuditOptions{.allow_multiple_instances = true})
          .audit_schedule(s);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(AuditViolationKind::kIndexNotSorted))
      << report.to_string();
}

TEST(ScheduleAuditor, StaleLoadCountIsRejected) {
  SlotSchedule s(5, 5);
  s.add_instance(1, 3);
  SlotScheduleTestPeer::bump_load(s, 3, 1);  // counter says 2, reality says 1
  const AuditReport report = ScheduleAuditor().audit_schedule(s);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(AuditViolationKind::kLoadMismatch))
      << report.to_string();
}

TEST(ScheduleAuditor, RingIndexDesyncIsRejected) {
  SlotSchedule s(5, 5);
  s.add_instance(1, 3);
  SlotScheduleTestPeer::inject_ring_entry(s, 4, 3);  // ring-only phantom
  const AuditReport report = ScheduleAuditor().audit_schedule(s);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(AuditViolationKind::kContentsMismatch))
      << report.to_string();
}

TEST(ScheduleAuditor, TotalDriftIsRejected) {
  SlotSchedule s(5, 5);
  s.add_instance(1, 1);
  s.add_instance(2, 2);
  // Dropping an index entry leaves total_scheduled() and the loads ahead of
  // the per-segment index.
  SlotScheduleTestPeer::drop_index_entry(s, 2);
  const AuditReport report = ScheduleAuditor().audit_schedule(s);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(AuditViolationKind::kTotalMismatch))
      << report.to_string();
}

TEST(ScheduleAuditor, ViolationReportNamesTheCorruption) {
  SlotSchedule s(5, 5);
  s.add_instance(2, 1);
  s.add_instance(2, 4);
  const AuditReport report = ScheduleAuditor().audit_schedule(s);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("duplicate-future-instance"),
            std::string::npos)
      << report.to_string();
  EXPECT_NE(report.to_string().find("segment=2"), std::string::npos)
      << report.to_string();
}

TEST(ScheduleAuditor, SchedulerEndToEndStaysClean) {
  DhbConfig config;
  config.num_segments = 12;
  DhbScheduler dhb(config);
  ScheduleAuditor auditor;
  auditor.attach(dhb);
  BandwidthMeter meter;
  for (int step = 0; step < 60; ++step) {
    if (step % 3 == 0) {
      const DhbRequestResult r = dhb.on_request();
      auditor.track_plan(r.plan, 1, dhb.periods());
    }
    const std::vector<Segment> sent = dhb.advance_slot();
    meter.add_slot(static_cast<int>(sent.size()));
    EXPECT_TRUE(auditor.on_advance(dhb, sent).ok());
    const AuditReport report = auditor.audit(dhb);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
  EXPECT_TRUE(auditor.audit_meter(meter).ok());
  EXPECT_GT(auditor.live_plans(), 0u);
}

TEST(ScheduleAuditor, PlanDeadlineMissIsRejected) {
  DhbConfig config;
  config.num_segments = 4;
  DhbScheduler dhb(config);
  ScheduleAuditor auditor;
  ClientPlan bogus;
  bogus.arrival_slot = dhb.current_slot();
  bogus.reception_slot = {1, 2, 3, 9};  // deadline for S_4 is slot 4
  auditor.track_plan(bogus, 1, dhb.periods());
  const AuditReport report = auditor.audit(dhb);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(AuditViolationKind::kPlanDeadlineMiss))
      << report.to_string();
}

TEST(ScheduleAuditor, PlanMissingInstanceIsRejected) {
  DhbConfig config;
  config.num_segments = 4;
  DhbScheduler dhb(config);
  ScheduleAuditor auditor;
  ClientPlan bogus;  // in-window plan that nothing ever scheduled
  bogus.arrival_slot = dhb.current_slot();
  bogus.reception_slot = {1, 2, 3, 4};
  auditor.track_plan(bogus, 1, dhb.periods());
  const AuditReport report = auditor.audit(dhb);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(AuditViolationKind::kPlanInstanceMissing))
      << report.to_string();
}

TEST(ScheduleAuditor, TrackedPlansExpire) {
  DhbConfig config;
  config.num_segments = 3;
  DhbScheduler dhb(config);
  ScheduleAuditor auditor;
  const DhbRequestResult r = dhb.on_request();
  auditor.track_plan(r.plan, 1, dhb.periods());
  EXPECT_EQ(auditor.live_plans(), 1u);
  for (int k = 0; k < 4; ++k) dhb.advance_slot();
  EXPECT_TRUE(auditor.audit(dhb).ok());
  EXPECT_EQ(auditor.live_plans(), 0u);
}

TEST(ScheduleAuditor, ClockRegressionIsRejected) {
  DhbConfig config;
  config.num_segments = 3;
  DhbScheduler advanced(config);
  advanced.advance_slot();
  advanced.advance_slot();
  DhbScheduler fresh(config);
  ScheduleAuditor auditor;
  EXPECT_TRUE(auditor.audit(advanced).ok());
  const AuditReport report = auditor.audit(fresh);  // clock jumps 2 -> 0
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(AuditViolationKind::kNonMonotoneClock))
      << report.to_string();
}

TEST(ScheduleAuditor, CounterRegressionIsRejected) {
  DhbConfig config;
  config.num_segments = 3;
  DhbScheduler busy(config);
  busy.on_request();
  DhbScheduler idle(config);
  ScheduleAuditor auditor;
  EXPECT_TRUE(auditor.audit(busy).ok());
  const AuditReport report = auditor.audit(idle);  // counters jump back to 0
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(AuditViolationKind::kCounterRegression))
      << report.to_string();
}

TEST(ScheduleAuditor, InstanceLeakIsRejected) {
  DhbConfig config;
  config.num_segments = 4;
  DhbScheduler dhb(config);
  ScheduleAuditor auditor;
  auditor.attach(dhb);
  dhb.on_request();
  // A skipped on_advance() report looks like instances leaking out of the
  // window without being transmitted.
  dhb.advance_slot();
  const AuditReport report = auditor.audit(dhb);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(AuditViolationKind::kInstanceLeak))
      << report.to_string();
}

TEST(ScheduleAuditor, MeterDriftIsRejected) {
  DhbConfig config;
  config.num_segments = 4;
  DhbScheduler dhb(config);
  ScheduleAuditor auditor;
  auditor.attach(dhb);
  BandwidthMeter meter;
  dhb.on_request();
  const std::vector<Segment> sent = dhb.advance_slot();
  meter.add_slot(static_cast<int>(sent.size()));
  auditor.on_advance(dhb, sent);
  meter.add_slot(50);  // phantom slot the scheduler never produced
  const AuditReport report = auditor.audit_meter(meter);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(AuditViolationKind::kMeterMismatch))
      << report.to_string();
}

TEST(ScheduleAuditor, AuditOrDieAcceptsHealthyScheduler) {
  DhbConfig config;
  config.num_segments = 8;
  DhbScheduler dhb(config);
  for (int step = 0; step < 20; ++step) {
    dhb.on_request();
    dhb.advance_slot();
    audit_or_die(dhb);  // must not fire
  }
}

}  // namespace
}  // namespace vod
