#include "protocols/ud.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vod {
namespace {

SlottedSimConfig quick_sim(double rate) {
  SlottedSimConfig sim;
  sim.requests_per_hour = rate;
  sim.warmup_hours = 4.0;
  sim.measured_hours = 100.0;
  return sim;
}

class UdClosedFormTest : public ::testing::TestWithParam<double> {};

// The simulator must agree with the closed form
// sum_j (1 - exp(-lambda d len_j)) derived from the on-demand FB model.
TEST_P(UdClosedFormTest, SimulationMatchesExpectation) {
  const double rate = GetParam();
  SlottedSimConfig sim = quick_sim(rate);
  sim.measured_hours = rate < 5.0 ? 400.0 : 150.0;
  const SlottedSimResult r = run_ud_simulation(sim);
  const double expected = ud_expected_bandwidth(sim.video, rate);
  EXPECT_NEAR(r.avg_streams, expected, std::max(0.1, 0.05 * expected))
      << rate << "/h";
}

INSTANTIATE_TEST_SUITE_P(Rates, UdClosedFormTest,
                         ::testing::Values(1.0, 5.0, 20.0, 100.0, 500.0),
                         [](const auto& param_info) {
                           return "r" +
                                  std::to_string(static_cast<int>(param_info.param));
                         });

TEST(Ud, SaturatesToFbStreamCount) {
  // "Above 200 requests per hour, all channels become saturated and the UD
  // reverts to a conventional FB protocol."
  const SlottedSimResult r = run_ud_simulation(quick_sim(2000.0));
  EXPECT_NEAR(r.avg_streams, 7.0, 0.05);
  EXPECT_DOUBLE_EQ(r.max_streams, 7.0);
}

TEST(Ud, ClosedFormLimits) {
  VideoParams video;
  // Low-rate limit: cost per isolated request is one whole video, so the
  // average tends to lambda * D.
  const double rate = 0.05;  // requests/hour
  const double lambda_d = rate / 3600.0 * video.duration_s;
  EXPECT_NEAR(ud_expected_bandwidth(video, rate), lambda_d, 0.02 * lambda_d);
  // High-rate limit: all 7 FB streams busy.
  EXPECT_NEAR(ud_expected_bandwidth(video, 1e6), 7.0, 1e-6);
}

TEST(Ud, ClosedFormMonotone) {
  VideoParams video;
  double prev = 0.0;
  for (double rate : {1.0, 2.0, 5.0, 20.0, 100.0, 1000.0}) {
    const double b = ud_expected_bandwidth(video, rate);
    EXPECT_GT(b, prev);
    prev = b;
  }
}

TEST(Ud, MaxBandwidthNeverExceedsFb) {
  for (double rate : {1.0, 50.0, 800.0}) {
    const SlottedSimResult r = run_ud_simulation(quick_sim(rate));
    EXPECT_LE(r.max_streams, 7.0) << rate;
  }
}

TEST(Ud, NoArrivalsNoBandwidth) {
  SlottedSimConfig sim;
  sim.warmup_hours = 0.0;
  sim.measured_hours = 1.0;
  ScriptedArrivals arrivals({});
  const SlottedSimResult r = run_ud_simulation(sim, arrivals);
  EXPECT_DOUBLE_EQ(r.avg_streams, 0.0);
}

TEST(Ud, SingleRequestCostsOneVideo) {
  // One isolated request: every stream j stays busy for len_j slots, so
  // total busy slots = sum len_j = n = one whole video worth of data.
  SlottedSimConfig sim;
  sim.warmup_hours = 0.0;
  sim.measured_hours = 5.0;
  ScriptedArrivals arrivals({10.0});
  const SlottedSimResult r = run_ud_simulation(sim, arrivals);
  const double d = sim.video.slot_duration_s();
  const double busy_slots = r.avg_streams * sim.measured_hours * 3600.0 / d;
  EXPECT_NEAR(busy_slots, 99.0, 1.5);
}

TEST(Ud, DeterministicForSeed) {
  const SlottedSimResult a = run_ud_simulation(quick_sim(10.0));
  const SlottedSimResult b = run_ud_simulation(quick_sim(10.0));
  EXPECT_DOUBLE_EQ(a.avg_streams, b.avg_streams);
}

}  // namespace
}  // namespace vod
