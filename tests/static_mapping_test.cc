#include "protocols/static_mapping.h"

#include <gtest/gtest.h>

#include <vector>

namespace vod {
namespace {

// A hand-rolled mapping for validator tests: cycle given as a grid.
class GridMapping final : public StaticMapping {
 public:
  GridMapping(int num_segments, std::vector<std::vector<Segment>> cycle)
      : n_(num_segments), cycle_(std::move(cycle)) {}

  int streams() const override {
    return static_cast<int>(cycle_.front().size());
  }
  int num_segments() const override { return n_; }
  Segment segment_at(int stream, Slot slot) const override {
    const auto& row = cycle_[static_cast<size_t>((slot - 1) % cycle_length())];
    return row[static_cast<size_t>(stream)];
  }
  Slot cycle_length() const override {
    return static_cast<Slot>(cycle_.size());
  }

 private:
  int n_;
  std::vector<std::vector<Segment>> cycle_;  // [slot % L][stream]
};

TEST(ValidateMapping, AcceptsFigure2NpbSchedule) {
  // The paper's Figure 2: NPB packs nine segments on three streams.
  // Full 12-slot cycle: stream 2 repeats S2 S4 S2 S5 (period 4); stream 3
  // repeats S3 S6 S8 S3 S7 S9 (period 6).
  const GridMapping npb(9, {{1, 2, 3},
                            {1, 4, 6},
                            {1, 2, 8},
                            {1, 5, 3},
                            {1, 2, 7},
                            {1, 4, 9},
                            {1, 2, 3},
                            {1, 5, 6},
                            {1, 2, 8},
                            {1, 4, 3},
                            {1, 2, 7},
                            {1, 5, 9}});
  const MappingValidation v = validate_mapping(npb);
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(ValidateMapping, RejectsMissingSegment) {
  const GridMapping m(3, {{1, 2}, {1, 2}});  // S3 never sent
  const MappingValidation v = validate_mapping(m);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("S3"), std::string::npos);
}

TEST(ValidateMapping, RejectsExcessiveGap) {
  // S2 appears only once every 3 slots.
  const GridMapping m(2, {{1, 2}, {1, 0}, {1, 0}});
  const MappingValidation v = validate_mapping(m);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("gap"), std::string::npos);
}

TEST(ValidateMapping, RejectsLateFirstOccurrence) {
  // S1 first appears in slot 2: a slot-0 arrival would starve.
  const GridMapping m(2, {{2, 0}, {1, 0}, {1, 2}, {1, 0}});
  const MappingValidation v = validate_mapping(m);
  EXPECT_FALSE(v.ok);
}

TEST(ValidateMapping, RejectsOutOfRangeSegment) {
  const GridMapping m(2, {{1, 5}});
  const MappingValidation v = validate_mapping(m);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("range"), std::string::npos);
}

TEST(ValidateMapping, AcceptsIdleCells) {
  const GridMapping m(1, {{1, 0}});
  EXPECT_TRUE(validate_mapping(m).ok);
}

TEST(FirstOccurrences, FindsEarliestAfterArrival) {
  const GridMapping m(3, {{1, 2}, {1, 3}});
  const std::vector<Slot> at0 = first_occurrences(m, 0);
  EXPECT_EQ(at0[1], 1);
  EXPECT_EQ(at0[2], 1);
  EXPECT_EQ(at0[3], 2);
  const std::vector<Slot> at1 = first_occurrences(m, 1);
  EXPECT_EQ(at1[1], 2);
  EXPECT_EQ(at1[2], 3);
  EXPECT_EQ(at1[3], 2);
}

TEST(FirstOccurrences, DeadlinePropertyOnValidMapping) {
  // Full 12-slot cycle: stream 2 repeats S2 S4 S2 S5 (period 4); stream 3
  // repeats S3 S6 S8 S3 S7 S9 (period 6).
  const GridMapping npb(9, {{1, 2, 3},
                            {1, 4, 6},
                            {1, 2, 8},
                            {1, 5, 3},
                            {1, 2, 7},
                            {1, 4, 9},
                            {1, 2, 3},
                            {1, 5, 6},
                            {1, 2, 8},
                            {1, 4, 3},
                            {1, 2, 7},
                            {1, 5, 9}});
  for (Slot arrival = 0; arrival < 12; ++arrival) {
    const std::vector<Slot> occ = first_occurrences(npb, arrival);
    for (Segment j = 1; j <= 9; ++j) {
      EXPECT_LE(occ[static_cast<size_t>(j)], arrival + j)
          << "S" << j << " from arrival " << arrival;
    }
  }
}

TEST(RenderMapping, ShowsGrid) {
  const GridMapping m(2, {{1, 2}, {1, 0}});
  const std::string s = render_mapping(m, 1, 4);
  EXPECT_NE(s.find("S1"), std::string::npos);
  EXPECT_NE(s.find("S2"), std::string::npos);
  EXPECT_NE(s.find("Stream 2"), std::string::npos);
  EXPECT_NE(s.find('-'), std::string::npos);
}

}  // namespace
}  // namespace vod
