#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace vod {
namespace {

TEST(ResolveNumThreads, ExplicitCountPassesThrough) {
  EXPECT_EQ(resolve_num_threads(1), 1);
  EXPECT_EQ(resolve_num_threads(7), 7);
}

TEST(ResolveNumThreads, ZeroMeansAutoAndAtLeastOne) {
  EXPECT_GE(resolve_num_threads(0), 1);
}

TEST(ResolveNumThreadsDeath, NegativeRejected) {
  EXPECT_DEATH(resolve_num_threads(-1), "thread count");
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { ++counter; });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPool, DestructorDrainsTheQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
    // No wait_idle: joining must still run everything already queued.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  pool.parallel_for(257, [&hits](int i) { ++hits[static_cast<size_t>(i)]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForWithFewerTasksThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.parallel_for(3, [&sum](int i) { sum += i; });
  EXPECT_EQ(sum.load(), 0 + 1 + 2);
}

TEST(ThreadPool, ParallelForZeroTasksIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](int) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ReusableAcrossRounds) {
  // The engines reuse one pool for many fork-join rounds; each round must
  // see all of its own tasks complete before the next starts.
  ThreadPool pool(3);
  std::vector<int> results(64, 0);
  for (int round = 1; round <= 4; ++round) {
    pool.parallel_for(64, [&results, round](int i) {
      results[static_cast<size_t>(i)] = round * (i + 1);
    });
    const long expected = static_cast<long>(round) * (64 * 65 / 2);
    EXPECT_EQ(std::accumulate(results.begin(), results.end(), 0L), expected)
        << "round " << round;
  }
}

TEST(ThreadPool, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(20, [&counter](int) { ++counter; });
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, DisjointSlotWritesNeedNoLocking) {
  // The determinism contract: each task owns one output slot, reduction
  // happens after the join. TSan builds verify the absence of races.
  ThreadPool pool(4);
  std::vector<double> out(500, 0.0);
  pool.parallel_for(500, [&out](int i) {
    out[static_cast<size_t>(i)] = static_cast<double>(i) * 0.5;
  });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 0.5);
  }
}

}  // namespace
}  // namespace vod
