#include "protocols/stream_tapping.h"

#include <gtest/gtest.h>

#include <cmath>

#include "protocols/harmonic.h"

namespace vod {
namespace {

TappingConfig quick(double rate, TappingMode mode) {
  TappingConfig c;
  c.requests_per_hour = rate;
  c.warmup_hours = 4.0;
  c.measured_hours = 100.0;
  c.mode = mode;
  return c;
}

TEST(StreamTapping, FirstRequestStartsOriginal) {
  TappingConfig c = quick(1.0, TappingMode::kStreamTapping);
  c.restart_threshold_s = 3600.0;
  ScriptedArrivals arrivals({100.0});
  c.warmup_hours = 0.0;
  c.measured_hours = 4.0;
  const TappingResult r = run_tapping_simulation(c, arrivals);
  EXPECT_EQ(r.requests, 1u);
  EXPECT_EQ(r.originals, 1u);
  // One full-video stream over a 4 h window: 7200/14400 = 0.5 streams.
  EXPECT_NEAR(r.avg_streams, 0.5, 1e-6);
  EXPECT_DOUBLE_EQ(r.max_streams, 1.0);
}

TEST(StreamTapping, CloseFollowerPaysOnlyTheGap) {
  TappingConfig c = quick(1.0, TappingMode::kStreamTapping);
  c.restart_threshold_s = 3600.0;
  c.warmup_hours = 0.0;
  c.measured_hours = 5.0;
  ScriptedArrivals arrivals({100.0, 400.0});
  const TappingResult r = run_tapping_simulation(c, arrivals);
  EXPECT_EQ(r.originals, 1u);
  // Total transmitted: D + 300 seconds of patch.
  EXPECT_NEAR(r.avg_streams * 5.0 * 3600.0, 7200.0 + 300.0, 1.0);
  EXPECT_DOUBLE_EQ(r.max_streams, 2.0);
}

TEST(StreamTapping, ExtraTappingBeatsPatching) {
  for (double rate : {2.0, 10.0, 100.0}) {
    TappingConfig st = quick(rate, TappingMode::kStreamTapping);
    TappingConfig pa = quick(rate, TappingMode::kPatching);
    st.restart_threshold_s = pa.restart_threshold_s = 1800.0;
    const TappingResult r_st = run_tapping_simulation(st);
    const TappingResult r_pa = run_tapping_simulation(pa);
    EXPECT_LT(r_st.avg_streams, r_pa.avg_streams) << rate << "/h";
  }
}

TEST(StreamTapping, ThirdClientTapsLevel1Patch) {
  // Client 2 is a first-level patch [0, 300) admitted at 400. Client 3
  // (t=600, prefix 500) taps the original for (500, D) and patch 2 for its
  // still-to-come content (200, 300); it pays [0,200) u [300,500) = 400 s
  // instead of patching's full 500 s prefix.
  TappingConfig c = quick(1.0, TappingMode::kStreamTapping);
  c.restart_threshold_s = 3600.0;
  c.warmup_hours = 0.0;
  c.measured_hours = 5.0;
  ScriptedArrivals arrivals({100.0, 400.0, 600.0});
  const TappingResult r = run_tapping_simulation(c, arrivals);
  EXPECT_NEAR(r.avg_streams * 5.0 * 3600.0, 7200.0 + 300.0 + 400.0, 1.0);
}

TEST(StreamTapping, PatchingClientPaysFullPrefix) {
  // Same arrivals under plain patching: client 3 pays its whole 500 s
  // prefix because it may only tap the original.
  TappingConfig c = quick(1.0, TappingMode::kPatching);
  c.restart_threshold_s = 3600.0;
  c.warmup_hours = 0.0;
  c.measured_hours = 5.0;
  ScriptedArrivals arrivals({100.0, 400.0, 600.0});
  const TappingResult r = run_tapping_simulation(c, arrivals);
  EXPECT_NEAR(r.avg_streams * 5.0 * 3600.0, 7200.0 + 300.0 + 500.0, 1.0);
}

TEST(StreamTapping, RestartAfterThreshold) {
  TappingConfig c = quick(1.0, TappingMode::kStreamTapping);
  c.restart_threshold_s = 1000.0;
  c.warmup_hours = 0.0;
  c.measured_hours = 5.0;
  // Second arrival 1500 s after the first: its prefix exceeds the
  // threshold, so it becomes a fresh original.
  ScriptedArrivals arrivals({100.0, 1600.0});
  const TappingResult r = run_tapping_simulation(c, arrivals);
  EXPECT_EQ(r.originals, 2u);
}

TEST(StreamTapping, BandwidthGrowsWithRate) {
  double prev = 0.0;
  for (double rate : {1.0, 4.0, 16.0, 64.0}) {
    TappingConfig c = quick(rate, TappingMode::kStreamTapping);
    c.restart_threshold_s = -1.0;  // auto-optimize
    const TappingResult r = run_tapping_simulation(c);
    EXPECT_GT(r.avg_streams, prev) << rate;
    prev = r.avg_streams;
  }
}

TEST(StreamTapping, SquareRootClassGrowth) {
  // Stream tapping keeps patching's square-root growth (it is NOT a
  // log-class merging protocol): quadrupling the rate should roughly
  // double the bandwidth at high load.
  TappingConfig a = quick(100.0, TappingMode::kStreamTapping);
  TappingConfig b = quick(400.0, TappingMode::kStreamTapping);
  const TappingResult ra = run_tapping_simulation(a);
  const TappingResult rb = run_tapping_simulation(b);
  const double ratio = rb.avg_streams / ra.avg_streams;
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.4);
}

TEST(IdealMerging, TracksEvzLowerBound) {
  // The fragment-tapping idealization approaches the Eager-Vernon-Zahorjan
  // bound ln(1 + lambda D) — the level HMSM-class protocols play at (§2).
  for (double rate : {10.0, 100.0}) {
    TappingConfig c = quick(rate, TappingMode::kIdealMerging);
    c.restart_threshold_s = 7200.0;
    const TappingResult r = run_tapping_simulation(c);
    const double bound = evz_lower_bound(rate / 3600.0, 7200.0);
    EXPECT_GT(r.avg_streams, bound * 0.95) << rate;
    EXPECT_LT(r.avg_streams, bound * 1.35) << rate;
  }
}

TEST(IdealMerging, BeatsStreamTappingEverywhere) {
  for (double rate : {5.0, 50.0}) {
    TappingConfig im = quick(rate, TappingMode::kIdealMerging);
    TappingConfig st = quick(rate, TappingMode::kStreamTapping);
    im.restart_threshold_s = st.restart_threshold_s = 3600.0;
    EXPECT_LT(run_tapping_simulation(im).avg_streams,
              run_tapping_simulation(st).avg_streams)
        << rate;
  }
}

TEST(StreamTapping, OptimizerPicksReasonableThreshold) {
  TappingConfig c = quick(10.0, TappingMode::kStreamTapping);
  const double theta = optimize_restart_threshold(c);
  EXPECT_GT(theta, 0.0);
  EXPECT_LE(theta, 7200.0);
  // The optimized run must not be worse than the never-restart policy.
  TappingConfig never = c;
  never.restart_threshold_s = 7200.0;
  c.restart_threshold_s = theta;
  EXPECT_LE(run_tapping_simulation(c).avg_streams,
            run_tapping_simulation(never).avg_streams * 1.05);
}

// --- Mid-stream-join boundary pins -----------------------------------------
// The joins below land exactly ON a protocol boundary (video end, patch
// expiry, restart threshold, stream handoff). Each tie has one correct
// reading — these tests pin it so a refactor flipping a >= cannot silently
// hand a client a stream that already finished.

TEST(StreamTapping, JoinExactlyAtVideoEndRestarts) {
  // The original admitted at 100 transmits its last content second over
  // [7299, 7300); a client joining at exactly 100 + D = 7300 can tap
  // nothing and must restart, not build a "patch" spanning the whole video.
  TappingConfig c = quick(1.0, TappingMode::kStreamTapping);
  c.restart_threshold_s = 7000.0;
  c.warmup_hours = 0.0;
  c.measured_hours = 5.0;
  ScriptedArrivals arrivals({100.0, 7300.0});
  const TappingResult r = run_tapping_simulation(c, arrivals);
  EXPECT_EQ(r.originals, 2u);
  EXPECT_NEAR(r.avg_streams * 5.0 * 3600.0, 2.0 * 7200.0, 1.0);
}

TEST(StreamTapping, JoinExactlyAtRestartThresholdRestarts) {
  // cost == theta is the indifference point; the protocol restarts there
  // (>=, matching the closed-form renewal cycle that opens WITH the
  // threshold-crossing arrival).
  TappingConfig c = quick(1.0, TappingMode::kPatching);
  c.restart_threshold_s = 1000.0;
  c.warmup_hours = 0.0;
  c.measured_hours = 5.0;
  ScriptedArrivals arrivals({100.0, 1100.0});
  const TappingResult r = run_tapping_simulation(c, arrivals);
  EXPECT_EQ(r.originals, 2u);
  EXPECT_DOUBLE_EQ(r.avg_cost_s, 7200.0);  // both paid a full original
}

TEST(StreamTapping, JoinExactlyAtPatchExpiryCannotTapIt) {
  // The level-1 patch admitted at 400 carries [0, 300): its last content
  // second goes out over [699, 700). A client joining at exactly 700 gets
  // nothing from it and pays its full 600 s prefix.
  TappingConfig c = quick(1.0, TappingMode::kStreamTapping);
  c.restart_threshold_s = 3600.0;
  c.warmup_hours = 0.0;
  c.measured_hours = 5.0;
  ScriptedArrivals arrivals({100.0, 400.0, 700.0});
  const TappingResult r = run_tapping_simulation(c, arrivals);
  EXPECT_EQ(r.originals, 1u);
  EXPECT_NEAR(r.avg_streams * 5.0 * 3600.0, 7200.0 + 300.0 + 600.0, 1.0);
}

TEST(StreamTapping, JoinJustBeforePatchExpiryTapsTheTail) {
  // One second earlier the patch is still live: it will yet transmit
  // content (299, 300), so the joiner at 699 pays 599 - 1 = 598 s.
  TappingConfig c = quick(1.0, TappingMode::kStreamTapping);
  c.restart_threshold_s = 3600.0;
  c.warmup_hours = 0.0;
  c.measured_hours = 5.0;
  ScriptedArrivals arrivals({100.0, 400.0, 699.0});
  const TappingResult r = run_tapping_simulation(c, arrivals);
  EXPECT_NEAR(r.avg_streams * 5.0 * 3600.0, 7200.0 + 300.0 + 598.0, 1.0);
}

TEST(StreamTapping, TouchingStreamsDoNotDoubleCountPeak) {
  // Patch 1 is active over wall [400, 700); the t=700 joiner's own stream
  // opens at exactly 700. Close sorts before open at equal times, so the
  // peak is 2 concurrent streams (original + one patch), never 3.
  TappingConfig c = quick(1.0, TappingMode::kStreamTapping);
  c.restart_threshold_s = 3600.0;
  c.warmup_hours = 0.0;
  c.measured_hours = 5.0;
  ScriptedArrivals arrivals({100.0, 400.0, 700.0});
  const TappingResult r = run_tapping_simulation(c, arrivals);
  EXPECT_DOUBLE_EQ(r.max_streams, 2.0);
}

TEST(StreamTapping, MaxAtLeastAverage) {
  const TappingResult r =
      run_tapping_simulation(quick(20.0, TappingMode::kStreamTapping));
  EXPECT_GE(r.max_streams, r.avg_streams);
}

TEST(StreamTapping, DeterministicForSeed) {
  TappingConfig c = quick(10.0, TappingMode::kStreamTapping);
  c.restart_threshold_s = 1800.0;
  const TappingResult a = run_tapping_simulation(c);
  const TappingResult b = run_tapping_simulation(c);
  EXPECT_DOUBLE_EQ(a.avg_streams, b.avg_streams);
  EXPECT_EQ(a.originals, b.originals);
}

TEST(StreamTapping, AverageCostReported) {
  TappingConfig c = quick(10.0, TappingMode::kStreamTapping);
  c.restart_threshold_s = 1800.0;
  const TappingResult r = run_tapping_simulation(c);
  EXPECT_GT(r.avg_cost_s, 0.0);
  EXPECT_LE(r.avg_cost_s, 7200.0);
}

}  // namespace
}  // namespace vod
