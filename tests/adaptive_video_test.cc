#include "server/adaptive_video.h"

#include <gtest/gtest.h>

#include <vector>

#include "analysis/schedule_auditor.h"
#include "analysis/transition_auditor.h"
#include "obs/metrics.h"
#include "protocols/npb.h"

namespace vod {
namespace {

const NpbMapping& mapping_for(int n) {
  static std::vector<std::optional<NpbMapping>> cache(128);
  auto& slot = cache.at(static_cast<size_t>(n));
  if (!slot) slot = NpbMapping::build(NpbMapping::streams_for(n), n);
  return *slot;
}

AdaptiveVideoConfig config_for(int n) {
  AdaptiveVideoConfig c;
  c.num_segments = n;
  return c;
}

// Drives one slot under test control: the controller still runs, but the
// forced mode is re-asserted after it decides, so the serving mode is
// exactly the test's script.
int step(AdaptiveVideo* av, uint64_t arrivals, ServingMode forced) {
  const int streams = av->advance_slot();
  av->on_slot_arrivals(arrivals);
  av->force_mode(forced);
  return streams;
}

TEST(AdaptiveVideo, GapFreeAcrossAllTransitionPairs) {
  // The migration invariant, end to end: a phase script covering all six
  // ordered mode pairs, two clients per slot throughout, audited from the
  // outside. Zero violations and every committed reception delivered.
  const int n = 20;
  TransitionAuditor auditor;
  AdaptiveVideo av(config_for(n), &mapping_for(n), &auditor);

  const std::vector<ServingMode> script = {
      ServingMode::kDhb,      ServingMode::kStatic, ServingMode::kReactive,
      ServingMode::kStatic,   ServingMode::kDhb,    ServingMode::kReactive,
      ServingMode::kDhb,
  };
  for (ServingMode phase : script) {
    for (int i = 0; i < 40; ++i) step(&av, 2, phase);
  }
  // Drain: no new clients; every pending reception is due within one
  // period/window (<= n slots).
  for (int i = 0; i < 2 * n + 2; ++i) step(&av, 0, script.back());

  EXPECT_TRUE(auditor.report().ok()) << auditor.report().to_string();
  EXPECT_EQ(auditor.transitions_seen(), 6u);
  EXPECT_EQ(av.switches(), 6u);
  EXPECT_GT(auditor.receptions_checked(), 0u);
  EXPECT_EQ(auditor.pending_receptions(), 0u);
  EXPECT_FALSE(av.migrating());
}

// Probe that records the serving mode of every admission.
class AdmissionRecorder : public AdaptiveProbe {
 public:
  void on_transition(Slot, ServingMode, ServingMode) override {}
  void on_admission(const ClientPlan&, const std::vector<int>&, uint64_t,
                    ServingMode mode) override {
    modes.push_back(mode);
  }
  void on_slot(Slot, const std::vector<Segment>&) override {}

  std::vector<ServingMode> modes;
};

TEST(AdaptiveVideo, ClientArrivingAtSwitchSlotIsAdmittedByTheNewMode) {
  // A switch commits at the boundary INTO a slot, so a client arriving
  // during that very slot belongs to the new mode — the old one only
  // drains from the boundary on.
  const int n = 9;
  AdmissionRecorder recorder;
  AdaptiveVideo av(config_for(n), &mapping_for(n), &recorder);

  step(&av, 1, ServingMode::kStatic);  // admitted under the initial kDhb
  step(&av, 1, ServingMode::kStatic);  // switch committed this boundary
  ASSERT_EQ(recorder.modes.size(), 2u);
  EXPECT_EQ(recorder.modes[0], ServingMode::kDhb);
  EXPECT_EQ(recorder.modes[1], ServingMode::kStatic);
  EXPECT_EQ(av.mode(), ServingMode::kStatic);
}

TEST(AdaptiveVideo, DynamicScheduleDrainsThenSchedulerRetires) {
  const int n = 9;
  AdaptiveVideo av(config_for(n), &mapping_for(n));
  for (int i = 0; i < 5; ++i) step(&av, 1, ServingMode::kDhb);
  const uint64_t admitted = av.scheduler()->total_requests();
  EXPECT_EQ(admitted, 5u);

  step(&av, 0, ServingMode::kStatic);  // pend the switch
  step(&av, 0, ServingMode::kStatic);  // commit: static on, dynamic drains
  EXPECT_EQ(av.mode(), ServingMode::kStatic);
  EXPECT_TRUE(av.migrating());  // committed instances still playing out

  for (int i = 0; i < n + 1; ++i) step(&av, 0, ServingMode::kStatic);
  EXPECT_EQ(av.scheduler(), nullptr);  // drained and retired
  EXPECT_FALSE(av.migrating());

  // The retired generation's counters survive into the export.
  obs::MetricShard out;
  av.export_metrics(&out);
  EXPECT_EQ(out.counter_value("dhb_requests_total"), admitted);
  EXPECT_EQ(out.counter_value("adaptive_switches_total"), 1u);
}

TEST(AdaptiveVideo, StaticStreamsDrainProgressivelyAfterSwitchDown) {
  // Stream r stays on through last_static_arrival + max_period(r) — the
  // last slot an admitted static client could still need it — then shuts
  // off stream by stream, never all at once.
  const int n = 20;
  AdaptiveVideo av(config_for(n), &mapping_for(n));
  step(&av, 0, ServingMode::kStatic);
  step(&av, 1, ServingMode::kStatic);  // static client admitted this slot
  step(&av, 0, ServingMode::kDhb);     // pend the switch down
  const int full = mapping_for(n).streams();

  int prev = full;
  bool saw_partial = false;
  for (int i = 0; i < 2 * n; ++i) {
    const int streams = step(&av, 0, ServingMode::kDhb);
    EXPECT_LE(streams, prev);  // drain is monotone
    if (streams > 0 && streams < full) saw_partial = true;
    prev = streams;
  }
  EXPECT_EQ(prev, 0);          // everything eventually off
  EXPECT_TRUE(saw_partial);    // ...but not in one step
  EXPECT_FALSE(av.migrating());
}

TEST(AdaptiveVideo, NoStaticClientsMeansImmediateShutoff) {
  const int n = 9;
  AdaptiveVideo av(config_for(n), &mapping_for(n));
  step(&av, 0, ServingMode::kStatic);
  const int during = step(&av, 0, ServingMode::kDhb);  // static, no clients
  EXPECT_EQ(during, mapping_for(n).streams());
  // Switch down commits; nobody was admitted, so nothing needs to drain.
  EXPECT_EQ(step(&av, 0, ServingMode::kDhb), 0);
  EXPECT_FALSE(av.migrating());
}

TEST(AdaptiveVideo, SingleSegmentVideoSurvivesEveryTransition) {
  // The degenerate n = 1 video: one segment, period 1, one NPB stream.
  const int n = 1;
  TransitionAuditor auditor;
  AdaptiveVideo av(config_for(n), &mapping_for(n), &auditor);
  const std::vector<ServingMode> script = {
      ServingMode::kStatic, ServingMode::kReactive, ServingMode::kDhb,
      ServingMode::kStatic, ServingMode::kDhb,
  };
  for (ServingMode phase : script) {
    for (int i = 0; i < 5; ++i) step(&av, 1, phase);
  }
  for (int i = 0; i < 4; ++i) step(&av, 0, script.back());
  EXPECT_TRUE(auditor.report().ok()) << auditor.report().to_string();
  EXPECT_EQ(auditor.pending_receptions(), 0u);
}

TEST(AdaptiveVideo, InitialStaticRungBroadcastsFromSlotOne) {
  // A pinned all-static ladder (the bench's frontier baseline) must burn
  // its channels from the very first slot, not wait for a transition.
  AdaptiveVideoConfig c = config_for(9);
  c.controller.initial_mode = static_cast<int>(ServingMode::kStatic);
  c.controller.min_mode = c.controller.max_mode =
      static_cast<int>(ServingMode::kStatic);
  AdaptiveVideo av(c, &mapping_for(9));
  EXPECT_EQ(av.advance_slot(), mapping_for(9).streams());
}

TEST(AdaptiveVideo, FastAndNaiveAdmissionPathsAreBitIdentical) {
  // The placement-index/coalescing fast path must survive heuristic
  // switches: two videos, one per path, driven by the identical script,
  // must transmit identically every slot.
  const int n = 20;
  AdaptiveVideoConfig fast = config_for(n);
  AdaptiveVideoConfig naive = config_for(n);
  naive.fast_admission = false;
  AdaptiveVideo a(fast, &mapping_for(n));
  AdaptiveVideo b(naive, &mapping_for(n));
  const std::vector<ServingMode> script = {
      ServingMode::kDhb, ServingMode::kReactive, ServingMode::kDhb,
      ServingMode::kStatic, ServingMode::kReactive,
  };
  int slot = 0;
  for (ServingMode phase : script) {
    for (int i = 0; i < 30; ++i, ++slot) {
      const uint64_t arrivals = static_cast<uint64_t>((slot * 13) % 4);
      EXPECT_EQ(step(&a, arrivals, phase), step(&b, arrivals, phase))
          << "slot " << slot;
    }
  }
  EXPECT_EQ(a.switches(), b.switches());
}

TEST(DhbScheduler, PlacementAuditStaysGreenAcrossHeuristicSwitch) {
  // The satellite-2 cross-check: set_heuristic() invalidates the memo but
  // not the latest-instance cache or the range-min index — both describe
  // schedule contents. The deep audit replays every admission window
  // against the naive scans (kPlacementIndexMismatch), immediately after
  // each switch.
  DhbConfig c;
  c.num_segments = 20;
  c.use_placement_index = true;
  c.placement_index_cutover = 0;  // index always engaged
  DhbScheduler s(c);
  const ScheduleAuditor auditor;

  auto churn = [&](int slots) {
    for (int i = 0; i < slots; ++i) {
      s.on_request_batch(static_cast<uint64_t>(1 + i % 3));
      s.advance_slot();
    }
  };

  churn(10);
  s.set_heuristic(SlotHeuristic::kLatest);
  s.on_request_batch(2);  // first admissions under the new rule
  AuditReport after_down = auditor.audit_schedule(s.schedule());
  EXPECT_TRUE(after_down.ok()) << after_down.to_string();

  churn(10);
  s.set_heuristic(SlotHeuristic::kMinLoadLatest);
  s.on_request_batch(2);
  AuditReport after_up = auditor.audit_schedule(s.schedule());
  EXPECT_FALSE(after_up.has(AuditViolationKind::kPlacementIndexMismatch));
  EXPECT_TRUE(after_up.ok()) << after_up.to_string();
}

TEST(AdaptiveVideo, PerModeSlotCountersPartitionTheClock) {
  const int n = 9;
  AdaptiveVideo av(config_for(n), &mapping_for(n));
  for (int i = 0; i < 10; ++i) step(&av, 1, ServingMode::kDhb);
  for (int i = 0; i < 7; ++i) step(&av, 1, ServingMode::kReactive);
  for (int i = 0; i < 5; ++i) step(&av, 0, ServingMode::kStatic);
  obs::MetricShard out;
  av.export_metrics(&out);
  const uint64_t total =
      out.counter_value("adaptive_slots_mode_reactive_total") +
      out.counter_value("adaptive_slots_mode_dhb_total") +
      out.counter_value("adaptive_slots_mode_static_total");
  EXPECT_EQ(total, static_cast<uint64_t>(av.now()));
}

TEST(AdaptiveVideoDeath, RejectsMismatchedMapping) {
  EXPECT_DEATH(AdaptiveVideo(config_for(9), &mapping_for(20)), "");
}

}  // namespace
}  // namespace vod
