// Wrap-seam property tests for the placement fast path.
//
// The ring wrap is where LoadIndex/SlotSchedule composition historically
// broke (DESIGN.md §9): a slot window (lo, hi] maps to at most two
// contiguous position ranges, and the tie-break has to prefer the *late*
// range even though its ring positions are numerically smaller. These
// tests sweep every small ring size exhaustively — every seam position,
// every (lo, hi) window, overlays on and off — against the literal linear
// scan the paper's Figure 6 specifies. tests/load_index_test.cc covers
// the directed cases; this file is the exhaustive small-space property.
#include <gtest/gtest.h>

#include <map>
#include <span>
#include <utility>
#include <vector>

#include "schedule/load_index.h"
#include "schedule/slot_schedule.h"
#include "sim/random.h"

namespace vod {
namespace {

// Reference scan over plain values: min over [a, b], ties latest/earliest.
std::pair<int, size_t> naive_min(const std::vector<int>& v, size_t a,
                                 size_t b, bool latest) {
  int best = v[a];
  size_t pos = a;
  for (size_t p = a; p <= b; ++p) {
    if (v[p] < best || (latest && v[p] == best)) {
      best = v[p];
      pos = p;
    }
  }
  return {best, pos};
}

TEST(LoadIndexWrap, ExhaustiveSmallRingsAgainstNaiveScan) {
  // Ring sizes 1..9 (1 and 2 hit the degenerate trees: a single leaf and
  // the smallest power-of-two padding). For each size, a randomized value
  // walk checking EVERY (a, b) range after every update — exhaustive in
  // the query space, randomized only in the values.
  for (size_t size = 1; size <= 9; ++size) {
    Rng rng(1000 + size);
    LoadIndex idx(size);
    std::vector<int> ref(size, 0);
    for (int step = 0; step < 60; ++step) {
      const size_t pos = rng.uniform_index(size);
      const int delta = static_cast<int>(rng.uniform_index(7)) - 3;
      idx.add(pos, delta);
      ref[pos] += delta;
      for (size_t a = 0; a < size; ++a) {
        for (size_t b = a; b < size; ++b) {
          const auto [want_min_l, want_pos_l] = naive_min(ref, a, b, true);
          const auto [want_min_e, want_pos_e] = naive_min(ref, a, b, false);
          const LoadIndex::MinResult latest = idx.min_latest(a, b);
          const LoadIndex::MinResult earliest = idx.min_earliest(a, b);
          ASSERT_EQ(latest.load, want_min_l)
              << "size " << size << " step " << step << " [" << a << ","
              << b << "]";
          ASSERT_EQ(latest.pos, want_pos_l);
          ASSERT_EQ(earliest.load, want_min_e);
          ASSERT_EQ(earliest.pos, want_pos_e);
        }
      }
    }
  }
}

// Reference for SlotSchedule: scan load() + overlay over slots [lo, hi].
SlotSchedule::MinLoad naive_window_min(
    const SlotSchedule& s, const std::map<Slot, int>& overlay, Slot lo,
    Slot hi, bool latest) {
  SlotSchedule::MinLoad out;
  for (Slot t = lo; t <= hi; ++t) {
    const auto it = overlay.find(t);
    const int load = s.load(t) + (it == overlay.end() ? 0 : it->second);
    if (out.slot == 0 || load < out.load || (latest && load == out.load)) {
      out.slot = t;
      out.load = load;
    }
  }
  return out;
}

TEST(SlotScheduleWrap, SeamSweepEveryWindowEveryOffset) {
  // Windows 1..9. The slab layout rounds the ring up to a power of two
  // (2, 4, 8, 16 here — window 9 crosses into a 16-ring, exercising the
  // mask with real padding positions), so the sweep advances 0..2*ring of
  // the ACTUAL ring size to park the wrap seam at every offset. Then lay
  // down random instances and check every admissible (lo, hi) window —
  // with and without overlay deltas — against the naive scan: the full
  // cross product of (ring size) x (seam position) x (query window). The
  // batched raw-ring probes (scan_min_load_latest / _earliest) are checked
  // in the same sweep against the overlay-free naive scan, which they must
  // reproduce regardless of any live overlay.
  for (int window = 1; window <= 9; ++window) {
    int ring = 1;
    while (ring < window + 1) ring *= 2;
    for (int advances = 0; advances <= 2 * ring; ++advances) {
      Rng rng(77 * window + advances);
      SlotSchedule s(/*num_segments=*/window, window);
      for (int i = 0; i < advances; ++i) s.advance();
      ASSERT_EQ(s.now(), advances);

      // Random load pattern over the live window (now, now + window].
      const int placements = static_cast<int>(rng.uniform_index(
          static_cast<size_t>(2 * window) + 1));
      for (int i = 0; i < placements; ++i) {
        const Segment j =
            static_cast<Segment>(1 + rng.uniform_index(window));
        const Slot slot =
            s.now() + 1 + static_cast<Slot>(rng.uniform_index(window));
        s.add_instance(j, slot);
      }

      for (int with_overlay = 0; with_overlay <= 1; ++with_overlay) {
        std::map<Slot, int> overlay;
        if (with_overlay) {
          // A few transient deltas, including on the seam-adjacent slots.
          const int n = 1 + static_cast<int>(rng.uniform_index(3));
          for (int i = 0; i < n; ++i) {
            const Slot slot =
                s.now() + 1 + static_cast<Slot>(rng.uniform_index(window));
            const int delta = 1 + static_cast<int>(rng.uniform_index(3));
            s.add_load_overlay(slot, delta);
            overlay[slot] += delta;
          }
        }
        for (Slot lo = s.now() + 1; lo <= s.now() + window; ++lo) {
          for (Slot hi = lo; hi <= s.now() + window; ++hi) {
            const SlotSchedule::MinLoad want_l =
                naive_window_min(s, overlay, lo, hi, true);
            const SlotSchedule::MinLoad want_e =
                naive_window_min(s, overlay, lo, hi, false);
            const SlotSchedule::MinLoad got_l = s.min_load_latest(lo, hi);
            const SlotSchedule::MinLoad got_e = s.min_load_earliest(lo, hi);
            ASSERT_EQ(got_l.slot, want_l.slot)
                << "window " << window << " advances " << advances
                << " overlay " << with_overlay << " [" << lo << "," << hi
                << "]";
            ASSERT_EQ(got_l.load, want_l.load);
            ASSERT_EQ(got_e.slot, want_e.slot);
            ASSERT_EQ(got_e.load, want_e.load);

            // The batched probes scan the RAW load counters: identical to
            // the naive scan with no overlay, overlay or not.
            const std::map<Slot, int> no_overlay;
            const SlotSchedule::MinLoad want_raw_l =
                naive_window_min(s, no_overlay, lo, hi, true);
            const SlotSchedule::MinLoad want_raw_e =
                naive_window_min(s, no_overlay, lo, hi, false);
            const SlotSchedule::MinLoad scan_l =
                s.scan_min_load_latest(lo, hi);
            const SlotSchedule::MinLoad scan_e =
                s.scan_min_load_earliest(lo, hi);
            ASSERT_EQ(scan_l.slot, want_raw_l.slot)
                << "raw scan, window " << window << " advances " << advances
                << " [" << lo << "," << hi << "]";
            ASSERT_EQ(scan_l.load, want_raw_l.load);
            ASSERT_EQ(scan_e.slot, want_raw_e.slot);
            ASSERT_EQ(scan_e.load, want_raw_e.load);
          }
        }
        if (with_overlay) s.clear_load_overlay();
      }
    }
  }
}

TEST(SlotScheduleWrap, SeamTieAlwaysPrefersLateRange) {
  // Directed: all-equal loads across the seam for every window size. The
  // "latest" winner must be the numerically largest slot (late range,
  // small ring positions); "earliest" the smallest (pre-seam, large ring
  // positions). This is the exact composition rule that broke once. Both
  // the indexed range-min and the batched raw-ring scan must honor it.
  for (int window = 2; window <= 9; ++window) {
    SlotSchedule s(window, window);
    int ring = 1;
    while (ring < window + 1) ring *= 2;
    // Advance to now = ring - 2: the window's first slot lands on the last
    // ring position and everything after it wraps to positions 0.. — the
    // seam sits right after lo, so latest-vs-earliest must cross it.
    for (int i = 0; i < ring - 2; ++i) s.advance();
    for (int k = 1; k <= window; ++k) {
      s.add_instance(static_cast<Segment>(k), s.now() + k);
    }
    const Slot lo = s.now() + 1;
    const Slot hi = s.now() + window;
    EXPECT_EQ(s.min_load_latest(lo, hi).slot, hi) << "window " << window;
    EXPECT_EQ(s.min_load_earliest(lo, hi).slot, lo) << "window " << window;
    EXPECT_EQ(s.scan_min_load_latest(lo, hi).slot, hi) << "window " << window;
    EXPECT_EQ(s.scan_min_load_earliest(lo, hi).slot, lo)
        << "window " << window;
  }
}

TEST(SlotScheduleWrap, SlabRowsSurviveGrowthAcrossTheSeam) {
  // Slab invariant (DESIGN.md §14): a row-capacity re-layout while the
  // window straddles the wrap seam must preserve every ring row and every
  // per-segment row bit for bit. Overfill one wrapped slot far past the
  // initial row capacities and diff the views against a shadow model.
  SlotSchedule s(/*num_segments=*/24, /*window=*/9);  // ring 16
  for (int i = 0; i < 14; ++i) s.advance();  // seam inside (now, now+9]
  const Slot wrapped = s.now() + 6;          // maps past the seam
  const Slot pre_seam = s.now() + 1;
  std::vector<Segment> want_wrapped, want_pre;
  for (Segment j = 1; j <= 20; ++j) {
    s.add_instance(j, wrapped);
    want_wrapped.push_back(j);
    if (j <= 3) {
      s.add_instance(static_cast<Segment>(20 + j), pre_seam);
      want_pre.push_back(static_cast<Segment>(20 + j));
    }
  }
  EXPECT_GT(s.total_slab_grows(), 0u) << "test must actually force growth";
  const std::span<const Segment> got_wrapped = s.contents(wrapped);
  ASSERT_EQ(got_wrapped.size(), want_wrapped.size());
  for (size_t i = 0; i < want_wrapped.size(); ++i) {
    EXPECT_EQ(got_wrapped[i], want_wrapped[i]) << "wrapped row index " << i;
  }
  const std::span<const Segment> got_pre = s.contents(pre_seam);
  ASSERT_EQ(got_pre.size(), want_pre.size());
  for (size_t i = 0; i < want_pre.size(); ++i) {
    EXPECT_EQ(got_pre[i], want_pre[i]) << "pre-seam row index " << i;
  }
  EXPECT_EQ(s.load(wrapped), 20);
  EXPECT_EQ(s.min_load_latest(wrapped, wrapped).load, 20);
  // Per-segment rows and the latest cache survived the re-layouts too.
  for (Segment j = 1; j <= 20; ++j) {
    ASSERT_EQ(s.instances_of(j).size(), 1u);
    EXPECT_EQ(s.instances_of(j)[0], wrapped);
    EXPECT_EQ(s.latest_instance(j), wrapped);
  }
}

}  // namespace
}  // namespace vod
