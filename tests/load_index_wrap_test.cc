// Wrap-seam property tests for the placement fast path.
//
// The ring wrap is where LoadIndex/SlotSchedule composition historically
// broke (DESIGN.md §9): a slot window (lo, hi] maps to at most two
// contiguous position ranges, and the tie-break has to prefer the *late*
// range even though its ring positions are numerically smaller. These
// tests sweep every small ring size exhaustively — every seam position,
// every (lo, hi) window, overlays on and off — against the literal linear
// scan the paper's Figure 6 specifies. tests/load_index_test.cc covers
// the directed cases; this file is the exhaustive small-space property.
#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "schedule/load_index.h"
#include "schedule/slot_schedule.h"
#include "sim/random.h"

namespace vod {
namespace {

// Reference scan over plain values: min over [a, b], ties latest/earliest.
std::pair<int, size_t> naive_min(const std::vector<int>& v, size_t a,
                                 size_t b, bool latest) {
  int best = v[a];
  size_t pos = a;
  for (size_t p = a; p <= b; ++p) {
    if (v[p] < best || (latest && v[p] == best)) {
      best = v[p];
      pos = p;
    }
  }
  return {best, pos};
}

TEST(LoadIndexWrap, ExhaustiveSmallRingsAgainstNaiveScan) {
  // Ring sizes 1..9 (1 and 2 hit the degenerate trees: a single leaf and
  // the smallest power-of-two padding). For each size, a randomized value
  // walk checking EVERY (a, b) range after every update — exhaustive in
  // the query space, randomized only in the values.
  for (size_t size = 1; size <= 9; ++size) {
    Rng rng(1000 + size);
    LoadIndex idx(size);
    std::vector<int> ref(size, 0);
    for (int step = 0; step < 60; ++step) {
      const size_t pos = rng.uniform_index(size);
      const int delta = static_cast<int>(rng.uniform_index(7)) - 3;
      idx.add(pos, delta);
      ref[pos] += delta;
      for (size_t a = 0; a < size; ++a) {
        for (size_t b = a; b < size; ++b) {
          const auto [want_min_l, want_pos_l] = naive_min(ref, a, b, true);
          const auto [want_min_e, want_pos_e] = naive_min(ref, a, b, false);
          const LoadIndex::MinResult latest = idx.min_latest(a, b);
          const LoadIndex::MinResult earliest = idx.min_earliest(a, b);
          ASSERT_EQ(latest.load, want_min_l)
              << "size " << size << " step " << step << " [" << a << ","
              << b << "]";
          ASSERT_EQ(latest.pos, want_pos_l);
          ASSERT_EQ(earliest.load, want_min_e);
          ASSERT_EQ(earliest.pos, want_pos_e);
        }
      }
    }
  }
}

// Reference for SlotSchedule: scan load() + overlay over slots [lo, hi].
SlotSchedule::MinLoad naive_window_min(
    const SlotSchedule& s, const std::map<Slot, int>& overlay, Slot lo,
    Slot hi, bool latest) {
  SlotSchedule::MinLoad out;
  for (Slot t = lo; t <= hi; ++t) {
    const auto it = overlay.find(t);
    const int load = s.load(t) + (it == overlay.end() ? 0 : it->second);
    if (out.slot == 0 || load < out.load || (latest && load == out.load)) {
      out.slot = t;
      out.load = load;
    }
  }
  return out;
}

TEST(SlotScheduleWrap, SeamSweepEveryWindowEveryOffset) {
  // Windows 1..9 (ring sizes 2..10). For every window, park the seam at
  // every ring offset by advancing 0..2*ring slots, lay down random
  // instances, then check every admissible (lo, hi) window — with and
  // without overlay deltas — against the naive scan. This is the full
  // cross product of (ring size) x (seam position) x (query window).
  for (int window = 1; window <= 9; ++window) {
    const int ring = window + 1;
    for (int advances = 0; advances <= 2 * ring; ++advances) {
      Rng rng(77 * window + advances);
      SlotSchedule s(/*num_segments=*/window, window);
      for (int i = 0; i < advances; ++i) s.advance();
      ASSERT_EQ(s.now(), advances);

      // Random load pattern over the live window (now, now + window].
      const int placements = static_cast<int>(rng.uniform_index(
          static_cast<size_t>(2 * window) + 1));
      for (int i = 0; i < placements; ++i) {
        const Segment j =
            static_cast<Segment>(1 + rng.uniform_index(window));
        const Slot slot =
            s.now() + 1 + static_cast<Slot>(rng.uniform_index(window));
        s.add_instance(j, slot);
      }

      for (int with_overlay = 0; with_overlay <= 1; ++with_overlay) {
        std::map<Slot, int> overlay;
        if (with_overlay) {
          // A few transient deltas, including on the seam-adjacent slots.
          const int n = 1 + static_cast<int>(rng.uniform_index(3));
          for (int i = 0; i < n; ++i) {
            const Slot slot =
                s.now() + 1 + static_cast<Slot>(rng.uniform_index(window));
            const int delta = 1 + static_cast<int>(rng.uniform_index(3));
            s.add_load_overlay(slot, delta);
            overlay[slot] += delta;
          }
        }
        for (Slot lo = s.now() + 1; lo <= s.now() + window; ++lo) {
          for (Slot hi = lo; hi <= s.now() + window; ++hi) {
            const SlotSchedule::MinLoad want_l =
                naive_window_min(s, overlay, lo, hi, true);
            const SlotSchedule::MinLoad want_e =
                naive_window_min(s, overlay, lo, hi, false);
            const SlotSchedule::MinLoad got_l = s.min_load_latest(lo, hi);
            const SlotSchedule::MinLoad got_e = s.min_load_earliest(lo, hi);
            ASSERT_EQ(got_l.slot, want_l.slot)
                << "window " << window << " advances " << advances
                << " overlay " << with_overlay << " [" << lo << "," << hi
                << "]";
            ASSERT_EQ(got_l.load, want_l.load);
            ASSERT_EQ(got_e.slot, want_e.slot);
            ASSERT_EQ(got_e.load, want_e.load);
          }
        }
        if (with_overlay) s.clear_load_overlay();
      }
    }
  }
}

TEST(SlotScheduleWrap, SeamTieAlwaysPrefersLateRange) {
  // Directed: all-equal loads across the seam for every window size. The
  // "latest" winner must be the numerically largest slot (late range,
  // small ring positions); "earliest" the smallest (pre-seam, large ring
  // positions). This is the exact composition rule that broke once.
  for (int window = 2; window <= 9; ++window) {
    SlotSchedule s(window, window);
    const int ring = window + 1;
    // Advance to now = ring - 2: the window's first slot lands on the last
    // ring position and everything after it wraps to positions 0.. — the
    // seam sits right after lo, so latest-vs-earliest must cross it.
    for (int i = 0; i < ring - 2; ++i) s.advance();
    for (int k = 1; k <= window; ++k) {
      s.add_instance(static_cast<Segment>(k), s.now() + k);
    }
    const Slot lo = s.now() + 1;
    const Slot hi = s.now() + window;
    EXPECT_EQ(s.min_load_latest(lo, hi).slot, hi) << "window " << window;
    EXPECT_EQ(s.min_load_earliest(lo, hi).slot, lo) << "window " << window;
  }
}

}  // namespace
}  // namespace vod
