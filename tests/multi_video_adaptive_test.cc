#include <gtest/gtest.h>

#include <cmath>

#include "server/multi_video.h"

namespace vod {
namespace {

MultiVideoConfig base_config() {
  MultiVideoConfig c;
  c.catalog_size = 6;
  c.num_segments = 20;
  c.policy = VideoPolicy::kAdaptive;
  c.total_requests_per_hour = 30.0;
  c.diurnal_peak_requests_per_hour = 600.0;
  c.warmup_hours = 2.0;
  c.measured_hours = 30.0;
  c.provision_window_slots = 50;
  // Tight bands + short dwell so the short test window sees real switching.
  c.adaptive.ewma.half_life_slots = 16.0;
  c.adaptive.controller.min_dwell_slots = 16;
  c.seed = 7;
  return c;
}

void expect_identical(const MultiVideoResult& a, const MultiVideoResult& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_DOUBLE_EQ(a.avg_streams, b.avg_streams);
  EXPECT_DOUBLE_EQ(a.max_streams, b.max_streams);
  ASSERT_EQ(a.per_video_avg.size(), b.per_video_avg.size());
  for (size_t v = 0; v < a.per_video_avg.size(); ++v) {
    EXPECT_DOUBLE_EQ(a.per_video_avg[v], b.per_video_avg[v]) << v;
  }
  ASSERT_EQ(a.per_video_provisioned.size(), b.per_video_provisioned.size());
  for (size_t v = 0; v < a.per_video_provisioned.size(); ++v) {
    EXPECT_DOUBLE_EQ(a.per_video_provisioned[v], b.per_video_provisioned[v])
        << v;
  }
  EXPECT_EQ(a.per_video_switches, b.per_video_switches);
  EXPECT_EQ(a.per_video_requests, b.per_video_requests);
}

TEST(MultiVideoAdaptive, BitIdenticalAtAnyThreadCount) {
  // The acceptance bar: the adaptive policy under a diurnal curve must be
  // bit-identical at 1/2/4/8 worker threads (per-shard determinism; no
  // state escapes a video's shard kernel).
  MultiVideoConfig c = base_config();
  c.num_threads = 1;
  const MultiVideoResult t1 = run_multi_video_simulation(c);
  for (int threads : {2, 4, 8}) {
    c.num_threads = threads;
    const MultiVideoResult tn = run_multi_video_simulation(c);
    SCOPED_TRACE(threads);
    expect_identical(t1, tn);
  }
}

TEST(MultiVideoAdaptive, DiurnalSwingActuallySwitches) {
  // A 20x day/night swing crossing both ladder boundaries has to produce
  // mode switches somewhere in the catalog — otherwise the controller is
  // inert and the policy degenerates to a static pin.
  const MultiVideoResult r = run_multi_video_simulation(base_config());
  uint64_t switches = 0;
  for (uint64_t s : r.per_video_switches) switches += s;
  EXPECT_GT(switches, 0u);
  EXPECT_GT(r.requests, 0u);
}

TEST(MultiVideoAdaptive, ZeroRateCatalogIsLegalAndFinite) {
  // The degenerate dead server: no arrivals at all. Every statistic must
  // be a real number — the EWMA holds exactly 0 and the controller walks
  // down to the cheapest rung (one switch from the kDhb start) and stays.
  MultiVideoConfig c = base_config();
  c.total_requests_per_hour = 0.0;
  c.diurnal_peak_requests_per_hour = 0.0;
  c.measured_hours = 4.0;
  const MultiVideoResult r = run_multi_video_simulation(c);
  EXPECT_EQ(r.requests, 0u);
  EXPECT_FALSE(std::isnan(r.avg_streams));
  EXPECT_DOUBLE_EQ(r.avg_streams, 0.0);
  for (double p : r.per_video_provisioned) {
    EXPECT_FALSE(std::isnan(p));
    EXPECT_DOUBLE_EQ(p, 0.0);
  }
  for (uint64_t s : r.per_video_switches) EXPECT_LE(s, 1u);
}

TEST(MultiVideoAdaptive, ZeroMeasuredWindowIsLegalAndFinite) {
  MultiVideoConfig c = base_config();
  c.warmup_hours = 1.0;
  c.measured_hours = 0.0;
  const MultiVideoResult r = run_multi_video_simulation(c);
  EXPECT_EQ(r.measured_slots, 0u);
  EXPECT_FALSE(std::isnan(r.avg_streams));
  for (double p : r.per_video_provisioned) EXPECT_FALSE(std::isnan(p));
}

TEST(MultiVideoAdaptive, PinnedStaticLadderMatchesTheStaticPolicy) {
  // A ladder pinned to the static rung runs the frontier-baseline code
  // path; it must reproduce the dedicated kStatic policy's bandwidth
  // exactly (same mappings, same always-on accounting).
  MultiVideoConfig pinned = base_config();
  pinned.adaptive.controller.initial_mode = 2;
  pinned.adaptive.controller.min_mode = 2;
  pinned.adaptive.controller.max_mode = 2;
  const MultiVideoResult a = run_multi_video_simulation(pinned);

  MultiVideoConfig stat = base_config();
  stat.policy = VideoPolicy::kStatic;
  const MultiVideoResult s = run_multi_video_simulation(stat);

  EXPECT_DOUBLE_EQ(a.avg_streams, s.avg_streams);
  EXPECT_DOUBLE_EQ(a.max_streams, s.max_streams);
  for (size_t v = 0; v < a.per_video_avg.size(); ++v) {
    EXPECT_DOUBLE_EQ(a.per_video_avg[v], s.per_video_avg[v]) << v;
  }
  for (uint64_t sw : a.per_video_switches) EXPECT_EQ(sw, 0u);
}

TEST(MultiVideoAdaptive, ProvisionedBandwidthIsWindowPeakMean) {
  // Provisioned >= average (a mean of window maxima), and absent when the
  // accounting is off.
  MultiVideoConfig c = base_config();
  const MultiVideoResult with = run_multi_video_simulation(c);
  ASSERT_EQ(with.per_video_provisioned.size(),
            static_cast<size_t>(c.catalog_size));
  for (size_t v = 0; v < with.per_video_provisioned.size(); ++v) {
    EXPECT_GE(with.per_video_provisioned[v], with.per_video_avg[v] - 1e-9)
        << v;
  }
  c.provision_window_slots = 0;
  const MultiVideoResult without = run_multi_video_simulation(c);
  EXPECT_TRUE(without.per_video_provisioned.empty());
  // The provisioning accounting is observational: it must not perturb the
  // simulation itself.
  EXPECT_DOUBLE_EQ(with.avg_streams, without.avg_streams);
  EXPECT_EQ(with.requests, without.requests);
}

TEST(MultiVideoAdaptive, FastAndNaiveEnginePathsAgree) {
  MultiVideoConfig c = base_config();
  c.measured_hours = 10.0;
  c.fast_admission = true;
  const MultiVideoResult fast = run_multi_video_simulation(c);
  c.fast_admission = false;
  const MultiVideoResult naive = run_multi_video_simulation(c);
  expect_identical(fast, naive);
}

}  // namespace
}  // namespace vod
