// Channel-bounded admission control: DHB under a hard per-slot stream
// budget, with deferred (FIFO) requests.
#include <gtest/gtest.h>

#include "analysis/schedule_auditor.h"
#include "core/dhb.h"
#include "core/dhb_simulator.h"
#include "protocols/npb.h"
#include "sim/random.h"

namespace vod {
namespace {

DhbConfig small_config(int n) {
  DhbConfig c;
  c.num_segments = n;
  return c;
}

TEST(BoundedAdmission, AdmitsWhenCapLoose) {
  DhbScheduler s(small_config(6));
  s.advance_slot();
  const auto r = s.on_request_bounded(6);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->new_instances, 6);
  EXPECT_TRUE(verify_plan(r->plan).deadlines_met);
}

TEST(BoundedAdmission, MatchesUnboundedWhenGenerous) {
  DhbScheduler a(small_config(8));
  DhbScheduler b(small_config(8));
  a.advance_slot();
  b.advance_slot();
  const DhbRequestResult ua = a.on_request();
  const auto ub = b.on_request_bounded(100);
  ASSERT_TRUE(ub.has_value());
  EXPECT_EQ(ua.plan.reception_slot, ub->plan.reception_slot);
}

TEST(BoundedAdmission, RefusesWithoutMutation) {
  // Cap 1: a single fresh request needs only one instance per slot, so it
  // fits; a second one in the same slot shares everything; but a request
  // one slot later needs fresh S1 in a slot already carrying S2 -> refuse.
  DhbScheduler s(small_config(4));
  s.advance_slot();
  ASSERT_TRUE(s.on_request_bounded(1).has_value());
  s.advance_slot();
  const int before = s.schedule().total_scheduled();
  // S1 window is (2,3]; slot 3 already carries S2: load 1 == cap.
  EXPECT_FALSE(s.on_request_bounded(1).has_value());
  EXPECT_EQ(s.schedule().total_scheduled(), before);  // rollback complete
}

TEST(BoundedAdmission, CountsOwnTentativePlacements) {
  // Cap 1 on an idle system: S_j lands in slot i+j only because earlier
  // tentative placements fill the earlier slots; the request must still
  // succeed (one instance per slot).
  DhbScheduler s(small_config(10));
  s.advance_slot();
  const auto r = s.on_request_bounded(1);
  ASSERT_TRUE(r.has_value());
  for (Segment j = 1; j <= 10; ++j) {
    EXPECT_EQ(r->plan.reception_slot[static_cast<size_t>(j - 1)], 1 + j);
  }
}

TEST(BoundedAdmission, RejectionCountsTheAttemptNotARequest) {
  // Same scenario as RefusesWithoutMutation. A refused admission used to
  // charge its slot probes to the lifetime counters without recording the
  // attempt anywhere, skewing the §3 probes-per-request metric; it now
  // lands in total_rejected_admissions() while total_requests() stays an
  // admissions-only count.
  DhbScheduler s(small_config(4));
  s.advance_slot();
  ASSERT_TRUE(s.on_request_bounded(1).has_value());
  EXPECT_EQ(s.total_rejected_admissions(), 0u);
  EXPECT_EQ(s.total_requests(), 1u);
  s.advance_slot();
  const uint64_t probes_before = s.total_slot_probes();
  EXPECT_FALSE(s.on_request_bounded(1).has_value());
  EXPECT_EQ(s.total_rejected_admissions(), 1u);
  EXPECT_EQ(s.total_requests(), 1u);       // unchanged by the rejection
  EXPECT_GT(s.total_slot_probes(), probes_before);  // probes still charged
  // ... and the probes stay attributable to the attempts that spent them.
  EXPECT_GE(s.total_slot_probes(),
            s.total_new_instances() + s.total_shared() +
                s.total_rejected_admissions());
}

TEST(BoundedAdmission, AuditorCoversRejectionCounter) {
  DhbScheduler s(small_config(4));
  ScheduleAuditor auditor;
  s.advance_slot();
  EXPECT_TRUE(auditor.audit(s).ok());
  ASSERT_TRUE(s.on_request_bounded(1).has_value());
  s.advance_slot();
  EXPECT_FALSE(s.on_request_bounded(1).has_value());
  // The auditor's conservation pass must accept a rejection-bearing
  // history (counters monotone, probes >= admitted demand + rejections).
  EXPECT_TRUE(auditor.audit(s).ok());
}

TEST(BoundedAdmission, RejectionCounterAccumulates) {
  DhbScheduler s(small_config(4));
  s.advance_slot();
  ASSERT_TRUE(s.on_request_bounded(1).has_value());
  s.advance_slot();
  for (uint64_t i = 1; i <= 3; ++i) {
    EXPECT_FALSE(s.on_request_bounded(1).has_value());
    EXPECT_EQ(s.total_rejected_admissions(), i);
  }
}

TEST(BoundedAdmission, SharedInstancesDoNotCountAgainstCap) {
  DhbScheduler s(small_config(6));
  s.advance_slot();
  ASSERT_TRUE(s.on_request_bounded(1).has_value());
  // Same slot: everything is shared; no new channel needed.
  const auto r = s.on_request_bounded(1);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->new_instances, 0);
}

TEST(BoundedAdmissionDeath, RequiresUncappedClients) {
  DhbConfig c = small_config(4);
  c.client_stream_cap = 2;
  DhbScheduler s(c);
  s.advance_slot();
  EXPECT_DEATH(s.on_request_bounded(4), "unlimited client bandwidth");
}

BoundedSimConfig bounded_sim(double rate, int cap) {
  BoundedSimConfig sim;
  sim.base.requests_per_hour = rate;
  sim.base.warmup_hours = 4.0;
  sim.base.measured_hours = 80.0;
  sim.channel_cap = cap;
  return sim;
}

TEST(BoundedSimulation, CapIsNeverExceeded) {
  for (int cap : {5, 6, 8}) {
    const BoundedSimResult r =
        run_bounded_dhb_simulation(DhbConfig{}, bounded_sim(500.0, cap));
    EXPECT_LE(r.max_streams, static_cast<double>(cap)) << cap;
    EXPECT_TRUE(r.playout_ok) << cap;
  }
}

TEST(BoundedSimulation, GenerousCapMeansNoDeferrals) {
  const BoundedSimResult r =
      run_bounded_dhb_simulation(DhbConfig{}, bounded_sim(100.0, 12));
  EXPECT_EQ(r.deferred, 0u);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_DOUBLE_EQ(r.avg_extra_wait_slots, 0.0);
}

TEST(BoundedSimulation, TightCapDefersButServes) {
  // Cap at NPB's 6 streams: Figure 8 says unbounded DHB peaks at 8, so a
  // few requests must wait — but the system still serves nearly everyone
  // with tiny average extra wait.
  const BoundedSimResult r =
      run_bounded_dhb_simulation(DhbConfig{}, bounded_sim(500.0, 6));
  EXPECT_GT(r.deferred, 0u);
  EXPECT_GT(r.requests, 0u);
  EXPECT_LT(r.avg_extra_wait_slots, 1.0);
  EXPECT_LT(static_cast<double>(r.rejected),
            0.01 * static_cast<double>(r.requests + r.rejected));
}

TEST(BoundedSimulation, WaitGrowsAsCapShrinks) {
  const BoundedSimResult loose =
      run_bounded_dhb_simulation(DhbConfig{}, bounded_sim(500.0, 7));
  const BoundedSimResult tight =
      run_bounded_dhb_simulation(DhbConfig{}, bounded_sim(500.0, 6));
  EXPECT_LE(loose.avg_extra_wait_slots, tight.avg_extra_wait_slots);
  EXPECT_LE(loose.deferred, tight.deferred);
}

TEST(BoundedSimulation, SubHarmonicCapSelfBatchesGracefully) {
  // Unbounded saturation needs ~H_99 = 5.2 streams on average, yet a cap
  // BELOW that does not collapse: deferral synchronizes arrivals into the
  // same admission slots, where they share everything — the queue turns
  // DHB into a batching protocol with bounded extra wait and no
  // rejections. (An emergent property worth a test of its own.)
  const BoundedSimResult r =
      run_bounded_dhb_simulation(DhbConfig{}, bounded_sim(1000.0, 5));
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_GT(r.deferred, r.requests / 5);     // lots of waiting...
  EXPECT_LE(r.max_extra_wait_slots, 10);     // ...but never long
  EXPECT_LE(r.max_streams, 5.0);
  EXPECT_GT(r.avg_streams, 4.0);
}

}  // namespace
}  // namespace vod
