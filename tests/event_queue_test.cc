#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace vod {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, TiesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(5.0, [&] { order.push_back(1); });
  q.schedule(5.0, [&] { order.push_back(2); });
  q.schedule(5.0, [&] { order.push_back(3); });
  q.run_until(5.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ClockAdvancesToEventTime) {
  EventQueue q;
  double seen = -1.0;
  q.schedule(4.5, [&] { seen = q.now(); });
  q.step();
  EXPECT_DOUBLE_EQ(seen, 4.5);
  EXPECT_DOUBLE_EQ(q.now(), 4.5);
}

TEST(EventQueue, RunUntilStopsBeforeLaterEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(9.0, [&] { ++fired; });
  q.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule(1.0, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  q.run_until(10.0);
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelFiredEventReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.run_until(2.0);
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, HandlerMaySchedule) {
  EventQueue q;
  std::vector<double> times;
  q.schedule(1.0, [&] {
    times.push_back(q.now());
    q.schedule(2.0, [&] { times.push_back(q.now()); });
  });
  q.run_until(5.0);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(EventQueue, HandlerMayCancelPending) {
  EventQueue q;
  int fired = 0;
  EventId victim = 0;
  q.schedule(1.0, [&] { q.cancel(victim); });
  victim = q.schedule(2.0, [&] { ++fired; });
  q.run_until(5.0);
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, SchedulingAtCurrentTimeFires) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { q.schedule(q.now(), [&] { ++fired; }); });
  q.run_until(1.0);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  std::vector<double> fired;
  for (int i = 999; i >= 0; --i) {
    const double t = static_cast<double>(i % 100) + 0.001 * i;
    q.schedule(t, [&fired, &q] { fired.push_back(q.now()); });
  }
  q.run_until(1000.0);
  ASSERT_EQ(fired.size(), 1000u);
  for (size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]);
  }
}

}  // namespace
}  // namespace vod
