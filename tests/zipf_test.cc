#include "sim/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace vod {
namespace {

TEST(Zipf, UniformWhenExponentZero) {
  ZipfDistribution z(10, 0.0);
  for (int i = 0; i < 10; ++i) EXPECT_NEAR(z.probability(i), 0.1, 1e-12);
}

TEST(Zipf, ProbabilitiesSumToOne) {
  ZipfDistribution z(50, 0.729);
  double total = 0.0;
  for (int i = 0; i < 50; ++i) total += z.probability(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipf, RanksAreMonotone) {
  ZipfDistribution z(20, 0.729);
  for (int i = 1; i < 20; ++i) {
    EXPECT_GE(z.probability(i - 1), z.probability(i));
  }
}

TEST(Zipf, ExactRatios) {
  ZipfDistribution z(3, 1.0);
  // Weights 1, 1/2, 1/3 -> probabilities 6/11, 3/11, 2/11.
  EXPECT_NEAR(z.probability(0), 6.0 / 11.0, 1e-12);
  EXPECT_NEAR(z.probability(1), 3.0 / 11.0, 1e-12);
  EXPECT_NEAR(z.probability(2), 2.0 / 11.0, 1e-12);
}

TEST(Zipf, SamplingMatchesProbabilities) {
  ZipfDistribution z(8, 0.729);
  Rng rng(77);
  std::vector<int> counts(8, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(z.sample(rng))];
  for (int i = 0; i < 8; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[static_cast<size_t>(i)]) / n,
                z.probability(i), 0.005)
        << "rank " << i;
  }
}

TEST(Zipf, SingleItem) {
  ZipfDistribution z(1, 2.0);
  Rng rng(1);
  EXPECT_EQ(z.sample(rng), 0);
  EXPECT_DOUBLE_EQ(z.probability(0), 1.0);
}

TEST(Zipf, SampleAlwaysInRange) {
  ZipfDistribution z(5, 1.5);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const int s = z.sample(rng);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 5);
  }
}

}  // namespace
}  // namespace vod
