#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace vod {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Csv, RoundTripWithHeader) {
  const std::string path = temp_path("rt.csv");
  const std::vector<std::vector<double>> rows = {{1.0, 2.5}, {3.25, -4.0}};
  ASSERT_TRUE(write_csv(path, {"x", "y"}, rows));
  std::vector<std::vector<double>> back;
  ASSERT_TRUE(read_csv(path, &back));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_DOUBLE_EQ(back[0][0], 1.0);
  EXPECT_DOUBLE_EQ(back[0][1], 2.5);
  EXPECT_DOUBLE_EQ(back[1][1], -4.0);
}

TEST(Csv, RoundTripWithoutHeader) {
  const std::string path = temp_path("nh.csv");
  ASSERT_TRUE(write_csv(path, {}, {{7.0}}));
  std::vector<std::vector<double>> back;
  ASSERT_TRUE(read_csv(path, &back));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_DOUBLE_EQ(back[0][0], 7.0);
}

TEST(Csv, PreservesPrecision) {
  const std::string path = temp_path("prec.csv");
  const double v = 636.123456789012;
  ASSERT_TRUE(write_csv(path, {}, {{v}}));
  std::vector<std::vector<double>> back;
  ASSERT_TRUE(read_csv(path, &back));
  EXPECT_NEAR(back[0][0], v, 1e-9);
}

TEST(Csv, ReadMissingFileFails) {
  std::vector<std::vector<double>> rows;
  EXPECT_FALSE(read_csv("/nonexistent/dir/file.csv", &rows));
}

TEST(Csv, WriteToBadPathFails) {
  EXPECT_FALSE(write_csv("/nonexistent/dir/file.csv", {}, {{1.0}}));
}

TEST(Csv, SecondNonNumericLineFails) {
  const std::string path = temp_path("bad.csv");
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("header\n1.0\noops\n", f);
  fclose(f);
  std::vector<std::vector<double>> rows;
  EXPECT_FALSE(read_csv(path, &rows));
}

TEST(Csv, SkipsEmptyLines) {
  const std::string path = temp_path("empty.csv");
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("1.0\n\n2.0\n", f);
  fclose(f);
  std::vector<std::vector<double>> rows;
  ASSERT_TRUE(read_csv(path, &rows));
  EXPECT_EQ(rows.size(), 2u);
}

TEST(Csv, MultiColumnRow) {
  const std::string path = temp_path("multi.csv");
  ASSERT_TRUE(write_csv(path, {"a", "b", "c"}, {{1, 2, 3}}));
  std::vector<std::vector<double>> back;
  ASSERT_TRUE(read_csv(path, &back));
  ASSERT_EQ(back[0].size(), 3u);
  EXPECT_DOUBLE_EQ(back[0][2], 3.0);
}

}  // namespace
}  // namespace vod
