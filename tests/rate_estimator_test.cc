#include "sim/rate_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vod {
namespace {

EwmaConfig cfg(double half_life, uint64_t warmup = 0) {
  EwmaConfig c;
  c.half_life_slots = half_life;
  c.warmup_slots = warmup;
  return c;
}

TEST(RateEstimator, ZeroObservedSlotsIsExactlyZero) {
  // The degenerate-config contract: no slots fed -> estimate 0.0, not NaN,
  // not a division by zero.
  EwmaRateEstimator e(cfg(64.0, 16));
  EXPECT_EQ(e.slots_observed(), 0u);
  EXPECT_DOUBLE_EQ(e.estimate(), 0.0);
  EXPECT_FALSE(e.warmed_up());
  EXPECT_FALSE(std::isnan(e.estimate()));
}

TEST(RateEstimator, FirstSlotSeedsTheEstimate) {
  // A video that starts hot must not spend half a half-life looking cold:
  // the first observation is adopted wholesale.
  EwmaRateEstimator e(cfg(64.0));
  e.on_slot(5);
  EXPECT_DOUBLE_EQ(e.estimate(), 5.0);
}

TEST(RateEstimator, DeadVideoStaysAtZeroForever) {
  EwmaRateEstimator e(cfg(8.0, 4));
  for (int i = 0; i < 1000; ++i) {
    e.on_slot(0);
    EXPECT_DOUBLE_EQ(e.estimate(), 0.0);
  }
  EXPECT_TRUE(e.warmed_up());
  EXPECT_EQ(e.slots_observed(), 1000u);
}

TEST(RateEstimator, HalfLifeMeansHalfTheWeight) {
  // Seed at 8, then feed zeros: after exactly H slots the estimate must be
  // 8 * (1 - alpha)^H = 8 * 2^(-1) = 4.
  const double h = 16.0;
  EwmaRateEstimator e(cfg(h));
  e.on_slot(8);
  for (int i = 0; i < static_cast<int>(h); ++i) e.on_slot(0);
  EXPECT_NEAR(e.estimate(), 4.0, 1e-9);
}

TEST(RateEstimator, ConvergesToConstantRate) {
  EwmaRateEstimator e(cfg(8.0));
  for (int i = 0; i < 200; ++i) e.on_slot(3);
  EXPECT_NEAR(e.estimate(), 3.0, 1e-9);
}

TEST(RateEstimator, ZeroSlotsAreObservationsNotNoOps) {
  // Idle slots must decay the estimate — a video that went cold has to
  // look cold, or the controller never switches back down.
  EwmaRateEstimator e(cfg(4.0));
  e.on_slot(10);
  const double seeded = e.estimate();
  e.on_slot(0);
  EXPECT_LT(e.estimate(), seeded);
  EXPECT_GT(e.estimate(), 0.0);
}

TEST(RateEstimator, WarmupCountsSlots) {
  EwmaRateEstimator e(cfg(64.0, 3));
  e.on_slot(1);
  e.on_slot(1);
  EXPECT_FALSE(e.warmed_up());
  e.on_slot(1);
  EXPECT_TRUE(e.warmed_up());
}

TEST(RateEstimator, ZeroWarmupTrustsTheFirstSlot) {
  EwmaRateEstimator e(cfg(64.0, 0));
  EXPECT_TRUE(e.warmed_up());  // vacuously: nothing to wait for
}

TEST(RateEstimator, NeverNegativeNeverNaN) {
  EwmaRateEstimator e(cfg(2.0));
  for (int i = 0; i < 100; ++i) {
    e.on_slot(i % 7 == 0 ? 1000u : 0u);
    EXPECT_GE(e.estimate(), 0.0);
    EXPECT_FALSE(std::isnan(e.estimate()));
  }
}

TEST(RateEstimatorDeath, RejectsNonPositiveHalfLife) {
  EXPECT_DEATH(EwmaRateEstimator(cfg(0.0)), "");
  EXPECT_DEATH(EwmaRateEstimator(cfg(-1.0)), "");
}

}  // namespace
}  // namespace vod
