// VCR resume / seek support: on_resume(f) admits a client that watches
// segments f..n starting next slot (pause-resume, or a seek to segment f).
#include <gtest/gtest.h>

#include "core/dhb.h"
#include "sim/random.h"

namespace vod {
namespace {

DhbConfig small_config(int n) {
  DhbConfig c;
  c.num_segments = n;
  return c;
}

TEST(DhbResume, ResumeAtOneIsOnRequest) {
  DhbScheduler a(small_config(8));
  DhbScheduler b(small_config(8));
  a.advance_slot();
  b.advance_slot();
  const DhbRequestResult ra = a.on_request();
  const DhbRequestResult rb = b.on_resume(1);
  EXPECT_EQ(ra.plan.reception_slot, rb.plan.reception_slot);
  EXPECT_EQ(ra.new_instances, rb.new_instances);
}

TEST(DhbResume, IdleResumeSchedulesSuffixOnly) {
  DhbScheduler s(small_config(6));
  s.advance_slot();
  const DhbRequestResult r = s.on_resume(4);
  // Only S4..S6 are scheduled, at the resume deadlines i+1..i+3.
  ASSERT_EQ(r.plan.reception_slot.size(), 3u);
  EXPECT_EQ(r.new_instances, 3);
  EXPECT_EQ(r.plan.reception_slot[0], 2);  // S4 watched during slot 2
  EXPECT_EQ(r.plan.reception_slot[1], 3);
  EXPECT_EQ(r.plan.reception_slot[2], 4);
  EXPECT_FALSE(s.schedule().has_future_instance(1));
  EXPECT_TRUE(s.schedule().has_future_instance(4));
}

TEST(DhbResume, ResumePeriodsClampToSuffixDeadlines) {
  DhbScheduler s(small_config(6));
  const std::vector<int> p = s.resume_periods(4);
  EXPECT_EQ(p, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.resume_periods(1), s.periods());
}

TEST(DhbResume, ResumeRidesAnEarlierRequestsTail) {
  DhbScheduler s(small_config(6));
  s.advance_slot();
  s.on_request();  // schedules S_j at slot 1 + j
  s.advance_slot();
  s.advance_slot();  // now slot 3
  // A client resuming at S3 during slot 3 wants S3 by slot 4, S4 by 5, ...
  // — exactly where the first request's instances sit: full sharing.
  const DhbRequestResult r = s.on_resume(3);
  EXPECT_EQ(r.new_instances, 0);
  EXPECT_EQ(r.shared_instances, 4);
  EXPECT_TRUE(verify_plan(r.plan, s.resume_periods(3)).deadlines_met);
}

TEST(DhbResume, PartialSharingWhenOffsetMisaligns) {
  DhbScheduler s(small_config(6));
  s.advance_slot();
  s.on_request();  // S_j at slot 1 + j
  for (int k = 0; k < 3; ++k) s.advance_slot();  // now slot 4
  // Resuming at S3 during slot 4: S3's window (4,5] misses the instance at
  // slot 4 (already under way), so a fresh S3 is scheduled; S4..S6 at
  // slots 5..7 are shared.
  const DhbRequestResult r = s.on_resume(3);
  EXPECT_EQ(r.new_instances, 1);
  EXPECT_EQ(r.shared_instances, 3);
  EXPECT_TRUE(verify_plan(r.plan, s.resume_periods(3)).deadlines_met);
}

TEST(DhbResume, SameSlotResumersShareSuffix) {
  DhbScheduler s(small_config(10));
  s.advance_slot();
  s.on_resume(5);
  const DhbRequestResult r = s.on_resume(5);
  EXPECT_EQ(r.new_instances, 0);
  EXPECT_EQ(r.shared_instances, 6);
}

TEST(DhbResume, PropertyDeadlinesAlwaysMet) {
  DhbConfig c = small_config(20);
  DhbScheduler s(c);
  Rng rng(99);
  for (int step = 0; step < 300; ++step) {
    s.advance_slot();
    if (rng.uniform() < 0.6) s.on_request();
    if (rng.uniform() < 0.4) {
      const Segment f =
          1 + static_cast<Segment>(rng.uniform_index(20));
      const DhbRequestResult r = s.on_resume(f);
      const PlanDiagnostics d = verify_plan(r.plan, s.resume_periods(f));
      ASSERT_TRUE(d.deadlines_met)
          << "resume at S" << f << ", slot " << s.current_slot();
      // Note: resumes use tighter windows than full requests, so the
      // <=1-future-instance invariant no longer holds (a resume may
      // legitimately duplicate an instance it cannot wait for); a small
      // bound still does.
      for (Segment j = 1; j <= 20; ++j) {
        ASSERT_LE(s.schedule().instances_of(j).size(), 4u);
      }
    }
  }
}

TEST(DhbResume, CappedResumeRespectsCap) {
  DhbConfig c = small_config(12);
  c.client_stream_cap = 2;
  DhbScheduler s(c);
  Rng rng(5);
  for (int step = 0; step < 200; ++step) {
    s.advance_slot();
    const Segment f = 1 + static_cast<Segment>(rng.uniform_index(12));
    const DhbRequestResult r = s.on_resume(f);
    const PlanDiagnostics d = verify_plan(r.plan, s.resume_periods(f));
    ASSERT_TRUE(d.deadlines_met);
    if (r.cap_violations == 0) {
      ASSERT_LE(d.max_concurrent_streams, 2);
    }
  }
}

TEST(DhbResume, ResumeAtLastSegment) {
  DhbScheduler s(small_config(7));
  s.advance_slot();
  const DhbRequestResult r = s.on_resume(7);
  ASSERT_EQ(r.plan.reception_slot.size(), 1u);
  EXPECT_EQ(r.plan.reception_slot[0], 2);  // next slot, period 1
}

TEST(DhbRange, OnRangeGeneralizesBothEntryPoints) {
  DhbScheduler a(small_config(8));
  DhbScheduler b(small_config(8));
  a.advance_slot();
  b.advance_slot();
  EXPECT_EQ(a.on_request().plan.reception_slot,
            b.on_range(1, 8).plan.reception_slot);
  DhbScheduler c(small_config(8));
  DhbScheduler e(small_config(8));
  c.advance_slot();
  e.advance_slot();
  EXPECT_EQ(c.on_resume(3).plan.reception_slot,
            e.on_range(3, 8).plan.reception_slot);
}

TEST(DhbRange, PrefixSchedulesOnlyDeclaredLength) {
  DhbScheduler s(small_config(10));
  s.advance_slot();
  const DhbRequestResult r = s.on_range(1, 4);
  ASSERT_EQ(r.plan.reception_slot.size(), 4u);
  EXPECT_EQ(r.new_instances, 4);
  EXPECT_TRUE(s.schedule().has_future_instance(4));
  EXPECT_FALSE(s.schedule().has_future_instance(5));
  EXPECT_TRUE(verify_plan(r.plan).deadlines_met);
}

TEST(DhbRange, MiddleRangeSharesWithFullRequest) {
  DhbScheduler s(small_config(10));
  s.advance_slot();
  s.on_request();  // S_j at slot 1 + j
  s.advance_slot();
  s.advance_slot();  // slot 3
  // Watching S3..S5 during slots 4..6 rides the first request exactly.
  const DhbRequestResult r = s.on_range(3, 5);
  EXPECT_EQ(r.new_instances, 0);
  EXPECT_EQ(r.shared_instances, 3);
}

TEST(DhbRange, SingleSegmentRange) {
  DhbScheduler s(small_config(6));
  s.advance_slot();
  const DhbRequestResult r = s.on_range(4, 4);
  ASSERT_EQ(r.plan.reception_slot.size(), 1u);
  EXPECT_EQ(r.plan.reception_slot[0], 2);  // next slot (resume window 1)
}

TEST(DhbRangeDeath, RejectsInvertedRange) {
  DhbScheduler s(small_config(6));
  s.advance_slot();
  EXPECT_DEATH(s.on_range(4, 3), "");
  EXPECT_DEATH(s.on_range(1, 7), "");
}

TEST(DhbResumeDeath, RejectsOutOfRange) {
  DhbScheduler s(small_config(5));
  s.advance_slot();
  EXPECT_DEATH(s.on_resume(0), "");
  EXPECT_DEATH(s.on_resume(6), "");
}

}  // namespace
}  // namespace vod
