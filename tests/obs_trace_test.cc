#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace vod {
namespace {

using obs::EngineObserver;
using obs::ObsSink;
using obs::ScopedObsSink;
using obs::TraceBuffer;
using obs::TraceClock;
using obs::TraceEvent;
using obs::TracePhase;

TraceEvent instant(const char* name, int64_t slot) {
  TraceEvent e;
  e.name = name;
  e.category = "test";
  e.phase = TracePhase::kInstant;
  e.ts = slot;
  return e;
}

TEST(TraceBuffer, RingKeepsMostRecent) {
  TraceBuffer buffer(4);
  for (int64_t i = 0; i < 6; ++i) buffer.emit(instant("e", i));
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.dropped(), 2u);
  EXPECT_EQ(buffer.emitted(), 6u);
  const std::vector<TraceEvent> events = buffer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts, static_cast<int64_t>(i + 2));  // oldest first
  }
}

TEST(TraceBuffer, DefaultTrackStampsConvenienceEmitters) {
  TraceBuffer buffer(8);
  buffer.set_track(7);
  obs::emit_instant(&buffer, "a", "test", 1, {{"k", 2}});
  obs::emit_counter(&buffer, "c", "test", 2, 9);
  const std::vector<TraceEvent> events = buffer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].track, 7u);
  ASSERT_EQ(events[0].num_args, 1u);
  EXPECT_STREQ(events[0].args[0].key, "k");
  EXPECT_EQ(events[0].args[0].value, 2);
  EXPECT_EQ(events[1].phase, TracePhase::kCounter);
  EXPECT_EQ(events[1].track, 7u);
}

TEST(ScopedSink, InstallsAndRestoresNested) {
  EXPECT_EQ(obs::current_sink(), nullptr);
  ObsSink outer, inner;
  {
    ScopedObsSink a(&outer);
    EXPECT_EQ(obs::current_sink(), &outer);
    {
      ScopedObsSink b(&inner);
      EXPECT_EQ(obs::current_sink(), &inner);
    }
    EXPECT_EQ(obs::current_sink(), &outer);
  }
  EXPECT_EQ(obs::current_sink(), nullptr);
}

#ifndef VOD_OBSERVE_DISABLED

TEST(Macros, RecordIntoAmbientSink) {
  obs::MetricShard metrics;
  TraceBuffer trace(16);
  ObsSink sink{&metrics, &trace};
  ScopedObsSink scoped(&sink);

  VOD_TRACE_INSTANT("evt", "test", 5, {"n", 3}, {"m", 4});
  VOD_TRACE_COUNTER("streams", "test", 6, 11);
  VOD_METRIC_INC("hits_total", 2);

  const std::vector<TraceEvent> events = trace.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "evt");
  EXPECT_EQ(events[0].ts, 5);
  ASSERT_EQ(events[0].num_args, 2u);
  EXPECT_EQ(events[0].args[1].value, 4);
  EXPECT_EQ(events[1].phase, TracePhase::kCounter);
  ASSERT_EQ(events[1].num_args, 1u);
  EXPECT_EQ(events[1].args[0].value, 11);
  EXPECT_EQ(metrics.counter_value("hits_total"), 2u);
}

TEST(Macros, TraceOnlySinkSkipsMetrics) {
  TraceBuffer trace(16);
  ObsSink sink{nullptr, &trace};
  ScopedObsSink scoped(&sink);
  VOD_METRIC_INC("hits_total", 1);   // no shard: dropped, no crash
  VOD_TRACE_INSTANT("evt", "test", 1);
  EXPECT_EQ(trace.size(), 1u);
}

TEST(WallSpan, EmitsCompleteWallEvent) {
  obs::MetricShard metrics;
  TraceBuffer trace(16);
  ObsSink sink{&metrics, &trace};
  ScopedObsSink scoped(&sink);
  {
    VOD_TRACE_WALL_SPAN("kernel", "test");
  }
  const std::vector<TraceEvent> events = trace.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, TracePhase::kComplete);
  EXPECT_EQ(events[0].clock, TraceClock::kWall);
  EXPECT_GE(events[0].ts, 0);
  EXPECT_GE(events[0].dur, 0);
}

#endif  // VOD_OBSERVE_DISABLED

TEST(Macros, NoSinkIsSafe) {
  ASSERT_EQ(obs::current_sink(), nullptr);
  VOD_TRACE_INSTANT("evt", "test", 1, {"n", 1});
  VOD_TRACE_COUNTER("streams", "test", 1, 1);
  VOD_METRIC_INC("hits_total", 1);
  VOD_TRACE_WALL_SPAN("kernel", "test");
}

TEST(EngineObserver, ShardsAreIndependentAndMergeInOrder) {
  EngineObserver::Options options;
  options.trace_capacity_per_shard = 8;
  EngineObserver observer(options);
  observer.prepare(3);
  EXPECT_EQ(observer.num_shards(), 3u);

  for (size_t s = 0; s < 3; ++s) {
    ObsSink sink = observer.sink(s);
    ASSERT_NE(sink.metrics, nullptr);
    ASSERT_NE(sink.trace, nullptr);
    sink.metrics->counter("videos_total")->inc(s + 1);
    sink.trace->emit(instant("done", static_cast<int64_t>(s)));
  }
  EXPECT_EQ(observer.merged_metrics().counter_value("videos_total"), 6u);
  const std::vector<const TraceBuffer*> buffers = observer.trace_buffers();
  ASSERT_EQ(buffers.size(), 3u);
  for (size_t s = 0; s < 3; ++s) {
    ASSERT_EQ(buffers[s]->size(), 1u);
    EXPECT_EQ(buffers[s]->snapshot()[0].ts, static_cast<int64_t>(s));
    EXPECT_EQ(buffers[s]->capacity(), 8u);
  }
  observer.prepare(2);  // never shrinks, shards keep their contents
  EXPECT_EQ(observer.num_shards(), 3u);
  EXPECT_EQ(observer.merged_metrics().counter_value("videos_total"), 6u);
}

}  // namespace
}  // namespace vod
