// Behavioral tests for the annotated lock primitives
// (util/thread_annotations.h). The *static* contract — VOD_GUARDED_BY
// fields rejecting unguarded access — is enforced at compile time by
// clang's -Werror=thread-safety (this file compiles under it in CI); the
// tests below pin the runtime semantics the annotations wrap: mutual
// exclusion, RAII release, try_lock, and condition-variable wakeups.
#include "util/thread_annotations.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace vod {
namespace {

TEST(Mutex, ProvidesMutualExclusion) {
  struct Shared {
    Mutex mutex;
    long counter VOD_GUARDED_BY(mutex) = 0;
  } shared;

  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(shared.mutex);
        ++shared.counter;
      }
    });
  }
  for (auto& th : threads) th.join();

  MutexLock lock(shared.mutex);
  EXPECT_EQ(shared.counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(Mutex, TryLockReflectsHeldState) {
  Mutex mutex;
  {
    MutexLock lock(mutex);
    // Held here: try_lock from another thread must fail.
    bool acquired = true;
    std::thread prober([&mutex, &acquired] {
      acquired = mutex.try_lock();
      if (acquired) mutex.unlock();
    });
    prober.join();
    EXPECT_FALSE(acquired);
  }
  // MutexLock released at scope exit: try_lock must now succeed.
  const bool reacquired = mutex.try_lock();
  EXPECT_TRUE(reacquired);
  if (reacquired) mutex.unlock();
}

TEST(CondVar, WaitReleasesLockAndWakesOnNotify) {
  Mutex mutex;
  CondVar cv;
  bool ready VOD_GUARDED_BY(mutex) = false;
  bool consumed VOD_GUARDED_BY(mutex) = false;

  std::thread consumer([&] {
    MutexLock lock(mutex);
    while (!ready) cv.wait(lock);
    consumed = true;
  });

  // The producer can take the lock while the consumer waits — proof that
  // wait() released it.
  {
    MutexLock lock(mutex);
    ready = true;
  }
  cv.notify_one();
  consumer.join();

  MutexLock lock(mutex);
  EXPECT_TRUE(consumed);
}

TEST(CondVar, NotifyAllWakesEveryWaiter) {
  Mutex mutex;
  CondVar cv;
  bool go VOD_GUARDED_BY(mutex) = false;
  int awake VOD_GUARDED_BY(mutex) = 0;

  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mutex);
      while (!go) cv.wait(lock);
      ++awake;
    });
  }

  {
    MutexLock lock(mutex);
    go = true;
  }
  cv.notify_all();
  for (auto& th : waiters) th.join();

  MutexLock lock(mutex);
  EXPECT_EQ(awake, kWaiters);
}

}  // namespace
}  // namespace vod
