#include "util/interval_set.h"

#include <gtest/gtest.h>

#include "sim/random.h"

namespace vod {
namespace {

TEST(IntervalSet, StartsEmpty) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.measure(), 0.0);
}

TEST(IntervalSet, SingleInterval) {
  IntervalSet s;
  s.add(1.0, 3.0);
  EXPECT_FALSE(s.empty());
  EXPECT_DOUBLE_EQ(s.measure(), 2.0);
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_DOUBLE_EQ(s.intervals()[0].lo, 1.0);
  EXPECT_DOUBLE_EQ(s.intervals()[0].hi, 3.0);
}

TEST(IntervalSet, IgnoresEmptyAndInvertedRanges) {
  IntervalSet s;
  s.add(2.0, 2.0);
  s.add(5.0, 4.0);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, MergesOverlapping) {
  IntervalSet s;
  s.add(0.0, 2.0);
  s.add(1.0, 4.0);
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_DOUBLE_EQ(s.measure(), 4.0);
}

TEST(IntervalSet, MergesAdjacent) {
  IntervalSet s;
  s.add(0.0, 2.0);
  s.add(2.0, 3.0);
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_DOUBLE_EQ(s.measure(), 3.0);
}

TEST(IntervalSet, KeepsDisjointSeparate) {
  IntervalSet s;
  s.add(0.0, 1.0);
  s.add(2.0, 3.0);
  EXPECT_EQ(s.intervals().size(), 2u);
  EXPECT_DOUBLE_EQ(s.measure(), 2.0);
}

TEST(IntervalSet, AddBridgesManyIntervals) {
  IntervalSet s;
  s.add(0.0, 1.0);
  s.add(2.0, 3.0);
  s.add(4.0, 5.0);
  s.add(0.5, 4.5);
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_DOUBLE_EQ(s.measure(), 5.0);
}

TEST(IntervalSet, InsertBeforeAll) {
  IntervalSet s;
  s.add(5.0, 6.0);
  s.add(1.0, 2.0);
  ASSERT_EQ(s.intervals().size(), 2u);
  EXPECT_DOUBLE_EQ(s.intervals()[0].lo, 1.0);
}

TEST(IntervalSet, SubtractMiddleSplits) {
  IntervalSet s;
  s.add(0.0, 10.0);
  s.subtract(3.0, 7.0);
  ASSERT_EQ(s.intervals().size(), 2u);
  EXPECT_DOUBLE_EQ(s.measure(), 6.0);
  EXPECT_DOUBLE_EQ(s.intervals()[0].hi, 3.0);
  EXPECT_DOUBLE_EQ(s.intervals()[1].lo, 7.0);
}

TEST(IntervalSet, SubtractEverything) {
  IntervalSet s;
  s.add(1.0, 2.0);
  s.add(3.0, 4.0);
  s.subtract(0.0, 5.0);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, SubtractNoOverlapIsNoop) {
  IntervalSet s;
  s.add(1.0, 2.0);
  s.subtract(3.0, 4.0);
  EXPECT_DOUBLE_EQ(s.measure(), 1.0);
}

TEST(IntervalSet, MeasureWithin) {
  IntervalSet s;
  s.add(0.0, 2.0);
  s.add(4.0, 6.0);
  EXPECT_DOUBLE_EQ(s.measure_within(1.0, 5.0), 2.0);
  EXPECT_DOUBLE_EQ(s.measure_within(2.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(s.measure_within(-10.0, 10.0), 4.0);
  EXPECT_DOUBLE_EQ(s.measure_within(5.0, 5.0), 0.0);
}

TEST(IntervalSet, Covers) {
  IntervalSet s;
  s.add(0.0, 2.0);
  s.add(2.5, 5.0);
  EXPECT_TRUE(s.covers(0.5, 1.5));
  EXPECT_TRUE(s.covers(0.0, 2.0));
  EXPECT_FALSE(s.covers(1.5, 3.0));  // crosses the gap
  EXPECT_TRUE(s.covers(3.0, 3.0));   // empty range trivially covered
}

TEST(IntervalSet, ComplementWithin) {
  IntervalSet s;
  s.add(1.0, 2.0);
  s.add(3.0, 4.0);
  IntervalSet c = s.complement_within(0.0, 5.0);
  ASSERT_EQ(c.intervals().size(), 3u);
  EXPECT_DOUBLE_EQ(c.measure(), 3.0);
  EXPECT_DOUBLE_EQ(c.intervals()[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(c.intervals()[0].hi, 1.0);
  EXPECT_DOUBLE_EQ(c.intervals()[2].lo, 4.0);
}

TEST(IntervalSet, ComplementOfEmptyIsWhole) {
  IntervalSet s;
  IntervalSet c = s.complement_within(2.0, 7.0);
  ASSERT_EQ(c.intervals().size(), 1u);
  EXPECT_DOUBLE_EQ(c.measure(), 5.0);
}

TEST(IntervalSet, ComplementOfFullIsEmpty) {
  IntervalSet s;
  s.add(0.0, 10.0);
  EXPECT_TRUE(s.complement_within(2.0, 7.0).empty());
}

TEST(IntervalSet, ComplementClipsPartialOverlap) {
  IntervalSet s;
  s.add(0.0, 3.0);
  IntervalSet c = s.complement_within(2.0, 5.0);
  ASSERT_EQ(c.intervals().size(), 1u);
  EXPECT_DOUBLE_EQ(c.intervals()[0].lo, 3.0);
  EXPECT_DOUBLE_EQ(c.intervals()[0].hi, 5.0);
}

TEST(IntervalSet, ClearResets) {
  IntervalSet s;
  s.add(0.0, 1.0);
  s.clear();
  EXPECT_TRUE(s.empty());
}

// Property test: random adds/subtracts agree with a brute-force boolean
// grid over [0, 100) at integer resolution.
TEST(IntervalSetProperty, MatchesBruteForceGrid) {
  Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    IntervalSet s;
    std::vector<bool> grid(100, false);
    for (int op = 0; op < 40; ++op) {
      const int lo = static_cast<int>(rng.uniform_index(100));
      const int hi = lo + static_cast<int>(rng.uniform_index(30));
      const bool add = rng.uniform() < 0.7;
      if (add) {
        s.add(lo, hi);
      } else {
        s.subtract(lo, hi);
      }
      for (int x = lo; x < hi && x < 100; ++x) {
        grid[static_cast<size_t>(x)] = add;
      }
      double grid_measure = 0.0;
      for (bool b : grid) grid_measure += b ? 1.0 : 0.0;
      ASSERT_DOUBLE_EQ(s.measure_within(0.0, 100.0), grid_measure)
          << "trial " << trial << " op " << op;
    }
    // Invariant: intervals sorted, disjoint, non-empty, non-adjacent.
    const auto& ivs = s.intervals();
    for (size_t i = 0; i < ivs.size(); ++i) {
      ASSERT_LT(ivs[i].lo, ivs[i].hi);
      if (i > 0) {
        ASSERT_LT(ivs[i - 1].hi, ivs[i].lo);
      }
    }
  }
}

// Complement twice returns the original restricted to the window.
TEST(IntervalSetProperty, DoubleComplementIsIdentity) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    IntervalSet s;
    for (int i = 0; i < 10; ++i) {
      const double lo = rng.uniform(0.0, 90.0);
      s.add(lo, lo + rng.uniform(0.0, 15.0));
    }
    const IntervalSet cc =
        s.complement_within(0.0, 100.0).complement_within(0.0, 100.0);
    EXPECT_NEAR(cc.measure(), s.measure_within(0.0, 100.0), 1e-9);
  }
}

}  // namespace
}  // namespace vod
