#include "vbr/trace.h"

#include <gtest/gtest.h>

#include <string>

namespace vod {
namespace {

VbrTrace ramp_trace() {
  // 10 seconds: 10, 20, ..., 100 KB.
  std::vector<double> v;
  for (int i = 1; i <= 10; ++i) v.push_back(10.0 * i);
  return VbrTrace(std::move(v));
}

TEST(VbrTrace, BasicStats) {
  const VbrTrace t = ramp_trace();
  EXPECT_EQ(t.duration_s(), 10);
  EXPECT_DOUBLE_EQ(t.total_kb(), 550.0);
  EXPECT_DOUBLE_EQ(t.mean_rate_kbs(), 55.0);
}

TEST(VbrTrace, PeakOverWindows) {
  const VbrTrace t = ramp_trace();
  EXPECT_DOUBLE_EQ(t.peak_rate_kbs(1), 100.0);
  EXPECT_DOUBLE_EQ(t.peak_rate_kbs(2), 95.0);   // (90+100)/2
  EXPECT_DOUBLE_EQ(t.peak_rate_kbs(10), 55.0);  // whole trace
  EXPECT_DOUBLE_EQ(t.peak_rate_kbs(50), 55.0);  // window longer than trace
}

TEST(VbrTrace, CumulativeInteger) {
  const VbrTrace t = ramp_trace();
  EXPECT_DOUBLE_EQ(t.cumulative_kb(0), 0.0);
  EXPECT_DOUBLE_EQ(t.cumulative_kb(1), 10.0);
  EXPECT_DOUBLE_EQ(t.cumulative_kb(3), 60.0);
  EXPECT_DOUBLE_EQ(t.cumulative_kb(10), 550.0);
  EXPECT_DOUBLE_EQ(t.cumulative_kb(99), 550.0);  // clamps
  EXPECT_DOUBLE_EQ(t.cumulative_kb(-5), 0.0);
}

TEST(VbrTrace, CumulativeInterpolates) {
  const VbrTrace t = ramp_trace();
  EXPECT_DOUBLE_EQ(t.cumulative_kb(0.5), 5.0);
  EXPECT_DOUBLE_EQ(t.cumulative_kb(2.5), 45.0);  // 30 + 0.5*30
  EXPECT_DOUBLE_EQ(t.cumulative_kb(1e9), 550.0);
}

TEST(VbrTrace, CumulativeIsMonotone) {
  const VbrTrace t = ramp_trace();
  double prev = -1.0;
  for (double x = 0.0; x <= 11.0; x += 0.25) {
    const double c = t.cumulative_kb(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(VbrTrace, EmptyTrace) {
  const VbrTrace t;
  EXPECT_EQ(t.duration_s(), 0);
  EXPECT_DOUBLE_EQ(t.total_kb(), 0.0);
  EXPECT_DOUBLE_EQ(t.mean_rate_kbs(), 0.0);
  EXPECT_DOUBLE_EQ(t.peak_rate_kbs(1), 0.0);
}

TEST(VbrTrace, CsvRoundTrip) {
  const VbrTrace t = ramp_trace();
  const std::string path = std::string(::testing::TempDir()) + "/trace.csv";
  ASSERT_TRUE(t.save_csv(path));
  VbrTrace back;
  ASSERT_TRUE(VbrTrace::load_csv(path, &back));
  EXPECT_EQ(back.duration_s(), t.duration_s());
  EXPECT_DOUBLE_EQ(back.total_kb(), t.total_kb());
  EXPECT_DOUBLE_EQ(back.cumulative_kb(3), t.cumulative_kb(3));
}

TEST(VbrTrace, LoadMissingFileFails) {
  VbrTrace t;
  EXPECT_FALSE(VbrTrace::load_csv("/nonexistent/trace.csv", &t));
}

TEST(VbrTraceDeath, RejectsNegativeSamples) {
  EXPECT_DEATH(VbrTrace({1.0, -2.0}), "negative");
}

}  // namespace
}  // namespace vod
