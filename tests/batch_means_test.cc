#include "sim/batch_means.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.h"

namespace vod {
namespace {

TEST(BatchMeans, NoBatchesGivesInfiniteHalfWidth) {
  BatchMeans bm(10);
  for (int i = 0; i < 9; ++i) bm.add(1.0);
  const ConfidenceInterval ci = bm.interval95();
  EXPECT_EQ(ci.batches, 0u);
  EXPECT_TRUE(std::isinf(ci.half_width));
}

TEST(BatchMeans, OneBatchGivesMeanButInfiniteHalfWidth) {
  BatchMeans bm(4);
  for (int i = 0; i < 4; ++i) bm.add(2.0);
  const ConfidenceInterval ci = bm.interval95();
  EXPECT_EQ(ci.batches, 1u);
  EXPECT_DOUBLE_EQ(ci.mean, 2.0);
  EXPECT_TRUE(std::isinf(ci.half_width));
}

TEST(BatchMeans, ConstantSignalHasZeroWidth) {
  BatchMeans bm(5);
  for (int i = 0; i < 100; ++i) bm.add(7.0);
  const ConfidenceInterval ci = bm.interval95();
  EXPECT_EQ(ci.batches, 20u);
  EXPECT_DOUBLE_EQ(ci.mean, 7.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(BatchMeans, CoversTrueMeanOfIidNoise) {
  // 95% CI should contain the true mean in most replications.
  int covered = 0;
  const int reps = 40;
  for (int r = 0; r < reps; ++r) {
    Rng rng(1000 + static_cast<uint64_t>(r));
    BatchMeans bm(100);
    for (int i = 0; i < 3000; ++i) bm.add(rng.normal(5.0, 2.0));
    const ConfidenceInterval ci = bm.interval95();
    if (ci.lo() <= 5.0 && 5.0 <= ci.hi()) ++covered;
  }
  EXPECT_GE(covered, 33);  // ~95% of 40, with slack
}

TEST(BatchMeans, IntervalEndpoints) {
  BatchMeans bm(1);
  bm.add(1.0);
  bm.add(3.0);
  const ConfidenceInterval ci = bm.interval95();
  EXPECT_DOUBLE_EQ(ci.mean, 2.0);
  EXPECT_DOUBLE_EQ(ci.lo(), ci.mean - ci.half_width);
  EXPECT_DOUBLE_EQ(ci.hi(), ci.mean + ci.half_width);
  EXPECT_GT(ci.half_width, 0.0);
}

TEST(StudentT, TableValues) {
  EXPECT_TRUE(std::isinf(student_t_975(0)));
  EXPECT_NEAR(student_t_975(1), 12.706, 1e-3);
  EXPECT_NEAR(student_t_975(10), 2.228, 1e-3);
  EXPECT_NEAR(student_t_975(30), 2.042, 1e-3);
  EXPECT_NEAR(student_t_975(1000), 1.960, 1e-3);
}

TEST(StudentT, MonotoneDecreasing) {
  double prev = student_t_975(1);
  for (uint64_t df : {2u, 5u, 10u, 20u, 30u, 40u, 60u, 120u, 200u}) {
    const double t = student_t_975(df);
    EXPECT_LE(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace vod
