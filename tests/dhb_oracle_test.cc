// Differential testing: DhbScheduler against an independent re-derivation
// of the Figure 6 algorithm built on naive data structures (a plain map of
// slot -> segment list, linear scans everywhere). Any divergence in the
// transmitted schedule under randomized workloads flags a bug in one of
// the two — and since the oracle is a direct transcription of the paper's
// pseudo-code, in practice in the optimized one.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/dhb.h"
#include "sim/random.h"

namespace vod {
namespace {

// A deliberately naive DHB: the paper's Figure 6, verbatim, on a
// std::map. O(n * window) per request, no sharing index, no ring buffer.
class OracleDhb {
 public:
  OracleDhb(int n, std::vector<int> periods)
      : n_(n), periods_(std::move(periods)) {
    if (periods_.empty()) {
      for (int j = 1; j <= n_; ++j) periods_.push_back(j);
    }
  }

  void on_request() {
    const Slot i = now_;
    for (Segment j = 1; j <= n_; ++j) {
      const Slot lo = i + 1;
      const Slot hi = i + periods_[static_cast<size_t>(j - 1)];
      // "search slots i+1 to i+j for an already scheduled instance of Sj"
      bool found = false;
      for (Slot s = lo; s <= hi && !found; ++s) {
        for (Segment seg : slots_[s]) found = found || seg == j;
      }
      if (found) continue;
      // "let m_min := min {m_k | i+1 <= k <= i+j};
      //  let k_max := max {k | i+1 <= k <= i+j and m_k = m_min}"
      size_t m_min = slots_[lo].size();
      for (Slot s = lo; s <= hi; ++s) m_min = std::min(m_min, slots_[s].size());
      Slot k_max = lo;
      for (Slot s = lo; s <= hi; ++s) {
        if (slots_[s].size() == m_min) k_max = s;
      }
      slots_[k_max].push_back(j);
    }
  }

  std::vector<Segment> advance_slot() {
    ++now_;
    std::vector<Segment> out = slots_[now_];
    slots_.erase(now_);
    return out;
  }

 private:
  int n_;
  std::vector<int> periods_;
  Slot now_ = 0;
  std::map<Slot, std::vector<Segment>> slots_;
};

void run_differential(int n, std::vector<int> periods, double load,
                      uint64_t seed, int steps) {
  DhbConfig config;
  config.num_segments = n;
  config.periods = periods;
  DhbScheduler fast(config);
  OracleDhb oracle(n, periods);
  Rng rng(seed);

  for (int step = 0; step < steps; ++step) {
    std::vector<Segment> a = fast.advance_slot();
    std::vector<Segment> b = oracle.advance_slot();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b) << "divergence at slot " << step + 1 << " (n=" << n
                    << ", load=" << load << ")";
    for (uint64_t k = rng.poisson(load); k > 0; --k) {
      fast.on_request();
      oracle.on_request();
    }
  }
}

TEST(DhbOracle, SmallSystemLightLoad) {
  run_differential(6, {}, 0.2, 11, 400);
}

TEST(DhbOracle, SmallSystemHeavyLoad) {
  run_differential(6, {}, 3.0, 12, 400);
}

TEST(DhbOracle, MediumSystemMixedLoad) {
  run_differential(25, {}, 0.7, 13, 300);
}

TEST(DhbOracle, PaperSizedSystem) {
  run_differential(99, {}, 1.2, 14, 150);
}

TEST(DhbOracle, WorkAheadPeriods) {
  // VBR-style periods with plateaus and delays.
  run_differential(10, {1, 3, 3, 5, 6, 6, 8, 10, 12, 14}, 0.8, 15, 300);
}

TEST(DhbOracle, TightPeriods) {
  // Deadline-critical periods (T[j] < j).
  run_differential(8, {1, 2, 2, 3, 3, 4, 4, 5}, 1.5, 16, 300);
}

}  // namespace
}  // namespace vod
