#include "protocols/skyscraper.h"

#include <gtest/gtest.h>

#include "protocols/fast_broadcasting.h"

namespace vod {
namespace {

TEST(Skyscraper, PublishedWidthSeries) {
  // Hua & Sheu's series: 1, 2, 2, 5, 5, 12, 12, 25, 25, 52, 52.
  const int expected[] = {1, 2, 2, 5, 5, 12, 12, 25, 25, 52, 52};
  for (int j = 1; j <= 11; ++j) {
    EXPECT_EQ(skyscraper_width(j), expected[j - 1]) << "w(" << j << ")";
  }
}

TEST(Skyscraper, WidthsKeepDoublingPattern) {
  EXPECT_EQ(skyscraper_width(12), 2 * 52 + 1);   // 105
  EXPECT_EQ(skyscraper_width(13), 105);
  EXPECT_EQ(skyscraper_width(14), 2 * 105 + 2);  // 212
}

TEST(Skyscraper, CapacityIsPrefixSum) {
  EXPECT_EQ(SbMapping::capacity(1), 1);
  EXPECT_EQ(SbMapping::capacity(2), 3);
  EXPECT_EQ(SbMapping::capacity(3), 5);
  EXPECT_EQ(SbMapping::capacity(4), 10);
  EXPECT_EQ(SbMapping::capacity(5), 15);
  EXPECT_EQ(SbMapping::capacity(6), 27);
}

TEST(Skyscraper, StreamsForIsInverseOfCapacity) {
  EXPECT_EQ(SbMapping::streams_for(1), 1);
  EXPECT_EQ(SbMapping::streams_for(5), 3);
  EXPECT_EQ(SbMapping::streams_for(6), 4);
  // SB needs more streams than FB/NPB for the paper's 99 segments — the
  // §2 comparison.
  EXPECT_GT(SbMapping::streams_for(99), 7);
}

// The paper's Figure 3: stream 2 alternates S2/S3, stream 3 alternates
// S4/S5.
TEST(Skyscraper, Figure3Layout) {
  const SbMapping sb(5);
  EXPECT_EQ(sb.streams(), 3);
  for (Slot t = 1; t <= 6; ++t) EXPECT_EQ(sb.segment_at(0, t), 1);
  EXPECT_EQ(sb.segment_at(1, 1), 2);
  EXPECT_EQ(sb.segment_at(1, 2), 3);
  EXPECT_EQ(sb.segment_at(1, 3), 2);
  EXPECT_EQ(sb.segment_at(2, 1), 4);
  EXPECT_EQ(sb.segment_at(2, 2), 5);
  EXPECT_EQ(sb.segment_at(2, 3), 4);
}

class SbValidationTest : public ::testing::TestWithParam<int> {};

TEST_P(SbValidationTest, MappingIsValid) {
  const SbMapping sb(GetParam());
  const MappingValidation v = validate_mapping(sb);
  EXPECT_TRUE(v.ok) << v.error;
}

INSTANTIATE_TEST_SUITE_P(SegmentCounts, SbValidationTest,
                         ::testing::Values(1, 2, 3, 5, 8, 10, 15, 27, 52, 99),
                         [](const auto& param_info) {
                           return "n" + std::to_string(param_info.param);
                         });

TEST(Skyscraper, AlwaysNeedsAtLeastFbStreams) {
  // SB trades server bandwidth for the 2-stream client cap: never fewer
  // streams than FB.
  for (int n : {1, 3, 7, 15, 31, 63, 99}) {
    EXPECT_GE(SbMapping::streams_for(n), FbMapping::streams_for(n)) << n;
  }
}

}  // namespace
}  // namespace vod
