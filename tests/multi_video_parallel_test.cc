// Determinism of the sharded multi-video engine: for a fixed seed, the
// MultiVideoResult must be bit-identical at every thread count — the shard
// decomposition and merge order are fixed, so the worker pool only changes
// wall-clock, never a single bit of output.
#include <gtest/gtest.h>

#include <vector>

#include "server/multi_video.h"

namespace vod {
namespace {

void expect_bit_identical(const MultiVideoResult& a,
                          const MultiVideoResult& b) {
  // Exact equality on purpose (EXPECT_DOUBLE_EQ would allow 4 ULPs).
  EXPECT_EQ(a.avg_streams, b.avg_streams);
  EXPECT_EQ(a.max_streams, b.max_streams);
  EXPECT_EQ(a.avg_kbs, b.avg_kbs);
  EXPECT_EQ(a.max_kbs, b.max_kbs);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.measured_slots, b.measured_slots);
  EXPECT_EQ(a.per_video_avg, b.per_video_avg);
  EXPECT_EQ(a.per_video_requests, b.per_video_requests);
}

MultiVideoConfig base_config(int catalog, VideoPolicy policy) {
  MultiVideoConfig c;
  c.catalog_size = catalog;
  c.num_segments = 49;
  c.total_requests_per_hour = 400.0;
  c.warmup_hours = 1.0;
  c.measured_hours = 10.0;
  c.policy = policy;
  return c;
}

TEST(MultiVideoParallel, BitIdenticalAcrossThreadCounts) {
  // 130 videos = 3 shards, so 2 and 8 threads genuinely interleave work.
  MultiVideoConfig c = base_config(130, VideoPolicy::kDhb);
  c.num_threads = 1;
  const MultiVideoResult sequential = run_multi_video_simulation(c);
  for (int threads : {2, 8}) {
    c.num_threads = threads;
    const MultiVideoResult parallel = run_multi_video_simulation(c);
    SCOPED_TRACE(threads);
    expect_bit_identical(sequential, parallel);
  }
}

TEST(MultiVideoParallel, AutoThreadsMatchesSequential) {
  MultiVideoConfig c = base_config(100, VideoPolicy::kHybrid);
  c.hybrid_static_top = 5;
  c.num_threads = 1;
  const MultiVideoResult sequential = run_multi_video_simulation(c);
  c.num_threads = 0;  // auto
  const MultiVideoResult automatic = run_multi_video_simulation(c);
  expect_bit_identical(sequential, automatic);
}

TEST(MultiVideoParallel, HeterogeneousCatalogSequentialVsSharded) {
  // Regression pin: per-video shapes (lengths and rates) ride along with
  // the shard, so a heterogeneous catalog must agree across thread counts
  // exactly like a homogeneous one.
  MultiVideoConfig c = base_config(6, VideoPolicy::kDhb);
  c.per_video_segments = {99, 49, 149, 25, 70, 40};
  c.per_video_rate_kbs = {600.0, 800.0, 500.0, 700.0, 650.0, 550.0};
  c.num_threads = 1;
  const MultiVideoResult sequential = run_multi_video_simulation(c);
  c.num_threads = 4;
  const MultiVideoResult sharded = run_multi_video_simulation(c);
  expect_bit_identical(sequential, sharded);
  EXPECT_GT(sequential.avg_kbs, 0.0);
}

TEST(MultiVideoParallel, SingleShardCatalogUnaffectedByThreads) {
  // Fewer videos than one shard: the pool has one task; still identical.
  MultiVideoConfig c = base_config(10, VideoPolicy::kDhb);
  c.num_threads = 1;
  const MultiVideoResult sequential = run_multi_video_simulation(c);
  c.num_threads = 8;
  const MultiVideoResult parallel = run_multi_video_simulation(c);
  expect_bit_identical(sequential, parallel);
}

TEST(MultiVideoParallel, RepeatedParallelRunsAgree) {
  // Same seed, same thread count, run twice: the pool must not leak any
  // scheduling nondeterminism into the result.
  MultiVideoConfig c = base_config(130, VideoPolicy::kDhb);
  c.num_threads = 4;
  const MultiVideoResult a = run_multi_video_simulation(c);
  const MultiVideoResult b = run_multi_video_simulation(c);
  expect_bit_identical(a, b);
}

TEST(MultiVideoParallel, SeedStillMatters) {
  MultiVideoConfig c = base_config(100, VideoPolicy::kDhb);
  c.num_threads = 4;
  const MultiVideoResult a = run_multi_video_simulation(c);
  c.seed = 43;
  const MultiVideoResult b = run_multi_video_simulation(c);
  EXPECT_NE(a.requests, b.requests);
}

}  // namespace
}  // namespace vod
