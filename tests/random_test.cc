#include "sim/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace vod {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMomentsMatch) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sq += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_NEAR(sq / n - 0.25, 1.0 / 12.0, 0.01);  // variance
}

TEST(Rng, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit in 1000 draws
}

TEST(Rng, UniformIndexOne) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, UniformIndexRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 10;
  int counts[kBuckets] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(kBuckets)];
  for (int c : counts) EXPECT_NEAR(c, n / kBuckets, 500);
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialMemorylessTail) {
  // P(X > 1/rate) should be e^-1.
  Rng rng(19);
  int over = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) over += rng.exponential(1.0) > 1.0;
  EXPECT_NEAR(static_cast<double>(over) / n, std::exp(-1.0), 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalMean) {
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2).
  Rng rng(31);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(0.0, 0.5);
  EXPECT_NEAR(sum / n, std::exp(0.125), 0.02);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(37);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double k = static_cast<double>(rng.poisson(3.0));
    sum += k;
    sq += k * k;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(sq / n - mean * mean, 3.0, 0.1);  // variance == mean
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PoissonLargeMeanNormalApprox) {
  Rng rng(43);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(400.0));
  EXPECT_NEAR(sum / n, 400.0, 1.0);
}

TEST(Rng, GeometricMean) {
  // Failures before first success: mean (1-p)/p.
  Rng rng(47);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(0.25));
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, GeometricPOneIsZero) {
  Rng rng(53);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, ForkProducesDecorrelatedStreams) {
  Rng base(59);
  Rng a = base.fork(1);
  Rng b = base.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng base1(61), base2(61);
  Rng a = base1.fork(5);
  Rng b = base2.fork(5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SplitMix64, KnownNonDegenerate) {
  SplitMix64 sm(0);
  const uint64_t a = sm.next();
  const uint64_t b = sm.next();
  EXPECT_NE(a, b);
  EXPECT_NE(a, 0u);
}

}  // namespace
}  // namespace vod
