// End-to-end byte-level playout for the §4 VBR variants: run the real DHB
// scheduler under each variant's configuration, and for sampled clients
// replay their reception plans against the trace's byte curve — delivered
// kilobytes must cover consumption at every slot boundary.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/dhb.h"
#include "sim/random.h"
#include "vbr/synthetic.h"
#include "vbr/variants.h"

namespace vod {
namespace {

struct VbrFixture {
  VbrTrace trace = generate_synthetic_vbr(SyntheticVbrParams{});
  VariantAnalysis va = analyze_variants(trace, 60.0);
};

const VbrFixture& fixture() {
  static const VbrFixture f;
  return f;
}

// Replays a client plan at byte granularity for a work-ahead variant:
// segment k carries rate*d KB; delivered-by-slot-t must cover consumption
// through slot t+1 (= C((t - arrival) * d) content-KB).
void check_bytes(const ClientPlan& plan, const DhbVariant& variant,
                 const VbrTrace& trace) {
  const double seg_kb = variant.stream_rate_kbs * variant.slot_s;
  std::vector<Slot> receptions = plan.reception_slot;
  std::sort(receptions.begin(), receptions.end());
  const Slot last = receptions.back();
  size_t delivered_segments = 0;
  for (Slot t = plan.arrival_slot + 1; t <= last + 1; ++t) {
    while (delivered_segments < receptions.size() &&
           receptions[delivered_segments] <= t) {
      ++delivered_segments;
    }
    const double delivered =
        std::min(static_cast<double>(delivered_segments) * seg_kb,
                 trace.total_kb());
    const double consumed = trace.cumulative_kb(
        static_cast<double>(t - plan.arrival_slot) * variant.slot_s);
    ASSERT_GE(delivered + 1e-6, consumed)
        << variant.name << " underflow at relative slot "
        << t - plan.arrival_slot;
  }
  // The whole video must eventually arrive.
  ASSERT_GE(static_cast<double>(receptions.size()) * seg_kb + 1e-6,
            trace.total_kb());
}

class VbrPlayoutTest : public ::testing::TestWithParam<const char*> {};

TEST_P(VbrPlayoutTest, RandomClientsNeverUnderflow) {
  const std::string which = GetParam();
  const VbrFixture& f = fixture();
  const DhbVariant& variant = which == "c" ? f.va.c : f.va.d;

  DhbScheduler scheduler(variant.dhb_config());
  Rng rng(17);
  int checked = 0;
  for (int step = 0; step < 600; ++step) {
    scheduler.advance_slot();
    for (uint64_t a = rng.poisson(0.4); a > 0; --a) {
      const DhbRequestResult r = scheduler.on_request();
      if (step % 7 == 0 && checked < 60) {
        check_bytes(r.plan, variant, f.trace);
        ++checked;
      }
    }
  }
  EXPECT_GE(checked, 30);
}

INSTANTIATE_TEST_SUITE_P(Variants, VbrPlayoutTest,
                         ::testing::Values("c", "d"),
                         [](const auto& param_info) {
                           return std::string("DHB_") + param_info.param;
                         });

TEST(VbrPlayout, VariantBRateDeliversEachSegmentInTime) {
  // DHB-b: every playback segment's bytes fit into one slot at the stream
  // rate — the defining property of the 789 KB/s-style rate.
  const VbrFixture& f = fixture();
  const double seg_capacity = f.va.b.stream_rate_kbs * f.va.slot_s;
  for (int k = 0; k < f.va.b.num_segments; ++k) {
    const double lo = static_cast<double>(k) * f.va.slot_s;
    const double hi = std::min(static_cast<double>(k + 1) * f.va.slot_s,
                               static_cast<double>(f.trace.duration_s()));
    const double segment_kb =
        f.trace.cumulative_kb(hi) - f.trace.cumulative_kb(lo);
    ASSERT_LE(segment_kb, seg_capacity + 1e-6) << "segment " << k + 1;
  }
}

TEST(VbrPlayout, VariantARateCoversEverySecond) {
  // DHB-a provisions the one-second peak: no second of content exceeds it.
  const VbrFixture& f = fixture();
  for (double v : f.trace.samples()) {
    ASSERT_LE(v, f.va.a.stream_rate_kbs + 1e-6);
  }
}

}  // namespace
}  // namespace vod
