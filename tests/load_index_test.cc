// Unit tests for the range-min placement index (schedule/load_index.h) and
// its integration into SlotSchedule: tie-break directions, ring wraparound,
// advance-time eviction, overlay deltas, and a randomized differential
// against the literal linear scans.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "schedule/load_index.h"
#include "schedule/slot_schedule.h"
#include "sim/random.h"

namespace vod {
namespace {

TEST(LoadIndex, EmptyTreeIsAllZero) {
  LoadIndex idx(7);
  for (size_t p = 0; p < 7; ++p) EXPECT_EQ(idx.value(p), 0);
  const LoadIndex::MinResult latest = idx.min_latest(0, 6);
  EXPECT_EQ(latest.load, 0);
  EXPECT_EQ(latest.pos, 6u);  // tie over all-equal values -> highest pos
  const LoadIndex::MinResult earliest = idx.min_earliest(0, 6);
  EXPECT_EQ(earliest.load, 0);
  EXPECT_EQ(earliest.pos, 0u);  // -> lowest pos
}

TEST(LoadIndex, AddAndPointValues) {
  LoadIndex idx(5);
  idx.add(2, 3);
  idx.add(4, 1);
  idx.add(2, -1);
  EXPECT_EQ(idx.value(2), 2);
  EXPECT_EQ(idx.value(4), 1);
  EXPECT_EQ(idx.value(0), 0);
}

TEST(LoadIndex, TieBreakLatestAndEarliest) {
  // loads: 2 1 3 1 2 -> min 1 at positions 1 and 3.
  LoadIndex idx(5);
  const int loads[] = {2, 1, 3, 1, 2};
  for (size_t p = 0; p < 5; ++p) idx.add(p, loads[p]);
  EXPECT_EQ(idx.min_latest(0, 4).pos, 3u);
  EXPECT_EQ(idx.min_earliest(0, 4).pos, 1u);
  EXPECT_EQ(idx.min_latest(0, 4).load, 1);
  // Sub-ranges exclude one of the minima.
  EXPECT_EQ(idx.min_latest(0, 2).pos, 1u);
  EXPECT_EQ(idx.min_earliest(2, 4).pos, 3u);
  // Single-position range.
  EXPECT_EQ(idx.min_latest(2, 2).pos, 2u);
  EXPECT_EQ(idx.min_latest(2, 2).load, 3);
}

TEST(LoadIndex, PaddingLeavesNeverWin) {
  // Ring of 5 pads to 8 leaves; the padding must not leak into queries
  // that touch the last real position.
  LoadIndex idx(5);
  for (size_t p = 0; p < 5; ++p) idx.add(p, 9);
  const LoadIndex::MinResult r = idx.min_latest(3, 4);
  EXPECT_EQ(r.load, 9);
  EXPECT_EQ(r.pos, 4u);
}

TEST(LoadIndex, RandomDifferentialAgainstLinearScan) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t size = 1 + rng.uniform_index(33);
    LoadIndex idx(size);
    std::vector<int> ref(size, 0);
    for (int step = 0; step < 200; ++step) {
      const size_t pos = rng.uniform_index(size);
      const int delta = static_cast<int>(rng.uniform_index(5)) - 2;
      idx.add(pos, delta);
      ref[pos] += delta;
      size_t a = rng.uniform_index(size);
      size_t b = rng.uniform_index(size);
      if (a > b) std::swap(a, b);
      int want_min = ref[a];
      size_t want_latest = a;
      size_t want_earliest = a;
      for (size_t p = a; p <= b; ++p) {
        if (ref[p] <= want_min) {
          if (ref[p] < want_min) want_earliest = p;
          want_min = ref[p];
          want_latest = p;
        }
      }
      const LoadIndex::MinResult latest = idx.min_latest(a, b);
      const LoadIndex::MinResult earliest = idx.min_earliest(a, b);
      ASSERT_EQ(latest.load, want_min);
      ASSERT_EQ(latest.pos, want_latest);
      ASSERT_EQ(earliest.load, want_min);
      ASSERT_EQ(earliest.pos, want_earliest);
    }
  }
}

// --- SlotSchedule integration -------------------------------------------

TEST(SlotScheduleMinLoad, MatchesLoadsAndTieBreaksLatest) {
  SlotSchedule s(10, 6);
  // loads over slots 1..6: 1 0 2 0 1 0 -> min 0 at 2, 4, 6.
  s.add_instance(1, 1);
  s.add_instance(2, 3);
  s.add_instance(3, 3);
  s.add_instance(4, 5);
  const SlotSchedule::MinLoad latest = s.min_load_latest(1, 6);
  EXPECT_EQ(latest.slot, 6);
  EXPECT_EQ(latest.load, 0);
  const SlotSchedule::MinLoad earliest = s.min_load_earliest(1, 6);
  EXPECT_EQ(earliest.slot, 2);
  EXPECT_EQ(earliest.load, 0);
  EXPECT_EQ(s.min_load_latest(1, 5).slot, 4);
  EXPECT_EQ(s.min_load_latest(3, 3).slot, 3);
  EXPECT_EQ(s.min_load_latest(3, 3).load, 2);
}

TEST(SlotScheduleMinLoad, WraparoundAtRingBoundary) {
  // window 6 -> ring size 7. After 5 advances now=5, so the window
  // (5, 11] wraps the ring: slots 6 map to position 6 and 7..11 to 0..4.
  SlotSchedule s(10, 6);
  for (int i = 0; i < 5; ++i) s.advance();
  ASSERT_EQ(s.now(), 5);
  s.add_instance(1, 6);   // position 6
  s.add_instance(2, 8);   // position 1
  s.add_instance(3, 8);
  s.add_instance(4, 11);  // position 4
  // loads over slots 6..11: 1 0 2 0 0 1 -> min 0 at 7, 9, 10.
  const SlotSchedule::MinLoad latest = s.min_load_latest(6, 11);
  EXPECT_EQ(latest.slot, 10);
  EXPECT_EQ(latest.load, 0);
  const SlotSchedule::MinLoad earliest = s.min_load_earliest(6, 11);
  EXPECT_EQ(earliest.slot, 7);
  // Tie across the wrap seam: the late part must win for "latest" even
  // though its ring positions are numerically smaller.
  SlotSchedule t(10, 6);
  for (int i = 0; i < 5; ++i) t.advance();
  t.add_instance(1, 6);
  t.add_instance(2, 7);  // loads: 1 1 0 0 0 0 over 6..11
  EXPECT_EQ(t.min_load_latest(6, 11).slot, 11);
  EXPECT_EQ(t.min_load_earliest(6, 11).slot, 8);
  // All-equal loads across the seam: "latest" must take the last late
  // slot, "earliest" the pre-seam slot 6.
  t.add_instance(3, 8);
  t.add_instance(4, 9);
  t.add_instance(5, 10);
  t.add_instance(6, 11);  // loads: 1 1 1 1 1 1
  EXPECT_EQ(t.min_load_latest(6, 11).slot, 11);
  EXPECT_EQ(t.min_load_earliest(6, 11).slot, 6);
}

TEST(SlotScheduleMinLoad, AdvanceEvictsLoadsAndLatestCache) {
  SlotSchedule s(10, 6);
  s.add_instance(7, 2);
  s.add_instance(7, 5);  // two instances: latest cache must track back()
  EXPECT_EQ(s.latest_instance(7), 5);
  EXPECT_EQ(s.min_load_earliest(1, 6).slot, 1);

  std::span<const Segment> sent = s.advance();  // slot 1: nothing
  EXPECT_TRUE(sent.empty());
  sent = s.advance();  // slot 2: segment 7 transmits
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0], 7);
  EXPECT_EQ(s.latest_instance(7), 5);  // later instance still scheduled

  // The freed ring position must be clean for the new window slot 8.
  EXPECT_EQ(s.load(8), 0);
  EXPECT_EQ(s.min_load_latest(3, 8).slot, 8);

  for (int i = 0; i < 3; ++i) sent = s.advance();  // through slot 5
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(s.latest_instance(7), 0);  // evicted: cache reset
  EXPECT_FALSE(s.has_future_instance(7));
  EXPECT_EQ(s.total_scheduled(), 0);
}

TEST(SlotScheduleMinLoad, OverlayShiftsQueriesOnly) {
  SlotSchedule s(10, 4);
  s.add_instance(1, 2);  // loads 1..4: 0 1 0 0
  EXPECT_EQ(s.min_load_latest(1, 4).slot, 4);
  EXPECT_FALSE(s.has_load_overlay());

  s.add_load_overlay(4, 5);
  s.add_load_overlay(3, 5);
  EXPECT_TRUE(s.has_load_overlay());
  // Queries see 0 6 5 5: the min moves to slot 1...
  const SlotSchedule::MinLoad m = s.min_load_latest(1, 4);
  EXPECT_EQ(m.slot, 1);
  EXPECT_EQ(m.load, 0);
  // ...but the real loads are untouched.
  EXPECT_EQ(s.load(3), 0);
  EXPECT_EQ(s.load(4), 0);

  s.clear_load_overlay();
  EXPECT_FALSE(s.has_load_overlay());
  EXPECT_EQ(s.min_load_latest(1, 4).slot, 4);
  EXPECT_EQ(s.min_load_latest(1, 4).load, 0);
}

TEST(SlotScheduleMinLoad, RandomDifferentialAcrossAdvances) {
  // Long random walk: instances + advances, checking every prefix window
  // (the ones admissions use) against a literal scan of load().
  Rng rng(77);
  SlotSchedule s(8, 9);
  for (int step = 0; step < 4000; ++step) {
    if (rng.uniform() < 0.3) {
      s.advance();
    } else {
      const Segment j = static_cast<Segment>(1 + rng.uniform_index(8));
      const Slot slot = s.now() + 1 + static_cast<Slot>(rng.uniform_index(9));
      s.add_instance(j, slot);
    }
    const Slot lo = s.now() + 1;
    for (Slot hi = lo; hi <= s.now() + 9; ++hi) {
      Slot want_latest = 0;
      Slot want_earliest = 0;
      int want_min = 0;
      for (Slot t = lo; t <= hi; ++t) {
        const int load = s.load(t);
        if (want_latest == 0 || load <= want_min) {
          if (want_earliest == 0 || load < want_min) want_earliest = t;
          want_latest = t;
          want_min = load;
        }
      }
      const SlotSchedule::MinLoad latest = s.min_load_latest(lo, hi);
      const SlotSchedule::MinLoad earliest = s.min_load_earliest(lo, hi);
      ASSERT_EQ(latest.slot, want_latest) << "step " << step << " hi " << hi;
      ASSERT_EQ(latest.load, want_min);
      ASSERT_EQ(earliest.slot, want_earliest);
      ASSERT_EQ(earliest.load, want_min);
    }
  }
}

}  // namespace
}  // namespace vod
