// The engine-level observability contract: attaching an EngineObserver
// never changes simulation results, and the observer's merged view is
// bit-identical at any thread count (shards record independently, the
// merge folds them in ascending shard order).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/trace.h"
#include "server/multi_video.h"

namespace vod {
namespace {

MultiVideoConfig engine_config() {
  MultiVideoConfig config;
  config.catalog_size = 130;  // 3 shards at kShardSize = 64
  config.num_segments = 20;
  config.total_requests_per_hour = 400.0;
  config.warmup_hours = 1.0;
  config.measured_hours = 10.0;
  config.seed = 20010416;
  return config;
}

void expect_same_result(const MultiVideoResult& a, const MultiVideoResult& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.measured_slots, b.measured_slots);
  EXPECT_DOUBLE_EQ(a.avg_streams, b.avg_streams);
  EXPECT_DOUBLE_EQ(a.max_streams, b.max_streams);
  EXPECT_EQ(a.per_video_requests, b.per_video_requests);
}

void expect_same_metrics(const obs::MetricShard& a,
                         const obs::MetricShard& b) {
  ASSERT_EQ(a.counters().size(), b.counters().size());
  for (const auto& [name, counter] : a.counters()) {
    const obs::Counter* other = b.find_counter(name);
    ASSERT_NE(other, nullptr) << name;
    EXPECT_EQ(counter.value(), other->value()) << name;
  }
  ASSERT_EQ(a.histograms().size(), b.histograms().size());
  for (const auto& [name, hist] : a.histograms()) {
    const obs::HistogramMetric* other = b.find_histogram(name);
    ASSERT_NE(other, nullptr) << name;
    EXPECT_EQ(hist.count(), other->count()) << name;
    EXPECT_EQ(hist.histogram().bins(), other->histogram().bins()) << name;
  }
}

TEST(EngineObservability, ObserverDoesNotChangeResults) {
  MultiVideoConfig bare = engine_config();
  const MultiVideoResult without = run_multi_video_simulation(bare);

  obs::EngineObserver observer;
  MultiVideoConfig observed = engine_config();
  observed.observer = &observer;
  const MultiVideoResult with = run_multi_video_simulation(observed);

  expect_same_result(without, with);
  EXPECT_EQ(observer.num_shards(), 3u);
  const obs::MetricShard merged = observer.merged_metrics();
  EXPECT_EQ(merged.counter_value("engine_videos_total"), 130u);
  // Every admitted request receives one instance (new or shared) per
  // segment of its video.
  EXPECT_EQ(merged.counter_value("dhb_requests_total") * 20u,
            merged.counter_value("dhb_new_instances_total") +
                merged.counter_value("dhb_shared_instances_total"));
}

TEST(EngineObservability, MergedMetricsBitIdenticalAcrossThreadCounts) {
  obs::EngineObserver sequential_observer;
  MultiVideoConfig sequential = engine_config();
  sequential.num_threads = 1;
  sequential.observer = &sequential_observer;
  const MultiVideoResult base = run_multi_video_simulation(sequential);
  const obs::MetricShard base_metrics = sequential_observer.merged_metrics();

  for (int threads : {2, 4, 8}) {
    obs::EngineObserver observer;
    MultiVideoConfig parallel = engine_config();
    parallel.num_threads = threads;
    parallel.observer = &observer;
    const MultiVideoResult result = run_multi_video_simulation(parallel);
    expect_same_result(base, result);
    expect_same_metrics(base_metrics, observer.merged_metrics());
  }
}

TEST(EngineObservability, PerShardTracesLandOnOwnTracks) {
  obs::EngineObserver observer;
  MultiVideoConfig config = engine_config();
  config.observer = &observer;
  run_multi_video_simulation(config);

  const std::vector<const obs::TraceBuffer*> buffers =
      observer.trace_buffers();
  ASSERT_EQ(buffers.size(), 3u);
#ifndef VOD_OBSERVE_DISABLED
  for (size_t s = 0; s < buffers.size(); ++s) {
    EXPECT_GT(buffers[s]->emitted(), 0u) << s;
    for (const obs::TraceEvent& e : buffers[s]->snapshot()) {
      if (e.clock == obs::TraceClock::kWall) continue;  // kernel spans
      EXPECT_EQ(e.track, static_cast<uint32_t>(s));
    }
  }
#endif
}

}  // namespace
}  // namespace vod
