#include "core/dhb.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace vod {
namespace {

DhbConfig small_config(int n) {
  DhbConfig c;
  c.num_segments = n;
  return c;
}

// The paper's Figure 4: a request arriving during slot 1 into an idle
// system gets one transmission of S_i scheduled during slot i + 1.
TEST(Dhb, Figure4IdleSystemSchedule) {
  DhbScheduler s(small_config(6));
  s.advance_slot();  // now = slot 1
  const DhbRequestResult r = s.on_request();
  EXPECT_EQ(r.new_instances, 6);
  EXPECT_EQ(r.shared_instances, 0);
  for (Segment j = 1; j <= 6; ++j) {
    EXPECT_EQ(r.plan.reception_slot[static_cast<size_t>(j - 1)], 1 + j)
        << "S" << j;
  }
}

// Figure 5: a second request during slot 3 shares S3..S6 with the first and
// schedules fresh S1 during slot 4 and S2 during slot 5.
TEST(Dhb, Figure5OverlappingRequests) {
  DhbScheduler s(small_config(6));
  s.advance_slot();  // slot 1
  s.on_request();
  s.advance_slot();  // slot 2
  s.advance_slot();  // slot 3
  const DhbRequestResult r = s.on_request();
  EXPECT_EQ(r.new_instances, 2);
  EXPECT_EQ(r.shared_instances, 4);
  EXPECT_EQ(r.plan.reception_slot[0], 4);  // fresh S1
  EXPECT_EQ(r.plan.reception_slot[1], 5);  // fresh S2
  EXPECT_EQ(r.plan.reception_slot[2], 4);  // shared S3 (first request's)
  EXPECT_EQ(r.plan.reception_slot[3], 5);
  EXPECT_EQ(r.plan.reception_slot[4], 6);
  EXPECT_EQ(r.plan.reception_slot[5], 7);
}

TEST(Dhb, TransmissionsMatchPlans) {
  DhbScheduler s(small_config(6));
  s.advance_slot();
  s.on_request();
  // Slots 2..7 each transmit exactly one segment: S1..S6 in order.
  for (Segment j = 1; j <= 6; ++j) {
    const std::vector<Segment> tx = s.advance_slot();
    ASSERT_EQ(tx.size(), 1u) << "slot " << s.current_slot();
    EXPECT_EQ(tx[0], j);
  }
  EXPECT_TRUE(s.advance_slot().empty());
}

TEST(Dhb, RequestInSameSlotSharesEverything) {
  DhbScheduler s(small_config(10));
  s.advance_slot();
  s.on_request();
  const DhbRequestResult r = s.on_request();
  EXPECT_EQ(r.new_instances, 0);
  EXPECT_EQ(r.shared_instances, 10);
}

// "The protocol will never schedule more than one instance of segment S_i
// once every i slots" (§3).
TEST(Dhb, AtMostOneFutureInstancePerSegment) {
  DhbScheduler s(small_config(8));
  for (int step = 0; step < 200; ++step) {
    s.advance_slot();
    s.on_request();
    if (step % 3 == 0) s.on_request();
    for (Segment j = 1; j <= 8; ++j) {
      EXPECT_LE(s.schedule().instances_of(j).size(), 1u)
          << "segment " << j << " at slot " << s.current_slot();
    }
  }
}

TEST(Dhb, SaturationTransmitsS1EverySlot) {
  DhbScheduler s(small_config(6));
  for (int step = 0; step < 50; ++step) {
    s.advance_slot();
    s.on_request();
    if (step >= 2) {
      // With a request in every slot, S1 must be in every slot's schedule.
      EXPECT_TRUE(s.schedule().has_future_instance(1));
    }
  }
}

TEST(Dhb, DefaultPeriodsAreIdentity) {
  DhbScheduler s(small_config(5));
  EXPECT_EQ(s.periods(), (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Dhb, CustomPeriodsRestrictWindow) {
  DhbConfig c = small_config(4);
  c.periods = {1, 2, 2, 3};  // S3 must come within 2 slots, S4 within 3
  DhbScheduler s(c);
  s.advance_slot();
  const DhbRequestResult r = s.on_request();
  EXPECT_LE(r.plan.reception_slot[2], s.current_slot() + 2);
  EXPECT_LE(r.plan.reception_slot[3], s.current_slot() + 3);
  const PlanDiagnostics d = verify_plan(r.plan, c.periods);
  EXPECT_TRUE(d.deadlines_met);
}

TEST(Dhb, WorkAheadPeriodsAllowDelays) {
  DhbConfig c = small_config(4);
  c.periods = {1, 3, 5, 8};  // VBR-style slack beyond the CBR window
  DhbScheduler s(c);
  s.advance_slot();
  const DhbRequestResult r = s.on_request();
  EXPECT_EQ(r.plan.reception_slot[0], 2);
  EXPECT_EQ(r.plan.reception_slot[1], 4);   // latest slot in (1, 1+3]
  EXPECT_EQ(r.plan.reception_slot[2], 6);
  EXPECT_EQ(r.plan.reception_slot[3], 9);
}

TEST(Dhb, LatestHeuristicAlwaysPicksWindowEnd) {
  DhbConfig c = small_config(5);
  c.heuristic = SlotHeuristic::kLatest;
  DhbScheduler s(c);
  s.advance_slot();
  const DhbRequestResult r = s.on_request();
  for (Segment j = 1; j <= 5; ++j) {
    EXPECT_EQ(r.plan.reception_slot[static_cast<size_t>(j - 1)], 1 + j);
  }
}

TEST(Dhb, EarliestHeuristicFrontloadsEverything) {
  DhbConfig c = small_config(5);
  c.heuristic = SlotHeuristic::kEarliest;
  DhbScheduler s(c);
  s.advance_slot();
  const DhbRequestResult r = s.on_request();
  for (Segment j = 1; j <= 5; ++j) {
    EXPECT_EQ(r.plan.reception_slot[static_cast<size_t>(j - 1)], 2);
  }
}

TEST(Dhb, MinLoadSpreadsIdleSchedule) {
  // With min-load-latest on an idle system, S_j goes to slot 1 + j: every
  // earlier window slot would carry load from lower segments.
  DhbScheduler s(small_config(12));
  s.advance_slot();
  const DhbRequestResult r = s.on_request();
  const PlanDiagnostics d = verify_plan(r.plan);
  EXPECT_EQ(d.max_concurrent_streams, 1);  // perfectly spread
}

TEST(Dhb, CountersAccumulate) {
  DhbScheduler s(small_config(4));
  s.advance_slot();
  s.on_request();
  s.on_request();
  EXPECT_EQ(s.total_requests(), 2u);
  EXPECT_EQ(s.total_new_instances(), 4u);
  EXPECT_EQ(s.total_shared(), 4u);
  EXPECT_GT(s.total_slot_probes(), 0u);
}

TEST(Dhb, ClientCapLimitsConcurrency) {
  DhbConfig c = small_config(8);
  c.client_stream_cap = 1;
  DhbScheduler s(c);
  s.advance_slot();
  const DhbRequestResult r = s.on_request();
  const PlanDiagnostics d = verify_plan(r.plan);
  EXPECT_TRUE(d.deadlines_met);
  EXPECT_LE(d.max_concurrent_streams, 1);
  EXPECT_EQ(r.cap_violations, 0);
}

TEST(Dhb, ClientCapTwoHandlesBurst) {
  DhbConfig c = small_config(16);
  c.client_stream_cap = 2;
  DhbScheduler s(c);
  for (int step = 0; step < 60; ++step) {
    s.advance_slot();
    const DhbRequestResult r = s.on_request();
    const PlanDiagnostics d = verify_plan(r.plan);
    EXPECT_TRUE(d.deadlines_met);
    if (r.cap_violations == 0) {
      EXPECT_LE(d.max_concurrent_streams, 2);
    }
  }
}

TEST(Dhb, CapViolationsReportedWhenImpossible) {
  // Four receptions confined to two window slots cannot respect cap 1: the
  // scheduler must fall back, report the violation, and still produce a
  // deadline-correct plan.
  DhbConfig c = small_config(4);
  c.periods = {1, 2, 2, 2};
  c.client_stream_cap = 1;
  DhbScheduler s(c);
  s.advance_slot();
  const DhbRequestResult r = s.on_request();
  EXPECT_GT(r.cap_violations, 0);
  EXPECT_TRUE(verify_plan(r.plan, c.periods).deadlines_met);
}

TEST(Dhb, CapUnconstrainedWithIdentityPeriods) {
  // With T[j] = j, S_j always has a free window slot even at cap 1 (the
  // window grows one slot per segment), so no violations ever occur.
  DhbConfig c = small_config(12);
  c.client_stream_cap = 1;
  DhbScheduler s(c);
  for (int step = 0; step < 40; ++step) {
    s.advance_slot();
    const DhbRequestResult r = s.on_request();
    EXPECT_EQ(r.cap_violations, 0);
    EXPECT_TRUE(verify_plan(r.plan).deadlines_met);
  }
}

TEST(DhbDeath, RejectsBadPeriods) {
  DhbConfig c = small_config(3);
  c.periods = {2, 2, 3};  // T[1] != 1
  EXPECT_DEATH(DhbScheduler{c}, "T\\[1\\]");
  c.periods = {1, 2};  // wrong length
  EXPECT_DEATH(DhbScheduler{c}, "one entry per segment");
}

}  // namespace
}  // namespace vod
