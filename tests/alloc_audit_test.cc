// Steady-state allocation audit for the data-oriented slot kernel
// (DESIGN.md §14): after a warmup phase in which the slab capacities and
// arena blocks plateau, a scheduler slot — admissions plus the clock
// advance — must complete without touching the system allocator at all.
//
// Two layers of evidence, cross-checked:
//   * a global operator new/delete override counts every heap allocation
//     in the process; the measured phase must add exactly zero;
//   * the kernel's own meters (slab re-layouts, arena block acquisitions)
//     must be flat across the measured phase, proving the zero above is
//     the warm-arena design working and not an accounting accident.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/dhb.h"

namespace {

std::atomic<uint64_t> g_heap_allocations{0};

void* counted_alloc(std::size_t size) {
  ++g_heap_allocations;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace vod {
namespace {

// Drives the engine's hot path: plan-discarding batch admissions (what
// the sharded multi-video engine calls per slot) plus the span-returning
// clock advance. `slot` seeds a deterministic small batch size.
void run_slots(DhbScheduler* dhb, int slots, int phase) {
  for (int s = 0; s < slots; ++s) {
    dhb->on_request_batch_discard(1 + static_cast<uint64_t>((s + phase) % 3));
    dhb->advance_slot_view();
  }
}

TEST(AllocAudit, UncappedSteadySlotsAreAllocationFree) {
  DhbConfig config;  // n = 99, coalescing on: the bench engine's shape
  DhbScheduler dhb(config);

  // Warmup: let every slab hit its plateau capacity and the scratch arena
  // acquire its blocks. 3n slots cover several full window generations.
  run_slots(&dhb, 300, 0);

  const uint64_t slab_grows = dhb.schedule().total_slab_grows();
  const uint64_t arena_blocks = dhb.schedule().total_arena_blocks();
  const uint64_t heap_before = g_heap_allocations.load();

  run_slots(&dhb, 200, 1);

  EXPECT_EQ(g_heap_allocations.load() - heap_before, 0u)
      << "steady-state slots reached the system allocator";
  EXPECT_EQ(dhb.schedule().total_slab_grows(), slab_grows)
      << "a slab re-layout happened after warmup";
  EXPECT_EQ(dhb.schedule().total_arena_blocks(), arena_blocks)
      << "the schedule arena acquired a new block after warmup";
}

TEST(AllocAudit, CappedSteadySlotsAreAllocationFree) {
  // The capped variant exercises the per-admission scratch arrays
  // (client_load) and the overlay machinery: the scratch arena must warm
  // up once and then recycle the same blocks under mark/rewind/reset.
  DhbConfig config;
  config.num_segments = 40;
  config.client_stream_cap = 3;
  DhbScheduler dhb(config);

  run_slots(&dhb, 200, 0);

  const uint64_t heap_before = g_heap_allocations.load();
  run_slots(&dhb, 150, 1);
  EXPECT_EQ(g_heap_allocations.load() - heap_before, 0u)
      << "capped steady-state slots reached the system allocator";
}

TEST(AllocAudit, WarmupItselfIsBounded) {
  // Sanity on the meters the audit leans on: construction plus warmup
  // performs a handful of arena block acquisitions (the slabs are sized at
  // construction to fit one block), and slab growth stops instead of
  // recurring every slot.
  DhbConfig config;
  DhbScheduler dhb(config);
  run_slots(&dhb, 300, 0);
  EXPECT_LE(dhb.schedule().total_arena_blocks(), 4u);
  EXPECT_LE(dhb.schedule().total_slab_grows(), 16u);
  EXPECT_GT(dhb.schedule().total_instances_added(), 0u);
}

}  // namespace
}  // namespace vod
