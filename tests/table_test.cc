#include "util/table.h"

#include <gtest/gtest.h>

namespace vod {
namespace {

TEST(Table, RendersHeaderAndRule) {
  Table t({"a", "bb"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, AlignsColumns) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"100", "20000"});
  const std::string s = t.to_string();
  // Every line must have the same length (fixed-width rendering).
  size_t line_len = 0;
  size_t pos = 0;
  while (pos < s.size()) {
    const size_t nl = s.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    if (line_len == 0) {
      line_len = nl - pos;
    } else {
      EXPECT_EQ(nl - pos, line_len);
    }
    pos = nl + 1;
  }
}

TEST(Table, PadsMissingCells) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NE(t.to_string().find("1"), std::string::npos);
}

TEST(Table, DropsExtraCells) {
  Table t({"a"});
  t.add_row({"1", "IGNORED"});
  EXPECT_EQ(t.to_string().find("IGNORED"), std::string::npos);
}

TEST(Table, DoubleRowsUsePrecision) {
  Table t({"v"});
  t.add_numeric_row({1.23456}, 2);
  EXPECT_NE(t.to_string().find("1.23"), std::string::npos);
  EXPECT_EQ(t.to_string().find("1.234"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n3,4\n");
}

TEST(FormatDouble, Basic) {
  EXPECT_EQ(format_double(1.5, 2), "1.50");
  EXPECT_EQ(format_double(-0.25, 3), "-0.250");
  EXPECT_EQ(format_double(3.0, 0), "3");
}

}  // namespace
}  // namespace vod
