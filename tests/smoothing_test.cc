#include "vbr/smoothing.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "vbr/synthetic.h"

namespace vod {
namespace {

VbrTrace cbr_trace(int seconds, double kbs) {
  return VbrTrace(std::vector<double>(static_cast<size_t>(seconds), kbs));
}

TEST(Smoothing, CbrRateIsConsumptionRate) {
  const VbrTrace t = cbr_trace(600, 500.0);
  EXPECT_NEAR(min_workahead_rate_kbs(t, 60.0), 500.0, 1e-9);
}

TEST(Smoothing, FrontLoadedTraceNeedsPrefixRate) {
  // 100 s at 900 KB/s then 500 s at 100 KB/s, 60 s slots. The binding
  // prefix is the first slot pair.
  std::vector<double> v(600, 100.0);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = 900.0;
  const VbrTrace t(std::move(v));
  const double r = min_workahead_rate_kbs(t, 60.0);
  // C(60)=54000 -> r >= 900; C(120) = 90000+2000 -> /120 = 766; prefix 1
  // dominates.
  EXPECT_NEAR(r, 900.0, 1e-6);
}

TEST(Smoothing, BackLoadedTraceSmoothsToMean) {
  // Quiet first, demanding later: work-ahead absorbs the peak entirely and
  // the binding constraint is the full-length average.
  std::vector<double> v(600, 100.0);
  for (int i = 500; i < 600; ++i) v[static_cast<size_t>(i)] = 900.0;
  const VbrTrace t(std::move(v));
  const double r = min_workahead_rate_kbs(t, 60.0);
  const double mean = t.mean_rate_kbs();
  EXPECT_NEAR(r, mean, 5.0);
}

TEST(Smoothing, RateIsMinimal) {
  const VbrTrace t = generate_synthetic_vbr(SyntheticVbrParams{});
  const double d = 8170.0 / 137.0;
  const double r = min_workahead_rate_kbs(t, d);
  const int m = workahead_segment_count(t, d, r);
  std::vector<int> strict(static_cast<size_t>(m));
  std::iota(strict.begin(), strict.end(), 1);
  EXPECT_TRUE(verify_deadline_schedule(t, d, r, strict));
  // Shaving one percent off must break feasibility.
  const double r_less = 0.99 * r;
  const int m_less = workahead_segment_count(t, d, r_less);
  std::vector<int> strict_less(static_cast<size_t>(m_less));
  std::iota(strict_less.begin(), strict_less.end(), 1);
  EXPECT_FALSE(verify_deadline_schedule(t, d, r_less, strict_less));
}

TEST(Smoothing, SegmentCountCeilsTotal) {
  const VbrTrace t = cbr_trace(600, 500.0);
  // total = 300000 KB; r*d = 30000 -> exactly 10 segments.
  EXPECT_EQ(workahead_segment_count(t, 60.0, 500.0), 10);
  // Slightly higher rate still needs 10 (ceil).
  EXPECT_EQ(workahead_segment_count(t, 60.0, 501.0), 10);
  EXPECT_EQ(workahead_segment_count(t, 60.0, 556.0), 9);
}

TEST(Smoothing, BufferZeroForCbrAtExactRate) {
  const VbrTrace t = cbr_trace(600, 500.0);
  // Delivered k*r*d, consumed C((k-1)d) = (k-1)*r*d: one segment of slack.
  EXPECT_NEAR(workahead_buffer_kb(t, 60.0, 500.0), 500.0 * 60.0, 1.0);
}

TEST(Smoothing, HigherRateBuffersMore) {
  const VbrTrace t = generate_synthetic_vbr(SyntheticVbrParams{});
  const double d = 8170.0 / 137.0;
  const double r = min_workahead_rate_kbs(t, d);
  EXPECT_GT(workahead_buffer_kb(t, d, 1.3 * r),
            workahead_buffer_kb(t, d, r));
}

TEST(VerifyDeadlineSchedule, AcceptsStrictCbr) {
  const VbrTrace t = cbr_trace(600, 500.0);
  std::vector<int> deadlines(10);
  std::iota(deadlines.begin(), deadlines.end(), 1);
  EXPECT_TRUE(verify_deadline_schedule(t, 60.0, 500.0, deadlines));
}

TEST(VerifyDeadlineSchedule, RejectsLateSegment) {
  const VbrTrace t = cbr_trace(600, 500.0);
  std::vector<int> deadlines = {1, 2, 3, 4, 6, 6, 7, 8, 9, 10};  // S5 late
  EXPECT_FALSE(verify_deadline_schedule(t, 60.0, 500.0, deadlines));
}

TEST(VerifyDeadlineSchedule, RejectsUnderDelivery) {
  const VbrTrace t = cbr_trace(600, 500.0);
  std::vector<int> deadlines(9);  // only nine segments: video incomplete
  std::iota(deadlines.begin(), deadlines.end(), 1);
  EXPECT_FALSE(verify_deadline_schedule(t, 60.0, 500.0, deadlines));
}

TEST(VerifyDeadlineSchedule, AcceptsEarlyDelivery) {
  const VbrTrace t = cbr_trace(600, 500.0);
  std::vector<int> deadlines(10, 1);  // everything in slot 1
  EXPECT_TRUE(verify_deadline_schedule(t, 60.0, 500.0, deadlines));
}

TEST(VerifyDeadlineScheduleDeath, RejectsDecreasingDeadlines) {
  const VbrTrace t = cbr_trace(600, 500.0);
  EXPECT_DEATH(verify_deadline_schedule(t, 60.0, 500.0, {2, 1}),
               "non-decreasing");
}

}  // namespace
}  // namespace vod
