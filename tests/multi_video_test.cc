#include "server/multi_video.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "protocols/npb.h"

namespace vod {
namespace {

MultiVideoConfig quick(VideoPolicy policy, double total_rate) {
  MultiVideoConfig c;
  c.catalog_size = 10;
  c.total_requests_per_hour = total_rate;
  c.warmup_hours = 4.0;
  c.measured_hours = 60.0;
  c.policy = policy;
  return c;
}

TEST(MultiVideo, StaticPolicyIsConstant) {
  const MultiVideoConfig c = quick(VideoPolicy::kStatic, 100.0);
  const MultiVideoResult r = run_multi_video_simulation(c);
  const double per_video = static_cast<double>(NpbMapping::streams_for(99));
  EXPECT_DOUBLE_EQ(r.avg_streams, per_video * 10.0);
  EXPECT_DOUBLE_EQ(r.max_streams, per_video * 10.0);
}

TEST(MultiVideo, DhbBeatsStaticAtModerateLoad) {
  // 200 requests/hour across ten videos: even the top Zipf rank is far
  // from saturation, so the dynamic server needs much less bandwidth.
  const MultiVideoResult dhb =
      run_multi_video_simulation(quick(VideoPolicy::kDhb, 200.0));
  const MultiVideoResult fixed =
      run_multi_video_simulation(quick(VideoPolicy::kStatic, 200.0));
  EXPECT_LT(dhb.avg_streams, 0.7 * fixed.avg_streams);
}

TEST(MultiVideo, HybridBetweenTheTwo) {
  const MultiVideoResult dhb =
      run_multi_video_simulation(quick(VideoPolicy::kDhb, 200.0));
  const MultiVideoResult hybrid =
      run_multi_video_simulation(quick(VideoPolicy::kHybrid, 200.0));
  const MultiVideoResult fixed =
      run_multi_video_simulation(quick(VideoPolicy::kStatic, 200.0));
  EXPECT_GE(hybrid.avg_streams, dhb.avg_streams);
  EXPECT_LE(hybrid.avg_streams, fixed.avg_streams);
}

TEST(MultiVideo, PopularityFollowsZipf) {
  MultiVideoConfig c = quick(VideoPolicy::kDhb, 500.0);
  c.measured_hours = 120.0;
  const MultiVideoResult r = run_multi_video_simulation(c);
  // Rank 1 gets the most requests and the most bandwidth.
  EXPECT_GT(r.per_video_requests[0], r.per_video_requests[9]);
  EXPECT_GT(r.per_video_avg[0], r.per_video_avg[9]);
  const uint64_t total = std::accumulate(r.per_video_requests.begin(),
                                         r.per_video_requests.end(),
                                         static_cast<uint64_t>(0));
  EXPECT_EQ(total, r.requests);
}

TEST(MultiVideo, PerVideoBandwidthSumsToAggregate) {
  const MultiVideoResult r =
      run_multi_video_simulation(quick(VideoPolicy::kHybrid, 300.0));
  const double sum = std::accumulate(r.per_video_avg.begin(),
                                     r.per_video_avg.end(), 0.0);
  EXPECT_NEAR(sum, r.avg_streams, 1e-6);
}

TEST(MultiVideo, DhbPerVideoBelowNpbCeiling) {
  MultiVideoConfig c = quick(VideoPolicy::kDhb, 2000.0);
  const MultiVideoResult r = run_multi_video_simulation(c);
  const double ceiling = static_cast<double>(NpbMapping::streams_for(99));
  for (double v : r.per_video_avg) EXPECT_LT(v, ceiling);
}

TEST(MultiVideo, HybridStaticRanksPinned) {
  MultiVideoConfig c = quick(VideoPolicy::kHybrid, 100.0);
  c.hybrid_static_top = 2;
  const MultiVideoResult r = run_multi_video_simulation(c);
  const double per_video = static_cast<double>(NpbMapping::streams_for(99));
  EXPECT_DOUBLE_EQ(r.per_video_avg[0], per_video);
  EXPECT_DOUBLE_EQ(r.per_video_avg[1], per_video);
  EXPECT_LT(r.per_video_avg[2], per_video);
}

TEST(MultiVideo, HeterogeneousCatalogSupported) {
  MultiVideoConfig c = quick(VideoPolicy::kDhb, 300.0);
  c.catalog_size = 4;
  c.per_video_segments = {99, 49, 149, 25};    // 2 h, 1 h, 3 h, 30 min
  c.per_video_rate_kbs = {600.0, 800.0, 500.0, 700.0};
  const MultiVideoResult r = run_multi_video_simulation(c);
  EXPECT_GT(r.avg_streams, 0.0);
  EXPECT_GT(r.avg_kbs, 0.0);
  EXPECT_GE(r.max_kbs, r.avg_kbs);
  // KB/s accounting is rate-weighted: it exceeds avg_streams * min rate
  // and stays below avg_streams * max rate.
  EXPECT_GT(r.avg_kbs, r.avg_streams * 500.0 * 0.99);
  EXPECT_LT(r.avg_kbs, r.avg_streams * 800.0 * 1.01);
}

TEST(MultiVideo, HomogeneousKbsDefaultsToUnitRate) {
  const MultiVideoResult r =
      run_multi_video_simulation(quick(VideoPolicy::kDhb, 200.0));
  EXPECT_NEAR(r.avg_kbs, r.avg_streams, 1e-9);
}

TEST(MultiVideo, ShorterVideosCostLess) {
  // Same demand split over a catalog of short videos needs less bandwidth
  // than over long ones (each isolated request costs its video length).
  MultiVideoConfig shorter = quick(VideoPolicy::kDhb, 200.0);
  shorter.catalog_size = 5;
  shorter.per_video_segments = {25, 25, 25, 25, 25};
  MultiVideoConfig longer = quick(VideoPolicy::kDhb, 200.0);
  longer.catalog_size = 5;
  longer.per_video_segments = {149, 149, 149, 149, 149};
  const MultiVideoResult rs = run_multi_video_simulation(shorter);
  const MultiVideoResult rl = run_multi_video_simulation(longer);
  EXPECT_LT(rs.avg_streams, rl.avg_streams);
}

TEST(MultiVideoDeath, MismatchedOverrideSizes) {
  MultiVideoConfig c = quick(VideoPolicy::kDhb, 100.0);
  c.per_video_segments = {99, 99};  // catalog_size is 10
  EXPECT_DEATH(run_multi_video_simulation(c), "");
}

TEST(MultiVideo, ZeroMeasuredSlotsYieldsFiniteZeros) {
  // A config whose measured window rounds to zero slots used to divide the
  // per-video sums by zero (NaN in per_video_avg while avg_streams was 0).
  MultiVideoConfig c = quick(VideoPolicy::kDhb, 100.0);
  c.warmup_hours = 1.0;
  c.measured_hours = 0.0;
  const MultiVideoResult r = run_multi_video_simulation(c);
  EXPECT_EQ(r.measured_slots, 0u);
  EXPECT_EQ(r.requests, 0u);
  EXPECT_DOUBLE_EQ(r.avg_streams, 0.0);
  EXPECT_DOUBLE_EQ(r.max_streams, 0.0);
  for (double v : r.per_video_avg) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(MultiVideoDeath, InvalidConfigsFailFast) {
  {
    MultiVideoConfig c = quick(VideoPolicy::kDhb, 100.0);
    c.num_segments = 0;
    EXPECT_DEATH(run_multi_video_simulation(c), "at least one segment");
  }
  {
    MultiVideoConfig c = quick(VideoPolicy::kDhb, 100.0);
    c.zipf_exponent = -0.1;
    EXPECT_DEATH(run_multi_video_simulation(c), "Zipf exponent");
  }
  {
    // Zero is a legal degenerate rate (a dead catalog simulates to an
    // all-idle result — see MultiVideoAdaptive.ZeroRateCatalogIsLegalAndFinite
    // in multi_video_adaptive_test.cc); negative is not.
    MultiVideoConfig c = quick(VideoPolicy::kDhb, -1.0);
    EXPECT_DEATH(run_multi_video_simulation(c), "request rate");
  }
  {
    // The diurnal peak must dominate the off-peak rate it modulates.
    MultiVideoConfig c = quick(VideoPolicy::kDhb, 100.0);
    c.diurnal_peak_requests_per_hour = 50.0;
    EXPECT_DEATH(run_multi_video_simulation(c), "diurnal peak");
  }
  {
    MultiVideoConfig c = quick(VideoPolicy::kHybrid, 100.0);
    c.hybrid_static_top = -1;
    EXPECT_DEATH(run_multi_video_simulation(c), "hybrid_static_top");
  }
  {
    MultiVideoConfig c = quick(VideoPolicy::kDhb, 100.0);
    c.num_threads = -2;
    EXPECT_DEATH(run_multi_video_simulation(c), "num_threads");
  }
  {
    MultiVideoConfig c = quick(VideoPolicy::kDhb, 100.0);
    c.per_video_segments = {99, 99, 99, 99, 99, 99, 99, 99, 99, 0};
    EXPECT_DEATH(run_multi_video_simulation(c), "segment counts");
  }
}

TEST(MultiVideo, HybridTopClampsToCatalogSize) {
  // A hybrid top beyond the catalog degenerates to the all-static policy
  // instead of misbehaving.
  MultiVideoConfig c = quick(VideoPolicy::kHybrid, 100.0);
  c.hybrid_static_top = 50;  // catalog_size is 10
  const MultiVideoResult clamped = run_multi_video_simulation(c);
  const MultiVideoResult all_static =
      run_multi_video_simulation(quick(VideoPolicy::kStatic, 100.0));
  EXPECT_DOUBLE_EQ(clamped.avg_streams, all_static.avg_streams);
  EXPECT_DOUBLE_EQ(clamped.max_streams, all_static.max_streams);
}

TEST(MultiVideo, DeterministicForSeed) {
  const MultiVideoResult a =
      run_multi_video_simulation(quick(VideoPolicy::kDhb, 100.0));
  const MultiVideoResult b =
      run_multi_video_simulation(quick(VideoPolicy::kDhb, 100.0));
  EXPECT_DOUBLE_EQ(a.avg_streams, b.avg_streams);
  EXPECT_EQ(a.requests, b.requests);
}

TEST(MultiVideo, AggregatePeakBelowSumOfPeaks) {
  // Statistical multiplexing: the aggregate maximum is below the sum of
  // what per-video worst cases would be (99 each) and typically below
  // catalog_size * DHB's single-video max.
  MultiVideoConfig c = quick(VideoPolicy::kDhb, 1000.0);
  const MultiVideoResult r = run_multi_video_simulation(c);
  EXPECT_LT(r.max_streams, 10.0 * 8.0);
}

}  // namespace
}  // namespace vod
