// Time-varying demand through the public drivers — the paper's §1
// motivation ("the frequency of requests for any given video is likely to
// vary widely with the time of the day") exercised end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "core/dhb_simulator.h"
#include "protocols/npb.h"
#include "protocols/on_demand.h"
#include "protocols/ud.h"
#include "sim/arrival_process.h"

namespace vod {
namespace {

SlottedSimConfig day_sim() {
  SlottedSimConfig sim;
  sim.warmup_hours = 24.0;   // one warmup day
  sim.measured_hours = 96.0; // four measured days
  return sim;
}

TEST(TimeVarying, DhbTracksDailyDemand) {
  NonHomogeneousPoissonProcess arrivals(daily_demand_curve(2.0, 150.0),
                                        per_hour(150.0), Rng(1));
  const SlottedSimResult r =
      run_dhb_simulation(DhbConfig{}, day_sim(), arrivals);
  EXPECT_TRUE(r.playout_ok);
  // Day-average sits well below both the peak-rate steady state (~5.2) and
  // NPB's always-on level.
  EXPECT_LT(r.avg_streams, 5.0);
  EXPECT_LT(r.avg_streams,
            static_cast<double>(NpbMapping::streams_for(99)));
  EXPECT_GT(r.avg_streams, 1.0);
}

TEST(TimeVarying, DhbBeatsUdOnTheSameDay) {
  NonHomogeneousPoissonProcess a1(daily_demand_curve(2.0, 150.0),
                                  per_hour(150.0), Rng(5));
  const SlottedSimResult dhb = run_dhb_simulation(DhbConfig{}, day_sim(), a1);
  NonHomogeneousPoissonProcess a2(daily_demand_curve(2.0, 150.0),
                                  per_hour(150.0), Rng(5));
  const SlottedSimResult ud = run_ud_simulation(day_sim(), a2);
  EXPECT_LT(dhb.avg_streams, ud.avg_streams);
}

TEST(TimeVarying, OnDemandMappingHandlesBursts) {
  // A static mapping's on-demand variant under an on/off day: cost follows
  // demand, never exceeding the mapping's stream budget.
  auto onoff = [](double t) {
    const double tod = std::fmod(t, 24.0 * 3600.0);
    return tod > 18.0 * 3600.0 ? per_hour(300.0) : per_hour(0.5);
  };
  NonHomogeneousPoissonProcess arrivals(onoff, per_hour(300.0), Rng(9));
  const auto mapping = NpbMapping::build(6, 99);
  ASSERT_TRUE(mapping.has_value());
  const SlottedSimResult r =
      run_on_demand_simulation(*mapping, day_sim(), arrivals);
  EXPECT_LE(r.max_streams, 6.0);
  EXPECT_LT(r.avg_streams, 4.0);  // idle 18 h/day drags the average down
  EXPECT_GT(r.avg_streams, 0.5);
}

TEST(TimeVarying, DeterministicAcrossRuns) {
  auto make = [] {
    return NonHomogeneousPoissonProcess(daily_demand_curve(1.0, 50.0),
                                        per_hour(50.0), Rng(42));
  };
  auto a = make();
  auto b = make();
  const SlottedSimResult ra = run_dhb_simulation(DhbConfig{}, day_sim(), a);
  const SlottedSimResult rb = run_dhb_simulation(DhbConfig{}, day_sim(), b);
  EXPECT_DOUBLE_EQ(ra.avg_streams, rb.avg_streams);
  EXPECT_EQ(ra.requests, rb.requests);
}

}  // namespace
}  // namespace vod
