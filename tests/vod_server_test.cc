#include "server/vod_server.h"

#include <gtest/gtest.h>

#include "sim/random.h"

namespace vod {
namespace {

DhbConfig small_config(int n) {
  DhbConfig c;
  c.num_segments = n;
  return c;
}

TEST(VodServer, SessionLifecycle) {
  VodServer server(small_config(4));
  server.advance_slot();
  const auto id = server.start();
  EXPECT_EQ(server.session(id).state, VodServer::SessionState::kWatching);
  EXPECT_EQ(server.session(id).next_segment, 1);
  EXPECT_EQ(server.active_sessions(), 1);
  // Four slots of watching finish the video.
  for (int k = 0; k < 4; ++k) server.advance_slot();
  EXPECT_EQ(server.session(id).state, VodServer::SessionState::kFinished);
  EXPECT_EQ(server.active_sessions(), 0);
  EXPECT_TRUE(server.session(id).playout_ok);
}

TEST(VodServer, TransmissionsMatchFigure4) {
  VodServer server(small_config(6));
  server.advance_slot();
  server.start();
  for (Segment j = 1; j <= 6; ++j) {
    const auto tx = server.advance_slot();
    ASSERT_EQ(tx.size(), 1u);
    EXPECT_EQ(tx[0].segment, j);
    EXPECT_EQ(tx[0].channel, 0);
  }
  EXPECT_EQ(server.total_transmissions(), 6u);
  EXPECT_EQ(server.peak_channels(), 1);
}

TEST(VodServer, ChannelsAreDistinctPerSlot) {
  VodServer server(small_config(10));
  Rng rng(3);
  for (int step = 0; step < 100; ++step) {
    const auto tx = server.advance_slot();
    std::vector<int> channels;
    for (const auto& t : tx) channels.push_back(t.channel);
    std::sort(channels.begin(), channels.end());
    EXPECT_TRUE(std::adjacent_find(channels.begin(), channels.end()) ==
                channels.end());
    if (!channels.empty()) {
      EXPECT_EQ(channels.front(), 0);  // lowest channels first
      EXPECT_EQ(channels.back(), static_cast<int>(channels.size()) - 1);
    }
    for (uint64_t a = rng.poisson(0.7); a > 0; --a) server.start();
  }
  EXPECT_GE(server.peak_channels(), 1);
  EXPECT_LE(server.peak_channels(), 10);
}

TEST(VodServer, PauseStopsProgress) {
  VodServer server(small_config(8));
  server.advance_slot();
  const auto id = server.start();
  server.advance_slot();  // watched S1
  server.advance_slot();  // watched S2
  EXPECT_EQ(server.session(id).next_segment, 3);
  server.pause(id);
  for (int k = 0; k < 5; ++k) server.advance_slot();
  EXPECT_EQ(server.session(id).next_segment, 3);
  EXPECT_EQ(server.session(id).state, VodServer::SessionState::kPaused);
  EXPECT_EQ(server.active_sessions(), 1);  // paused counts as active
}

TEST(VodServer, ResumeContinuesFromNextSegment) {
  VodServer server(small_config(8));
  server.advance_slot();
  const auto id = server.start();
  server.advance_slot();
  server.advance_slot();  // watched S1, S2
  server.pause(id);
  for (int k = 0; k < 10; ++k) server.advance_slot();
  server.resume(id);
  EXPECT_EQ(server.session(id).state, VodServer::SessionState::kWatching);
  EXPECT_EQ(server.session(id).resumes, 1);
  // Six more slots to finish S3..S8.
  for (int k = 0; k < 6; ++k) server.advance_slot();
  EXPECT_EQ(server.session(id).state, VodServer::SessionState::kFinished);
  EXPECT_TRUE(server.session(id).playout_ok);
}

TEST(VodServer, ResumeAfterFullyWatchedFinishes) {
  VodServer server(small_config(3));
  server.advance_slot();
  const auto id = server.start();
  for (int k = 0; k < 2; ++k) server.advance_slot();
  // Watched S1, S2; pause just before the end, watch S3 via resume later.
  server.pause(id);
  server.resume(id);
  for (int k = 0; k < 1; ++k) server.advance_slot();
  EXPECT_EQ(server.session(id).state, VodServer::SessionState::kFinished);
}

TEST(VodServer, StopAbandonsSession) {
  VodServer server(small_config(5));
  server.advance_slot();
  const auto id = server.start();
  server.stop(id);
  EXPECT_EQ(server.session(id).state, VodServer::SessionState::kStopped);
  EXPECT_EQ(server.active_sessions(), 0);
  // Already-scheduled transmissions still happen (DHB never cancels).
  uint64_t tx = 0;
  for (int k = 0; k < 6; ++k) tx += server.advance_slot().size();
  EXPECT_EQ(tx, 5u);
}

TEST(VodServer, ManyClientsShareTransmissions) {
  VodServer server(small_config(12));
  server.advance_slot();
  for (int c = 0; c < 20; ++c) server.start();  // same slot: full sharing
  uint64_t tx = 0;
  for (int k = 0; k < 13; ++k) tx += server.advance_slot().size();
  EXPECT_EQ(tx, 12u);  // one instance per segment serves all twenty
  EXPECT_EQ(server.peak_channels(), 1);
}

TEST(VodServer, RandomizedVcrWorkloadStaysCorrect) {
  VodServer server(small_config(15));
  Rng rng(2024);
  std::vector<VodServer::ClientId> ids;
  for (int step = 0; step < 400; ++step) {
    server.advance_slot();
    if (rng.uniform() < 0.3) ids.push_back(server.start());
    if (!ids.empty() && rng.uniform() < 0.2) {
      const auto id = ids[rng.uniform_index(ids.size())];
      const auto state = server.session(id).state;
      if (state == VodServer::SessionState::kWatching) {
        server.pause(id);
      } else if (state == VodServer::SessionState::kPaused) {
        server.resume(id);
      }
    }
  }
  for (const auto id : ids) {
    EXPECT_TRUE(server.session(id).playout_ok) << id;
  }
}

// Regression for the determinism contract (DESIGN.md §8/§11): the session
// table is a std::map precisely so that advance_slot()'s walk is
// id-ordered — an unordered_map here once made the walk order an artifact
// of hash-table internals. The golden FNV-1a checksum over a seeded VCR
// workload pins the full externally visible behavior bit-for-bit; any
// order-dependent walk sneaking back in shows up as a checksum change on
// some platform or standard-library version.
TEST(VodServer, DeterministicWorkloadChecksum) {
  constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
  constexpr uint64_t kFnvPrime = 1099511628211ULL;
  auto mix = [](uint64_t h, uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h = (h ^ ((v >> (8 * byte)) & 0xff)) * kFnvPrime;
    }
    return h;
  };

  auto run_workload = [&mix] {
    VodServer server(small_config(12));
    Rng rng(99);
    std::vector<VodServer::ClientId> ids;
    uint64_t h = kFnvOffset;
    for (int step = 0; step < 250; ++step) {
      for (const auto& t : server.advance_slot()) {
        h = mix(h, static_cast<uint64_t>(t.channel));
        h = mix(h, static_cast<uint64_t>(t.segment));
      }
      if (rng.uniform() < 0.35) ids.push_back(server.start());
      if (!ids.empty() && rng.uniform() < 0.25) {
        const auto id = ids[rng.uniform_index(ids.size())];
        switch (server.session(id).state) {
          case VodServer::SessionState::kWatching:
            if (rng.uniform() < 0.2) {
              server.stop(id);
            } else {
              server.pause(id);
            }
            break;
          case VodServer::SessionState::kPaused:
            server.resume(id);
            break;
          default:
            break;
        }
      }
      h = mix(h, static_cast<uint64_t>(server.active_sessions()));
      h = mix(h, static_cast<uint64_t>(server.channels_in_use()));
    }
    for (const auto id : ids) {
      const auto& info = server.session(id);
      h = mix(h, static_cast<uint64_t>(info.state));
      h = mix(h, static_cast<uint64_t>(info.next_segment));
      h = mix(h, static_cast<uint64_t>(info.resumes));
      h = mix(h, info.playout_ok ? 1u : 0u);
    }
    return h;
  };

  const uint64_t checksum = run_workload();
  EXPECT_EQ(checksum, run_workload());          // repeatable in-process
  EXPECT_EQ(checksum, 0x4660ca4b92f5f328ULL);   // and bit-identical everywhere
}

TEST(VodServerDeath, InvalidOperations) {
  VodServer server(small_config(4));
  server.advance_slot();
  EXPECT_DEATH(server.pause(12345), "unknown session");
  const auto id = server.start();
  EXPECT_DEATH(server.resume(id), "paused");
  server.pause(id);
  EXPECT_DEATH(server.pause(id), "watching");
}

}  // namespace
}  // namespace vod
