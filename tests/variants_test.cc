#include "vbr/variants.h"

#include <gtest/gtest.h>

#include "core/dhb.h"
#include "vbr/synthetic.h"

namespace vod {
namespace {

const VariantAnalysis& paper_analysis() {
  static const VariantAnalysis va =
      analyze_variants(generate_synthetic_vbr(SyntheticVbrParams{}), 60.0);
  return va;
}

TEST(Variants, DhbAMatchesPaperExactly) {
  // §4: 137 segments, 951 KB/s streams.
  const DhbVariant& a = paper_analysis().a;
  EXPECT_EQ(a.num_segments, 137);
  EXPECT_NEAR(a.stream_rate_kbs, 951.0, 1.0);
  EXPECT_TRUE(a.periods.empty());
}

TEST(Variants, SlotDurationFromWaitBound) {
  // 8170 s / 137 segments = 59.64 s slots for a one-minute wait bound.
  EXPECT_NEAR(paper_analysis().slot_s, 8170.0 / 137.0, 1e-9);
}

TEST(Variants, DhbBRateBetweenMeanAndPeak) {
  // Paper: 789 KB/s. The synthetic trace reproduces the ordering and lands
  // within ~6% of the value.
  const double r = paper_analysis().b.stream_rate_kbs;
  EXPECT_GT(r, 700.0);
  EXPECT_LT(r, 860.0);
  EXPECT_EQ(paper_analysis().b.num_segments, 137);
}

TEST(Variants, DhbCRateNearPaper) {
  // Paper: 671 KB/s and 129 segments.
  const DhbVariant& c = paper_analysis().c;
  EXPECT_NEAR(c.stream_rate_kbs, 671.0, 12.0);
  EXPECT_NEAR(c.num_segments, 129, 2);
}

TEST(Variants, RateOrderingMatchesPaper) {
  // 951 > 789 > 671 > 636: each optimization strictly reduces the rate.
  const VariantAnalysis& va = paper_analysis();
  EXPECT_GT(va.peak_rate_kbs, va.segment_rate_kbs);
  EXPECT_GT(va.segment_rate_kbs, va.workahead_rate_kbs);
  EXPECT_GT(va.workahead_rate_kbs, 636.0);
}

TEST(Variants, DhbDPeriodsMatchPaperStructure) {
  // §4: T[1] = 1; S_2 only every three slots; S_3 still every three slots;
  // nearly all other segments delayed by one to eight slots.
  const DhbVariant& d = paper_analysis().d;
  ASSERT_GE(d.periods.size(), 4u);
  EXPECT_EQ(d.periods[0], 1);
  EXPECT_EQ(d.periods[1], 3);
  EXPECT_EQ(d.periods[2], 3);
  int delayed = 0;
  int max_delay = 0;
  for (size_t k = 0; k < d.periods.size(); ++k) {
    const int delay = d.periods[k] - static_cast<int>(k + 1);
    EXPECT_GE(delay, 0);
    if (delay > 0) ++delayed;
    max_delay = std::max(max_delay, delay);
  }
  EXPECT_GT(delayed, static_cast<int>(d.periods.size()) / 2);  // "nearly all"
  EXPECT_GE(max_delay, 4);
  EXPECT_LE(max_delay, 9);  // paper: one to eight slots
}

TEST(Variants, CAndDShareRateAndCount) {
  const VariantAnalysis& va = paper_analysis();
  EXPECT_EQ(va.c.num_segments, va.d.num_segments);
  EXPECT_DOUBLE_EQ(va.c.stream_rate_kbs, va.d.stream_rate_kbs);
  EXPECT_LT(va.c.num_segments, va.a.num_segments);  // 137 -> ~129
}

TEST(Variants, ConfigsAreSchedulable) {
  // Every variant's DhbConfig must construct a working scheduler and
  // produce deadline-correct plans.
  const VariantAnalysis& va = paper_analysis();
  for (const DhbVariant* v : {&va.a, &va.b, &va.c, &va.d}) {
    DhbScheduler s(v->dhb_config());
    s.advance_slot();
    const DhbRequestResult r = s.on_request();
    const PlanDiagnostics diag = verify_plan(r.plan, s.periods());
    EXPECT_TRUE(diag.deadlines_met) << v->name;
  }
}

TEST(Variants, TighterWaitBoundMeansMoreSegments) {
  const VbrTrace t = generate_synthetic_vbr(SyntheticVbrParams{});
  const VariantAnalysis va30 = analyze_variants(t, 30.0);
  EXPECT_EQ(va30.a.num_segments, 273);  // ceil(8170/30)
  EXPECT_GT(va30.a.num_segments, paper_analysis().a.num_segments);
  // The peak-provisioned rate is unchanged; the per-segment rate grows
  // (shorter averaging windows).
  EXPECT_NEAR(va30.peak_rate_kbs, paper_analysis().peak_rate_kbs, 1e-9);
  EXPECT_GE(va30.segment_rate_kbs, paper_analysis().segment_rate_kbs);
}

TEST(Variants, DramaCollapsesTowardTheMean) {
  // §5's "other videos" question: a near-CBR video gains almost nothing
  // from work-ahead — the c rate sits on the mean and no segment can be
  // delayed.
  const VbrTrace t = generate_synthetic_vbr(drama_profile());
  const VariantAnalysis va = analyze_variants(t, 60.0);
  EXPECT_LT(va.workahead_rate_kbs, 1.01 * t.mean_rate_kbs());
  int delayed = 0;
  for (size_t k = 0; k < va.d.periods.size(); ++k) {
    if (va.d.periods[k] > static_cast<int>(k + 1)) ++delayed;
  }
  EXPECT_LE(delayed, va.d.num_segments / 10);
}

TEST(Variants, BackLoadedVideoSmoothsToItsMean) {
  // A demanding finale is absorbed entirely by work-ahead: the binding
  // prefix is the whole video, so the c rate equals the mean and nearly
  // every segment can wait.
  const VbrTrace t = generate_synthetic_vbr(documentary_profile());
  const VariantAnalysis va = analyze_variants(t, 60.0);
  EXPECT_NEAR(va.workahead_rate_kbs, t.mean_rate_kbs(),
              0.02 * t.mean_rate_kbs());
  EXPECT_LT(va.workahead_rate_kbs, 0.75 * va.segment_rate_kbs);
  int delayed = 0;
  for (size_t k = 0; k < va.d.periods.size(); ++k) {
    if (va.d.periods[k] > static_cast<int>(k + 1)) ++delayed;
  }
  EXPECT_GT(delayed, 3 * va.d.num_segments / 4);
}

TEST(Variants, NamesAreStable) {
  const VariantAnalysis& va = paper_analysis();
  EXPECT_EQ(va.a.name, "DHB-a");
  EXPECT_EQ(va.b.name, "DHB-b");
  EXPECT_EQ(va.c.name, "DHB-c");
  EXPECT_EQ(va.d.name, "DHB-d");
}

}  // namespace
}  // namespace vod
