#include "obs/export.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vod {
namespace {

using obs::MetricShard;
using obs::TraceBuffer;
using obs::TraceClock;
using obs::TraceEvent;
using obs::TracePhase;

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(ChromeTrace, EnvelopeAndClockDomains) {
  TraceBuffer buffer(16);
  obs::emit_instant(&buffer, "admission/placed", "dhb", 3, {{"new", 1}});
  obs::emit_counter(&buffer, "streams", "dhb", 4, 7);
  TraceEvent wall;
  wall.name = "shard_kernel";
  wall.category = "engine";
  wall.phase = TracePhase::kComplete;
  wall.clock = TraceClock::kWall;
  wall.ts = 1500;   // ns -> exported as 1.5 us
  wall.dur = 2500;
  buffer.emit(wall);

  const std::string json = obs::chrome_trace_json({&buffer});
  EXPECT_TRUE(contains(json, "\"traceEvents\":["));
  EXPECT_TRUE(contains(json, "\"displayTimeUnit\":\"ms\""));
  // Process metadata names both clock domains.
  EXPECT_TRUE(contains(json, "\"process_name\""));
  EXPECT_TRUE(contains(json, "slot time"));
  EXPECT_TRUE(contains(json, "wall clock"));
  // Slot events: 1 slot = 1000 us, pid 1, instants carry a scope.
  EXPECT_TRUE(contains(json, "\"ph\":\"i\",\"ts\":3000,\"pid\":1"));
  EXPECT_TRUE(contains(json, "\"s\":\"t\""));
  EXPECT_TRUE(contains(json, "\"args\":{\"new\":1}"));
  EXPECT_TRUE(contains(json, "\"ph\":\"C\",\"ts\":4000,\"pid\":1"));
  // Wall events: ns -> us with sub-us precision, pid 2.
  EXPECT_TRUE(contains(json, "\"ph\":\"X\",\"ts\":1.500,\"dur\":2.500"));
  EXPECT_TRUE(contains(json, "\"pid\":2"));
  EXPECT_TRUE(contains(json, "\"droppedEvents\":\"0\""));
}

TEST(ChromeTrace, MergesBuffersAndCountsDrops) {
  TraceBuffer a(2), b(2);
  for (int64_t i = 0; i < 3; ++i) {
    obs::emit_instant(&a, "a", "t", i, {});
  }
  obs::emit_instant(&b, "b", "t", 9, {});
  const std::string json = obs::chrome_trace_json({&a, nullptr, &b});
  EXPECT_TRUE(contains(json, "\"droppedEvents\":\"1\""));
  EXPECT_TRUE(contains(json, "\"name\":\"b\""));
}

TEST(Prometheus, CounterGaugeHistogramExposition) {
  MetricShard m;
  m.counter("dhb_requests_total")->inc(42);
  m.gauge("engine load%")->set(1.25);  // '%' must be sanitized
  obs::HistogramMetric* h = m.histogram("lat", 0.0, 4.0, 4);
  h->observe(0.5);
  h->observe(2.5);
  h->observe(2.6);

  const std::string text = obs::prometheus_text(m);
  EXPECT_TRUE(contains(text, "# TYPE vod_dhb_requests_total counter\n"
                             "vod_dhb_requests_total 42\n"));
  EXPECT_TRUE(contains(text, "# TYPE vod_engine_load_ gauge\n"
                             "vod_engine_load_ 1.25\n"));
  EXPECT_TRUE(contains(text, "# TYPE vod_lat histogram\n"));
  // Cumulative buckets over the four [0,4) bins, then the +Inf bucket.
  EXPECT_TRUE(contains(text, "vod_lat_bucket{le=\"1\"} 1\n"));
  EXPECT_TRUE(contains(text, "vod_lat_bucket{le=\"2\"} 1\n"));
  EXPECT_TRUE(contains(text, "vod_lat_bucket{le=\"3\"} 3\n"));
  EXPECT_TRUE(contains(text, "vod_lat_bucket{le=\"4\"} 3\n"));
  EXPECT_TRUE(contains(text, "vod_lat_bucket{le=\"+Inf\"} 3\n"));
  EXPECT_TRUE(contains(text, "vod_lat_sum 5.6\n"));
  EXPECT_TRUE(contains(text, "vod_lat_count 3\n"));
}

TEST(Prometheus, KeepsExistingPrefix) {
  MetricShard m;
  m.counter("vod_already_total")->inc(1);
  const std::string text = obs::prometheus_text(m);
  EXPECT_TRUE(contains(text, "vod_already_total 1\n"));
  EXPECT_FALSE(contains(text, "vod_vod_"));
}

TEST(Jsonl, SelfDescribingSnapshotPerLine) {
  MetricShard m;
  m.counter("a_total")->inc(2);
  m.gauge("g")->set(0.5);
  m.histogram("h", 0.0, 2.0, 2)->observe(0.5);

  const std::string text = obs::metrics_jsonl(m);
  EXPECT_TRUE(contains(
      text, "{\"kind\":\"counter\",\"name\":\"a_total\",\"value\":2}\n"));
  EXPECT_TRUE(contains(text,
                       "{\"kind\":\"gauge\",\"name\":\"g\",\"value\":0.5}\n"));
  EXPECT_TRUE(contains(text, "\"kind\":\"histogram\",\"name\":\"h\""));
  EXPECT_TRUE(contains(text, "\"bins\":[1,0]"));
  // Exactly one object per line, and nothing else.
  size_t lines = 0;
  for (char c : text) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 3u);
}

}  // namespace
}  // namespace vod
