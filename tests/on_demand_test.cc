#include "protocols/on_demand.h"

#include <gtest/gtest.h>

#include "protocols/fast_broadcasting.h"
#include "protocols/npb.h"
#include "protocols/skyscraper.h"
#include "protocols/ud.h"

namespace vod {
namespace {

SlottedSimConfig quick_sim(double rate, int n = 99) {
  SlottedSimConfig sim;
  sim.video.num_segments = n;
  sim.requests_per_hour = rate;
  sim.warmup_hours = 4.0;
  sim.measured_hours = 120.0;
  return sim;
}

class OnDemandFbTest : public ::testing::TestWithParam<double> {};

// On-demand FB *is* the UD protocol: the generic simulator must match the
// UD closed form at every rate.
TEST_P(OnDemandFbTest, MatchesUdClosedForm) {
  const double rate = GetParam();
  SlottedSimConfig sim = quick_sim(rate);
  if (rate < 5.0) sim.measured_hours = 400.0;
  const FbMapping fb(99);
  const SlottedSimResult r = run_on_demand_simulation(fb, sim);
  const double expected = ud_expected_bandwidth(sim.video, rate);
  EXPECT_NEAR(r.avg_streams, expected, std::max(0.1, 0.05 * expected));
}

INSTANTIATE_TEST_SUITE_P(Rates, OnDemandFbTest,
                         ::testing::Values(1.0, 10.0, 100.0, 1000.0),
                         [](const auto& param_info) {
                           return "r" +
                                  std::to_string(static_cast<int>(param_info.param));
                         });

TEST(OnDemand, FbMatchesDedicatedUdSimulator) {
  // Same model, two implementations: the generic prev-occurrence rule and
  // ud.cc's rotation rule must produce statistically identical output.
  const SlottedSimConfig sim = quick_sim(30.0);
  const FbMapping fb(99);
  const SlottedSimResult generic = run_on_demand_simulation(fb, sim);
  const SlottedSimResult dedicated = run_ud_simulation(sim);
  EXPECT_NEAR(generic.avg_streams, dedicated.avg_streams,
              0.03 * dedicated.avg_streams);
  EXPECT_DOUBLE_EQ(generic.max_streams, dedicated.max_streams);
}

TEST(OnDemand, NeverExceedsMappingStreams) {
  const SbMapping sb(27);
  SlottedSimConfig sim = quick_sim(2000.0, 27);
  const SlottedSimResult r = run_on_demand_simulation(sb, sim);
  EXPECT_LE(r.max_streams, static_cast<double>(sb.streams()));
  EXPECT_NEAR(r.avg_streams, static_cast<double>(sb.streams()), 0.05);
}

TEST(OnDemand, DynamicSkyscraperCostsMoreThanDynamicNpb) {
  // DSB inherits SB's lower packing density, so its on-demand variant
  // needs more server bandwidth than on-demand NPB for the same segment
  // count — the §2 comparison ("it also requires a higher server
  // bandwidth").
  const int n = 27;  // SB: 6 streams; NPB: fewer
  const SbMapping sb(n);
  const auto npb = NpbMapping::build(NpbMapping::streams_for(n), n);
  ASSERT_TRUE(npb.has_value());
  ASSERT_GT(sb.streams(), npb->streams());
  const SlottedSimConfig sim = quick_sim(500.0, n);
  const SlottedSimResult dsb = run_on_demand_simulation(sb, sim);
  const SlottedSimResult dnpb = run_on_demand_simulation(*npb, sim);
  EXPECT_GT(dsb.avg_streams, dnpb.avg_streams);
}

TEST(OnDemand, IdleSystemIsSilent) {
  const FbMapping fb(15);
  SlottedSimConfig sim = quick_sim(1.0, 15);
  sim.warmup_hours = 0.0;
  sim.measured_hours = 1.0;
  ScriptedArrivals arrivals({});
  const SlottedSimResult r = run_on_demand_simulation(fb, sim, arrivals);
  EXPECT_DOUBLE_EQ(r.avg_streams, 0.0);
}

TEST(OnDemand, OneRequestCostsOneVideoOnAnyMapping) {
  for (int n : {15, 31}) {
    const FbMapping fb(n);
    SlottedSimConfig sim = quick_sim(1.0, n);
    sim.warmup_hours = 0.0;
    sim.measured_hours = 5.0;
    ScriptedArrivals arrivals({10.0});
    const SlottedSimResult r = run_on_demand_simulation(fb, sim, arrivals);
    const double d = sim.video.slot_duration_s();
    const double busy_slots = r.avg_streams * sim.measured_hours * 3600.0 / d;
    EXPECT_NEAR(busy_slots, static_cast<double>(n), 1.5) << n;
  }
}

}  // namespace
}  // namespace vod
