// Same-slot request coalescing (DhbConfig::coalesce_same_slot) and the
// on_request_batch entry point: k same-slot requests must be bit-identical
// to k sequential admissions — plans AND lifetime counters — and the memo
// must go stale on every event that can change a same-slot plan.
#include <gtest/gtest.h>

#include <vector>

#include "core/dhb.h"

namespace vod {
namespace {

DhbConfig coalescing_config(bool on) {
  DhbConfig config;
  config.num_segments = 10;
  config.coalesce_same_slot = on;
  return config;
}

void expect_same_result(const DhbRequestResult& a, const DhbRequestResult& b) {
  EXPECT_EQ(a.plan.arrival_slot, b.plan.arrival_slot);
  EXPECT_EQ(a.plan.reception_slot, b.plan.reception_slot);
  EXPECT_EQ(a.new_instances, b.new_instances);
  EXPECT_EQ(a.shared_instances, b.shared_instances);
  EXPECT_EQ(a.cap_violations, b.cap_violations);
}

void expect_same_counters(const DhbScheduler& a, const DhbScheduler& b) {
  EXPECT_EQ(a.total_requests(), b.total_requests());
  EXPECT_EQ(a.total_new_instances(), b.total_new_instances());
  EXPECT_EQ(a.total_shared(), b.total_shared());
  EXPECT_EQ(a.total_slot_probes(), b.total_slot_probes());
  EXPECT_EQ(a.total_rejected_admissions(), b.total_rejected_admissions());
}

TEST(Coalescing, FollowersGetLeadersPlanAllShared) {
  DhbScheduler s(coalescing_config(true));
  const DhbRequestResult leader = s.on_request();
  EXPECT_EQ(leader.new_instances, 10);  // empty schedule: all fresh
  const DhbRequestResult follower = s.on_request();
  EXPECT_EQ(follower.plan.reception_slot, leader.plan.reception_slot);
  EXPECT_EQ(follower.new_instances, 0);
  EXPECT_EQ(follower.shared_instances, 10);
  EXPECT_EQ(s.total_coalesced_requests(), 1u);
}

TEST(Coalescing, KSameSlotRequestsMatchSequentialAdmits) {
  DhbScheduler with(coalescing_config(true));
  DhbScheduler without(coalescing_config(false));
  for (int slot = 0; slot < 40; ++slot) {
    const int k = (slot * 7) % 5;  // 0..4 same-slot arrivals
    for (int i = 0; i < k; ++i) {
      const DhbRequestResult a = with.on_request();
      const DhbRequestResult b = without.on_request();
      expect_same_result(a, b);
    }
    expect_same_counters(with, without);
    ASSERT_EQ(with.advance_slot(), without.advance_slot());
  }
  EXPECT_GT(with.total_coalesced_requests(), 0u);
  EXPECT_EQ(without.total_coalesced_requests(), 0u);
}

TEST(Coalescing, BatchEqualsSequentialCountersIncluded) {
  DhbScheduler batched(coalescing_config(true));
  DhbScheduler sequential(coalescing_config(true));
  DhbScheduler naive(coalescing_config(false));
  for (int slot = 0; slot < 20; ++slot) {
    const uint64_t k = 1 + static_cast<uint64_t>(slot % 4);
    const DhbRequestResult a = batched.on_request_batch(k);
    DhbRequestResult b;
    DhbRequestResult c;
    for (uint64_t i = 0; i < k; ++i) {
      b = sequential.on_request();
      c = naive.on_request();
    }
    expect_same_result(a, b);
    expect_same_result(a, c);
    expect_same_counters(batched, sequential);
    expect_same_counters(batched, naive);
    EXPECT_EQ(batched.total_coalesced_requests(),
              sequential.total_coalesced_requests());
    EXPECT_EQ(batched.total_work_units(), sequential.total_work_units());
    const std::vector<Segment> sent = batched.advance_slot();
    ASSERT_EQ(sent, sequential.advance_slot());
    ASSERT_EQ(sent, naive.advance_slot());
  }
}

TEST(Coalescing, AdvanceInvalidatesMemo) {
  DhbScheduler s(coalescing_config(true));
  s.on_request();
  s.on_request();
  EXPECT_EQ(s.total_coalesced_requests(), 1u);
  s.advance_slot();
  // The next request must be a genuine admission (segment 1's old instance
  // just transmitted, so it needs a fresh one), not a stale memo copy.
  const DhbRequestResult r = s.on_request();
  EXPECT_GT(r.new_instances, 0);
  EXPECT_EQ(s.total_coalesced_requests(), 1u);
}

TEST(Coalescing, ClampedAdmissionInvalidatesMemo) {
  DhbScheduler with(coalescing_config(true));
  DhbScheduler without(coalescing_config(false));
  for (int round = 0; round < 3; ++round) {
    expect_same_result(with.on_request(), without.on_request());
    // A resume may schedule an extra instance inside the full window,
    // changing what the *next* full request shares: the memo must not
    // serve the pre-resume plan.
    expect_same_result(with.on_resume(5), without.on_resume(5));
    expect_same_result(with.on_request(), without.on_request());
    expect_same_result(with.on_range(2, 7), without.on_range(2, 7));
    expect_same_result(with.on_request(), without.on_request());
    expect_same_counters(with, without);
    ASSERT_EQ(with.advance_slot(), without.advance_slot());
  }
}

TEST(Coalescing, BoundedAdmissionInvalidatesMemo) {
  DhbScheduler with(coalescing_config(true));
  DhbScheduler without(coalescing_config(false));
  for (int round = 0; round < 4; ++round) {
    expect_same_result(with.on_request(), without.on_request());
    const std::optional<DhbRequestResult> a = with.on_request_bounded(2);
    const std::optional<DhbRequestResult> b = without.on_request_bounded(2);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) expect_same_result(*a, *b);
    expect_same_result(with.on_request(), without.on_request());
    expect_same_counters(with, without);
    ASSERT_EQ(with.advance_slot(), without.advance_slot());
    ASSERT_EQ(with.advance_slot(), without.advance_slot());
  }
}

TEST(Coalescing, CappedClientsNeverCoalesce) {
  DhbConfig config = coalescing_config(true);
  config.client_stream_cap = 2;
  DhbScheduler s(config);
  s.on_request();
  s.on_request();
  s.on_request();
  EXPECT_EQ(s.total_coalesced_requests(), 0u);
}

TEST(Coalescing, FollowerCountersAdvanceLikeSequential) {
  DhbScheduler s(coalescing_config(true));
  s.on_request();
  const uint64_t probes_after_leader = s.total_slot_probes();
  const uint64_t shared_after_leader = s.total_shared();
  s.on_request();
  // A sequential second admission probes the same sum-of-windows and
  // shares every segment; the memoized follower must account identically.
  EXPECT_EQ(s.total_slot_probes(), 2 * probes_after_leader);
  EXPECT_EQ(s.total_shared(), shared_after_leader + 10);
  EXPECT_EQ(s.total_requests(), 2u);
  EXPECT_EQ(s.total_new_instances(), 10u);
}

}  // namespace
}  // namespace vod
