#include "schedule/stream_pool.h"

#include <gtest/gtest.h>

namespace vod {
namespace {

TEST(StreamPool, FirstInstanceOnStreamZero) {
  StreamPool pool;
  EXPECT_EQ(pool.assign(1, 5), 0);
  EXPECT_EQ(pool.streams_used(), 1);
  EXPECT_EQ(pool.at(0, 5), 1);
  EXPECT_EQ(pool.at(0, 6), 0);
}

TEST(StreamPool, CollidingSlotsOpenNewStream) {
  StreamPool pool;
  EXPECT_EQ(pool.assign(1, 5), 0);
  EXPECT_EQ(pool.assign(2, 5), 1);
  EXPECT_EQ(pool.assign(3, 5), 2);
  EXPECT_EQ(pool.streams_used(), 3);
}

TEST(StreamPool, ReusesFreedSlots) {
  StreamPool pool;
  pool.assign(1, 5);
  pool.assign(2, 6);  // stream 0 is idle during slot 6? no — first fit:
  EXPECT_EQ(pool.at(0, 6), 2);  // lands on stream 0, it is free at slot 6
  EXPECT_EQ(pool.streams_used(), 1);
}

// The paper's Figure 4: one request into an idle 6-segment system puts all
// six instances on the first stream.
TEST(StreamPool, Figure4SingleStream) {
  StreamPool pool;
  for (Segment j = 1; j <= 6; ++j) pool.assign(j, 1 + j);
  EXPECT_EQ(pool.streams_used(), 1);
  for (Segment j = 1; j <= 6; ++j) EXPECT_EQ(pool.at(0, 1 + j), j);
}

// Figure 5: the second request's fresh S1 (slot 4) and S2 (slot 5) land on
// the second stream because the first carries S3/S4 there.
TEST(StreamPool, Figure5TwoStreams) {
  StreamPool pool;
  for (Segment j = 1; j <= 6; ++j) pool.assign(j, 1 + j);  // first request
  EXPECT_EQ(pool.assign(1, 4), 1);
  EXPECT_EQ(pool.assign(2, 5), 1);
  EXPECT_EQ(pool.streams_used(), 2);
  EXPECT_EQ(pool.at(1, 4), 1);
  EXPECT_EQ(pool.at(1, 5), 2);
}

TEST(StreamPool, RenderShowsSegmentsAndIdle) {
  StreamPool pool;
  pool.assign(3, 2);
  const std::string grid = pool.render(1, 3);
  EXPECT_NE(grid.find("S3"), std::string::npos);
  EXPECT_NE(grid.find("Stream 1"), std::string::npos);
  EXPECT_NE(grid.find('-'), std::string::npos);
}

TEST(StreamPool, AtOutOfRangeIsIdle) {
  StreamPool pool;
  EXPECT_EQ(pool.at(0, 1), 0);
  EXPECT_EQ(pool.at(-1, 1), 0);
  pool.assign(1, 1);
  EXPECT_EQ(pool.at(5, 1), 0);
}

}  // namespace
}  // namespace vod
