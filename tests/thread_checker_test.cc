// Tests for the bind-on-first-use ThreadChecker backing VOD_DCHECK_SERIAL
// (util/thread_checker.h): first-use binding, cross-thread rejection, the
// detach() ownership handoff the multi-video engine relies on, and the
// fresh-scope semantics of copies.
#include "util/thread_checker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace vod {
namespace {

TEST(ThreadChecker, BindsOnFirstUseAndStaysBound) {
  ThreadChecker checker;
  EXPECT_TRUE(checker.calls_serial());  // first use binds
  EXPECT_TRUE(checker.calls_serial());  // and keeps answering true
  EXPECT_TRUE(checker.calls_serial());
}

TEST(ThreadChecker, OtherThreadSeesFalseAfterBinding) {
  ThreadChecker checker;
  ASSERT_TRUE(checker.calls_serial());  // bound to this thread

  bool other_serial = true;
  std::thread other([&] { other_serial = checker.calls_serial(); });
  other.join();
  EXPECT_FALSE(other_serial);
  EXPECT_TRUE(checker.calls_serial());  // binding unchanged
}

TEST(ThreadChecker, DetachHandsOwnershipToNextCaller) {
  ThreadChecker checker;
  ASSERT_TRUE(checker.calls_serial());

  // The engine's handoff: the orchestrator detaches, the worker that
  // touches the state next becomes the owner.
  checker.detach();
  bool worker_serial = false;
  std::thread worker([&] { worker_serial = checker.calls_serial(); });
  worker.join();
  EXPECT_TRUE(worker_serial);

  // The old owner is now a foreign thread.
  EXPECT_FALSE(checker.calls_serial());
}

TEST(ThreadChecker, CopyGuardsAFreshOwnershipScope) {
  ThreadChecker original;
  ASSERT_TRUE(original.calls_serial());

  ThreadChecker copy(original);
  bool copy_serial = false;
  std::thread other([&] { copy_serial = copy.calls_serial(); });
  other.join();
  EXPECT_TRUE(copy_serial);             // copy bound independently
  EXPECT_TRUE(original.calls_serial());  // original binding untouched
}

TEST(ThreadChecker, ConcurrentFirstUseBindsExactlyOneWinner) {
  constexpr int kThreads = 8;
  ThreadChecker checker;
  std::atomic<int> winners{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      if (checker.calls_serial()) winners.fetch_add(1);
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  EXPECT_EQ(winners.load(), 1);
}

}  // namespace
}  // namespace vod
