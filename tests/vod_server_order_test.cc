// Session-table iteration order under adversarial VCR interleavings.
//
// VodServer's determinism contract (vod_server.h header comment) hangs on
// the session walk being id-ordered: advance_slot() and active_sessions()
// iterate sessions_, and if that order ever followed insertion pattern or
// hash internals, per-session results would vary run to run. These tests
// drive the table through hostile insertion/removal interleavings and pin
// the walk to ascending ids — the guard that keeps a future container
// swap (std::map -> unordered_map) from compiling silently.
#include "server/vod_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "sim/random.h"

namespace vod {
namespace {

DhbConfig small_config(int n) {
  DhbConfig c;
  c.num_segments = n;
  return c;
}

void expect_ascending(const std::vector<VodServer::ClientId>& ids) {
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
}

TEST(VodServerOrder, IdsAscendRegardlessOfVcrInterleaving) {
  // Adversarial pattern: bursts of starts, then stop/pause from both ends
  // and the middle, resumes out of order, more starts. The table must
  // stay ascending-by-id through all of it (stopped sessions keep their
  // slot in the walk; ids are never reused).
  VodServer server(small_config(8));
  server.advance_slot();

  std::vector<VodServer::ClientId> ids;
  for (int i = 0; i < 7; ++i) ids.push_back(server.start());
  expect_ascending(server.session_ids());

  server.stop(ids[3]);            // middle
  server.stop(ids[0]);            // front
  server.pause(ids[6]);           // back
  server.pause(ids[1]);
  server.advance_slot();
  for (int i = 0; i < 5; ++i) ids.push_back(server.start());
  server.resume(ids[6]);          // resume in reverse pause order
  server.resume(ids[1]);
  server.stop(ids[10]);
  server.advance_slot();

  const std::vector<VodServer::ClientId> walk = server.session_ids();
  ASSERT_EQ(walk.size(), ids.size());
  expect_ascending(walk);
  // The walk is exactly the start order: ids are dense and sequential.
  std::vector<VodServer::ClientId> sorted_ids = ids;
  std::sort(sorted_ids.begin(), sorted_ids.end());
  EXPECT_EQ(walk, sorted_ids);
  EXPECT_EQ(sorted_ids, ids);  // start() itself hands out ascending ids
}

TEST(VodServerOrder, RandomizedVcrStormKeepsWalkAndCountersCoherent) {
  // Seeded storm of start/pause/resume/stop/advance. After every step the
  // walk must be ascending and active_sessions() must equal a reference
  // count kept in id order — if iteration order leaked into either, the
  // mirror would diverge.
  VodServer server(small_config(12));
  server.advance_slot();
  Rng rng(4242);
  std::map<VodServer::ClientId, bool> paused;  // live sessions -> paused?

  for (int step = 0; step < 400; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.35) {
      paused[server.start()] = false;
    } else if (roll < 0.5 && !paused.empty()) {
      auto it = paused.begin();
      std::advance(it, rng.uniform_index(paused.size()));
      if (it->second) {
        server.resume(it->first);
        it->second = false;
      } else {
        server.pause(it->first);
        it->second = true;
      }
    } else if (roll < 0.6 && !paused.empty()) {
      auto it = paused.begin();
      std::advance(it, rng.uniform_index(paused.size()));
      server.stop(it->first);
      paused.erase(it);
    } else {
      server.advance_slot();
      // Watching sessions can finish; drop them from the live mirror.
      for (auto it = paused.begin(); it != paused.end();) {
        const auto state = server.session(it->first).state;
        if (state == VodServer::SessionState::kFinished) {
          it = paused.erase(it);
        } else {
          ++it;
        }
      }
    }
    expect_ascending(server.session_ids());
    EXPECT_EQ(server.active_sessions(), static_cast<int>(paused.size()))
        << "step " << step;
  }

  // Every session the mirror still tracks is live and id-addressable.
  for (const auto& [id, is_paused] : paused) {
    const auto state = server.session(id).state;
    EXPECT_EQ(state, is_paused ? VodServer::SessionState::kPaused
                               : VodServer::SessionState::kWatching);
  }
}

TEST(VodServerOrder, PerSessionResultsIndependentOfOperationOrder) {
  // Two servers, same sessions, VCR ops issued in opposite orders within
  // each slot. Per-session outcomes (state, next_segment, playout_ok)
  // must be identical: the slot boundary, not op arrival order inside a
  // slot, is the only thing results may depend on.
  VodServer a(small_config(6));
  VodServer b(small_config(6));
  a.advance_slot();
  b.advance_slot();

  std::vector<VodServer::ClientId> ia, ib;
  for (int i = 0; i < 4; ++i) ia.push_back(a.start());
  for (int i = 0; i < 4; ++i) ib.push_back(b.start());

  a.pause(ia[1]);
  a.pause(ia[2]);
  b.pause(ib[2]);  // reversed
  b.pause(ib[1]);
  a.advance_slot();
  b.advance_slot();
  a.resume(ia[1]);
  a.resume(ia[2]);
  b.resume(ib[2]);  // reversed
  b.resume(ib[1]);
  for (int k = 0; k < 8; ++k) {
    a.advance_slot();
    b.advance_slot();
  }

  ASSERT_EQ(ia.size(), ib.size());
  for (size_t i = 0; i < ia.size(); ++i) {
    const auto& sa = a.session(ia[i]);
    const auto& sb = b.session(ib[i]);
    EXPECT_EQ(sa.state, sb.state) << "session " << i;
    EXPECT_EQ(sa.next_segment, sb.next_segment) << "session " << i;
    EXPECT_EQ(sa.playout_ok, sb.playout_ok) << "session " << i;
    EXPECT_EQ(sa.resumes, sb.resumes) << "session " << i;
  }
  EXPECT_EQ(a.session_ids(), b.session_ids());
}

}  // namespace
}  // namespace vod
