#include "core/heuristics.h"

#include <gtest/gtest.h>

namespace vod {
namespace {

// Builds a schedule with the given loads in slots 1..loads.size().
SlotSchedule make_schedule(const std::vector<int>& loads) {
  SlotSchedule s(100, static_cast<int>(loads.size()));
  for (size_t i = 0; i < loads.size(); ++i) {
    for (int k = 0; k < loads[i]; ++k) {
      s.add_instance(static_cast<Segment>(k + 1),
                     static_cast<Slot>(i + 1));
    }
  }
  return s;
}

TEST(Heuristics, MinLoadLatestPicksEmptiestSlot) {
  SlotSchedule s = make_schedule({3, 1, 2, 4});
  EXPECT_EQ(choose_slot(SlotHeuristic::kMinLoadLatest, s, 1, 4, nullptr), 2);
}

TEST(Heuristics, MinLoadLatestBreaksTiesLate) {
  // Figure 6: "let k_max := max {k | m_k = m_min}".
  SlotSchedule s = make_schedule({1, 0, 2, 0, 3});
  EXPECT_EQ(choose_slot(SlotHeuristic::kMinLoadLatest, s, 1, 5, nullptr), 4);
}

TEST(Heuristics, MinLoadLatestUniformLoadsPicksLast) {
  SlotSchedule s = make_schedule({2, 2, 2});
  EXPECT_EQ(choose_slot(SlotHeuristic::kMinLoadLatest, s, 1, 3, nullptr), 3);
}

TEST(Heuristics, MinLoadEarliestBreaksTiesEarly) {
  SlotSchedule s = make_schedule({1, 0, 2, 0, 3});
  EXPECT_EQ(choose_slot(SlotHeuristic::kMinLoadEarliest, s, 1, 5, nullptr), 2);
}

TEST(Heuristics, LatestIgnoresLoads) {
  SlotSchedule s = make_schedule({0, 9, 9});
  EXPECT_EQ(choose_slot(SlotHeuristic::kLatest, s, 1, 3, nullptr), 3);
}

TEST(Heuristics, EarliestIgnoresLoads) {
  SlotSchedule s = make_schedule({9, 0, 0});
  EXPECT_EQ(choose_slot(SlotHeuristic::kEarliest, s, 1, 3, nullptr), 1);
}

TEST(Heuristics, RandomStaysInWindow) {
  SlotSchedule s = make_schedule({0, 0, 0, 0, 0});
  Rng rng(1);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 500; ++i) {
    const Slot c = choose_slot(SlotHeuristic::kRandom, s, 2, 4, &rng);
    EXPECT_GE(c, 2);
    EXPECT_LE(c, 4);
    hit_lo = hit_lo || c == 2;
    hit_hi = hit_hi || c == 4;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Heuristics, SingleSlotWindow) {
  SlotSchedule s = make_schedule({5, 5, 5});
  for (auto h : {SlotHeuristic::kMinLoadLatest, SlotHeuristic::kMinLoadEarliest,
                 SlotHeuristic::kLatest, SlotHeuristic::kEarliest}) {
    EXPECT_EQ(choose_slot(h, s, 2, 2, nullptr), 2) << to_string(h);
  }
}

TEST(Heuristics, Names) {
  EXPECT_EQ(to_string(SlotHeuristic::kMinLoadLatest), "min-load-latest");
  EXPECT_EQ(to_string(SlotHeuristic::kLatest), "latest");
  EXPECT_EQ(to_string(SlotHeuristic::kEarliest), "earliest");
  EXPECT_EQ(to_string(SlotHeuristic::kMinLoadEarliest), "min-load-earliest");
  EXPECT_EQ(to_string(SlotHeuristic::kRandom), "random");
}

}  // namespace
}  // namespace vod
