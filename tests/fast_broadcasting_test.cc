#include "protocols/fast_broadcasting.h"

#include <gtest/gtest.h>

namespace vod {
namespace {

// The paper's Figure 1: FB with three streams and seven segments.
TEST(FastBroadcasting, Figure1Layout) {
  const FbMapping fb(7);
  EXPECT_EQ(fb.streams(), 3);
  // First stream: S1 forever.
  for (Slot t = 1; t <= 8; ++t) EXPECT_EQ(fb.segment_at(0, t), 1);
  // Second stream: S2 S3 S2 S3 ...
  EXPECT_EQ(fb.segment_at(1, 1), 2);
  EXPECT_EQ(fb.segment_at(1, 2), 3);
  EXPECT_EQ(fb.segment_at(1, 3), 2);
  // Third stream: S4 S5 S6 S7 S4 ...
  EXPECT_EQ(fb.segment_at(2, 1), 4);
  EXPECT_EQ(fb.segment_at(2, 4), 7);
  EXPECT_EQ(fb.segment_at(2, 5), 4);
}

TEST(FastBroadcasting, CapacityIsPowersOfTwoMinusOne) {
  EXPECT_EQ(FbMapping::capacity(1), 1);
  EXPECT_EQ(FbMapping::capacity(2), 3);
  EXPECT_EQ(FbMapping::capacity(3), 7);
  EXPECT_EQ(FbMapping::capacity(7), 127);
  EXPECT_EQ(FbMapping::capacity(0), 0);
}

TEST(FastBroadcasting, StreamsForSegmentCounts) {
  EXPECT_EQ(FbMapping::streams_for(1), 1);
  EXPECT_EQ(FbMapping::streams_for(2), 2);
  EXPECT_EQ(FbMapping::streams_for(3), 2);
  EXPECT_EQ(FbMapping::streams_for(4), 3);
  EXPECT_EQ(FbMapping::streams_for(7), 3);
  EXPECT_EQ(FbMapping::streams_for(8), 4);
  // The paper's configuration: 99 segments need 7 FB streams.
  EXPECT_EQ(FbMapping::streams_for(99), 7);
}

TEST(FastBroadcasting, StreamOfSegment) {
  const FbMapping fb(99);
  EXPECT_EQ(fb.stream_of(1), 0);
  EXPECT_EQ(fb.stream_of(2), 1);
  EXPECT_EQ(fb.stream_of(3), 1);
  EXPECT_EQ(fb.stream_of(4), 2);
  EXPECT_EQ(fb.stream_of(63), 5);
  EXPECT_EQ(fb.stream_of(64), 6);
  EXPECT_EQ(fb.stream_of(99), 6);
}

TEST(FastBroadcasting, TruncatedLastStreamRotation) {
  const FbMapping fb(99);
  EXPECT_EQ(fb.streams(), 7);
  EXPECT_EQ(fb.rotation_length(0), 1);
  EXPECT_EQ(fb.rotation_length(5), 32);
  EXPECT_EQ(fb.rotation_length(6), 36);  // 64..99, not the full 64
}

class FbValidationTest : public ::testing::TestWithParam<int> {};

// The generalized mapping must satisfy the pinwheel property for any n.
TEST_P(FbValidationTest, MappingIsValid) {
  const FbMapping fb(GetParam());
  const MappingValidation v = validate_mapping(fb);
  EXPECT_TRUE(v.ok) << v.error;
}

// And clients must meet deadlines from any arrival slot.
TEST_P(FbValidationTest, FirstOccurrenceWithinDeadline) {
  const FbMapping fb(GetParam());
  for (Slot arrival : {0, 1, 5, 17}) {
    const std::vector<Slot> occ = first_occurrences(fb, arrival);
    for (Segment j = 1; j <= fb.num_segments(); ++j) {
      ASSERT_LE(occ[static_cast<size_t>(j)], arrival + j)
          << "S" << j << " arrival " << arrival;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SegmentCounts, FbValidationTest,
                         ::testing::Values(1, 2, 3, 4, 7, 15, 31, 45, 99, 127),
                         [](const auto& param_info) {
                           return "n" + std::to_string(param_info.param);
                         });

TEST(FastBroadcasting, CycleLengthCoversAllRotations) {
  const FbMapping fb(7);
  EXPECT_EQ(fb.cycle_length() % 1, 0);
  EXPECT_EQ(fb.cycle_length() % 2, 0);
  EXPECT_EQ(fb.cycle_length() % 4, 0);
}

}  // namespace
}  // namespace vod
