// The installable VOD_CHECK failure handler: tests can observe a failed
// check (by throwing out of the handler) without death tests, and removing
// the handler restores the abort default.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/dhb.h"
#include "schedule/slot_schedule.h"
#include "util/check.h"

namespace vod {
namespace {

struct CheckFired {
  std::string expr;
  std::string file;
  int line = 0;
  std::string msg;
};

CheckFired& last_fired() {
  static CheckFired fired;
  return fired;
}

[[noreturn]] void throwing_handler(const char* expr, const char* file,
                                   int line, const char* msg) {
  last_fired() = CheckFired{expr, file, line, msg};
  throw std::runtime_error(std::string("VOD_CHECK fired: ") + expr);
}

class ScopedThrowingHandler {
 public:
  ScopedThrowingHandler()
      : previous_(set_check_failure_handler(&throwing_handler)) {}
  ~ScopedThrowingHandler() { set_check_failure_handler(previous_); }

 private:
  CheckFailureHandler previous_;
};

TEST(CheckHandler, PassingCheckDoesNotInvokeHandler) {
  ScopedThrowingHandler scoped;
  last_fired() = {};
  VOD_CHECK(1 + 1 == 2);
  VOD_CHECK_MSG(true, "never evaluated");
  EXPECT_TRUE(last_fired().expr.empty());
}

TEST(CheckHandler, FailingCheckReachesHandler) {
  ScopedThrowingHandler scoped;
  EXPECT_THROW(VOD_CHECK(2 + 2 == 5), std::runtime_error);
  EXPECT_EQ(last_fired().expr, "2 + 2 == 5");
  EXPECT_NE(last_fired().file.find("check_handler_test"), std::string::npos);
  EXPECT_GT(last_fired().line, 0);
  EXPECT_EQ(last_fired().msg, "");
}

TEST(CheckHandler, MessageIsForwarded) {
  ScopedThrowingHandler scoped;
  EXPECT_THROW(VOD_CHECK_MSG(false, "the reason"), std::runtime_error);
  EXPECT_EQ(last_fired().msg, "the reason");
}

TEST(CheckHandler, LibraryChecksAreObservable) {
  ScopedThrowingHandler scoped;
  SlotSchedule s(4, 4);
  // add_instance rejects slots outside (now, now+window] via VOD_CHECK_MSG;
  // without the handler this would abort the test binary.
  EXPECT_THROW(s.add_instance(1, 99), std::runtime_error);
  EXPECT_EQ(last_fired().msg, "instance outside the scheduling window");
  // The schedule was not modified by the rejected call.
  EXPECT_EQ(s.total_scheduled(), 0);
}

TEST(CheckHandler, InvalidSchedulerConfigFailsTheCheckNotTheProcess) {
  // Regression: with num_segments = 0 the period vector is empty, and the
  // T[1] == 1 validation used to read t[0] before any size check ran —
  // undefined behaviour instead of a diagnostic. The guard now fires first.
  ScopedThrowingHandler scoped;
  DhbConfig config;
  config.num_segments = 0;
  EXPECT_THROW(DhbScheduler{config}, std::runtime_error);
  EXPECT_EQ(last_fired().msg, "need at least one segment");
}

TEST(CheckHandler, InstallReturnsPrevious) {
  CheckFailureHandler mine = &throwing_handler;
  CheckFailureHandler original = set_check_failure_handler(mine);
  EXPECT_EQ(original, nullptr);  // abort default has no handler installed
  EXPECT_EQ(set_check_failure_handler(nullptr), mine);
}

}  // namespace
}  // namespace vod
