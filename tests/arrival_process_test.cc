#include "sim/arrival_process.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace vod {
namespace {

TEST(PoissonProcess, StrictlyIncreasing) {
  PoissonProcess p(1.0, Rng(1));
  double last = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double t = p.next();
    EXPECT_GT(t, last);
    last = t;
  }
}

TEST(PoissonProcess, MeanInterArrival) {
  PoissonProcess p(4.0, Rng(2));
  const int n = 100000;
  double last = 0.0, sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double t = p.next();
    sum += t - last;
    last = t;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.005);
}

TEST(PoissonProcess, CountInWindowIsPoisson) {
  // Count arrivals in [0, 100) at rate 0.5: mean 50, stddev ~7.
  PoissonProcess p(0.5, Rng(3));
  int count = 0;
  while (p.next() < 100.0) ++count;
  EXPECT_GT(count, 20);
  EXPECT_LT(count, 90);
}

TEST(PoissonProcess, DeterministicPerSeed) {
  PoissonProcess a(1.0, Rng(7)), b(1.0, Rng(7));
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.next(), b.next());
}

TEST(PerHour, Conversion) {
  EXPECT_DOUBLE_EQ(per_hour(3600.0), 1.0);
  EXPECT_DOUBLE_EQ(per_hour(10.0), 10.0 / 3600.0);
}

TEST(NonHomogeneousPoisson, ConstantRateMatchesHomogeneous) {
  NonHomogeneousPoissonProcess p([](double) { return 2.0; }, 2.0, Rng(11));
  const int n = 50000;
  double last = 0.0, sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double t = p.next();
    EXPECT_GT(t, last);
    sum += t - last;
    last = t;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(NonHomogeneousPoisson, ThinningRecoversRateShape) {
  // rate(t) = 2 for t in [0,100), 0.2 afterwards: the count ratio between
  // the two windows should be ~10.
  auto rate = [](double t) { return t < 100.0 ? 2.0 : 0.2; };
  NonHomogeneousPoissonProcess p(rate, 2.0, Rng(13));
  int early = 0, late = 0;
  for (;;) {
    const double t = p.next();
    if (t >= 1100.0) break;
    if (t < 100.0) {
      ++early;
    } else {
      ++late;
    }
  }
  EXPECT_NEAR(early, 200, 60);
  EXPECT_NEAR(late, 200, 60);
}

TEST(NonHomogeneousPoisson, ZeroRatePrefixProducesNoArrivals) {
  // rate is zero before t = 50, positive afterwards: the first arrival must
  // land after 50.
  auto rate = [](double t) { return t > 50.0 ? 1.0 : 0.0; };
  NonHomogeneousPoissonProcess p(rate, 1.0, Rng(17));
  for (int i = 0; i < 20; ++i) EXPECT_GT(p.next(), 50.0);
}

TEST(ScriptedArrivals, ReplaysExactly) {
  ScriptedArrivals s({1.0, 2.5, 7.0});
  EXPECT_DOUBLE_EQ(s.next(), 1.0);
  EXPECT_DOUBLE_EQ(s.next(), 2.5);
  EXPECT_DOUBLE_EQ(s.next(), 7.0);
  EXPECT_TRUE(std::isinf(s.next()));
  EXPECT_TRUE(std::isinf(s.next()));
}

TEST(ScriptedArrivals, EmptyIsImmediatelyExhausted) {
  ScriptedArrivals s({});
  EXPECT_TRUE(std::isinf(s.next()));
}

TEST(PeriodicArrivals, FixedCadence) {
  PeriodicArrivals p(10.0, 5.0);
  EXPECT_DOUBLE_EQ(p.next(), 10.0);
  EXPECT_DOUBLE_EQ(p.next(), 15.0);
  EXPECT_DOUBLE_EQ(p.next(), 20.0);
}

TEST(DailyDemandCurve, PeaksInTheEvening) {
  auto curve = daily_demand_curve(1.0, 100.0);
  const double peak = curve(21.0 * 3600.0);   // 21:00
  const double trough = curve(9.0 * 3600.0);  // 09:00
  EXPECT_NEAR(peak, per_hour(100.0), 1e-9);
  EXPECT_NEAR(trough, per_hour(1.0), 1e-9);
}

TEST(DailyDemandCurve, WrapsEveryDay) {
  auto curve = daily_demand_curve(2.0, 50.0);
  const double day = 24.0 * 3600.0;
  EXPECT_NEAR(curve(5000.0), curve(5000.0 + 3.0 * day), 1e-9);
}

TEST(DailyDemandCurve, BoundedByEndpoints) {
  auto curve = daily_demand_curve(1.0, 10.0);
  for (int h = 0; h < 24; ++h) {
    const double r = curve(h * 3600.0);
    EXPECT_GE(r, per_hour(1.0) - 1e-12);
    EXPECT_LE(r, per_hour(10.0) + 1e-12);
  }
}

}  // namespace
}  // namespace vod
