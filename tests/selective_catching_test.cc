#include "protocols/selective_catching.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vod {
namespace {

SelectiveCatchingConfig quick(double rate) {
  SelectiveCatchingConfig c;
  c.requests_per_hour = rate;
  c.warmup_hours = 2.0;
  c.measured_hours = 150.0;
  return c;
}

TEST(SelectiveCatching, ClosedFormValues) {
  // k channels -> 2^k - 1 segments; catching costs lambda*d/2.
  const double lambda = 100.0 / 3600.0;
  const double b3 = selective_catching_expected_bandwidth(lambda, 7200.0, 3);
  EXPECT_NEAR(b3, 3.0 + lambda * (7200.0 / 7.0) / 2.0, 1e-9);
}

TEST(SelectiveCatching, OptimalChannelsGrowLogarithmically) {
  const int k1 = selective_catching_optimal_channels(1.0 / 3600.0, 7200.0);
  const int k100 = selective_catching_optimal_channels(100.0 / 3600.0, 7200.0);
  const int k10000 =
      selective_catching_optimal_channels(10000.0 / 3600.0, 7200.0);
  EXPECT_LE(k1, k100);
  EXPECT_LE(k100, k10000);
  // Two orders of magnitude in rate add only a handful of channels.
  EXPECT_LE(k10000 - k100, 8);
  EXPECT_GE(k100, 4);
}

class ScClosedFormTest : public ::testing::TestWithParam<double> {};

TEST_P(ScClosedFormTest, SimulationMatchesClosedForm) {
  const double rate = GetParam();
  SelectiveCatchingConfig c = quick(rate);
  if (rate < 5.0) c.measured_hours = 500.0;
  const SelectiveCatchingResult r = run_selective_catching_simulation(c);
  const double expected = selective_catching_expected_bandwidth(
      per_hour(rate), c.video_duration_s, r.broadcast_channels);
  EXPECT_NEAR(r.avg_streams, expected, std::max(0.06, 0.04 * expected));
}

INSTANTIATE_TEST_SUITE_P(Rates, ScClosedFormTest,
                         ::testing::Values(1.0, 10.0, 100.0, 1000.0),
                         [](const auto& param_info) {
                           return "r" +
                                  std::to_string(static_cast<int>(param_info.param));
                         });

TEST(SelectiveCatching, LogClassGrowth) {
  // O(log(lambda*L)): bandwidth at 1000/h should be within a few streams
  // of bandwidth at 10/h, nothing like the reactive sqrt growth.
  const SelectiveCatchingResult lo =
      run_selective_catching_simulation(quick(10.0));
  const SelectiveCatchingResult hi =
      run_selective_catching_simulation(quick(1000.0));
  // Two decades of rate add ~2*log2(10) ~ 6.6 streams — nothing like the
  // reactive sqrt growth (patching: ~5.4 -> ~62 over the same span).
  EXPECT_LT(hi.avg_streams - lo.avg_streams, 8.0);
  EXPECT_GT(hi.avg_streams, lo.avg_streams);
}

TEST(SelectiveCatching, BroadcastFloorEvenWhenIdle) {
  // The dedicated channels broadcast regardless of demand — the exact
  // wastefulness §1 attributes to proactive protocols at low demand.
  SelectiveCatchingConfig c = quick(1.0);
  c.broadcast_channels = 5;
  c.warmup_hours = 0.0;
  c.measured_hours = 2.0;
  ScriptedArrivals arrivals({});
  const SelectiveCatchingResult r =
      run_selective_catching_simulation(c, arrivals);
  EXPECT_DOUBLE_EQ(r.avg_streams, 5.0);
  EXPECT_EQ(r.requests, 0u);
}

TEST(SelectiveCatching, CatchStreamBoundedBySlot) {
  SelectiveCatchingConfig c = quick(50.0);
  c.broadcast_channels = 4;
  const SelectiveCatchingResult r = run_selective_catching_simulation(c);
  // avg = 4 + lambda*d/2 exactly in expectation; max adds concurrent
  // catches but every catch lasts < d seconds.
  EXPECT_GT(r.avg_streams, 4.0);
  EXPECT_GE(r.max_streams, r.avg_streams);
}

TEST(SelectiveCatching, FixedChannelsRespected) {
  SelectiveCatchingConfig c = quick(100.0);
  c.broadcast_channels = 6;
  const SelectiveCatchingResult r = run_selective_catching_simulation(c);
  EXPECT_EQ(r.broadcast_channels, 6);
}

}  // namespace
}  // namespace vod
