#include "protocols/harmonic.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vod {
namespace {

TEST(Harmonic, KnownValues) {
  EXPECT_DOUBLE_EQ(harmonic_number(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic_number(1), 1.0);
  EXPECT_DOUBLE_EQ(harmonic_number(2), 1.5);
  EXPECT_NEAR(harmonic_number(4), 25.0 / 12.0, 1e-12);
  EXPECT_NEAR(harmonic_number(99), 5.1773, 1e-3);
}

TEST(Harmonic, AsymptoticLogGamma) {
  // H_n ~ ln n + gamma.
  const double gamma = 0.5772156649;
  EXPECT_NEAR(harmonic_number(100000), std::log(100000.0) + gamma, 1e-4);
}

TEST(Harmonic, BandwidthEqualsHarmonicNumber) {
  EXPECT_DOUBLE_EQ(harmonic_bandwidth(99), harmonic_number(99));
}

TEST(EvzBound, ZeroRateIsZero) {
  EXPECT_DOUBLE_EQ(evz_lower_bound(0.0, 7200.0), 0.0);
}

TEST(EvzBound, KnownPoint) {
  // lambda*D = 200 -> ln(201).
  EXPECT_NEAR(evz_lower_bound(100.0 / 3600.0, 7200.0), std::log(201.0), 1e-9);
}

TEST(EvzBound, MonotoneInRate) {
  double prev = 0.0;
  for (double per_hour : {1.0, 5.0, 50.0, 500.0}) {
    const double b = evz_lower_bound(per_hour / 3600.0, 7200.0);
    EXPECT_GT(b, prev);
    prev = b;
  }
}

TEST(EvzBound, DelayReducesBandwidth) {
  const double lambda = 100.0 / 3600.0;
  const double immediate = evz_lower_bound(lambda, 7200.0);
  const double delayed = evz_lower_bound_delayed(lambda, 7200.0, 73.0);
  EXPECT_LT(delayed, immediate);
  EXPECT_GT(delayed, 0.0);
}

TEST(EvzBound, ZeroDelayMatchesImmediate) {
  const double lambda = 10.0 / 3600.0;
  EXPECT_DOUBLE_EQ(evz_lower_bound_delayed(lambda, 7200.0, 0.0),
                   evz_lower_bound(lambda, 7200.0));
}

TEST(Polyharmonic, MEqualsOneIsHarmonic) {
  EXPECT_DOUBLE_EQ(polyharmonic_bandwidth(99, 1), harmonic_number(99));
}

TEST(Polyharmonic, LongerWaitLowersBandwidth) {
  double prev = polyharmonic_bandwidth(99, 1);
  for (int m : {2, 4, 8, 16}) {
    const double b = polyharmonic_bandwidth(99, m);
    EXPECT_LT(b, prev) << m;
    prev = b;
  }
}

TEST(Polyharmonic, KnownValue) {
  // n=3, m=2: 1/2 + 1/3 + 1/4 = 13/12.
  EXPECT_NEAR(polyharmonic_bandwidth(3, 2), 13.0 / 12.0, 1e-12);
}

TEST(Polyharmonic, ApproachesLogOfRatio) {
  // For large m, bandwidth ~ ln((n + m)/m).
  const double b = polyharmonic_bandwidth(1000, 500);
  EXPECT_NEAR(b, std::log(1500.0 / 500.0), 0.01);
}

}  // namespace
}  // namespace vod
