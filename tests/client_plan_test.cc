#include "schedule/client_plan.h"

#include <gtest/gtest.h>

namespace vod {
namespace {

// The paper's Figure 4: a request during slot 1 into an idle system gets
// S_i during slot 1 + i.
ClientPlan figure4_plan() {
  ClientPlan p;
  p.arrival_slot = 1;
  p.reception_slot = {2, 3, 4, 5, 6, 7};
  return p;
}

TEST(VerifyPlan, Figure4MeetsEverything) {
  const PlanDiagnostics d = verify_plan(figure4_plan());
  EXPECT_TRUE(d.deadlines_met);
  EXPECT_EQ(d.first_violation, 0);
  // One segment per slot, consumed as received: one stream, no backlog.
  EXPECT_EQ(d.max_concurrent_streams, 1);
  EXPECT_EQ(d.max_buffered_segments, 0);
}

// The paper's Figure 5 second request: arrives during slot 3, shares S3..S6
// (slots 4..7 from the first request), gets fresh S1 in slot 4, S2 in 5.
TEST(VerifyPlan, Figure5SecondRequest) {
  ClientPlan p;
  p.arrival_slot = 3;
  p.reception_slot = {4, 5, 6, 7, 8, 9};
  const PlanDiagnostics d = verify_plan(p);
  EXPECT_TRUE(d.deadlines_met);
  EXPECT_EQ(d.max_concurrent_streams, 1);
}

TEST(VerifyPlan, LateSegmentViolates) {
  ClientPlan p;
  p.arrival_slot = 0;
  p.reception_slot = {1, 3};  // S2 due by slot 2, received in slot 3
  const PlanDiagnostics d = verify_plan(p);
  EXPECT_FALSE(d.deadlines_met);
  EXPECT_EQ(d.first_violation, 2);
}

TEST(VerifyPlan, ReceptionInArrivalSlotViolates) {
  ClientPlan p;
  p.arrival_slot = 5;
  p.reception_slot = {5};  // S1 cannot use a transmission already under way
  EXPECT_FALSE(verify_plan(p).deadlines_met);
}

TEST(VerifyPlan, EarlyReceptionBuffersSegments) {
  ClientPlan p;
  p.arrival_slot = 0;
  p.reception_slot = {1, 1, 1};  // everything in the first slot
  const PlanDiagnostics d = verify_plan(p);
  EXPECT_TRUE(d.deadlines_met);
  EXPECT_EQ(d.max_concurrent_streams, 3);
  // After slot 1: received 3, consumed 1 -> 2 buffered.
  EXPECT_EQ(d.max_buffered_segments, 2);
}

TEST(VerifyPlan, CustomPeriodsTightenDeadlines) {
  ClientPlan p;
  p.arrival_slot = 0;
  p.reception_slot = {1, 2, 3};
  // T = {1, 1, 3}: segment 2 must now arrive by slot 1.
  const PlanDiagnostics d = verify_plan(p, {1, 1, 3});
  EXPECT_FALSE(d.deadlines_met);
  EXPECT_EQ(d.first_violation, 2);
}

TEST(VerifyPlan, CustomPeriodsRelaxDeadlines) {
  ClientPlan p;
  p.arrival_slot = 0;
  p.reception_slot = {1, 4, 4};
  // Work-ahead periods: segment 2 may wait until slot 4.
  const PlanDiagnostics d = verify_plan(p, {1, 4, 5});
  EXPECT_TRUE(d.deadlines_met);
}

TEST(VerifyPlan, ConcurrencyCountsPerSlot) {
  ClientPlan p;
  p.arrival_slot = 10;
  p.reception_slot = {11, 12, 12, 12, 15, 15};
  const PlanDiagnostics d = verify_plan(p);
  EXPECT_TRUE(d.deadlines_met);
  EXPECT_EQ(d.max_concurrent_streams, 3);
}

TEST(VerifyPlan, BufferPeaksMidway) {
  ClientPlan p;
  p.arrival_slot = 0;
  p.reception_slot = {1, 2, 2, 2, 5};
  const PlanDiagnostics d = verify_plan(p);
  // End of slot 2: received 4, consumed 2 -> buffer 2.
  EXPECT_EQ(d.max_buffered_segments, 2);
}

TEST(VerifyPlan, NonPositiveArrivalSupported) {
  ClientPlan p;
  p.arrival_slot = -3;
  p.reception_slot = {-2, -1};
  EXPECT_TRUE(verify_plan(p).deadlines_met);
}

}  // namespace
}  // namespace vod
