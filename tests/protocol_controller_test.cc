#include "core/protocol_controller.h"

#include <gtest/gtest.h>

#include <vector>

namespace vod {
namespace {

// The three-rung adaptive ladder shape with round-number thresholds.
ControllerConfig ladder(uint64_t dwell = 1) {
  ControllerConfig c;
  c.bands = {{/*up=*/1.0, /*down=*/0.5}, {/*up=*/10.0, /*down=*/5.0}};
  c.min_dwell_slots = dwell;
  c.initial_mode = 0;
  return c;
}

TEST(ProtocolController, StartsAtInitialMode) {
  ControllerConfig c = ladder();
  c.initial_mode = 1;
  ProtocolController p(c);
  EXPECT_EQ(p.mode(), 1);
  EXPECT_EQ(p.num_modes(), 3);
  EXPECT_EQ(p.switches(), 0u);
}

TEST(ProtocolController, SwitchesUpAtThresholdInclusive) {
  ProtocolController p(ladder());
  EXPECT_EQ(p.on_slot(0.999), 0);  // strictly below up: hold
  EXPECT_EQ(p.on_slot(1.0), 1);    // estimate >= up: move one rung
  EXPECT_EQ(p.switches(), 1u);
}

TEST(ProtocolController, SwitchesDownAtThresholdInclusive) {
  ControllerConfig c = ladder();
  c.initial_mode = 1;
  ProtocolController p(c);
  EXPECT_EQ(p.on_slot(0.501), 1);  // inside the band: hold
  EXPECT_EQ(p.on_slot(0.5), 0);    // estimate <= down: move back
}

TEST(ProtocolController, NoChatterInsideTheHysteresisBand) {
  // The failure mode hysteresis exists to prevent: an estimate oscillating
  // anywhere inside (down, up) must never cause a switch, at any dwell.
  ControllerConfig c = ladder(/*dwell=*/1);
  c.initial_mode = 1;
  ProtocolController p(c);
  for (int i = 0; i < 10000; ++i) {
    p.on_slot(i % 2 == 0 ? 0.51 : 0.99);  // hugs both edges, crosses neither
    EXPECT_EQ(p.mode(), 1);
  }
  EXPECT_EQ(p.switches(), 0u);
}

TEST(ProtocolController, DwellBoundsSwitchFrequency) {
  // An adversarial estimate pinned above every threshold still cannot move
  // the ladder faster than one rung per dwell period.
  ProtocolController p(ladder(/*dwell=*/10));
  std::vector<uint64_t> switch_slots;
  for (uint64_t slot = 1; slot <= 30; ++slot) {
    const int before = p.mode();
    p.on_slot(1e9);
    if (p.mode() != before) switch_slots.push_back(slot);
  }
  EXPECT_EQ(switch_slots, (std::vector<uint64_t>{10, 20}));
  EXPECT_EQ(p.mode(), 2);  // topped out, one rung per dwell
}

TEST(ProtocolController, OneRungPerDecisionEvenOnASpike) {
  // A spike crossing both boundaries at once climbs the ladder in two
  // decisions, deliberately.
  ProtocolController p(ladder(/*dwell=*/1));
  EXPECT_EQ(p.on_slot(1e6), 1);
  EXPECT_EQ(p.on_slot(1e6), 2);
  EXPECT_EQ(p.on_slot(1e6), 2);  // already at the top
  EXPECT_EQ(p.switches(), 2u);
}

TEST(ProtocolController, RoundTripUpAndDown) {
  ProtocolController p(ladder(/*dwell=*/1));
  p.on_slot(20.0);
  p.on_slot(20.0);
  EXPECT_EQ(p.mode(), 2);
  p.on_slot(0.0);
  p.on_slot(0.0);
  EXPECT_EQ(p.mode(), 0);
  EXPECT_EQ(p.switches(), 4u);
}

TEST(ProtocolController, PinnedLadderNeverSwitches) {
  // min_mode == max_mode is the bench's static-pin frontier mechanism: the
  // identical code path, decisions clamped to one rung.
  ControllerConfig c = ladder(/*dwell=*/1);
  c.initial_mode = 1;
  c.min_mode = 1;
  c.max_mode = 1;
  ProtocolController p(c);
  for (int i = 0; i < 100; ++i) {
    p.on_slot(i % 2 == 0 ? 0.0 : 1e9);
    EXPECT_EQ(p.mode(), 1);
  }
  EXPECT_EQ(p.switches(), 0u);
}

TEST(ProtocolController, ClampStopsAtMinAndMax) {
  ControllerConfig c = ladder(/*dwell=*/1);
  c.initial_mode = 1;
  c.min_mode = 1;
  c.max_mode = 2;
  ProtocolController p(c);
  p.on_slot(0.0);
  EXPECT_EQ(p.mode(), 1);  // floor holds
  p.on_slot(1e9);
  EXPECT_EQ(p.mode(), 2);  // ceiling reachable
}

TEST(ProtocolController, DwellCounterResetsOnSwitch) {
  ProtocolController p(ladder(/*dwell=*/3));
  p.on_slot(1e9);
  p.on_slot(1e9);
  EXPECT_EQ(p.dwell(), 2u);
  p.on_slot(1e9);  // third decision: switch commits
  EXPECT_EQ(p.mode(), 1);
  EXPECT_EQ(p.dwell(), 0u);
}

TEST(ProtocolController, DeterministicOverIdenticalEstimateSequences) {
  // Pure decision logic: the same estimate sequence must yield the same
  // mode trace — the property the sharded engine's bit-identity rests on.
  std::vector<double> estimates;
  for (int i = 0; i < 500; ++i) {
    estimates.push_back(static_cast<double>((i * 7919) % 23));
  }
  ProtocolController a(ladder(/*dwell=*/5));
  ProtocolController b(ladder(/*dwell=*/5));
  for (double e : estimates) EXPECT_EQ(a.on_slot(e), b.on_slot(e));
  EXPECT_EQ(a.switches(), b.switches());
}

TEST(ProtocolControllerDeath, RejectsMalformedConfigs) {
  ControllerConfig no_bands;
  no_bands.bands = {};
  EXPECT_DEATH(ProtocolController{no_bands}, "");

  ControllerConfig inverted = ladder();
  inverted.bands[0] = {/*up=*/0.5, /*down=*/0.5};  // down must be < up
  EXPECT_DEATH(ProtocolController{inverted}, "");

  ControllerConfig unordered = ladder();
  unordered.bands = {{10.0, 5.0}, {1.0, 0.5}};  // bands must ascend
  EXPECT_DEATH(ProtocolController{unordered}, "");

  ControllerConfig zero_dwell = ladder(0);
  EXPECT_DEATH(ProtocolController{zero_dwell}, "");

  ControllerConfig bad_initial = ladder();
  bad_initial.initial_mode = 7;
  EXPECT_DEATH(ProtocolController{bad_initial}, "");
}

}  // namespace
}  // namespace vod
