// Cross-protocol integration tests: miniature versions of the paper's
// Figures 7-9, checking the orderings and crossovers the paper reports
// rather than absolute values.
#include <gtest/gtest.h>

#include "core/dhb_simulator.h"
#include "protocols/dynamic_npb.h"
#include "protocols/harmonic.h"
#include "protocols/npb.h"
#include "protocols/patching.h"
#include "protocols/stream_tapping.h"
#include "protocols/ud.h"
#include "vbr/synthetic.h"
#include "vbr/variants.h"

namespace vod {
namespace {

SlottedSimConfig slotted(double rate) {
  SlottedSimConfig sim;
  sim.requests_per_hour = rate;
  sim.warmup_hours = 4.0;
  sim.measured_hours = 120.0;
  return sim;
}

TappingConfig reactive(double rate) {
  TappingConfig c;
  c.requests_per_hour = rate;
  c.warmup_hours = 4.0;
  c.measured_hours = 120.0;
  c.mode = TappingMode::kStreamTapping;
  return c;
}

// Figure 7's right side: above ~2 requests/hour DHB beats the reactive
// protocols, and it stays below NPB's 6 streams at every rate.
TEST(Figure7Shape, DhbBeatsStreamTappingAboveTwoPerHour) {
  for (double rate : {5.0, 20.0, 100.0}) {
    const SlottedSimResult dhb = run_dhb_simulation(DhbConfig{}, slotted(rate));
    const TappingResult st = run_tapping_simulation(reactive(rate));
    EXPECT_LT(dhb.avg_streams, st.avg_streams) << rate << "/h";
  }
}

TEST(Figure7Shape, StreamTappingCompetitiveAtOnePerHour) {
  // At the left edge the reactive protocol is at least in the same band as
  // DHB (the paper has it slightly ahead).
  const SlottedSimResult dhb = run_dhb_simulation(DhbConfig{}, slotted(1.0));
  const TappingResult st = run_tapping_simulation(reactive(1.0));
  EXPECT_LT(st.avg_streams, dhb.avg_streams * 1.25);
}

TEST(Figure7Shape, DhbAlwaysBelowNpb) {
  // "DHB had lower average bandwidth requirements than NPB at all request
  // arrival rates" — NPB with 99 segments runs at a constant 6 streams.
  ASSERT_EQ(NpbMapping::streams_for(99), 6);
  for (double rate : {1.0, 10.0, 100.0, 1000.0}) {
    const SlottedSimResult dhb = run_dhb_simulation(DhbConfig{}, slotted(rate));
    EXPECT_LT(dhb.avg_streams, 6.0) << rate << "/h";
  }
}

TEST(Figure7Shape, DhbBelowUdEverywhere) {
  for (double rate : {2.0, 20.0, 200.0}) {
    const SlottedSimResult dhb = run_dhb_simulation(DhbConfig{}, slotted(rate));
    const SlottedSimResult ud = run_ud_simulation(slotted(rate));
    EXPECT_LT(dhb.avg_streams, ud.avg_streams) << rate << "/h";
  }
}

TEST(Figure7Shape, UdSaturatesAboveNpbLevel) {
  // UD reverts to FB (7 streams) while NPB needs only 6: at high rates the
  // UD curve crosses above the NPB line, as Figure 7 shows.
  const SlottedSimResult ud = run_ud_simulation(slotted(1000.0));
  EXPECT_GT(ud.avg_streams, 6.0);
}

TEST(Figure7Shape, AllProtocolsConvergeAtVeryLowRates) {
  // Isolated requests cost one full video under every dynamic protocol.
  const double rate = 0.2;
  const double lambda_d = rate / 3600.0 * 7200.0;
  SlottedSimConfig sim = slotted(rate);
  sim.measured_hours = 400.0;
  const SlottedSimResult dhb = run_dhb_simulation(DhbConfig{}, sim);
  const SlottedSimResult ud = run_ud_simulation(sim);
  EXPECT_NEAR(dhb.avg_streams, lambda_d, 0.25 * lambda_d);
  EXPECT_NEAR(ud.avg_streams, lambda_d, 0.25 * lambda_d);
}

// Figure 8: NPB has the smallest maximum bandwidth, DHB the highest, and
// the DHB-NPB gap never exceeds two streams.
TEST(Figure8Shape, MaximumBandwidthOrdering) {
  for (double rate : {100.0, 1000.0}) {
    const SlottedSimResult dhb = run_dhb_simulation(DhbConfig{}, slotted(rate));
    const SlottedSimResult ud = run_ud_simulation(slotted(rate));
    EXPECT_GE(dhb.max_streams, 6.0) << rate;          // above NPB's constant
    EXPECT_LE(dhb.max_streams, 6.0 + 2.0) << rate;    // "never exceeds twice"
    EXPECT_LE(ud.max_streams, 7.0) << rate;           // FB ceiling
    EXPECT_GE(dhb.max_streams, ud.max_streams - 1.0) << rate;
  }
}

// §3's dynamic-NPB observation: it beats UD at high rates but lags at low
// rates relative to DHB.
TEST(DynamicNpbShape, MatchesSection3Narrative) {
  const NpbMapping mapping = *NpbMapping::build(6, 99);
  const SlottedSimResult dnpb_hi =
      run_dynamic_npb_simulation(mapping, slotted(500.0));
  const SlottedSimResult ud_hi = run_ud_simulation(slotted(500.0));
  EXPECT_LT(dnpb_hi.avg_streams, ud_hi.avg_streams);

  const SlottedSimResult dnpb_lo =
      run_dynamic_npb_simulation(mapping, slotted(20.0));
  const SlottedSimResult dhb_lo =
      run_dhb_simulation(DhbConfig{}, slotted(20.0));
  EXPECT_GT(dnpb_lo.avg_streams, dhb_lo.avg_streams);
}

// Figure 9: on the VBR video, every DHB variant needs less bandwidth than
// UD provisioned at the peak rate, and the variant ordering is
// a > b > c > d in MB/s at a busy rate.
TEST(Figure9Shape, VariantOrderingOnVbrVideo) {
  const VbrTrace trace = generate_synthetic_vbr(SyntheticVbrParams{});
  const VariantAnalysis va = analyze_variants(trace, 60.0);

  const double rate = 100.0;
  auto run_variant = [&](const DhbVariant& v) {
    SlottedSimConfig sim;
    sim.video.duration_s = v.slot_s * v.num_segments;
    sim.video.num_segments = v.num_segments;
    sim.requests_per_hour = rate;
    sim.warmup_hours = 4.0;
    sim.measured_hours = 80.0;
    const SlottedSimResult r = run_dhb_simulation(v.dhb_config(), sim);
    EXPECT_TRUE(r.playout_ok) << v.name;
    return r.avg_streams * v.stream_rate_kbs / 1000.0;  // MB/s
  };

  const double mbs_a = run_variant(va.a);
  const double mbs_b = run_variant(va.b);
  const double mbs_c = run_variant(va.c);
  const double mbs_d = run_variant(va.d);

  EXPECT_GT(mbs_a, mbs_b);
  EXPECT_GT(mbs_b, mbs_c);
  EXPECT_GE(mbs_c, mbs_d * 0.999);  // d <= c (frequency adjustment helps)

  // UD at peak-rate provisioning is worst of all (Figure 9's top curve).
  SlottedSimConfig ud_sim;
  ud_sim.video.duration_s = 8170.0;
  ud_sim.video.num_segments = 137;
  ud_sim.requests_per_hour = rate;
  ud_sim.warmup_hours = 4.0;
  ud_sim.measured_hours = 80.0;
  const SlottedSimResult ud = run_ud_simulation(ud_sim);
  const double mbs_ud = ud.avg_streams * va.peak_rate_kbs / 1000.0;
  EXPECT_GT(mbs_ud, mbs_a);
}

// Flash crowd: a premiere-style burst (idle -> 2000 req/h for half an hour
// -> idle). The min-load heuristic must keep the peak at the Figure 8
// level even under the step change, every plan staying deadline-correct.
TEST(FlashCrowd, BurstStaysWithinFigure8Peak) {
  auto burst = [](double t) {
    return (t >= 4.0 * 3600.0 && t < 4.5 * 3600.0) ? per_hour(2000.0)
                                                   : per_hour(1.0);
  };
  NonHomogeneousPoissonProcess arrivals(burst, per_hour(2000.0), Rng(99));
  SlottedSimConfig sim;
  sim.warmup_hours = 0.0;
  sim.measured_hours = 8.0;
  const SlottedSimResult r = run_dhb_simulation(DhbConfig{}, sim, arrivals);
  EXPECT_TRUE(r.playout_ok);
  EXPECT_LE(r.max_streams, 8.0);
  EXPECT_GT(r.requests, 500u);
}

// The same burst under the naive "latest" rule spikes harder — the §3
// design argument under a transient instead of steady state.
TEST(FlashCrowd, LatestHeuristicSpikesHigher) {
  auto make = [](SlotHeuristic h) {
    auto burst = [](double t) {
      return (t >= 4.0 * 3600.0 && t < 5.5 * 3600.0) ? per_hour(3000.0)
                                                     : per_hour(1.0);
    };
    NonHomogeneousPoissonProcess arrivals(burst, per_hour(3000.0), Rng(7));
    SlottedSimConfig sim;
    sim.warmup_hours = 0.0;
    sim.measured_hours = 8.0;
    DhbConfig dhb;
    dhb.heuristic = h;
    return run_dhb_simulation(dhb, sim, arrivals);
  };
  const SlottedSimResult paper = make(SlotHeuristic::kMinLoadLatest);
  const SlottedSimResult naive = make(SlotHeuristic::kLatest);
  EXPECT_GT(naive.max_streams, paper.max_streams);
}

// The merging idealization sits between the EVZ floor and DHB, confirming
// the §2 claim that HMSM-class protocols excel at low-to-medium rates but
// lose to broadcasting at saturation.
TEST(ReactiveLimits, MergingBeatsDhbAtLowRatesOnly) {
  TappingConfig merge_lo = reactive(5.0);
  merge_lo.mode = TappingMode::kIdealMerging;
  const TappingResult im_lo = run_tapping_simulation(merge_lo);
  const SlottedSimResult dhb_lo =
      run_dhb_simulation(DhbConfig{}, slotted(5.0));
  EXPECT_LT(im_lo.avg_streams, dhb_lo.avg_streams * 1.05);

  TappingConfig merge_hi = reactive(2000.0);
  merge_hi.mode = TappingMode::kIdealMerging;
  merge_hi.measured_hours = 40.0;
  const TappingResult im_hi = run_tapping_simulation(merge_hi);
  const SlottedSimResult dhb_hi =
      run_dhb_simulation(DhbConfig{}, slotted(2000.0));
  EXPECT_GT(im_hi.avg_streams, dhb_hi.avg_streams);
}

}  // namespace
}  // namespace vod
