#include "sim/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "sim/random.h"
#include "util/check.h"

namespace vod {
namespace {

[[noreturn]] void throwing_handler(const char* expr, const char*, int,
                                   const char*) {
  throw std::runtime_error(std::string("VOD_CHECK fired: ") + expr);
}

class ScopedThrowingHandler {
 public:
  ScopedThrowingHandler()
      : previous_(set_check_failure_handler(&throwing_handler)) {}
  ~ScopedThrowingHandler() { set_check_failure_handler(previous_); }

 private:
  CheckFailureHandler previous_;
};

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats s;
  const double base = 1e12;
  for (int i = 0; i < 1000; ++i) s.add(base + (i % 2));
  EXPECT_NEAR(s.mean(), base + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25, 0.01);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    all.add(v);
    (i < 400 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(RunningStats, MergeWithEmptyKeepsMinMax) {
  // Merging an empty accumulator must not let its +/-infinity sentinels
  // leak into min()/max() (min() reports 0.0 only while count() == 0).
  RunningStats a, b;
  a.add(-3.0);
  a.add(7.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.min(), -3.0);
  EXPECT_DOUBLE_EQ(a.max(), 7.0);
}

TEST(RunningStats, MinMaxAcrossDisjointMerges) {
  // Extremes live in different operands: the merged accumulator must take
  // min from one side and max from the other.
  RunningStats a, b;
  a.add(10.0);
  a.add(20.0);
  b.add(-5.0);
  b.add(15.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.min(), -5.0);
  EXPECT_DOUBLE_EQ(a.max(), 20.0);
}

TEST(RunningStats, MergeChainMatchesSequential) {
  // Shard-style folding (many partials merged in order) matches one
  // sequential pass — the pattern the engine's metric merge relies on.
  Rng rng(11);
  RunningStats all;
  RunningStats parts[4];
  for (int i = 0; i < 800; ++i) {
    const double v = rng.normal(0.0, 5.0);
    all.add(v);
    parts[i % 4].add(v);
  }
  RunningStats folded;
  for (const RunningStats& p : parts) folded.merge(p);
  EXPECT_EQ(folded.count(), all.count());
  EXPECT_NEAR(folded.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(folded.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(folded.min(), all.min());
  EXPECT_DOUBLE_EQ(folded.max(), all.max());
}

TEST(RunningStats, AddN) {
  RunningStats s;
  s.add_n(3.0, 4);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(TimeWeightedStats, PiecewiseConstantAverage) {
  TimeWeightedStats s(0.0);
  s.set(0.0, 1.0);   // 1 for [0, 2)
  s.set(2.0, 3.0);   // 3 for [2, 3)
  s.finish(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), (1.0 * 2.0 + 3.0 * 1.0) / 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.elapsed(), 3.0);
}

TEST(TimeWeightedStats, ValueBeforeFirstSetIgnored) {
  TimeWeightedStats s(0.0);
  s.set(5.0, 2.0);
  s.finish(10.0);
  // Signal defined only on [5, 10); its weighted sum is 10, span is 10.
  EXPECT_DOUBLE_EQ(s.mean(), 1.0);
}

TEST(TimeWeightedStats, ZeroSpan) {
  TimeWeightedStats s(1.0);
  s.finish(1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(TimeWeightedStats, NonMonotoneSetFiresCheck) {
  ScopedThrowingHandler scoped;
  TimeWeightedStats s(0.0);
  s.set(5.0, 1.0);
  EXPECT_THROW(s.set(4.0, 2.0), std::runtime_error);
  EXPECT_THROW(s.finish(1.0), std::runtime_error);
  // Equal timestamps are legal (a zero-length segment), and the
  // accumulator still works after the rejected updates.
  s.set(5.0, 3.0);
  s.finish(10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 1.5);  // 3.0 over [5, 10) of a 10-long span
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Histogram, CountsIntoBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(9.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bins()[0], 1u);
  EXPECT_EQ(h.bins()[5], 1u);
  EXPECT_EQ(h.bins()[9], 1u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(50.0);
  EXPECT_EQ(h.bins()[0], 1u);
  EXPECT_EQ(h.bins()[9], 1u);
}

TEST(Histogram, QuantileMedian) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(Histogram, EmptyQuantileIsLo) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  // Defined for every q, including both edges.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
}

TEST(Histogram, QuantileEdgeSemantics) {
  // Samples occupy bins [3,4) and [7,8) of a ten-bin histogram: q = 0
  // reports the first occupied bin's lower edge (not bin 0's), q = 1 the
  // last occupied bin's upper edge (not hi()).
  Histogram h(0.0, 10.0, 10);
  h.add(3.5);
  h.add(7.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 8.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.0);  // first bin reaching half mass
}

TEST(Histogram, AddNMatchesRepeatedAdd) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  a.add_n(4.5, 1000);
  for (int i = 0; i < 1000; ++i) b.add(4.5);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.bins(), b.bins());
}

TEST(Histogram, MergeAddsBins) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  a.add(1.5);
  b.add(1.5);
  b.add(8.5);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bins()[1], 2u);
  EXPECT_EQ(a.bins()[8], 1u);
}

TEST(Histogram, MergeRejectsMismatchedSpec) {
  ScopedThrowingHandler scoped;
  Histogram a(0.0, 10.0, 10);
  Histogram bad_range(0.0, 20.0, 10);
  Histogram bad_bins(0.0, 10.0, 20);
  EXPECT_THROW(a.merge(bad_range), std::runtime_error);
  EXPECT_THROW(a.merge(bad_bins), std::runtime_error);
}

}  // namespace
}  // namespace vod
