#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/dhb.h"
#include "util/check.h"

namespace vod {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::HistogramMetric;
using obs::MetricShard;
using obs::MetricsRegistry;

[[noreturn]] void throwing_handler(const char* expr, const char*, int,
                                   const char*) {
  throw std::runtime_error(std::string("VOD_CHECK fired: ") + expr);
}

class ScopedThrowingHandler {
 public:
  ScopedThrowingHandler()
      : previous_(set_check_failure_handler(&throwing_handler)) {}
  ~ScopedThrowingHandler() { set_check_failure_handler(previous_); }

 private:
  CheckFailureHandler previous_;
};

TEST(MetricShard, FindOrCreateReturnsStableHandles) {
  MetricShard shard;
  Counter* c = shard.counter("a_total");
  c->inc(3);
  EXPECT_EQ(shard.counter("a_total"), c);  // same node, not a new metric
  Gauge* g = shard.gauge("depth");
  g->set(2.5);
  EXPECT_EQ(shard.gauge("depth"), g);
  HistogramMetric* h = shard.histogram("lat", 0.0, 10.0, 10);
  h->observe(4.0);
  EXPECT_EQ(shard.histogram("lat", 0.0, 10.0, 10), h);
  EXPECT_EQ(shard.counter_value("a_total"), 3u);
}

TEST(MetricShard, LookupsOnAbsentNames) {
  const MetricShard shard;
  EXPECT_EQ(shard.find_counter("nope"), nullptr);
  EXPECT_EQ(shard.find_gauge("nope"), nullptr);
  EXPECT_EQ(shard.find_histogram("nope"), nullptr);
  EXPECT_EQ(shard.counter_value("nope"), 0u);
  EXPECT_TRUE(shard.empty());
}

TEST(MetricShard, HistogramSpecMismatchFires) {
  ScopedThrowingHandler scoped;
  MetricShard shard;
  shard.histogram("lat", 0.0, 10.0, 10);
  EXPECT_THROW(shard.histogram("lat", 0.0, 20.0, 10), std::runtime_error);
  EXPECT_THROW(shard.histogram("lat", 0.0, 10.0, 5), std::runtime_error);
}

TEST(MetricShard, MergeFromAddsEverything) {
  MetricShard a, b;
  a.counter("shared_total")->inc(2);
  b.counter("shared_total")->inc(5);
  b.counter("only_b_total")->inc(1);
  a.gauge("load")->set(1.5);
  b.gauge("load")->set(2.0);
  a.histogram("lat", 0.0, 4.0, 4)->observe(1.5);
  b.histogram("lat", 0.0, 4.0, 4)->observe(1.5);
  b.histogram("lat", 0.0, 4.0, 4)->observe(3.5);

  a.merge_from(b);
  EXPECT_EQ(a.counter_value("shared_total"), 7u);
  EXPECT_EQ(a.counter_value("only_b_total"), 1u);  // created on merge
  EXPECT_DOUBLE_EQ(a.find_gauge("load")->value(), 3.5);  // gauges sum
  const HistogramMetric* h = a.find_histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->histogram().bins()[1], 2u);
  EXPECT_EQ(h->histogram().bins()[3], 1u);
  EXPECT_DOUBLE_EQ(h->sum(), 6.5);
}

TEST(MetricsRegistry, MergedFoldsAllShards) {
  MetricsRegistry registry(3);
  for (size_t s = 0; s < 3; ++s) {
    registry.shard(s).counter("videos_total")->inc(s + 1);
    registry.shard(s).histogram("batch", 0.0, 8.0, 8)
        ->observe(static_cast<double>(s));
  }
  const MetricShard merged = registry.merged();
  EXPECT_EQ(merged.counter_value("videos_total"), 6u);
  EXPECT_EQ(merged.find_histogram("batch")->count(), 3u);
}

TEST(MetricsRegistry, PrepareGrowsAndKeepsHandles) {
  MetricsRegistry registry(1);
  Counter* c = registry.shard(0).counter("a_total");
  c->inc();
  registry.prepare(4);
  EXPECT_EQ(registry.num_shards(), 4u);
  EXPECT_EQ(registry.shard(0).counter("a_total"), c);  // still valid
  registry.prepare(2);  // never shrinks
  EXPECT_EQ(registry.num_shards(), 4u);
}

// The scheduler's lifetime counters live in its own MetricShard; the
// total_*() accessors are views over it and metrics() samples the
// schedule-layer structural meters on access.
TEST(DhbSchedulerMetrics, AccessorsAreRegistryViews) {
  DhbConfig config;
  config.num_segments = 20;
  DhbScheduler scheduler(config);
  for (int slot = 0; slot < 30; ++slot) {
    scheduler.advance_slot();
    scheduler.on_request_batch(2);
  }
  const obs::MetricShard& m = scheduler.metrics();
  EXPECT_EQ(m.counter_value("dhb_requests_total"),
            scheduler.total_requests());
  EXPECT_EQ(m.counter_value("dhb_work_units_total"),
            scheduler.total_work_units());
  EXPECT_EQ(m.counter_value("dhb_new_instances_total") +
                m.counter_value("dhb_shared_instances_total"),
            scheduler.total_new_instances() + scheduler.total_shared());
  EXPECT_GT(m.counter_value("schedule_instances_added_total"), 0u);
  // metrics() twice must not double-count the sampled schedule meters.
  const uint64_t once = m.counter_value("schedule_advances_total");
  EXPECT_EQ(scheduler.metrics().counter_value("schedule_advances_total"),
            once);

  MetricShard out;
  out.counter("dhb_requests_total")->inc(5);  // pre-existing content adds
  scheduler.export_metrics(&out);
  EXPECT_EQ(out.counter_value("dhb_requests_total"),
            scheduler.total_requests() + 5);
}

}  // namespace
}  // namespace vod
