#include "vbr/optimal_smoothing.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "vbr/smoothing.h"
#include "vbr/synthetic.h"
#include "vbr/trace.h"

namespace vod {
namespace {

VbrTrace cbr_trace(int seconds, double kbs) {
  return VbrTrace(std::vector<double>(static_cast<size_t>(seconds), kbs));
}

// The checked-in Matrix-like VBR trace (tests/data/matrix_trace.csv, the
// output of examples/compressed_video.cpp). Loaded through the CSV
// round-trip path so these tests also cover the persistence format; the
// ...MatchesGenerator test below pins the file to the synthetic generator
// it was produced by.
const VbrTrace& matrix_trace() {
  static const VbrTrace t = [] {
    VbrTrace loaded;
    const std::string path =
        std::string(VOD_TEST_DATA_DIR) + "/matrix_trace.csv";
    if (!VbrTrace::load_csv(path, &loaded)) {
      ADD_FAILURE() << "cannot load " << path;
      return generate_synthetic_vbr(SyntheticVbrParams{});
    }
    return loaded;
  }();
  return t;
}

TEST(OptimalSmoothing, MatrixTraceCsvMatchesGenerator) {
  const VbrTrace generated = generate_synthetic_vbr(SyntheticVbrParams{});
  ASSERT_EQ(matrix_trace().duration_s(), generated.duration_s());
  for (int s = 0; s < generated.duration_s(); ++s) {
    ASSERT_NEAR(matrix_trace().samples()[static_cast<size_t>(s)],
                generated.samples()[static_cast<size_t>(s)], 1e-6)
        << "second " << s;
  }
}

TEST(OptimalSmoothing, CbrIsOneSegment) {
  const VbrTrace t = cbr_trace(600, 500.0);
  const SmoothingPlan plan = optimal_smoothing_plan(t, 30000.0, 10.0);
  EXPECT_TRUE(verify_smoothing_plan(t, 30000.0, 10.0, plan));
  // A CBR video with a head-start smooths to (nearly) one constant rate
  // slightly below the consumption rate (the delay adds slack).
  EXPECT_LE(plan.rate_changes(), 2);
  EXPECT_LT(plan.peak_rate_kbs(), 500.0 + 1e-6);
  EXPECT_GT(plan.peak_rate_kbs(), 480.0);
}

TEST(OptimalSmoothing, PlanIsFeasibleOnVbrTrace) {
  for (double buffer_mb : {16.0, 64.0, 256.0}) {
    const SmoothingPlan plan =
        optimal_smoothing_plan(matrix_trace(), buffer_mb * 1000.0, 60.0);
    EXPECT_TRUE(
        verify_smoothing_plan(matrix_trace(), buffer_mb * 1000.0, 60.0, plan))
        << buffer_mb << " MB";
  }
}

TEST(OptimalSmoothing, PeakDecreasesWithBuffer) {
  double prev = 1e12;
  for (double buffer_mb : {8.0, 32.0, 128.0, 512.0}) {
    const SmoothingPlan plan =
        optimal_smoothing_plan(matrix_trace(), buffer_mb * 1000.0, 60.0);
    EXPECT_LE(plan.peak_rate_kbs(), prev + 1e-9) << buffer_mb;
    prev = plan.peak_rate_kbs();
  }
}

TEST(OptimalSmoothing, LargeBufferReachesPrefixBound) {
  // Even an unlimited buffer cannot transmit below the binding prefix of
  // the consumption curve (the demanding opening): the peak lands between
  // the whole-video average slope and the §4 constant work-ahead rate, and
  // the plan needs only a handful of rate changes.
  const SmoothingPlan plan =
      optimal_smoothing_plan(matrix_trace(), 1e9, 60.0);
  const double horizon = static_cast<double>(matrix_trace().duration_s()) + 60.0;
  EXPECT_GE(plan.peak_rate_kbs(), matrix_trace().total_kb() / horizon - 1e-6);
  EXPECT_LE(plan.peak_rate_kbs(),
            min_workahead_rate_kbs(matrix_trace(), 8170.0 / 137.0) + 1e-6);
  EXPECT_LE(plan.rate_changes(), 20);
}

TEST(OptimalSmoothing, TinyBufferTracksConsumption) {
  // A near-zero buffer forces the schedule to hug the consumption curve:
  // the peak approaches the trace's own peak.
  const SmoothingPlan plan =
      optimal_smoothing_plan(matrix_trace(), 2000.0, 60.0);
  EXPECT_GT(plan.peak_rate_kbs(), 0.85 * matrix_trace().peak_rate_kbs(1));
  EXPECT_TRUE(verify_smoothing_plan(matrix_trace(), 2000.0, 60.0, plan));
}

TEST(OptimalSmoothing, NeverBeatsConstantRateBound) {
  // The constant-rate work-ahead of smoothing.h solves the same problem
  // with an infinite buffer and slot-grained deadlines; the taut string
  // with a big buffer must come in at or below it.
  const double d = 8170.0 / 137.0;
  const double constant = min_workahead_rate_kbs(matrix_trace(), d);
  const SmoothingPlan plan =
      optimal_smoothing_plan(matrix_trace(), 1e9, d);
  EXPECT_LE(plan.peak_rate_kbs(), constant + 1e-6);
}

TEST(OptimalSmoothing, DeliversWholeVideoExactly) {
  const SmoothingPlan plan =
      optimal_smoothing_plan(matrix_trace(), 64000.0, 60.0);
  EXPECT_NEAR(plan.cumulative_kb(plan.end_s()), matrix_trace().total_kb(),
              1.0);
}

TEST(OptimalSmoothing, SegmentsAreContiguous) {
  const SmoothingPlan plan =
      optimal_smoothing_plan(matrix_trace(), 64000.0, 60.0);
  ASSERT_FALSE(plan.segments.empty());
  EXPECT_DOUBLE_EQ(plan.segments.front().start_s, 0.0);
  for (size_t i = 1; i < plan.segments.size(); ++i) {
    EXPECT_DOUBLE_EQ(plan.segments[i].start_s, plan.segments[i - 1].end_s);
  }
}

TEST(OptimalSmoothing, MoreBufferFewerOrEqualPeaks) {
  const SmoothingPlan small =
      optimal_smoothing_plan(matrix_trace(), 16000.0, 60.0);
  const SmoothingPlan big =
      optimal_smoothing_plan(matrix_trace(), 256000.0, 60.0);
  EXPECT_LT(big.peak_rate_kbs(), small.peak_rate_kbs());
}

TEST(OptimalSmoothingDeath, RejectsBadArguments) {
  const VbrTrace t = cbr_trace(60, 100.0);
  EXPECT_DEATH(optimal_smoothing_plan(t, 0.0, 10.0), "");
  EXPECT_DEATH(optimal_smoothing_plan(t, 1000.0, 0.5), "");
}

}  // namespace
}  // namespace vod
