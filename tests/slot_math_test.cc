// Unit tests for schedule/slot_math.h — the one approved home for modular
// slot arithmetic (enforced by the vod-raw-slot-modulo clang-tidy check).
// The cases concentrate on the seams the raw `%` idioms got wrong: the
// 1-based slot convention, cycle boundaries, and negative congruences
// (C++ `%` truncates toward zero).
#include "schedule/slot_math.h"

#include <gtest/gtest.h>

#include <numeric>

namespace vod {
namespace {

TEST(SlotMath, CyclePhaseNormalizesOneBasedSlots) {
  // slot 1 is phase 0, slot `cycle` is the last phase, slot cycle+1 wraps.
  EXPECT_EQ(cycle_phase(1, 4), 0);
  EXPECT_EQ(cycle_phase(2, 4), 1);
  EXPECT_EQ(cycle_phase(4, 4), 3);
  EXPECT_EQ(cycle_phase(5, 4), 0);
  EXPECT_EQ(cycle_phase(9, 4), 0);
}

TEST(SlotMath, CyclePhaseDegenerateCycle) {
  // A cycle of 1 repeats every slot: the phase is always 0.
  for (Slot s = 1; s <= 10; ++s) EXPECT_EQ(cycle_phase(s, 1), 0);
}

TEST(SlotMath, CyclePhaseIsPeriodic) {
  for (Slot cycle = 1; cycle <= 7; ++cycle) {
    for (Slot s = 1; s <= 50; ++s) {
      EXPECT_EQ(cycle_phase(s, cycle), cycle_phase(s + cycle, cycle))
          << "slot " << s << " cycle " << cycle;
      EXPECT_GE(cycle_phase(s, cycle), 0);
      EXPECT_LT(cycle_phase(s, cycle), cycle);
    }
  }
}

TEST(SlotMath, StrideHitsEnumeratesTheProgression) {
  // stride 3, offset 1: slots 2, 5, 8, ... (phase 1 of each 3-cycle).
  for (Slot s = 1; s <= 30; ++s) {
    EXPECT_EQ(stride_hits(s, 3, 1), (s - 2) % 3 == 0 && s >= 2)
        << "slot " << s;
  }
}

TEST(SlotMath, StrideHitsPartitionsSlotsAcrossOffsets) {
  // For a fixed stride, every slot hits exactly one offset.
  for (Slot stride = 1; stride <= 6; ++stride) {
    for (Slot s = 1; s <= 40; ++s) {
      int hits = 0;
      for (Slot offset = 0; offset < stride; ++offset) {
        hits += stride_hits(s, stride, offset) ? 1 : 0;
      }
      EXPECT_EQ(hits, 1) << "slot " << s << " stride " << stride;
    }
  }
}

TEST(SlotMath, StrideOneHitsEverySlot) {
  for (Slot s = 1; s <= 10; ++s) EXPECT_TRUE(stride_hits(s, 1, 0));
}

TEST(SlotMath, CongruentModBasic) {
  EXPECT_TRUE(congruent_mod(7, 3, 4));
  EXPECT_TRUE(congruent_mod(3, 7, 4));
  EXPECT_FALSE(congruent_mod(7, 4, 4));
  EXPECT_TRUE(congruent_mod(5, 5, 9));
  // Modulus 1: everything is congruent.
  EXPECT_TRUE(congruent_mod(2, 11, 1));
}

TEST(SlotMath, CongruentModHandlesNegativeDifferences) {
  // The raw-% trap: (a - b) % m is negative for a < b under C++'s
  // truncation, so a naive `== r` test with r > 0 silently fails.
  // Congruence itself (r == 0) must stay sign-safe.
  EXPECT_TRUE(congruent_mod(1, 10, 3));   // 1 - 10 = -9, divisible by 3
  EXPECT_FALSE(congruent_mod(1, 9, 3));   // -8 is not
  EXPECT_TRUE(congruent_mod(-4, 2, 3));   // -6 divisible by 3
  EXPECT_TRUE(congruent_mod(-4, -1, 3));  // -3 divisible by 3
  EXPECT_FALSE(congruent_mod(-4, 0, 3));
}

TEST(SlotMath, CongruentModMatchesOffsetCollisionRule) {
  // Two NPB progressions (stride_a, off_a) and (stride_b, off_b) share a
  // slot iff off_a ≡ off_b (mod gcd(stride_a, stride_b)) — verify the
  // congruence test against a brute-force slot walk.
  for (Slot sa = 1; sa <= 5; ++sa) {
    for (Slot sb = 1; sb <= 5; ++sb) {
      const Slot g = std::gcd(sa, sb);
      for (Slot oa = 0; oa < sa; ++oa) {
        for (Slot ob = 0; ob < sb; ++ob) {
          bool collide = false;
          for (Slot s = 1; s <= sa * sb; ++s) {
            if (stride_hits(s, sa, oa) && stride_hits(s, sb, ob)) {
              collide = true;
              break;
            }
          }
          EXPECT_EQ(congruent_mod(oa, ob, g), collide)
              << "strides " << sa << "," << sb << " offsets " << oa << ","
              << ob;
        }
      }
    }
  }
}

TEST(SlotMath, HelpersAreConstexpr) {
  static_assert(cycle_phase(7, 3) == 0);
  static_assert(stride_hits(7, 3, 0));
  static_assert(congruent_mod(-2, 4, 3));
  SUCCEED();
}

}  // namespace
}  // namespace vod
