#include "protocols/pyramid.h"

#include <gtest/gtest.h>

#include "protocols/fast_broadcasting.h"

namespace vod {
namespace {

TEST(Pyramid, SingleChannelIsWholeVideo) {
  // One channel: segment 1 is the whole video; wait = D.
  EXPECT_DOUBLE_EQ(pyramid_max_wait_s(1, 2.5, 7200.0), 7200.0);
}

TEST(Pyramid, GeometricLatencyDecay) {
  // alpha = 2.5: waits shrink ~2.5x per added channel.
  const double w3 = pyramid_max_wait_s(3, 2.5, 7200.0);
  const double w4 = pyramid_max_wait_s(4, 2.5, 7200.0);
  EXPECT_GT(w3 / w4, 2.0);
  EXPECT_LT(w3 / w4, 3.0);
}

TEST(Pyramid, KnownValue) {
  // alpha = 2, k = 3: D = d1 * 7 -> d1 = D/7 (matches FB's 3-channel
  // segment count, at twice the channel rate).
  EXPECT_NEAR(pyramid_max_wait_s(3, 2.0, 7200.0), 7200.0 / 7.0, 1e-9);
}

TEST(Pyramid, BandwidthIsChannelsTimesRate) {
  EXPECT_DOUBLE_EQ(pyramid_bandwidth(4, 2.5), 10.0);
}

TEST(Pyramid, ChannelsForWaitInvertsMaxWait) {
  const int k = pyramid_channels_for(73.0, 2.5, 7200.0);
  EXPECT_LE(pyramid_max_wait_s(k, 2.5, 7200.0), 73.0);
  EXPECT_GT(pyramid_max_wait_s(k - 1, 2.5, 7200.0), 73.0);
}

TEST(Pyramid, SuccessorsAreCheaperForTheSameWait) {
  // The §2 progression: for the paper's 73 s wait on a two-hour video, PB
  // at alpha = 2.5 spends more consumption-rate units than FB's unit-rate
  // channels (which NPB then improves again).
  const double pb = pyramid_bandwidth(
      pyramid_channels_for(73.0, 2.5, 7200.0), 2.5);
  const double fb = static_cast<double>(FbMapping::streams_for(99));
  EXPECT_GT(pb, fb);
}

TEST(PyramidDeath, RejectsBadArguments) {
  EXPECT_DEATH(pyramid_max_wait_s(0, 2.5, 7200.0), "");
  EXPECT_DEATH(pyramid_max_wait_s(3, 1.0, 7200.0), "");
  EXPECT_DEATH(pyramid_bandwidth(3, 0.5), "");
}

}  // namespace
}  // namespace vod
