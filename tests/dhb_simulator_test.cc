#include "core/dhb_simulator.h"

#include <gtest/gtest.h>

#include "protocols/harmonic.h"

namespace vod {
namespace {

SlottedSimConfig quick_sim(double rate) {
  SlottedSimConfig sim;
  sim.requests_per_hour = rate;
  sim.warmup_hours = 4.0;
  sim.measured_hours = 40.0;
  return sim;
}

TEST(DhbSimulator, PlayoutAlwaysVerifies) {
  for (double rate : {1.0, 20.0, 300.0}) {
    const SlottedSimResult r = run_dhb_simulation(DhbConfig{}, quick_sim(rate));
    EXPECT_TRUE(r.playout_ok) << rate << "/h";
    EXPECT_GT(r.requests, 0u);
  }
}

TEST(DhbSimulator, BandwidthIncreasesWithRate) {
  double prev = -1.0;
  for (double rate : {1.0, 5.0, 25.0, 125.0}) {
    const SlottedSimResult r = run_dhb_simulation(DhbConfig{}, quick_sim(rate));
    EXPECT_GT(r.avg_streams, prev) << rate << "/h";
    prev = r.avg_streams;
  }
}

TEST(DhbSimulator, LowRateCostsAboutLambdaD) {
  // Isolated requests cost a full video each; at 0.2/h overlaps are rare,
  // so average bandwidth ~ lambda * D = 0.4 streams.
  SlottedSimConfig sim = quick_sim(0.2);
  sim.measured_hours = 150.0;
  const SlottedSimResult r = run_dhb_simulation(DhbConfig{}, sim);
  EXPECT_NEAR(r.avg_streams, 0.4, 0.1);
}

TEST(DhbSimulator, SaturationNearHarmonic) {
  const SlottedSimResult r =
      run_dhb_simulation(DhbConfig{}, quick_sim(2000.0));
  const double h = harmonic_number(99);
  EXPECT_GT(r.avg_streams, h - 0.05);
  EXPECT_LT(r.avg_streams, h + 0.5);
}

TEST(DhbSimulator, SharedFractionGrowsWithRate) {
  const SlottedSimResult lo = run_dhb_simulation(DhbConfig{}, quick_sim(2.0));
  const SlottedSimResult hi =
      run_dhb_simulation(DhbConfig{}, quick_sim(500.0));
  EXPECT_LT(lo.shared_fraction, hi.shared_fraction);
  EXPECT_GT(hi.shared_fraction, 0.9);
  EXPECT_LT(hi.new_instances_per_request, lo.new_instances_per_request);
}

TEST(DhbSimulator, MaxAtLeastAverage) {
  const SlottedSimResult r = run_dhb_simulation(DhbConfig{}, quick_sim(50.0));
  EXPECT_GE(r.max_streams, r.avg_streams);
  EXPECT_LE(r.max_streams, 99.0);
}

TEST(DhbSimulator, WaitingTimeMatchesSlotGuarantee) {
  // "No customer will ever wait more than 1/99 of the duration of the
  // video, that is no more than 73 seconds" — and the mean is half a slot
  // under Poisson arrivals.
  const SlottedSimResult r = run_dhb_simulation(DhbConfig{}, quick_sim(60.0));
  const double d = 7200.0 / 99.0;
  EXPECT_LE(r.max_wait_s, d);
  EXPECT_GT(r.max_wait_s, 0.8 * d);  // some arrival lands near a boundary
  EXPECT_NEAR(r.avg_wait_s, d / 2.0, 0.08 * d);
}

TEST(DhbSimulator, ProvisioningQuantilesOrdered) {
  const SlottedSimResult r = run_dhb_simulation(DhbConfig{}, quick_sim(50.0));
  EXPECT_LE(r.avg_streams, r.p99_streams + 1.0);
  EXPECT_LE(r.p99_streams, r.p999_streams);
  EXPECT_LE(r.p999_streams, r.max_streams);
  EXPECT_GT(r.p99_streams, 0.0);
}

TEST(DhbSimulator, QuantilesBelowMaxAtSaturation) {
  // The heuristic keeps the tail tight: p99.9 should sit within one stream
  // of the Figure 8 maximum.
  const SlottedSimResult r =
      run_dhb_simulation(DhbConfig{}, quick_sim(1000.0));
  EXPECT_GE(r.p999_streams, r.max_streams - 1.5);
}

TEST(DhbSimulator, ConfidenceIntervalBracketssMean) {
  SlottedSimConfig sim = quick_sim(30.0);
  sim.measured_hours = 100.0;
  const SlottedSimResult r = run_dhb_simulation(DhbConfig{}, sim);
  EXPECT_GT(r.avg_ci.batches, 10u);
  EXPECT_LE(r.avg_ci.lo(), r.avg_streams);
  EXPECT_GE(r.avg_ci.hi(), r.avg_streams);
  EXPECT_LT(r.avg_ci.half_width, 0.5);
}

TEST(DhbSimulator, DeterministicForSeed) {
  const SlottedSimResult a = run_dhb_simulation(DhbConfig{}, quick_sim(10.0));
  const SlottedSimResult b = run_dhb_simulation(DhbConfig{}, quick_sim(10.0));
  EXPECT_DOUBLE_EQ(a.avg_streams, b.avg_streams);
  EXPECT_EQ(a.requests, b.requests);
}

TEST(DhbSimulator, SeedChangesRealization) {
  SlottedSimConfig sim = quick_sim(10.0);
  sim.seed = 1;
  const SlottedSimResult a = run_dhb_simulation(DhbConfig{}, sim);
  sim.seed = 2;
  const SlottedSimResult b = run_dhb_simulation(DhbConfig{}, sim);
  EXPECT_NE(a.requests, b.requests);
}

TEST(DhbSimulator, ScriptedArrivalsDriveExactRequestCount) {
  SlottedSimConfig sim;
  sim.video.num_segments = 10;
  sim.warmup_hours = 0.0;
  sim.measured_hours = 2.0;
  DhbConfig dhb;
  dhb.num_segments = 10;
  // Three requests inside the measured window.
  ScriptedArrivals arrivals({100.0, 800.0, 801.0});
  const SlottedSimResult r = run_dhb_simulation(dhb, sim, arrivals);
  EXPECT_EQ(r.requests, 3u);
  EXPECT_TRUE(r.playout_ok);
  EXPECT_GT(r.avg_streams, 0.0);
}

TEST(DhbSimulator, NoArrivalsMeansZeroBandwidth) {
  SlottedSimConfig sim;
  sim.warmup_hours = 0.0;
  sim.measured_hours = 1.0;
  ScriptedArrivals arrivals({});
  const SlottedSimResult r = run_dhb_simulation(DhbConfig{}, sim, arrivals);
  EXPECT_EQ(r.requests, 0u);
  EXPECT_DOUBLE_EQ(r.avg_streams, 0.0);
  EXPECT_DOUBLE_EQ(r.max_streams, 0.0);
}

TEST(DhbSimulator, ClientObservablesReported) {
  const SlottedSimResult r = run_dhb_simulation(DhbConfig{}, quick_sim(40.0));
  EXPECT_GE(r.max_client_streams, 1);
  EXPECT_GE(r.max_client_buffer_segments, 0);
  EXPECT_EQ(r.cap_violations, 0u);
}

TEST(DhbSimulatorDeath, SegmentCountMismatch) {
  SlottedSimConfig sim = quick_sim(1.0);
  DhbConfig dhb;
  dhb.num_segments = 50;  // sim.video still says 99
  EXPECT_DEATH(run_dhb_simulation(dhb, sim), "");
}

}  // namespace
}  // namespace vod
