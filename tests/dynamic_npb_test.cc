#include "protocols/dynamic_npb.h"

#include <gtest/gtest.h>

#include "protocols/ud.h"

namespace vod {
namespace {

SlottedSimConfig quick_sim(double rate) {
  SlottedSimConfig sim;
  sim.requests_per_hour = rate;
  sim.warmup_hours = 4.0;
  sim.measured_hours = 100.0;
  return sim;
}

const NpbMapping& paper_mapping() {
  static const NpbMapping m = *NpbMapping::build(6, 99);
  return m;
}

TEST(DynamicNpb, NeverExceedsNpbStreams) {
  for (double rate : {1.0, 30.0, 1000.0}) {
    const SlottedSimResult r =
        run_dynamic_npb_simulation(paper_mapping(), quick_sim(rate));
    EXPECT_LE(r.max_streams, 6.0) << rate;
    EXPECT_LE(r.avg_streams, 6.0) << rate;
  }
}

TEST(DynamicNpb, SaturatesToFullMapping) {
  const SlottedSimResult r =
      run_dynamic_npb_simulation(paper_mapping(), quick_sim(3000.0));
  // At saturation every scheduled transmission is needed. The packer may
  // leave a few idle cells, so the average sits just below 6.
  EXPECT_GT(r.avg_streams, 5.0);
  EXPECT_LE(r.avg_streams, 6.0);
}

TEST(DynamicNpb, LowRateCostsAboutLambdaD) {
  SlottedSimConfig sim = quick_sim(0.2);
  sim.measured_hours = 300.0;
  const SlottedSimResult r =
      run_dynamic_npb_simulation(paper_mapping(), sim);
  EXPECT_NEAR(r.avg_streams, 0.4, 0.12);
}

TEST(DynamicNpb, NoArrivalsNoBandwidth) {
  SlottedSimConfig sim;
  sim.warmup_hours = 0.0;
  sim.measured_hours = 1.0;
  ScriptedArrivals arrivals({});
  const SlottedSimResult r =
      run_dynamic_npb_simulation(paper_mapping(), sim, arrivals);
  EXPECT_DOUBLE_EQ(r.avg_streams, 0.0);
}

TEST(DynamicNpb, SingleRequestCostsOneVideo) {
  // One isolated request triggers exactly one transmission per segment.
  SlottedSimConfig sim;
  sim.warmup_hours = 0.0;
  sim.measured_hours = 5.0;
  ScriptedArrivals arrivals({10.0});
  const SlottedSimResult r =
      run_dynamic_npb_simulation(paper_mapping(), sim, arrivals);
  const double d = sim.video.slot_duration_s();
  const double busy_slots = r.avg_streams * sim.measured_hours * 3600.0 / d;
  EXPECT_NEAR(busy_slots, 99.0, 1.5);
}

TEST(DynamicNpb, BeatsUdAtHighRates) {
  // §3: the dynamic NPB variant "bested the UD protocol at moderate to
  // high access rates because its bandwidth requirements never exceeded
  // those of NPB" (UD saturates at FB's 7 streams, dNPB at 6).
  const SlottedSimResult dnpb =
      run_dynamic_npb_simulation(paper_mapping(), quick_sim(500.0));
  const SlottedSimResult ud = run_ud_simulation(quick_sim(500.0));
  EXPECT_LT(dnpb.avg_streams, ud.avg_streams);
}

TEST(DynamicNpb, DeterministicForSeed) {
  const SlottedSimResult a =
      run_dynamic_npb_simulation(paper_mapping(), quick_sim(10.0));
  const SlottedSimResult b =
      run_dynamic_npb_simulation(paper_mapping(), quick_sim(10.0));
  EXPECT_DOUBLE_EQ(a.avg_streams, b.avg_streams);
}

}  // namespace
}  // namespace vod
