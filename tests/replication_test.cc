// Replication robustness: the figure-level conclusions must hold for every
// seed, not just the benchmark's fixed one, and independent replications
// must agree within their confidence intervals.
#include <gtest/gtest.h>

#include "core/dhb_simulator.h"
#include "protocols/ud.h"
#include "sim/stats.h"

namespace vod {
namespace {

SlottedSimConfig sim_for(double rate, uint64_t seed) {
  SlottedSimConfig sim;
  sim.requests_per_hour = rate;
  sim.warmup_hours = 4.0;
  sim.measured_hours = 60.0;
  sim.seed = seed;
  return sim;
}

TEST(Replication, DhbBelowUdForEverySeed) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const SlottedSimResult dhb =
        run_dhb_simulation(DhbConfig{}, sim_for(20.0, seed));
    const SlottedSimResult ud = run_ud_simulation(sim_for(20.0, seed));
    EXPECT_LT(dhb.avg_streams, ud.avg_streams) << "seed " << seed;
  }
}

TEST(Replication, DhbBelowNpbLevelForEverySeed) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const SlottedSimResult r =
        run_dhb_simulation(DhbConfig{}, sim_for(300.0, seed));
    EXPECT_LT(r.avg_streams, 6.0) << "seed " << seed;
    EXPECT_LE(r.max_streams, 8.0) << "seed " << seed;
  }
}

TEST(Replication, SeedVarianceIsSmall) {
  RunningStats across;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    across.add(
        run_dhb_simulation(DhbConfig{}, sim_for(50.0, seed)).avg_streams);
  }
  // Sixty measured hours per replication: the across-seed spread should be
  // a couple of percent of the mean.
  EXPECT_LT(across.stddev() / across.mean(), 0.05);
}

TEST(Replication, BatchMeansCiCoversIndependentReplications) {
  // The CI reported by one long run should be consistent with the
  // across-seed mean: the grand mean of 8 replications must fall inside
  // (or very near) each run's 95% interval most of the time.
  std::vector<SlottedSimResult> runs;
  RunningStats grand;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    runs.push_back(run_dhb_simulation(DhbConfig{}, sim_for(50.0, seed)));
    grand.add(runs.back().avg_streams);
  }
  int covered = 0;
  for (const SlottedSimResult& r : runs) {
    if (grand.mean() >= r.avg_ci.lo() - 0.05 &&
        grand.mean() <= r.avg_ci.hi() + 0.05) {
      ++covered;
    }
  }
  EXPECT_GE(covered, 6);  // 95% nominal, slack for batch correlation
}

}  // namespace
}  // namespace vod
