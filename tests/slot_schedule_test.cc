#include "schedule/slot_schedule.h"

#include <span>

#include <gtest/gtest.h>

namespace vod {
namespace {

TEST(SlotSchedule, StartsEmptyAtSlotZero) {
  SlotSchedule s(10, 10);
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.total_scheduled(), 0);
  for (Slot t = 1; t <= 10; ++t) EXPECT_EQ(s.load(t), 0);
}

TEST(SlotSchedule, AddInstanceUpdatesLoadAndIndex) {
  SlotSchedule s(5, 5);
  s.add_instance(3, 2);
  EXPECT_EQ(s.load(2), 1);
  EXPECT_EQ(s.total_scheduled(), 1);
  EXPECT_TRUE(s.has_future_instance(3));
  EXPECT_FALSE(s.has_future_instance(2));
  ASSERT_EQ(s.instances_of(3).size(), 1u);
  EXPECT_EQ(s.instances_of(3)[0], 2);
}

TEST(SlotSchedule, FindInstanceRespectsRange) {
  SlotSchedule s(5, 5);
  s.add_instance(2, 3);
  EXPECT_EQ(s.find_instance(2, 1, 5).value(), 3);
  EXPECT_EQ(s.find_instance(2, 3, 3).value(), 3);
  EXPECT_FALSE(s.find_instance(2, 4, 5).has_value());
  EXPECT_FALSE(s.find_instance(2, 1, 2).has_value());
  EXPECT_FALSE(s.find_instance(1, 1, 5).has_value());
}

TEST(SlotSchedule, FindInstanceReturnsLatest) {
  SlotSchedule s(5, 10);
  s.add_instance(2, 3);
  s.add_instance(2, 7);
  EXPECT_EQ(s.find_instance(2, 1, 10).value(), 7);
  EXPECT_EQ(s.find_instance(2, 1, 5).value(), 3);
}

TEST(SlotSchedule, AdvanceReturnsSlotContents) {
  SlotSchedule s(5, 5);
  s.add_instance(1, 1);
  s.add_instance(4, 1);
  s.add_instance(2, 2);
  const std::span<const Segment> slot1 = s.advance();
  EXPECT_EQ(s.now(), 1);
  ASSERT_EQ(slot1.size(), 2u);
  EXPECT_EQ(slot1[0], 1);
  EXPECT_EQ(slot1[1], 4);
  EXPECT_EQ(s.total_scheduled(), 1);
  const std::span<const Segment> slot2 = s.advance();
  ASSERT_EQ(slot2.size(), 1u);
  EXPECT_EQ(slot2[0], 2);
  EXPECT_TRUE(s.advance().empty());
}

TEST(SlotSchedule, AdvanceClearsPerSegmentIndex) {
  SlotSchedule s(5, 5);
  s.add_instance(3, 1);
  s.advance();
  EXPECT_FALSE(s.has_future_instance(3));
  EXPECT_TRUE(s.instances_of(3).empty());
}

TEST(SlotSchedule, RingReuseAfterManyAdvances) {
  SlotSchedule s(4, 4);
  for (int round = 0; round < 50; ++round) {
    s.add_instance(1, s.now() + 1);
    s.add_instance(4, s.now() + 4);
    const auto got = s.advance();
    if (round < 3) {
      // Only the S1 scheduled one round earlier; the first S4 lands in
      // slot 4.
      ASSERT_EQ(got.size(), 1u);
      EXPECT_EQ(got[0], 1);
    } else {
      // S1 scheduled last round plus the S4 scheduled 4 rounds ago.
      ASSERT_EQ(got.size(), 2u);
    }
  }
}

TEST(SlotSchedule, MultipleInstancesOfSameSegmentSorted) {
  SlotSchedule s(5, 10);
  s.add_instance(2, 7);
  s.add_instance(2, 3);
  s.add_instance(2, 9);
  const std::span<const Slot> v = s.instances_of(2);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 3);
  EXPECT_EQ(v[1], 7);
  EXPECT_EQ(v[2], 9);
}

TEST(SlotSchedule, LoadsAccumulate) {
  SlotSchedule s(5, 5);
  s.add_instance(1, 2);
  s.add_instance(2, 2);
  s.add_instance(3, 2);
  EXPECT_EQ(s.load(2), 3);
  s.advance();
  EXPECT_EQ(s.load(2), 3);  // still in the future
  s.advance();
  EXPECT_EQ(s.total_scheduled(), 0);
}

TEST(SlotScheduleDeath, RejectsOutOfWindow) {
  SlotSchedule s(5, 5);
  EXPECT_DEATH(s.add_instance(1, 0), "window");
  EXPECT_DEATH(s.add_instance(1, 6), "window");
  EXPECT_DEATH(s.add_instance(0, 2), "");
  EXPECT_DEATH(s.add_instance(6, 2), "");
}

}  // namespace
}  // namespace vod
