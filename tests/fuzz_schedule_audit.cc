// Differential fuzz driver for the scheduling core.
//
// Replays randomized traces of mixed admissions (on_request, on_resume,
// on_range, on_request_bounded) and slot advances against DhbScheduler,
// across slot heuristics and period vectors, and after EVERY operation:
//   * deep-audits the scheduler with ScheduleAuditor (sharing, containment,
//     load/index consistency, clock, counter conservation, live plans);
//   * diffs the transmitted schedule — and each admitted client's
//     reception plan — against a brute-force oracle that re-derives the
//     Figure 6 algorithm (generalized to ranges, heuristics, and bounded
//     admission) on naive data structures.
//
// The acceptance bar (ISSUE 1): >= 10k audited steps, >= 3 heuristics,
// >= 2 period vectors, zero violations, zero divergences.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "analysis/schedule_auditor.h"
#include "core/dhb.h"
#include "core/heuristics.h"
#include "sim/random.h"

namespace vod {
namespace {

// The Figure 6 algorithm on a plain map, generalized the same way the
// production scheduler is: clamped windows for mid-video joins, pluggable
// deterministic slot heuristics, and two-phase channel-bounded admission.
class NaiveOracle {
 public:
  NaiveOracle(int n, std::vector<int> periods, SlotHeuristic heuristic)
      : n_(n), periods_(std::move(periods)), heuristic_(heuristic) {
    if (periods_.empty()) {
      for (int j = 1; j <= n_; ++j) periods_.push_back(j);
    }
  }

  // Admits segments first..last; returns the chosen reception slot per
  // segment (index 0 = `first`).
  std::vector<Slot> admit_range(Segment first, Segment last) {
    std::vector<Slot> receptions;
    for (Segment j = first; j <= last; ++j) {
      const Slot lo = now_ + 1;
      const Slot hi = now_ + period_for(j, first);
      Slot chosen = find_shared(j, lo, hi);
      if (chosen == 0) {
        chosen = pick(lo, hi, [this](Slot s) { return load(s); });
        slots_[chosen].push_back(j);
      }
      receptions.push_back(chosen);
    }
    return receptions;
  }

  // Mirrors DhbScheduler::on_request_bounded: all-or-nothing admission
  // under a hard per-slot stream budget, min-load-latest over under-cap
  // slots, counting this request's own tentative placements.
  std::optional<std::vector<Slot>> admit_bounded(int cap) {
    std::map<Slot, int> added;
    std::vector<std::pair<Segment, Slot>> placements;
    std::vector<Slot> receptions;
    for (Segment j = 1; j <= n_; ++j) {
      const Slot lo = now_ + 1;
      const Slot hi = now_ + periods_[static_cast<size_t>(j - 1)];
      Slot chosen = find_shared(j, lo, hi);
      if (chosen == 0) {
        int best_load = cap;
        for (Slot s = hi; s >= lo; --s) {
          const int m = load(s) + added[s];
          if (m < best_load) {
            best_load = m;
            chosen = s;
          }
        }
        if (chosen == 0) return std::nullopt;  // no mutation happened
        ++added[chosen];
        placements.push_back({j, chosen});
      }
      receptions.push_back(chosen);
    }
    for (const auto& [segment, slot] : placements) {
      slots_[slot].push_back(segment);
    }
    return receptions;
  }

  std::vector<Segment> advance() {
    ++now_;
    std::vector<Segment> out = slots_[now_];
    slots_.erase(now_);
    return out;
  }

 private:
  int period_for(Segment j, Segment first) const {
    const int t = periods_[static_cast<size_t>(j - 1)];
    return first == 1 ? t : std::min(t, static_cast<int>(j - first + 1));
  }

  int load(Slot s) const {
    const auto it = slots_.find(s);
    return it == slots_.end() ? 0 : static_cast<int>(it->second.size());
  }

  // Latest already-scheduled instance of j in [lo, hi], 0 when none — the
  // same sharing rule SlotSchedule::find_instance implements.
  Slot find_shared(Segment j, Slot lo, Slot hi) const {
    for (Slot s = hi; s >= lo; --s) {
      const auto it = slots_.find(s);
      if (it == slots_.end()) continue;
      if (std::find(it->second.begin(), it->second.end(), j) !=
          it->second.end()) {
        return s;
      }
    }
    return 0;
  }

  template <typename LoadFn>
  Slot pick(Slot lo, Slot hi, LoadFn load_at) const {
    switch (heuristic_) {
      case SlotHeuristic::kLatest:
        return hi;
      case SlotHeuristic::kEarliest:
        return lo;
      case SlotHeuristic::kMinLoadLatest:
      case SlotHeuristic::kMinLoadEarliest: {
        int m_min = load_at(lo);
        for (Slot s = lo; s <= hi; ++s) m_min = std::min(m_min, load_at(s));
        if (heuristic_ == SlotHeuristic::kMinLoadEarliest) {
          for (Slot s = lo; s <= hi; ++s) {
            if (load_at(s) == m_min) return s;
          }
        }
        for (Slot s = hi; s >= lo; --s) {
          if (load_at(s) == m_min) return s;
        }
        return lo;
      }
      case SlotHeuristic::kRandom:
        break;  // not differential-testable (independent rng streams)
    }
    ADD_FAILURE() << "oracle cannot mirror heuristic " << to_string(heuristic_);
    return lo;
  }

  int n_;
  std::vector<int> periods_;
  SlotHeuristic heuristic_;
  Slot now_ = 0;
  std::map<Slot, std::vector<Segment>> slots_;
};

// Effective per-entry period vector an on_range(first, last) admission runs
// under; what ScheduleAuditor::track_plan needs.
std::vector<int> range_periods(const DhbScheduler& dhb, Segment first,
                               Segment last) {
  std::vector<int> out;
  for (Segment j = first; j <= last; ++j) {
    const int t = dhb.periods()[static_cast<size_t>(j - 1)];
    out.push_back(first == 1 ? t
                             : std::min(t, static_cast<int>(j - first + 1)));
  }
  return out;
}

struct FuzzConfig {
  std::vector<int> periods;  // empty = CBR T[j] = j
  SlotHeuristic heuristic = SlotHeuristic::kMinLoadLatest;
  int num_segments = 12;
  int slots = 500;
  double arrivals_per_slot = 0.8;
  uint64_t seed = 1;
  bool mixed_ops = false;     // resumes + ranges (clamped windows)
  int bounded_cap = 0;        // >0: use on_request_bounded for full requests
  int client_stream_cap = 0;  // >0: capped-client variant (audit only)
  bool diff_oracle = true;    // false for kRandom / capped configs
};

// Runs one fuzzed trace; adds every audited step to *audited.
void run_fuzz(const FuzzConfig& fc, uint64_t* audited) {
  DhbConfig config;
  config.num_segments = fc.num_segments;
  config.periods = fc.periods;
  config.heuristic = fc.heuristic;
  config.client_stream_cap = fc.client_stream_cap;
  DhbScheduler dhb(config);
  NaiveOracle oracle(fc.num_segments, fc.periods, fc.heuristic);
  const bool duplicates_legal = fc.mixed_ops || fc.client_stream_cap > 0;
  ScheduleAuditor auditor(
      AuditOptions{.allow_multiple_instances = duplicates_legal});
  auditor.attach(dhb);
  Rng rng(fc.seed);

  const auto audit_now = [&]() {
    const AuditReport report = auditor.audit(dhb);
    ASSERT_TRUE(report.ok())
        << "heuristic=" << to_string(fc.heuristic) << " seed=" << fc.seed
        << " slot=" << dhb.current_slot() << ": " << report.to_string();
    ++*audited;
  };

  for (int slot = 0; slot < fc.slots && !testing::Test::HasFailure(); ++slot) {
    // Advance both sides and diff the transmitted schedule.
    const std::vector<Segment> sent = dhb.advance_slot();
    ASSERT_TRUE(auditor.on_advance(dhb, sent).ok());
    if (fc.diff_oracle) {
      std::vector<Segment> a = sent;
      std::vector<Segment> b = oracle.advance();
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      ASSERT_EQ(a, b) << "transmission divergence at slot "
                      << dhb.current_slot() << " (heuristic "
                      << to_string(fc.heuristic) << ", seed " << fc.seed
                      << ")";
    }
    audit_now();

    for (uint64_t k = rng.poisson(fc.arrivals_per_slot); k > 0; --k) {
      Segment first = 1;
      Segment last = static_cast<Segment>(fc.num_segments);
      const double op = fc.mixed_ops ? rng.uniform() : 1.0;
      if (op < 0.25) {  // resume: watch first..n
        first = static_cast<Segment>(
            1 + rng.uniform_index(static_cast<uint64_t>(fc.num_segments)));
      } else if (op < 0.45) {  // range: watch first..last
        first = static_cast<Segment>(
            1 + rng.uniform_index(static_cast<uint64_t>(fc.num_segments)));
        last = static_cast<Segment>(
            first + static_cast<Segment>(rng.uniform_index(
                        static_cast<uint64_t>(fc.num_segments - first + 1))));
      }

      if (fc.bounded_cap > 0) {
        const std::optional<DhbRequestResult> got =
            dhb.on_request_bounded(fc.bounded_cap);
        const std::optional<std::vector<Slot>> want =
            oracle.admit_bounded(fc.bounded_cap);
        ASSERT_EQ(got.has_value(), want.has_value())
            << "bounded admission verdict divergence at slot "
            << dhb.current_slot();
        if (got) {
          ASSERT_EQ(got->plan.reception_slot, *want)
              << "bounded plan divergence at slot " << dhb.current_slot();
          ASSERT_EQ(got->cap_violations, 0);
          auditor.track_plan(got->plan, 1, range_periods(dhb, 1, last));
        }
      } else {
        const DhbRequestResult got = dhb.on_range(first, last);
        if (fc.client_stream_cap == 0) {
          ASSERT_EQ(got.cap_violations, 0);
        }
        if (fc.diff_oracle) {
          const std::vector<Slot> want = oracle.admit_range(first, last);
          ASSERT_EQ(got.plan.reception_slot, want)
              << "plan divergence at slot " << dhb.current_slot()
              << " for range " << first << ".." << last << " (heuristic "
              << to_string(fc.heuristic) << ", seed " << fc.seed << ")";
        }
        auditor.track_plan(got.plan, first, range_periods(dhb, first, last));
      }
      audit_now();
    }
  }
}

// VBR-style work-ahead periods (plateaus, T[j] > j allowed past the start)
// and deadline-critical tight periods (T[j] < j), both paper-§4 shapes.
std::vector<int> work_ahead_periods() {
  return {1, 3, 3, 5, 6, 6, 8, 10, 12, 14, 14, 16};
}
std::vector<int> tight_periods() {
  return {1, 2, 2, 3, 3, 4, 4, 5, 6, 6, 7, 8};
}

TEST(FuzzScheduleAudit, DeterministicHeuristicsAgainstOracle) {
  const SlotHeuristic heuristics[] = {
      SlotHeuristic::kMinLoadLatest, SlotHeuristic::kMinLoadEarliest,
      SlotHeuristic::kLatest, SlotHeuristic::kEarliest};
  const std::vector<std::vector<int>> period_vectors = {
      {}, work_ahead_periods(), tight_periods()};
  uint64_t audited = 0;
  uint64_t seed = 100;
  for (SlotHeuristic h : heuristics) {
    for (const std::vector<int>& periods : period_vectors) {
      FuzzConfig fc;
      fc.heuristic = h;
      fc.periods = periods;
      fc.seed = ++seed;
      fc.slots = 300;
      run_fuzz(fc, &audited);
      if (testing::Test::HasFailure()) return;
    }
  }
  EXPECT_GE(audited, 6000u);
}

TEST(FuzzScheduleAudit, MixedResumeRangeOpsAgainstOracle) {
  const SlotHeuristic heuristics[] = {SlotHeuristic::kMinLoadLatest,
                                      SlotHeuristic::kMinLoadEarliest};
  const std::vector<std::vector<int>> period_vectors = {{},
                                                        work_ahead_periods()};
  uint64_t audited = 0;
  uint64_t seed = 200;
  for (SlotHeuristic h : heuristics) {
    for (const std::vector<int>& periods : period_vectors) {
      FuzzConfig fc;
      fc.heuristic = h;
      fc.periods = periods;
      fc.mixed_ops = true;
      fc.arrivals_per_slot = 1.2;
      fc.seed = ++seed;
      fc.slots = 400;
      run_fuzz(fc, &audited);
      if (testing::Test::HasFailure()) return;
    }
  }
  EXPECT_GE(audited, 2500u);
}

TEST(FuzzScheduleAudit, BoundedAdmissionAgainstOracle) {
  FuzzConfig fc;
  fc.bounded_cap = 3;
  fc.arrivals_per_slot = 1.5;  // push into rejection territory
  fc.seed = 300;
  fc.slots = 500;
  uint64_t audited = 0;
  run_fuzz(fc, &audited);
  EXPECT_GE(audited, 800u);
}

TEST(FuzzScheduleAudit, RandomHeuristicAuditOnly) {
  FuzzConfig fc;
  fc.heuristic = SlotHeuristic::kRandom;
  fc.diff_oracle = false;
  fc.seed = 400;
  fc.slots = 400;
  uint64_t audited = 0;
  run_fuzz(fc, &audited);
  fc.mixed_ops = true;
  fc.seed = 401;
  run_fuzz(fc, &audited);
  EXPECT_GE(audited, 1000u);
}

TEST(FuzzScheduleAudit, CappedClientAuditOnly) {
  FuzzConfig fc;
  fc.client_stream_cap = 2;
  fc.diff_oracle = false;  // capped placement has no naive twin here
  fc.arrivals_per_slot = 1.5;
  fc.seed = 500;
  fc.slots = 400;
  uint64_t audited = 0;
  run_fuzz(fc, &audited);
  EXPECT_GE(audited, 800u);
}

}  // namespace
}  // namespace vod
