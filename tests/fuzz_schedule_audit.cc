// Differential fuzz driver for the scheduling core.
//
// Replays randomized traces of mixed admissions (on_request, on_resume,
// on_range, on_request_bounded) and slot advances against DhbScheduler,
// across slot heuristics and period vectors, and after EVERY operation:
//   * deep-audits the scheduler with ScheduleAuditor (sharing, containment,
//     load/index consistency, clock, counter conservation, live plans);
//   * diffs the transmitted schedule — and each admitted client's
//     reception plan — against a brute-force oracle that re-derives the
//     Figure 6 algorithm (generalized to ranges, heuristics, and bounded
//     admission) on naive data structures.
//
// The acceptance bar (ISSUE 1): >= 10k audited steps, >= 3 heuristics,
// >= 2 period vectors, zero violations, zero divergences.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "analysis/schedule_auditor.h"
#include "analysis/transition_auditor.h"
#include "core/dhb.h"
#include "core/heuristics.h"
#include "protocols/npb.h"
#include "server/adaptive_video.h"
#include "sim/random.h"

namespace vod {
namespace {

// The Figure 6 algorithm on a plain map, generalized the same way the
// production scheduler is: clamped windows for mid-video joins, pluggable
// deterministic slot heuristics, and two-phase channel-bounded admission.
class NaiveOracle {
 public:
  NaiveOracle(int n, std::vector<int> periods, SlotHeuristic heuristic)
      : n_(n), periods_(std::move(periods)), heuristic_(heuristic) {
    if (periods_.empty()) {
      for (int j = 1; j <= n_; ++j) periods_.push_back(j);
    }
  }

  // Admits segments first..last; returns the chosen reception slot per
  // segment (index 0 = `first`).
  std::vector<Slot> admit_range(Segment first, Segment last) {
    std::vector<Slot> receptions;
    for (Segment j = first; j <= last; ++j) {
      const Slot lo = now_ + 1;
      const Slot hi = now_ + period_for(j, first);
      Slot chosen = find_shared(j, lo, hi);
      if (chosen == 0) {
        chosen = pick(lo, hi, [this](Slot s) { return load(s); });
        slots_[chosen].push_back(j);
      }
      receptions.push_back(chosen);
    }
    return receptions;
  }

  // Mirrors DhbScheduler::on_request_bounded: all-or-nothing admission
  // under a hard per-slot stream budget, min-load-latest over under-cap
  // slots, counting this request's own tentative placements.
  std::optional<std::vector<Slot>> admit_bounded(int cap) {
    std::map<Slot, int> added;
    std::vector<std::pair<Segment, Slot>> placements;
    std::vector<Slot> receptions;
    for (Segment j = 1; j <= n_; ++j) {
      const Slot lo = now_ + 1;
      const Slot hi = now_ + periods_[static_cast<size_t>(j - 1)];
      Slot chosen = find_shared(j, lo, hi);
      if (chosen == 0) {
        int best_load = cap;
        for (Slot s = hi; s >= lo; --s) {
          const int m = load(s) + added[s];
          if (m < best_load) {
            best_load = m;
            chosen = s;
          }
        }
        if (chosen == 0) return std::nullopt;  // no mutation happened
        ++added[chosen];
        placements.push_back({j, chosen});
      }
      receptions.push_back(chosen);
    }
    for (const auto& [segment, slot] : placements) {
      slots_[slot].push_back(segment);
    }
    return receptions;
  }

  std::vector<Segment> advance() {
    ++now_;
    std::vector<Segment> out = slots_[now_];
    slots_.erase(now_);
    return out;
  }

 private:
  int period_for(Segment j, Segment first) const {
    const int t = periods_[static_cast<size_t>(j - 1)];
    return first == 1 ? t : std::min(t, static_cast<int>(j - first + 1));
  }

  int load(Slot s) const {
    const auto it = slots_.find(s);
    return it == slots_.end() ? 0 : static_cast<int>(it->second.size());
  }

  // Latest already-scheduled instance of j in [lo, hi], 0 when none — the
  // same sharing rule SlotSchedule::find_instance implements.
  Slot find_shared(Segment j, Slot lo, Slot hi) const {
    for (Slot s = hi; s >= lo; --s) {
      const auto it = slots_.find(s);
      if (it == slots_.end()) continue;
      if (std::find(it->second.begin(), it->second.end(), j) !=
          it->second.end()) {
        return s;
      }
    }
    return 0;
  }

  template <typename LoadFn>
  Slot pick(Slot lo, Slot hi, LoadFn load_at) const {
    switch (heuristic_) {
      case SlotHeuristic::kLatest:
        return hi;
      case SlotHeuristic::kEarliest:
        return lo;
      case SlotHeuristic::kMinLoadLatest:
      case SlotHeuristic::kMinLoadEarliest: {
        int m_min = load_at(lo);
        for (Slot s = lo; s <= hi; ++s) m_min = std::min(m_min, load_at(s));
        if (heuristic_ == SlotHeuristic::kMinLoadEarliest) {
          for (Slot s = lo; s <= hi; ++s) {
            if (load_at(s) == m_min) return s;
          }
        }
        for (Slot s = hi; s >= lo; --s) {
          if (load_at(s) == m_min) return s;
        }
        return lo;
      }
      case SlotHeuristic::kRandom:
        break;  // not differential-testable (independent rng streams)
    }
    ADD_FAILURE() << "oracle cannot mirror heuristic " << to_string(heuristic_);
    return lo;
  }

  int n_;
  std::vector<int> periods_;
  SlotHeuristic heuristic_;
  Slot now_ = 0;
  std::map<Slot, std::vector<Segment>> slots_;
};

// Effective per-entry period vector an on_range(first, last) admission runs
// under; what ScheduleAuditor::track_plan needs.
std::vector<int> range_periods(const DhbScheduler& dhb, Segment first,
                               Segment last) {
  std::vector<int> out;
  for (Segment j = first; j <= last; ++j) {
    const int t = dhb.periods()[static_cast<size_t>(j - 1)];
    out.push_back(first == 1 ? t
                             : std::min(t, static_cast<int>(j - first + 1)));
  }
  return out;
}

struct FuzzConfig {
  std::vector<int> periods;  // empty = CBR T[j] = j
  SlotHeuristic heuristic = SlotHeuristic::kMinLoadLatest;
  int num_segments = 12;
  int slots = 500;
  double arrivals_per_slot = 0.8;
  uint64_t seed = 1;
  bool mixed_ops = false;     // resumes + ranges (clamped windows)
  int bounded_cap = 0;        // >0: use on_request_bounded for full requests
  int client_stream_cap = 0;  // >0: capped-client variant (audit only)
  bool diff_oracle = true;    // false for kRandom / capped configs
};

// Runs one fuzzed trace; adds every audited step to *audited.
void run_fuzz(const FuzzConfig& fc, uint64_t* audited) {
  DhbConfig config;
  config.num_segments = fc.num_segments;
  config.periods = fc.periods;
  config.heuristic = fc.heuristic;
  config.client_stream_cap = fc.client_stream_cap;
  DhbScheduler dhb(config);
  NaiveOracle oracle(fc.num_segments, fc.periods, fc.heuristic);
  const bool duplicates_legal = fc.mixed_ops || fc.client_stream_cap > 0;
  ScheduleAuditor auditor(
      AuditOptions{.allow_multiple_instances = duplicates_legal});
  auditor.attach(dhb);
  Rng rng(fc.seed);

  const auto audit_now = [&]() {
    const AuditReport report = auditor.audit(dhb);
    ASSERT_TRUE(report.ok())
        << "heuristic=" << to_string(fc.heuristic) << " seed=" << fc.seed
        << " slot=" << dhb.current_slot() << ": " << report.to_string();
    ++*audited;
  };

  for (int slot = 0; slot < fc.slots && !testing::Test::HasFailure(); ++slot) {
    // Advance both sides and diff the transmitted schedule.
    const std::vector<Segment> sent = dhb.advance_slot();
    ASSERT_TRUE(auditor.on_advance(dhb, sent).ok());
    if (fc.diff_oracle) {
      std::vector<Segment> a = sent;
      std::vector<Segment> b = oracle.advance();
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      ASSERT_EQ(a, b) << "transmission divergence at slot "
                      << dhb.current_slot() << " (heuristic "
                      << to_string(fc.heuristic) << ", seed " << fc.seed
                      << ")";
    }
    audit_now();

    for (uint64_t k = rng.poisson(fc.arrivals_per_slot); k > 0; --k) {
      Segment first = 1;
      Segment last = static_cast<Segment>(fc.num_segments);
      const double op = fc.mixed_ops ? rng.uniform() : 1.0;
      if (op < 0.25) {  // resume: watch first..n
        first = static_cast<Segment>(
            1 + rng.uniform_index(static_cast<uint64_t>(fc.num_segments)));
      } else if (op < 0.45) {  // range: watch first..last
        first = static_cast<Segment>(
            1 + rng.uniform_index(static_cast<uint64_t>(fc.num_segments)));
        last = static_cast<Segment>(
            first + static_cast<Segment>(rng.uniform_index(
                        static_cast<uint64_t>(fc.num_segments - first + 1))));
      }

      if (fc.bounded_cap > 0) {
        const std::optional<DhbRequestResult> got =
            dhb.on_request_bounded(fc.bounded_cap);
        const std::optional<std::vector<Slot>> want =
            oracle.admit_bounded(fc.bounded_cap);
        ASSERT_EQ(got.has_value(), want.has_value())
            << "bounded admission verdict divergence at slot "
            << dhb.current_slot();
        if (got) {
          ASSERT_EQ(got->plan.reception_slot, *want)
              << "bounded plan divergence at slot " << dhb.current_slot();
          ASSERT_EQ(got->cap_violations, 0);
          auditor.track_plan(got->plan, 1, range_periods(dhb, 1, last));
        }
      } else {
        const DhbRequestResult got = dhb.on_range(first, last);
        if (fc.client_stream_cap == 0) {
          ASSERT_EQ(got.cap_violations, 0);
        }
        if (fc.diff_oracle) {
          const std::vector<Slot> want = oracle.admit_range(first, last);
          ASSERT_EQ(got.plan.reception_slot, want)
              << "plan divergence at slot " << dhb.current_slot()
              << " for range " << first << ".." << last << " (heuristic "
              << to_string(fc.heuristic) << ", seed " << fc.seed << ")";
        }
        auditor.track_plan(got.plan, first, range_periods(dhb, first, last));
      }
      audit_now();
    }
  }
}

// VBR-style work-ahead periods (plateaus, T[j] > j allowed past the start)
// and deadline-critical tight periods (T[j] < j), both paper-§4 shapes.
std::vector<int> work_ahead_periods() {
  return {1, 3, 3, 5, 6, 6, 8, 10, 12, 14, 14, 16};
}
std::vector<int> tight_periods() {
  return {1, 2, 2, 3, 3, 4, 4, 5, 6, 6, 7, 8};
}

// Second differential axis: the production scheduler against itself, fast
// paths (placement index + same-slot coalescing) versus the naive Figure 6
// scans, fed one identical operation trace. Every plan, every transmission
// vector (exact order, not sorted — the fast path must not even reorder
// ring insertions), and every logical counter must match bit for bit.
// Unlike the NaiveOracle diff this also covers kRandom (both sides consume
// identical rng streams) and the capped-client variant.
void run_mode_diff(const FuzzConfig& fc, uint64_t* checked) {
  DhbConfig base;
  base.num_segments = fc.num_segments;
  base.periods = fc.periods;
  base.heuristic = fc.heuristic;
  base.client_stream_cap = fc.client_stream_cap;
  base.heuristic_seed = fc.seed * 7 + 1;
  DhbConfig fast_config = base;
  fast_config.use_placement_index = true;
  // Cutover 0: always exercise the index, even for videos small enough
  // that the adaptive cutover would route production traffic to the naive
  // scan (the fuzzer's whole point is diffing the two implementations).
  fast_config.placement_index_cutover = 0;
  fast_config.coalesce_same_slot = true;
  DhbConfig naive_config = base;
  naive_config.use_placement_index = false;
  naive_config.coalesce_same_slot = false;
  DhbScheduler fast(fast_config);
  DhbScheduler naive(naive_config);
  Rng rng(fc.seed);
  // Separate stream for the slab probes so they don't perturb the
  // operation trace both schedulers consume.
  Rng probe_rng(fc.seed * 31 + 11);

  // Slab-layout probe: with no overlay live, the batched raw-ring scans
  // must reproduce the indexed range-min bit for bit on both schedulers —
  // the O(width) naive reference path and the O(log W) index are two
  // readers of the same flat slabs.
  const auto probe_slabs = [&](const DhbScheduler& d) {
    const SlotSchedule& sched = d.schedule();
    const Slot base = sched.now();
    const auto w = static_cast<uint64_t>(sched.window());
    for (int probe = 0; probe < 3; ++probe) {
      const Slot lo = base + 1 + static_cast<Slot>(probe_rng.uniform_index(w));
      const Slot hi = lo + static_cast<Slot>(probe_rng.uniform_index(
                               static_cast<uint64_t>(base + sched.window() -
                                                     lo + 1)));
      const SlotSchedule::MinLoad want_l = sched.min_load_latest(lo, hi);
      const SlotSchedule::MinLoad got_l = sched.scan_min_load_latest(lo, hi);
      ASSERT_EQ(got_l.slot, want_l.slot)
          << "scan/index divergence (latest) at slot " << base << " ["
          << lo << "," << hi << "] seed " << fc.seed;
      ASSERT_EQ(got_l.load, want_l.load);
      const SlotSchedule::MinLoad want_e = sched.min_load_earliest(lo, hi);
      const SlotSchedule::MinLoad got_e = sched.scan_min_load_earliest(lo, hi);
      ASSERT_EQ(got_e.slot, want_e.slot)
          << "scan/index divergence (earliest) at slot " << base << " ["
          << lo << "," << hi << "] seed " << fc.seed;
      ASSERT_EQ(got_e.load, want_e.load);
    }
  };

  const auto compare_results = [&](const DhbRequestResult& a,
                                   const DhbRequestResult& b) {
    ASSERT_EQ(a.plan.arrival_slot, b.plan.arrival_slot);
    ASSERT_EQ(a.plan.reception_slot, b.plan.reception_slot)
        << "mode divergence at slot " << fast.current_slot() << " (heuristic "
        << to_string(fc.heuristic) << ", seed " << fc.seed << ")";
    ASSERT_EQ(a.new_instances, b.new_instances);
    ASSERT_EQ(a.shared_instances, b.shared_instances);
    ASSERT_EQ(a.cap_violations, b.cap_violations);
    ++*checked;
  };
  const auto compare_counters = [&]() {
    // work_units and coalesced_requests intentionally differ between the
    // modes; every logical counter must not.
    ASSERT_EQ(fast.total_requests(), naive.total_requests());
    ASSERT_EQ(fast.total_new_instances(), naive.total_new_instances());
    ASSERT_EQ(fast.total_shared(), naive.total_shared());
    ASSERT_EQ(fast.total_slot_probes(), naive.total_slot_probes());
    ASSERT_EQ(fast.total_rejected_admissions(),
              naive.total_rejected_admissions());
  };

  for (int slot = 0; slot < fc.slots && !testing::Test::HasFailure(); ++slot) {
    // The fast side goes through the zero-copy span view (the engine's
    // entry point), the naive side through the owning-vector API: the two
    // advance entry points must expose the identical transmission list.
    const std::span<const Segment> fast_sent = fast.advance_slot_view();
    const std::vector<Segment> fast_copy(fast_sent.begin(), fast_sent.end());
    ASSERT_EQ(fast_copy, naive.advance_slot())
        << "transmission divergence entering slot " << fast.current_slot()
        << " (heuristic " << to_string(fc.heuristic) << ", seed " << fc.seed
        << ")";
    probe_slabs(fast);
    probe_slabs(naive);

    uint64_t pending = rng.poisson(fc.arrivals_per_slot);
    while (pending > 0 && !testing::Test::HasFailure()) {
      Segment first = 1;
      Segment last = static_cast<Segment>(fc.num_segments);
      const double op = fc.mixed_ops ? rng.uniform() : 1.0;
      if (op < 0.2) {  // resume
        first = static_cast<Segment>(
            1 + rng.uniform_index(static_cast<uint64_t>(fc.num_segments)));
      } else if (op < 0.4) {  // range
        first = static_cast<Segment>(
            1 + rng.uniform_index(static_cast<uint64_t>(fc.num_segments)));
        last = static_cast<Segment>(
            first + static_cast<Segment>(rng.uniform_index(
                        static_cast<uint64_t>(fc.num_segments - first + 1))));
      }

      if (fc.bounded_cap > 0 && first == 1 && last == fc.num_segments) {
        const std::optional<DhbRequestResult> a =
            fast.on_request_bounded(fc.bounded_cap);
        const std::optional<DhbRequestResult> b =
            naive.on_request_bounded(fc.bounded_cap);
        ASSERT_EQ(a.has_value(), b.has_value())
            << "bounded verdict divergence at slot " << fast.current_slot();
        if (a) compare_results(*a, *b);
        --pending;
      } else if (first == 1 && last == fc.num_segments && pending >= 2 &&
                 fc.client_stream_cap == 0 && rng.uniform() < 0.5) {
        // Batch entry point: one on_request_batch(k) on the fast side must
        // equal k sequential naive admissions — every follower included.
        const uint64_t k =
            2 + rng.uniform_index(pending - 1);  // 2..pending
        const DhbRequestResult a = fast.on_request_batch(k);
        DhbRequestResult b;
        for (uint64_t i = 0; i < k; ++i) b = naive.on_request();
        compare_results(a, b);
        pending -= k;
      } else {
        compare_results(fast.on_range(first, last),
                        naive.on_range(first, last));
        --pending;
      }
      compare_counters();
    }
  }
}

TEST(FuzzScheduleAudit, DeterministicHeuristicsAgainstOracle) {
  const SlotHeuristic heuristics[] = {
      SlotHeuristic::kMinLoadLatest, SlotHeuristic::kMinLoadEarliest,
      SlotHeuristic::kLatest, SlotHeuristic::kEarliest};
  const std::vector<std::vector<int>> period_vectors = {
      {}, work_ahead_periods(), tight_periods()};
  uint64_t audited = 0;
  uint64_t seed = 100;
  for (SlotHeuristic h : heuristics) {
    for (const std::vector<int>& periods : period_vectors) {
      FuzzConfig fc;
      fc.heuristic = h;
      fc.periods = periods;
      fc.seed = ++seed;
      fc.slots = 300;
      run_fuzz(fc, &audited);
      if (testing::Test::HasFailure()) return;
    }
  }
  EXPECT_GE(audited, 6000u);
}

TEST(FuzzScheduleAudit, MixedResumeRangeOpsAgainstOracle) {
  const SlotHeuristic heuristics[] = {SlotHeuristic::kMinLoadLatest,
                                      SlotHeuristic::kMinLoadEarliest};
  const std::vector<std::vector<int>> period_vectors = {{},
                                                        work_ahead_periods()};
  uint64_t audited = 0;
  uint64_t seed = 200;
  for (SlotHeuristic h : heuristics) {
    for (const std::vector<int>& periods : period_vectors) {
      FuzzConfig fc;
      fc.heuristic = h;
      fc.periods = periods;
      fc.mixed_ops = true;
      fc.arrivals_per_slot = 1.2;
      fc.seed = ++seed;
      fc.slots = 400;
      run_fuzz(fc, &audited);
      if (testing::Test::HasFailure()) return;
    }
  }
  EXPECT_GE(audited, 2500u);
}

TEST(FuzzScheduleAudit, BoundedAdmissionAgainstOracle) {
  FuzzConfig fc;
  fc.bounded_cap = 3;
  fc.arrivals_per_slot = 1.5;  // push into rejection territory
  fc.seed = 300;
  fc.slots = 500;
  uint64_t audited = 0;
  run_fuzz(fc, &audited);
  EXPECT_GE(audited, 800u);
}

TEST(FuzzScheduleAudit, RandomHeuristicAuditOnly) {
  FuzzConfig fc;
  fc.heuristic = SlotHeuristic::kRandom;
  fc.diff_oracle = false;
  fc.seed = 400;
  fc.slots = 400;
  uint64_t audited = 0;
  run_fuzz(fc, &audited);
  fc.mixed_ops = true;
  fc.seed = 401;
  run_fuzz(fc, &audited);
  EXPECT_GE(audited, 1000u);
}

TEST(FuzzScheduleAudit, CappedClientAuditOnly) {
  FuzzConfig fc;
  fc.client_stream_cap = 2;
  fc.diff_oracle = false;  // capped placement has no naive twin here
  fc.arrivals_per_slot = 1.5;
  fc.seed = 500;
  fc.slots = 400;
  uint64_t audited = 0;
  run_fuzz(fc, &audited);
  EXPECT_GE(audited, 800u);
}

TEST(FuzzModeDiff, AllHeuristicsAllPeriodVectors) {
  const SlotHeuristic heuristics[] = {
      SlotHeuristic::kMinLoadLatest, SlotHeuristic::kMinLoadEarliest,
      SlotHeuristic::kLatest, SlotHeuristic::kEarliest,
      SlotHeuristic::kRandom};
  const std::vector<std::vector<int>> period_vectors = {
      {}, work_ahead_periods(), tight_periods()};
  uint64_t checked = 0;
  uint64_t seed = 600;
  for (SlotHeuristic h : heuristics) {
    for (const std::vector<int>& periods : period_vectors) {
      FuzzConfig fc;
      fc.heuristic = h;
      fc.periods = periods;
      fc.arrivals_per_slot = 2.0;  // same-slot bursts exercise coalescing
      fc.seed = ++seed;
      fc.slots = 300;
      run_mode_diff(fc, &checked);
      if (testing::Test::HasFailure()) return;
    }
  }
  EXPECT_GE(checked, 5000u);
}

TEST(FuzzModeDiff, MixedResumeRangeOps) {
  const std::vector<std::vector<int>> period_vectors = {
      {}, work_ahead_periods(), tight_periods()};
  uint64_t checked = 0;
  uint64_t seed = 700;
  for (const std::vector<int>& periods : period_vectors) {
    FuzzConfig fc;
    fc.periods = periods;
    fc.mixed_ops = true;
    fc.arrivals_per_slot = 1.5;
    fc.seed = ++seed;
    fc.slots = 400;
    run_mode_diff(fc, &checked);
    if (testing::Test::HasFailure()) return;
  }
  EXPECT_GE(checked, 1500u);
}

TEST(FuzzModeDiff, BoundedAdmission) {
  FuzzConfig fc;
  fc.bounded_cap = 3;
  fc.arrivals_per_slot = 1.5;  // push into rejection territory
  fc.seed = 800;
  fc.slots = 500;
  uint64_t checked = 0;
  run_mode_diff(fc, &checked);
  fc.mixed_ops = true;  // bounded admissions interleaved with resumes/ranges
  fc.seed = 801;
  run_mode_diff(fc, &checked);
  EXPECT_GE(checked, 900u);
}

// Switch-injection mode (ISSUE 7): drives an AdaptiveVideo with random
// per-slot Poisson arrivals AND randomly injected protocol switches
// (force_mode at random slots, on top of the controller's own decisions),
// while a TransitionAuditor checks from the outside that no committed
// reception is ever missed — the migration invariant under adversarial
// switch timing. Every slot is one audited step.
struct SwitchFuzzConfig {
  int num_segments = 20;
  int slots = 2000;
  double arrivals_per_slot = 0.8;
  double switch_prob = 0.05;  // per-slot chance of a forced random mode
  uint64_t min_dwell = 1;     // 1 = worst case: a switch every slot is legal
  uint64_t seed = 1;
};

void run_switch_fuzz(const SwitchFuzzConfig& sc, uint64_t* audited) {
  static std::map<int, NpbMapping> mappings;
  auto it = mappings.find(sc.num_segments);
  if (it == mappings.end()) {
    auto built = NpbMapping::build(NpbMapping::streams_for(sc.num_segments),
                                   sc.num_segments);
    ASSERT_TRUE(built.has_value());
    it = mappings.emplace(sc.num_segments, *built).first;
  }

  AdaptiveVideoConfig config;
  config.num_segments = sc.num_segments;
  config.ewma.half_life_slots = 8.0;  // nervous estimator: more real churn
  config.controller.min_dwell_slots = sc.min_dwell;
  TransitionAuditor auditor;
  AdaptiveVideo video(config, &it->second, &auditor);
  Rng rng(sc.seed);

  for (int slot = 0; slot < sc.slots && !testing::Test::HasFailure(); ++slot) {
    video.advance_slot();
    video.on_slot_arrivals(rng.poisson(sc.arrivals_per_slot));
    if (rng.uniform() < sc.switch_prob) {
      video.force_mode(static_cast<ServingMode>(rng.uniform_index(3)));
    }
    ASSERT_TRUE(auditor.report().ok())
        << "seed=" << sc.seed << " n=" << sc.num_segments << " slot="
        << video.now() << ": " << auditor.report().to_string();
    ++*audited;
  }
  // Drain: every committed reception is due within one window/period of the
  // last admission; nothing may be left owed once the horizon passes.
  for (int i = 0; i < 2 * sc.num_segments + 2; ++i) {
    video.advance_slot();
    video.on_slot_arrivals(0);
    ++*audited;
  }
  ASSERT_TRUE(auditor.report().ok()) << auditor.report().to_string();
  EXPECT_EQ(auditor.pending_receptions(), 0u) << "seed=" << sc.seed;
  EXPECT_GT(auditor.transitions_seen(), 0u) << "seed=" << sc.seed;
  EXPECT_GT(auditor.receptions_checked(), 0u);
}

TEST(FuzzSwitchInjection, MigrationInvariantUnderRandomSwitching) {
  // The acceptance bar: > 10k audited steps with switches injected at
  // random points, across video sizes, arrival intensities, and dwell
  // configurations — zero violations, nothing left undelivered.
  uint64_t audited = 0;
  uint64_t seed = 1000;

  for (int n : {1, 5, 20}) {
    SwitchFuzzConfig sc;
    sc.num_segments = n;
    sc.seed = ++seed;
    run_switch_fuzz(sc, &audited);
    if (testing::Test::HasFailure()) return;
  }

  // Sparse arrivals: long idle stretches (the scheduler-clock-offset and
  // lazy-creation paths), switches landing on empty schedules.
  {
    SwitchFuzzConfig sc;
    sc.arrivals_per_slot = 0.05;
    sc.switch_prob = 0.1;
    sc.seed = ++seed;
    run_switch_fuzz(sc, &audited);
    if (testing::Test::HasFailure()) return;
  }

  // Dense arrivals + maximal switch pressure.
  {
    SwitchFuzzConfig sc;
    sc.arrivals_per_slot = 3.0;
    sc.switch_prob = 0.3;
    sc.seed = ++seed;
    run_switch_fuzz(sc, &audited);
    if (testing::Test::HasFailure()) return;
  }

  // A realistic dwell: forced switches queue behind the controller's own
  // hysteresis decisions instead of committing immediately.
  {
    SwitchFuzzConfig sc;
    sc.min_dwell = 32;
    sc.switch_prob = 0.15;
    sc.seed = ++seed;
    run_switch_fuzz(sc, &audited);
    if (testing::Test::HasFailure()) return;
  }

  EXPECT_GE(audited, 10000u);
}

TEST(FuzzModeDiff, CappedClient) {
  FuzzConfig fc;
  fc.client_stream_cap = 2;
  fc.arrivals_per_slot = 1.5;
  fc.seed = 900;
  fc.slots = 400;
  uint64_t checked = 0;
  run_mode_diff(fc, &checked);
  fc.client_stream_cap = 1;  // saturates instantly: fallback-heavy
  fc.seed = 901;
  run_mode_diff(fc, &checked);
  EXPECT_GE(checked, 1000u);
}

}  // namespace
}  // namespace vod
