#include "vbr/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vod {
namespace {

const VbrTrace& paper_trace() {
  static const VbrTrace t = generate_synthetic_vbr(SyntheticVbrParams{});
  return t;
}

TEST(SyntheticVbr, MatchesPaperHeadlineStats) {
  // §4: 8170 s, 636 KB/s average, 951 KB/s one-second peak.
  const VbrTrace& t = paper_trace();
  EXPECT_EQ(t.duration_s(), 8170);
  EXPECT_NEAR(t.mean_rate_kbs(), 636.0, 1.0);
  EXPECT_NEAR(t.peak_rate_kbs(1), 951.0, 1.0);
}

TEST(SyntheticVbr, Deterministic) {
  const VbrTrace a = generate_synthetic_vbr(SyntheticVbrParams{});
  const VbrTrace b = generate_synthetic_vbr(SyntheticVbrParams{});
  ASSERT_EQ(a.duration_s(), b.duration_s());
  for (int i = 0; i < a.duration_s(); i += 97) {
    ASSERT_DOUBLE_EQ(a.samples()[static_cast<size_t>(i)],
                     b.samples()[static_cast<size_t>(i)]);
  }
}

TEST(SyntheticVbr, SeedChangesRealization) {
  SyntheticVbrParams p;
  p.seed = 9999;
  const VbrTrace other = generate_synthetic_vbr(p);
  EXPECT_NE(other.samples()[500], paper_trace().samples()[500]);
  // But calibration still pins the headline stats.
  EXPECT_NEAR(other.mean_rate_kbs(), 636.0, 1.0);
  EXPECT_NEAR(other.peak_rate_kbs(1), 951.0, 1.0);
}

TEST(SyntheticVbr, QuietOpeningIsQuiet) {
  const VbrTrace& t = paper_trace();
  const double opening_rate = t.cumulative_kb(120) / 120.0;
  EXPECT_LT(opening_rate, 0.55 * t.mean_rate_kbs());
  EXPECT_GT(opening_rate, 0.35 * t.mean_rate_kbs());
}

TEST(SyntheticVbr, OpeningActionIsDemanding) {
  const VbrTrace& t = paper_trace();
  const double action_rate =
      (t.cumulative_kb(420) - t.cumulative_kb(120)) / 300.0;
  EXPECT_GT(action_rate, 1.15 * t.mean_rate_kbs());
}

TEST(SyntheticVbr, AllSamplesPositive) {
  for (double v : paper_trace().samples()) {
    ASSERT_GT(v, 0.0);
    ASSERT_LE(v, 951.0 + 1.0);
  }
}

TEST(SyntheticVbr, PeakIsLocalizedNotSustained) {
  // The one-second peak comes from short spikes: the busiest minute stays
  // well below the one-second peak (otherwise DHB-a would not waste
  // bandwidth relative to DHB-b).
  const VbrTrace& t = paper_trace();
  EXPECT_LT(t.peak_rate_kbs(60), 0.92 * t.peak_rate_kbs(1));
}

TEST(VideoProfiles, AllCalibrateToTheirTargets) {
  for (const SyntheticVbrParams& p :
       {matrix_profile(), action_profile(), drama_profile(),
        documentary_profile()}) {
    const VbrTrace t = generate_synthetic_vbr(p);
    EXPECT_EQ(t.duration_s(), p.duration_s);
    EXPECT_NEAR(t.mean_rate_kbs(), p.mean_kbs, 1.0);
    EXPECT_NEAR(t.peak_rate_kbs(1), p.peak_kbs, 1.0);
  }
}

TEST(VideoProfiles, DramaIsNearCbr) {
  const VbrTrace t = generate_synthetic_vbr(drama_profile());
  // Busiest minute within 10% of the mean: nothing for smoothing to do.
  EXPECT_LT(t.peak_rate_kbs(60), 1.10 * t.mean_rate_kbs());
}

TEST(VideoProfiles, DocumentaryIsBackLoaded) {
  const VbrTrace t = generate_synthetic_vbr(documentary_profile());
  const double first_half = t.cumulative_kb(t.duration_s() / 2);
  EXPECT_LT(first_half, 0.45 * t.total_kb());
}

TEST(VideoProfiles, MatrixIsTheDefault) {
  const VbrTrace a = generate_synthetic_vbr(matrix_profile());
  const VbrTrace b = generate_synthetic_vbr(SyntheticVbrParams{});
  EXPECT_EQ(a.samples(), b.samples());
}

TEST(SyntheticVbr, CustomDurationAndTargets) {
  SyntheticVbrParams p;
  p.duration_s = 3600;
  p.mean_kbs = 400.0;
  p.peak_kbs = 800.0;
  p.quiet_opening_s = 60;
  p.action_until_s = 240;
  const VbrTrace t = generate_synthetic_vbr(p);
  EXPECT_EQ(t.duration_s(), 3600);
  EXPECT_NEAR(t.mean_rate_kbs(), 400.0, 1.0);
  EXPECT_NEAR(t.peak_rate_kbs(1), 800.0, 1.0);
}

}  // namespace
}  // namespace vod
