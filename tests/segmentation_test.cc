#include "vbr/segmentation.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "vbr/smoothing.h"
#include "vbr/synthetic.h"

namespace vod {
namespace {

VbrTrace cbr_trace(int seconds, double kbs) {
  return VbrTrace(std::vector<double>(static_cast<size_t>(seconds), kbs));
}

TEST(PlaybackSegments, CbrIsFlat) {
  const VbrTrace t = cbr_trace(600, 500.0);
  const std::vector<double> rates = playback_segment_rates(t, 60.0);
  ASSERT_EQ(rates.size(), 10u);
  for (double r : rates) EXPECT_NEAR(r, 500.0, 1e-9);
  EXPECT_NEAR(max_segment_rate_kbs(t, 60.0), 500.0, 1e-9);
}

TEST(PlaybackSegments, RatesAverageToMean) {
  const VbrTrace t = generate_synthetic_vbr(SyntheticVbrParams{});
  const double d = 8170.0 / 137.0;
  const std::vector<double> rates = playback_segment_rates(t, d);
  ASSERT_EQ(rates.size(), 137u);
  const double sum = std::accumulate(rates.begin(), rates.end(), 0.0);
  EXPECT_NEAR(sum * d, t.total_kb(), 1.0);
}

TEST(PlaybackSegments, MaxBetweenMeanAndPeak) {
  const VbrTrace t = generate_synthetic_vbr(SyntheticVbrParams{});
  const double d = 8170.0 / 137.0;
  const double r = max_segment_rate_kbs(t, d);
  EXPECT_GT(r, t.mean_rate_kbs());
  EXPECT_LT(r, t.peak_rate_kbs(1));
}

TEST(PlaybackSegments, PartialLastSegment) {
  // 90 s trace with 60 s slots: two segments, the second half-empty.
  const VbrTrace t = cbr_trace(90, 100.0);
  const std::vector<double> rates = playback_segment_rates(t, 60.0);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_NEAR(rates[0], 100.0, 1e-9);
  EXPECT_NEAR(rates[1], 50.0, 1e-9);  // 30 s of content over a 60 s slot
}

TEST(WorkaheadPeriods, CbrDegeneratesToIdentity) {
  const VbrTrace t = cbr_trace(600, 500.0);
  const std::vector<int> periods = workahead_periods(t, 60.0, 500.0);
  ASSERT_EQ(periods.size(), 10u);
  for (size_t k = 0; k < periods.size(); ++k) {
    EXPECT_EQ(periods[k], static_cast<int>(k + 1)) << "T[" << k + 1 << "]";
  }
}

TEST(WorkaheadPeriods, FirstPeriodAlwaysOne) {
  const VbrTrace t = generate_synthetic_vbr(SyntheticVbrParams{});
  const double d = 8170.0 / 137.0;
  const double r = min_workahead_rate_kbs(t, d);
  const std::vector<int> periods = workahead_periods(t, d, r);
  EXPECT_EQ(periods.front(), 1);
}

TEST(WorkaheadPeriods, NonDecreasingAndAtLeastIdentity) {
  const VbrTrace t = generate_synthetic_vbr(SyntheticVbrParams{});
  const double d = 8170.0 / 137.0;
  const double r = min_workahead_rate_kbs(t, d);
  const std::vector<int> periods = workahead_periods(t, d, r);
  for (size_t k = 0; k < periods.size(); ++k) {
    EXPECT_GE(periods[k], static_cast<int>(k + 1)) << k;
    if (k > 0) {
      EXPECT_GE(periods[k], periods[k - 1]);
    }
  }
}

TEST(WorkaheadPeriods, ScheduleIsFeasible) {
  const VbrTrace t = generate_synthetic_vbr(SyntheticVbrParams{});
  const double d = 8170.0 / 137.0;
  const double r = min_workahead_rate_kbs(t, d);
  const std::vector<int> periods = workahead_periods(t, d, r);
  EXPECT_TRUE(verify_deadline_schedule(t, d, r, periods));
}

TEST(WorkaheadPeriods, PeriodsAreMaximalAtPlateauEnds) {
  // T[k] is the *maximum* delay (§4's minimum transmission frequency):
  // when segment k is the last one due in its slot (T[k] < T[k+1]),
  // delaying it one further slot must underflow the client.
  const VbrTrace t = generate_synthetic_vbr(SyntheticVbrParams{});
  const double d = 8170.0 / 137.0;
  const double r = min_workahead_rate_kbs(t, d);
  const std::vector<int> periods = workahead_periods(t, d, r);
  int checked = 0;
  for (size_t k = 0; k + 1 < periods.size() && checked < 15; ++k) {
    if (periods[k] >= periods[k + 1]) continue;  // not a plateau end
    std::vector<int> relaxed = periods;
    relaxed[k] = relaxed[k] + 1;
    EXPECT_FALSE(verify_deadline_schedule(t, d, r, relaxed))
        << "T[" << k + 1 << "]";
    ++checked;
  }
  EXPECT_GT(checked, 5);
}

TEST(WorkaheadPeriods, HigherRateAllowsMoreDelay) {
  const VbrTrace t = generate_synthetic_vbr(SyntheticVbrParams{});
  const double d = 8170.0 / 137.0;
  const double r = min_workahead_rate_kbs(t, d);
  const std::vector<int> base = workahead_periods(t, d, r);
  const std::vector<int> generous = workahead_periods(t, d, 1.2 * r);
  const size_t probe = std::min(base.size(), generous.size()) / 2;
  EXPECT_GE(generous[probe], base[probe]);
}

}  // namespace
}  // namespace vod
