#include "protocols/patching.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vod {
namespace {

TappingConfig quick(double rate) {
  TappingConfig c;
  c.requests_per_hour = rate;
  c.warmup_hours = 4.0;
  c.measured_hours = 200.0;
  return c;
}

TEST(Patching, OptimalThresholdFormula) {
  // theta* solves lambda theta^2 / 2 + theta - D = 0.
  const double lambda = 10.0 / 3600.0;
  const double D = 7200.0;
  const double theta = patching_optimal_threshold(lambda, D);
  EXPECT_NEAR(lambda * theta * theta / 2.0 + theta - D, 0.0, 1e-6);
}

TEST(Patching, OptimalBandwidthIsSqrtLaw) {
  // At theta*, average bandwidth = sqrt(1 + 2 lambda D) - 1.
  const double lambda = 100.0 / 3600.0;
  const double D = 7200.0;
  const double theta = patching_optimal_threshold(lambda, D);
  const double bw = patching_expected_bandwidth(lambda, D, theta);
  EXPECT_NEAR(bw, std::sqrt(1.0 + 2.0 * lambda * D) - 1.0, 1e-9);
}

class PatchingClosedFormTest : public ::testing::TestWithParam<double> {};

TEST_P(PatchingClosedFormTest, SimulationMatchesRenewalReward) {
  const double rate = GetParam();
  const double lambda = rate / 3600.0;
  TappingConfig c = quick(rate);
  c.restart_threshold_s = patching_optimal_threshold(lambda, 7200.0);
  if (rate < 5.0) c.measured_hours = 600.0;
  const TappingResult r = run_patching_simulation(c);
  const double expected =
      patching_expected_bandwidth(lambda, 7200.0, c.restart_threshold_s);
  EXPECT_NEAR(r.avg_streams, expected, 0.06 * expected) << rate << "/h";
}

INSTANTIATE_TEST_SUITE_P(Rates, PatchingClosedFormTest,
                         ::testing::Values(2.0, 10.0, 50.0, 200.0),
                         [](const auto& param_info) {
                           return "r" +
                                  std::to_string(static_cast<int>(param_info.param));
                         });

TEST(Patching, ThresholdZeroDegeneratesToUnicast) {
  // Restarting on every request means every request costs D: bandwidth
  // lambda * D.
  TappingConfig c = quick(5.0);
  c.restart_threshold_s = 1e-9;
  const TappingResult r = run_patching_simulation(c);
  const double lambda_d = 5.0 / 3600.0 * 7200.0;
  EXPECT_NEAR(r.avg_streams, lambda_d, 0.08 * lambda_d);
  EXPECT_EQ(r.originals, r.requests);
}

TEST(Patching, CrossesTwoStreamsNearTwoPerHour) {
  // The paper's Figure 7 shows the reactive curve passing the others near
  // 2 requests/hour; the sqrt law gives exactly 2.0 streams there.
  const double lambda = 2.0 / 3600.0;
  const double theta = patching_optimal_threshold(lambda, 7200.0);
  EXPECT_NEAR(patching_expected_bandwidth(lambda, 7200.0, theta), 2.0, 1e-9);
}

TEST(Patching, GrowsWithoutBoundUnlikeBroadcasting) {
  // Above ~36 requests/hour patching already needs more streams than FB's
  // 7-stream ceiling — why reactive protocols lose at high rates.
  TappingConfig c = quick(100.0);
  const TappingResult r = run_patching_simulation(c);
  EXPECT_GT(r.avg_streams, 7.0);
}

TEST(Patching, AutoThresholdNearClosedFormOptimum) {
  TappingConfig c = quick(20.0);
  c.restart_threshold_s = -1.0;
  const TappingResult r = run_patching_simulation(c);
  const double lambda = 20.0 / 3600.0;
  const double theta = patching_optimal_threshold(lambda, 7200.0);
  const double best = patching_expected_bandwidth(lambda, 7200.0, theta);
  EXPECT_LT(r.avg_streams, best * 1.10);
  // Regression: the no-arrivals overload used to fall through to the
  // tapping pilot-grid search for its default threshold while the
  // explicit-arrivals overload applied the closed form — the same config
  // simulated under two different thresholds. Both overloads now resolve
  // the analytic optimum.
  EXPECT_DOUBLE_EQ(r.restart_threshold_s, theta);
}

TEST(Patching, DefaultThresholdConsistentAcrossOverloads) {
  TappingConfig c = quick(20.0);
  c.restart_threshold_s = 0.0;
  const TappingResult implicit = run_patching_simulation(c);
  PoissonProcess arrivals(per_hour(c.requests_per_hour), Rng(c.seed));
  const TappingResult explicit_arrivals = run_patching_simulation(c, arrivals);
  EXPECT_DOUBLE_EQ(implicit.restart_threshold_s,
                   explicit_arrivals.restart_threshold_s);
  // Same default arrival stream (rate + seed), same threshold -> the two
  // overloads must agree number for number.
  EXPECT_DOUBLE_EQ(implicit.avg_streams, explicit_arrivals.avg_streams);
  EXPECT_EQ(implicit.requests, explicit_arrivals.requests);
  EXPECT_EQ(implicit.originals, explicit_arrivals.originals);
}

TEST(Patching, ZeroRateIsLegalAndEmpty) {
  // rate == 0 must not divide by zero resolving the default threshold (and
  // the PoissonProcess must simply never arrive).
  TappingConfig c = quick(0.0);
  c.measured_hours = 2.0;
  c.restart_threshold_s = 0.0;
  const TappingResult r = run_patching_simulation(c);
  EXPECT_EQ(r.requests, 0u);
  EXPECT_EQ(r.originals, 0u);
  EXPECT_DOUBLE_EQ(r.avg_streams, 0.0);
  EXPECT_DOUBLE_EQ(r.restart_threshold_s, c.video_duration_s);
}

TEST(Patching, OriginalsSpacedByThreshold) {
  TappingConfig c = quick(50.0);
  c.restart_threshold_s = 720.0;
  const TappingResult r = run_patching_simulation(c);
  // Cycle length ~ theta + 1/lambda = 792 s -> ~909 originals in 200 h.
  const double expected =
      c.measured_hours * 3600.0 / (720.0 + 3600.0 / 50.0);
  EXPECT_NEAR(static_cast<double>(r.originals), expected, 0.1 * expected);
}

}  // namespace
}  // namespace vod
