#include "protocols/npb.h"

#include <gtest/gtest.h>

#include "protocols/fast_broadcasting.h"
#include "protocols/harmonic.h"

namespace vod {
namespace {

TEST(Npb, ReproducesFigure2Headline) {
  // "The NPB protocol can pack nine segments into three streams while the
  // FB protocol can only pack seven segments."
  EXPECT_EQ(NpbMapping::capacity(3), 9);
  EXPECT_EQ(FbMapping::capacity(3), 7);
}

TEST(Npb, SmallCapacities) {
  EXPECT_EQ(NpbMapping::capacity(1), 1);
  EXPECT_EQ(NpbMapping::capacity(2), 3);
  // Larger stream counts must beat FB decisively.
  EXPECT_GT(NpbMapping::capacity(4), FbMapping::capacity(4));
  EXPECT_GT(NpbMapping::capacity(5), FbMapping::capacity(5));
}

TEST(Npb, CapacityBoundedByHarmonicLimit) {
  for (int k = 1; k <= 6; ++k) {
    EXPECT_LE(NpbMapping::capacity(k), NpbMapping::harmonic_capacity(k)) << k;
    EXPECT_GE(NpbMapping::capacity(k), FbMapping::capacity(k)) << k;
  }
}

TEST(Npb, HarmonicCapacityValues) {
  // max n with H_n <= k.
  EXPECT_EQ(NpbMapping::harmonic_capacity(1), 1);
  EXPECT_EQ(NpbMapping::harmonic_capacity(2), 3);
  EXPECT_EQ(NpbMapping::harmonic_capacity(3), 10);
  EXPECT_EQ(NpbMapping::harmonic_capacity(4), 30);
  EXPECT_EQ(NpbMapping::harmonic_capacity(5), 82);
  EXPECT_GT(harmonic_number(99), 5.0);  // 99 segments need >= 6 streams
}

TEST(Npb, StreamsForPaperConfiguration) {
  // Figures 7/8: NPB with 99 segments runs at 6 streams — one below FB's 7
  // and above DHB's ~H_99 ~ 5.18 saturation average.
  EXPECT_EQ(NpbMapping::streams_for(99), 6);
  EXPECT_EQ(NpbMapping::streams_for(9), 3);
  EXPECT_EQ(NpbMapping::streams_for(10), 4);
  EXPECT_EQ(NpbMapping::streams_for(1), 1);
}

TEST(Npb, BuildFailsBeyondCapacity) {
  EXPECT_FALSE(NpbMapping::build(3, NpbMapping::capacity(3) + 1).has_value());
  EXPECT_TRUE(NpbMapping::build(3, NpbMapping::capacity(3)).has_value());
}

TEST(Npb, PeriodsWithinDeadline) {
  const auto m = NpbMapping::build(3, 9);
  ASSERT_TRUE(m.has_value());
  for (Segment j = 1; j <= 9; ++j) {
    EXPECT_LE(m->period_of(j), j) << "S" << j;
    EXPECT_GE(m->period_of(j), 1) << "S" << j;
  }
  // S1 must own a whole stream.
  EXPECT_EQ(m->period_of(1), 1);
}

TEST(Npb, SegmentAtIsConsistentWithPeriods) {
  const auto m = NpbMapping::build(3, 9);
  ASSERT_TRUE(m.has_value());
  // Each segment appears exactly every period_of(j) slots on its stream.
  std::vector<Slot> last(10, 0);
  for (Slot t = 1; t <= 3 * m->cycle_length(); ++t) {
    for (int k = 0; k < 3; ++k) {
      const Segment j = m->segment_at(k, t);
      if (j == 0) continue;
      if (last[static_cast<size_t>(j)] != 0) {
        EXPECT_EQ(t - last[static_cast<size_t>(j)], m->period_of(j));
      }
      last[static_cast<size_t>(j)] = t;
    }
  }
}

class NpbValidationTest : public ::testing::TestWithParam<int> {};

TEST_P(NpbValidationTest, AnalyticValidationAtCapacity) {
  const int k = GetParam();
  const auto m = NpbMapping::build(k, NpbMapping::capacity(k));
  ASSERT_TRUE(m.has_value());
  const MappingValidation v = m->validate();
  EXPECT_TRUE(v.ok) << v.error;
}

TEST_P(NpbValidationTest, GenericValidatorAgreesWhenCycleIsSmall) {
  const int k = GetParam();
  const auto m = NpbMapping::build(k, NpbMapping::capacity(k));
  ASSERT_TRUE(m.has_value());
  if (m->cycle_length() > 50000) GTEST_SKIP() << "cycle too long to unroll";
  const MappingValidation v = validate_mapping(*m);
  EXPECT_TRUE(v.ok) << v.error;
}

INSTANTIATE_TEST_SUITE_P(StreamCounts, NpbValidationTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6),
                         [](const auto& param_info) {
                           return "k" + std::to_string(param_info.param);
                         });

TEST(Npb, PartialLoadBelowCapacityIsValid) {
  // The Figure 7/8 configuration: 99 segments on 6 streams (below the
  // packer's capacity) must still validate.
  const auto m = NpbMapping::build(6, 99);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->validate().ok);
  EXPECT_EQ(m->streams(), 6);
  EXPECT_EQ(m->num_segments(), 99);
}

TEST(Npb, FirstOccurrencesMeetDeadlines) {
  const auto m = NpbMapping::build(3, 9);
  ASSERT_TRUE(m.has_value());
  for (Slot arrival : {0, 1, 2, 3, 11, 25}) {
    const std::vector<Slot> occ = first_occurrences(*m, arrival);
    for (Segment j = 1; j <= 9; ++j) {
      EXPECT_LE(occ[static_cast<size_t>(j)], arrival + j)
          << "S" << j << " arrival " << arrival;
    }
  }
}

}  // namespace
}  // namespace vod
