#include "protocols/batching.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vod {
namespace {

BatchingConfig quick(double rate) {
  BatchingConfig c;
  c.requests_per_hour = rate;
  c.warmup_hours = 2.0;
  c.measured_hours = 200.0;
  return c;
}

TEST(Batching, ClosedFormLimits) {
  BatchingConfig c = quick(1e9);
  // Saturation: a stream every interval -> D / beta streams.
  EXPECT_NEAR(batching_expected_bandwidth(c),
              c.video_duration_s / c.batch_interval_s, 1e-3);
  c.requests_per_hour = 1e-9;
  EXPECT_NEAR(batching_expected_bandwidth(c), 0.0, 1e-6);
}

class BatchingClosedFormTest : public ::testing::TestWithParam<double> {};

TEST_P(BatchingClosedFormTest, SimulationMatchesClosedForm) {
  BatchingConfig c = quick(GetParam());
  if (GetParam() < 5.0) c.measured_hours = 600.0;
  const BatchingResult r = run_batching_simulation(c);
  const double expected = batching_expected_bandwidth(c);
  EXPECT_NEAR(r.avg_streams, expected, std::max(0.06, 0.05 * expected));
}

INSTANTIATE_TEST_SUITE_P(Rates, BatchingClosedFormTest,
                         ::testing::Values(1.0, 10.0, 100.0, 1000.0),
                         [](const auto& param_info) {
                           return "r" +
                                  std::to_string(static_cast<int>(param_info.param));
                         });

TEST(Batching, EveryRequestIsServedWithinInterval) {
  BatchingConfig c = quick(20.0);
  c.warmup_hours = 0.0;
  c.measured_hours = 3.0;
  ScriptedArrivals arrivals({10.0, 10.5, 500.0});
  const BatchingResult r = run_batching_simulation(c, arrivals);
  EXPECT_EQ(r.requests, 3u);
  // First two share one batch; the third gets its own.
  EXPECT_EQ(r.streams_started, 2u);
}

TEST(Batching, NoArrivalsNoStreams) {
  BatchingConfig c = quick(1.0);
  c.warmup_hours = 0.0;
  c.measured_hours = 2.0;
  ScriptedArrivals arrivals({});
  const BatchingResult r = run_batching_simulation(c, arrivals);
  EXPECT_EQ(r.streams_started, 0u);
  EXPECT_DOUBLE_EQ(r.avg_streams, 0.0);
}

TEST(Batching, SaturatesAtDOverBeta) {
  BatchingConfig c = quick(5000.0);
  const BatchingResult r = run_batching_simulation(c);
  const double ceiling = c.video_duration_s / c.batch_interval_s;
  EXPECT_NEAR(r.avg_streams, ceiling, 0.02 * ceiling);
  EXPECT_LE(r.max_streams, std::ceil(ceiling) + 1.0);
}

TEST(Batching, MuchWorseThanSegmentProtocolsAtSaturation) {
  // Batching whole videos saturates at ~99 streams with the paper's wait
  // bound, two orders above DHB's ~5.2 — why segmentation matters.
  BatchingConfig c = quick(5000.0);
  const BatchingResult r = run_batching_simulation(c);
  EXPECT_GT(r.avg_streams, 50.0);
}

TEST(Batching, DeterministicForSeed) {
  const BatchingResult a = run_batching_simulation(quick(10.0));
  const BatchingResult b = run_batching_simulation(quick(10.0));
  EXPECT_DOUBLE_EQ(a.avg_streams, b.avg_streams);
}

}  // namespace
}  // namespace vod
