// Unit tests for the bump allocator behind the slot-kernel slabs
// (util/arena.h): alignment, block chaining, mark/rewind/reset semantics,
// and the block-retention property the steady-state allocation audit
// (alloc_audit_test.cc) relies on.
#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

namespace vod {
namespace {

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena a(256);
  char* x = static_cast<char*>(a.allocate(10, 1));
  double* d = a.alloc_array<double>(3);
  char* y = static_cast<char*>(a.allocate(10, 1));
  EXPECT_EQ(reinterpret_cast<uintptr_t>(d) % alignof(double), 0u);
  // Writes through one allocation must not leak into another.
  std::memset(x, 0xAB, 10);
  for (int i = 0; i < 3; ++i) d[i] = 1.5 * i;
  std::memset(y, 0xCD, 10);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(d[i], 1.5 * i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(x[i], '\xAB');
}

TEST(Arena, CountsAllocationsAndBytes) {
  Arena a(1024);
  EXPECT_EQ(a.total_allocations(), 0u);
  a.allocate(100, 8);
  a.allocate(28, 4);
  EXPECT_EQ(a.total_allocations(), 2u);
  EXPECT_EQ(a.total_bytes_requested(), 128u);
}

TEST(Arena, GrowsByChainingBlocks) {
  Arena a(64);
  EXPECT_EQ(a.total_block_allocations(), 0u);  // first block is lazy
  a.allocate(48, 8);
  const uint64_t after_first = a.total_block_allocations();
  EXPECT_GE(after_first, 1u);
  // Does not fit in the remainder of a 64-byte block: a new block chains.
  a.allocate(48, 8);
  EXPECT_GT(a.total_block_allocations(), after_first);
  EXPECT_GE(a.capacity_bytes(), 96u);
}

TEST(Arena, OversizedRequestGetsItsOwnBlock) {
  Arena a(64);
  int* big = a.alloc_array<int>(1000);  // 4000 bytes >> block size
  for (int i = 0; i < 1000; ++i) big[i] = i;
  EXPECT_EQ(big[999], 999);
}

TEST(Arena, RewindReusesStorageWithoutNewBlocks) {
  Arena a(256);
  const Arena::Mark mark = a.mark();
  void* first = a.allocate(64, 8);
  const uint64_t blocks = a.total_block_allocations();
  a.rewind(mark);
  void* again = a.allocate(64, 8);
  EXPECT_EQ(first, again);  // bump pointer went back
  EXPECT_EQ(a.total_block_allocations(), blocks);  // no new system memory
}

TEST(Arena, ResetRetainsBlocks) {
  Arena a(128);
  // Force several chained blocks, then reset: the arena must be able to
  // replay the same allocation pattern without touching the system
  // allocator again — the property that makes a warm scheduler slot
  // allocation-free.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) a.allocate(48, 8);
    const uint64_t blocks = a.total_block_allocations();
    a.reset();
    if (round > 0) {
      for (int i = 0; i < 8; ++i) a.allocate(48, 8);
      EXPECT_EQ(a.total_block_allocations(), blocks) << "round " << round;
      a.reset();
    }
  }
}

TEST(Arena, MarkRewindAcrossBlockBoundary) {
  Arena a(64);
  a.allocate(40, 8);
  const Arena::Mark mark = a.mark();
  for (int i = 0; i < 5; ++i) a.allocate(40, 8);  // spills into later blocks
  a.rewind(mark);
  // The pre-mark allocation's block is active again; post-mark blocks are
  // retained but empty.
  void* p = a.allocate(8, 8);
  EXPECT_NE(p, nullptr);
}

}  // namespace
}  // namespace vod
