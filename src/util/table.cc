#include "util/table.h"

#include <cstdio>
#include <sstream>

namespace vod {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double v : cells) out.push_back(format_double(v, precision));
  add_row(std::move(out));
}

std::string Table::to_string() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << (c ? "  " : "");
      os << std::string(widths[c] - cell.size(), ' ') << cell;
    }
    os << '\n';
  };
  emit_row(headers_);
  size_t rule = 0;
  for (size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c ? 2 : 0);
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) os << (c ? "," : "") << row[c];
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace vod
