#include "util/interval_set.h"

#include <algorithm>

#include "util/check.h"

namespace vod {

void IntervalSet::add(double lo, double hi) {
  if (hi <= lo) return;
  // Find first interval whose hi >= lo (candidates for merging).
  auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), lo,
      [](const Interval& iv, double v) { return iv.hi < v; });
  // Extend over every interval that starts at or before hi.
  auto last = first;
  while (last != intervals_.end() && last->lo <= hi) {
    lo = std::min(lo, last->lo);
    hi = std::max(hi, last->hi);
    ++last;
  }
  if (first == last) {
    intervals_.insert(first, Interval{lo, hi});
  } else {
    first->lo = lo;
    first->hi = hi;
    intervals_.erase(first + 1, last);
  }
}

void IntervalSet::subtract(double lo, double hi) {
  if (hi <= lo) return;
  std::vector<Interval> out;
  out.reserve(intervals_.size() + 1);
  for (const Interval& iv : intervals_) {
    if (iv.hi <= lo || iv.lo >= hi) {
      out.push_back(iv);
      continue;
    }
    if (iv.lo < lo) out.push_back(Interval{iv.lo, lo});
    if (iv.hi > hi) out.push_back(Interval{hi, iv.hi});
  }
  intervals_ = std::move(out);
}

double IntervalSet::measure() const {
  double total = 0.0;
  for (const Interval& iv : intervals_) total += iv.length();
  return total;
}

double IntervalSet::measure_within(double lo, double hi) const {
  if (hi <= lo) return 0.0;
  double total = 0.0;
  for (const Interval& iv : intervals_) {
    const double a = std::max(iv.lo, lo);
    const double b = std::min(iv.hi, hi);
    if (b > a) total += b - a;
  }
  return total;
}

bool IntervalSet::covers(double lo, double hi) const {
  if (hi <= lo) return true;
  for (const Interval& iv : intervals_) {
    if (iv.lo <= lo && hi <= iv.hi) return true;
  }
  return false;
}

IntervalSet IntervalSet::complement_within(double lo, double hi) const {
  IntervalSet out;
  if (hi <= lo) return out;
  double cursor = lo;
  for (const Interval& iv : intervals_) {
    if (iv.hi <= lo) continue;
    if (iv.lo >= hi) break;
    if (iv.lo > cursor) out.add(cursor, std::min(iv.lo, hi));
    cursor = std::max(cursor, iv.hi);
    if (cursor >= hi) break;
  }
  if (cursor < hi) out.add(cursor, hi);
  return out;
}

}  // namespace vod
