// Bump (arena) allocation for the slot kernel's flat slabs and scratch.
//
// The data-oriented schedule layer (DESIGN.md §14) keeps its state in flat
// structure-of-arrays slabs — contiguous typed arrays carved out of an
// Arena — instead of nested std::vectors. An Arena hands out raw storage by
// bumping a pointer through a chain of malloc'd blocks: allocation is a few
// arithmetic instructions, freeing is wholesale (rewind() / reset()), and
// blocks are retained across resets so a warmed-up arena never touches the
// system allocator again. That last property is what the steady-state
// allocation audit (tests/alloc_audit_test.cc) pins down: after warmup, a
// scheduler slot must complete with zero arena block allocations — and zero
// global operator new calls.
//
// Two usage patterns in this codebase:
//   * slab backing (SlotSchedule): long-lived arrays allocated at
//     construction; a slab that outgrows its capacity allocates a doubled
//     replacement from the arena and abandons the old storage (bump arenas
//     never free — the waste is bounded by the doubling, and growth stops
//     once capacities plateau);
//   * per-scheduler scratch (DhbScheduler): transient per-admission arrays
//     allocated under a mark()/rewind() pair and wholesale-reset each slot,
//     so steady-state admissions recycle the same warm blocks.
//
// Not thread-safe: one arena belongs to one scheduler, under the same
// single-writer discipline as everything else in the kernel (DESIGN.md §11).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/check.h"

namespace vod {

class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = size_t{1} << 16;  // 64 KiB

  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes) {
    VOD_CHECK(block_bytes >= 64);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  // Raw storage, aligned to `alignment` (a power of two). Never returns
  // nullptr; a request larger than the block size gets a dedicated block.
  void* allocate(size_t bytes, size_t alignment) {
    VOD_DCHECK(alignment != 0 && (alignment & (alignment - 1)) == 0);
    ++allocations_;
    bytes_requested_ += bytes;
    for (;;) {
      if (active_ < blocks_.size()) {
        Block& block = blocks_[active_];
        const uintptr_t base = reinterpret_cast<uintptr_t>(block.data.get());
        const uintptr_t aligned =
            (base + block.used + alignment - 1) & ~uintptr_t{alignment - 1};
        const size_t offset = static_cast<size_t>(aligned - base);
        if (offset + bytes <= block.size) {
          block.used = offset + bytes;
          return block.data.get() + offset;
        }
        // Retained block too full: advance to the next one (reset() keeps
        // the chain around precisely so this path re-walks warm storage).
        ++active_;
        continue;
      }
      new_block(bytes + alignment);
    }
  }

  // A typed slab of `count` elements. Uninitialized — callers fill it.
  // Trivial element types only: nothing here runs destructors.
  template <typename T>
  T* alloc_array(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>);
    static_assert(std::is_trivially_copyable_v<T>);
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  // --- Wholesale deallocation ------------------------------------------

  struct Mark {
    size_t block = 0;
    size_t used = 0;
  };

  // Snapshot of the bump position; rewind(mark()) frees everything
  // allocated in between without touching the system allocator.
  Mark mark() const {
    if (active_ >= blocks_.size()) return Mark{active_, 0};
    return Mark{active_, blocks_[active_].used};
  }

  void rewind(Mark m) {
    VOD_DCHECK(m.block <= blocks_.size());
    for (size_t i = m.block; i < blocks_.size(); ++i) blocks_[i].used = 0;
    if (m.block < blocks_.size()) blocks_[m.block].used = m.used;
    active_ = m.block;
  }

  // Frees every allocation but keeps the blocks: the per-slot scratch
  // reset. A warm arena reset-and-refilled each slot performs zero system
  // allocations.
  void reset() { rewind(Mark{0, 0}); }

  // --- Accounting (the allocation audit reads these) -------------------

  // allocate() calls over the arena's lifetime.
  uint64_t total_allocations() const { return allocations_; }
  // Bytes requested (not counting alignment padding or block slack).
  uint64_t total_bytes_requested() const { return bytes_requested_; }
  // System (malloc) block acquisitions — the number that must stop
  // growing once the steady state is reached.
  uint64_t total_block_allocations() const { return block_allocations_; }
  // Storage currently owned, in bytes, across all retained blocks.
  size_t capacity_bytes() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  void new_block(size_t min_bytes) {
    const size_t size = min_bytes > block_bytes_ ? min_bytes : block_bytes_;
    Block block;
    block.data = std::make_unique<std::byte[]>(size);
    block.size = size;
    blocks_.push_back(std::move(block));
    ++block_allocations_;
    active_ = blocks_.size() - 1;
  }

  std::vector<Block> blocks_;
  size_t active_ = 0;  // index of the block being bumped
  size_t block_bytes_;
  uint64_t allocations_ = 0;
  uint64_t bytes_requested_ = 0;
  uint64_t block_allocations_ = 0;
};

}  // namespace vod
