// Checked-assertion macros used across the library.
//
// VOD_CHECK is always on (simulation correctness beats raw speed; the
// simulations here are tiny compared to what a laptop can do). VOD_DCHECK
// compiles out in release builds and is used on hot inner loops only.
//
// Failure handling. By default a failed check prints the expression and
// aborts. Tests that want to assert "this check fires" without death tests
// can install a failure handler with set_check_failure_handler(); a handler
// that wants to survive the failure must leave check_failed() by throwing
// (if it returns normally, the default print-and-abort path still runs, so
// a buggy handler can never silently continue past a failed invariant).
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace vod {

// Called with the failed expression text, source location, and the optional
// VOD_CHECK_MSG message (empty string when there is none).
using CheckFailureHandler = void (*)(const char* expr, const char* file,
                                     int line, const char* msg);

namespace detail {

// The one piece of cross-thread shared state in this header. It is a
// single atomic slot rather than a mutex-guarded field on purpose:
// check_failed() must stay async-signal-ish (no locks on the abort path,
// callable from any worker at any point), so publication is a lock-free
// exchange/load and the installed handler must itself be thread-safe.
// Nothing here is VOD_GUARDED_BY anything — there is no mutex to name —
// which is exactly what the annotation layer documents as the boundary of
// compile-time checking (DESIGN.md §11).
inline std::atomic<CheckFailureHandler>& check_failure_handler_slot() {
  static std::atomic<CheckFailureHandler> slot{nullptr};
  return slot;
}

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  if (CheckFailureHandler handler = check_failure_handler_slot().load()) {
    handler(expr, file, line, msg);
  }
  // Best-effort diagnostic on the way down; a failed write to stderr must
  // not mask the abort (hence the discarded return value).
  (void)std::fprintf(stderr, "VOD_CHECK failed: %s at %s:%d%s%s\n", expr,
                     file, line, msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace detail

// Installs `handler` (nullptr restores the abort default) and returns the
// previously installed handler. Thread-safe; the handler is process-global.
inline CheckFailureHandler set_check_failure_handler(
    CheckFailureHandler handler) {
  return detail::check_failure_handler_slot().exchange(handler);
}

}  // namespace vod

#define VOD_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::vod::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
    }                                                                \
  } while (0)

#define VOD_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::vod::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                \
  } while (0)

#ifdef NDEBUG
#define VOD_DCHECK(expr) ((void)0)
#else
#define VOD_DCHECK(expr) VOD_CHECK(expr)
#endif
