// Checked-assertion macros used across the library.
//
// VOD_CHECK is always on (simulation correctness beats raw speed; the
// simulations here are tiny compared to what a laptop can do). VOD_DCHECK
// compiles out in release builds and is used on hot inner loops only.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace vod::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "VOD_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace vod::detail

#define VOD_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::vod::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
    }                                                                \
  } while (0)

#define VOD_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::vod::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                \
  } while (0)

#ifdef NDEBUG
#define VOD_DCHECK(expr) ((void)0)
#else
#define VOD_DCHECK(expr) VOD_CHECK(expr)
#endif
