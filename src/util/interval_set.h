// A set of disjoint half-open intervals [lo, hi) over doubles.
//
// Used by the reactive protocols (stream tapping, patching) to compute which
// parts of a video a new client can "tap" from streams that are already live:
// the client's own stream only has to carry the complement of the covered
// set. Intervals are kept sorted, disjoint and coalesced.
#pragma once

#include <vector>

namespace vod {

struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  double length() const { return hi - lo; }
  bool empty() const { return hi <= lo; }
  friend bool operator==(const Interval&, const Interval&) = default;
};

class IntervalSet {
 public:
  IntervalSet() = default;

  // Adds [lo, hi), merging with any overlapping or adjacent intervals.
  // Empty or inverted ranges are ignored.
  void add(double lo, double hi);

  // Removes [lo, hi) from the set (set difference).
  void subtract(double lo, double hi);

  // Total measure of the set.
  double measure() const;

  // Measure of the intersection of this set with [lo, hi).
  double measure_within(double lo, double hi) const;

  // True when [lo, hi) is entirely contained in the set.
  bool covers(double lo, double hi) const;

  // The complement of this set within [lo, hi), as a fresh set.
  IntervalSet complement_within(double lo, double hi) const;

  bool empty() const { return intervals_.empty(); }
  void clear() { intervals_.clear(); }
  const std::vector<Interval>& intervals() const { return intervals_; }

 private:
  std::vector<Interval> intervals_;  // sorted by lo, pairwise disjoint
};

}  // namespace vod
