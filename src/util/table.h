// Fixed-width console table writer used by the benchmark and example
// binaries to print paper-style tables (one row per arrival rate, one
// column per protocol).
#pragma once

#include <string>
#include <vector>

namespace vod {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Appends a row. Cells beyond the header count are dropped; missing cells
  // render empty.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  void add_numeric_row(const std::vector<double>& cells, int precision = 3);

  // Renders the table with aligned columns and a header rule.
  std::string to_string() const;

  // Renders as comma-separated values (headers first).
  std::string to_csv() const;

  // Prints to stdout.
  void print() const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed precision, trimming to a compact width.
std::string format_double(double v, int precision = 3);

}  // namespace vod
