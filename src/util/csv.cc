#include "util/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace vod {

bool write_csv(const std::string& path, const std::vector<std::string>& header,
               const std::vector<std::vector<double>>& rows) {
  std::ofstream out(path);
  if (!out) return false;
  if (!header.empty()) {
    for (size_t c = 0; c < header.size(); ++c) {
      out << (c ? "," : "") << header[c];
    }
    out << '\n';
  }
  out.precision(12);
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) out << (c ? "," : "") << row[c];
    out << '\n';
  }
  return static_cast<bool>(out);
}

bool read_csv(const std::string& path, std::vector<std::vector<double>>* rows) {
  std::ifstream in(path);
  if (!in) return false;
  rows->clear();
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<double> row;
    std::stringstream ss(line);
    std::string cell;
    bool ok = true;
    while (std::getline(ss, cell, ',')) {
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str()) {
        ok = false;
        break;
      }
      row.push_back(v);
    }
    if (!ok) {
      // Allow exactly one header line.
      if (first) {
        first = false;
        continue;
      }
      return false;
    }
    first = false;
    rows->push_back(std::move(row));
  }
  return true;
}

}  // namespace vod
