// Minimal CSV reader/writer for numeric column data (VBR traces, bench
// output). No quoting support — the library only ever emits plain numbers
// and identifiers.
#pragma once

#include <string>
#include <vector>

namespace vod {

// Writes rows of doubles with an optional header line. Returns false on I/O
// failure.
bool write_csv(const std::string& path, const std::vector<std::string>& header,
               const std::vector<std::vector<double>>& rows);

// Reads a numeric CSV. If the first line fails to parse as numbers it is
// treated as a header and skipped. Returns false on I/O failure.
bool read_csv(const std::string& path, std::vector<std::vector<double>>* rows);

}  // namespace vod
