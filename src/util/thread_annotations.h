// Clang Thread Safety Analysis annotations and the annotated lock
// primitives the library's concurrent code uses.
//
// Under clang the VOD_* macros below expand to the thread-safety
// attributes (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) and
// the build enables `-Wthread-safety -Werror=thread-safety`
// (CMakeLists.txt), so an unguarded access to a VOD_GUARDED_BY field, a
// missing lock on a VOD_REQUIRES function, or a lock leaked out of a
// scope is a *compile error* — the data-race analogue of the runtime
// ScheduleAuditor: checked by construction, not by a nightly TSan run.
// Under other compilers the macros expand to nothing and the wrappers
// below are zero-cost veneers over the std primitives.
//
// Locked code in this library therefore uses vod::Mutex / vod::MutexLock /
// vod::CondVar instead of the bare std types: std::mutex carries no
// annotations, so the analysis cannot follow it. The wrappers add nothing
// else — no fairness, no recursion, no timed waits — because nothing here
// needs them (DESIGN.md §11).
//
// Condition-variable idiom under the analysis: predicate *lambdas* passed
// to wait() are analyzed as separate functions with no lock context and
// would warn on every guarded read, so annotated code spells the loop out:
//
//   MutexLock lock(mutex_);
//   while (!ready_) cv_.wait(lock);   // reads of ready_ checked, in scope
#pragma once

#include <condition_variable>
#include <mutex>

// Attribute plumbing. Thread safety attributes are a clang extension; the
// analysis itself only runs under -Wthread-safety (clang), every other
// compiler sees plain declarations.
#if defined(__clang__)
#define VOD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VOD_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// A type that acts as a lock (a "capability" in analysis terms).
#define VOD_CAPABILITY(x) VOD_THREAD_ANNOTATION(capability(x))
// An RAII type that acquires in its constructor, releases in its dtor.
#define VOD_SCOPED_CAPABILITY VOD_THREAD_ANNOTATION(scoped_lockable)
// Field may only be read or written while holding the named capability.
#define VOD_GUARDED_BY(x) VOD_THREAD_ANNOTATION(guarded_by(x))
// Pointer field whose *pointee* is protected by the named capability.
#define VOD_PT_GUARDED_BY(x) VOD_THREAD_ANNOTATION(pt_guarded_by(x))
// Function requires the capability held on entry (and does not release).
#define VOD_REQUIRES(...) \
  VOD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define VOD_REQUIRES_SHARED(...) \
  VOD_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
// Function acquires / releases the capability.
#define VOD_ACQUIRE(...) VOD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define VOD_RELEASE(...) VOD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define VOD_TRY_ACQUIRE(...) \
  VOD_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// Function must NOT be entered with the capability held (deadlock guard).
#define VOD_EXCLUDES(...) VOD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Lock-ordering declarations between capabilities.
#define VOD_ACQUIRED_BEFORE(...) \
  VOD_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define VOD_ACQUIRED_AFTER(...) \
  VOD_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
// Runtime assertion that the capability is held (trusted by the analysis).
#define VOD_ASSERT_CAPABILITY(x) VOD_THREAD_ANNOTATION(assert_capability(x))
// Function returns a reference to the named capability.
#define VOD_RETURN_CAPABILITY(x) VOD_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch: body is not analyzed. Every use needs a comment saying why.
#define VOD_NO_THREAD_SAFETY_ANALYSIS \
  VOD_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace vod {

class CondVar;

// Annotated exclusive mutex. Prefer MutexLock over manual lock()/unlock().
class VOD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() VOD_ACQUIRE() { mu_.lock(); }
  void unlock() VOD_RELEASE() { mu_.unlock(); }
  bool try_lock() VOD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

// RAII scope lock over a Mutex; the form CondVar::wait() accepts.
class VOD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) VOD_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() VOD_RELEASE() {}  // lock_ releases; body for attribute placement

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// Condition variable paired with Mutex/MutexLock. wait() atomically
// releases and reacquires the lock held by `lock` (invisible to the
// analysis, which treats the capability as held across the call — exactly
// the guarantee the caller observes on both sides of the wait). Callers
// re-test their predicate in a while loop, spelled out (see header note).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace vod
