// Debug-build checker for the library's single-writer discipline.
//
// Most mutable state here is *not* locked — it is owned: a DhbScheduler, a
// VodServer, an EventQueue, or one shard of the multi-video engine is
// mutated by exactly one thread at a time (DESIGN.md §8/§11). Clang's
// thread-safety analysis cannot express "externally serialized", so this
// header supplies the runtime half of the contract: a ThreadChecker binds
// to the first thread that exercises the owning object and
// VOD_DCHECK_SERIAL fails fast if any other thread follows — turning a
// silent data race into a deterministic check failure in Debug builds.
//
// Binding is first-use, not construction: the multi-video engine builds
// its per-shard state on the orchestrator thread and hands it to whichever
// worker runs the shard, so construction-thread binding would misfire on a
// legal handoff. detach() re-arms the checker for an explicit ownership
// transfer (e.g. a result handed back to the orchestrator for merging).
//
// Copy/move semantics: a copied or moved-to checker starts unbound — the
// new object is a new ownership scope. VOD_DCHECK compiles away under
// NDEBUG, so release builds pay nothing; calls_serial() itself is a single
// relaxed-CAS-or-load either way.
#pragma once

#include <atomic>
#include <thread>

#include "util/check.h"

namespace vod {

class ThreadChecker {
 public:
  ThreadChecker() = default;
  // A new copy / moved-to checker guards a fresh ownership scope.
  ThreadChecker(const ThreadChecker&) {}
  ThreadChecker& operator=(const ThreadChecker&) { return *this; }

  // True when called on the owning thread; the first call binds. Safe to
  // call concurrently (the losing thread of a bind race sees `false`).
  bool calls_serial() const {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id bound;  // default id: not bound yet
    if (owner_.compare_exchange_strong(bound, self,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
      return true;  // we bound it
    }
    return bound == self;
  }

  // Releases ownership; the next calls_serial() binds to its caller. Call
  // only from the owning thread (or before any use).
  void detach() { owner_.store(std::thread::id(), std::memory_order_relaxed); }

 private:
  mutable std::atomic<std::thread::id> owner_{};
};

}  // namespace vod

// Asserts the single-writer contract on the hot entry points of owned
// mutable state. Debug builds only (VOD_DCHECK); see header comment.
#define VOD_DCHECK_SERIAL(checker) VOD_DCHECK((checker).calls_serial())
