// A small reusable fixed-size worker pool.
//
// The simulation engines shard their work into independent tasks (the
// multi-video server shards its catalog; see server/multi_video.cc) and
// need nothing fancier than "run these N closures on K threads and wait".
// ThreadPool provides exactly that: submit() enqueues a task, wait_idle()
// blocks until the queue drains, and parallel_for() is the fork-join
// convenience the engines use. Threads are started once in the constructor
// and joined in the destructor, so a pool can be reused across many
// parallel_for() rounds without re-spawning.
//
// Determinism contract: the pool guarantees only completion, never
// ordering. Callers that must be deterministic (everything in this
// library) give each task its own disjoint output slot and do any
// order-sensitive reduction sequentially after parallel_for() returns.
//
// Tasks must not throw (the library reports failure through VOD_CHECK,
// which aborts) and must not submit to the pool they run on.
//
// The pool's shared state is the library's reference user of the
// thread-safety annotation layer (util/thread_annotations.h): every field
// touched by more than one thread is VOD_GUARDED_BY(mutex_), and clang
// builds enforce the locking discipline at compile time.
#pragma once

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace vod {

// Resolves a user-facing thread-count knob: n >= 1 means exactly n
// threads; 0 means auto (one per hardware thread, at least 1).
int resolve_num_threads(int requested);

class ThreadPool {
 public:
  // Starts `num_threads` (>= 1) workers immediately.
  explicit ThreadPool(int num_threads);
  // Blocks until every submitted task has run, then joins the workers.
  ~ThreadPool() VOD_EXCLUDES(mutex_);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues one task for execution on some worker.
  void submit(std::function<void()> task) VOD_EXCLUDES(mutex_);

  // Blocks until the queue is empty and no task is running.
  void wait_idle() VOD_EXCLUDES(mutex_);

  // Runs fn(0), ..., fn(num_tasks - 1) across the pool and blocks until
  // all calls have returned. Indices are claimed dynamically, so long and
  // short tasks balance; no two calls run fn on the same index.
  void parallel_for(int num_tasks, const std::function<void(int)>& fn)
      VOD_EXCLUDES(mutex_);

 private:
  void worker_loop() VOD_EXCLUDES(mutex_);

  Mutex mutex_;
  CondVar work_available_;
  CondVar idle_;
  std::deque<std::function<void()>> queue_ VOD_GUARDED_BY(mutex_);
  int active_ VOD_GUARDED_BY(mutex_) = 0;
  bool stopping_ VOD_GUARDED_BY(mutex_) = false;
  // Started in the constructor, joined in the destructor; never otherwise
  // touched after construction, so not guarded.
  std::vector<std::thread> workers_;
};

}  // namespace vod
