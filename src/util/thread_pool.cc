#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace vod {

int resolve_num_threads(int requested) {
  VOD_CHECK_MSG(requested >= 0, "thread count must be >= 0 (0 = auto)");
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

ThreadPool::ThreadPool(int num_threads) {
  VOD_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    VOD_CHECK_MSG(!stopping_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::parallel_for(int num_tasks,
                              const std::function<void(int)>& fn) {
  if (num_tasks <= 0) return;
  // One queue entry per index; fn is borrowed by reference, which is safe
  // because this function does not return before every task has finished.
  std::mutex done_mutex;
  std::condition_variable done;
  int remaining = num_tasks;
  for (int i = 0; i < num_tasks; ++i) {
    submit([&fn, &done_mutex, &done, &remaining, i] {
      fn(i);
      std::unique_lock<std::mutex> lock(done_mutex);
      if (--remaining == 0) done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done.wait(lock, [&remaining] { return remaining == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace vod
