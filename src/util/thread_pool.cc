#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace vod {

int resolve_num_threads(int requested) {
  VOD_CHECK_MSG(requested >= 0, "thread count must be >= 0 (0 = auto)");
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

ThreadPool::ThreadPool(int num_threads) {
  VOD_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    VOD_CHECK_MSG(!stopping_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  // Predicate spelled out (not a wait-lambda) so the thread-safety
  // analysis checks the guarded reads in lock scope; see
  // util/thread_annotations.h.
  while (!(queue_.empty() && active_ == 0)) idle_.wait(lock);
}

void ThreadPool::parallel_for(int num_tasks,
                              const std::function<void(int)>& fn) {
  if (num_tasks <= 0) return;
  // One queue entry per index; fn is borrowed by reference, which is safe
  // because this function does not return before every task has finished.
  // (Locals cannot carry VOD_GUARDED_BY — the analysis tracks the
  // MutexLock scopes below instead.)
  Mutex done_mutex;
  CondVar done;
  int remaining = num_tasks;
  for (int i = 0; i < num_tasks; ++i) {
    submit([&fn, &done_mutex, &done, &remaining, i] {
      fn(i);
      MutexLock lock(done_mutex);
      if (--remaining == 0) done.notify_all();
    });
  }
  MutexLock lock(done_mutex);
  while (remaining != 0) done.wait(lock);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_available_.wait(lock);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace vod
