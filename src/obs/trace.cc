#include "obs/trace.h"

#include <algorithm>
#include <chrono>

#include "util/check.h"

namespace vod::obs {

namespace {

// THE wall-clock exception (DESIGN.md §10/§11). process_epoch() and
// wall_now_ns() are the library's only sanctioned wall-clock reads: they
// feed the kWall trace track — profiling spans on their own exporter
// timeline — and nothing else. Wall time never reaches a slot-time result;
// the determinism linter (scripts/lint_determinism.py) bans these reads
// everywhere and allowlists exactly this file
// (scripts/determinism_allowlist.txt). Do not add wall-clock reads
// elsewhere; widen the allowlist only with a DESIGN.md §11 justification.
std::chrono::steady_clock::time_point process_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

thread_local ObsSink* t_current_sink = nullptr;

}  // namespace

int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - process_epoch())
      .count();
}

TraceBuffer::TraceBuffer(size_t capacity) : capacity_(capacity) {
  VOD_CHECK_MSG(capacity >= 1, "trace buffer needs capacity >= 1");
  ring_.reserve(std::min<size_t>(capacity, 4096));
}

void TraceBuffer::set_track(uint32_t track) {
  VOD_DCHECK_SERIAL(writer_);
  track_ = track;
}

void TraceBuffer::emit(const TraceEvent& event) {
  VOD_DCHECK_SERIAL(writer_);
  ++emitted_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  // Full: keep the most recent `capacity_` events, oldest overwritten.
  ring_[next_] = event;
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // next_ is the oldest retained event once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

ObsSink* current_sink() { return t_current_sink; }

ScopedObsSink::ScopedObsSink(ObsSink* sink) : previous_(t_current_sink) {
  t_current_sink = sink;
}

ScopedObsSink::~ScopedObsSink() { t_current_sink = previous_; }

void emit_instant(TraceBuffer* trace, const char* name, const char* category,
                  int64_t slot, std::initializer_list<TraceArg> args) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = TracePhase::kInstant;
  e.clock = TraceClock::kSlot;
  e.ts = slot;
  e.track = trace->track();
  for (const TraceArg& a : args) {
    if (e.num_args == TraceEvent::kMaxArgs) break;
    e.args[e.num_args++] = a;
  }
  trace->emit(e);
}

void emit_counter(TraceBuffer* trace, const char* name, const char* category,
                  int64_t slot, int64_t value) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = TracePhase::kCounter;
  e.clock = TraceClock::kSlot;
  e.ts = slot;
  e.track = trace->track();
  e.num_args = 1;
  e.args[0] = TraceArg{"value", value};
  trace->emit(e);
}

WallSpan::WallSpan(const char* name, const char* category)
    : trace_(nullptr), name_(name), category_(category) {
  if (ObsSink* sink = current_sink()) {
    if (sink->trace != nullptr) {
      trace_ = sink->trace;
      start_ns_ = wall_now_ns();
    }
  }
}

WallSpan::~WallSpan() {
  if (trace_ == nullptr) return;
  TraceEvent e;
  e.name = name_;
  e.category = category_;
  e.phase = TracePhase::kComplete;
  e.clock = TraceClock::kWall;
  e.ts = start_ns_;
  e.dur = wall_now_ns() - start_ns_;
  e.track = trace_->track();
  trace_->emit(e);
}

void EngineObserver::prepare(size_t num_shards) {
  registry_.prepare(num_shards);
  while (traces_.size() < num_shards) {
    traces_.push_back(
        std::make_unique<TraceBuffer>(options_.trace_capacity_per_shard));
  }
}

ObsSink EngineObserver::sink(size_t shard) {
  VOD_CHECK_MSG(shard < traces_.size(),
                "EngineObserver::prepare() must cover every shard");
  // Ownership handoff: the caller (the worker about to run this shard)
  // becomes the shard's sole writer. Safe to detach here — sink() is only
  // called when no other thread touches the shard (the previous run's
  // workers joined before this run's started).
  registry_.shard(shard).detach_writer();
  traces_[shard]->detach_writer();
  return ObsSink{&registry_.shard(shard), traces_[shard].get()};
}

TraceBuffer& EngineObserver::trace(size_t shard) {
  VOD_CHECK_MSG(shard < traces_.size(),
                "EngineObserver::prepare() must cover every shard");
  return *traces_[shard];
}

std::vector<const TraceBuffer*> EngineObserver::trace_buffers() const {
  std::vector<const TraceBuffer*> out;
  out.reserve(traces_.size());
  for (const auto& t : traces_) out.push_back(t.get());
  return out;
}

}  // namespace vod::obs
