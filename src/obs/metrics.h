// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// The instrumentation layer's data plane. A MetricShard is a flat,
// deterministic-order (std::map) collection of named metrics owned by one
// writer at a time — a scheduler, a simulation driver, or one worker of
// the sharded multi-video engine. A MetricsRegistry owns one shard per
// engine shard; because shards are written without any cross-thread
// sharing and merged in fixed shard-index order, recording is contention-
// free and every merged value is bit-identical at any `num_threads`
// (counters and histogram bins are integer sums; gauges merge by summing
// in shard order).
//
// Metric handles (Counter*, Gauge*, HistogramMetric*) returned by the
// find-or-create accessors are stable for the shard's lifetime (std::map
// nodes never move), so hot paths pay one pointer indirection per update —
// this is what lets DhbScheduler keep its lifetime counters *in* a shard
// while the public total_*() accessors stay thin views over it.
//
// This header is always compiled: the registry is the accounting layer the
// scheduler's counters live in. Only the VOD_TRACE_* event macros
// (obs/trace.h) compile away under VOD_OBSERVE=OFF.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/stats.h"
#include "util/thread_checker.h"

namespace vod::obs {

class Counter {
 public:
  void inc(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// A fixed-bucket histogram plus a running sum, the shape both the
// Prometheus histogram exposition and the JSONL snapshot need. Buckets are
// vod::Histogram semantics: [lo, hi) with clamping edge bins.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, size_t bins)
      : hist_(lo, hi, bins) {}

  void observe(double x) {
    hist_.add(x);
    sum_ += x;
  }
  void observe_n(double x, uint64_t n) {
    hist_.add_n(x, n);
    sum_ += x * static_cast<double>(n);
  }

  uint64_t count() const { return hist_.count(); }
  double sum() const { return sum_; }
  double quantile(double q) const { return hist_.quantile(q); }
  const Histogram& histogram() const { return hist_; }

  // Same-spec bin-wise merge (the per-shard merge point).
  void merge(const HistogramMetric& other) {
    hist_.merge(other.hist_);
    sum_ += other.sum_;
  }

 private:
  Histogram hist_;
  double sum_ = 0.0;
};

// One writer's flat metric namespace. Find-or-create accessors return
// stable handles; exporters iterate the maps in name order, so output
// order is deterministic regardless of creation order.
//
// Concurrency contract: one writer at a time, no locks (DESIGN.md §11).
// The find-or-create accessors and merge_from() assert the single-writer
// discipline in Debug builds; const reads are unchecked (the engine only
// reads shards after its workers have joined). Ownership moves between
// threads via detach_writer() — EngineObserver::sink() calls it at the
// orchestrator→worker handoff, re-arming the checker for the new writer.
class MetricShard {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  // Find-or-create; an existing histogram must have the identical
  // (lo, hi, bins) spec (VOD_CHECK otherwise).
  HistogramMetric* histogram(const std::string& name, double lo, double hi,
                             size_t bins);

  // Read-only lookups; nullptr when absent.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const HistogramMetric* find_histogram(const std::string& name) const;

  // Value of a counter, or 0 when absent (exporter/test convenience).
  uint64_t counter_value(const std::string& name) const;

  // Adds every metric of `other` into this shard: counters and histogram
  // bins add, gauges sum. Deterministic for a fixed merge order.
  void merge_from(const MetricShard& other);

  // Releases the Debug-build writer binding so the next mutating call may
  // come from a different thread. Call only at a quiescent handoff point.
  void detach_writer() { writer_.detach(); }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, HistogramMetric>& histograms() const {
    return histograms_;
  }

 private:
  ThreadChecker writer_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, HistogramMetric> histograms_;
};

// One shard per engine shard / worker lane. prepare() is called once by
// the orchestrating thread before workers start; workers then touch
// disjoint shards only, so no locking is needed anywhere.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  explicit MetricsRegistry(size_t num_shards) { prepare(num_shards); }

  // Grows the shard set to at least `num_shards`. Existing shards (and
  // every handle into them) stay valid. Not thread-safe: call from the
  // orchestrator before handing shards to workers.
  void prepare(size_t num_shards);

  size_t num_shards() const { return shards_.size(); }
  MetricShard& shard(size_t i);
  const MetricShard& shard(size_t i) const;

  // All shards folded in ascending shard order — the deterministic merge
  // the engine's bit-identity contract relies on.
  MetricShard merged() const;

 private:
  std::vector<std::unique_ptr<MetricShard>> shards_;
};

}  // namespace vod::obs
