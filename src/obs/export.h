// Exporters for the instrumentation layer.
//
// Three formats, each with a string builder (unit-testable) and a file
// writer:
//   * Chrome trace-event JSON — loadable in chrome://tracing and Perfetto.
//     Slot-domain events land on pid 1 ("slot time", 1 slot rendered as
//     1 ms so the timeline reads in slots); wall-domain profiling spans
//     land on pid 2 ("wall clock", real microseconds). The tid is the
//     event's track (the engine stamps video ranks).
//   * Prometheus text exposition — counters, gauges, and histograms in the
//     standard format (# TYPE comments, cumulative le buckets, _sum and
//     _count series). Names are sanitized to [a-zA-Z0-9_:] and prefixed
//     "vod_" unless they already carry it.
//   * JSONL snapshots — one self-describing JSON object per metric per
//     line; the format downstream notebooks diff across runs.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vod::obs {

// Chrome trace-event JSON for the given buffers (e.g. one per engine
// shard), events merged in buffer order.
std::string chrome_trace_json(const std::vector<const TraceBuffer*>& buffers);

// Prometheus text exposition of one (merged) shard.
std::string prometheus_text(const MetricShard& metrics);

// JSONL snapshot of one (merged) shard.
std::string metrics_jsonl(const MetricShard& metrics);

// File writers for the above; false (with a stderr note) when the path
// cannot be opened.
bool write_chrome_trace(const std::string& path,
                        const std::vector<const TraceBuffer*>& buffers);
bool write_prometheus(const std::string& path, const MetricShard& metrics);
bool write_metrics_jsonl(const std::string& path, const MetricShard& metrics);

}  // namespace vod::obs
