#include "obs/export.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace vod::obs {
namespace {

// Chrome's trace viewer expects microsecond timestamps. One slot renders
// as one millisecond so a Perfetto timeline reads directly in slots.
constexpr int64_t kUsPerSlot = 1000;
constexpr int kSlotPid = 1;
constexpr int kWallPid = 2;

void append_json_string(std::string* out, const char* s) {
  out->push_back('"');
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, std::min<size_t>(static_cast<size_t>(n),
                                               sizeof(buf) - 1));
}

void append_event(std::string* out, const TraceEvent& e, bool* first) {
  if (!*first) *out += ",\n";
  *first = false;
  *out += "  {\"name\":";
  append_json_string(out, e.name);
  *out += ",\"cat\":";
  append_json_string(out, e.category[0] != '\0' ? e.category : "vod");
  const bool wall = e.clock == TraceClock::kWall;
  const char* ph = e.phase == TracePhase::kComplete ? "X"
                   : e.phase == TracePhase::kCounter ? "C"
                                                     : "i";
  appendf(out, ",\"ph\":\"%s\"", ph);
  if (wall) {
    appendf(out, ",\"ts\":%.3f", static_cast<double>(e.ts) / 1000.0);
    if (e.phase == TracePhase::kComplete) {
      appendf(out, ",\"dur\":%.3f", static_cast<double>(e.dur) / 1000.0);
    }
  } else {
    appendf(out, ",\"ts\":%" PRId64, e.ts * kUsPerSlot);
    if (e.phase == TracePhase::kComplete) {
      appendf(out, ",\"dur\":%" PRId64, e.dur * kUsPerSlot);
    }
  }
  appendf(out, ",\"pid\":%d,\"tid\":%u", wall ? kWallPid : kSlotPid, e.track);
  if (e.phase == TracePhase::kInstant) *out += ",\"s\":\"t\"";
  if (e.num_args > 0) {
    *out += ",\"args\":{";
    for (uint32_t i = 0; i < e.num_args; ++i) {
      if (i > 0) *out += ",";
      append_json_string(out, e.args[i].key);
      appendf(out, ":%" PRId64, e.args[i].value);
    }
    *out += "}";
  }
  *out += "}";
}

void append_process_metadata(std::string* out, int pid, const char* name,
                             bool* first) {
  if (!*first) *out += ",\n";
  *first = false;
  appendf(out, "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,", pid);
  *out += "\"args\":{\"name\":";
  append_json_string(out, name);
  *out += "}}";
}

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*, conventionally
// prefixed with the subsystem name.
std::string prom_name(const std::string& name) {
  std::string out = name.rfind("vod_", 0) == 0 ? "" : "vod_";
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0])) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

bool write_string(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace

std::string chrome_trace_json(
    const std::vector<const TraceBuffer*>& buffers) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  append_process_metadata(&out, kSlotPid, "slot time (1 slot = 1 ms)", &first);
  append_process_metadata(&out, kWallPid, "wall clock", &first);
  uint64_t dropped = 0;
  for (const TraceBuffer* buffer : buffers) {
    if (buffer == nullptr) continue;
    dropped += buffer->dropped();
    for (const TraceEvent& e : buffer->snapshot()) {
      append_event(&out, e, &first);
    }
  }
  out += "\n],\n\"displayTimeUnit\":\"ms\",\n";
  appendf(&out, "\"otherData\":{\"droppedEvents\":\"%" PRIu64 "\"}}\n",
          dropped);
  return out;
}

std::string prometheus_text(const MetricShard& metrics) {
  std::string out;
  for (const auto& [name, counter] : metrics.counters()) {
    const std::string n = prom_name(name);
    appendf(&out, "# TYPE %s counter\n", n.c_str());
    appendf(&out, "%s %" PRIu64 "\n", n.c_str(), counter.value());
  }
  for (const auto& [name, gauge] : metrics.gauges()) {
    const std::string n = prom_name(name);
    appendf(&out, "# TYPE %s gauge\n", n.c_str());
    appendf(&out, "%s %.10g\n", n.c_str(), gauge.value());
  }
  for (const auto& [name, hist] : metrics.histograms()) {
    const std::string n = prom_name(name);
    const Histogram& h = hist.histogram();
    appendf(&out, "# TYPE %s histogram\n", n.c_str());
    uint64_t cum = 0;
    for (size_t i = 0; i < h.bins().size(); ++i) {
      cum += h.bins()[i];
      const double le = h.lo() + h.bin_width() * static_cast<double>(i + 1);
      appendf(&out, "%s_bucket{le=\"%.10g\"} %" PRIu64 "\n", n.c_str(), le,
              cum);
    }
    appendf(&out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", n.c_str(),
            hist.count());
    appendf(&out, "%s_sum %.10g\n", n.c_str(), hist.sum());
    appendf(&out, "%s_count %" PRIu64 "\n", n.c_str(), hist.count());
  }
  return out;
}

std::string metrics_jsonl(const MetricShard& metrics) {
  std::string out;
  for (const auto& [name, counter] : metrics.counters()) {
    out += "{\"kind\":\"counter\",\"name\":";
    append_json_string(&out, name.c_str());
    appendf(&out, ",\"value\":%" PRIu64 "}\n", counter.value());
  }
  for (const auto& [name, gauge] : metrics.gauges()) {
    out += "{\"kind\":\"gauge\",\"name\":";
    append_json_string(&out, name.c_str());
    appendf(&out, ",\"value\":%.10g}\n", gauge.value());
  }
  for (const auto& [name, hist] : metrics.histograms()) {
    out += "{\"kind\":\"histogram\",\"name\":";
    append_json_string(&out, name.c_str());
    const Histogram& h = hist.histogram();
    appendf(&out, ",\"count\":%" PRIu64 ",\"sum\":%.10g,\"lo\":%.10g,"
                  "\"bin_width\":%.10g,\"bins\":[",
            hist.count(), hist.sum(), h.lo(), h.bin_width());
    for (size_t i = 0; i < h.bins().size(); ++i) {
      appendf(&out, "%s%" PRIu64, i > 0 ? "," : "", h.bins()[i]);
    }
    out += "]}\n";
  }
  return out;
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<const TraceBuffer*>& buffers) {
  return write_string(path, chrome_trace_json(buffers));
}

bool write_prometheus(const std::string& path, const MetricShard& metrics) {
  return write_string(path, prometheus_text(metrics));
}

bool write_metrics_jsonl(const std::string& path,
                         const MetricShard& metrics) {
  return write_string(path, metrics_jsonl(metrics));
}

}  // namespace vod::obs
