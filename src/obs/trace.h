// Slot-time trace events: bounded ring buffers, an ambient per-thread sink,
// and the VOD_TRACE_* macros the library's hot paths use.
//
// Clock domains. Simulation *slot time* is the primary clock: an event's
// timestamp is the slot number at which it happened, and the Chrome-trace
// exporter renders one slot as one millisecond so a Perfetto timeline reads
// directly in slots. Wall-clock *profiling spans* (shard kernels, export
// passes) are a separate domain — steady_clock nanoseconds since a
// process-wide epoch — and are exported onto their own process track so the
// two timelines never mix. Slot-domain events are deterministic for a fixed
// seed; wall-domain events are not (and nothing feeds them back into the
// simulation, so results stay bit-identical with tracing on or off).
//
// Recording is sink-based: install an ObsSink (a MetricShard plus a
// TraceBuffer, either optional) for the current thread with ScopedObsSink,
// and every VOD_TRACE_* / VOD_METRIC_* macro below records into it. With no
// sink installed the macros cost one thread-local load and a branch; when
// the library is configured with VOD_OBSERVE=OFF they compile to nothing
// at all (the disabled-instrumentation path the ≤2% overhead budget of
// DESIGN.md §10 refers to).
//
// TraceBuffer is a fixed-capacity ring that keeps the most recent events
// and counts what it dropped — tracing a multi-day simulation is bounded
// by construction, never by luck.
//
// Concurrency contract: a TraceBuffer has one writer at a time and no
// locks (DESIGN.md §11). The sharded engine gives every shard its own
// ring; EngineObserver::sink() re-arms the Debug-build writer check at
// the orchestrator→worker handoff, and the exporters read only after the
// workers have joined.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "obs/metrics.h"
#include "util/thread_checker.h"

namespace vod::obs {

enum class TracePhase : uint8_t {
  kComplete,  // Chrome 'X': a span with a duration
  kInstant,   // Chrome 'i': a point event
  kCounter,   // Chrome 'C': a sampled counter track
};

enum class TraceClock : uint8_t {
  kSlot,  // ts = simulation slot number
  kWall,  // ts = steady_clock ns since the process trace epoch
};

// Numeric key/value pair attached to an event. Keys are expected to be
// string literals (the buffer stores the pointer, not a copy).
struct TraceArg {
  const char* key;
  int64_t value;
};

struct TraceEvent {
  static constexpr size_t kMaxArgs = 4;

  const char* name = "";      // string literal; not owned
  const char* category = "";  // string literal; not owned
  TracePhase phase = TracePhase::kInstant;
  TraceClock clock = TraceClock::kSlot;
  int64_t ts = 0;   // slot number or wall ns (see clock)
  int64_t dur = 0;  // wall ns; kComplete only
  uint32_t track = 0;  // rendered as the Chrome tid (engine: video rank)
  uint32_t num_args = 0;
  TraceArg args[kMaxArgs] = {};
};

// Nanoseconds since the process-wide trace epoch (the first call). All
// buffers share the epoch, so wall spans from different shards align.
int64_t wall_now_ns();

class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = size_t{1} << 15);

  void emit(const TraceEvent& event);

  // Number of retained events (<= capacity).
  size_t size() const { return ring_.size(); }
  size_t capacity() const { return capacity_; }
  // Events overwritten because the ring was full.
  uint64_t dropped() const { return dropped_; }
  // Total emitted over the buffer's lifetime (= size() + dropped()).
  uint64_t emitted() const { return emitted_; }

  // Retained events, oldest first.
  std::vector<TraceEvent> snapshot() const;

  // Default track id stamped on events emitted with track 0 via the
  // convenience emitters below; the engine sets it to the video rank.
  void set_track(uint32_t track);
  uint32_t track() const { return track_; }

  // Releases the Debug-build writer binding (see header comment). Call
  // only at a quiescent handoff point.
  void detach_writer() { writer_.detach(); }

 private:
  ThreadChecker writer_;
  size_t capacity_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;  // overwrite position once full
  uint64_t dropped_ = 0;
  uint64_t emitted_ = 0;
  uint32_t track_ = 0;
};

// Where the macros record. Both members optional; a null member simply
// drops that kind of recording.
struct ObsSink {
  MetricShard* metrics = nullptr;
  TraceBuffer* trace = nullptr;
};

// The ambient sink of the current thread; nullptr when none installed.
ObsSink* current_sink();

// Installs `sink` as the current thread's sink for the scope's lifetime
// and restores the previous one on destruction. The pointed-to sink must
// outlive the scope.
class ScopedObsSink {
 public:
  explicit ScopedObsSink(ObsSink* sink);
  ~ScopedObsSink();

  ScopedObsSink(const ScopedObsSink&) = delete;
  ScopedObsSink& operator=(const ScopedObsSink&) = delete;

 private:
  ObsSink* previous_;
};

// --- macro backends (call through the macros, not directly) --------------

void emit_instant(TraceBuffer* trace, const char* name, const char* category,
                  int64_t slot, std::initializer_list<TraceArg> args);
void emit_counter(TraceBuffer* trace, const char* name, const char* category,
                  int64_t slot, int64_t value);

// RAII wall-clock span: captures the sink at construction, emits one
// kComplete wall-domain event at destruction. Zero work when no sink (or
// no trace buffer) is installed at construction time.
class WallSpan {
 public:
  WallSpan(const char* name, const char* category);
  ~WallSpan();

  WallSpan(const WallSpan&) = delete;
  WallSpan& operator=(const WallSpan&) = delete;

 private:
  TraceBuffer* trace_;
  const char* name_;
  const char* category_;
  int64_t start_ns_ = 0;
};

// Observability state for one run of the sharded multi-video engine: a
// metric shard and a trace ring per engine shard, handed to workers as
// per-shard ObsSinks. The engine calls prepare() before launching workers;
// each worker installs sink(s) for its shard only, so recording is
// contention-free, and merged_metrics() folds shards in ascending shard
// order — deterministic at any thread count.
class EngineObserver {
 public:
  struct Options {
    size_t trace_capacity_per_shard = size_t{1} << 15;
  };

  EngineObserver() = default;
  explicit EngineObserver(Options options) : options_(options) {}

  // Grows to at least `num_shards` shards; existing shards stay valid.
  // Orchestrator-only (not thread-safe).
  void prepare(size_t num_shards);

  size_t num_shards() const { return traces_.size(); }
  ObsSink sink(size_t shard);

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  TraceBuffer& trace(size_t shard);

  // Every shard's trace ring, ascending shard order (exporter input).
  std::vector<const TraceBuffer*> trace_buffers() const;
  MetricShard merged_metrics() const { return registry_.merged(); }

 private:
  Options options_;
  MetricsRegistry registry_;
  std::vector<std::unique_ptr<TraceBuffer>> traces_;
};

}  // namespace vod::obs

// --- the instrumentation macros ------------------------------------------
//
// VOD_TRACE_INSTANT(name, category, slot, {"key", value}...) — slot-domain
//   point event with up to TraceEvent::kMaxArgs numeric args.
// VOD_TRACE_COUNTER(name, category, slot, value) — slot-domain counter
//   sample (a Chrome counter track, e.g. per-slot streams).
// VOD_TRACE_WALL_SPAN(name, category) — wall-domain span covering the rest
//   of the enclosing scope.
// VOD_METRIC_INC(name, n) — bumps a counter in the ambient sink's shard.
//
// All compile to nothing when the build disables VOD_OBSERVE.

#ifndef VOD_OBSERVE_DISABLED

#define VOD_OBS_CONCAT_INNER(a, b) a##b
#define VOD_OBS_CONCAT(a, b) VOD_OBS_CONCAT_INNER(a, b)

#define VOD_TRACE_INSTANT(name, category, slot, ...)                        \
  do {                                                                      \
    if (::vod::obs::ObsSink* vod_obs_sink_ = ::vod::obs::current_sink()) {  \
      if (vod_obs_sink_->trace != nullptr) {                                \
        ::vod::obs::emit_instant(vod_obs_sink_->trace, (name), (category),  \
                                 static_cast<int64_t>(slot), {__VA_ARGS__}); \
      }                                                                     \
    }                                                                       \
  } while (0)

#define VOD_TRACE_COUNTER(name, category, slot, value)                      \
  do {                                                                      \
    if (::vod::obs::ObsSink* vod_obs_sink_ = ::vod::obs::current_sink()) {  \
      if (vod_obs_sink_->trace != nullptr) {                                \
        ::vod::obs::emit_counter(vod_obs_sink_->trace, (name), (category),  \
                                 static_cast<int64_t>(slot),                \
                                 static_cast<int64_t>(value));              \
      }                                                                     \
    }                                                                       \
  } while (0)

#define VOD_TRACE_WALL_SPAN(name, category) \
  ::vod::obs::WallSpan VOD_OBS_CONCAT(vod_obs_span_, __LINE__){(name), (category)}

#define VOD_METRIC_INC(name, n)                                             \
  do {                                                                      \
    if (::vod::obs::ObsSink* vod_obs_sink_ = ::vod::obs::current_sink()) {  \
      if (vod_obs_sink_->metrics != nullptr) {                              \
        vod_obs_sink_->metrics->counter(name)->inc(                         \
            static_cast<uint64_t>(n));                                      \
      }                                                                     \
    }                                                                       \
  } while (0)

#else  // VOD_OBSERVE_DISABLED

#define VOD_TRACE_INSTANT(name, category, slot, ...) ((void)0)
#define VOD_TRACE_COUNTER(name, category, slot, value) ((void)0)
#define VOD_TRACE_WALL_SPAN(name, category) ((void)0)
#define VOD_METRIC_INC(name, n) ((void)0)

#endif  // VOD_OBSERVE_DISABLED
