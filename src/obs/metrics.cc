#include "obs/metrics.h"

#include "util/check.h"

namespace vod::obs {

Counter* MetricShard::counter(const std::string& name) {
  VOD_DCHECK_SERIAL(writer_);
  return &counters_[name];
}

Gauge* MetricShard::gauge(const std::string& name) {
  VOD_DCHECK_SERIAL(writer_);
  return &gauges_[name];
}

HistogramMetric* MetricShard::histogram(const std::string& name, double lo,
                                        double hi, size_t bins) {
  VOD_DCHECK_SERIAL(writer_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, HistogramMetric(lo, hi, bins)).first;
  } else {
    const Histogram& h = it->second.histogram();
    VOD_CHECK_MSG(h.lo() == lo && h.hi() == hi && h.bins().size() == bins,
                  "histogram re-registered with a different bucket spec");
  }
  return &it->second;
}

const Counter* MetricShard::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricShard::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const HistogramMetric* MetricShard::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

uint64_t MetricShard::counter_value(const std::string& name) const {
  const Counter* c = find_counter(name);
  return c ? c->value() : 0;
}

void MetricShard::merge_from(const MetricShard& other) {
  VOD_DCHECK_SERIAL(writer_);  // mutates this shard; `other` is only read
  for (const auto& [name, c] : other.counters_) {
    counters_[name].inc(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauges_[name].add(g.value());
  }
  for (const auto& [name, h] : other.histograms_) {
    const Histogram& spec = h.histogram();
    histogram(name, spec.lo(), spec.hi(), spec.bins().size())->merge(h);
  }
}

void MetricsRegistry::prepare(size_t num_shards) {
  while (shards_.size() < num_shards) {
    shards_.push_back(std::make_unique<MetricShard>());
  }
}

MetricShard& MetricsRegistry::shard(size_t i) {
  VOD_CHECK_MSG(i < shards_.size(), "metric shard index out of range");
  return *shards_[i];
}

const MetricShard& MetricsRegistry::shard(size_t i) const {
  VOD_CHECK_MSG(i < shards_.size(), "metric shard index out of range");
  return *shards_[i];
}

MetricShard MetricsRegistry::merged() const {
  MetricShard out;
  for (const auto& shard : shards_) out.merge_from(*shard);
  return out;
}

}  // namespace vod::obs
