#include "server/multi_video.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>

#include "obs/trace.h"
#include "protocols/npb.h"
#include "sim/arrival_process.h"
#include "sim/stats.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace vod {
namespace {

// Videos per shard. Fixed — never derived from the thread count — so the
// shard decomposition, and with it the floating-point order of the merge,
// is identical at every `num_threads`: that is what makes the result
// bit-identical whether the shards run inline or on 8 workers.
constexpr int kShardSize = 64;

// Concurrency contract of the engine (DESIGN.md §8/§11): there are no
// locks here by design. CatalogPlan and the ZipfDistribution are frozen
// before the workers start and shared read-only; each worker writes one
// ShardResult and one observer shard that no other thread touches until
// the join; the merge runs after the join, single-threaded, in shard
// order. The compile-time half of the contract lives in the primitives
// (ThreadPool's annotated mutex, util/thread_annotations.h); the runtime
// half is the VOD_DCHECK_SERIAL single-writer checks inside DhbScheduler,
// MetricShard, and TraceBuffer, which fire in Debug builds if any code
// change ever makes two workers share one of these.

// Everything a shard kernel needs, shared read-only across workers.
struct CatalogPlan {
  const MultiVideoConfig* config;
  std::vector<int> segments;     // per rank, length in slots
  std::vector<double> rate_kbs;  // per rank, stream rate
  std::vector<bool> is_static;   // per rank, always-on NPB vs DHB
  std::vector<bool> is_adaptive; // per rank, AdaptiveVideo controller
  // NPB packings for adaptive videos, one per distinct segment count.
  // Built before the workers start, immutable after (AdaptiveVideo reads
  // only); std::map for deterministic construction order.
  std::map<int, NpbMapping> mappings;
  uint64_t warmup_slots = 0;
  uint64_t total_slots = 0;
  double rate_per_s = 0.0;       // aggregate off-peak rate, requests/second
  double peak_per_hour = 0.0;    // diurnal peak, requests/hour (0 = flat)
};

// What one shard reports back: per-measured-slot totals over its ranks
// (the aggregate max needs the full slot series, not scalars) plus the
// per-video tallies for the slice it owns.
struct ShardResult {
  std::vector<int> slot_streams;
  std::vector<double> slot_kbs;
  std::vector<double> video_stream_sum;  // per video of the slice
  std::vector<uint64_t> video_requests;
  std::vector<double> video_provisioned;  // mean window-max streams
  std::vector<uint64_t> video_switches;   // adaptive mode switches
};

// Simulates ranks [first_rank, last_rank) against the shared plan. Each
// video is an independent thinned Poisson stream (rate λ·p_v) drawn from
// its own substream rng.fork(rank + 1), so shards never contend on RNG
// state and the outcome does not depend on which worker runs the shard.
void simulate_shard(const CatalogPlan& plan, const ZipfDistribution& zipf,
                    int first_rank, int last_rank, ShardResult* out) {
  // Wall-domain span over the whole kernel: in a Perfetto timeline the
  // per-shard spans show the Zipf load imbalance the shard schedule hides.
  VOD_TRACE_WALL_SPAN("shard_kernel", "engine");
  // Explicit (non-macro) metric writes below go through the ambient sink's
  // shard, so they also work in VOD_OBSERVE=OFF builds. Handles are
  // resolved once per kernel; null when no observer is attached.
  obs::ObsSink* obs_sink = obs::current_sink();
  obs::MetricShard* metrics =
      obs_sink != nullptr ? obs_sink->metrics : nullptr;
  obs::HistogramMetric* h_batch =
      metrics != nullptr
          ? metrics->histogram("engine_batch_requests", 0.0, 64.0, 64)
          : nullptr;

  const MultiVideoConfig& config = *plan.config;
  const double d = config.slot_duration_s;
  const uint64_t measured =
      plan.total_slots - plan.warmup_slots;  // >= 0 by construction
  out->slot_streams.assign(static_cast<size_t>(measured), 0);
  out->slot_kbs.assign(static_cast<size_t>(measured), 0.0);
  out->video_stream_sum.assign(static_cast<size_t>(last_rank - first_rank),
                               0.0);
  out->video_requests.assign(static_cast<size_t>(last_rank - first_rank), 0);
  out->video_provisioned.assign(static_cast<size_t>(last_rank - first_rank),
                                0.0);
  out->video_switches.assign(static_cast<size_t>(last_rank - first_rank), 0);
  const uint64_t prov_window = config.provision_window_slots;

  const Rng base(config.seed);
  for (int v = first_rank; v < last_rank; ++v) {
    const size_t idx = static_cast<size_t>(v);
    const size_t local = static_cast<size_t>(v - first_rank);
    const double rate = plan.rate_kbs[idx];

    std::unique_ptr<DhbScheduler> scheduler;
    std::unique_ptr<AdaptiveVideo> adaptive;
    int fixed_streams = 0;
    if (plan.is_adaptive[idx]) {
      AdaptiveVideoConfig acfg = config.adaptive;
      acfg.num_segments = plan.segments[idx];
      acfg.fast_admission = config.fast_admission;
      adaptive = std::make_unique<AdaptiveVideo>(
          acfg, &plan.mappings.at(plan.segments[idx]));
    } else if (plan.is_static[idx]) {
      fixed_streams = NpbMapping::streams_for(plan.segments[idx]);
    } else {
      DhbConfig dhb;
      dhb.num_segments = plan.segments[idx];
      dhb.use_placement_index = config.fast_admission;
      dhb.coalesce_same_slot = config.fast_admission;
      scheduler = std::make_unique<DhbScheduler>(dhb);
    }

    // Flat Poisson by default; the §1 diurnal curve (thinned
    // non-homogeneous Poisson) when a peak rate is configured. Either way
    // one substream per video, so the shard decomposition stays
    // deterministic.
    const double base_rate_per_s = plan.rate_per_s * zipf.probability(v);
    std::unique_ptr<ArrivalProcess> arrivals;
    if (plan.peak_per_hour > 0.0) {
      const double off_peak_h = base_rate_per_s * 3600.0;
      const double peak_h = plan.peak_per_hour * zipf.probability(v);
      arrivals = std::make_unique<NonHomogeneousPoissonProcess>(
          daily_demand_curve(off_peak_h, peak_h), per_hour(peak_h),
          base.fork(static_cast<uint64_t>(v) + 1));
    } else {
      arrivals = std::make_unique<PoissonProcess>(
          base_rate_per_s, base.fork(static_cast<uint64_t>(v) + 1));
    }
    double next_arrival = arrivals->next();
    uint64_t idle_slots = 0;
    int window_max = 0;          // provisioned: peak inside current window
    uint64_t window_fill = 0;    // measured slots accumulated into it
    double provisioned_sum = 0.0;
    uint64_t provisioned_windows = 0;

    for (uint64_t step = 1; step <= plan.total_slots; ++step) {
      int streams;
      if (adaptive) {
        streams = adaptive->advance_slot();
      } else if (!scheduler) {
        streams = fixed_streams;  // always on, demand or not
      } else if (scheduler->schedule().total_scheduled() == 0) {
        // Idle early-out: advancing an empty schedule transmits nothing
        // and leaves the (relative) schedule state empty, so skip the
        // ring rotation — and the VOD_AUDIT deep audit — entirely. Deep
        // in a Zipf tail this is the common case.
        streams = 0;
        ++idle_slots;
      } else {
        streams = static_cast<int>(scheduler->advance_slot_view().size());
      }

      if (step > plan.warmup_slots) {
        const size_t slot = static_cast<size_t>(step - plan.warmup_slots - 1);
        out->slot_streams[slot] += streams;
        out->slot_kbs[slot] += streams * rate;
        out->video_stream_sum[local] += streams;
        if (prov_window > 0) {
          window_max = std::max(window_max, streams);
          if (++window_fill == prov_window) {
            provisioned_sum += window_max;
            ++provisioned_windows;
            window_max = 0;
            window_fill = 0;
          }
        }
      }

      // Drain this slot's Poisson arrivals first, then admit them as one
      // batch: every same-slot request gets the identical plan (the
      // scheduler's coalescing memo), so the k-1 followers cost O(1) each.
      // The engine never reads the plan, so the discarding entry point
      // skips the per-batch plan copy entirely (counters identical).
      // The arrival draws and the admissions use independent rng streams,
      // so reordering draw-vs-admit changes nothing.
      const double slot_end = static_cast<double>(step) * d;
      uint64_t batch = 0;
      while (next_arrival < slot_end) {
        ++batch;
        next_arrival = arrivals->next();
      }
      // An adaptive video consumes every slot's batch — zero included; the
      // EWMA needs the silence as much as the bursts.
      if (adaptive) adaptive->on_slot_arrivals(batch);
      if (batch > 0) {
        if (scheduler) scheduler->on_request_batch_discard(batch);
        if (step > plan.warmup_slots) out->video_requests[local] += batch;
        if (h_batch != nullptr) {
          h_batch->observe(static_cast<double>(batch));
        }
      }
    }

    // A trailing partial window is dropped: a shorter window has a lower
    // expected max, so averaging it in would bias the provisioned figure
    // down. Zero complete windows reports 0.0, never a 0/0 NaN.
    if (provisioned_windows > 0) {
      out->video_provisioned[local] =
          provisioned_sum / static_cast<double>(provisioned_windows);
    }
    if (adaptive) out->video_switches[local] = adaptive->switches();

    if (metrics != nullptr) {
      metrics->counter("engine_videos_total")->inc();
      metrics->counter("engine_idle_slots_total")->inc(idle_slots);
      metrics->counter("engine_requests_total")
          ->inc(out->video_requests[local]);
      // Fold the per-video scheduler's dhb_* counters into this shard so
      // the catalog-wide totals survive the scheduler's destruction.
      if (scheduler) scheduler->export_metrics(metrics);
      if (adaptive) adaptive->export_metrics(metrics);
    }
    VOD_TRACE_INSTANT("video/done", "engine",
                      static_cast<int64_t>(plan.total_slots), {"rank", v},
                      {"requests",
                       static_cast<int64_t>(out->video_requests[local])},
                      {"idle_slots", static_cast<int64_t>(idle_slots)});
  }
}

}  // namespace

MultiVideoResult run_multi_video_simulation(const MultiVideoConfig& config) {
  VOD_CHECK(config.catalog_size >= 1);
  VOD_CHECK_MSG(config.num_segments >= 1, "need at least one segment");
  VOD_CHECK(config.slot_duration_s > 0.0);
  VOD_CHECK_MSG(config.zipf_exponent >= 0.0,
                "Zipf exponent must be non-negative");
  VOD_CHECK_MSG(config.total_requests_per_hour >= 0.0,
                "aggregate request rate must be non-negative");
  VOD_CHECK_MSG(config.diurnal_peak_requests_per_hour >= 0.0,
                "diurnal peak rate must be non-negative");
  VOD_CHECK_MSG(config.diurnal_peak_requests_per_hour == 0.0 ||
                    config.diurnal_peak_requests_per_hour >=
                        config.total_requests_per_hour,
                "diurnal peak must be at least the off-peak rate");
  VOD_CHECK(config.warmup_hours >= 0.0);
  VOD_CHECK(config.measured_hours >= 0.0);
  VOD_CHECK_MSG(config.num_threads >= 0, "num_threads: 0 = auto, n >= 1");

  const int V = config.catalog_size;
  const double d = config.slot_duration_s;

  CatalogPlan plan;
  plan.config = &config;
  plan.warmup_slots =
      static_cast<uint64_t>(std::ceil(config.warmup_hours * 3600.0 / d));
  plan.total_slots =
      plan.warmup_slots +
      static_cast<uint64_t>(std::ceil(config.measured_hours * 3600.0 / d));
  plan.rate_per_s = per_hour(config.total_requests_per_hour);
  plan.peak_per_hour = config.diurnal_peak_requests_per_hour;

  // Per-video shapes: homogeneous defaults unless overridden.
  plan.segments.assign(static_cast<size_t>(V), config.num_segments);
  plan.rate_kbs.assign(static_cast<size_t>(V), 1.0);
  if (!config.per_video_segments.empty()) {
    VOD_CHECK(static_cast<int>(config.per_video_segments.size()) == V);
    plan.segments = config.per_video_segments;
    for (int n : plan.segments) {
      VOD_CHECK_MSG(n >= 1, "per-video segment counts must be >= 1");
    }
  }
  if (!config.per_video_rate_kbs.empty()) {
    VOD_CHECK(static_cast<int>(config.per_video_rate_kbs.size()) == V);
    plan.rate_kbs = config.per_video_rate_kbs;
  }

  // Which videos run a dynamic scheduler vs an always-on broadcast. A
  // hybrid top larger than the catalog degenerates to all-static.
  VOD_CHECK_MSG(config.hybrid_static_top >= 0,
                "hybrid_static_top must be >= 0");
  const int static_top = std::min(config.hybrid_static_top, V);
  plan.is_static.assign(static_cast<size_t>(V), false);
  plan.is_adaptive.assign(static_cast<size_t>(V), false);
  for (int v = 0; v < V; ++v) {
    switch (config.policy) {
      case VideoPolicy::kDhb:
        break;
      case VideoPolicy::kStatic:
        plan.is_static[static_cast<size_t>(v)] = true;
        break;
      case VideoPolicy::kHybrid:
        plan.is_static[static_cast<size_t>(v)] = v < static_top;
        break;
      case VideoPolicy::kAdaptive:
        plan.is_adaptive[static_cast<size_t>(v)] = true;
        break;
    }
  }

  // Adaptive videos need the NPB packing for their segment count; build
  // each distinct one once, up front, and share it read-only across every
  // shard kernel (streams_for() guarantees the packer fits).
  for (int v = 0; v < V; ++v) {
    if (!plan.is_adaptive[static_cast<size_t>(v)]) continue;
    const int n = plan.segments[static_cast<size_t>(v)];
    if (plan.mappings.count(n) != 0) continue;
    std::optional<NpbMapping> mapping =
        NpbMapping::build(NpbMapping::streams_for(n), n);
    VOD_CHECK_MSG(mapping.has_value(), "NPB packing failed");
    plan.mappings.emplace(n, std::move(*mapping));
  }

  const ZipfDistribution zipf(V, config.zipf_exponent);

  const int num_shards = (V + kShardSize - 1) / kShardSize;
  std::vector<ShardResult> shards(static_cast<size_t>(num_shards));
  if (config.observer != nullptr) {
    // One metric shard + trace ring per catalog shard, created up front by
    // this thread; workers then write disjoint shards only.
    config.observer->prepare(static_cast<size_t>(num_shards));
  }
  auto run_shard = [&](int s) {
    // Install this shard's sink on whichever worker runs it; trace events
    // carry the shard id as their track so per-shard timelines separate.
    obs::ObsSink sink;
    std::optional<obs::ScopedObsSink> scoped;
    if (config.observer != nullptr) {
      sink = config.observer->sink(static_cast<size_t>(s));
      if (sink.trace != nullptr) {
        sink.trace->set_track(static_cast<uint32_t>(s));
      }
      scoped.emplace(&sink);
    }
    const int first = s * kShardSize;
    const int last = std::min(V, first + kShardSize);
    simulate_shard(plan, zipf, first, last,
                   &shards[static_cast<size_t>(s)]);
  };

  const int threads =
      std::min(resolve_num_threads(config.num_threads), num_shards);
  if (threads <= 1) {
    for (int s = 0; s < num_shards; ++s) run_shard(s);
  } else {
    ThreadPool pool(threads);
    pool.parallel_for(num_shards, run_shard);
  }

  // Deterministic merge: shard slot-series are aligned (every shard spans
  // the same measured slots), so summing them in shard order rebuilds the
  // aggregate per-slot totals exactly as a sequential pass would.
  const uint64_t measured = plan.total_slots - plan.warmup_slots;
  MultiVideoResult result;
  result.measured_slots = measured;
  result.per_video_avg.assign(static_cast<size_t>(V), 0.0);
  result.per_video_requests.assign(static_cast<size_t>(V), 0);
  if (config.provision_window_slots > 0) {
    result.per_video_provisioned.assign(static_cast<size_t>(V), 0.0);
  }
  result.per_video_switches.assign(static_cast<size_t>(V), 0);

  std::vector<int> total_streams(static_cast<size_t>(measured), 0);
  std::vector<double> total_kbs(static_cast<size_t>(measured), 0.0);
  for (int s = 0; s < num_shards; ++s) {
    const ShardResult& shard = shards[static_cast<size_t>(s)];
    for (size_t i = 0; i < total_streams.size(); ++i) {
      total_streams[i] += shard.slot_streams[i];
      total_kbs[i] += shard.slot_kbs[i];
    }
    const int first = s * kShardSize;
    for (size_t local = 0; local < shard.video_requests.size(); ++local) {
      const size_t idx = static_cast<size_t>(first) + local;
      result.per_video_requests[idx] = shard.video_requests[local];
      result.requests += shard.video_requests[local];
      result.per_video_switches[idx] = shard.video_switches[local];
      if (config.provision_window_slots > 0) {
        result.per_video_provisioned[idx] = shard.video_provisioned[local];
      }
      if (measured > 0) {
        result.per_video_avg[idx] =
            shard.video_stream_sum[local] / static_cast<double>(measured);
      }
    }
  }

  RunningStats aggregate;
  RunningStats aggregate_kbs;
  for (size_t i = 0; i < total_streams.size(); ++i) {
    aggregate.add(total_streams[i]);
    aggregate_kbs.add(total_kbs[i]);
  }
  result.avg_streams = aggregate.mean();
  result.max_streams = aggregate.max();
  result.avg_kbs = aggregate_kbs.mean();
  result.max_kbs = aggregate_kbs.max();
  return result;
}

}  // namespace vod
