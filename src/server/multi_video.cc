#include "server/multi_video.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "protocols/npb.h"
#include "sim/arrival_process.h"
#include "sim/stats.h"
#include "util/check.h"

namespace vod {

MultiVideoResult run_multi_video_simulation(const MultiVideoConfig& config) {
  VOD_CHECK(config.catalog_size >= 1);
  VOD_CHECK(config.slot_duration_s > 0.0);

  const int V = config.catalog_size;
  const double d = config.slot_duration_s;
  const uint64_t warmup_slots =
      static_cast<uint64_t>(std::ceil(config.warmup_hours * 3600.0 / d));
  const uint64_t total_slots =
      warmup_slots +
      static_cast<uint64_t>(std::ceil(config.measured_hours * 3600.0 / d));

  // Per-video shapes: homogeneous defaults unless overridden.
  std::vector<int> segments(static_cast<size_t>(V), config.num_segments);
  std::vector<double> rate_kbs(static_cast<size_t>(V), 1.0);
  if (!config.per_video_segments.empty()) {
    VOD_CHECK(static_cast<int>(config.per_video_segments.size()) == V);
    segments = config.per_video_segments;
  }
  if (!config.per_video_rate_kbs.empty()) {
    VOD_CHECK(static_cast<int>(config.per_video_rate_kbs.size()) == V);
    rate_kbs = config.per_video_rate_kbs;
  }

  // Which videos run a dynamic scheduler vs an always-on broadcast.
  auto is_static = [&](int rank) {
    switch (config.policy) {
      case VideoPolicy::kDhb:
        return false;
      case VideoPolicy::kStatic:
        return true;
      case VideoPolicy::kHybrid:
        return rank < config.hybrid_static_top;
    }
    return false;
  };

  std::vector<std::unique_ptr<DhbScheduler>> schedulers(
      static_cast<size_t>(V));
  std::vector<int> static_streams(static_cast<size_t>(V), 0);
  for (int v = 0; v < V; ++v) {
    if (is_static(v)) {
      static_streams[static_cast<size_t>(v)] =
          NpbMapping::streams_for(segments[static_cast<size_t>(v)]);
    } else {
      DhbConfig dhb;
      dhb.num_segments = segments[static_cast<size_t>(v)];
      schedulers[static_cast<size_t>(v)] =
          std::make_unique<DhbScheduler>(dhb);
    }
  }

  Rng rng(config.seed);
  const ZipfDistribution zipf(V, config.zipf_exponent);
  PoissonProcess arrivals(per_hour(config.total_requests_per_hour),
                          rng.fork(1));
  Rng routing = rng.fork(2);

  MultiVideoResult result;
  result.per_video_avg.assign(static_cast<size_t>(V), 0.0);
  result.per_video_requests.assign(static_cast<size_t>(V), 0);

  RunningStats aggregate;
  RunningStats aggregate_kbs;
  std::vector<double> per_video_sum(static_cast<size_t>(V), 0.0);
  uint64_t measured_slots = 0;
  double next_arrival = arrivals.next();

  for (uint64_t step = 1; step <= total_slots; ++step) {
    const bool measuring = step > warmup_slots;
    int total = 0;
    double total_kbs = 0.0;
    for (int v = 0; v < V; ++v) {
      const size_t idx = static_cast<size_t>(v);
      int streams;
      if (is_static(v)) {
        streams = static_streams[idx];  // always on, demand or not
      } else {
        streams = static_cast<int>(schedulers[idx]->advance_slot().size());
      }
      total += streams;
      total_kbs += streams * rate_kbs[idx];
      if (measuring) per_video_sum[idx] += streams;
    }
    if (measuring) {
      aggregate.add(total);
      aggregate_kbs.add(total_kbs);
      ++measured_slots;
    }

    const double slot_end = static_cast<double>(step) * d;
    while (next_arrival < slot_end) {
      const int v = zipf.sample(routing);
      if (!is_static(v)) schedulers[static_cast<size_t>(v)]->on_request();
      if (measuring) {
        ++result.requests;
        ++result.per_video_requests[static_cast<size_t>(v)];
      }
      next_arrival = arrivals.next();
    }
  }

  result.avg_streams = aggregate.mean();
  result.max_streams = aggregate.max();
  result.avg_kbs = aggregate_kbs.mean();
  result.max_kbs = aggregate_kbs.max();
  for (int v = 0; v < V; ++v) {
    result.per_video_avg[static_cast<size_t>(v)] =
        per_video_sum[static_cast<size_t>(v)] /
        static_cast<double>(measured_slots);
  }
  return result;
}

}  // namespace vod
