// A session-oriented VOD server for one video.
//
// VodServer is the deployment-shaped wrapper around DhbScheduler: it
// advances the slot clock, assigns each transmitted segment instance to a
// concrete channel, and manages client sessions with the VCR operations
// the protocol supports —
//
//   start()   admit a client (watches S_1..S_n, one segment per slot);
//   pause()   freeze playback; the client stops consuming (transmissions
//             already scheduled are never cancelled — other clients may
//             share them);
//   resume()  re-admit the client from its next unwatched segment via the
//             scheduler's suffix admission (on_resume);
//   stop()    abandon the session.
//
// Every (re-)admission is verified against the playout contract at the
// moment it happens; `SessionInfo::playout_ok` accumulates the result.
//
// Determinism note: sessions live in a std::map, not an unordered_map —
// advance_slot() and active_sessions() iterate the table, and iteration
// over a hash map is ordered by hash-table internals, which the
// determinism linter (scripts/lint_determinism.py) bans in result-
// affecting code. Session ids are dense sequential integers, so the
// ordered map costs nothing observable at session counts this server
// sees, and every walk is id-ordered by construction.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/dhb.h"
#include "schedule/types.h"
#include "util/thread_checker.h"

namespace vod {

struct ServerTransmission {
  int channel = 0;     // 0-based channel carrying this instance
  Segment segment = 0;
};

class VodServer {
 public:
  using ClientId = uint64_t;

  enum class SessionState { kWatching, kPaused, kFinished, kStopped };

  struct SessionInfo {
    SessionState state = SessionState::kWatching;
    Segment next_segment = 1;   // first segment not yet watched
    Slot admitted_slot = 0;     // slot of the latest (re-)admission
    bool playout_ok = true;     // every (re-)admission met its deadlines
    int resumes = 0;
  };

  explicit VodServer(const DhbConfig& config);

  // Advances one slot: returns the channel/segment pairs transmitted
  // during the new current slot and moves every watching session forward
  // by one segment.
  std::vector<ServerTransmission> advance_slot();

  // Admits a new client during the current slot.
  ClientId start();

  // VCR operations; ids must name live sessions.
  void pause(ClientId id);
  void resume(ClientId id);
  void stop(ClientId id);

  const SessionInfo& session(ClientId id) const;
  Slot current_slot() const { return scheduler_.current_slot(); }
  int num_segments() const { return scheduler_.num_segments(); }

  // Sessions currently watching or paused.
  int active_sessions() const;
  // Every session id (any state) in table-iteration order — the order
  // advance_slot() and active_sessions() walk. The ordered map pins it
  // ascending-by-id no matter how VCR operations interleave;
  // tests/vod_server_order_test.cc asserts exactly that, so swapping the
  // container for an unordered one cannot silently reorder the walks.
  std::vector<ClientId> session_ids() const {
    std::vector<ClientId> ids;
    ids.reserve(sessions_.size());
    for (const auto& [id, info] : sessions_) ids.push_back(id);
    return ids;
  }
  // Channels busy during the current slot / the most ever needed at once.
  int channels_in_use() const { return channels_in_use_; }
  int peak_channels() const { return peak_channels_; }
  uint64_t total_transmissions() const { return total_transmissions_; }

  const DhbScheduler& scheduler() const { return scheduler_; }

 private:
  SessionInfo& live_session(ClientId id);

  // One thread owns a server (sessions + the underlying scheduler); the
  // VCR entry points assert it in Debug builds (DESIGN.md §11).
  ThreadChecker serial_;

  DhbScheduler scheduler_;
  std::map<ClientId, SessionInfo> sessions_;
  ClientId next_id_ = 1;
  int channels_in_use_ = 0;
  int peak_channels_ = 0;
  uint64_t total_transmissions_ = 0;
};

}  // namespace vod
