#include "server/adaptive_video.h"

#include <algorithm>
#include <limits>
#include <span>

#include "obs/trace.h"
#include "protocols/static_mapping.h"
#include "util/check.h"

namespace vod {
namespace {

// "Transmit forever" sentinel for an active static stream's off slot.
constexpr Slot kNeverOff = std::numeric_limits<Slot>::max();

}  // namespace

std::string to_string(ServingMode mode) {
  switch (mode) {
    case ServingMode::kReactive:
      return "reactive";
    case ServingMode::kDhb:
      return "dhb";
    case ServingMode::kStatic:
      return "static";
  }
  return "unknown";
}

ControllerConfig default_adaptive_controller() {
  ControllerConfig config;
  // Thresholds in arrivals/slot; see the header comment for the measured
  // provisioned-bandwidth crossovers behind them.
  config.bands = {
      {/*up=*/0.05, /*down=*/0.02},  // reactive <-> dhb
      {/*up=*/0.50, /*down=*/0.20},  // dhb <-> static
  };
  config.min_dwell_slots = 64;  // ~78 min at the paper's 72.7 s slot
  config.initial_mode = static_cast<int>(ServingMode::kDhb);
  return config;
}

AdaptiveVideo::AdaptiveVideo(const AdaptiveVideoConfig& config,
                             const NpbMapping* static_mapping,
                             AdaptiveProbe* probe)
    : config_(config),
      mapping_(static_mapping),
      probe_(probe),
      estimator_(config.ewma),
      controller_(config.controller),
      c_switches_(metrics_.counter("adaptive_switches_total")),
      c_slots_reactive_(metrics_.counter("adaptive_slots_mode_reactive_total")),
      c_slots_dhb_(metrics_.counter("adaptive_slots_mode_dhb_total")),
      c_slots_static_(metrics_.counter("adaptive_slots_mode_static_total")),
      c_overlap_slots_(
          metrics_.counter("adaptive_migration_overlap_slots_total")) {
  VOD_CHECK_MSG(config_.num_segments >= 1, "need at least one segment");
  VOD_CHECK_MSG(mapping_ != nullptr, "adaptive video needs an NPB mapping");
  VOD_CHECK_MSG(mapping_->num_segments() == config_.num_segments,
                "static mapping segment count mismatch");
  VOD_CHECK_MSG(controller_.num_modes() == 3,
                "the adaptive ladder has exactly three rungs "
                "(reactive / dhb / static)");
  mode_ = static_cast<ServingMode>(controller_.mode());
  pending_mode_ = mode_;

  // Per-stream drain horizons: the largest transmission period packed on a
  // stream bounds how long any client could still be waiting for it. Every
  // segment's period divides into the first num_segments slots (period <=
  // segment index <= n), so scanning one n-slot window sees every segment
  // the stream carries.
  const int streams = mapping_->streams();
  stream_max_period_.assign(static_cast<size_t>(streams), 0);
  for (int r = 0; r < streams; ++r) {
    Slot max_period = 0;
    for (Slot s = 1; s <= static_cast<Slot>(config_.num_segments); ++s) {
      const Segment seg = mapping_->segment_at(r, s);
      if (seg != 0) max_period = std::max(max_period, mapping_->period_of(seg));
    }
    stream_max_period_[static_cast<size_t>(r)] = max_period;
  }
  static_off_slot_.assign(static_cast<size_t>(streams), 0);
  static_periods_.resize(static_cast<size_t>(config_.num_segments));
  for (int j = 1; j <= config_.num_segments; ++j) {
    static_periods_[static_cast<size_t>(j - 1)] =
        static_cast<int>(mapping_->period_of(j));
  }

  // A video whose initial rung is already kStatic (a pinned ladder, or an
  // operator starting a known-hot video proactive) broadcasts from slot 1.
  if (mode_ == ServingMode::kStatic) {
    static_on_ = true;
    std::fill(static_off_slot_.begin(), static_off_slot_.end(), kNeverOff);
  }
}

SlotHeuristic AdaptiveVideo::heuristic_for(ServingMode mode) {
  // kReactive is the lazy rule: place at the deadline, exactly what a
  // slotted patching/tapping server does; kDhb is the paper's heuristic.
  return mode == ServingMode::kReactive ? SlotHeuristic::kLatest
                                        : SlotHeuristic::kMinLoadLatest;
}

bool AdaptiveVideo::migrating() const {
  const bool dynamic_draining =
      !mode_dynamic(mode_) && scheduler_ != nullptr &&
      scheduler_->schedule().total_scheduled() > 0;
  const bool static_draining = !static_on_ && mode_dynamic(mode_) &&
                               std::any_of(static_off_slot_.begin(),
                                           static_off_slot_.end(),
                                           [this](Slot off) {
                                             return off > now_;
                                           });
  return dynamic_draining || static_draining;
}

void AdaptiveVideo::ensure_scheduler() {
  if (scheduler_) return;
  DhbConfig dhb;
  dhb.num_segments = config_.num_segments;
  dhb.heuristic = heuristic_for(mode_);
  dhb.use_placement_index = config_.fast_admission;
  dhb.coalesce_same_slot = config_.fast_admission;
  scheduler_ = std::make_unique<DhbScheduler>(dhb);
}

void AdaptiveVideo::commit_transition(ServingMode to) {
  const ServingMode from = mode_;
  if (mode_dynamic(from) && mode_dynamic(to)) {
    // reactive <-> dhb: same schedule, new placement rule for future
    // instances only. Nothing drains; committed plans are untouched.
    if (scheduler_) scheduler_->set_heuristic(heuristic_for(to));
  } else if (to == ServingMode::kStatic) {
    // dynamic -> static: broadcast on from this slot; the dynamic schedule
    // stops admitting and plays out its committed instances.
    static_on_ = true;
    std::fill(static_off_slot_.begin(), static_off_slot_.end(), kNeverOff);
  } else {
    // static -> dynamic: admissions move to a (possibly resumed) dynamic
    // scheduler; each broadcast stream stays on through the last slot any
    // already-admitted static client could still need it, then shuts off.
    static_on_ = false;
    for (size_t r = 0; r < static_off_slot_.size(); ++r) {
      static_off_slot_[r] =
          has_static_clients_ ? last_static_arrival_ + stream_max_period_[r]
                              : now_ - 1;
    }
    // A scheduler still draining from an earlier dynamic->static switch is
    // simply re-adopted — its committed plans are valid under any rule.
    if (scheduler_) scheduler_->set_heuristic(heuristic_for(to));
  }
  mode_ = to;
  ++switches_;
  c_switches_->inc();
  VOD_TRACE_INSTANT("adaptive/switch", "adaptive", now_,
                    {"from", static_cast<int>(from)},
                    {"to", static_cast<int>(to)});
  if (probe_ != nullptr) probe_->on_transition(now_, from, to);
}

int AdaptiveVideo::advance_slot() {
  VOD_DCHECK_SERIAL(serial_);
  ++now_;
  if (pending_mode_ != mode_) commit_transition(pending_mode_);

  const bool want_list = probe_ != nullptr;
  if (want_list) transmitted_scratch_.clear();

  // Dynamic side: advance a non-empty schedule (an empty one is skipped,
  // the engine's idle early-out — semantically a no-op because an empty
  // schedule is translation-invariant); a drained retired scheduler is
  // exported and destroyed.
  int streams = 0;
  if (scheduler_) {
    if (scheduler_->schedule().total_scheduled() > 0) {
      const std::span<const Segment> sent = scheduler_->advance_slot_view();
      streams += static_cast<int>(sent.size());
      if (want_list) {
        transmitted_scratch_.insert(transmitted_scratch_.end(), sent.begin(),
                                    sent.end());
      }
    }
    if (!mode_dynamic(mode_) &&
        scheduler_->schedule().total_scheduled() == 0) {
      scheduler_->export_metrics(&metrics_);
      scheduler_.reset();
    }
  }

  // Static side: active streams are reserved channels whether or not this
  // slot of the mapping carries a segment.
  int static_streams = 0;
  for (size_t r = 0; r < static_off_slot_.size(); ++r) {
    const bool active = static_on_ || static_off_slot_[r] >= now_;
    if (!active) continue;
    ++static_streams;
    if (want_list) {
      const Segment seg = mapping_->segment_at(static_cast<int>(r), now_);
      if (seg != 0) transmitted_scratch_.push_back(seg);
    }
  }
  if (streams > 0 && static_streams > 0) c_overlap_slots_->inc();
  streams += static_streams;

  switch (mode_) {
    case ServingMode::kReactive:
      c_slots_reactive_->inc();
      break;
    case ServingMode::kDhb:
      c_slots_dhb_->inc();
      break;
    case ServingMode::kStatic:
      c_slots_static_->inc();
      break;
  }
  if (probe_ != nullptr) probe_->on_slot(now_, transmitted_scratch_);
  return streams;
}

void AdaptiveVideo::on_slot_arrivals(uint64_t count) {
  VOD_DCHECK_SERIAL(serial_);
  VOD_CHECK_MSG(now_ >= 1, "advance_slot() must run before arrivals");
  estimator_.on_slot(count);

  if (count > 0) {
    if (mode_dynamic(mode_)) {
      ensure_scheduler();
      // The scheduler's clock lags the global one across skipped idle
      // slots; the offset is constant while any plan is in flight.
      const Slot offset = now_ - scheduler_->current_slot();
      DhbRequestResult result = scheduler_->on_request_batch(count);
      if (probe_ != nullptr) {
        ClientPlan plan = result.plan;
        plan.arrival_slot += offset;
        for (Slot& s : plan.reception_slot) s += offset;
        probe_->on_admission(plan, scheduler_->periods(), count, mode_);
      }
    } else {
      last_static_arrival_ = now_;
      has_static_clients_ = true;
      if (probe_ != nullptr) {
        // first_occurrences is 1-based with a dummy entry 0; plans use the
        // scheduler convention (entry k = segment k+1).
        const std::vector<Slot> occ = first_occurrences(*mapping_, now_);
        ClientPlan plan;
        plan.arrival_slot = now_;
        plan.reception_slot.assign(occ.begin() + 1, occ.end());
        probe_->on_admission(plan, static_periods_, count, mode_);
      }
    }
  }

  // The controller's decision commits at the next slot boundary, so a
  // client arriving in the very slot a switch commits is admitted by the
  // *new* mode (the old one only drains from that boundary on).
  pending_mode_ = static_cast<ServingMode>(
      controller_.on_slot(estimator_.estimate()));
}

void AdaptiveVideo::force_mode(ServingMode mode) {
  VOD_DCHECK_SERIAL(serial_);
  pending_mode_ = mode;
}

void AdaptiveVideo::export_metrics(obs::MetricShard* out) const {
  out->merge_from(metrics_);
  if (scheduler_) scheduler_->export_metrics(out);
}

}  // namespace vod
