// Per-video adaptive protocol switching with disruption-free migration.
//
// The paper's §1 motivation is that demand for one video swings by orders
// of magnitude over a day, and its own results (Figures 7/8, reproduced by
// bench/reactive_landscape) show the cheapest delivery discipline depends
// on where in that swing the video sits. On *provisioned* bandwidth — the
// per-slot peak a shared channel pool must reserve, the paper's Figure 8
// metric — the measured landscape for n = 99 is:
//
//   * at a few requests/hour a dynamic schedule needs only 3-5 channels at
//     peak, far below the 6 an always-on NPB broadcast burns;
//   * past ~25 requests/hour DHB's per-slot peak crosses 6 and keeps
//     climbing (~8 at saturation), so the flat static broadcast wins;
//   * the lazy "latest-only" heuristic (slotted patching/tapping
//     semantics) matches DHB at very low rates but its peak explodes with
//     rate (33 channels at 500 req/h) — usable only on the coldest tail.
//
// AdaptiveVideo runs one video through that tradeoff *online*: an EWMA of
// the per-slot arrival batches (sim/rate_estimator.h) feeds a hysteresis
// ladder (core/protocol_controller.h) over three rungs —
//
//   kReactive — DhbScheduler under SlotHeuristic::kLatest
//   kDhb      — DhbScheduler under the paper's min-load-latest rule
//   kStatic   — the always-on NPB mapping for the video's segment count
//
// — and migrates in-flight clients across transitions without a playback
// gap, using the one property every rung shares: committed transmissions
// are never moved or cancelled (DHB's §3 rule; a broadcast's periodicity).
//
//   reactive ⇄ dhb    — the schedule is kept; only the placement rule for
//                       *future* instances changes
//                       (DhbScheduler::set_heuristic). Committed plans are
//                       untouched, so there is nothing to drain.
//   dynamic → static  — the NPB streams turn on at the commit boundary and
//                       serve every client arriving from that slot on; the
//                       dynamic schedule stops admitting and drains — every
//                       committed instance still transmits, so old clients
//                       play out their fixed plans — then the scheduler is
//                       retired. Bandwidth briefly pays for both: that
//                       overlap is the real migration cost and is metered.
//   static → dynamic  — a dynamic scheduler admits every client from the
//                       boundary on, while the broadcast drains
//                       *progressively*: stream r keeps transmitting until
//                       slot a_last + max_period(r), where a_last is the
//                       last static admission slot and max_period(r) the
//                       largest transmission period packed on that stream —
//                       the latest slot any static client could still need
//                       it — then shuts off, stream by stream.
//
// The migration invariant — every admitted client receives every segment
// it planned, on time, across any number of transitions — is checked
// end-to-end by analysis/transition_auditor.h through the AdaptiveProbe
// hook below, and fuzzed with random forced switch points.
//
// Determinism: the class consumes no randomness and no clock; its state
// advances only through advance_slot()/on_slot_arrivals(). The sharded
// engine therefore keeps its bit-identity-at-any-thread-count guarantee
// with adaptive videos in the catalog (each video lives entirely inside
// one shard kernel).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dhb.h"
#include "core/protocol_controller.h"
#include "obs/metrics.h"
#include "protocols/npb.h"
#include "schedule/client_plan.h"
#include "schedule/types.h"
#include "sim/rate_estimator.h"
#include "util/thread_checker.h"

namespace vod {

enum class ServingMode { kReactive = 0, kDhb = 1, kStatic = 2 };

std::string to_string(ServingMode mode);

// The measured default ladder for the paper's video (n = 99, 72.7 s
// slots), provisioned-bandwidth crossovers from bench/reactive_landscape
// and the header probe above:
//   reactive/dhb boundary at ~2.5 req/h (0.05 arrivals/slot): below it the
//     two schedules are indistinguishable and laziness costs nothing; the
//     down threshold 0.02 keeps a video from flapping at the boundary.
//   dhb/static boundary at ~25 req/h (0.5 arrivals/slot): where DHB's
//     per-slot peak first clears NPB's flat 6 streams; down threshold 0.2
//     (~10 req/h) sits where the dynamic peak is reliably back under 6.
ControllerConfig default_adaptive_controller();

struct AdaptiveVideoConfig {
  int num_segments = 99;
  // Run the per-mode DhbSchedulers on the admission fast path (placement
  // index + same-slot coalescing); bit-identical either way.
  bool fast_admission = true;
  EwmaConfig ewma;
  ControllerConfig controller = default_adaptive_controller();
};

// Observation hook for auditors and tests. Every slot/plan value is in
// *global* slots (the video's own monotone clock), regardless of which
// scheduler generation produced it. Implemented by
// analysis/transition_auditor.h; the engine runs with no probe attached.
class AdaptiveProbe {
 public:
  virtual ~AdaptiveProbe() = default;

  // A mode change committed at the boundary into `slot` — the first slot
  // served under `to`.
  virtual void on_transition(Slot slot, ServingMode from, ServingMode to) = 0;

  // `count` clients admitted during `slot` under `mode`, all with this
  // reception plan. `periods` is the per-entry maximum-delay vector the
  // admission ran under (pass to verify_plan).
  virtual void on_admission(const ClientPlan& plan,
                            const std::vector<int>& periods, uint64_t count,
                            ServingMode mode) = 0;

  // The merged transmission list (dynamic schedule + active static
  // streams) for `slot`; idle static slots contribute nothing here even
  // though the channel is reserved.
  virtual void on_slot(Slot slot, const std::vector<Segment>& transmitted) = 0;
};

class AdaptiveVideo {
 public:
  // `static_mapping` is the video's NPB packing (segment counts must
  // match); it must outlive this object. The engine shares one mapping per
  // distinct segment count across the whole catalog — the mapping is
  // immutable and read-only here. `probe` may be null.
  AdaptiveVideo(const AdaptiveVideoConfig& config,
                const NpbMapping* static_mapping,
                AdaptiveProbe* probe = nullptr);

  // Advances the video's clock one slot, committing any pending mode
  // switch at the boundary first, and returns the number of channels busy
  // during the new slot: dynamic transmissions plus *reserved* static
  // streams (an active broadcast stream counts even in its idle slots —
  // the channel is provisioned whether or not this slot carries a
  // segment). Mirrors the engine's always-on accounting for kStatic.
  int advance_slot();

  // Feeds the slot's arrival batch: updates the rate estimate (count == 0
  // is an observation, not a no-op), admits the batch under the current
  // mode, and asks the controller for the mode to serve from the next
  // slot. Call exactly once per slot, after advance_slot().
  void on_slot_arrivals(uint64_t count);

  // Requests a mode for the next boundary, bypassing the controller (the
  // fuzzer's switch-injection hook; migration is still gap-free). The
  // controller keeps running and may override it on a later slot.
  void force_mode(ServingMode mode);

  ServingMode mode() const { return mode_; }
  Slot now() const { return now_; }
  uint64_t switches() const { return switches_; }
  const EwmaRateEstimator& estimator() const { return estimator_; }
  const ProtocolController& controller() const { return controller_; }
  // Null when no dynamic scheduler is live (static mode, fully drained).
  const DhbScheduler* scheduler() const { return scheduler_.get(); }
  bool static_streams_on() const { return static_on_; }
  // True while a retired mode is still transmitting (dynamic schedule
  // draining after dynamic->static, or static streams draining after
  // static->dynamic).
  bool migrating() const;

  // Folds the adaptive counters (adaptive_switches_total,
  // adaptive_slots_mode_*_total, adaptive_migration_overlap_slots_total)
  // plus every scheduler generation's dhb_*/schedule_* counters into
  // `out`, including generations already retired.
  void export_metrics(obs::MetricShard* out) const;

 private:
  static SlotHeuristic heuristic_for(ServingMode mode);
  bool mode_dynamic(ServingMode m) const { return m != ServingMode::kStatic; }
  void commit_transition(ServingMode to);
  void ensure_scheduler();

  // Single-writer discipline: one thread mutates a video at a time (the
  // sharded engine runs each video inside exactly one shard kernel).
  ThreadChecker serial_;

  AdaptiveVideoConfig config_;
  const NpbMapping* mapping_;
  AdaptiveProbe* probe_;

  EwmaRateEstimator estimator_;
  ProtocolController controller_;

  Slot now_ = 0;
  ServingMode mode_;
  ServingMode pending_mode_;
  uint64_t switches_ = 0;

  // Dynamic side. The scheduler is created on first dynamic admission and
  // retired once it drains after a dynamic->static migration; its clock is
  // local (idle slots are skipped, like the engine's early-out), so global
  // plan slots are translated by (now_ - scheduler_->current_slot()) at
  // admission time — constant while any plan is in flight, because a
  // non-empty schedule is never skipped.
  std::unique_ptr<DhbScheduler> scheduler_;

  // Static side. The broadcast phase is global — mapping slot == global
  // slot — so reactivation after an incomplete drain needs no phase
  // bookkeeping and first_occurrences() works directly in global slots.
  bool static_on_ = false;
  std::vector<Slot> static_off_slot_;     // per stream: transmit through
                                          // this slot while draining
  std::vector<Slot> stream_max_period_;   // per stream: largest packed period
  std::vector<int> static_periods_;       // per segment: period_of(j)
  Slot last_static_arrival_ = 0;
  bool has_static_clients_ = false;

  // Scratch for the merged per-slot transmission list (probe mode only).
  std::vector<Segment> transmitted_scratch_;

  // adaptive_* counters + retired scheduler generations, merged on export.
  obs::MetricShard metrics_;
  obs::Counter* c_switches_;
  obs::Counter* c_slots_reactive_;
  obs::Counter* c_slots_dhb_;
  obs::Counter* c_slots_static_;
  obs::Counter* c_overlap_slots_;
};

}  // namespace vod
