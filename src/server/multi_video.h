// A multi-video VOD server.
//
// §4 of the paper ends with the observation that a video's channel
// bandwidth b should be chosen at least as large as its minimum rate so
// that "the empty slots could be shared by other videos". This module
// builds that server: a catalog of videos, all slotted on a common slot
// duration, each distributed by its own policy —
//
//   kDhb      — a DhbScheduler per video (the paper's protocol),
//   kStatic   — an always-on static broadcast using the fewest streams the
//               NPB packer needs for the video's segment count,
//   kHybrid   — static for the hottest `hybrid_static_top` ranks, DHB for
//               the long tail (what an operator who distrusts dynamic
//               protocols for the head of the catalog would deploy),
//   kAdaptive — an AdaptiveVideo per video: an EWMA rate estimate drives a
//               hysteresis ladder over reactive/DHB/static serving modes,
//               migrating in-flight clients across transitions without a
//               playback gap (server/adaptive_video.h). The policy a real
//               service wants when demand follows a diurnal curve.
//
// Requests arrive as one Poisson stream thinned over the catalog by a
// Zipf popularity distribution. The server reports aggregate and
// per-video bandwidth; with a shared channel pool the aggregate maximum
// is what the operator must provision.
//
// Execution model. Poisson thinning makes the per-video request streams
// *independent* Poisson processes of rate λ·p_v, so the catalog shards
// cleanly: the engine cuts the ranks into fixed-size contiguous shards,
// simulates each shard's videos on a worker pool (each video drawing its
// arrivals from its own RNG substream, rng.fork(rank + 1)), and merges the
// per-shard per-slot stream totals in shard order. Because the shard
// decomposition and the merge order never depend on the thread count, the
// result is bit-identical for a given seed at any `num_threads`
// (DESIGN.md §8 has the full argument).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dhb.h"
#include "server/adaptive_video.h"
#include "sim/zipf.h"

namespace vod::obs {
class EngineObserver;
}  // namespace vod::obs

namespace vod {

enum class VideoPolicy { kDhb, kStatic, kHybrid, kAdaptive };

struct MultiVideoConfig {
  int catalog_size = 20;
  // Default segment count; every video uses it unless per_video_segments
  // overrides. All videos share the slot duration (the server's channel
  // slotting), so segment count == video length in slots.
  int num_segments = 99;
  double slot_duration_s = 72.7;  // the paper's two-hour/99-segment slot
  double zipf_exponent = 0.729;   // classic video-rental skew
  // Aggregate request rate across the catalog. 0 is a legal degenerate
  // config — a dead server simulates to an all-idle (or all-static) result
  // with no arrivals, never a NaN.
  double total_requests_per_hour = 200.0;
  // When > 0, per-video arrivals follow the §1 diurnal demand curve
  // instead of a flat rate: video v sees daily_demand_curve with off-peak
  // total_requests_per_hour·p_v and peak diurnal_peak_requests_per_hour·p_v
  // (thinned non-homogeneous Poisson, same per-video RNG substreams, so
  // results stay bit-identical at any thread count). Must be >=
  // total_requests_per_hour when set; 0 keeps the homogeneous process.
  double diurnal_peak_requests_per_hour = 0.0;
  double warmup_hours = 8.0;
  double measured_hours = 150.0;
  VideoPolicy policy = VideoPolicy::kDhb;
  int hybrid_static_top = 3;  // kHybrid: ranks served statically

  // kAdaptive knobs: estimator half life / warm-up and the controller's
  // hysteresis bands + dwell, shared by every video in the catalog
  // (num_segments and fast_admission are overridden per video by the
  // engine). The default ladder is the measured n = 99 one
  // (default_adaptive_controller()). A pinned ladder
  // (controller.min_mode == controller.max_mode) runs a fixed protocol
  // through the identical code path — the bench's frontier baselines.
  AdaptiveVideoConfig adaptive;

  // When > 0, the engine also reports provisioned bandwidth: per video,
  // the measured slots are cut into windows of this many slots and the
  // per-window maximum stream count is averaged into
  // MultiVideoResult::per_video_provisioned — the per-rate channel
  // reservation the paper's Figure 8 compares (a window of ~1 h captures
  // "channels the operator must hold for this video this hour"). 0 skips
  // the accounting and leaves the vector empty.
  uint64_t provision_window_slots = 0;

  // Heterogeneous catalogs (§4: each video gets a channel bandwidth b at
  // least its own minimum). When non-empty, both vectors must have
  // catalog_size entries: per-video lengths in slots, and per-video stream
  // rates in KB/s (for the aggregate KB/s accounting). Empty means the
  // homogeneous defaults (rate 1.0 "unit b" per stream).
  std::vector<int> per_video_segments;
  std::vector<double> per_video_rate_kbs;

  // Worker threads for the sharded engine: 1 runs every shard inline on
  // the calling thread (the sequential path), n >= 2 uses a ThreadPool of
  // n workers, 0 means auto (one per hardware thread). The result is
  // bit-identical across all values for a fixed seed.
  int num_threads = 1;

  // Run each per-video DhbScheduler on its admission fast path (placement
  // index + same-slot batch coalescing). The naive mode exists for
  // differential testing and baseline benchmarks only — results are
  // bit-identical either way, at any thread count.
  bool fast_admission = true;

  // Optional instrumentation (obs/trace.h). When set, the engine prepares
  // one metric shard + trace ring per catalog shard, installs the matching
  // ObsSink on whichever worker runs the shard, and folds every per-video
  // scheduler's dhb_* counters into its shard — so the observer's merged
  // view is bit-identical at any num_threads. Never read by the
  // simulation: results are unchanged whether an observer is attached.
  // Shard handoff re-arms the per-shard single-writer checks
  // (EngineObserver::sink() → detach_writer(); DESIGN.md §11), so Debug
  // builds verify that workers really do touch disjoint shards.
  obs::EngineObserver* observer = nullptr;

  uint64_t seed = 42;
};

struct MultiVideoResult {
  double avg_streams = 0.0;        // aggregate time-average, stream count
  double max_streams = 0.0;        // aggregate per-slot maximum
  double avg_kbs = 0.0;            // aggregate in KB/s (rate-weighted)
  double max_kbs = 0.0;
  uint64_t requests = 0;
  uint64_t measured_slots = 0;     // slots contributing to the averages
  std::vector<double> per_video_avg;      // streams, one entry per rank
  std::vector<uint64_t> per_video_requests;
  // Mean per-window peak streams per rank; empty unless
  // provision_window_slots > 0 (windows that end inside the measured span
  // only — a trailing partial window is dropped, never NaN).
  std::vector<double> per_video_provisioned;
  // kAdaptive only: lifetime mode switches per rank (0 elsewhere).
  std::vector<uint64_t> per_video_switches;
};

MultiVideoResult run_multi_video_simulation(const MultiVideoConfig& config);

}  // namespace vod
