#include "server/vod_server.h"

#include <algorithm>
#include <span>

#include "schedule/client_plan.h"
#include "util/check.h"

namespace vod {

VodServer::VodServer(const DhbConfig& config) : scheduler_(config) {}

std::vector<ServerTransmission> VodServer::advance_slot() {
  VOD_DCHECK_SERIAL(serial_);
  const std::span<const Segment> segments = scheduler_.advance_slot_view();

  // Channel assignment is per slot: instances occupy a channel for exactly
  // one slot, so the lowest channels are handed out in scheduling order.
  std::vector<ServerTransmission> out;
  out.reserve(segments.size());
  for (size_t k = 0; k < segments.size(); ++k) {
    out.push_back(ServerTransmission{static_cast<int>(k), segments[k]});
  }
  channels_in_use_ = static_cast<int>(segments.size());
  peak_channels_ = std::max(peak_channels_, channels_in_use_);
  total_transmissions_ += segments.size();

  // Watching sessions consume one segment per slot, starting the slot
  // after their (re-)admission.
  const Slot now = scheduler_.current_slot();
  for (auto& [id, info] : sessions_) {
    if (info.state != SessionState::kWatching) continue;
    if (info.admitted_slot >= now) continue;  // admitted this very slot
    ++info.next_segment;
    if (info.next_segment > scheduler_.num_segments()) {
      info.state = SessionState::kFinished;
    }
  }
  return out;
}

VodServer::ClientId VodServer::start() {
  VOD_DCHECK_SERIAL(serial_);
  const ClientId id = next_id_++;
  SessionInfo info;
  info.admitted_slot = scheduler_.current_slot();
  const DhbRequestResult r = scheduler_.on_request();
  info.playout_ok = verify_plan(r.plan, scheduler_.periods()).deadlines_met;
  sessions_.emplace(id, info);
  return id;
}

VodServer::SessionInfo& VodServer::live_session(ClientId id) {
  VOD_DCHECK_SERIAL(serial_);  // chokepoint for the pause/resume/stop mutators
  auto it = sessions_.find(id);
  VOD_CHECK_MSG(it != sessions_.end(), "unknown session id");
  return it->second;
}

void VodServer::pause(ClientId id) {
  SessionInfo& info = live_session(id);
  VOD_CHECK_MSG(info.state == SessionState::kWatching,
                "only a watching session can pause");
  info.state = SessionState::kPaused;
}

void VodServer::resume(ClientId id) {
  SessionInfo& info = live_session(id);
  VOD_CHECK_MSG(info.state == SessionState::kPaused,
                "only a paused session can resume");
  // Nothing left to watch: the pause happened after the last segment.
  if (info.next_segment > scheduler_.num_segments()) {
    info.state = SessionState::kFinished;
    return;
  }
  const DhbRequestResult r = scheduler_.on_resume(info.next_segment);
  info.playout_ok =
      info.playout_ok &&
      verify_plan(r.plan, scheduler_.resume_periods(info.next_segment))
          .deadlines_met;
  info.admitted_slot = scheduler_.current_slot();
  info.state = SessionState::kWatching;
  ++info.resumes;
}

void VodServer::stop(ClientId id) {
  live_session(id).state = SessionState::kStopped;
}

const VodServer::SessionInfo& VodServer::session(ClientId id) const {
  auto it = sessions_.find(id);
  VOD_CHECK_MSG(it != sessions_.end(), "unknown session id");
  return it->second;
}

int VodServer::active_sessions() const {
  int n = 0;
  for (const auto& [id, info] : sessions_) {
    if (info.state == SessionState::kWatching ||
        info.state == SessionState::kPaused) {
      ++n;
    }
  }
  return n;
}

}  // namespace vod
