// New Pagoda Broadcasting (paper §2, Figure 2; Pâris, ICCCN'99).
//
// NPB fills k streams with fixed-size segments under the pinwheel
// constraint "segment S_j appears in every window of j slots", packing far
// more segments per stream than FB (9 vs 7 on three streams) by giving each
// segment a transmission period close to its index. The DHB paper does not
// reproduce the published mapping tables, so we reconstruct the protocol
// with recursive frequency splitting — the general construction behind the
// pagoda family (cf. Tseng et al.'s RFS): each stream starts as one
// arithmetic progression of slots with stride 1; to place segment s, the
// packer picks the free progression (stride m) maximizing the usable period
// floor(s/m)*m, splits it into floor(s/m) child progressions of that
// period, assigns one to S_s and returns the rest to the pool.
//
// Properties (all checked by validate()):
//   * S_s is transmitted exactly every stride(s) <= s slots, so every
//     pinwheel window is satisfied with zero jitter;
//   * progressions on one stream are pairwise disjoint residue classes;
//   * capacity(3) == 9, reproducing NPB's headline datapoint, and
//     capacity(k) is bounded above by the harmonic limit H_n <= k, which
//     proves 99 segments need >= 6 streams (the level of the NPB line in
//     the paper's Figures 7 and 8).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "protocols/static_mapping.h"

namespace vod {

class NpbMapping final : public StaticMapping {
 public:
  // Builds a k-stream mapping for n segments; nullopt when the packer runs
  // out of progressions before placing all n segments.
  static std::optional<NpbMapping> build(int streams, int num_segments);

  int streams() const override { return streams_; }
  int num_segments() const override { return n_; }
  Segment segment_at(int stream, Slot slot) const override;
  // Least common multiple of all strides, saturated at 2^62 when the exact
  // cycle is astronomically long (use validate() instead of the generic
  // horizon validator in that case).
  Slot cycle_length() const override { return cycle_len_; }

  // Transmission period of segment j (its stride).
  Slot period_of(Segment j) const;

  // Analytic validation: strides within deadlines, residue classes disjoint
  // per stream, every segment placed exactly once.
  MappingValidation validate() const;

  // Largest n the packer fits on k streams. Cached per k.
  static int capacity(int streams);
  // Smallest k that carries n segments.
  static int streams_for(int num_segments);
  // Harmonic necessary condition: max n with H_n <= k; an upper bound on
  // ANY fixed-segment equal-bandwidth protocol, NPB included.
  static int harmonic_capacity(int streams);

 private:
  struct Entry {
    Segment segment = 0;
    Slot stride = 0;  // transmission period
    Slot offset = 0;  // slots with (slot-1) % stride == offset carry it
  };

  NpbMapping() = default;

  // Entries of stream k, in placement order (CSR row view over entries_).
  const Entry* stream_begin(int k) const {
    return entries_.data() + stream_offsets_[static_cast<size_t>(k)];
  }
  const Entry* stream_end(int k) const {
    return entries_.data() + stream_offsets_[static_cast<size_t>(k) + 1];
  }

  int streams_ = 0;
  int n_ = 0;
  Slot cycle_len_ = 1;
  // Per-stream entries in CSR form (DESIGN.md §14): stream k's entries are
  // entries_[stream_offsets_[k] .. stream_offsets_[k+1]), flattened once at
  // the end of build() — the mapping is immutable afterwards, so segment_at
  // probes one contiguous run instead of chasing a nested vector.
  std::vector<int> stream_offsets_;  // [streams_ + 1]
  std::vector<Entry> entries_;       // all placements, grouped by stream
  std::vector<Slot> period_;         // period_[j] = stride of S_j
};

}  // namespace vod
