// Selective Catching (Gao, Zhang & Towsley — paper §2): the other
// reactive/proactive hybrid. The server dedicates channels to a periodic
// broadcast of the video and uses extra "catching" streams so every client
// starts playback immediately: a new client tunes into the ongoing
// broadcast cycle and receives only the part it missed on a short
// dedicated stream.
//
// Model. The broadcast side is FB with k channels (segment slots of
// d = D / (2^k - 1)); the catching side gives a client arriving inside a
// slot the already-elapsed part of the current S_1 transmission, i.e. an
// expected d/2 of unicast. Server bandwidth:
//
//     B(k) = k * P(broadcast channel busy...) -- the dedicated channels are
//            always on -- plus lambda * d / 2 for catching,
//     B(k) = k + lambda * D / (2 * (2^k - 1)).
//
// Optimizing k gives the O(log(lambda * L)) growth the paper quotes for
// SC. Like stream tapping (and unlike DHB/UD), SC offers zero-delay
// access, which is why §3 says "similar considerations would apply to
// selective catching" when explaining why the reactive curve loses above
// two requests per hour.
#pragma once

#include <cstdint>

#include "sim/arrival_process.h"

namespace vod {

struct SelectiveCatchingConfig {
  double video_duration_s = 7200.0;
  // Dedicated FB broadcast channels; <= 0 picks the optimum for the rate.
  int broadcast_channels = -1;
  double requests_per_hour = 10.0;
  double warmup_hours = 8.0;
  double measured_hours = 200.0;
  uint64_t seed = 42;
};

struct SelectiveCatchingResult {
  double avg_streams = 0.0;
  double max_streams = 0.0;
  uint64_t requests = 0;
  int broadcast_channels = 0;  // the k actually used
};

// Closed form B(k) above (units of b). lambda in requests/second.
double selective_catching_expected_bandwidth(double lambda,
                                             double duration_s,
                                             int broadcast_channels);

// k minimizing the closed form for this rate.
int selective_catching_optimal_channels(double lambda, double duration_s);

SelectiveCatchingResult run_selective_catching_simulation(
    const SelectiveCatchingConfig& config);
SelectiveCatchingResult run_selective_catching_simulation(
    const SelectiveCatchingConfig& config, ArrivalProcess& arrivals);

}  // namespace vod
