#include "protocols/on_demand.h"

#include <cmath>
#include <limits>
#include <vector>

#include "schedule/bandwidth_meter.h"
#include "sim/random.h"
#include "util/check.h"

namespace vod {

SlottedSimResult run_on_demand_simulation(const StaticMapping& mapping,
                                          const SlottedSimConfig& sim) {
  PoissonProcess arrivals(per_hour(sim.requests_per_hour), Rng(sim.seed));
  return run_on_demand_simulation(mapping, sim, arrivals);
}

SlottedSimResult run_on_demand_simulation(const StaticMapping& mapping,
                                          const SlottedSimConfig& sim,
                                          ArrivalProcess& arrivals) {
  VOD_CHECK(mapping.num_segments() == sim.video.num_segments);
  const double d = sim.video.slot_duration_s();
  const uint64_t warmup_slots =
      static_cast<uint64_t>(std::ceil(sim.warmup_hours * 3600.0 / d));
  const uint64_t total_slots =
      warmup_slots +
      static_cast<uint64_t>(std::ceil(sim.measured_hours * 3600.0 / d));

  BandwidthMeter meter(warmup_slots,
                       std::max<uint64_t>(1, (total_slots - warmup_slots) / 32));
  SlottedSimResult result;

  // prev[m] = most recent slot in which the mapping scheduled S_m
  // (performed or not); last_arrival starts strictly below every prev
  // value so an idle system transmits nothing.
  std::vector<Slot> prev(static_cast<size_t>(mapping.num_segments()) + 1,
                         std::numeric_limits<Slot>::min() / 2);
  Slot last_arrival = std::numeric_limits<Slot>::min();
  double next_arrival = arrivals.next();

  for (uint64_t step = 1; step <= total_slots; ++step) {
    const Slot t = static_cast<Slot>(step);
    int busy = 0;
    for (int k = 0; k < mapping.streams(); ++k) {
      const Segment m = mapping.segment_at(k, t);
      if (m == 0) continue;
      // Needed iff some client arrived since the previous occurrence: its
      // first occurrence of S_m after arrival is this one.
      if (last_arrival >= prev[static_cast<size_t>(m)]) ++busy;
      prev[static_cast<size_t>(m)] = t;
    }
    meter.add_slot(busy);

    const double slot_end = static_cast<double>(t) * d;
    while (next_arrival < slot_end) {
      last_arrival = t;
      if (step > warmup_slots) ++result.requests;
      next_arrival = arrivals.next();
    }
  }

  result.avg_streams = meter.mean_streams();
  result.max_streams = meter.max_streams();
  result.avg_ci = meter.mean_ci95();
  return result;
}

}  // namespace vod
