#include "protocols/fast_broadcasting.h"

#include <numeric>

#include "schedule/slot_math.h"
#include "util/check.h"

namespace vod {

FbMapping::FbMapping(int num_segments) : n_(num_segments) {
  VOD_CHECK(num_segments >= 1);
  for (int first = 1; first <= n_; first *= 2) {
    const int last = std::min(2 * first - 1, n_);
    first_.push_back(first);
    count_.push_back(last - first + 1);
  }
  cycle_ = 1;
  for (int c : count_) cycle_ = std::lcm<Slot>(cycle_, c);
}

Segment FbMapping::segment_at(int stream, Slot slot) const {
  VOD_DCHECK(stream >= 0 && stream < streams());
  VOD_DCHECK(slot >= 1);
  const size_t k = static_cast<size_t>(stream);
  return static_cast<Segment>(
      first_[k] + static_cast<int>(cycle_phase(slot, count_[k])));
}

int FbMapping::stream_of(Segment j) const {
  VOD_CHECK(j >= 1 && j <= n_);
  for (size_t k = 0; k < first_.size(); ++k) {
    if (j < first_[k] + count_[k]) return static_cast<int>(k);
  }
  VOD_CHECK(false);
  return -1;
}

int FbMapping::streams_for(int num_segments) {
  VOD_CHECK(num_segments >= 1);
  int k = 0;
  for (int cap = 1; cap - 1 < num_segments; cap *= 2) ++k;
  return k;
}

int FbMapping::capacity(int streams) {
  VOD_CHECK(streams >= 0 && streams < 31);
  return (1 << streams) - 1;
}

}  // namespace vod
