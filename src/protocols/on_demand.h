// Generic on-demand ("dynamic") variant of ANY static broadcasting
// protocol.
//
// Given a periodic StaticMapping, the on-demand server performs a
// scheduled transmission of segment S_m at slot t only when at least one
// active client needs it — i.e. when some request arrived at or after
// S_m's previous scheduled occurrence, because that client takes the first
// occurrence after its arrival. This single rule instantiates the family
// the paper discusses:
//
//   * on-demand FB        = the UD protocol (§2, [17]) — see ud.h for the
//     closed form this simulator is cross-checked against;
//   * on-demand NPB       = the dynamic NPB the authors tried first (§3);
//   * on-demand SB        = a dynamic-skyscraper (DSB, Eager & Vernon)
//     stand-in: same mapping, same 2-stream client property, without DSB's
//     cluster re-phasing (documented simplification — it only makes our
//     DSB *less* efficient at low rates, never better, so comparisons
//     against it remain conservative).
//
// Bandwidth can never exceed the mapping's stream count, and every client
// still meets its deadlines because performed occurrences are exactly the
// first-after-arrival ones the pinwheel property covers.
#pragma once

#include "core/dhb_simulator.h"
#include "protocols/static_mapping.h"
#include "sim/arrival_process.h"

namespace vod {

// Runs the on-demand variant of `mapping` under Poisson arrivals from the
// config (or a caller-supplied arrival process).
SlottedSimResult run_on_demand_simulation(const StaticMapping& mapping,
                                          const SlottedSimConfig& sim);
SlottedSimResult run_on_demand_simulation(const StaticMapping& mapping,
                                          const SlottedSimConfig& sim,
                                          ArrivalProcess& arrivals);

}  // namespace vod
