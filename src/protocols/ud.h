// The Universal Distribution protocol (paper §2; Pâris, Carter & Long,
// ICME 2000), modelled as the DHB paper describes it: a dynamic
// broadcasting protocol based on FB in which "segments are transmitted
// only on demand", saturating to conventional FB at high arrival rates.
//
// Concretely: the generalized FB mapping fixes which segment each stream
// would broadcast in each slot; a transmission is actually performed only
// if at least one active client needs it. A client arriving during slot a
// takes, for every segment, the first FB occurrence after a; stream j's
// occurrence of its segment at slot t is therefore needed iff some request
// arrived during the preceding rotation period of that stream. This yields
// the closed form
//
//     E[bandwidth] = sum_j (1 - exp(-lambda * d * len_j)),
//
// which the tests check the simulator against — and which converges to
// lambda*D as lambda -> 0 and to FB's k streams as lambda -> infinity,
// matching both limits the paper quotes for UD.
#pragma once

#include <cstdint>

#include "core/dhb_simulator.h"
#include "protocols/fast_broadcasting.h"
#include "schedule/types.h"
#include "sim/arrival_process.h"

namespace vod {

// Runs the on-demand FB (UD) simulation under Poisson arrivals.
SlottedSimResult run_ud_simulation(const SlottedSimConfig& sim);

// Caller-supplied arrivals (tests, time-varying demand).
SlottedSimResult run_ud_simulation(const SlottedSimConfig& sim,
                                   ArrivalProcess& arrivals);

// Closed-form expected bandwidth of UD (units of b) at the given rate.
double ud_expected_bandwidth(const VideoParams& video,
                             double requests_per_hour);

}  // namespace vod
