#include "protocols/skyscraper.h"

#include <numeric>

#include "schedule/slot_math.h"
#include "util/check.h"

namespace vod {

int skyscraper_width(int j) {
  VOD_CHECK(j >= 1);
  // Hua & Sheu's recurrence: 1, 2, 2, then alternating 2w+1 / repeat /
  // 2w+2 / repeat.
  if (j == 1) return 1;
  if (j == 2 || j == 3) return 2;
  int w = 2;  // w(3)
  for (int i = 4; i <= j; ++i) {
    switch (i % 4) {
      case 0:
        w = 2 * w + 1;
        break;
      case 2:
        w = 2 * w + 2;
        break;
      default:
        break;  // odd indices repeat the previous width
    }
  }
  return w;
}

SbMapping::SbMapping(int num_segments) : n_(num_segments) {
  VOD_CHECK(num_segments >= 1);
  int first = 1;
  for (int j = 1; first <= n_; ++j) {
    const int width = skyscraper_width(j);
    const int count = std::min(width, n_ - first + 1);
    first_.push_back(first);
    count_.push_back(count);
    first += count;
  }
  cycle_ = 1;
  for (int c : count_) cycle_ = std::lcm<Slot>(cycle_, c);
}

Segment SbMapping::segment_at(int stream, Slot slot) const {
  VOD_DCHECK(stream >= 0 && stream < streams());
  VOD_DCHECK(slot >= 1);
  const size_t k = static_cast<size_t>(stream);
  return static_cast<Segment>(
      first_[k] + static_cast<int>(cycle_phase(slot, count_[k])));
}

int SbMapping::streams_for(int num_segments) {
  VOD_CHECK(num_segments >= 1);
  int total = 0;
  int k = 0;
  while (total < num_segments) {
    ++k;
    total += skyscraper_width(k);
  }
  return k;
}

int SbMapping::capacity(int streams) {
  int total = 0;
  for (int j = 1; j <= streams; ++j) total += skyscraper_width(j);
  return total;
}

}  // namespace vod
