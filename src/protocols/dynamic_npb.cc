#include "protocols/dynamic_npb.h"

#include "protocols/on_demand.h"

namespace vod {

SlottedSimResult run_dynamic_npb_simulation(const NpbMapping& mapping,
                                            const SlottedSimConfig& sim) {
  return run_on_demand_simulation(mapping, sim);
}

SlottedSimResult run_dynamic_npb_simulation(const NpbMapping& mapping,
                                            const SlottedSimConfig& sim,
                                            ArrivalProcess& arrivals) {
  return run_on_demand_simulation(mapping, sim, arrivals);
}

}  // namespace vod
