#include "protocols/stream_tapping.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "sim/random.h"
#include "util/check.h"
#include "util/interval_set.h"

namespace vod {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Piecewise-constant "latest carrier" map over content seconds [0, D),
// used by the ideal-merging mode.
//
// A(x) = admission time of the most recent live stream transmitting content
// second x. Under just-in-time transmission that stream sends x at wall
// time A(x) + x, so a request arriving at t can tap x iff A(x) + x > t.
class CarrierMap {
 public:
  explicit CarrierMap(double duration) : pieces_{{0.0, duration, kNegInf}} {}

  // One pass: extracts the uncovered set {x : A(x) + x <= t} and claims it
  // for a stream admitted at t. Rebuilding in a single sweep keeps the map
  // linear in the number of still-covered claim events.
  IntervalSet claim_uncovered(double t) {
    IntervalSet uncovered;
    std::vector<Piece> next;
    next.reserve(pieces_.size() + 1);
    for (const Piece& p : pieces_) {
      const double cut = std::min(p.hi, t - p.a);
      if (cut <= p.lo) {
        push_merged(&next, p);
        continue;
      }
      uncovered.add(p.lo, cut);
      push_merged(&next, Piece{p.lo, cut, t});
      if (cut < p.hi) push_merged(&next, Piece{cut, p.hi, p.a});
    }
    pieces_ = std::move(next);
    return uncovered;
  }

  // Marks the whole video as carried by an original admitted at t.
  void claim_all(double t) {
    const double duration = pieces_.back().hi;
    pieces_ = {{0.0, duration, t}};
  }

 private:
  struct Piece {
    double lo, hi, a;
  };

  static void push_merged(std::vector<Piece>* v, Piece p) {
    if (!v->empty() && v->back().a == p.a && v->back().hi == p.lo) {
      v->back().hi = p.hi;
    } else {
      v->push_back(p);
    }
  }

  std::vector<Piece> pieces_;  // sorted, contiguous partition of [0, D)
};

// A first-level patch: a contiguous prefix [0, delta) admitted at time t.
// Later stream-tapping clients may tap it; patches that themselves tapped a
// patch are second-level and are never tapped (single-level extra tapping —
// the recursion-free reading of Carter & Long's protocol; full recursive
// fragment tapping is the separate kIdealMerging mode).
struct Level1Patch {
  double admitted = 0.0;
  double delta = 0.0;
};

}  // namespace

TappingResult run_tapping_simulation(const TappingConfig& config) {
  TappingConfig c = config;
  if (c.restart_threshold_s <= 0.0) {
    c.restart_threshold_s = optimize_restart_threshold(config);
  }
  PoissonProcess arrivals(per_hour(c.requests_per_hour), Rng(c.seed));
  return run_tapping_simulation(c, arrivals);
}

TappingResult run_tapping_simulation(const TappingConfig& config,
                                     ArrivalProcess& arrivals) {
  const double D = config.video_duration_s;
  VOD_CHECK(D > 0.0);
  const double theta = config.restart_threshold_s > 0.0
                           ? std::min(config.restart_threshold_s, D)
                           : D;
  const double w_lo = config.warmup_hours * 3600.0;
  const double w_hi = w_lo + config.measured_hours * 3600.0;

  TappingResult result;
  result.restart_threshold_s = theta;

  CarrierMap carriers(D);           // kIdealMerging only
  double original_start = kNegInf;  // kPatching / kStreamTapping
  std::vector<Level1Patch> level1;  // kStreamTapping only

  std::vector<std::pair<double, int>> events;  // (wall time, +1/-1)
  double busy_seconds = 0.0;
  double cost_sum = 0.0;

  // Records the just-in-time activity of content range [lo, hi) carried by
  // a stream admitted at t: active on the wall interval [t+lo, t+hi).
  auto emit = [&](double t, double lo, double hi) {
    const double a = std::max(t + lo, w_lo);
    const double b = std::min(t + hi, w_hi);
    if (b <= a) return;
    busy_seconds += b - a;
    events.push_back({a, +1});
    events.push_back({b, -1});
  };

  double t = arrivals.next();
  while (t < w_hi) {
    IntervalSet own;  // what this client's stream must carry
    if (config.mode == TappingMode::kIdealMerging) {
      own = carriers.claim_uncovered(t);
    } else {
      const double delta = t - original_start;
      if (delta >= D) {
        own.add(0.0, D);  // no catchable original is live
      } else {
        own.add(0.0, delta);
        if (config.mode == TappingMode::kStreamTapping) {
          std::erase_if(level1, [&](const Level1Patch& p) {
            return t - p.admitted >= p.delta;
          });
          for (const Level1Patch& p : level1) {
            // The patch still transmits content (t - admitted, delta).
            own.subtract(t - p.admitted, std::min(p.delta, delta));
          }
        }
      }
    }
    const double cost = own.measure();

    if (cost >= theta) {
      // Cheaper in the long run to begin a fresh original stream.
      if (config.mode == TappingMode::kIdealMerging) {
        carriers.claim_all(t);
      } else {
        original_start = t;
      }
      emit(t, 0.0, D);
      if (t >= w_lo) {
        ++result.originals;
        cost_sum += D;
      }
    } else {
      if (config.mode == TappingMode::kStreamTapping &&
          !own.intervals().empty() &&
          own.intervals().front().length() + 1e-9 >= t - original_start) {
        // Tapped only the original: this is a first-level patch [0, delta)
        // that later clients may tap.
        level1.push_back(Level1Patch{t, t - original_start});
      }
      for (const Interval& piece : own.intervals()) {
        emit(t, piece.lo, piece.hi);
      }
      if (t >= w_lo) cost_sum += cost;
    }
    if (t >= w_lo) ++result.requests;
    t = arrivals.next();
  }

  result.avg_streams = busy_seconds / (w_hi - w_lo);
  if (result.requests > 0) {
    result.avg_cost_s = cost_sum / static_cast<double>(result.requests);
  }

  // Maximum concurrency: sweep the activity events; close before open at
  // equal times so touching intervals do not double-count.
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              return a.first < b.first ||
                     (a.first == b.first && a.second < b.second);
            });
  int active = 0;
  int peak = 0;
  for (const auto& [time, delta] : events) {
    active += delta;
    peak = std::max(peak, active);
  }
  result.max_streams = peak;
  return result;
}

double optimize_restart_threshold(const TappingConfig& config) {
  // Short pilot runs over a geometric threshold grid; the cost surface is
  // smooth enough that the coarse grid finds a near-optimal restart point.
  TappingConfig pilot = config;
  pilot.warmup_hours = std::min(config.warmup_hours, 4.0);
  pilot.measured_hours = std::min(config.measured_hours, 60.0);
  const double D = config.video_duration_s;

  double best_theta = D;
  double best_bw = -1.0;
  // Integer induction over the geometric grid D, D/2, ..., D/256 (halving
  // a double is exact, so the grid points are unchanged; cert-flp30-c
  // bans the float loop counter this replaces).
  for (int halvings = 0; halvings <= 8; ++halvings) {
    const double theta = D / static_cast<double>(1 << halvings);
    pilot.restart_threshold_s = theta;
    PoissonProcess arrivals(per_hour(pilot.requests_per_hour),
                            Rng(pilot.seed ^ 0x5eed));
    const TappingResult r = run_tapping_simulation(pilot, arrivals);
    if (best_bw < 0.0 || r.avg_streams < best_bw) {
      best_bw = r.avg_streams;
      best_theta = theta;
    }
  }
  return best_theta;
}

}  // namespace vod
