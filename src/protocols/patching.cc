#include "protocols/patching.h"

#include <cmath>

#include "util/check.h"

namespace vod {

TappingResult run_patching_simulation(TappingConfig config) {
  config.mode = TappingMode::kPatching;
  return run_tapping_simulation(config);
}

TappingResult run_patching_simulation(TappingConfig config,
                                      ArrivalProcess& arrivals) {
  config.mode = TappingMode::kPatching;
  if (config.restart_threshold_s <= 0.0) {
    config.restart_threshold_s = patching_optimal_threshold(
        per_hour(config.requests_per_hour), config.video_duration_s);
  }
  return run_tapping_simulation(config, arrivals);
}

double patching_expected_bandwidth(double lambda, double duration_s,
                                   double threshold_s) {
  VOD_CHECK(lambda > 0.0);
  VOD_CHECK(duration_s > 0.0);
  const double theta = threshold_s;
  // Renewal-reward over restart cycles. A cycle starts with an original at
  // the threshold-crossing arrival; patches arrive during the next theta
  // seconds (Poisson, mean offset theta/2 each); the cycle closes at the
  // first arrival after the threshold (mean residual 1/lambda).
  const double cost = duration_s + lambda * theta * theta / 2.0;
  const double cycle = theta + 1.0 / lambda;
  return cost / cycle;
}

double patching_optimal_threshold(double lambda, double duration_s) {
  VOD_CHECK(lambda > 0.0);
  VOD_CHECK(duration_s > 0.0);
  // d/dtheta of the closed form vanishes at
  // lambda*theta^2/2 + theta - D = 0.
  return (std::sqrt(1.0 + 2.0 * lambda * duration_s) - 1.0) / lambda;
}

}  // namespace vod
