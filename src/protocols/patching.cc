#include "protocols/patching.h"

#include <cmath>

#include "util/check.h"

namespace vod {

namespace {

// Default-threshold resolution shared by both overloads. Patching has a
// closed-form optimum, so the default is analytic — the pilot-run grid
// search run_tapping_simulation() would fall back to exists for tapping,
// where no closed form is known. (The two overloads used to disagree: the
// no-arrivals one fell through to the grid search while the
// explicit-arrivals one applied the closed form, so the same config could
// simulate under two different thresholds.) A zero request rate leaves the
// threshold at the video length: the optimum is undefined at lambda = 0
// and no request ever consults it.
void resolve_patching_threshold(TappingConfig* config) {
  if (config->restart_threshold_s > 0.0) return;
  config->restart_threshold_s =
      config->requests_per_hour > 0.0
          ? patching_optimal_threshold(per_hour(config->requests_per_hour),
                                       config->video_duration_s)
          : config->video_duration_s;
}

}  // namespace

TappingResult run_patching_simulation(TappingConfig config) {
  config.mode = TappingMode::kPatching;
  resolve_patching_threshold(&config);
  return run_tapping_simulation(config);
}

TappingResult run_patching_simulation(TappingConfig config,
                                      ArrivalProcess& arrivals) {
  config.mode = TappingMode::kPatching;
  resolve_patching_threshold(&config);
  return run_tapping_simulation(config, arrivals);
}

double patching_expected_bandwidth(double lambda, double duration_s,
                                   double threshold_s) {
  VOD_CHECK(lambda > 0.0);
  VOD_CHECK(duration_s > 0.0);
  const double theta = threshold_s;
  // Renewal-reward over restart cycles. A cycle starts with an original at
  // the threshold-crossing arrival; patches arrive during the next theta
  // seconds (Poisson, mean offset theta/2 each); the cycle closes at the
  // first arrival after the threshold (mean residual 1/lambda).
  const double cost = duration_s + lambda * theta * theta / 2.0;
  const double cycle = theta + 1.0 / lambda;
  return cost / cycle;
}

double patching_optimal_threshold(double lambda, double duration_s) {
  VOD_CHECK(lambda > 0.0);
  VOD_CHECK(duration_s > 0.0);
  // d/dtheta of the closed form vanishes at
  // lambda*theta^2/2 + theta - D = 0.
  return (std::sqrt(1.0 + 2.0 * lambda * duration_s) - 1.0) / lambda;
}

}  // namespace vod
