#include "protocols/npb.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>

#include "schedule/slot_math.h"
#include "util/check.h"

namespace vod {
namespace {

// A free arithmetic progression of slots on one stream.
struct Leaf {
  int stream = 0;
  Slot stride = 0;
  Slot offset = 0;
};

constexpr Slot kCycleSaturation = Slot{1} << 62;

Slot saturating_lcm(Slot a, Slot b) {
  const Slot g = std::gcd(a, b);
  const Slot q = a / g;
  if (q > kCycleSaturation / b) return kCycleSaturation;
  return q * b;
}

}  // namespace

std::optional<NpbMapping> NpbMapping::build(int streams, int num_segments) {
  VOD_CHECK(streams >= 1);
  VOD_CHECK(num_segments >= 1);

  std::vector<Leaf> pool;
  pool.reserve(64);
  for (int k = 0; k < streams; ++k) pool.push_back(Leaf{k, 1, 0});

  NpbMapping m;
  m.streams_ = streams;
  m.n_ = num_segments;
  m.period_.assign(static_cast<size_t>(num_segments) + 1, 0);
  // Placements tagged with their stream; flattened into the CSR layout
  // once every segment has found a progression.
  std::vector<std::pair<int, Entry>> placed;
  placed.reserve(static_cast<size_t>(num_segments));

  for (Segment s = 1; s <= num_segments; ++s) {
    // Pick the free progression with the largest usable period
    // floor(s/m)*m <= s; prefer the larger stride on ties (splitting a
    // coarse progression wastes less future capacity).
    int best = -1;
    Slot best_period = 0;
    for (size_t i = 0; i < pool.size(); ++i) {
      const Slot stride = pool[i].stride;
      if (stride > s) continue;
      const Slot period = (s / stride) * stride;
      if (best < 0 || period > best_period ||
          (period == best_period && stride > pool[static_cast<size_t>(best)].stride)) {
        best = static_cast<int>(i);
        best_period = period;
      }
    }
    if (best < 0) return std::nullopt;  // no progression fits segment s

    const Leaf leaf = pool[static_cast<size_t>(best)];
    pool.erase(pool.begin() + best);
    const Slot c = s / leaf.stride;  // split factor; child stride = c*stride
    // Child 0 carries the segment; children 1..c-1 return to the pool.
    placed.push_back({leaf.stream, Entry{s, c * leaf.stride, leaf.offset}});
    m.period_[static_cast<size_t>(s)] = c * leaf.stride;
    for (Slot child = 1; child < c; ++child) {
      pool.push_back(
          Leaf{leaf.stream, c * leaf.stride, leaf.offset + child * leaf.stride});
    }
  }

  // Counting-sort the placements by stream into the CSR arrays; placement
  // order within a stream is preserved (the stable bucket fill).
  m.stream_offsets_.assign(static_cast<size_t>(streams) + 1, 0);
  for (const auto& [k, e] : placed) ++m.stream_offsets_[static_cast<size_t>(k) + 1];
  for (int k = 0; k < streams; ++k) {
    m.stream_offsets_[static_cast<size_t>(k) + 1] +=
        m.stream_offsets_[static_cast<size_t>(k)];
  }
  m.entries_.resize(placed.size());
  std::vector<int> fill(m.stream_offsets_.begin(), m.stream_offsets_.end() - 1);
  for (const auto& [k, e] : placed) {
    m.entries_[static_cast<size_t>(fill[static_cast<size_t>(k)]++)] = e;
  }

  m.cycle_len_ = 1;
  for (const Entry& e : m.entries_) {
    m.cycle_len_ = saturating_lcm(m.cycle_len_, e.stride);
  }
  VOD_CHECK(m.validate().ok);
  return m;
}

Segment NpbMapping::segment_at(int stream, Slot slot) const {
  VOD_DCHECK(stream >= 0 && stream < streams_);
  VOD_DCHECK(slot >= 1);
  for (const Entry* e = stream_begin(stream); e != stream_end(stream); ++e) {
    if (stride_hits(slot, e->stride, e->offset)) return e->segment;
  }
  return 0;
}

Slot NpbMapping::period_of(Segment j) const {
  VOD_CHECK(j >= 1 && j <= n_);
  return period_[static_cast<size_t>(j)];
}

MappingValidation NpbMapping::validate() const {
  MappingValidation v;
  std::vector<int> placed(static_cast<size_t>(n_) + 1, 0);
  for (int k = 0; k < streams_; ++k) {
    const Entry* entries = stream_begin(k);
    const size_t count =
        static_cast<size_t>(stream_end(k) - stream_begin(k));
    for (size_t a = 0; a < count; ++a) {
      const Entry& ea = entries[a];
      if (ea.stride > ea.segment) {
        std::ostringstream os;
        os << "segment S" << ea.segment << " has period " << ea.stride
           << " > " << ea.segment;
        v.ok = false;
        v.error = os.str();
        return v;
      }
      if (ea.offset < 0 || ea.offset >= ea.stride) {
        v.ok = false;
        v.error = "offset outside stride";
        return v;
      }
      ++placed[static_cast<size_t>(ea.segment)];
      // Two progressions on the same stream collide iff their offsets are
      // congruent modulo gcd(strides).
      for (size_t b = a + 1; b < count; ++b) {
        const Entry& eb = entries[b];
        const Slot g = std::gcd(ea.stride, eb.stride);
        if (congruent_mod(ea.offset, eb.offset, g)) {
          std::ostringstream os;
          os << "S" << ea.segment << " and S" << eb.segment
             << " collide on one stream";
          v.ok = false;
          v.error = os.str();
          return v;
        }
      }
    }
  }
  for (Segment j = 1; j <= n_; ++j) {
    if (placed[static_cast<size_t>(j)] != 1) {
      std::ostringstream os;
      os << "segment S" << j << " placed " << placed[static_cast<size_t>(j)]
         << " times";
      v.ok = false;
      v.error = os.str();
      return v;
    }
  }
  return v;
}

int NpbMapping::harmonic_capacity(int streams) {
  double h = 0.0;
  int n = 0;
  for (;;) {
    h += 1.0 / static_cast<double>(n + 1);
    if (h > static_cast<double>(streams)) return n;
    ++n;
  }
}

int NpbMapping::capacity(int streams) {
  static std::map<int, int> cache;
  if (auto it = cache.find(streams); it != cache.end()) return it->second;
  // The greedy packer is monotone in n (placing fewer segments never needs
  // more room), so the capacity is the last n that still builds.
  int n = streams;
  const int limit = harmonic_capacity(streams);
  while (n <= limit && build(streams, n + 1).has_value()) ++n;
  if (!build(streams, n).has_value()) n = 0;  // fewer segments than streams
  cache[streams] = n;
  return n;
}

int NpbMapping::streams_for(int num_segments) {
  for (int k = 1;; ++k) {
    if (harmonic_capacity(k) < num_segments) continue;  // provably impossible
    if (capacity(k) >= num_segments) return k;
  }
}

}  // namespace vod
