// The reactive protocols of the paper's Figure 7 ("Stream Tapping/
// Patching", Carter & Long / Hua, Cai & Sheu), plus an idealized merging
// reference.
//
// Model (continuous time, unlimited client buffer — the configuration the
// paper simulates): the server keeps "original" streams carrying the whole
// video and per-request patch streams. Content second x of a stream
// admitted at wall time a is transmitted at wall time a + x, so a client
// arriving at t can tap, from any live stream, exactly the content beyond
// t - a. Three service policies are provided:
//
//  * kPatching — the client taps the latest original only; its own stream
//    carries the whole missed prefix [0, delta). Classic patching, with the
//    closed-form average sqrt(1 + 2*lambda*D) - 1 at the optimal restart
//    threshold (see patching.h).
//  * kStreamTapping — "unlimited extra tapping": the client taps the
//    original AND every live patch, but its own stream is still one
//    contiguous prefix [0, u), u = the last content second nobody else will
//    deliver in time. Slightly cheaper than patching at every rate; same
//    square-root growth. This is the Figure 7 reactive curve.
//  * kIdealMerging — the client's stream carries only the uncovered
//    fragments themselves. The recursive fragment-tapping this enables
//    collapses the cost to gap-filling, tracking the Eager-Vernon-Zahorjan
//    reactive lower bound (~ln(1 + lambda*D)); included as the reference
//    for what HMSM-class protocols (§2) achieve, NOT as stream tapping.
//
// A fresh original is started whenever the client's own stream would cost
// at least the restart threshold; optimize_restart_threshold() picks the
// threshold numerically per arrival rate (the role the option calculation
// plays in the original stream-tapping protocol).
//
// Bandwidth accounting is exact under the transmission model: a stream is
// active at wall w iff (w - a) lies in its carried set, so the average
// comes from total carried measure and the maximum from an event sweep.
#pragma once

#include <cstdint>

#include "sim/arrival_process.h"

namespace vod {

enum class TappingMode {
  kPatching,
  kStreamTapping,
  kIdealMerging,
};

struct TappingConfig {
  double video_duration_s = 7200.0;
  double requests_per_hour = 10.0;
  double warmup_hours = 8.0;
  double measured_hours = 200.0;
  uint64_t seed = 42;
  TappingMode mode = TappingMode::kStreamTapping;
  // Start a new original when a request's own stream would cost at least
  // this many stream-seconds. <= 0 selects the threshold automatically via
  // optimize_restart_threshold().
  double restart_threshold_s = -1.0;
};

struct TappingResult {
  double avg_streams = 0.0;   // time-average bandwidth, units of b
  double max_streams = 0.0;   // max concurrent streams in the window
  uint64_t requests = 0;      // admitted in the measured window
  uint64_t originals = 0;     // full streams started in the window
  double avg_cost_s = 0.0;    // mean own-stream seconds per request
  double restart_threshold_s = 0.0;  // the threshold actually used
};

// Runs the simulation with Poisson arrivals (or caller-supplied arrivals).
TappingResult run_tapping_simulation(const TappingConfig& config);
TappingResult run_tapping_simulation(const TappingConfig& config,
                                     ArrivalProcess& arrivals);

// Sweeps a geometric grid of restart thresholds with short pilot runs and
// returns the threshold minimizing average bandwidth.
double optimize_restart_threshold(const TappingConfig& config);

}  // namespace vod
