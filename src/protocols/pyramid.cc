#include "protocols/pyramid.h"

#include <cmath>

#include "util/check.h"

namespace vod {

double pyramid_max_wait_s(int channels, double rate_multiple,
                          double duration_s) {
  VOD_CHECK(channels >= 1);
  VOD_CHECK(rate_multiple > 1.0);
  VOD_CHECK(duration_s > 0.0);
  const double alpha = rate_multiple;
  // D = d1 * (alpha^k - 1) / (alpha - 1)  =>  d1.
  const double geometric =
      (std::pow(alpha, channels) - 1.0) / (alpha - 1.0);
  return duration_s / geometric;
}

double pyramid_bandwidth(int channels, double rate_multiple) {
  VOD_CHECK(channels >= 1);
  VOD_CHECK(rate_multiple > 1.0);
  return static_cast<double>(channels) * rate_multiple;
}

int pyramid_channels_for(double max_wait_s, double rate_multiple,
                         double duration_s) {
  VOD_CHECK(max_wait_s > 0.0);
  for (int k = 1; k <= 64; ++k) {
    if (pyramid_max_wait_s(k, rate_multiple, duration_s) <= max_wait_s) {
      return k;
    }
  }
  return 64;
}

}  // namespace vod
