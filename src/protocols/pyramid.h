// Pyramid Broadcasting (Viswanathan & Imielinski — the paper's §2 credits
// it as "the first efficient broadcasting protocol", the proposal that
// introduced the set-top buffer).
//
// PB departs from the equal-segment protocols: the video is cut into k
// segments of geometrically increasing size (ratio alpha), each broadcast
// round-robin on its own channel whose bandwidth is a multiple r of the
// consumption rate. A client grabs segment 1 at its next appearance and
// downloads each subsequent segment while consuming the previous one;
// timeliness requires alpha <= r (segment i+1 downloads at rate r in the
// time it takes to play segment i). With the maximum waiting time fixed to
// the duration of segment 1, total length D = d1 * (alpha^k - 1)/(alpha-1),
// so the access latency falls geometrically in k while the server spends
// k * r consumption-rate units — the trade FB/NPB later improved on with
// unit-rate channels.
//
// Analytic only (the successors are simulated; PB is kept for the §2
// capacity comparison).
#pragma once

namespace vod {

// Maximum waiting time (seconds) for k channels at channel-rate multiple r
// (alpha = r), video duration D: the duration of segment 1.
double pyramid_max_wait_s(int channels, double rate_multiple,
                          double duration_s);

// Total server bandwidth in units of b: k * r.
double pyramid_bandwidth(int channels, double rate_multiple);

// Channels needed to reach a waiting time <= max_wait_s at rate multiple r.
int pyramid_channels_for(double max_wait_s, double rate_multiple,
                         double duration_s);

}  // namespace vod
