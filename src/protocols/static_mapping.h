// Framework for proactive (static) broadcasting protocols.
//
// A static protocol is a periodic segment-to-(stream, slot) mapping that is
// broadcast forever, independent of demand. Correctness is the pinwheel
// property: every window of j consecutive slots contains at least one
// transmission of segment S_j, which guarantees a client arriving during
// any slot receives every segment by its stream-through deadline.
//
// The validator checks that property plus stream-count accounting; it is
// shared by FB, SB and the NPB packer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "schedule/types.h"

namespace vod {

class StaticMapping {
 public:
  virtual ~StaticMapping() = default;

  virtual int streams() const = 0;
  virtual int num_segments() const = 0;

  // Segment transmitted on `stream` (0-based) during `slot` (>= 1);
  // 0 = idle. Implementations must be periodic in `slot`.
  virtual Segment segment_at(int stream, Slot slot) const = 0;

  // Period after which the whole mapping repeats (used by validators to
  // bound the horizon they must examine).
  virtual Slot cycle_length() const = 0;
};

struct MappingValidation {
  bool ok = true;
  std::string error;  // human-readable description of the first failure
};

// Checks over one full cycle (plus wrap-around) that:
//  * every segment 1..n appears somewhere,
//  * every gap between consecutive occurrences of S_j is <= j,
//  * no two streams carry the same segment in the same slot redundantly is
//    allowed but reported? — no: duplicates are legal, only gaps matter.
MappingValidation validate_mapping(const StaticMapping& m);

// Reception plan for a client arriving during `arrival`: for each segment,
// the first slot > arrival in which it is transmitted. Used by the dynamic
// variants (UD, dNPB) and by tests.
std::vector<Slot> first_occurrences(const StaticMapping& m, Slot arrival);

// Renders slots [first, last] as a stream/slot grid (the paper's Figures
// 1-3 style).
std::string render_mapping(const StaticMapping& m, Slot first, Slot last);

}  // namespace vod
