// Request batching (Dan, Sitaram & Shahabuddin — the paper's §2 cites it as
// the earliest bandwidth-reduction technique): requests are queued and one
// full multicast stream serves everyone who arrived during the same batching
// interval. Trades a bounded start-up delay (the interval) for bandwidth.
//
// Included as the historical baseline: with interval = slot duration it is
// what a slotted server does with zero segment cleverness, and its average
// bandwidth D/beta * P(batch non-empty) shows why segment-based protocols
// were needed at all.
#pragma once

#include <cstdint>

#include "sim/arrival_process.h"

namespace vod {

struct BatchingConfig {
  double video_duration_s = 7200.0;
  double batch_interval_s = 72.7;  // matches the paper's 99-segment wait
  double requests_per_hour = 10.0;
  double warmup_hours = 8.0;
  double measured_hours = 200.0;
  uint64_t seed = 42;
};

struct BatchingResult {
  double avg_streams = 0.0;
  double max_streams = 0.0;
  uint64_t requests = 0;
  uint64_t streams_started = 0;
};

// Closed form for Poisson arrivals: (D / beta) * (1 - exp(-lambda*beta)).
double batching_expected_bandwidth(const BatchingConfig& config);

BatchingResult run_batching_simulation(const BatchingConfig& config);
BatchingResult run_batching_simulation(const BatchingConfig& config,
                                       ArrivalProcess& arrivals);

}  // namespace vod
