#include "protocols/ud.h"

#include <cmath>
#include <limits>
#include <vector>

#include "schedule/bandwidth_meter.h"
#include "sim/random.h"
#include "util/check.h"

namespace vod {

SlottedSimResult run_ud_simulation(const SlottedSimConfig& sim) {
  PoissonProcess arrivals(per_hour(sim.requests_per_hour), Rng(sim.seed));
  return run_ud_simulation(sim, arrivals);
}

SlottedSimResult run_ud_simulation(const SlottedSimConfig& sim,
                                   ArrivalProcess& arrivals) {
  const FbMapping fb(sim.video.num_segments);
  const double d = sim.video.slot_duration_s();
  const uint64_t warmup_slots =
      static_cast<uint64_t>(std::ceil(sim.warmup_hours * 3600.0 / d));
  const uint64_t total_slots =
      warmup_slots +
      static_cast<uint64_t>(std::ceil(sim.measured_hours * 3600.0 / d));

  std::vector<int> rotation(static_cast<size_t>(fb.streams()));
  for (int k = 0; k < fb.streams(); ++k) {
    rotation[static_cast<size_t>(k)] = fb.rotation_length(k);
  }

  BandwidthMeter meter(warmup_slots,
                       std::max<uint64_t>(1, (total_slots - warmup_slots) / 32));
  SlottedSimResult result;

  Slot last_arrival = std::numeric_limits<Slot>::min() / 2;
  double next_arrival = arrivals.next();

  for (uint64_t step = 1; step <= total_slots; ++step) {
    const Slot t = static_cast<Slot>(step);
    // Stream j transmits its scheduled segment during slot t iff a request
    // arrived within its rotation period: the first occurrence that request
    // waits for is exactly this one.
    int busy = 0;
    for (int len : rotation) {
      if (last_arrival >= t - static_cast<Slot>(len)) ++busy;
    }
    meter.add_slot(busy);

    const double slot_end = static_cast<double>(t) * d;
    while (next_arrival < slot_end) {
      last_arrival = t;
      if (step > warmup_slots) ++result.requests;
      next_arrival = arrivals.next();
    }
  }

  result.avg_streams = meter.mean_streams();
  result.max_streams = meter.max_streams();
  result.avg_ci = meter.mean_ci95();
  return result;
}

double ud_expected_bandwidth(const VideoParams& video,
                             double requests_per_hour) {
  const FbMapping fb(video.num_segments);
  const double per_slot = video.arrivals_per_slot(requests_per_hour);
  double total = 0.0;
  for (int k = 0; k < fb.streams(); ++k) {
    total += 1.0 - std::exp(-per_slot * fb.rotation_length(k));
  }
  return total;
}

}  // namespace vod
