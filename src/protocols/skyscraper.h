// Hua & Sheu's Skyscraper Broadcasting (paper §2, Figure 3).
//
// SB constrains the set-top box to receive at most two streams at once. In
// the equal-segment view used by this paper's Figure 3, stream j carries a
// group of w(j) consecutive segments in round-robin, where w is the
// skyscraper series 1, 2, 2, 5, 5, 12, 12, 25, 25, 52, 52, ... The group
// width also equals the group's rotation period, and since every group
// starts after the sum of the previous widths, each segment's period is
// within its deadline.
//
// Because the widths grow much more slowly than FB's powers of two (they
// are capped by what a 2-stream client can keep up with), SB always needs
// more server streams than FB or NPB for the same segment count — exactly
// the comparison §2 makes.
#pragma once

#include <vector>

#include "protocols/static_mapping.h"

namespace vod {

// w(j) for j >= 1: 1, 2, 2, 5, 5, 12, 12, 25, 25, 52, 52, ...
int skyscraper_width(int j);

class SbMapping final : public StaticMapping {
 public:
  // Builds the SB mapping for n segments; the last stream may carry a
  // truncated group.
  explicit SbMapping(int num_segments);

  int streams() const override { return static_cast<int>(first_.size()); }
  int num_segments() const override { return n_; }
  Segment segment_at(int stream, Slot slot) const override;
  Slot cycle_length() const override { return cycle_; }

  // Streams SB needs for n segments.
  static int streams_for(int num_segments);
  // Segments k SB streams can carry: sum of the first k widths.
  static int capacity(int streams);

 private:
  int n_;
  std::vector<int> first_;
  std::vector<int> count_;
  Slot cycle_;
};

}  // namespace vod
