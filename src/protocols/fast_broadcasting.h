// Juhn & Tseng's Fast Broadcasting protocol (paper §2, Figure 1).
//
// FB allocates k streams of the consumption rate b and partitions the video
// into 2^k - 1 equal segments. Stream j (1-based) round-robins segments
// S_{2^{j-1}} .. S_{2^j - 1}, so each of its segments repeats every 2^{j-1}
// slots — within its deadline since every index on stream j is >= 2^{j-1}.
//
// We generalize to an arbitrary segment count n (the paper's experiments
// use n = 99, which is not of the form 2^k - 1): the last stream simply
// carries fewer segments and rotates faster than required. This is also the
// mapping underlying the UD protocol's on-demand variant.
#pragma once

#include <vector>

#include "protocols/static_mapping.h"

namespace vod {

class FbMapping final : public StaticMapping {
 public:
  // Builds the generalized FB mapping for n segments.
  explicit FbMapping(int num_segments);

  int streams() const override { return static_cast<int>(first_.size()); }
  int num_segments() const override { return n_; }
  Segment segment_at(int stream, Slot slot) const override;
  Slot cycle_length() const override { return cycle_; }

  // Stream (0-based) that carries segment j.
  int stream_of(Segment j) const;
  // Number of segments stream k rotates over (its repetition period).
  int rotation_length(int stream) const {
    return count_[static_cast<size_t>(stream)];
  }

  // Streams FB needs for n segments: ceil(log2(n + 1)).
  static int streams_for(int num_segments);
  // Segments k full FB streams can carry: 2^k - 1.
  static int capacity(int streams);

 private:
  int n_;
  std::vector<int> first_;  // first segment of each stream
  std::vector<int> count_;  // segments carried by each stream
  Slot cycle_;
};

}  // namespace vod
