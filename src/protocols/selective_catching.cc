#include "protocols/selective_catching.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/random.h"
#include "sim/stats.h"
#include "util/check.h"

namespace vod {

double selective_catching_expected_bandwidth(double lambda,
                                             double duration_s,
                                             int broadcast_channels) {
  VOD_CHECK(broadcast_channels >= 1);
  const double segments =
      static_cast<double>((1 << broadcast_channels) - 1);
  const double d = duration_s / segments;
  return static_cast<double>(broadcast_channels) + lambda * d / 2.0;
}

int selective_catching_optimal_channels(double lambda, double duration_s) {
  int best_k = 1;
  double best = selective_catching_expected_bandwidth(lambda, duration_s, 1);
  for (int k = 2; k <= 20; ++k) {
    const double b =
        selective_catching_expected_bandwidth(lambda, duration_s, k);
    if (b < best) {
      best = b;
      best_k = k;
    }
  }
  return best_k;
}

SelectiveCatchingResult run_selective_catching_simulation(
    const SelectiveCatchingConfig& config) {
  PoissonProcess arrivals(per_hour(config.requests_per_hour),
                          Rng(config.seed));
  return run_selective_catching_simulation(config, arrivals);
}

SelectiveCatchingResult run_selective_catching_simulation(
    const SelectiveCatchingConfig& config, ArrivalProcess& arrivals) {
  const double D = config.video_duration_s;
  VOD_CHECK(D > 0.0);
  const int k = config.broadcast_channels > 0
                    ? config.broadcast_channels
                    : selective_catching_optimal_channels(
                          per_hour(config.requests_per_hour), D);
  const double segments = static_cast<double>((1 << k) - 1);
  const double d = D / segments;
  const double w_lo = config.warmup_hours * 3600.0;
  const double w_hi = w_lo + config.measured_hours * 3600.0;

  SelectiveCatchingResult result;
  result.broadcast_channels = k;

  // The k broadcast channels are always on; catching streams carry, for a
  // client arriving at wall time t, the elapsed part of the current S_1
  // slot: content [0, t mod d), transmitted just-in-time over [t, t + off).
  std::vector<std::pair<double, int>> events;
  double busy = 0.0;
  double t = arrivals.next();
  while (t < w_hi) {
    const double offset = std::fmod(t, d);
    const double a = std::max(t, w_lo);
    const double b = std::min(t + offset, w_hi);
    if (b > a) {
      busy += b - a;
      events.push_back({a, +1});
      events.push_back({b, -1});
    }
    if (t >= w_lo) ++result.requests;
    t = arrivals.next();
  }

  result.avg_streams = static_cast<double>(k) + busy / (w_hi - w_lo);
  std::sort(events.begin(), events.end(),
            [](const auto& x, const auto& y) {
              return x.first < y.first ||
                     (x.first == y.first && x.second < y.second);
            });
  int active = 0, peak = 0;
  for (const auto& [time, delta] : events) {
    active += delta;
    peak = std::max(peak, active);
  }
  result.max_streams = static_cast<double>(k + peak);
  return result;
}

}  // namespace vod
