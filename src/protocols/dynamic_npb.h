// Dynamic NPB — the first design §3 of the paper describes trying ("we
// first experimented with a dynamic version of the NPB protocol") before
// settling on DHB: keep NPB's fixed segment-to-slot mapping, but perform a
// scheduled transmission only when at least one active client needs it.
//
// A client arriving during slot a takes, for each segment, the mapping's
// first occurrence after a (guaranteed within the deadline by the pinwheel
// property); an occurrence of S_m at slot t is therefore needed iff some
// request arrived at or after S_m's previous occurrence. By construction
// its bandwidth never exceeds NPB's stream count — but, as the paper found,
// it lags both UD and stream tapping below ~40-60 requests/hour.
#pragma once

#include "core/dhb_simulator.h"
#include "protocols/npb.h"
#include "sim/arrival_process.h"

namespace vod {

// Runs dynamic NPB on the given mapping under Poisson arrivals.
SlottedSimResult run_dynamic_npb_simulation(const NpbMapping& mapping,
                                            const SlottedSimConfig& sim);

SlottedSimResult run_dynamic_npb_simulation(const NpbMapping& mapping,
                                            const SlottedSimConfig& sim,
                                            ArrivalProcess& arrivals);

}  // namespace vod
