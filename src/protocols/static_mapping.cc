#include "protocols/static_mapping.h"

#include <sstream>

#include "util/check.h"

namespace vod {

MappingValidation validate_mapping(const StaticMapping& m) {
  MappingValidation v;
  const int n = m.num_segments();
  const Slot cycle = m.cycle_length();
  VOD_CHECK(cycle >= 1);

  // Examine two full cycles so wrap-around gaps are covered, starting from
  // slot 1.
  const Slot horizon = 2 * cycle + n;
  std::vector<Slot> last(static_cast<size_t>(n) + 1, 0);
  std::vector<bool> seen(static_cast<size_t>(n) + 1, false);

  for (Slot t = 1; t <= horizon; ++t) {
    for (int k = 0; k < m.streams(); ++k) {
      const Segment j = m.segment_at(k, t);
      if (j == 0) continue;
      if (j < 1 || j > n) {
        v.ok = false;
        v.error = "segment id out of range";
        return v;
      }
      const size_t idx = static_cast<size_t>(j);
      if (seen[idx]) {
        const Slot gap = t - last[idx];
        if (gap > j) {
          std::ostringstream os;
          os << "segment S" << j << " gap " << gap << " > " << j
             << " ending at slot " << t;
          v.ok = false;
          v.error = os.str();
          return v;
        }
      } else {
        // First occurrence must itself be within j slots of the start, or a
        // client arriving during slot 0 would miss its deadline.
        if (t > j) {
          std::ostringstream os;
          os << "segment S" << j << " first appears at slot " << t
             << " (> its period " << j << ")";
          v.ok = false;
          v.error = os.str();
          return v;
        }
        seen[idx] = true;
      }
      last[idx] = t;
    }
  }
  for (int j = 1; j <= n; ++j) {
    if (!seen[static_cast<size_t>(j)]) {
      std::ostringstream os;
      os << "segment S" << j << " never transmitted";
      v.ok = false;
      v.error = os.str();
      return v;
    }
  }
  return v;
}

std::vector<Slot> first_occurrences(const StaticMapping& m, Slot arrival) {
  const int n = m.num_segments();
  std::vector<Slot> out(static_cast<size_t>(n) + 1, 0);
  int remaining = n;
  const Slot horizon = arrival + m.cycle_length() + n + 1;
  for (Slot t = arrival + 1; t <= horizon && remaining > 0; ++t) {
    for (int k = 0; k < m.streams(); ++k) {
      const Segment j = m.segment_at(k, t);
      if (j >= 1 && j <= n && out[static_cast<size_t>(j)] == 0) {
        out[static_cast<size_t>(j)] = t;
        --remaining;
      }
    }
  }
  VOD_CHECK_MSG(remaining == 0,
                "mapping failed to transmit every segment within a cycle");
  return out;
}

std::string render_mapping(const StaticMapping& m, Slot first, Slot last) {
  std::ostringstream os;
  os << "Slot      ";
  for (Slot s = first; s <= last; ++s) os << '\t' << s;
  os << '\n';
  for (int k = 0; k < m.streams(); ++k) {
    os << "Stream " << (k + 1) << "  ";
    for (Slot s = first; s <= last; ++s) {
      const Segment j = m.segment_at(k, s);
      os << '\t';
      if (j == 0) {
        os << '-';
      } else {
        os << 'S' << j;
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace vod
