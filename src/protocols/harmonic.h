// Analytic reference curves.
//
// Harmonic broadcasting transmits segment S_j continuously at rate b/j, so
// its server bandwidth is exactly b * H_n — the fluid optimum every
// fixed-segment protocol (NPB included) chases, and the level DHB's average
// approaches at saturation (one request per slot => S_j sent every ~j
// slots).
//
// Eager, Vernon & Zahorjan's lower bound (the paper cites it in §3 when
// motivating maximum sharing) gives the minimum average server bandwidth of
// ANY protocol delivering on-demand: b * ln(1 + N) for immediate service
// with N = lambda*D concurrent-request load, and b * ln(1 + N/(1 + lambda*w))
// when clients tolerate a start-up delay w.
#pragma once

namespace vod {

// H_n = sum_{j=1..n} 1/j.
double harmonic_number(int n);

// Server bandwidth of harmonic broadcasting with n segments, units of b.
double harmonic_bandwidth(int n);

// EVZ minimum average bandwidth (units of b) for immediate service.
// lambda: requests/second; duration: video length in seconds.
double evz_lower_bound(double lambda, double duration_s);

// EVZ minimum with client start-up delay w seconds.
double evz_lower_bound_delayed(double lambda, double duration_s,
                               double delay_s);

// Polyharmonic broadcasting (Pâris et al. — §4 names PHB-PP as one of the
// two protocols able to handle compressed video): clients wait m slots
// before playback, letting segment S_j be transmitted at rate
// b/(m + j - 1). Server bandwidth = H_{n+m-1} - H_{m-1}; m = 1 recovers
// plain harmonic broadcasting.
double polyharmonic_bandwidth(int n, int m);

}  // namespace vod
