// Patching (Hua, Cai & Sheu, ACM MM'98) — the purely reactive baseline the
// paper groups with stream tapping. A client joins the latest full
// multicast of the video and receives only the missed prefix on a private
// patch stream; unlike stream tapping it never taps other clients'
// patches. This facade runs the shared reactive engine with extra tapping
// disabled ("grace patching" when the restart threshold is tuned).
#pragma once

#include "protocols/stream_tapping.h"

namespace vod {

// Identical knobs to TappingConfig; the mode is forced to kPatching.
TappingResult run_patching_simulation(TappingConfig config);
TappingResult run_patching_simulation(TappingConfig config,
                                      ArrivalProcess& arrivals);

// Closed-form average bandwidth of threshold patching under Poisson
// arrivals (renewal-reward over restart cycles): used to cross-check the
// simulator. lambda in requests/second; all times in seconds.
double patching_expected_bandwidth(double lambda, double duration_s,
                                   double threshold_s);

// The threshold minimizing the closed form.
double patching_optimal_threshold(double lambda, double duration_s);

}  // namespace vod
