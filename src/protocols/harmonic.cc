#include "protocols/harmonic.h"

#include <cmath>

#include "util/check.h"

namespace vod {

double harmonic_number(int n) {
  VOD_CHECK(n >= 0);
  double h = 0.0;
  for (int j = 1; j <= n; ++j) h += 1.0 / static_cast<double>(j);
  return h;
}

double harmonic_bandwidth(int n) { return harmonic_number(n); }

double evz_lower_bound(double lambda, double duration_s) {
  VOD_CHECK(lambda >= 0.0);
  return std::log1p(lambda * duration_s);
}

double evz_lower_bound_delayed(double lambda, double duration_s,
                               double delay_s) {
  VOD_CHECK(lambda >= 0.0);
  VOD_CHECK(delay_s >= 0.0);
  return std::log1p(lambda * duration_s / (1.0 + lambda * delay_s));
}

double polyharmonic_bandwidth(int n, int m) {
  VOD_CHECK(n >= 1);
  VOD_CHECK(m >= 1);
  return harmonic_number(n + m - 1) - harmonic_number(m - 1);
}

}  // namespace vod
