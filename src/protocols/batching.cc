#include "protocols/batching.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/random.h"
#include "util/check.h"

namespace vod {

double batching_expected_bandwidth(const BatchingConfig& config) {
  const double lambda = per_hour(config.requests_per_hour);
  const double beta = config.batch_interval_s;
  return config.video_duration_s / beta * (1.0 - std::exp(-lambda * beta));
}

BatchingResult run_batching_simulation(const BatchingConfig& config) {
  PoissonProcess arrivals(per_hour(config.requests_per_hour), Rng(config.seed));
  return run_batching_simulation(config, arrivals);
}

BatchingResult run_batching_simulation(const BatchingConfig& config,
                                       ArrivalProcess& arrivals) {
  const double beta = config.batch_interval_s;
  const double D = config.video_duration_s;
  VOD_CHECK(beta > 0.0 && D > 0.0);
  const double w_lo = config.warmup_hours * 3600.0;
  const double w_hi = w_lo + config.measured_hours * 3600.0;

  BatchingResult result;
  std::vector<std::pair<double, int>> events;
  double busy = 0.0;

  // Walk batch boundaries; a stream starts at boundary k*beta iff at least
  // one request arrived during ((k-1)*beta, k*beta].
  double t = arrivals.next();
  double boundary = std::ceil(t / beta) * beta;
  while (boundary < w_hi) {
    bool any = false;
    while (t <= boundary) {
      any = true;
      if (t >= w_lo) ++result.requests;
      t = arrivals.next();
    }
    if (any) {
      const double a = std::max(boundary, w_lo);
      const double b = std::min(boundary + D, w_hi);
      if (b > a) {
        busy += b - a;
        events.push_back({a, +1});
        events.push_back({b, -1});
      }
      if (boundary >= w_lo) ++result.streams_started;
    }
    // Jump to the first boundary that can contain the pending arrival.
    boundary = std::max(boundary + beta, std::ceil(t / beta) * beta);
  }

  result.avg_streams = busy / (w_hi - w_lo);
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              return a.first < b.first ||
                     (a.first == b.first && a.second < b.second);
            });
  int active = 0, peak = 0;
  for (const auto& [time, delta] : events) {
    active += delta;
    peak = std::max(peak, active);
  }
  result.max_streams = peak;
  return result;
}

}  // namespace vod
