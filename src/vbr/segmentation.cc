#include "vbr/segmentation.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "vbr/smoothing.h"

namespace vod {

std::vector<double> playback_segment_rates(const VbrTrace& trace,
                                           double slot_s) {
  VOD_CHECK(slot_s > 0.0);
  const int n = static_cast<int>(
      std::ceil(static_cast<double>(trace.duration_s()) / slot_s));
  std::vector<double> rates;
  rates.reserve(static_cast<size_t>(n));
  for (int k = 0; k < n; ++k) {
    const double lo = static_cast<double>(k) * slot_s;
    const double hi = std::min(static_cast<double>(k + 1) * slot_s,
                               static_cast<double>(trace.duration_s()));
    rates.push_back((trace.cumulative_kb(hi) - trace.cumulative_kb(lo)) /
                    slot_s);
  }
  return rates;
}

double max_segment_rate_kbs(const VbrTrace& trace, double slot_s) {
  const std::vector<double> rates = playback_segment_rates(trace, slot_s);
  VOD_CHECK(!rates.empty());
  return *std::max_element(rates.begin(), rates.end());
}

std::vector<int> workahead_periods(const VbrTrace& trace, double slot_s,
                                   double rate_kbs) {
  VOD_CHECK(slot_s > 0.0 && rate_kbs > 0.0);
  const int m = workahead_segment_count(trace, slot_s, rate_kbs);
  const double seg_kb = rate_kbs * slot_s;
  std::vector<int> periods;
  periods.reserve(static_cast<size_t>(m));
  int t = 1;
  for (int k = 1; k <= m; ++k) {
    // First slot t whose following-slot consumption needs k segments.
    while (std::ceil(trace.cumulative_kb(static_cast<double>(t) * slot_s) /
                         seg_kb -
                     1e-9) < static_cast<double>(k)) {
      ++t;
      // Trailing segments are never "needed" before the video ends; they
      // still must be delivered by the last consumption slot.
      if (static_cast<double>(t) * slot_s >
          static_cast<double>(trace.duration_s()) + slot_s) {
        break;
      }
    }
    periods.push_back(t);
  }
  VOD_CHECK(!periods.empty());
  VOD_CHECK_MSG(periods[0] == 1, "T[1] must be 1");
  return periods;
}

}  // namespace vod
