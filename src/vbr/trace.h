// Variable-bit-rate video traces.
//
// §4 of the paper analyzes a DVD rip of The Matrix: 8170 seconds, 636 KB/s
// average, 951 KB/s peak over any one-second window. A trace here is the
// same representation that analysis implies: the number of kilobytes the
// decoder consumes during each second of playback. Everything §4 derives —
// per-segment bandwidths, the smoothed work-ahead rate, the minimum
// transmission frequencies — is computed from this per-second profile.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vod {

class VbrTrace {
 public:
  VbrTrace() = default;
  // kb_per_second[t] = kilobytes consumed during playback second t.
  explicit VbrTrace(std::vector<double> kb_per_second);

  int duration_s() const { return static_cast<int>(kb_.size()); }
  double total_kb() const;
  double mean_rate_kbs() const;
  // Peak consumption over any window of `window_s` whole seconds, in KB/s.
  double peak_rate_kbs(int window_s = 1) const;

  // Kilobytes consumed during playback seconds [0, t) for integer t
  // (cumulative consumption curve C(t)); clamps beyond the end.
  double cumulative_kb(int t) const;
  // Linear interpolation for fractional times.
  double cumulative_kb(double t) const;

  const std::vector<double>& samples() const { return kb_; }

  // CSV persistence: one value per line, header "kb_per_second".
  bool save_csv(const std::string& path) const;
  static bool load_csv(const std::string& path, VbrTrace* trace);

 private:
  std::vector<double> kb_;
  std::vector<double> prefix_;  // prefix_[t] = cumulative_kb(t)
};

}  // namespace vod
