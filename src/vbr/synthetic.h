// Synthetic MPEG-style VBR trace generator.
//
// Substitution for the paper's proprietary input: the DVD trace of The
// Matrix is not redistributable, so we synthesize a trace with the same
// structure and calibrate it to the statistics §4 reports (duration 8170 s,
// mean 636 KB/s, one-second peak 951 KB/s). The generator models exactly
// what the smoothing/segmentation pipeline is sensitive to:
//
//   * a quiet opening (studio logos/credits) — the reason the paper found
//     segment S_2 only needs transmitting every three slots;
//   * a demanding first half and a calmer second half — the sustained
//     imbalance that puts the minimum work-ahead rate a few percent above
//     the mean (671 vs 636 KB/s) and lets most later segments be delayed
//     by several slots (DHB-d);
//   * scene-level variation (lognormal levels over ~40 s scenes) — what
//     makes per-segment averages spread so the DHB-b rate sits ~24% above
//     the mean (789 KB/s);
//   * short action spikes (a few seconds, ~1.5x) — what sets the
//     one-second peak that DHB-a must provision for (951 KB/s);
//   * GOP-scale second-to-second jitter.
//
// Calibration iterates two shape-preserving passes: a global scale pinning
// the mean, and a tail-only linear compression above a knee pinning the
// one-second peak (like an encoder's rate cap, it touches only the spike
// seconds). Quiet/hot/cool contrast is therefore preserved exactly.
#pragma once

#include <cstdint>

#include "vbr/trace.h"

namespace vod {

struct SyntheticVbrParams {
  int duration_s = 8170;        // The Matrix run time
  double mean_kbs = 636.0;      // paper's reported average
  double peak_kbs = 951.0;      // paper's reported 1 s maximum

  double mean_scene_s = 40.0;   // average scene length
  double scene_sigma = 0.045;   // lognormal spread of scene levels
  double gop_jitter = 0.05;     // relative second-to-second noise

  int quiet_opening_s = 120;    // low-rate opening (logos/credits)
  double quiet_level = 0.46;    // opening level relative to the mean

  // Opening action sequence right after the quiet logos (The Matrix's
  // rooftop chase). It is the binding prefix for the work-ahead rate
  // (C(420 s)/420 s ~ 1.055 x mean -> the paper's 671 vs 636 KB/s), the
  // reason S_3 still needs transmitting every three slots while S_2 can
  // wait, and — because the rest of the movie then runs slightly below the
  // smoothed rate — the reason nearly all later segments can be delayed by
  // one to eight slots (DHB-d).
  int action_until_s = 420;
  double action_level = 1.293;

  double hot_until_frac = 0.5;  // boundary between the two body sections
  double hot_gain = 0.997;      // body level, first section
  double cool_gain = 0.997;     // body level, second section

  double spike_prob = 0.004;    // per-second chance a 2-5 s spike starts
  double spike_gain = 1.5;      // spike multiplier

  uint64_t seed = 2001;         // ICDCS 2001
};

// Generates and calibrates a trace; the result's mean and 1 s peak match
// the targets to well under 1 KB/s.
VbrTrace generate_synthetic_vbr(const SyntheticVbrParams& params);

// ---------------------------------------------------------------------------
// Video-profile presets (§5 future work: "apply our DHB protocol to other
// videos in order to learn how its performance is affected by the
// individual characteristics of each video"). All reuse the generator
// above with parameters shaped after recognisable content classes.

// The default: The Matrix stand-in (quiet logos, opening action, balanced
// body). Identical to SyntheticVbrParams{}.
SyntheticVbrParams matrix_profile();

// Wall-to-wall action blockbuster: little quiet content, sustained high
// scenes, hard peaks close to the sustained level — smoothing has little
// to harvest.
SyntheticVbrParams action_profile();

// Dialogue drama: long flat scenes near the mean, mild peaks — nearly CBR,
// every DHB variant collapses toward the mean rate.
SyntheticVbrParams drama_profile();

// Documentary with a demanding finale: quiet first three quarters, heavy
// last act — work-ahead thrives (the binding prefix is the global mean),
// and most segments can be delayed a long way.
SyntheticVbrParams documentary_profile();

}  // namespace vod
