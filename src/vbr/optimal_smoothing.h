// Optimal work-ahead smoothing (Salehi, Zhang, Kurose & Towsley, SIGMETRICS
// '96 — reference [18] of the paper, and the tool for its §5 future-work
// item: "investigate how we could reduce or eliminate bandwidth peaks
// without increasing the average video bandwidth").
//
// Given a client buffer of B kilobytes and a start-up delay, the feasible
// transmission schedules S(t) form a corridor
//
//     L(t) <= S(t) <= U(t),   L(t) = C(t - delay),  U(t) = L(t) + B,
//
// where C is the cumulative consumption curve (underflow below L, overflow
// above U). The schedule minimizing the peak transmission rate — and among
// those, the rate variability — is the shortest path through the corridor
// (the "taut string"). This module computes it on the trace's one-second
// grid.
#pragma once

#include <vector>

#include "vbr/trace.h"

namespace vod {

struct RateSegment {
  double start_s = 0.0;  // wall-clock start of this constant-rate piece
  double end_s = 0.0;
  double rate_kbs = 0.0;
};

struct SmoothingPlan {
  std::vector<RateSegment> segments;  // contiguous, covering [0, end)

  double peak_rate_kbs() const;
  // Kilobytes transmitted by wall time t under the plan.
  double cumulative_kb(double t) const;
  double end_s() const {
    return segments.empty() ? 0.0 : segments.back().end_s;
  }
  int rate_changes() const {
    return segments.empty() ? 0 : static_cast<int>(segments.size()) - 1;
  }
};

// Computes the taut-string schedule for the trace with the given client
// buffer (KB) and start-up delay (seconds, >= 1 on the integer grid used
// here). Smaller buffers narrow the corridor and raise the peak; the
// degenerate limit simply replays the per-second consumption rates.
SmoothingPlan optimal_smoothing_plan(const VbrTrace& trace, double buffer_kb,
                                     double startup_delay_s);

// True when L(t) <= plan <= U(t) at every grid point and the plan delivers
// the whole video.
bool verify_smoothing_plan(const VbrTrace& trace, double buffer_kb,
                           double startup_delay_s, const SmoothingPlan& plan);

}  // namespace vod
