// The four DHB implementations of paper §4 for one compressed video.
//
//  DHB-a  peak-rate provisioning: n = ceil(D/d) playback segments, stream
//         rate = the 1 s peak (951 KB/s for The Matrix). The base solution.
//  DHB-b  deterministic waiting time: every segment fully delivered one
//         slot ahead of consumption; stream rate = max per-segment average
//         (789 KB/s). Average wait doubles, maximum wait unchanged.
//  DHB-c  smoothing by work-ahead: segments packed back-to-back at the
//         minimum feasible constant rate (671 KB/s), giving fewer segments
//         (129 instead of 137).
//  DHB-d  DHB-c plus adjusted minimum transmission frequencies T[k]
//         (segment k delayed until its bytes are actually needed).
//
// Each variant resolves to a (segment count, stream rate, period vector)
// triple that plugs straight into DhbConfig / SlottedSimConfig; Figure 9
// sweeps them against UD provisioned at the peak rate.
#pragma once

#include <string>
#include <vector>

#include "core/dhb.h"
#include "vbr/trace.h"

namespace vod {

struct DhbVariant {
  std::string name;          // "DHB-a" ... "DHB-d"
  int num_segments = 0;      // n
  double stream_rate_kbs = 0.0;  // per-stream bandwidth b
  std::vector<int> periods;  // empty => T[k] = k
  // Transmission slots: for a/b this equals playback slots; for c/d the
  // video occupies fewer transmission slots than playback slots.
  double slot_s = 0.0;

  DhbConfig dhb_config() const {
    DhbConfig c;
    c.num_segments = num_segments;
    c.periods = periods;
    return c;
  }
};

struct VariantAnalysis {
  double slot_s = 0.0;           // d, from the target maximum waiting time
  double peak_rate_kbs = 0.0;    // 1 s peak (DHB-a rate)
  double segment_rate_kbs = 0.0; // max per-segment average (DHB-b rate)
  double workahead_rate_kbs = 0.0;  // min smoothed rate (DHB-c/d rate)
  DhbVariant a, b, c, d;
};

// Analyzes a trace for a target maximum waiting time (the paper uses one
// minute). All four variants are derived and internally verified (the
// period schedule of DHB-d is checked against the underflow model).
VariantAnalysis analyze_variants(const VbrTrace& trace,
                                 double max_wait_s = 60.0);

}  // namespace vod
