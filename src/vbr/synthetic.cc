#include "vbr/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/random.h"
#include "util/check.h"

namespace vod {
namespace {

double mean_of(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double max_of(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, x);
  return m;
}

}  // namespace

VbrTrace generate_synthetic_vbr(const SyntheticVbrParams& params) {
  VOD_CHECK(params.duration_s > 0);
  VOD_CHECK(params.peak_kbs > params.mean_kbs);
  VOD_CHECK(params.mean_scene_s > 6.0);

  Rng rng(params.seed);
  const int T = params.duration_s;
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(T));

  // Scene-structured base signal in units of the (uncalibrated) mean.
  const int hot_until = static_cast<int>(params.hot_until_frac * T);
  int t = 0;
  while (t < T) {
    int scene_len =
        5 + static_cast<int>(rng.geometric(1.0 / (params.mean_scene_s - 5.0)));
    // Scenes do not straddle regime boundaries (quiet -> action -> body):
    // the quiet opening and the action sequence end exactly where declared.
    for (int boundary : {params.quiet_opening_s, params.action_until_s}) {
      if (t < boundary) scene_len = std::min(scene_len, boundary - t);
    }
    double level = rng.lognormal(0.0, params.scene_sigma);
    if (t < params.quiet_opening_s) {
      level = params.quiet_level * (0.9 + 0.2 * rng.uniform());
    } else if (t < params.action_until_s) {
      // Sustained action: pinned level (no scene lognormal) so the hottest
      // minute of the movie sits at the action level, like the paper's
      // 789 KB/s busiest segment.
      level = params.action_level;
    } else if (t < hot_until) {
      level *= params.hot_gain;
    } else {
      level *= params.cool_gain;
    }
    for (int k = 0; k < scene_len && t < T; ++k, ++t) {
      const double noise =
          std::clamp(rng.normal(), -3.0, 3.0) * params.gop_jitter;
      samples.push_back(std::max(0.05, level * (1.0 + noise)));
    }
  }

  // Short action spikes: they set the one-second peak without moving the
  // per-minute averages noticeably.
  int spike_left = 0;
  for (int s = params.quiet_opening_s; s < T; ++s) {
    if (spike_left == 0 && rng.uniform() < params.spike_prob) {
      spike_left = 2 + static_cast<int>(rng.uniform_index(4));  // 2..5 s
    }
    if (spike_left > 0) {
      samples[static_cast<size_t>(s)] *= params.spike_gain;
      --spike_left;
    }
  }

  // Calibration: scale the whole signal to pin the mean, then linearly
  // compress (or expand) only the tail above the knee to pin the peak.
  // Both passes preserve the quiet/hot/cool structure; iterate to joint
  // convergence.
  for (int pass = 0; pass < 8; ++pass) {
    const double scale = params.mean_kbs / mean_of(samples);
    for (double& v : samples) v *= scale;
    const double peak = max_of(samples);
    if (std::fabs(peak - params.peak_kbs) <= 1e-9) continue;
    // Pivot below both the current and the target peak so the same linear
    // tail map compresses an over-shooting peak or stretches an
    // under-shooting one.
    const double pivot = 0.90 * std::min(peak, params.peak_kbs);
    const double gain = (params.peak_kbs - pivot) / (peak - pivot);
    for (double& v : samples) {
      if (v > pivot) v = pivot + (v - pivot) * gain;
    }
  }

  VbrTrace trace(std::move(samples));
  VOD_CHECK_MSG(std::fabs(trace.mean_rate_kbs() - params.mean_kbs) < 1.0,
                "mean calibration did not converge");
  VOD_CHECK_MSG(std::fabs(trace.peak_rate_kbs(1) - params.peak_kbs) < 1.0,
                "peak calibration did not converge");
  return trace;
}

SyntheticVbrParams matrix_profile() { return SyntheticVbrParams{}; }

SyntheticVbrParams action_profile() {
  SyntheticVbrParams p;
  p.duration_s = 6600;
  p.mean_kbs = 780.0;
  p.peak_kbs = 990.0;
  p.quiet_opening_s = 60;
  p.quiet_level = 0.6;
  p.action_until_s = 600;
  p.action_level = 1.12;
  p.hot_gain = 1.0;
  p.cool_gain = 1.0;
  p.scene_sigma = 0.06;
  p.spike_prob = 0.008;
  p.spike_gain = 1.3;
  p.seed = 4242;
  return p;
}

SyntheticVbrParams drama_profile() {
  SyntheticVbrParams p;
  p.duration_s = 7800;
  p.mean_kbs = 520.0;
  p.peak_kbs = 650.0;
  p.quiet_opening_s = 90;
  p.quiet_level = 0.7;
  p.action_until_s = 120;  // effectively no action opening
  p.action_level = 1.0;
  p.hot_gain = 1.0;
  p.cool_gain = 1.0;
  p.mean_scene_s = 70.0;
  p.scene_sigma = 0.03;
  p.gop_jitter = 0.03;
  p.spike_prob = 0.001;
  p.spike_gain = 1.2;
  p.seed = 777;
  return p;
}

SyntheticVbrParams documentary_profile() {
  SyntheticVbrParams p;
  p.duration_s = 5400;
  p.mean_kbs = 560.0;
  p.peak_kbs = 900.0;
  p.quiet_opening_s = 120;
  p.quiet_level = 0.5;
  p.action_until_s = 180;  // no real opening action
  p.action_level = 0.8;
  p.hot_until_frac = 0.75;
  p.hot_gain = 0.85;   // calm first three quarters...
  p.cool_gain = 1.55;  // ...heavy finale
  p.scene_sigma = 0.08;
  p.spike_prob = 0.003;
  p.seed = 1955;
  return p;
}

}  // namespace vod
