#include "vbr/variants.h"

#include <cmath>
#include <numeric>

#include "util/check.h"
#include "vbr/segmentation.h"
#include "vbr/smoothing.h"

namespace vod {

VariantAnalysis analyze_variants(const VbrTrace& trace, double max_wait_s) {
  VOD_CHECK(max_wait_s > 0.0);
  VOD_CHECK(trace.duration_s() > 0);

  VariantAnalysis out;
  const double duration = static_cast<double>(trace.duration_s());
  const int n = static_cast<int>(std::ceil(duration / max_wait_s));
  out.slot_s = duration / static_cast<double>(n);

  out.peak_rate_kbs = trace.peak_rate_kbs(1);
  out.segment_rate_kbs = max_segment_rate_kbs(trace, out.slot_s);
  out.workahead_rate_kbs = min_workahead_rate_kbs(trace, out.slot_s);

  out.a = DhbVariant{"DHB-a", n, out.peak_rate_kbs, {}, out.slot_s};
  out.b = DhbVariant{"DHB-b", n, out.segment_rate_kbs, {}, out.slot_s};

  const int m =
      workahead_segment_count(trace, out.slot_s, out.workahead_rate_kbs);
  out.c = DhbVariant{"DHB-c", m, out.workahead_rate_kbs, {}, out.slot_s};

  std::vector<int> periods =
      workahead_periods(trace, out.slot_s, out.workahead_rate_kbs);
  out.d = DhbVariant{"DHB-d", m, out.workahead_rate_kbs, std::move(periods),
                     out.slot_s};

  // Internal verification: both work-ahead schedules must be underflow-free
  // when every segment arrives exactly at its deadline.
  std::vector<int> strict(static_cast<size_t>(m));
  std::iota(strict.begin(), strict.end(), 1);
  VOD_CHECK_MSG(verify_deadline_schedule(trace, out.slot_s,
                                         out.workahead_rate_kbs, strict),
                "DHB-c schedule underflows");
  VOD_CHECK_MSG(verify_deadline_schedule(trace, out.slot_s,
                                         out.workahead_rate_kbs, out.d.periods),
                "DHB-d schedule underflows");
  return out;
}

}  // namespace vod
