// Segment-level analysis of a VBR trace (paper §4).
//
// Two segmentations appear in §4:
//  * playback segmentation (DHB-a/b): the video is cut by playback time
//    into n = ceil(D / d) segments of d seconds of *content* each; the
//    per-segment average bandwidths determine the DHB-b stream rate;
//  * work-ahead packing (DHB-c/d): the video is cut by *bytes* into
//    back-to-back segments of r*d KB (see smoothing.h); minimum
//    transmission frequencies T[k] come from when each byte range is first
//    consumed.
#pragma once

#include <vector>

#include "vbr/trace.h"

namespace vod {

// Playback segmentation: per-segment average rates (KB/s) when the trace is
// cut into ceil(duration / slot_s) content slices of slot_s seconds.
std::vector<double> playback_segment_rates(const VbrTrace& trace,
                                           double slot_s);

// DHB-b stream rate: the maximum per-segment average rate — the smallest
// constant stream bandwidth that delivers each whole segment within one
// slot (paper: 789 KB/s for The Matrix).
double max_segment_rate_kbs(const VbrTrace& trace, double slot_s);

// Minimum transmission frequencies for the work-ahead packing (DHB-d).
// Segment k (bytes ((k-1)..k) * rate*d) must be delivered by the end of
// relative slot T[k], the last slot for which k segments still cover
// consumption through the following slot:
//
//     T[k] = min { t >= 1 : ceil(C(t * d) / (rate * d)) >= k }.
//
// For a CBR trace this degenerates to T[k] = k; work-ahead surplus makes
// T[k] > k for most k (the paper found delays of one to eight slots).
// The result always satisfies T[1] = 1 and is verified against
// verify_deadline_schedule by construction (checked in tests).
std::vector<int> workahead_periods(const VbrTrace& trace, double slot_s,
                                   double rate_kbs);

}  // namespace vod
