#include "vbr/smoothing.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace vod {

double min_workahead_rate_kbs(const VbrTrace& trace, double slot_s) {
  VOD_CHECK(slot_s > 0.0);
  const int slots = static_cast<int>(
      std::ceil(static_cast<double>(trace.duration_s()) / slot_s));
  double rate = 0.0;
  for (int t = 1; t <= slots + 1; ++t) {
    const double needed = trace.cumulative_kb(static_cast<double>(t) * slot_s);
    rate = std::max(rate, needed / (static_cast<double>(t) * slot_s));
  }
  return rate;
}

int workahead_segment_count(const VbrTrace& trace, double slot_s,
                            double rate_kbs) {
  VOD_CHECK(slot_s > 0.0 && rate_kbs > 0.0);
  return static_cast<int>(std::ceil(trace.total_kb() / (rate_kbs * slot_s)));
}

double workahead_buffer_kb(const VbrTrace& trace, double slot_s,
                           double rate_kbs) {
  const int m = workahead_segment_count(trace, slot_s, rate_kbs);
  double worst = 0.0;
  for (int t = 1; t <= m + 1; ++t) {
    const double delivered =
        std::min(static_cast<double>(t) * rate_kbs * slot_s, trace.total_kb());
    const double consumed =
        trace.cumulative_kb(std::max(0.0, static_cast<double>(t - 1) * slot_s));
    worst = std::max(worst, delivered - consumed);
  }
  return worst;
}

bool verify_deadline_schedule(const VbrTrace& trace, double slot_s,
                              double rate_kbs,
                              const std::vector<int>& deadlines) {
  VOD_CHECK(slot_s > 0.0 && rate_kbs > 0.0);
  for (size_t k = 1; k < deadlines.size(); ++k) {
    VOD_CHECK_MSG(deadlines[k] >= deadlines[k - 1],
                  "deadlines must be non-decreasing");
  }
  const double seg_kb = rate_kbs * slot_s;
  const int last_slot =
      deadlines.empty()
          ? 0
          : std::max(deadlines.back(),
                     static_cast<int>(std::ceil(
                         static_cast<double>(trace.duration_s()) / slot_s)) +
                         2);
  size_t delivered_segments = 0;
  for (int t = 1; t <= last_slot; ++t) {
    while (delivered_segments < deadlines.size() &&
           deadlines[delivered_segments] <= t) {
      ++delivered_segments;
    }
    const double delivered =
        std::min(static_cast<double>(delivered_segments) * seg_kb,
                 trace.total_kb());
    // Delivered-by-end-of-slot-t must cover consumption through the end of
    // slot t+1, i.e. C(t * d) (playback starts at slot 2).
    const double consumed = trace.cumulative_kb(static_cast<double>(t) * slot_s);
    if (delivered + 1e-6 < consumed) return false;
  }
  // The schedule must also deliver the entire video.
  return static_cast<double>(deadlines.size()) * seg_kb + 1e-6 >=
         trace.total_kb();
}

}  // namespace vod
