#include "vbr/trace.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/csv.h"

namespace vod {

VbrTrace::VbrTrace(std::vector<double> kb_per_second)
    : kb_(std::move(kb_per_second)) {
  for (double v : kb_) VOD_CHECK_MSG(v >= 0.0, "negative trace sample");
  prefix_.resize(kb_.size() + 1, 0.0);
  for (size_t i = 0; i < kb_.size(); ++i) prefix_[i + 1] = prefix_[i] + kb_[i];
}

double VbrTrace::total_kb() const {
  return prefix_.empty() ? 0.0 : prefix_.back();
}

double VbrTrace::mean_rate_kbs() const {
  return kb_.empty() ? 0.0 : total_kb() / static_cast<double>(kb_.size());
}

double VbrTrace::peak_rate_kbs(int window_s) const {
  VOD_CHECK(window_s >= 1);
  if (kb_.empty()) return 0.0;
  const size_t w = std::min(static_cast<size_t>(window_s), kb_.size());
  double peak = 0.0;
  for (size_t i = 0; i + w <= kb_.size(); ++i) {
    peak = std::max(peak, (prefix_[i + w] - prefix_[i]) / static_cast<double>(w));
  }
  return peak;
}

double VbrTrace::cumulative_kb(int t) const {
  if (t <= 0) return 0.0;
  const size_t idx = std::min(static_cast<size_t>(t), kb_.size());
  return prefix_[idx];
}

double VbrTrace::cumulative_kb(double t) const {
  if (t <= 0.0) return 0.0;
  if (t >= static_cast<double>(kb_.size())) return total_kb();
  const double floor_t = std::floor(t);
  const size_t i = static_cast<size_t>(floor_t);
  return prefix_[i] + (t - floor_t) * kb_[i];
}

bool VbrTrace::save_csv(const std::string& path) const {
  std::vector<std::vector<double>> rows;
  rows.reserve(kb_.size());
  for (double v : kb_) rows.push_back({v});
  return write_csv(path, {"kb_per_second"}, rows);
}

bool VbrTrace::load_csv(const std::string& path, VbrTrace* trace) {
  std::vector<std::vector<double>> rows;
  if (!read_csv(path, &rows)) return false;
  std::vector<double> samples;
  samples.reserve(rows.size());
  for (const auto& row : rows) {
    if (row.empty()) return false;
    samples.push_back(row[0]);
  }
  *trace = VbrTrace(std::move(samples));
  return true;
}

}  // namespace vod
