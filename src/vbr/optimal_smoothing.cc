#include "vbr/optimal_smoothing.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace vod {

double SmoothingPlan::peak_rate_kbs() const {
  double peak = 0.0;
  for (const RateSegment& s : segments) peak = std::max(peak, s.rate_kbs);
  return peak;
}

double SmoothingPlan::cumulative_kb(double t) const {
  double total = 0.0;
  for (const RateSegment& s : segments) {
    if (t <= s.start_s) break;
    total += s.rate_kbs * (std::min(t, s.end_s) - s.start_s);
  }
  return total;
}

SmoothingPlan optimal_smoothing_plan(const VbrTrace& trace, double buffer_kb,
                                     double startup_delay_s) {
  VOD_CHECK(buffer_kb > 0.0);
  VOD_CHECK(startup_delay_s >= 1.0);
  const int delay = static_cast<int>(std::llround(startup_delay_s));
  const int T = trace.duration_s() + delay;  // wall-clock horizon

  // Corridor on the integer grid. L[t] = bytes that must have arrived by
  // wall t; U[t] = L[t] + B capped at the total (no point transmitting
  // past the end of the video).
  std::vector<double> lower(static_cast<size_t>(T) + 1);
  std::vector<double> upper(static_cast<size_t>(T) + 1);
  const double total = trace.total_kb();
  for (int t = 0; t <= T; ++t) {
    const double c = trace.cumulative_kb(t - delay);
    lower[static_cast<size_t>(t)] = c;
    upper[static_cast<size_t>(t)] = std::min(c + buffer_kb, total);
  }
  lower[static_cast<size_t>(T)] = total;  // the whole video must arrive
  for (int t = 0; t <= T; ++t) {
    VOD_CHECK_MSG(lower[static_cast<size_t>(t)] <=
                      upper[static_cast<size_t>(t)] + 1e-9,
                  "buffer too small for any feasible schedule");
  }

  // Taut string: from anchor (t0, s0), extend while some slope fits under
  // every upper constraint and over every lower constraint; on conflict,
  // emit the segment ending at the binding point.
  SmoothingPlan plan;
  int t0 = 0;
  double s0 = 0.0;
  while (t0 < T) {
    double hi = std::numeric_limits<double>::infinity();
    double lo = -std::numeric_limits<double>::infinity();
    int hi_t = t0, lo_t = t0;
    bool emitted = false;
    for (int t = t0 + 1; t <= T; ++t) {
      const double dt = static_cast<double>(t - t0);
      const double hi_c = (upper[static_cast<size_t>(t)] - s0) / dt;
      const double lo_c = (lower[static_cast<size_t>(t)] - s0) / dt;
      bool lo_moved = false;
      if (hi_c < hi) {
        hi = hi_c;
        hi_t = t;
      }
      if (lo_c > lo) {
        lo = lo_c;
        lo_t = t;
        lo_moved = true;
      }
      if (lo > hi + 1e-12) {
        // The corridor pinched. If the lower curve moved last, the rate
        // must increase after the tightest upper point: emit at rate hi up
        // to hi_t. Otherwise the rate must decrease after the tightest
        // lower point: emit at rate lo up to lo_t.
        const int cut = lo_moved ? hi_t : lo_t;
        const double rate = lo_moved ? hi : lo;
        plan.segments.push_back(RateSegment{static_cast<double>(t0),
                                            static_cast<double>(cut), rate});
        s0 += rate * static_cast<double>(cut - t0);
        t0 = cut;
        emitted = true;
        break;
      }
    }
    if (!emitted) {
      // The rest of the corridor admits one straight piece; take the
      // lowest feasible slope (it must still reach every lower point,
      // including the total at T).
      plan.segments.push_back(
          RateSegment{static_cast<double>(t0), static_cast<double>(T), lo});
      t0 = T;
    }
  }

  // Merge adjacent pieces with equal rates (the cut bookkeeping can split
  // a straight line).
  std::vector<RateSegment> merged;
  for (const RateSegment& s : plan.segments) {
    if (!merged.empty() &&
        std::fabs(merged.back().rate_kbs - s.rate_kbs) < 1e-9) {
      merged.back().end_s = s.end_s;
    } else {
      merged.push_back(s);
    }
  }
  plan.segments = std::move(merged);
  return plan;
}

bool verify_smoothing_plan(const VbrTrace& trace, double buffer_kb,
                           double startup_delay_s,
                           const SmoothingPlan& plan) {
  const int delay = static_cast<int>(std::llround(startup_delay_s));
  const int T = trace.duration_s() + delay;
  if (std::llround(plan.end_s()) != T) return false;
  for (int t = 0; t <= T; ++t) {
    const double s = plan.cumulative_kb(t);
    const double need =
        t == T ? trace.total_kb() : trace.cumulative_kb(t - delay);
    if (s + 1e-6 < need) return false;                       // underflow
    if (s > trace.cumulative_kb(t - delay) + buffer_kb + 1e-6) {
      return false;                                          // overflow
    }
  }
  return true;
}

}  // namespace vod
