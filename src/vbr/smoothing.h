// Work-ahead smoothing (paper §4, citing Salehi et al.).
//
// Timeline used by all §4 variants (the DHB-b deadline model): a client is
// served starting at relative slot 1 and begins playback at relative slot
// 2, so data delivered by the end of relative slot t covers consumption
// through the end of relative slot t + 1. With slot duration d seconds,
// consumption by the end of relative slot t is C((t-1) * d) content-KB,
// where C is the trace's cumulative curve.
//
// Smoothing question: if the server transmits back-to-back segments of
// r * d kilobytes each (continuous use of a rate-r stream), what is the
// minimum r such that a client receiving segment k by the end of relative
// slot k never underflows? Segment k completes k*r*d delivered KB, which
// must cover consumption through slot k + 1:
//
//     r >= max_t C(t * d) / (t * d).
//
// The work-ahead surplus this builds up is what lets DHB-c transmit fewer,
// denser segments and DHB-d relax the per-segment minimum frequencies.
#pragma once

#include "vbr/trace.h"

namespace vod {

// Minimum constant stream rate (KB/s) for back-to-back segment packing with
// per-segment deadline "segment k by end of relative slot k".
// slot_s: slot duration d in seconds.
double min_workahead_rate_kbs(const VbrTrace& trace, double slot_s);

// Number of back-to-back segments of r*d KB needed to carry the whole
// trace: ceil(total / (r * d)).
int workahead_segment_count(const VbrTrace& trace, double slot_s,
                            double rate_kbs);

// Worst-case client buffer occupancy (KB) under the work-ahead schedule
// when every segment arrives exactly at its deadline slot k: the maximum of
// delivered-minus-consumed over slot boundaries. Measures the STB storage
// the paper's "so much data would be received ahead of time" implies.
double workahead_buffer_kb(const VbrTrace& trace, double slot_s,
                           double rate_kbs);

// Verifies that delivering segment k (of rate_kbs * slot_s KB) by the end
// of relative slot deadline[k-1] never underflows the client: for every
// slot t, delivered-by-t >= C(t * d). Returns true when feasible.
// `deadlines` must be non-decreasing.
bool verify_deadline_schedule(const VbrTrace& trace, double slot_s,
                              double rate_kbs,
                              const std::vector<int>& deadlines);

}  // namespace vod
