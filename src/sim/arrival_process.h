// Request arrival processes.
//
// The paper evaluates every protocol against Poisson request arrivals for a
// single video, sweeping the rate from 1 to 1000 requests per hour. We also
// provide a non-homogeneous (time-varying) Poisson process — the paper's
// motivation section argues demand varies widely with the time of day — and
// deterministic/scripted processes for unit tests and worked examples.
//
// Times are in seconds throughout the library; rates are in requests/second
// unless a name says otherwise.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/random.h"

namespace vod {

// Pull-based arrival stream: next() returns strictly increasing absolute
// arrival times, or a value > horizon when exhausted.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  // Absolute time of the next arrival after the previous one returned.
  // Returns infinity when the process has no further arrivals.
  virtual double next() = 0;
};

// Homogeneous Poisson process with the given rate (requests/second).
class PoissonProcess final : public ArrivalProcess {
 public:
  PoissonProcess(double rate, Rng rng);
  double next() override;

 private:
  double rate_;
  double now_ = 0.0;
  Rng rng_;
};

// Non-homogeneous Poisson process via Lewis–Shedler thinning.
// `rate(t)` must be bounded above by `max_rate` for all t.
class NonHomogeneousPoissonProcess final : public ArrivalProcess {
 public:
  NonHomogeneousPoissonProcess(std::function<double(double)> rate,
                               double max_rate, Rng rng);
  double next() override;

 private:
  std::function<double(double)> rate_;
  double max_rate_;
  double now_ = 0.0;
  Rng rng_;
};

// Fixed, pre-scripted arrival times (strictly for tests/examples).
class ScriptedArrivals final : public ArrivalProcess {
 public:
  explicit ScriptedArrivals(std::vector<double> times);
  double next() override;

 private:
  std::vector<double> times_;
  size_t idx_ = 0;
};

// Deterministic arrivals with a fixed period starting at `start`.
class PeriodicArrivals final : public ArrivalProcess {
 public:
  PeriodicArrivals(double start, double period);
  double next() override;

 private:
  double next_;
  double period_;
};

// Convenience conversions for the paper's units.
inline double per_hour(double requests_per_hour) {
  return requests_per_hour / 3600.0;
}

// A 24-hour demand curve of the kind §1 motivates: peaks in the evening,
// trough in the early morning. Returns requests/second at time-of-day t
// (seconds, wraps every 24 h). peak/off_peak are requests/hour.
std::function<double(double)> daily_demand_curve(double off_peak_per_hour,
                                                 double peak_per_hour);

}  // namespace vod
