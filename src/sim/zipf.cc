#include "sim/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace vod {

ZipfDistribution::ZipfDistribution(int n, double s) {
  VOD_CHECK(n >= 1);
  VOD_CHECK(s >= 0.0);
  cdf_.resize(static_cast<size_t>(n));
  double total = 0.0;
  for (int i = 1; i <= n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i), s);
    cdf_[static_cast<size_t>(i - 1)] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

int ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int>(it - cdf_.begin());
}

double ZipfDistribution::probability(int item) const {
  VOD_CHECK(item >= 0 && item < size());
  const size_t i = static_cast<size_t>(item);
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace vod
