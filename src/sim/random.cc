#include "sim/random.h"

#include <cmath>

#include "util/check.h"

namespace vod {
namespace {

inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64::next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

uint64_t Rng::uniform_index(uint64_t n) {
  VOD_CHECK(n > 0);
  // Lemire's multiply-shift with rejection for exact uniformity.
  uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    const uint64_t t = -n % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::exponential(double rate) {
  VOD_CHECK(rate > 0.0);
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

double Rng::normal() {
  double u1;
  do {
    u1 = uniform();
  } while (u1 == 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

uint64_t Rng::poisson(double mean) {
  VOD_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean <= 64.0) {
    // Knuth: multiply uniforms until below exp(-mean).
    const double limit = std::exp(-mean);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the
  // high-arrival-rate regimes simulated here (mean counts per slot).
  const double v = normal(mean, std::sqrt(mean));
  return v <= 0.0 ? 0 : static_cast<uint64_t>(v + 0.5);
}

uint64_t Rng::geometric(double p) {
  VOD_CHECK(p > 0.0 && p <= 1.0);
  if (p == 1.0) return 0;
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

Rng Rng::fork(uint64_t stream_id) const {
  // Derive a decorrelated seed from (seed, stream_id) via SplitMix64 mixing.
  SplitMix64 sm(seed_ ^ (0x6a09e667f3bcc909ULL + stream_id * 0x9e3779b97f4a7c15ULL));
  sm.next();
  return Rng(sm.next());
}

}  // namespace vod
