#include "sim/rate_estimator.h"

#include <cmath>

#include "util/check.h"

namespace vod {

EwmaRateEstimator::EwmaRateEstimator(const EwmaConfig& config)
    : config_(config) {
  VOD_CHECK_MSG(config_.half_life_slots > 0.0,
                "EWMA half life must be positive");
  VOD_CHECK_MSG(std::isfinite(config_.half_life_slots),
                "EWMA half life must be finite");
  alpha_ = 1.0 - std::exp2(-1.0 / config_.half_life_slots);
}

void EwmaRateEstimator::on_slot(uint64_t arrivals) {
  const double x = static_cast<double>(arrivals);
  if (slots_ == 0) {
    // Seed with the first observation rather than decaying toward it from
    // an arbitrary zero: a video that starts hot should not spend half a
    // half-life looking cold.
    estimate_ = x;
  } else {
    estimate_ += alpha_ * (x - estimate_);
  }
  ++slots_;
}

}  // namespace vod
