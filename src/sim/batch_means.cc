#include "sim/batch_means.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace vod {

BatchMeans::BatchMeans(uint64_t samples_per_batch)
    : batch_size_(samples_per_batch) {
  VOD_CHECK(samples_per_batch > 0);
}

void BatchMeans::add(double x) {
  batch_sum_ += x;
  if (++in_batch_ == batch_size_) {
    means_.push_back(batch_sum_ / static_cast<double>(batch_size_));
    batch_sum_ = 0.0;
    in_batch_ = 0;
  }
}

ConfidenceInterval BatchMeans::interval95() const {
  ConfidenceInterval ci;
  ci.batches = means_.size();
  if (means_.empty()) {
    ci.half_width = std::numeric_limits<double>::infinity();
    return ci;
  }
  double sum = 0.0;
  for (double m : means_) sum += m;
  ci.mean = sum / static_cast<double>(means_.size());
  if (means_.size() < 2) {
    ci.half_width = std::numeric_limits<double>::infinity();
    return ci;
  }
  double ss = 0.0;
  for (double m : means_) ss += (m - ci.mean) * (m - ci.mean);
  const double var = ss / static_cast<double>(means_.size() - 1);
  const double se = std::sqrt(var / static_cast<double>(means_.size()));
  ci.half_width = student_t_975(means_.size() - 1) * se;
  return ci;
}

double student_t_975(uint64_t df) {
  static constexpr double kTable[] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
      2.262,  2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110,
      2.101,  2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
      2.052,  2.048,  2.045, 2.042};
  if (df == 0) return std::numeric_limits<double>::infinity();
  if (df <= 30) return kTable[df];
  if (df <= 40) return 2.021;
  if (df <= 60) return 2.000;
  if (df <= 120) return 1.980;
  return 1.960;
}

}  // namespace vod
