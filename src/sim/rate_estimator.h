// Online arrival-rate estimation over slot boundaries.
//
// The adaptive protocol-switching controller (server/adaptive_video.h)
// needs a per-video estimate of the current request rate, in arrivals per
// slot, updated once per slot from the engine's batched Poisson drains. An
// exponentially weighted moving average is the standard tool: cheap (O(1)
// state), smooth enough to ride out Poisson noise, and responsive enough to
// follow a diurnal demand curve whose timescale (hours) is much longer than
// a slot (~73 s).
//
// Parameterization is by half life, not by the raw smoothing factor: the
// operator says "observations older than H slots count for less than half"
// and the estimator derives alpha = 1 - 2^(-1/H). That keeps configs
// meaningful when the slot duration changes.
//
// Warm-up semantics (the degenerate-config contract): with zero observed
// slots the estimate is exactly 0.0 — never NaN, never a division by zero —
// and warmed_up() is false until `warmup_slots` slots have been fed. A
// stream with rate 0 (a dead video) therefore reports estimate 0.0 forever,
// which the controller maps to the lowest rung of its ladder.
#pragma once

#include <cstdint>

namespace vod {

struct EwmaConfig {
  // Observations H slots old carry half the weight of the current one.
  // Must be > 0. The adaptive-engine default (64 slots ~ 78 min at the
  // paper's 72.7 s slot) follows a diurnal curve with ~5% lag while
  // smoothing Poisson noise to a few percent at moderate rates.
  double half_life_slots = 64.0;
  // Slots that must be observed before warmed_up() reports true; the
  // controller holds its initial mode until then. 0 means "trust the very
  // first slot".
  uint64_t warmup_slots = 16;
};

class EwmaRateEstimator {
 public:
  explicit EwmaRateEstimator(const EwmaConfig& config);

  // Feeds one completed slot's arrival count (the engine's per-slot batch;
  // 0 is a perfectly good observation and decays the estimate).
  void on_slot(uint64_t arrivals);

  // Current estimate in arrivals per slot. Exactly 0.0 before the first
  // on_slot(); never NaN or negative.
  double estimate() const { return estimate_; }

  uint64_t slots_observed() const { return slots_; }
  bool warmed_up() const { return slots_ >= config_.warmup_slots; }

 private:
  EwmaConfig config_;
  double alpha_ = 0.0;     // derived: 1 - 2^(-1/half_life)
  double estimate_ = 0.0;  // arrivals/slot
  uint64_t slots_ = 0;
};

}  // namespace vod
