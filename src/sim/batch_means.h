// Batch-means confidence intervals for steady-state simulation output.
//
// A single long run is split into B equal batches; the batch means are
// treated as (approximately) independent samples, giving a Student-t
// confidence interval for the steady-state mean. This is the standard
// output-analysis technique for the kind of open-loop simulations the paper
// runs.
#pragma once

#include <cstdint>
#include <vector>

namespace vod {

struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;  // mean ± half_width
  uint64_t batches = 0;

  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }
};

class BatchMeans {
 public:
  // samples_per_batch fixes the batch size up front (simplest, predictable).
  explicit BatchMeans(uint64_t samples_per_batch);

  void add(double x);

  // 95% CI over the completed batches. With fewer than 2 completed batches
  // the half-width is reported as infinity.
  ConfidenceInterval interval95() const;

  uint64_t completed_batches() const { return means_.size(); }

 private:
  uint64_t batch_size_;
  uint64_t in_batch_ = 0;
  double batch_sum_ = 0.0;
  std::vector<double> means_;
};

// Two-sided Student-t 0.975 quantile for `df` degrees of freedom (exact
// table for small df, normal tail beyond).
double student_t_975(uint64_t df);

}  // namespace vod
