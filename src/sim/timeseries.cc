#include "sim/timeseries.h"

namespace vod {

SlotSeries::SlotSeries(uint64_t warmup_slots, bool keep_samples)
    : warmup_(warmup_slots), keep_samples_(keep_samples) {}

void SlotSeries::add(double v) {
  if (seen_ < warmup_) {
    ++seen_;
    return;
  }
  ++seen_;
  stats_.add(v);
  if (keep_samples_) samples_.push_back(v);
}

}  // namespace vod
