// Slot-indexed time series with warmup trimming.
//
// Slotted protocols produce one bandwidth sample per slot. SlotSeries
// collects them, discards a configurable warmup prefix, and reports the
// summary statistics the paper's figures plot (time average and maximum,
// both in multiples of the video consumption rate b).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/stats.h"

namespace vod {

class SlotSeries {
 public:
  // warmup_slots samples are absorbed but excluded from the statistics.
  explicit SlotSeries(uint64_t warmup_slots = 0, bool keep_samples = false);

  void add(double v);

  uint64_t measured_count() const { return stats_.count(); }
  double mean() const { return stats_.mean(); }
  double max() const { return stats_.max(); }
  double stddev() const { return stats_.stddev(); }
  const RunningStats& stats() const { return stats_; }

  // Raw post-warmup samples; only retained when keep_samples was set.
  const std::vector<double>& samples() const { return samples_; }

 private:
  uint64_t warmup_;
  uint64_t seen_ = 0;
  bool keep_samples_;
  RunningStats stats_;
  std::vector<double> samples_;
};

}  // namespace vod
