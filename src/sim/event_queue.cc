#include "sim/event_queue.h"

#include "util/check.h"

namespace vod {

EventId EventQueue::schedule(double t, std::function<void()> fn) {
  VOD_DCHECK_SERIAL(serial_);
  VOD_CHECK_MSG(t >= now_, "cannot schedule an event in the past");
  VOD_CHECK(fn != nullptr);
  const EventId id = next_id_++;
  heap_.push(Entry{t, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

bool EventQueue::cancel(EventId id) {
  VOD_DCHECK_SERIAL(serial_);
  // The heap entry stays behind; skim() discards it lazily.
  return handlers_.erase(id) > 0;
}

void EventQueue::skim() {
  while (!heap_.empty() && !handlers_.contains(heap_.top().id)) heap_.pop();
}

bool EventQueue::step() {
  VOD_DCHECK_SERIAL(serial_);
  skim();
  if (heap_.empty()) return false;
  const Entry e = heap_.top();
  heap_.pop();
  auto it = handlers_.find(e.id);
  VOD_CHECK(it != handlers_.end());
  std::function<void()> fn = std::move(it->second);
  handlers_.erase(it);
  now_ = e.time;
  fn();
  return true;
}

void EventQueue::run_until(double until) {
  for (;;) {
    skim();
    if (heap_.empty() || heap_.top().time > until) break;
    step();
  }
  if (until > now_) now_ = until;
}

}  // namespace vod
