// Streaming statistics accumulators.
//
// Welford's algorithm for numerically stable mean/variance, plus min/max,
// a fixed-bin histogram, and a time-weighted accumulator for piecewise-
// constant signals (the instantaneous server bandwidth of the reactive
// protocols is exactly such a signal).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace vod {

class RunningStats {
 public:
  void add(double x);
  void add_n(double x, uint64_t n);

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  void merge(const RunningStats& other);
  void reset() { *this = RunningStats{}; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Time-weighted average of a piecewise-constant signal. Call set(t, v) at
// every change point; finish(t_end) closes the last segment.
class TimeWeightedStats {
 public:
  explicit TimeWeightedStats(double t0 = 0.0) : last_t_(t0), start_(t0) {}

  // Records that the signal takes value v from time t onward. t must be
  // non-decreasing.
  void set(double t, double v);

  // Closes the final segment at t_end and returns *this for chaining.
  TimeWeightedStats& finish(double t_end);

  double mean() const;
  double max() const { return has_value_ ? max_ : 0.0; }
  double elapsed() const { return last_t_ - start_; }

 private:
  double last_t_;
  double start_;
  double value_ = 0.0;
  bool has_value_ = false;
  double weighted_sum_ = 0.0;
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-width histogram over [lo, hi); out-of-range samples clamp into the
// edge bins. Used for bandwidth distribution plots and tail statistics.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void add(double x);
  void add_n(double x, uint64_t n);
  uint64_t count() const { return total_; }
  // Smallest value v such that at least `q` fraction of samples are <= v
  // (bin upper edge; exact to bin resolution). Edge semantics are defined:
  // an empty histogram returns lo() for every q; q = 0.0 returns the lower
  // edge of the first occupied bin (the minimum sample's bin floor);
  // q = 1.0 returns the upper edge of the last occupied bin.
  double quantile(double q) const;
  const std::vector<uint64_t>& bins() const { return bins_; }
  double bin_width() const { return width_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  // Adds another histogram's counts bin by bin. Both histograms must share
  // the exact (lo, hi, bins) spec — this is the merge point for per-thread
  // metric shards.
  void merge(const Histogram& other);

 private:
  double lo_, hi_, width_;
  std::vector<uint64_t> bins_;
  uint64_t total_ = 0;
};

}  // namespace vod
