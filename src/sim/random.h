// Deterministic pseudo-random substrate.
//
// Everything stochastic in the library draws from Rng, a xoshiro256**
// generator seeded through SplitMix64 so that a single 64-bit seed fully
// determines a simulation run. std::mt19937 is avoided on purpose: its
// distributions differ across standard libraries, which would make the
// regenerated tables non-portable.
#pragma once

#include <array>
#include <cstdint>

namespace vod {

// SplitMix64 — used for seed expansion and as a cheap standalone generator.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}
  uint64_t next();

 private:
  uint64_t state_;
};

// xoshiro256** 1.0 (Blackman & Vigna). Fast, high quality, tiny state.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Raw 64 random bits.
  uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0. Rejection-free Lemire trick.
  uint64_t uniform_index(uint64_t n);

  // Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  // Standard normal via Box–Muller (no cached spare; stateless wrt stream).
  double normal();
  double normal(double mean, double stddev);

  // Lognormal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);

  // Poisson with the given mean. Uses Knuth for small means and
  // normal approximation with rounding for large ones (mean > 64).
  uint64_t poisson(double mean);

  // Geometric: number of failures before first success, p in (0, 1].
  uint64_t geometric(double p);

  // Forks an independent generator for a named sub-stream.
  Rng fork(uint64_t stream_id) const;

 private:
  std::array<uint64_t, 4> s_{};
  uint64_t seed_ = 0;
};

}  // namespace vod
