#include "sim/arrival_process.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace vod {

PoissonProcess::PoissonProcess(double rate, Rng rng)
    : rate_(rate), rng_(rng) {
  // rate == 0 is the legal degenerate process that never arrives (a dead
  // video in a Zipf tail, or a server configured with zero demand) — it
  // must not reach exponential()'s divide-by-rate.
  VOD_CHECK_MSG(rate >= 0.0 && std::isfinite(rate),
                "Poisson rate must be finite and non-negative");
}

double PoissonProcess::next() {
  if (rate_ == 0.0) return std::numeric_limits<double>::infinity();
  now_ += rng_.exponential(rate_);
  return now_;
}

NonHomogeneousPoissonProcess::NonHomogeneousPoissonProcess(
    std::function<double(double)> rate, double max_rate, Rng rng)
    : rate_(std::move(rate)), max_rate_(max_rate), rng_(rng) {
  // max_rate == 0 forces rate(t) == 0 everywhere (the thinning bound), so
  // the process is legal and empty. Rejecting it — or worse, entering the
  // thinning loop, which accepts with probability rate/max == 0/0 — would
  // turn a dead video into an abort or an infinite loop.
  VOD_CHECK_MSG(max_rate_ >= 0.0 && std::isfinite(max_rate_),
                "max_rate must be finite and non-negative");
}

double NonHomogeneousPoissonProcess::next() {
  if (max_rate_ == 0.0) return std::numeric_limits<double>::infinity();
  // Thinning: propose at max_rate, accept with probability rate(t)/max_rate.
  for (;;) {
    now_ += rng_.exponential(max_rate_);
    const double r = rate_(now_);
    VOD_CHECK_MSG(r <= max_rate_ * (1.0 + 1e-9),
                  "rate(t) exceeds declared max_rate");
    if (r > 0.0 && rng_.uniform() < r / max_rate_) return now_;
  }
}

ScriptedArrivals::ScriptedArrivals(std::vector<double> times)
    : times_(std::move(times)) {
  for (size_t i = 1; i < times_.size(); ++i) {
    VOD_CHECK_MSG(times_[i] > times_[i - 1],
                  "scripted arrivals must be strictly increasing");
  }
}

double ScriptedArrivals::next() {
  if (idx_ >= times_.size()) return std::numeric_limits<double>::infinity();
  return times_[idx_++];
}

PeriodicArrivals::PeriodicArrivals(double start, double period)
    : next_(start), period_(period) {
  VOD_CHECK(period > 0.0);
}

double PeriodicArrivals::next() {
  const double t = next_;
  next_ += period_;
  return t;
}

std::function<double(double)> daily_demand_curve(double off_peak_per_hour,
                                                 double peak_per_hour) {
  VOD_CHECK(off_peak_per_hour >= 0.0);
  VOD_CHECK(peak_per_hour >= off_peak_per_hour);
  const double lo = per_hour(off_peak_per_hour);
  const double hi = per_hour(peak_per_hour);
  return [lo, hi](double t) {
    const double day = 24.0 * 3600.0;
    const double tod = std::fmod(t, day) / day;  // 0..1, 0 = midnight
    // Sinusoid with its peak at 21:00 and trough at 09:00.
    const double phase = 2.0 * M_PI * (tod - 21.0 / 24.0);
    const double w = 0.5 * (1.0 + std::cos(phase));  // 1 at peak, 0 at trough
    return lo + (hi - lo) * w;
  };
}

}  // namespace vod
