// Discrete-event simulation core.
//
// The continuous-time reactive protocols (stream tapping, patching,
// batching) run on this engine; the slotted protocols (DHB, UD, dNPB, and
// the static mappings) advance slot-by-slot and only use the engine when
// mixed with continuous processes. Events are (time, sequence)-ordered so
// simultaneous events fire in scheduling order, which keeps runs
// deterministic.
//
// Concurrency contract: an EventQueue is owned by one simulation thread —
// there is no internal locking, and Debug builds assert the single-writer
// discipline on every mutating call (DESIGN.md §11). The handlers_ hash
// map is never iterated (lookup/erase only), so its nondeterministic
// order can never reach a result; the time order comes from the heap.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/thread_checker.h"

namespace vod {

using EventId = uint64_t;

class EventQueue {
 public:
  // Schedules `fn` at absolute time `t` (must be >= now()). Returns an id
  // that can be used to cancel the event before it fires.
  EventId schedule(double t, std::function<void()> fn);

  // Cancels a pending event. Cancelling an already-fired or unknown id is a
  // no-op and returns false.
  bool cancel(EventId id);

  // Fires events in time order until the queue is empty or the next event is
  // after `until`. The clock ends at max(now, until).
  void run_until(double until);

  // Fires exactly one event if any exists; returns false when empty.
  bool step();

  double now() const { return now_; }
  bool empty() const { return handlers_.empty(); }
  size_t pending() const { return handlers_.size(); }

 private:
  struct Entry {
    double time;
    EventId id;
    bool operator>(const Entry& o) const {
      return time > o.time || (time == o.time && id > o.id);
    }
  };

  // Drops heap entries whose handler was cancelled.
  void skim();

  ThreadChecker serial_;
  double now_ = 0.0;
  EventId next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
};

}  // namespace vod
