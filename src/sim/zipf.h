// Zipf-like popularity distribution over a video catalog.
//
// VOD request popularity is classically modelled as Zipf with a small skew
// parameter (Dan, Sitaram & Shahabuddin use theta = 0.271 for rental
// data): P(rank i) proportional to 1 / i^(1 - theta)... conventions vary,
// so this class takes the exponent s directly: P(i) ~ 1 / i^s, i = 1..n,
// with s = 0 uniform and s ~ 0.729 matching the classic video-rental fit.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.h"

namespace vod {

class ZipfDistribution {
 public:
  // n items ranked 1..n (returned 0-based), exponent s >= 0.
  ZipfDistribution(int n, double s);

  // Samples a 0-based item index.
  int sample(Rng& rng) const;

  // Probability of the 0-based item index.
  double probability(int item) const;

  int size() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;  // cumulative probabilities, cdf_.back() == 1
};

}  // namespace vod
