#include "sim/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace vod {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::add_n(double x, uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) add(x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void TimeWeightedStats::set(double t, double v) {
  VOD_CHECK_MSG(t >= last_t_, "time must be non-decreasing");
  if (has_value_) weighted_sum_ += value_ * (t - last_t_);
  value_ = v;
  has_value_ = true;
  max_ = std::max(max_, v);
  last_t_ = t;
}

TimeWeightedStats& TimeWeightedStats::finish(double t_end) {
  VOD_CHECK(t_end >= last_t_);
  if (has_value_) weighted_sum_ += value_ * (t_end - last_t_);
  last_t_ = t_end;
  return *this;
}

double TimeWeightedStats::mean() const {
  const double span = last_t_ - start_;
  return span > 0.0 ? weighted_sum_ / span : 0.0;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      bins_(bins, 0) {
  VOD_CHECK(hi > lo);
  VOD_CHECK(bins > 0);
}

void Histogram::add(double x) { add_n(x, 1); }

void Histogram::add_n(double x, uint64_t n) {
  double idx = (x - lo_) / width_;
  size_t i = 0;
  if (idx >= static_cast<double>(bins_.size())) {
    i = bins_.size() - 1;
  } else if (idx > 0.0) {
    i = static_cast<size_t>(idx);
  }
  bins_[i] += n;
  total_ += n;
}

double Histogram::quantile(double q) const {
  VOD_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  if (q == 0.0) {
    // The minimum sample's bin floor: with target = 0 the cumulative walk
    // below would stop at bin 0 even when it is empty.
    for (size_t i = 0; i < bins_.size(); ++i) {
      if (bins_[i] > 0) return lo_ + width_ * static_cast<double>(i);
    }
  }
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (size_t i = 0; i < bins_.size(); ++i) {
    cum += static_cast<double>(bins_[i]);
    if (cum >= target) return lo_ + width_ * static_cast<double>(i + 1);
  }
  return hi_;
}

void Histogram::merge(const Histogram& other) {
  VOD_CHECK_MSG(lo_ == other.lo_ && hi_ == other.hi_ &&
                    bins_.size() == other.bins_.size(),
                "histogram merge requires identical (lo, hi, bins) specs");
  for (size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  total_ += other.total_;
}

}  // namespace vod
