#include "schedule/slot_schedule.h"

#include <algorithm>

#include "util/check.h"

namespace vod {

SlotSchedule::SlotSchedule(int num_segments, int window)
    : num_segments_(num_segments),
      window_(window),
      loads_(static_cast<size_t>(window) + 1, 0),
      contents_(static_cast<size_t>(window) + 1),
      per_segment_(static_cast<size_t>(num_segments) + 1) {
  VOD_CHECK(num_segments >= 1);
  VOD_CHECK(window >= 1);
}

size_t SlotSchedule::ring_index(Slot s) const {
  return static_cast<size_t>(s % static_cast<Slot>(loads_.size()));
}

int SlotSchedule::load(Slot s) const {
  VOD_DCHECK(s > now_ && s <= now_ + window_);
  return loads_[ring_index(s)];
}

std::optional<Slot> SlotSchedule::find_instance(Segment j, Slot lo,
                                                Slot hi) const {
  VOD_DCHECK(j >= 1 && j <= num_segments_);
  const std::vector<Slot>& slots = per_segment_[static_cast<size_t>(j)];
  // Latest instance <= hi; lists are short (almost always 0 or 1 entries).
  for (auto it = slots.rbegin(); it != slots.rend(); ++it) {
    if (*it <= hi) {
      if (*it >= lo) return *it;
      return std::nullopt;
    }
  }
  return std::nullopt;
}

bool SlotSchedule::has_future_instance(Segment j) const {
  VOD_DCHECK(j >= 1 && j <= num_segments_);
  return !per_segment_[static_cast<size_t>(j)].empty();
}

const std::vector<Slot>& SlotSchedule::instances_of(Segment j) const {
  VOD_DCHECK(j >= 1 && j <= num_segments_);
  return per_segment_[static_cast<size_t>(j)];
}

const std::vector<Segment>& SlotSchedule::contents(Slot s) const {
  VOD_DCHECK(s > now_ && s <= now_ + window_);
  return contents_[ring_index(s)];
}

void SlotSchedule::add_instance(Segment j, Slot s) {
  VOD_CHECK(j >= 1 && j <= num_segments_);
  VOD_CHECK_MSG(s > now_ && s <= now_ + window_,
                "instance outside the scheduling window");
  const size_t idx = ring_index(s);
  ++loads_[idx];
  ++total_;
  contents_[idx].push_back(j);
  std::vector<Slot>& slots = per_segment_[static_cast<size_t>(j)];
  slots.insert(std::upper_bound(slots.begin(), slots.end(), s), s);
}

std::vector<Segment> SlotSchedule::advance() {
  ++now_;
  const size_t idx = ring_index(now_);
  std::vector<Segment> out = std::move(contents_[idx]);
  contents_[idx].clear();
  total_ -= loads_[idx];
  loads_[idx] = 0;
  for (Segment j : out) {
    std::vector<Slot>& slots = per_segment_[static_cast<size_t>(j)];
    auto it = std::find(slots.begin(), slots.end(), now_);
    VOD_DCHECK(it != slots.end());
    slots.erase(it);
  }
  return out;
}

}  // namespace vod
