#include "schedule/slot_schedule.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace vod {
namespace {

// Initial slab row strides. Contents rows hold the instances of one slot
// (about total/window on average — small); per-segment rows hold a
// segment's future instances (0 or 1 under the §3 sharing invariant).
// Outgrowing rows re-lay the slab at double stride, so these only set
// where the doubling starts.
constexpr size_t kInitialContentsCap = 4;
constexpr size_t kInitialSegCap = 2;

size_t ring_pow2(int window) {
  size_t size = 1;
  while (size < static_cast<size_t>(window) + 1) size <<= 1;
  return size;
}

// One arena block sized to the construction-time slabs, so a scheduler
// that never outgrows its initial strides owns exactly one block.
size_t initial_arena_bytes(int num_segments, int window) {
  const size_t ring = ring_pow2(window);
  const size_t segs = static_cast<size_t>(num_segments) + 1;
  const size_t bytes = ring * sizeof(int)                            // loads
                       + ring * kInitialContentsCap * sizeof(Segment)
                       + ring * sizeof(int)                   // contents_len
                       + segs * kInitialSegCap * sizeof(Slot)  // seg slab
                       + segs * sizeof(int)                    // seg_len
                       + segs * sizeof(Slot)                   // latest
                       + 64;                                   // align slack
  return bytes < 1024 ? 1024 : bytes;
}

}  // namespace

SlotSchedule::SlotSchedule(int num_segments, int window)
    : num_segments_(num_segments),
      window_(window),
      arena_(initial_arena_bytes(num_segments, window)),
      ring_size_(ring_pow2(window)),
      ring_mask_(ring_size_ - 1),
      contents_cap_(kInitialContentsCap),
      seg_cap_(kInitialSegCap),
      index_(ring_size_) {
  VOD_CHECK(num_segments >= 1);
  VOD_CHECK(window >= 1);
  const size_t segs = static_cast<size_t>(num_segments) + 1;
  loads_ = arena_.alloc_array<int>(ring_size_);
  contents_slab_ = arena_.alloc_array<Segment>(ring_size_ * contents_cap_);
  contents_len_ = arena_.alloc_array<int>(ring_size_);
  seg_slab_ = arena_.alloc_array<Slot>(segs * seg_cap_);
  seg_len_ = arena_.alloc_array<int>(segs);
  latest_ = arena_.alloc_array<Slot>(segs);
  std::fill_n(loads_, ring_size_, 0);
  std::fill_n(contents_len_, ring_size_, 0);
  std::fill_n(seg_len_, segs, 0);
  std::fill_n(latest_, segs, Slot{0});
}

void SlotSchedule::grow_contents() {
  const size_t new_cap = contents_cap_ * 2;
  Segment* slab = arena_.alloc_array<Segment>(ring_size_ * new_cap);
  for (size_t r = 0; r < ring_size_; ++r) {
    const int len = contents_len_[r];
    if (len > 0) {
      std::memcpy(slab + r * new_cap, contents_slab_ + r * contents_cap_,
                  static_cast<size_t>(len) * sizeof(Segment));
    }
  }
  contents_slab_ = slab;
  contents_cap_ = new_cap;
  ++slab_grows_;
}

void SlotSchedule::grow_segments() {
  const size_t new_cap = seg_cap_ * 2;
  const size_t segs = static_cast<size_t>(num_segments_) + 1;
  Slot* slab = arena_.alloc_array<Slot>(segs * new_cap);
  for (size_t j = 0; j < segs; ++j) {
    const int len = seg_len_[j];
    if (len > 0) {
      std::memcpy(slab + j * new_cap, seg_slab_ + j * seg_cap_,
                  static_cast<size_t>(len) * sizeof(Slot));
    }
  }
  seg_slab_ = slab;
  seg_cap_ = new_cap;
  ++slab_grows_;
}

int SlotSchedule::load(Slot s) const {
  VOD_DCHECK(s > now_ && s <= now_ + window_);
  return loads_[ring_index(s)];
}

std::optional<Slot> SlotSchedule::find_instance(Segment j, Slot lo,
                                                Slot hi) const {
  VOD_DCHECK(j >= 1 && j <= num_segments_);
  // Fast path: the latest future instance answers for the whole window
  // (now, hi] because every live instance is > now >= lo - 1.
  const Slot latest = latest_[static_cast<size_t>(j)];
  if (latest == 0) return std::nullopt;
  if (lo == now_ + 1 && latest <= hi) return latest;
  const Slot* row = seg_row(static_cast<size_t>(j));
  // Latest instance <= hi; rows are short (almost always 0 or 1 entries).
  for (int i = seg_len_[static_cast<size_t>(j)]; i-- > 0;) {
    if (row[i] <= hi) {
      if (row[i] >= lo) return row[i];
      return std::nullopt;
    }
  }
  return std::nullopt;
}

bool SlotSchedule::has_future_instance(Segment j) const {
  VOD_DCHECK(j >= 1 && j <= num_segments_);
  return latest_[static_cast<size_t>(j)] != 0;
}

Slot SlotSchedule::latest_instance(Segment j) const {
  VOD_DCHECK(j >= 1 && j <= num_segments_);
  return latest_[static_cast<size_t>(j)];
}

std::span<const Slot> SlotSchedule::instances_of(Segment j) const {
  VOD_DCHECK(j >= 1 && j <= num_segments_);
  return {seg_row(static_cast<size_t>(j)),
          static_cast<size_t>(seg_len_[static_cast<size_t>(j)])};
}

std::span<const Segment> SlotSchedule::contents(Slot s) const {
  VOD_DCHECK(s > now_ && s <= now_ + window_);
  const size_t pos = ring_index(s);
  return {contents_row(pos), static_cast<size_t>(contents_len_[pos])};
}

void SlotSchedule::add_instance(Segment j, Slot s) {
  VOD_CHECK(j >= 1 && j <= num_segments_);
  VOD_CHECK_MSG(s > now_ && s <= now_ + window_,
                "instance outside the scheduling window");
  const size_t pos = ring_index(s);
  ++loads_[pos];
  ++total_;
  ++instances_added_;
  index_.add(pos, 1);

  if (static_cast<size_t>(contents_len_[pos]) == contents_cap_) {
    grow_contents();
  }
  contents_row(pos)[contents_len_[pos]++] = j;

  const size_t sj = static_cast<size_t>(j);
  if (static_cast<size_t>(seg_len_[sj]) == seg_cap_) grow_segments();
  Slot* row = seg_row(sj);
  int i = seg_len_[sj]++;
  // Sorted insert from the back; rows are tiny.
  for (; i > 0 && row[i - 1] > s; --i) row[i] = row[i - 1];
  row[i] = s;
  latest_[sj] = std::max(latest_[sj], s);
}

std::span<const Segment> SlotSchedule::advance() {
  VOD_DCHECK(overlay_.empty());  // no advance() with a live load overlay
  ++advances_;
  ++now_;
  const size_t pos = ring_index(now_);
  Segment* row = contents_row(pos);
  const int len = contents_len_[pos];
  contents_len_[pos] = 0;
  total_ -= loads_[pos];
  if (loads_[pos] != 0) index_.add(pos, -loads_[pos]);
  loads_[pos] = 0;
  for (int i = 0; i < len; ++i) {
    const size_t sj = static_cast<size_t>(row[i]);
    // Every live instance is > now_ - 1, so this segment's transmitted
    // instance sits at the front of its (ascending) row.
    Slot* seg = seg_row(sj);
    VOD_DCHECK(seg_len_[sj] > 0 && seg[0] == now_);
    const int remaining = --seg_len_[sj];
    std::memmove(seg, seg + 1,
                 static_cast<size_t>(remaining) * sizeof(Slot));
    latest_[sj] = remaining == 0 ? 0 : seg[remaining - 1];
  }
  return {row, static_cast<size_t>(len)};
}

SlotSchedule::MinLoad SlotSchedule::min_load_latest(Slot lo, Slot hi) const {
  VOD_DCHECK(lo > now_ && lo <= hi && hi <= now_ + window_);
  const size_t a = ring_index(lo);
  const size_t b = ring_index(hi);
  if (a <= b) {
    const LoadIndex::MinResult r = index_.min_latest(a, b);
    return MinLoad{lo + static_cast<Slot>(r.pos - a), r.load};
  }
  // The window wraps the ring once: [lo..] maps to [a, size) ("early" slots)
  // and [..hi] maps to [0, b] ("late" slots). On a load tie the late part
  // wins — its slots are all later than every early slot.
  const LoadIndex::MinResult early =
      index_.min_latest(a, index_.ring_size() - 1);
  const LoadIndex::MinResult late = index_.min_latest(0, b);
  if (late.load <= early.load) {
    return MinLoad{hi - static_cast<Slot>(b - late.pos), late.load};
  }
  return MinLoad{lo + static_cast<Slot>(early.pos - a), early.load};
}

SlotSchedule::MinLoad SlotSchedule::min_load_earliest(Slot lo, Slot hi) const {
  VOD_DCHECK(lo > now_ && lo <= hi && hi <= now_ + window_);
  const size_t a = ring_index(lo);
  const size_t b = ring_index(hi);
  if (a <= b) {
    const LoadIndex::MinResult r = index_.min_earliest(a, b);
    return MinLoad{lo + static_cast<Slot>(r.pos - a), r.load};
  }
  const LoadIndex::MinResult early =
      index_.min_earliest(a, index_.ring_size() - 1);
  const LoadIndex::MinResult late = index_.min_earliest(0, b);
  if (early.load <= late.load) {
    return MinLoad{lo + static_cast<Slot>(early.pos - a), early.load};
  }
  return MinLoad{hi - static_cast<Slot>(b - late.pos), late.load};
}

void SlotSchedule::scan_desc(size_t p_hi, size_t p_lo, int* best_load,
                             size_t* best_pos) const {
  // Positions p_hi down to p_lo, strict '<': an earlier (lower) slot only
  // displaces the incumbent with a strictly smaller load — the Figure 6
  // latest-tie rule, continued across ranges.
  for (size_t p = p_hi + 1; p-- > p_lo;) {
    const int m = loads_[p];
    if (m < *best_load) {
      *best_load = m;
      *best_pos = p;
    }
  }
}

void SlotSchedule::scan_asc(size_t p_lo, size_t p_hi, int* best_load,
                            size_t* best_pos) const {
  // Positions p_lo up to p_hi, strict '<': the earliest-tie rule.
  for (size_t p = p_lo; p <= p_hi; ++p) {
    const int m = loads_[p];
    if (m < *best_load) {
      *best_load = m;
      *best_pos = p;
    }
  }
}

SlotSchedule::MinLoad SlotSchedule::scan_min_load_latest(Slot lo,
                                                         Slot hi) const {
  VOD_DCHECK(lo > now_ && lo <= hi && hi <= now_ + window_);
  const size_t a = ring_index(lo);
  const size_t b = ring_index(hi);
  int best_load = loads_[b];
  size_t best_pos = b;
  if (a <= b) {
    if (b > a) scan_desc(b - 1, a, &best_load, &best_pos);
    return MinLoad{lo + static_cast<Slot>(best_pos - a), best_load};
  }
  // Wrapped: the "late" range [0, b] holds the highest slots — scan it
  // first (descending), then the "early" range [a, ring_size).
  if (b > 0) scan_desc(b - 1, 0, &best_load, &best_pos);
  scan_desc(ring_size_ - 1, a, &best_load, &best_pos);
  if (best_pos <= b) {
    return MinLoad{hi - static_cast<Slot>(b - best_pos), best_load};
  }
  return MinLoad{lo + static_cast<Slot>(best_pos - a), best_load};
}

SlotSchedule::MinLoad SlotSchedule::scan_min_load_earliest(Slot lo,
                                                           Slot hi) const {
  VOD_DCHECK(lo > now_ && lo <= hi && hi <= now_ + window_);
  const size_t a = ring_index(lo);
  const size_t b = ring_index(hi);
  int best_load = loads_[a];
  size_t best_pos = a;
  if (a <= b) {
    if (b > a) scan_asc(a + 1, b, &best_load, &best_pos);
    return MinLoad{lo + static_cast<Slot>(best_pos - a), best_load};
  }
  // Wrapped: the "early" range [a, ring_size) holds the lowest slots —
  // scan it first (ascending), then the "late" range [0, b].
  if (a + 1 <= ring_size_ - 1) {
    scan_asc(a + 1, ring_size_ - 1, &best_load, &best_pos);
  }
  scan_asc(0, b, &best_load, &best_pos);
  if (best_pos >= a) {
    return MinLoad{lo + static_cast<Slot>(best_pos - a), best_load};
  }
  return MinLoad{hi - static_cast<Slot>(b - best_pos), best_load};
}

void SlotSchedule::add_load_overlay(Slot s, int delta) {
  VOD_DCHECK(s > now_ && s <= now_ + window_);
  const size_t pos = ring_index(s);
  index_.add(pos, delta);
  overlay_.emplace_back(pos, delta);
  ++overlay_ops_;
}

void SlotSchedule::clear_load_overlay() {
  for (const auto& [pos, delta] : overlay_) index_.add(pos, -delta);
  overlay_.clear();
}

}  // namespace vod
