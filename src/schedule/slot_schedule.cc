#include "schedule/slot_schedule.h"

#include <algorithm>

#include "util/check.h"

namespace vod {

SlotSchedule::SlotSchedule(int num_segments, int window)
    : num_segments_(num_segments),
      window_(window),
      loads_(static_cast<size_t>(window) + 1, 0),
      contents_(static_cast<size_t>(window) + 1),
      per_segment_(static_cast<size_t>(num_segments) + 1),
      latest_(static_cast<size_t>(num_segments) + 1, 0),
      index_(static_cast<size_t>(window) + 1) {
  VOD_CHECK(num_segments >= 1);
  VOD_CHECK(window >= 1);
}

size_t SlotSchedule::ring_index(Slot s) const {
  return static_cast<size_t>(s % static_cast<Slot>(loads_.size()));
}

int SlotSchedule::load(Slot s) const {
  VOD_DCHECK(s > now_ && s <= now_ + window_);
  return loads_[ring_index(s)];
}

std::optional<Slot> SlotSchedule::find_instance(Segment j, Slot lo,
                                                Slot hi) const {
  VOD_DCHECK(j >= 1 && j <= num_segments_);
  // Fast path: the latest future instance answers for the whole window
  // (now, hi] because every live instance is > now >= lo - 1.
  const Slot latest = latest_[static_cast<size_t>(j)];
  if (latest == 0) return std::nullopt;
  if (lo == now_ + 1 && latest <= hi) return latest;
  const std::vector<Slot>& slots = per_segment_[static_cast<size_t>(j)];
  // Latest instance <= hi; lists are short (almost always 0 or 1 entries).
  for (auto it = slots.rbegin(); it != slots.rend(); ++it) {
    if (*it <= hi) {
      if (*it >= lo) return *it;
      return std::nullopt;
    }
  }
  return std::nullopt;
}

bool SlotSchedule::has_future_instance(Segment j) const {
  VOD_DCHECK(j >= 1 && j <= num_segments_);
  return latest_[static_cast<size_t>(j)] != 0;
}

Slot SlotSchedule::latest_instance(Segment j) const {
  VOD_DCHECK(j >= 1 && j <= num_segments_);
  return latest_[static_cast<size_t>(j)];
}

const std::vector<Slot>& SlotSchedule::instances_of(Segment j) const {
  VOD_DCHECK(j >= 1 && j <= num_segments_);
  return per_segment_[static_cast<size_t>(j)];
}

const std::vector<Segment>& SlotSchedule::contents(Slot s) const {
  VOD_DCHECK(s > now_ && s <= now_ + window_);
  return contents_[ring_index(s)];
}

void SlotSchedule::add_instance(Segment j, Slot s) {
  VOD_CHECK(j >= 1 && j <= num_segments_);
  VOD_CHECK_MSG(s > now_ && s <= now_ + window_,
                "instance outside the scheduling window");
  const size_t idx = ring_index(s);
  ++loads_[idx];
  ++total_;
  ++instances_added_;
  index_.add(idx, 1);
  contents_[idx].push_back(j);
  std::vector<Slot>& slots = per_segment_[static_cast<size_t>(j)];
  slots.insert(std::upper_bound(slots.begin(), slots.end(), s), s);
  latest_[static_cast<size_t>(j)] =
      std::max(latest_[static_cast<size_t>(j)], s);
}

std::vector<Segment> SlotSchedule::advance() {
  VOD_DCHECK(overlay_.empty());  // no advance() with a live load overlay
  ++advances_;
  ++now_;
  const size_t idx = ring_index(now_);
  std::vector<Segment> out = std::move(contents_[idx]);
  contents_[idx].clear();
  total_ -= loads_[idx];
  if (loads_[idx] != 0) index_.add(idx, -loads_[idx]);
  loads_[idx] = 0;
  for (Segment j : out) {
    std::vector<Slot>& slots = per_segment_[static_cast<size_t>(j)];
    auto it = std::find(slots.begin(), slots.end(), now_);
    VOD_DCHECK(it != slots.end());
    slots.erase(it);
    latest_[static_cast<size_t>(j)] = slots.empty() ? 0 : slots.back();
  }
  return out;
}

SlotSchedule::MinLoad SlotSchedule::min_load_latest(Slot lo, Slot hi) const {
  VOD_DCHECK(lo > now_ && lo <= hi && hi <= now_ + window_);
  const size_t a = ring_index(lo);
  const size_t b = ring_index(hi);
  if (a <= b) {
    const LoadIndex::MinResult r = index_.min_latest(a, b);
    return MinLoad{lo + static_cast<Slot>(r.pos - a), r.load};
  }
  // The window wraps the ring once: [lo..] maps to [a, size) ("early" slots)
  // and [..hi] maps to [0, b] ("late" slots). On a load tie the late part
  // wins — its slots are all later than every early slot.
  const LoadIndex::MinResult early =
      index_.min_latest(a, index_.ring_size() - 1);
  const LoadIndex::MinResult late = index_.min_latest(0, b);
  if (late.load <= early.load) {
    return MinLoad{hi - static_cast<Slot>(b - late.pos), late.load};
  }
  return MinLoad{lo + static_cast<Slot>(early.pos - a), early.load};
}

SlotSchedule::MinLoad SlotSchedule::min_load_earliest(Slot lo, Slot hi) const {
  VOD_DCHECK(lo > now_ && lo <= hi && hi <= now_ + window_);
  const size_t a = ring_index(lo);
  const size_t b = ring_index(hi);
  if (a <= b) {
    const LoadIndex::MinResult r = index_.min_earliest(a, b);
    return MinLoad{lo + static_cast<Slot>(r.pos - a), r.load};
  }
  const LoadIndex::MinResult early =
      index_.min_earliest(a, index_.ring_size() - 1);
  const LoadIndex::MinResult late = index_.min_earliest(0, b);
  if (early.load <= late.load) {
    return MinLoad{lo + static_cast<Slot>(early.pos - a), early.load};
  }
  return MinLoad{hi - static_cast<Slot>(b - late.pos), late.load};
}

void SlotSchedule::add_load_overlay(Slot s, int delta) {
  VOD_DCHECK(s > now_ && s <= now_ + window_);
  const size_t pos = ring_index(s);
  index_.add(pos, delta);
  overlay_.emplace_back(pos, delta);
  ++overlay_ops_;
}

void SlotSchedule::clear_load_overlay() {
  for (const auto& [pos, delta] : overlay_) index_.add(pos, -delta);
  overlay_.clear();
}

}  // namespace vod
