#include "schedule/client_plan.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace vod {

PlanDiagnostics verify_plan(const ClientPlan& plan,
                            const std::vector<int>& periods) {
  PlanDiagnostics diag;
  const int n = plan.num_segments();
  if (!periods.empty()) {
    VOD_CHECK(static_cast<int>(periods.size()) == n);
  }

  // Deadlines + per-slot reception counts.
  std::map<Slot, int> receptions;  // slot -> segments received in it
  for (int j = 1; j <= n; ++j) {
    const Slot s = plan.reception_slot[static_cast<size_t>(j - 1)];
    const Slot deadline =
        plan.arrival_slot +
        (periods.empty() ? j : periods[static_cast<size_t>(j - 1)]);
    if (s <= plan.arrival_slot || s > deadline) {
      if (diag.deadlines_met) {
        diag.deadlines_met = false;
        diag.first_violation = j;
      }
    }
    ++receptions[s];
  }
  for (const auto& [slot, count] : receptions) {
    diag.max_concurrent_streams = std::max(diag.max_concurrent_streams, count);
  }

  // Buffering: walk slot boundaries; at the end of slot t the client has
  // consumed min(t - arrival, n) segments and received every segment whose
  // reception slot is <= t.
  if (n > 0) {
    Slot last =
        *std::max_element(plan.reception_slot.begin(), plan.reception_slot.end());
    int received = 0;
    auto it = receptions.begin();
    for (Slot t = plan.arrival_slot + 1; t <= last; ++t) {
      while (it != receptions.end() && it->first <= t) {
        received += it->second;
        ++it;
      }
      const int consumed =
          static_cast<int>(std::min<Slot>(t - plan.arrival_slot, n));
      diag.max_buffered_segments =
          std::max(diag.max_buffered_segments, received - consumed);
    }
  }
  return diag;
}

}  // namespace vod
