// Shared vocabulary types for slotted broadcasting.
//
// Conventions used throughout the library (they mirror the paper's):
//  * A video of duration D seconds is cut into n segments of equal duration
//    d = D/n; transmissions are aligned to slots of duration d.
//  * Slots are numbered 1, 2, 3, ...; a request "arrives during slot i" and
//    can only be served by transmissions in slots >= i + 1.
//  * A client that arrived during slot i watches segment S_j during slot
//    i + j, so S_j must be transmitted during some slot in (i, i + j]
//    (stream-through reception: a segment may be received during the very
//    slot in which it is watched, exactly as in fast broadcasting).
//  * Segments are 1-based (S_1..S_n); segment id 0 means "idle".
#pragma once

#include <cstdint>

namespace vod {

using Slot = int64_t;
using Segment = int32_t;

// Parameters of one video in consumption-rate units.
struct VideoParams {
  double duration_s = 7200.0;  // D: the paper's canonical two-hour video
  int num_segments = 99;       // n: the paper's canonical segment count

  double slot_duration_s() const {
    return duration_s / static_cast<double>(num_segments);
  }
  // Converts an arrival rate in requests/hour to the expected number of
  // request arrivals per slot.
  double arrivals_per_slot(double requests_per_hour) const {
    return requests_per_hour / 3600.0 * slot_duration_s();
  }
};

}  // namespace vod
