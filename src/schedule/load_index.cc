#include "schedule/load_index.h"

#include <algorithm>

#include "util/check.h"

namespace vod {

LoadIndex::LoadIndex(size_t ring_size) : ring_size_(ring_size) {
  VOD_CHECK(ring_size >= 1);
  leaves_ = 1;
  while (leaves_ < ring_size_) leaves_ <<= 1;
  tree_.assign(2 * leaves_, 0);
  // Padding leaves (positions past the ring) must never win a min query.
  for (size_t p = ring_size_; p < leaves_; ++p) {
    tree_[leaves_ + p] = kInfiniteLoad;
  }
  for (size_t node = leaves_ - 1; node >= 1; --node) {
    tree_[node] = std::min(tree_[2 * node], tree_[2 * node + 1]);
  }
}

void LoadIndex::add(size_t pos, int delta) {
  VOD_DCHECK(pos < ring_size_);
  ++updates_;
  size_t node = leaves_ + pos;
  tree_[node] += delta;
  for (node >>= 1; node >= 1; node >>= 1) {
    tree_[node] = std::min(tree_[2 * node], tree_[2 * node + 1]);
  }
}

int LoadIndex::value(size_t pos) const {
  VOD_DCHECK(pos < ring_size_);
  return tree_[leaves_ + pos];
}

// Both argmin queries run the same shape: one iterative pass decomposes
// [a, b] into its canonical O(log W) cover, recording the visited nodes —
// left-edge nodes in `ln` (covering ascending position ranges, in
// collection order) and right-edge nodes in `rn` (descending) — while
// folding the range minimum. The winning subtree is then the first node
// holding the minimum when the cover is scanned in position order
// (descending for min_latest, ascending for min_earliest), and the descent
// to its extreme minimal leaf is branchless: each level selects the
// preferred child with a conditional subtract/add (`tree_[child] != m`
// compiles to setcc/cmov, not a per-level branch — the recursion the
// original implementation used is gone).
//
// A 64-entry node stack covers any ring (the tree height is bounded by the
// word size).

LoadIndex::MinResult LoadIndex::min_latest(size_t a, size_t b) const {
  VOD_DCHECK(a <= b && b < ring_size_);
  ++queries_;
  size_t ln[64];
  size_t rn[64];
  size_t lc = 0;
  size_t rc = 0;
  int m = kInfiniteLoad;
  for (size_t l = leaves_ + a, r = leaves_ + b + 1; l < r; l >>= 1, r >>= 1) {
    if ((l & 1) != 0) {
      m = std::min(m, tree_[l]);
      ln[lc++] = l++;
    }
    if ((r & 1) != 0) {
      --r;
      m = std::min(m, tree_[r]);
      rn[rc++] = r;
    }
  }
  // rn[0] covers the highest positions, then descending; ln reversed
  // continues the descent. The first node at the minimum owns the
  // rightmost minimal leaf.
  size_t node = 0;
  for (size_t i = 0; i < rc && node == 0; ++i) {
    if (tree_[rn[i]] == m) node = rn[i];
  }
  for (size_t i = lc; i > 0 && node == 0; --i) {
    if (tree_[ln[i - 1]] == m) node = ln[i - 1];
  }
  VOD_DCHECK(node != 0);
  while (node < leaves_) {
    const size_t right = 2 * node + 1;
    node = right - static_cast<size_t>(tree_[right] != m);
  }
  const size_t pos = node - leaves_;
  VOD_DCHECK(pos < ring_size_);
  return MinResult{m, pos};
}

LoadIndex::MinResult LoadIndex::min_earliest(size_t a, size_t b) const {
  VOD_DCHECK(a <= b && b < ring_size_);
  ++queries_;
  size_t ln[64];
  size_t rn[64];
  size_t lc = 0;
  size_t rc = 0;
  int m = kInfiniteLoad;
  for (size_t l = leaves_ + a, r = leaves_ + b + 1; l < r; l >>= 1, r >>= 1) {
    if ((l & 1) != 0) {
      m = std::min(m, tree_[l]);
      ln[lc++] = l++;
    }
    if ((r & 1) != 0) {
      --r;
      m = std::min(m, tree_[r]);
      rn[rc++] = r;
    }
  }
  // ln[0] covers the lowest positions, then ascending; rn reversed
  // continues upward. The first node at the minimum owns the leftmost
  // minimal leaf.
  size_t node = 0;
  for (size_t i = 0; i < lc && node == 0; ++i) {
    if (tree_[ln[i]] == m) node = ln[i];
  }
  for (size_t i = rc; i > 0 && node == 0; --i) {
    if (tree_[rn[i - 1]] == m) node = rn[i - 1];
  }
  VOD_DCHECK(node != 0);
  while (node < leaves_) {
    const size_t left = 2 * node;
    node = left + static_cast<size_t>(tree_[left] != m);
  }
  const size_t pos = node - leaves_;
  VOD_DCHECK(pos < ring_size_);
  return MinResult{m, pos};
}

}  // namespace vod
