#include "schedule/load_index.h"

#include <algorithm>

#include "util/check.h"

namespace vod {

LoadIndex::LoadIndex(size_t ring_size) : ring_size_(ring_size) {
  VOD_CHECK(ring_size >= 1);
  leaves_ = 1;
  while (leaves_ < ring_size_) leaves_ <<= 1;
  tree_.assign(2 * leaves_, 0);
  // Padding leaves (positions past the ring) must never win a min query.
  for (size_t p = ring_size_; p < leaves_; ++p) {
    tree_[leaves_ + p] = kInfiniteLoad;
  }
  for (size_t node = leaves_ - 1; node >= 1; --node) {
    tree_[node] = std::min(tree_[2 * node], tree_[2 * node + 1]);
  }
}

void LoadIndex::add(size_t pos, int delta) {
  VOD_DCHECK(pos < ring_size_);
  ++updates_;
  size_t node = leaves_ + pos;
  tree_[node] += delta;
  for (node >>= 1; node >= 1; node >>= 1) {
    tree_[node] = std::min(tree_[2 * node], tree_[2 * node + 1]);
  }
}

int LoadIndex::value(size_t pos) const {
  VOD_DCHECK(pos < ring_size_);
  return tree_[leaves_ + pos];
}

int LoadIndex::min_in(size_t a, size_t b) const {
  int m = kInfiniteLoad;
  size_t l = leaves_ + a;
  size_t r = leaves_ + b + 1;
  while (l < r) {
    if ((l & 1) != 0) m = std::min(m, tree_[l++]);
    if ((r & 1) != 0) m = std::min(m, tree_[--r]);
    l >>= 1;
    r >>= 1;
  }
  return m;
}

size_t LoadIndex::rightmost_min(size_t node, size_t node_lo, size_t node_hi,
                                size_t a, size_t b, int m) const {
  if (b < node_lo || node_hi < a || tree_[node] > m) return ring_size_;
  if (node_lo == node_hi) return node_lo;
  const size_t mid = node_lo + (node_hi - node_lo) / 2;
  const size_t right = rightmost_min(2 * node + 1, mid + 1, node_hi, a, b, m);
  if (right != ring_size_) return right;
  return rightmost_min(2 * node, node_lo, mid, a, b, m);
}

size_t LoadIndex::leftmost_min(size_t node, size_t node_lo, size_t node_hi,
                               size_t a, size_t b, int m) const {
  if (b < node_lo || node_hi < a || tree_[node] > m) return ring_size_;
  if (node_lo == node_hi) return node_lo;
  const size_t mid = node_lo + (node_hi - node_lo) / 2;
  const size_t left = leftmost_min(2 * node, node_lo, mid, a, b, m);
  if (left != ring_size_) return left;
  return leftmost_min(2 * node + 1, mid + 1, node_hi, a, b, m);
}

LoadIndex::MinResult LoadIndex::min_latest(size_t a, size_t b) const {
  VOD_DCHECK(a <= b && b < ring_size_);
  ++queries_;
  const int m = min_in(a, b);
  const size_t pos = rightmost_min(1, 0, leaves_ - 1, a, b, m);
  VOD_DCHECK(pos < ring_size_);
  return MinResult{m, pos};
}

LoadIndex::MinResult LoadIndex::min_earliest(size_t a, size_t b) const {
  VOD_DCHECK(a <= b && b < ring_size_);
  ++queries_;
  const int m = min_in(a, b);
  const size_t pos = leftmost_min(1, 0, leaves_ - 1, a, b, m);
  VOD_DCHECK(pos < ring_size_);
  return MinResult{m, pos};
}

}  // namespace vod
