#include "schedule/stream_pool.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace vod {

int StreamPool::assign(Segment j, Slot s) {
  VOD_CHECK(j >= 1);
  for (size_t k = 0; k < streams_.size(); ++k) {
    const auto& cells = streams_[k];
    const bool busy = std::any_of(cells.begin(), cells.end(),
                                  [s](const Cell& c) { return c.slot == s; });
    if (!busy) {
      streams_[k].push_back(Cell{s, j});
      return static_cast<int>(k);
    }
  }
  streams_.push_back({Cell{s, j}});
  return static_cast<int>(streams_.size()) - 1;
}

Segment StreamPool::at(int stream, Slot slot) const {
  if (stream < 0 || stream >= streams_used()) return 0;
  for (const Cell& c : streams_[static_cast<size_t>(stream)]) {
    if (c.slot == slot) return c.segment;
  }
  return 0;
}

std::string StreamPool::render(Slot first, Slot last) const {
  std::ostringstream os;
  os << "Slot      ";
  for (Slot s = first; s <= last; ++s) os << '\t' << s;
  os << '\n';
  for (int k = 0; k < streams_used(); ++k) {
    os << "Stream " << (k + 1) << "  ";
    for (Slot s = first; s <= last; ++s) {
      const Segment seg = at(k, s);
      os << '\t';
      if (seg == 0) {
        os << '-';
      } else {
        os << 'S' << seg;
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace vod
