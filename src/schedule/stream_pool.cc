#include "schedule/stream_pool.h"

#include <sstream>

#include "util/check.h"

namespace vod {

void StreamPool::grow() {
  const size_t new_cap = cap_ * 2;
  std::vector<Cell> fresh(len_.size() * new_cap);
  for (size_t k = 0; k < len_.size(); ++k) {
    const Cell* src = row(k);
    Cell* dst = fresh.data() + k * new_cap;
    for (int i = 0; i < len_[k]; ++i) dst[static_cast<size_t>(i)] = src[i];
  }
  cells_ = std::move(fresh);
  cap_ = new_cap;
}

int StreamPool::assign(Segment j, Slot s) {
  VOD_CHECK(j >= 1);
  for (size_t k = 0; k < len_.size(); ++k) {
    const Cell* cells = row(k);
    const int len = len_[k];
    bool busy = false;
    for (int i = 0; i < len; ++i) busy |= cells[i].slot == s;
    if (!busy) {
      if (static_cast<size_t>(len) == cap_) grow();
      row(k)[static_cast<size_t>(len)] = Cell{s, j};
      ++len_[k];
      return static_cast<int>(k);
    }
  }
  len_.push_back(1);
  cells_.resize(len_.size() * cap_);
  row(len_.size() - 1)[0] = Cell{s, j};
  return static_cast<int>(len_.size()) - 1;
}

Segment StreamPool::at(int stream, Slot slot) const {
  if (stream < 0 || stream >= streams_used()) return 0;
  const Cell* cells = row(static_cast<size_t>(stream));
  const int len = len_[static_cast<size_t>(stream)];
  for (int i = 0; i < len; ++i) {
    if (cells[i].slot == slot) return cells[i].segment;
  }
  return 0;
}

std::string StreamPool::render(Slot first, Slot last) const {
  std::ostringstream os;
  os << "Slot      ";
  for (Slot s = first; s <= last; ++s) os << '\t' << s;
  os << '\n';
  for (int k = 0; k < streams_used(); ++k) {
    os << "Stream " << (k + 1) << "  ";
    for (Slot s = first; s <= last; ++s) {
      const Segment seg = at(k, s);
      os << '\t';
      if (seg == 0) {
        os << '-';
      } else {
        os << 'S' << seg;
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace vod
