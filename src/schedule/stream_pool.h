// Assignment of scheduled segment instances to physical data streams.
//
// The DHB scheduler reasons about per-slot instance counts; an actual
// server must place each instance on a concrete channel. StreamPool does
// first-fit assignment in scheduling order, which reproduces the stream
// layout of the paper's Figures 4 and 5 (the first request's six segments
// land on the 1st stream; the second request's S1/S2 land on the 2nd).
// It also renders the assignment as a printable grid for the examples.
//
// Storage follows the repo's flat-slab convention (DESIGN.md §14): one
// contiguous Cell slab with a fixed per-stream stride, stream k's cells at
// [k * cap_, k * cap_ + len_[k]). A stream that outgrows the stride
// triggers a whole-slab re-layout at double the stride.
#pragma once

#include <string>
#include <vector>

#include "schedule/types.h"

namespace vod {

class StreamPool {
 public:
  // Records that one instance of segment j was scheduled (in scheduling
  // order) for transmission during slot s. Returns the assigned stream
  // index (0-based): the lowest stream idle during s.
  int assign(Segment j, Slot s);

  // Number of streams the assignment used so far.
  int streams_used() const { return static_cast<int>(len_.size()); }

  // Segment on `stream` during `slot` (0 = idle).
  Segment at(int stream, Slot slot) const;

  // Renders slots [first, last] as the paper's figures do: one row per
  // stream, one column per slot, cells "S3" or "-".
  std::string render(Slot first, Slot last) const;

 private:
  struct Cell {
    Slot slot;
    Segment segment;
  };

  Cell* row(size_t k) { return cells_.data() + k * cap_; }
  const Cell* row(size_t k) const { return cells_.data() + k * cap_; }

  // Doubles the per-stream stride and re-lays the slab out.
  void grow();

  std::vector<Cell> cells_;  // [len_.size() * cap_] flat cell slab
  std::vector<int> len_;     // per-stream row fill
  size_t cap_ = 4;           // per-stream row stride
};

}  // namespace vod
