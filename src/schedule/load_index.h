// Range-min placement index over the slot ring.
//
// LoadIndex is the fast-path data structure behind SlotSchedule's
// min-load placement queries: a segment tree over the per-slot load
// counters of the scheduling ring, answering "which slot in [a, b] has
// the minimum load, ties broken toward the latest (or earliest)
// position" in O(log W) instead of the naive O(W) window scan of the
// paper's Figure 6 — without changing a single scheduling decision
// (the tie-break rules reproduce the linear scans bit for bit; the
// differential fuzzer in tests/fuzz_schedule_audit.cc is the oracle).
//
// The index speaks *ring positions*, not slots: SlotSchedule maps a slot
// window (lo, hi] onto at most two contiguous position ranges (the ring
// wraps at most once because every window is narrower than the ring) and
// composes the per-range results. Values are plain ints so callers can
// superimpose transient deltas — the tentative placements of a bounded
// admission, or the "client-saturated slot" masks of the capped variant —
// directly on the tree and rip them back out afterwards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vod {

class LoadIndex {
 public:
  // Sentinel for "no position": also the value padding leaves hold so the
  // power-of-two tree never lets them win a min query.
  static constexpr int kInfiniteLoad = 2147483647;  // INT_MAX

  explicit LoadIndex(size_t ring_size);

  size_t ring_size() const { return ring_size_; }

  // Adds `delta` to the value at ring position `pos` (pos < ring_size).
  void add(size_t pos, int delta);

  // Current value at ring position `pos`.
  int value(size_t pos) const;

  struct MinResult {
    int load = kInfiniteLoad;
    size_t pos = 0;
  };

  // Minimum value over the contiguous position range [a, b]
  // (a <= b < ring_size), with the argmin tie broken toward the highest
  // position (min_latest) or the lowest (min_earliest). O(log ring_size),
  // fully iterative: one canonical-cover pass finds the minimum and the
  // winning subtree, then a branchless child-select descent (conditional
  // subtract, no per-level branches) pins the extreme minimal leaf.
  MinResult min_latest(size_t a, size_t b) const;
  MinResult min_earliest(size_t a, size_t b) const;

  // Lifetime operation accounting for the observability layer: range-min
  // queries answered and point updates applied. Exported by the scheduler
  // as schedule_index_* counters; never read on a decision path.
  uint64_t total_queries() const { return queries_; }
  uint64_t total_updates() const { return updates_; }

 private:
  size_t ring_size_;
  size_t leaves_;          // smallest power of two >= ring_size_
  std::vector<int> tree_;  // 1-based heap layout; leaf p at leaves_ + p
  mutable uint64_t queries_ = 0;  // op metering only (const query paths)
  uint64_t updates_ = 0;
};

}  // namespace vod
