// Client-side reception plans and the playout verifier.
//
// When a request is admitted, the scheduler commits it to one transmission
// slot per segment. Because DHB never moves or cancels a scheduled
// instance, the plan fixed at arrival remains valid forever; the verifier
// checks the end-to-end correctness properties the protocol promises:
//
//   * deadline:   segment j is received in (arrival, arrival + j]
//                 (with per-segment periods T[], in (arrival, arrival+T[j]]);
//   * concurrency: how many streams the STB must receive at once;
//   * buffering:   how many segments the STB must hold.
#pragma once

#include <cstdint>
#include <vector>

#include "schedule/types.h"

namespace vod {

struct ClientPlan {
  Slot arrival_slot = 0;
  // reception_slot[j-1] = the slot in which segment j is received.
  std::vector<Slot> reception_slot;

  int num_segments() const { return static_cast<int>(reception_slot.size()); }
};

struct PlanDiagnostics {
  bool deadlines_met = true;
  // First violating segment (1-based) when !deadlines_met, else 0.
  Segment first_violation = 0;
  // Maximum number of segments received during any one slot.
  int max_concurrent_streams = 0;
  // Maximum number of whole segments buffered at any slot boundary
  // (received but not yet consumed). A measure of required STB storage,
  // in units of one segment (= d seconds of video).
  int max_buffered_segments = 0;
};

// Verifies a plan. `periods` is the per-segment maximum delay vector
// (empty => T[j] = j, the CBR base protocol). Consumption model:
// segment j is consumed during slot arrival + j (stream-through), so at the
// end of slot arrival + j the client has consumed j segments.
PlanDiagnostics verify_plan(const ClientPlan& plan,
                            const std::vector<int>& periods = {});

}  // namespace vod
