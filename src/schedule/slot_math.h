// Audited modular slot arithmetic.
//
// The ring wrap-seam bug class (DESIGN.md §9, §12): composing a slot
// window onto a modular ring by hand is exactly the arithmetic that broke
// LoadIndex's wrap-seam composition once, and the periodic broadcast
// mappings (FB / SB / NPB) repeat the same `(slot - 1) % cycle` idiom in
// every segment_at(). These helpers are the one approved home for that
// arithmetic: they normalize the 1-based slot convention (types.h), they
// are defined for every stride >= 1, and congruence handles negative
// differences correctly (C++ `%` truncates toward zero, so a raw
// `(a - b) % m == r` comparison is wrong for a < b and r > 0).
//
// The vod-raw-slot-modulo clang-tidy check (tools/vod_tidy) flags raw `%`
// on slot/segment expressions everywhere outside this header and the
// SlotSchedule/LoadIndex ring internals; new modular slot math goes here,
// with unit coverage in tests/slot_math_test.cc.
#pragma once

#include "schedule/types.h"
#include "util/check.h"

namespace vod {

// 0-based position of 1-based `slot` inside a repeating cycle of length
// `cycle`: slot 1 -> 0, slot cycle -> cycle - 1, slot cycle + 1 -> 0.
// The phase every periodic mapping's segment_at() is built on.
constexpr Slot cycle_phase(Slot slot, Slot cycle) {
  VOD_DCHECK(slot >= 1);
  VOD_DCHECK(cycle >= 1);
  return (slot - 1) % cycle;
}

// True when 1-based `slot` lies on the arithmetic progression with the
// given stride and 0-based offset (offset in [0, stride)): the slots
// carrying one NPB progression entry.
constexpr bool stride_hits(Slot slot, Slot stride, Slot offset) {
  VOD_DCHECK(offset >= 0 && offset < stride);
  return cycle_phase(slot, stride) == offset;
}

// True when a ≡ b (mod m), for any signs of a and b. Two progressions on
// one stream collide iff their offsets are congruent modulo gcd(strides).
constexpr bool congruent_mod(Slot a, Slot b, Slot m) {
  VOD_DCHECK(m >= 1);
  return (a - b) % m == 0;  // r == 0 is sign-safe: m | (a-b) iff remainder 0
}

}  // namespace vod
