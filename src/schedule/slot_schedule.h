// The server-side slotted transmission schedule.
//
// SlotSchedule tracks, for a bounded look-ahead window, which segment
// instances are scheduled in which future slot. It is the state the DHB
// scheduler (core/dhb.h) manipulates, but is protocol-agnostic: it only
// knows about slots, per-slot load counts, and per-segment future
// instances.
//
// Capacity: the window covers slots (now, now + window]; window must be at
// least the largest scheduling horizon any caller uses (for DHB that is
// max_j T[j] <= n).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "schedule/types.h"

namespace vod {

class SlotSchedule {
 public:
  // num_segments: segments are 1..num_segments. window: look-ahead depth.
  SlotSchedule(int num_segments, int window);

  Slot now() const { return now_; }
  int window() const { return window_; }
  int num_segments() const { return num_segments_; }

  // Number of instances scheduled in slot s; s must lie in (now, now+window].
  int load(Slot s) const;

  // Latest scheduled instance of segment j in (lo, hi], if any.
  // Requires now < lo <= hi <= now + window (callers clamp hi).
  std::optional<Slot> find_instance(Segment j, Slot lo, Slot hi) const;

  // True when segment j has at least one scheduled instance in the window.
  bool has_future_instance(Segment j) const;

  // All scheduled future slots of segment j, ascending. Under uncapped DHB
  // this has at most one element (the paper's sharing invariant); the
  // client-bandwidth-capped variant may create more.
  const std::vector<Slot>& instances_of(Segment j) const;

  // The segment instances scheduled in slot s (insertion order); s must lie
  // in (now, now+window]. Lets auditors cross-check the per-slot ring
  // against the per-segment index without advancing the clock.
  const std::vector<Segment>& contents(Slot s) const;

  // Schedules one instance of segment j in slot s (now < s <= now+window).
  void add_instance(Segment j, Slot s);

  // Advances the clock by one slot and returns the segments transmitted
  // during the new current slot (its content is final: no request arriving
  // from now on may schedule into it).
  std::vector<Segment> advance();

  // Total instances currently scheduled in the window.
  int total_scheduled() const { return total_; }

 private:
  // Test-only backdoor (tests/schedule_auditor_test.cc) used to inject
  // corruptions and prove the ScheduleAuditor non-vacuous.
  friend struct SlotScheduleTestPeer;

  size_t ring_index(Slot s) const;

  int num_segments_;
  int window_;
  Slot now_ = 0;
  int total_ = 0;
  std::vector<int> loads_;                       // ring, indexed by slot % size
  std::vector<std::vector<Segment>> contents_;   // ring of per-slot segment lists
  std::vector<std::vector<Slot>> per_segment_;   // [segment] -> future slots asc
};

}  // namespace vod
