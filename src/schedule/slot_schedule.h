// The server-side slotted transmission schedule.
//
// SlotSchedule tracks, for a bounded look-ahead window, which segment
// instances are scheduled in which future slot. It is the state the DHB
// scheduler (core/dhb.h) manipulates, but is protocol-agnostic: it only
// knows about slots, per-slot load counts, and per-segment future
// instances.
//
// Capacity: the window covers slots (now, now + window]; window must be at
// least the largest scheduling horizon any caller uses (for DHB that is
// max_j T[j] <= n).
//
// Placement fast path. Beyond the per-slot counters, the schedule keeps
// two derived structures maintained incrementally by add_instance() /
// advance():
//   * a range-min placement index (schedule/load_index.h) over the load
//     ring, answering min_load_latest() / min_load_earliest() — the
//     Figure 6 "min load, ties to the latest slot" rule — in O(log W);
//   * an O(1) latest-instance cache per segment (latest_instance()), the
//     common-case answer to the sharing probe without touching the
//     per-segment slot vectors.
// Both are exact: they reproduce the naive window scans bit for bit (the
// differential fuzzer is the oracle). Callers running transactional or
// masked placements (bounded admission, the client-stream-cap variant)
// can superimpose transient per-slot deltas on the index only via
// add_load_overlay(); the overlay never touches the real loads and must
// be cleared before the clock advances.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "schedule/load_index.h"
#include "schedule/types.h"

namespace vod {

class SlotSchedule {
 public:
  // num_segments: segments are 1..num_segments. window: look-ahead depth.
  SlotSchedule(int num_segments, int window);

  Slot now() const { return now_; }
  int window() const { return window_; }
  int num_segments() const { return num_segments_; }

  // Number of instances scheduled in slot s; s must lie in (now, now+window].
  int load(Slot s) const;

  // Latest scheduled instance of segment j in (lo, hi], if any.
  // Requires now < lo <= hi <= now + window (callers clamp hi).
  std::optional<Slot> find_instance(Segment j, Slot lo, Slot hi) const;

  // True when segment j has at least one scheduled instance in the window.
  bool has_future_instance(Segment j) const;

  // Latest scheduled future slot of segment j, or 0 when none — an O(1)
  // cache over instances_of(j).back(). Because every live instance lies in
  // the future (> now), a latest instance <= hi answers the whole sharing
  // probe for a window (now, hi].
  Slot latest_instance(Segment j) const;

  // All scheduled future slots of segment j, ascending. Under uncapped DHB
  // this has at most one element (the paper's sharing invariant); the
  // client-bandwidth-capped variant may create more.
  const std::vector<Slot>& instances_of(Segment j) const;

  // The segment instances scheduled in slot s (insertion order); s must lie
  // in (now, now+window]. Lets auditors cross-check the per-slot ring
  // against the per-segment index without advancing the clock.
  const std::vector<Segment>& contents(Slot s) const;

  // Schedules one instance of segment j in slot s (now < s <= now+window).
  void add_instance(Segment j, Slot s);

  // Advances the clock by one slot and returns the segments transmitted
  // during the new current slot (its content is final: no request arriving
  // from now on may schedule into it). Requires an empty overlay.
  std::vector<Segment> advance();

  // Total instances currently scheduled in the window.
  int total_scheduled() const { return total_; }

  // --- Range-min placement queries (O(log window)) ---------------------

  struct MinLoad {
    Slot slot = 0;
    int load = 0;  // includes any overlay deltas on the winning slot
  };

  // Slot of minimum load (plus overlay) in [lo, hi], ties broken toward
  // the latest / earliest slot — exactly the linear hi→lo / lo→hi scans of
  // Figure 6. Requires now < lo <= hi <= now + window.
  MinLoad min_load_latest(Slot lo, Slot hi) const;
  MinLoad min_load_earliest(Slot lo, Slot hi) const;

  // Adds a transient per-slot delta to the placement index only: the real
  // load counters, ring, and per-segment index are untouched. Used for the
  // tentative placements of a transactional (bounded) admission and for
  // masking client-saturated slots in the capped variant.
  void add_load_overlay(Slot s, int delta);

  // Removes every overlay delta, restoring the index to the real loads.
  void clear_load_overlay();

  bool has_load_overlay() const { return !overlay_.empty(); }

  // --- Lifetime operation accounting (observability) -------------------
  // Raw structural-op counts the scheduler exports as schedule_* metrics.
  // Monotone over the schedule's lifetime; never read on a decision path.
  uint64_t total_instances_added() const { return instances_added_; }
  uint64_t total_advances() const { return advances_; }
  uint64_t total_overlay_ops() const { return overlay_ops_; }
  uint64_t total_index_queries() const { return index_.total_queries(); }
  uint64_t total_index_updates() const { return index_.total_updates(); }

 private:
  // Test-only backdoor (tests/schedule_auditor_test.cc) used to inject
  // corruptions and prove the ScheduleAuditor non-vacuous.
  friend struct SlotScheduleTestPeer;

  size_t ring_index(Slot s) const;

  int num_segments_;
  int window_;
  Slot now_ = 0;
  int total_ = 0;
  std::vector<int> loads_;                      // ring, indexed by slot % size
  std::vector<std::vector<Segment>> contents_;  // ring of per-slot segment lists
  std::vector<std::vector<Slot>> per_segment_;  // [segment] -> future slots asc
  std::vector<Slot> latest_;                    // [segment] -> latest slot, 0 none
  LoadIndex index_;                             // range-min over loads_ + overlay
  std::vector<std::pair<size_t, int>> overlay_;  // applied (pos, delta) pairs
  uint64_t instances_added_ = 0;                 // lifetime op meters
  uint64_t advances_ = 0;
  uint64_t overlay_ops_ = 0;
};

}  // namespace vod
