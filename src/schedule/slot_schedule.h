// The server-side slotted transmission schedule.
//
// SlotSchedule tracks, for a bounded look-ahead window, which segment
// instances are scheduled in which future slot. It is the state the DHB
// scheduler (core/dhb.h) manipulates, but is protocol-agnostic: it only
// knows about slots, per-slot load counts, and per-segment future
// instances.
//
// Capacity: the window covers slots (now, now + window]; window must be at
// least the largest scheduling horizon any caller uses (for DHB that is
// max_j T[j] <= n).
//
// Memory layout (DESIGN.md §14). All state lives in flat
// structure-of-arrays slabs carved from a private Arena (util/arena.h),
// not in nested std::vectors:
//   * the per-slot ring — load counters and slot contents — is sized to a
//     power of two (>= window + 1), so the slot → ring-position map is a
//     mask, not a division;
//   * contents is ONE contiguous Segment slab of ring_size × capacity,
//     row r at [r * capacity, r * capacity + contents_len[r]);
//   * the per-segment instance index is one contiguous Slot slab with the
//     same stride scheme (rows almost always hold 0 or 1 entries — the §3
//     sharing invariant), plus a flat latest-instance array;
//   * a slab that outgrows its row capacity is re-laid-out at double the
//     stride from the arena (the old storage is abandoned — bump arenas
//     never free — and growth stops once capacities plateau; the
//     slab-grow meter feeds the steady-state allocation audit).
// Accessors that used to return vectors return std::spans over the slabs,
// valid until the next mutating call.
//
// Placement fast path. Beyond the per-slot counters, the schedule keeps
// two derived structures maintained incrementally by add_instance() /
// advance():
//   * a range-min placement index (schedule/load_index.h) over the load
//     ring, answering min_load_latest() / min_load_earliest() — the
//     Figure 6 "min load, ties to the latest slot" rule — in O(log W);
//   * an O(1) latest-instance cache per segment (latest_instance()), the
//     common-case answer to the sharing probe without touching the
//     per-segment slot rows.
// Both are exact: they reproduce the naive window scans bit for bit (the
// differential fuzzer is the oracle). The naive scans themselves are
// served by scan_min_load_latest() / scan_min_load_earliest(): the same
// Figure 6 linear scans, but batched over the contiguous load ring — a
// window decomposes into at most two raw ranges, probed without a
// per-slot modulo. Callers running transactional or masked placements
// (bounded admission, the client-stream-cap variant) can superimpose
// transient per-slot deltas on the index only via add_load_overlay(); the
// overlay never touches the real loads and must be cleared before the
// clock advances.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "schedule/load_index.h"
#include "schedule/types.h"
#include "util/arena.h"

namespace vod {

class SlotSchedule {
 public:
  // num_segments: segments are 1..num_segments. window: look-ahead depth.
  SlotSchedule(int num_segments, int window);

  // Slabs point into the member arena: moving is fine (blocks are stable),
  // copying would alias them.
  SlotSchedule(SlotSchedule&&) = default;
  SlotSchedule& operator=(SlotSchedule&&) = default;

  Slot now() const { return now_; }
  int window() const { return window_; }
  int num_segments() const { return num_segments_; }

  // Number of instances scheduled in slot s; s must lie in (now, now+window].
  int load(Slot s) const;

  // Latest scheduled instance of segment j in (lo, hi], if any.
  // Requires now < lo <= hi <= now + window (callers clamp hi).
  std::optional<Slot> find_instance(Segment j, Slot lo, Slot hi) const;

  // True when segment j has at least one scheduled instance in the window.
  bool has_future_instance(Segment j) const;

  // Latest scheduled future slot of segment j, or 0 when none — an O(1)
  // cache over instances_of(j).back(). Because every live instance lies in
  // the future (> now), a latest instance <= hi answers the whole sharing
  // probe for a window (now, hi].
  Slot latest_instance(Segment j) const;

  // All scheduled future slots of segment j, ascending. Under uncapped DHB
  // this has at most one element (the paper's sharing invariant); the
  // client-bandwidth-capped variant may create more. The span views the
  // per-segment slab: valid until the next mutating call.
  std::span<const Slot> instances_of(Segment j) const;

  // The segment instances scheduled in slot s (insertion order); s must lie
  // in (now, now+window]. Lets auditors cross-check the per-slot ring
  // against the per-segment index without advancing the clock. Slab view:
  // valid until the next mutating call.
  std::span<const Segment> contents(Slot s) const;

  // Schedules one instance of segment j in slot s (now < s <= now+window).
  void add_instance(Segment j, Slot s);

  // Advances the clock by one slot and returns the segments transmitted
  // during the new current slot (its content is final: no request arriving
  // from now on may schedule into it). Requires an empty overlay. The span
  // views the vacated ring row: valid until the next mutating call.
  std::span<const Segment> advance();

  // Total instances currently scheduled in the window.
  int total_scheduled() const { return total_; }

  // --- Range-min placement queries (O(log window)) ---------------------

  struct MinLoad {
    Slot slot = 0;
    int load = 0;  // includes any overlay deltas on the winning slot
  };

  // Slot of minimum load (plus overlay) in [lo, hi], ties broken toward
  // the latest / earliest slot — exactly the linear hi→lo / lo→hi scans of
  // Figure 6. Requires now < lo <= hi <= now + window.
  MinLoad min_load_latest(Slot lo, Slot hi) const;
  MinLoad min_load_earliest(Slot lo, Slot hi) const;

  // --- Batched window probes (O(width), naive reference path) ----------

  // The literal Figure 6 scans over the RAW load counters (no overlay, no
  // index), answered by probing the contiguous load ring directly: the
  // window maps to at most two raw ranges, so the scan runs without a
  // per-slot modulo or bounds re-check. Decision-identical to
  // min_load_latest / min_load_earliest without an overlay — the naive
  // reference path the differential fuzzer cross-checks, and the
  // placement path of videos below the index cutover
  // (DhbConfig::placement_index_cutover).
  MinLoad scan_min_load_latest(Slot lo, Slot hi) const;
  MinLoad scan_min_load_earliest(Slot lo, Slot hi) const;

  // Adds a transient per-slot delta to the placement index only: the real
  // load counters, ring, and per-segment index are untouched. Used for the
  // tentative placements of a transactional (bounded) admission and for
  // masking client-saturated slots in the capped variant.
  void add_load_overlay(Slot s, int delta);

  // Removes every overlay delta, restoring the index to the real loads.
  void clear_load_overlay();

  bool has_load_overlay() const { return !overlay_.empty(); }

  // --- Lifetime operation accounting (observability) -------------------
  // Raw structural-op counts the scheduler exports as schedule_* metrics.
  // Monotone over the schedule's lifetime; never read on a decision path.
  uint64_t total_instances_added() const { return instances_added_; }
  uint64_t total_advances() const { return advances_; }
  uint64_t total_overlay_ops() const { return overlay_ops_; }
  uint64_t total_index_queries() const { return index_.total_queries(); }
  uint64_t total_index_updates() const { return index_.total_updates(); }
  // Slab re-layouts (row capacity doublings) since construction, and the
  // arena's system-block count: both must be flat across a steady-state
  // slot (tests/alloc_audit_test.cc).
  uint64_t total_slab_grows() const { return slab_grows_; }
  uint64_t total_arena_blocks() const {
    return arena_.total_block_allocations();
  }
  uint64_t total_arena_bytes() const { return arena_.total_bytes_requested(); }

 private:
  // Test-only backdoor (tests/schedule_auditor_test.cc) used to inject
  // corruptions and prove the ScheduleAuditor non-vacuous.
  friend struct SlotScheduleTestPeer;

  size_t ring_index(Slot s) const {
    return static_cast<size_t>(s) & ring_mask_;
  }

  Segment* contents_row(size_t pos) {
    return contents_slab_ + pos * contents_cap_;
  }
  const Segment* contents_row(size_t pos) const {
    return contents_slab_ + pos * contents_cap_;
  }
  Slot* seg_row(size_t j) { return seg_slab_ + j * seg_cap_; }
  const Slot* seg_row(size_t j) const { return seg_slab_ + j * seg_cap_; }

  // Doubles the row stride of the respective slab and re-lays it out in
  // fresh arena storage (the old slab is abandoned; see the layout note).
  void grow_contents();
  void grow_segments();

  // Raw-ring scan over positions [p_hi .. p_lo] descending / ascending,
  // continuing from (best_load, best_pos). Helpers for the batched probes.
  void scan_desc(size_t p_hi, size_t p_lo, int* best_load,
                 size_t* best_pos) const;
  void scan_asc(size_t p_lo, size_t p_hi, int* best_load,
                size_t* best_pos) const;

  int num_segments_;
  int window_;
  Slot now_ = 0;
  int total_ = 0;

  Arena arena_;        // backs every slab below
  size_t ring_size_;   // power of two >= window + 1
  size_t ring_mask_;   // ring_size_ - 1

  int* loads_ = nullptr;              // [ring_size_] instances per slot
  Segment* contents_slab_ = nullptr;  // [ring_size_ * contents_cap_]
  int* contents_len_ = nullptr;       // [ring_size_] row fill
  size_t contents_cap_;               // contents row stride

  Slot* seg_slab_ = nullptr;  // [(num_segments_+1) * seg_cap_], rows asc
  int* seg_len_ = nullptr;    // [num_segments_+1] row fill
  size_t seg_cap_;            // per-segment row stride
  Slot* latest_ = nullptr;    // [num_segments_+1] latest slot, 0 none

  LoadIndex index_;  // range-min over loads_ + overlay
  std::vector<std::pair<size_t, int>> overlay_;  // applied (pos, delta) pairs
  uint64_t instances_added_ = 0;                 // lifetime op meters
  uint64_t advances_ = 0;
  uint64_t overlay_ops_ = 0;
  uint64_t slab_grows_ = 0;
};

}  // namespace vod
