// Server bandwidth accounting for slotted protocols.
//
// Bandwidth is reported the way the paper plots it: in multiples of the
// video consumption rate b ("data streams"). One scheduled segment instance
// occupies one stream for one slot, so the instantaneous bandwidth during a
// slot is simply the number of instances transmitted in it. The meter trims
// a warmup prefix and produces batch-means confidence intervals.
#pragma once

#include <cstdint>

#include "obs/metrics.h"
#include "sim/batch_means.h"
#include "sim/stats.h"
#include "sim/timeseries.h"

namespace vod {

class BandwidthMeter {
 public:
  // warmup_slots samples are discarded; batch_slots sizes the CI batches.
  explicit BandwidthMeter(uint64_t warmup_slots = 0,
                          uint64_t batch_slots = 10000);

  void add_slot(int streams);

  uint64_t measured_slots() const { return series_.measured_count(); }
  // Time-average bandwidth in streams (multiples of b).
  double mean_streams() const { return series_.mean(); }
  // Maximum per-slot bandwidth in streams over the measured window.
  double max_streams() const { return series_.max(); }
  // 95% batch-means confidence interval on the mean.
  ConfidenceInterval mean_ci95() const { return batches_.interval95(); }

  // Converts the mean to MB/s given the per-stream rate in KB/s (the VBR
  // experiments of the paper's §4 report MB/s).
  double mean_mbs(double stream_kbs) const {
    return mean_streams() * stream_kbs / 1000.0;
  }
  double max_mbs(double stream_kbs) const {
    return max_streams() * stream_kbs / 1000.0;
  }

  // Per-slot stream distribution over the measured (post-warmup) window,
  // at one-stream resolution up to kHistogramMax (heavier slots clamp into
  // the top bin). The tail quantiles the mean/CI summary cannot show —
  // e.g. the p99 provisioning headroom of EXPERIMENTS.md.
  double p50_streams() const { return histogram_.quantile(0.50); }
  double p95_streams() const { return histogram_.quantile(0.95); }
  double p99_streams() const { return histogram_.quantile(0.99); }
  const Histogram& stream_histogram() const { return histogram_; }

  // Snapshots the meter into `out` as the bandwidth_streams histogram plus
  // bandwidth_slots_measured_total (exporter input; call when done).
  void export_metrics(obs::MetricShard* out) const;

  // One bin per stream count keeps Prometheus le-bucket edges integral.
  static constexpr double kHistogramMax = 512.0;

 private:
  SlotSeries series_;
  BatchMeans batches_;
  Histogram histogram_{0.0, kHistogramMax, static_cast<size_t>(kHistogramMax)};
  uint64_t warmup_;
  uint64_t seen_ = 0;
};

}  // namespace vod
