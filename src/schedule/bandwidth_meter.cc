#include "schedule/bandwidth_meter.h"

namespace vod {

BandwidthMeter::BandwidthMeter(uint64_t warmup_slots, uint64_t batch_slots)
    : series_(warmup_slots), batches_(batch_slots), warmup_(warmup_slots) {}

void BandwidthMeter::add_slot(int streams) {
  const double v = static_cast<double>(streams);
  series_.add(v);
  if (seen_ < warmup_) {
    ++seen_;
    return;
  }
  ++seen_;
  batches_.add(v);
}

}  // namespace vod
