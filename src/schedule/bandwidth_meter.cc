#include "schedule/bandwidth_meter.h"

namespace vod {

BandwidthMeter::BandwidthMeter(uint64_t warmup_slots, uint64_t batch_slots)
    : series_(warmup_slots), batches_(batch_slots), warmup_(warmup_slots) {}

void BandwidthMeter::add_slot(int streams) {
  const double v = static_cast<double>(streams);
  series_.add(v);
  if (seen_ < warmup_) {
    ++seen_;
    return;
  }
  ++seen_;
  batches_.add(v);
  histogram_.add(v);
}

void BandwidthMeter::export_metrics(obs::MetricShard* out) const {
  obs::HistogramMetric* h = out->histogram(
      "bandwidth_streams", 0.0, kHistogramMax,
      static_cast<size_t>(kHistogramMax));
  for (size_t i = 0; i < histogram_.bins().size(); ++i) {
    const uint64_t n = histogram_.bins()[i];
    if (n == 0) continue;
    // Re-observe at the bin's lower edge: bins are width 1, so this is the
    // exact integral stream count the samples carried.
    h->observe_n(histogram_.lo() + histogram_.bin_width() *
                                       static_cast<double>(i),
                 n);
  }
  out->counter("bandwidth_slots_measured_total")->inc(measured_slots());
}

}  // namespace vod
