// Hysteresis-ladder mode controller for adaptive protocol switching.
//
// The paper's central observation is that the cheapest delivery protocol
// depends on the arrival rate: reactive schemes win when requests are
// sparse, proactive broadcasts win at saturation. A controller that flips
// protocols the instant an EWMA estimate crosses a single threshold
// chatters — Poisson noise drives the estimate back and forth across the
// line, and every flip costs a migration (the old schedule drains while
// the new one spins up, so bandwidth is paid twice during the overlap).
//
// This controller implements the classic remedy, a *hysteresis band with a
// dwell time* per ladder rung boundary:
//
//   * modes form an ordered ladder 0..k-1, low-rate mode first;
//   * boundary i (between modes i and i+1) has switch-up threshold `up`
//     and switch-down threshold `down` with down < up, so an estimate
//     oscillating anywhere inside (down, up) never causes a switch;
//   * after any switch the controller refuses to move again for
//     `min_dwell_slots` slots, bounding the worst-case switch frequency no
//     matter how adversarial the estimate sequence is;
//   * the ladder moves one rung per decision — crossing two boundaries in
//     one estimate spike takes two dwell periods, deliberately.
//
// The controller is pure decision logic over (estimate, slot count): it
// knows nothing about schedulers, videos, or threads, which is what makes
// it trivially deterministic — the same estimate sequence yields the same
// mode sequence on any machine at any thread count. The meaning of each
// rung (which protocol it names) belongs to the caller
// (server/adaptive_video.h maps 0/1/2 to reactive/DHB/static NPB).
#pragma once

#include <cstdint>
#include <vector>

namespace vod {

struct HysteresisBand {
  double up = 0.0;    // move rung i -> i+1 when estimate >= up
  double down = 0.0;  // move rung i+1 -> i when estimate <= down; < up
};

struct ControllerConfig {
  // bands[i] governs the boundary between rungs i and i+1; the ladder has
  // bands.size() + 1 rungs. Must be non-empty with 0 <= down < up per band,
  // and consecutive bands must be ordered (bands[i].up <= bands[i+1].up,
  // bands[i].down <= bands[i+1].down) so the rung implied by a rate is
  // unique.
  std::vector<HysteresisBand> bands;
  // Slots the controller must hold a mode after entering it. >= 1; 1 means
  // "a switch per slot is acceptable" (tests only — migrations overlap).
  uint64_t min_dwell_slots = 64;
  // Rung occupied before the first on_slot().
  int initial_mode = 0;
  // Inclusive rung clamp: decisions never leave [min_mode, max_mode]. A
  // pinned controller (min == max) never switches — how the bench runs its
  // static-pin frontier baselines through the identical code path.
  int min_mode = 0;
  int max_mode = 1 << 30;  // clamped to the ladder size at construction
};

class ProtocolController {
 public:
  explicit ProtocolController(const ControllerConfig& config);

  // Feeds one slot's rate estimate (arrivals/slot) and returns the mode to
  // occupy from the next slot on. Call exactly once per slot.
  int on_slot(double rate_estimate);

  int mode() const { return mode_; }
  int num_modes() const { return static_cast<int>(config_.bands.size()) + 1; }
  // Slots spent in the current mode (resets on every switch).
  uint64_t dwell() const { return dwell_; }
  uint64_t switches() const { return switches_; }
  const ControllerConfig& config() const { return config_; }

 private:
  ControllerConfig config_;
  int mode_;
  uint64_t dwell_ = 0;     // slots since entering mode_
  uint64_t switches_ = 0;  // lifetime mode changes
};

}  // namespace vod
