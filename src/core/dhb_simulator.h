// End-to-end simulation driver for DHB (and any slotted dynamic protocol
// built on DhbScheduler).
//
// Reproduces the paper's measurement setup: Poisson request arrivals for a
// single video, a long steady-state run, and bandwidth reported in
// multiples of the consumption rate b. Optionally verifies every client's
// playout plan against the deadline/concurrency/buffering contract.
#pragma once

#include <cstdint>
#include <memory>

#include "core/dhb.h"
#include "schedule/bandwidth_meter.h"
#include "schedule/types.h"
#include "sim/arrival_process.h"

namespace vod {

struct SlottedSimConfig {
  VideoParams video;            // duration and segment count (slot size)
  double requests_per_hour = 10.0;
  double warmup_hours = 8.0;    // >= 2 video durations for the default video
  double measured_hours = 200.0;
  uint64_t seed = 42;
  bool verify_playout = true;   // check every plan against its contract
};

struct SlottedSimResult {
  double avg_streams = 0.0;      // time-average bandwidth, units of b
  double max_streams = 0.0;      // maximum per-slot bandwidth, units of b
  // Channel-provisioning quantiles over measured slots (resolution one
  // stream): the budget covering 99% / 99.9% of slots. Filled by the DHB
  // driver; the on-demand/static drivers leave them at 0.
  double p99_streams = 0.0;
  double p999_streams = 0.0;
  ConfidenceInterval avg_ci;     // 95% batch-means CI on avg_streams
  uint64_t requests = 0;         // requests admitted in the measured window
  double new_instances_per_request = 0.0;  // scheduling work (§3 cost note)
  double shared_fraction = 0.0;  // fraction of segment needs served by sharing
  uint64_t cap_violations = 0;   // capped variant only
  int max_client_streams = 0;    // worst observed STB concurrency
  int max_client_buffer_segments = 0;  // worst observed STB buffering
  bool playout_ok = true;        // every verified plan met every deadline
  // Start-up waiting time (arrival to the start of the serving slot): the
  // paper's "no customer will ever wait more than 73 seconds" guarantee,
  // measured. Mean ~ d/2 under Poisson arrivals; max < d always.
  double avg_wait_s = 0.0;
  double max_wait_s = 0.0;
};

// Runs DHB with the given protocol config against Poisson arrivals.
SlottedSimResult run_dhb_simulation(const DhbConfig& dhb,
                                    const SlottedSimConfig& sim);

// Same, but the caller supplies the arrival process (time-varying demand,
// scripted tests). The process must produce times in seconds.
SlottedSimResult run_dhb_simulation(const DhbConfig& dhb,
                                    const SlottedSimConfig& sim,
                                    ArrivalProcess& arrivals);

// ---------------------------------------------------------------------------
// Channel-bounded admission control.
//
// A real server owns a fixed number of channels. The bounded driver admits
// requests through DhbScheduler::on_request_bounded: a request that would
// push any slot beyond `channel_cap` streams waits (FIFO) and retries each
// slot, giving up after `max_extra_wait_slots`. This trades extra client
// waiting for a hard bandwidth ceiling — the quantitative answer to
// "Figure 8 says DHB needs up to NPB+2 streams; what if I only have K?"

struct BoundedSimConfig {
  SlottedSimConfig base;
  int channel_cap = 6;            // hard per-slot stream budget
  int max_extra_wait_slots = 50;  // give up (reject) after this many slots
};

struct BoundedSimResult {
  double avg_streams = 0.0;
  double max_streams = 0.0;          // never exceeds channel_cap
  uint64_t requests = 0;             // admitted in the measured window
  uint64_t deferred = 0;             // admitted but later than their slot
  uint64_t rejected = 0;             // gave up waiting
  double avg_extra_wait_slots = 0.0; // over admitted requests
  int max_extra_wait_slots = 0;
  bool playout_ok = true;
};

BoundedSimResult run_bounded_dhb_simulation(const DhbConfig& dhb,
                                            const BoundedSimConfig& sim);

}  // namespace vod
