#include "core/dhb_simulator.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "obs/trace.h"
#include "util/check.h"

namespace vod {

SlottedSimResult run_dhb_simulation(const DhbConfig& dhb,
                                    const SlottedSimConfig& sim) {
  PoissonProcess arrivals(per_hour(sim.requests_per_hour), Rng(sim.seed));
  return run_dhb_simulation(dhb, sim, arrivals);
}

SlottedSimResult run_dhb_simulation(const DhbConfig& dhb,
                                    const SlottedSimConfig& sim,
                                    ArrivalProcess& arrivals) {
  VOD_CHECK(dhb.num_segments == sim.video.num_segments);
  const double d = sim.video.slot_duration_s();
  const uint64_t warmup_slots =
      static_cast<uint64_t>(std::ceil(sim.warmup_hours * 3600.0 / d));
  const uint64_t total_slots =
      warmup_slots +
      static_cast<uint64_t>(std::ceil(sim.measured_hours * 3600.0 / d));

  DhbScheduler scheduler(dhb);
  BandwidthMeter meter(warmup_slots,
                       std::max<uint64_t>(1, (total_slots - warmup_slots) / 32));
  // Per-slot stream-count distribution for provisioning quantiles (bins of
  // one stream, [k, k+1) holding count k).
  Histogram stream_histogram(0.0, static_cast<double>(dhb.num_segments) + 1.0,
                             static_cast<size_t>(dhb.num_segments) + 1);

  SlottedSimResult result;
  uint64_t measured_requests = 0;
  uint64_t measured_new = 0;
  uint64_t measured_shared = 0;
  double wait_sum = 0.0;

  double next_arrival = arrivals.next();
  // The scheduler's current slot is `s`; requests with arrival time in
  // [s*d, (s+1)*d) arrive "during slot s+... ". Slot numbering: slot k
  // covers time [(k-1)*d, k*d); the scheduler starts at slot 0 (time < 0
  // never has arrivals), so we advance first, then admit.
  for (uint64_t step = 0; step < total_slots; ++step) {
    const std::vector<Segment> transmitted = scheduler.advance_slot();
    const Slot now = scheduler.current_slot();
    const bool measuring = step >= warmup_slots;
    meter.add_slot(static_cast<int>(transmitted.size()));
    if (measuring) {
      stream_histogram.add(static_cast<double>(transmitted.size()));
    }

    const double slot_end = static_cast<double>(now) * d;
    while (next_arrival < slot_end) {
      const DhbRequestResult r = scheduler.on_request();
      if (measuring) {
        ++measured_requests;
        // The client is served starting at the next slot boundary.
        const double wait = slot_end - next_arrival;
        wait_sum += wait;
        result.max_wait_s = std::max(result.max_wait_s, wait);
        measured_new += static_cast<uint64_t>(r.new_instances);
        measured_shared += static_cast<uint64_t>(r.shared_instances);
        result.cap_violations += static_cast<uint64_t>(r.cap_violations);
        if (sim.verify_playout) {
          const PlanDiagnostics diag = verify_plan(r.plan, scheduler.periods());
          result.playout_ok = result.playout_ok && diag.deadlines_met;
          result.max_client_streams =
              std::max(result.max_client_streams, diag.max_concurrent_streams);
          result.max_client_buffer_segments =
              std::max(result.max_client_buffer_segments,
                       diag.max_buffered_segments);
        }
      }
      next_arrival = arrivals.next();
    }
  }

  result.avg_streams = meter.mean_streams();
  result.max_streams = meter.max_streams();
  // quantile() returns the bin's upper edge; slot counts are integers in
  // [k, k+1), so subtract the bin width to report the count itself.
  result.p99_streams = std::max(0.0, stream_histogram.quantile(0.99) - 1.0);
  result.p999_streams = std::max(0.0, stream_histogram.quantile(0.999) - 1.0);
  result.avg_ci = meter.mean_ci95();
  result.requests = measured_requests;
  if (measured_requests > 0) {
    result.avg_wait_s = wait_sum / static_cast<double>(measured_requests);
    result.new_instances_per_request =
        static_cast<double>(measured_new) /
        static_cast<double>(measured_requests);
    result.shared_fraction =
        static_cast<double>(measured_shared) /
        static_cast<double>(measured_new + measured_shared);
  }
  // Snapshot the run's accounting into the ambient sink (when the caller —
  // vodsim, a test, a bench — installed one): the scheduler's dhb_* and
  // schedule_* counters plus the meter's bandwidth_streams histogram.
  if (obs::ObsSink* sink = obs::current_sink();
      sink != nullptr && sink->metrics != nullptr) {
    scheduler.export_metrics(sink->metrics);
    meter.export_metrics(sink->metrics);
  }
  return result;
}

}  // namespace vod

namespace vod {

BoundedSimResult run_bounded_dhb_simulation(const DhbConfig& dhb,
                                            const BoundedSimConfig& sim) {
  VOD_CHECK(dhb.num_segments == sim.base.video.num_segments);
  VOD_CHECK(sim.channel_cap >= 1);
  const double d = sim.base.video.slot_duration_s();
  const uint64_t warmup_slots =
      static_cast<uint64_t>(std::ceil(sim.base.warmup_hours * 3600.0 / d));
  const uint64_t total_slots =
      warmup_slots +
      static_cast<uint64_t>(std::ceil(sim.base.measured_hours * 3600.0 / d));

  DhbScheduler scheduler(dhb);
  BandwidthMeter meter(warmup_slots,
                       std::max<uint64_t>(1, (total_slots - warmup_slots) / 32));
  PoissonProcess arrivals(per_hour(sim.base.requests_per_hour),
                          Rng(sim.base.seed));

  BoundedSimResult result;
  uint64_t total_wait = 0;
  std::deque<Slot> pending;  // arrival slots of requests still waiting

  double next_arrival = arrivals.next();
  for (uint64_t step = 0; step < total_slots; ++step) {
    const std::vector<Segment> transmitted = scheduler.advance_slot();
    VOD_CHECK(static_cast<int>(transmitted.size()) <= sim.channel_cap);
    meter.add_slot(static_cast<int>(transmitted.size()));
    const Slot now = scheduler.current_slot();
    const bool measuring = step >= warmup_slots;

    // Deferred requests retry FIFO; head-of-line blocking keeps order.
    auto try_admit = [&](Slot arrived) {
      const std::optional<DhbRequestResult> r =
          scheduler.on_request_bounded(sim.channel_cap);
      if (!r) return false;
      if (measuring) {
        ++result.requests;
        const int wait = static_cast<int>(now - arrived);
        if (wait > 0) ++result.deferred;
        total_wait += static_cast<uint64_t>(wait);
        result.max_extra_wait_slots =
            std::max(result.max_extra_wait_slots, wait);
        if (sim.base.verify_playout) {
          result.playout_ok =
              result.playout_ok &&
              verify_plan(r->plan, scheduler.periods()).deadlines_met;
        }
      }
      return true;
    };

    while (!pending.empty()) {
      if (now - pending.front() > sim.max_extra_wait_slots) {
        if (measuring) ++result.rejected;
        pending.pop_front();
        continue;
      }
      if (!try_admit(pending.front())) break;
      pending.pop_front();
    }

    const double slot_end = static_cast<double>(now) * d;
    while (next_arrival < slot_end) {
      if (!pending.empty() || !try_admit(now)) pending.push_back(now);
      next_arrival = arrivals.next();
    }
  }

  result.avg_streams = meter.mean_streams();
  result.max_streams = meter.max_streams();
  if (result.requests > 0) {
    result.avg_extra_wait_slots =
        static_cast<double>(total_wait) / static_cast<double>(result.requests);
  }
  if (obs::ObsSink* sink = obs::current_sink();
      sink != nullptr && sink->metrics != nullptr) {
    scheduler.export_metrics(sink->metrics);
    meter.export_metrics(sink->metrics);
  }
  return result;
}

}  // namespace vod
