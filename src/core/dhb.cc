#include "core/dhb.h"

#include <algorithm>

#ifdef VOD_AUDIT
#include "analysis/schedule_auditor.h"
#endif
#include "util/check.h"

namespace vod {
namespace {

// Resolves the period vector: empty config means the CBR base protocol
// T[j] = j (the window of the paper's Figure 6).
std::vector<int> resolve_periods(const DhbConfig& config) {
  // Validated here rather than in the constructor body: member initializers
  // run first, and an empty period vector would be dereferenced below.
  VOD_CHECK_MSG(config.num_segments >= 1, "need at least one segment");
  std::vector<int> t = config.periods;
  if (t.empty()) {
    t.resize(static_cast<size_t>(config.num_segments));
    for (int j = 1; j <= config.num_segments; ++j) {
      t[static_cast<size_t>(j - 1)] = j;
    }
  }
  VOD_CHECK_MSG(static_cast<int>(t.size()) == config.num_segments,
                "periods vector must have one entry per segment");
  VOD_CHECK_MSG(t[0] == 1, "T[1] must be 1: S_1 is needed in the next slot");
  for (int v : t) VOD_CHECK_MSG(v >= 1, "periods must be positive");
  return t;
}

}  // namespace

DhbScheduler::DhbScheduler(const DhbConfig& config)
    : config_(config),
      periods_(resolve_periods(config)),
      window_(*std::max_element(periods_.begin(), periods_.end())),
      schedule_(config.num_segments, window_),
      rng_(config.heuristic_seed) {
  VOD_CHECK(config.client_stream_cap >= 0);
}

std::optional<Slot> DhbScheduler::choose_capped_slot(
    Slot lo, Slot hi, const std::vector<int>& client_load,
    Slot arrival) const {
  // Capped mode always applies the paper's min-load-latest rule, restricted
  // to slots where this client can still open a stream.
  std::optional<Slot> best;
  int best_load = 0;
  for (Slot s = hi; s >= lo; --s) {
    if (client_load[static_cast<size_t>(s - arrival - 1)] >=
        config_.client_stream_cap) {
      continue;
    }
    const int m = schedule_.load(s);
    if (!best || m < best_load) {
      best = s;
      best_load = m;
    }
  }
  return best;
}

DhbRequestResult DhbScheduler::on_request() {
  return admit(1, config_.num_segments);
}

DhbRequestResult DhbScheduler::on_resume(Segment first_segment) {
  return admit(first_segment, config_.num_segments);
}

DhbRequestResult DhbScheduler::on_range(Segment first_segment,
                                        Segment last_segment) {
  return admit(first_segment, last_segment);
}

std::vector<int> DhbScheduler::resume_periods(Segment first_segment) const {
  VOD_CHECK(first_segment >= 1 && first_segment <= config_.num_segments);
  std::vector<int> out;
  out.reserve(static_cast<size_t>(config_.num_segments - first_segment + 1));
  for (Segment j = first_segment; j <= config_.num_segments; ++j) {
    out.push_back(std::min(periods_[static_cast<size_t>(j - 1)],
                           static_cast<int>(j - first_segment + 1)));
  }
  return out;
}

DhbRequestResult DhbScheduler::admit(Segment first_segment,
                                     Segment last_segment) {
  VOD_CHECK(first_segment >= 1 && first_segment <= config_.num_segments);
  VOD_CHECK(last_segment >= first_segment &&
            last_segment <= config_.num_segments);
  const Slot arrival = schedule_.now();
  const int n = last_segment;
  const int cap = config_.client_stream_cap;
  if (first_segment != 1) had_clamped_admissions_ = true;

  DhbRequestResult result;
  result.plan.arrival_slot = arrival;
  result.plan.reception_slot.resize(
      static_cast<size_t>(n - first_segment + 1));

  // Client reception load per window slot (capped mode only); index k is
  // slot arrival + 1 + k.
  std::vector<int> client_load;
  if (cap > 0) client_load.assign(static_cast<size_t>(window_), 0);

  for (Segment j = first_segment; j <= n; ++j) {
    const Slot lo = arrival + 1;
    // Full requests use the configured windows (which may exceed j under
    // §4 work-ahead). A resume watches S_j during slot
    // arrival + j - first + 1, so its deadline conservatively clamps the
    // window (work-ahead surplus is not assumed for mid-video joins).
    const int period =
        first_segment == 1
            ? periods_[static_cast<size_t>(j - 1)]
            : std::min(periods_[static_cast<size_t>(j - 1)],
                       static_cast<int>(j - first_segment + 1));
    const Slot hi = arrival + period;
    total_slot_probes_ += static_cast<uint64_t>(hi - lo + 1);

    Slot chosen = 0;
    bool is_new = false;

    if (cap == 0) {
      if (std::optional<Slot> shared = schedule_.find_instance(j, lo, hi)) {
        chosen = *shared;
      } else {
        chosen = choose_slot(config_.heuristic, schedule_, lo, hi, &rng_);
        is_new = true;
      }
    } else {
      // Prefer sharing an instance in a slot with remaining client capacity
      // (latest such instance: least buffering, most future sharing).
      const std::vector<Slot>& existing = schedule_.instances_of(j);
      for (auto it = existing.rbegin(); it != existing.rend(); ++it) {
        if (*it < lo || *it > hi) continue;
        if (client_load[static_cast<size_t>(*it - lo)] < cap) {
          chosen = *it;
          break;
        }
      }
      if (chosen == 0) {
        if (std::optional<Slot> fresh =
                choose_capped_slot(lo, hi, client_load, arrival)) {
          chosen = *fresh;
          is_new = true;
        } else {
          // The cap cannot be honoured anywhere in the window. Fall back to
          // the uncapped rule and record the violation: the plan stays
          // deadline-correct but the STB needs > cap streams for one slot.
          ++result.cap_violations;
          if (std::optional<Slot> shared = schedule_.find_instance(j, lo, hi)) {
            chosen = *shared;
          } else {
            chosen = choose_slot(SlotHeuristic::kMinLoadLatest, schedule_, lo,
                                 hi, &rng_);
            is_new = true;
          }
        }
      }
    }

    if (is_new) {
      schedule_.add_instance(j, chosen);
      ++result.new_instances;
    } else {
      ++result.shared_instances;
    }
    if (cap > 0) ++client_load[static_cast<size_t>(chosen - lo)];
    result.plan.reception_slot[static_cast<size_t>(j - first_segment)] =
        chosen;
  }

  ++total_requests_;
  total_new_instances_ += static_cast<uint64_t>(result.new_instances);
  total_shared_ += static_cast<uint64_t>(result.shared_instances);
  return result;
}

std::optional<DhbRequestResult> DhbScheduler::on_request_bounded(
    int channel_cap) {
  VOD_CHECK(channel_cap >= 1);
  VOD_CHECK_MSG(config_.client_stream_cap == 0,
                "bounded admission assumes unlimited client bandwidth");
  const Slot arrival = schedule_.now();
  const int n = config_.num_segments;

  // Tentative additions per window slot; nothing touches the schedule
  // until every segment has found a home.
  std::vector<int> added(static_cast<size_t>(window_), 0);
  std::vector<std::pair<Segment, Slot>> placements;
  placements.reserve(static_cast<size_t>(n));

  DhbRequestResult result;
  result.plan.arrival_slot = arrival;
  result.plan.reception_slot.resize(static_cast<size_t>(n));

  for (Segment j = 1; j <= n; ++j) {
    const Slot lo = arrival + 1;
    const Slot hi = arrival + periods_[static_cast<size_t>(j - 1)];
    total_slot_probes_ += static_cast<uint64_t>(hi - lo + 1);

    Slot chosen = 0;
    if (std::optional<Slot> shared = schedule_.find_instance(j, lo, hi)) {
      chosen = *shared;
      ++result.shared_instances;
    } else {
      // Min-load-latest over slots still under the channel cap, counting
      // this request's own tentative placements.
      int best_load = channel_cap;
      for (Slot s = hi; s >= lo; --s) {
        const int load =
            schedule_.load(s) + added[static_cast<size_t>(s - lo)];
        if (load < best_load) {
          best_load = load;
          chosen = s;
        }
      }
      if (chosen == 0) {
        // Would exceed the cap: count the attempt, so the probes charged
        // above stay attributable (probes per attempt = probes /
        // (admitted + rejected)) instead of silently skewing the
        // per-admission cost metric.
        ++total_rejected_admissions_;
        return std::nullopt;
      }
      ++added[static_cast<size_t>(chosen - lo)];
      placements.push_back({j, chosen});
      ++result.new_instances;
    }
    result.plan.reception_slot[static_cast<size_t>(j - 1)] = chosen;
  }

  for (const auto& [segment, slot] : placements) {
    schedule_.add_instance(segment, slot);
  }
  ++total_requests_;
  total_new_instances_ += static_cast<uint64_t>(result.new_instances);
  total_shared_ += static_cast<uint64_t>(result.shared_instances);
  return result;
}

std::vector<Segment> DhbScheduler::advance_slot() {
  std::vector<Segment> out = schedule_.advance();
#ifdef VOD_AUDIT
  // Self-checking builds (cmake -DVOD_AUDIT=ON): deep-audit the schedule
  // invariants after every slot; abort with a violation report on failure.
  audit_or_die(*this);
#endif
  return out;
}

}  // namespace vod
