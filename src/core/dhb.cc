#include "core/dhb.h"

#include <algorithm>
#include <numeric>

#include "obs/trace.h"
#include "util/check.h"

namespace vod {

#ifdef VOD_AUDIT
// Implemented in analysis/schedule_auditor.cc. Declared here instead of
// including the header: analysis sits above every engine layer and nothing
// below it may depend on it (scripts/lint_layering.py), so audit builds
// reach the auditor through this forward declaration — a link-time hook,
// not an include edge.
void audit_or_die(const DhbScheduler& scheduler);
#endif
namespace {

// Work-unit prices (total_work_units()). A sharing check costs one unit in
// both modes (the latest-instance cache answers it, and the per-segment
// fallback lists are O(1) amortized). A placement attempt costs its query
// plus, when an instance is actually placed, one commit unit:
//   index mode: query = 1 (range-min lookup), commit = 1  -> 2 per instance
//   naive mode: query = window width,         commit = 1
// Rejected bounded attempts pay their queries but no commit. The pricing
// guarantees the auditor's conservation law
//   work_units >= requests + 2 * new_instances + rejected
// on every path in both modes (each admitted request makes >= 1 sharing
// check; each placement costs >= 2; each rejection pays >= 1 query).
constexpr uint64_t kWorkShareProbe = 1;
constexpr uint64_t kWorkIndexQuery = 1;
constexpr uint64_t kWorkCommit = 1;
constexpr uint64_t kWorkMemoCopy = 1;

// Overlay delta that marks a slot client-saturated in capped mode: any
// real load is far below it, so a min query returning >= the mask means
// "no slot with remaining client capacity in the range".
constexpr int kClientSaturatedMask = 1 << 28;

// Resolves the period vector: empty config means the CBR base protocol
// T[j] = j (the window of the paper's Figure 6).
std::vector<int> resolve_periods(const DhbConfig& config) {
  // Validated here rather than in the constructor body: member initializers
  // run first, and an empty period vector would be dereferenced below.
  VOD_CHECK_MSG(config.num_segments >= 1, "need at least one segment");
  std::vector<int> t = config.periods;
  if (t.empty()) {
    t.resize(static_cast<size_t>(config.num_segments));
    for (int j = 1; j <= config.num_segments; ++j) {
      t[static_cast<size_t>(j - 1)] = j;
    }
  }
  VOD_CHECK_MSG(static_cast<int>(t.size()) == config.num_segments,
                "periods vector must have one entry per segment");
  VOD_CHECK_MSG(t[0] == 1, "T[1] must be 1: S_1 is needed in the next slot");
  for (int v : t) VOD_CHECK_MSG(v >= 1, "periods must be positive");
  return t;
}

}  // namespace

DhbScheduler::DhbScheduler(const DhbConfig& config)
    : config_(config),
      periods_(resolve_periods(config)),
      window_(*std::max_element(periods_.begin(), periods_.end())),
      use_index_(config.use_placement_index &&
                 static_cast<uint64_t>(config.num_segments) *
                         static_cast<uint64_t>(window_) >=
                     config.placement_index_cutover),
      sum_periods_(std::accumulate(periods_.begin(), periods_.end(),
                                   uint64_t{0},
                                   [](uint64_t acc, int t) {
                                     return acc + static_cast<uint64_t>(t);
                                   })),
      schedule_(config.num_segments, window_),
      rng_(config.heuristic_seed),
      c_requests_(metrics_.counter("dhb_requests_total")),
      c_new_(metrics_.counter("dhb_new_instances_total")),
      c_shared_(metrics_.counter("dhb_shared_instances_total")),
      c_probes_(metrics_.counter("dhb_slot_probes_total")),
      c_rejected_(metrics_.counter("dhb_rejected_admissions_total")),
      c_work_(metrics_.counter("dhb_work_units_total")),
      c_coalesced_(metrics_.counter("dhb_coalesced_requests_total")),
      c_adm_placed_(metrics_.counter("dhb_admissions_placed_total")),
      c_adm_all_shared_(metrics_.counter("dhb_admissions_all_shared_total")),
      c_cap_violations_(metrics_.counter("dhb_cap_violation_slots_total")) {
  VOD_CHECK(config.client_stream_cap >= 0);
  // Pre-size the reusable plan storage: steady-state admissions then run
  // allocation-free (tests/alloc_audit_test.cc pins this down).
  const size_t n = static_cast<size_t>(config.num_segments);
  result_scratch_.plan.reception_slot.reserve(n);
  memo_result_.plan.reception_slot.reserve(n);
}

const obs::MetricShard& DhbScheduler::metrics() const {
  // The schedule_* counters mirror monotone op meters kept by the
  // SlotSchedule / LoadIndex fast path; sample them up to the current value
  // on access (counters only support inc, and the meters never decrease).
  const auto sample = [this](const char* name, uint64_t now_value) {
    obs::Counter* c = metrics_.counter(name);
    c->inc(now_value - c->value());
  };
  sample("schedule_instances_added_total", schedule_.total_instances_added());
  sample("schedule_advances_total", schedule_.total_advances());
  sample("schedule_overlay_ops_total", schedule_.total_overlay_ops());
  sample("schedule_index_queries_total", schedule_.total_index_queries());
  sample("schedule_index_updates_total", schedule_.total_index_updates());
  // Memory-behavior meters (DESIGN.md §14): slab re-layouts and arena
  // block/byte consumption across the schedule slabs and the admission
  // scratch. The steady-state allocation audit asserts these flat.
  sample("schedule_slab_grows_total", schedule_.total_slab_grows());
  sample("schedule_arena_blocks_total", schedule_.total_arena_blocks());
  sample("schedule_arena_bytes_total", schedule_.total_arena_bytes());
  sample("dhb_scratch_blocks_total", scratch_.total_block_allocations());
  return metrics_;
}

void DhbScheduler::export_metrics(obs::MetricShard* out) const {
  out->merge_from(metrics());
}

std::optional<Slot> DhbScheduler::choose_capped_slot(Slot lo, Slot hi,
                                                     const int* client_load,
                                                     Slot arrival) const {
  // Capped mode always applies the paper's min-load-latest rule, restricted
  // to slots where this client can still open a stream.
  std::optional<Slot> best;
  int best_load = 0;
  for (Slot s = hi; s >= lo; --s) {
    if (client_load[static_cast<size_t>(s - arrival - 1)] >=
        config_.client_stream_cap) {
      continue;
    }
    const int m = schedule_.load(s);
    if (!best || m < best_load) {
      best = s;
      best_load = m;
    }
  }
  return best;
}

DhbRequestResult DhbScheduler::on_request() {
  VOD_DCHECK_SERIAL(serial_);  // covers the memo fast path, which skips admit()
  if (config_.coalesce_same_slot && config_.client_stream_cap == 0) {
    if (memo_valid_) {
      // Follower: the leader (or an earlier follower) already forced every
      // segment into the window, so this request shares all of them — the
      // plan is the leader's, no heuristic runs, no rng is consumed, and
      // the counters advance exactly as a sequential re-admission's would.
      c_requests_->inc();
      c_shared_->inc(static_cast<uint64_t>(config_.num_segments));
      c_probes_->inc(sum_periods_);
      c_work_->inc(kWorkMemoCopy);
      c_coalesced_->inc();
      c_adm_all_shared_->inc();
      VOD_TRACE_INSTANT("admission/coalesced", "dhb", schedule_.now(),
                        {"count", 1},
                        {"shared", config_.num_segments});
      return memo_result_;
    }
    admit(1, config_.num_segments, &result_scratch_);
    // Cache the *follower* view: same plan, everything shared.
    memo_result_ = result_scratch_;
    memo_result_.new_instances = 0;
    memo_result_.shared_instances = config_.num_segments;
    memo_valid_ = true;
    return result_scratch_;
  }
  admit(1, config_.num_segments, &result_scratch_);
  return result_scratch_;
}

DhbRequestResult DhbScheduler::on_request_batch(uint64_t count) {
  VOD_DCHECK_SERIAL(serial_);
  VOD_CHECK_MSG(count >= 1, "on_request_batch needs at least one request");
  DhbRequestResult result = on_request();
  if (count == 1) return result;
  if (config_.coalesce_same_slot && config_.client_stream_cap == 0) {
    // All count-1 followers are identical; advance the counters in bulk.
    const uint64_t followers = count - 1;
    c_requests_->inc(followers);
    c_shared_->inc(followers * static_cast<uint64_t>(config_.num_segments));
    c_probes_->inc(followers * sum_periods_);
    c_work_->inc(followers * kWorkMemoCopy);
    c_coalesced_->inc(followers);
    c_adm_all_shared_->inc(followers);
    VOD_TRACE_INSTANT("admission/coalesced", "dhb", schedule_.now(),
                      {"count", static_cast<int64_t>(followers)},
                      {"shared", config_.num_segments});
    return memo_result_;
  }
  for (uint64_t i = 1; i < count; ++i) result = on_request();
  return result;
}

void DhbScheduler::on_request_batch_discard(uint64_t count) {
  VOD_DCHECK_SERIAL(serial_);
  VOD_CHECK_MSG(count >= 1, "on_request_batch needs at least one request");
  if (config_.coalesce_same_slot && config_.client_stream_cap == 0) {
    uint64_t followers = count;
    if (!memo_valid_) {
      // Leader: one real admission, memoized as the follower view —
      // exactly on_request()'s leader path, minus the returned copy.
      admit(1, config_.num_segments, &result_scratch_);
      memo_result_ = result_scratch_;
      memo_result_.new_instances = 0;
      memo_result_.shared_instances = config_.num_segments;
      memo_valid_ = true;
      followers = count - 1;
    }
    if (followers > 0) {
      c_requests_->inc(followers);
      c_shared_->inc(followers * static_cast<uint64_t>(config_.num_segments));
      c_probes_->inc(followers * sum_periods_);
      c_work_->inc(followers * kWorkMemoCopy);
      c_coalesced_->inc(followers);
      c_adm_all_shared_->inc(followers);
      VOD_TRACE_INSTANT("admission/coalesced", "dhb", schedule_.now(),
                        {"count", static_cast<int64_t>(followers)},
                        {"shared", config_.num_segments});
    }
    return;
  }
  for (uint64_t i = 0; i < count; ++i) {
    admit(1, config_.num_segments, &result_scratch_);
  }
}

DhbRequestResult DhbScheduler::on_resume(Segment first_segment) {
  admit(first_segment, config_.num_segments, &result_scratch_);
  return result_scratch_;
}

DhbRequestResult DhbScheduler::on_range(Segment first_segment,
                                        Segment last_segment) {
  admit(first_segment, last_segment, &result_scratch_);
  return result_scratch_;
}

std::vector<int> DhbScheduler::resume_periods(Segment first_segment) const {
  VOD_CHECK(first_segment >= 1 && first_segment <= config_.num_segments);
  std::vector<int> out;
  out.reserve(static_cast<size_t>(config_.num_segments - first_segment + 1));
  for (Segment j = first_segment; j <= config_.num_segments; ++j) {
    out.push_back(std::min(periods_[static_cast<size_t>(j - 1)],
                           static_cast<int>(j - first_segment + 1)));
  }
  return out;
}

void DhbScheduler::admit(Segment first_segment, Segment last_segment,
                         DhbRequestResult* out) {
  VOD_DCHECK_SERIAL(serial_);  // every unmemoized admission funnels through here
  VOD_CHECK(first_segment >= 1 && first_segment <= config_.num_segments);
  VOD_CHECK(last_segment >= first_segment &&
            last_segment <= config_.num_segments);
  // Any admission through here may place instances under windows that
  // differ from a full request's, so the same-slot memo goes stale.
  memo_valid_ = false;
  const Slot arrival = schedule_.now();
  const int n = last_segment;
  const int cap = config_.client_stream_cap;
  const bool fast = use_index_;
  if (first_segment != 1) had_clamped_admissions_ = true;

  DhbRequestResult& result = *out;
  result.new_instances = 0;
  result.shared_instances = 0;
  result.cap_violations = 0;
  result.plan.arrival_slot = arrival;
  result.plan.reception_slot.resize(
      static_cast<size_t>(n - first_segment + 1));

  // Client reception load per window slot (capped mode only); index k is
  // slot arrival + 1 + k. Scratch-arena backed: rewound on exit, reset
  // each slot — a warm admission allocates nothing.
  const Arena::Mark scratch_mark = scratch_.mark();
  int* client_load = nullptr;
  if (cap > 0) {
    client_load = scratch_.alloc_array<int>(static_cast<size_t>(window_));
    std::fill_n(client_load, static_cast<size_t>(window_), 0);
  }

  for (Segment j = first_segment; j <= n; ++j) {
    const Slot lo = arrival + 1;
    // Full requests use the configured windows (which may exceed j under
    // §4 work-ahead). A resume watches S_j during slot
    // arrival + j - first + 1, so its deadline conservatively clamps the
    // window (work-ahead surplus is not assumed for mid-video joins).
    const int period =
        first_segment == 1
            ? periods_[static_cast<size_t>(j - 1)]
            : std::min(periods_[static_cast<size_t>(j - 1)],
                       static_cast<int>(j - first_segment + 1));
    const Slot hi = arrival + period;
    const uint64_t width = static_cast<uint64_t>(hi - lo + 1);
    c_probes_->inc(width);

    Slot chosen = 0;
    bool is_new = false;

    if (cap == 0) {
      // find_instance answers in O(1) off the latest-instance cache here:
      // lo is now+1, so the window is the whole scheduling future.
      c_work_->inc(kWorkShareProbe);
      if (std::optional<Slot> shared = schedule_.find_instance(j, lo, hi)) {
        chosen = *shared;
      } else {
        chosen = choose_slot(config_.heuristic, schedule_, lo, hi, &rng_,
                             fast);
        is_new = true;
        c_work_->inc((fast ? kWorkIndexQuery : width) + kWorkCommit);
      }
    } else {
      // Prefer sharing an instance in a slot with remaining client capacity
      // (latest such instance: least buffering, most future sharing).
      c_work_->inc(kWorkShareProbe);
      const std::span<const Slot> existing = schedule_.instances_of(j);
      for (auto it = existing.rbegin(); it != existing.rend(); ++it) {
        if (*it < lo || *it > hi) continue;
        if (client_load[static_cast<size_t>(*it - lo)] < cap) {
          chosen = *it;
          break;
        }
      }
      if (chosen == 0) {
        // Min-load-latest restricted to client-unsaturated slots. In index
        // mode the saturated slots carry a +kClientSaturatedMask overlay,
        // so one range-min query answers the restricted rule: a minimum
        // >= the mask means every slot in the window is saturated.
        std::optional<Slot> fresh;
        if (fast) {
          c_work_->inc(kWorkIndexQuery);
          const SlotSchedule::MinLoad m = schedule_.min_load_latest(lo, hi);
          if (m.load < kClientSaturatedMask) fresh = m.slot;
        } else {
          c_work_->inc(width);
          fresh = choose_capped_slot(lo, hi, client_load, arrival);
        }
        if (fresh) {
          chosen = *fresh;
          is_new = true;
          c_work_->inc(kWorkCommit);
        } else {
          // The cap cannot be honoured anywhere in the window. Fall back to
          // the uncapped rule and record the violation: the plan stays
          // deadline-correct but the STB needs > cap streams for one slot.
          // The fallback must see raw loads, so it always runs the naive
          // scans (the placement index carries the saturation overlay).
          ++result.cap_violations;
          c_work_->inc(kWorkShareProbe);
          if (std::optional<Slot> shared =
                  schedule_.find_instance(j, lo, hi)) {
            chosen = *shared;
          } else {
            chosen = choose_slot(SlotHeuristic::kMinLoadLatest, schedule_, lo,
                                 hi, &rng_, /*use_index=*/false);
            is_new = true;
            c_work_->inc(width + kWorkCommit);
          }
        }
      }
    }

    if (is_new) {
      schedule_.add_instance(j, chosen);
      ++result.new_instances;
    } else {
      ++result.shared_instances;
    }
    if (cap > 0) {
      const size_t k = static_cast<size_t>(chosen - lo);
      ++client_load[k];
      // Exact transition to the cap (increments are by one, so every
      // saturation passes through it): mask the slot out of further
      // placement queries for this admission.
      if (fast && client_load[k] == cap) {
        schedule_.add_load_overlay(chosen, kClientSaturatedMask);
      }
    }
    result.plan.reception_slot[static_cast<size_t>(j - first_segment)] =
        chosen;
  }

  if (cap > 0 && fast) schedule_.clear_load_overlay();
  scratch_.rewind(scratch_mark);

  c_requests_->inc();
  c_new_->inc(static_cast<uint64_t>(result.new_instances));
  c_shared_->inc(static_cast<uint64_t>(result.shared_instances));
  (result.new_instances > 0 ? c_adm_placed_ : c_adm_all_shared_)->inc();
  VOD_TRACE_INSTANT(result.new_instances > 0 ? "admission/placed"
                                             : "admission/shared",
                    "dhb", arrival, {"new", result.new_instances},
                    {"shared", result.shared_instances},
                    {"first", first_segment},
                    {"cap_violations", result.cap_violations});
}

std::optional<DhbRequestResult> DhbScheduler::on_request_bounded(
    int channel_cap) {
  VOD_DCHECK_SERIAL(serial_);
  VOD_CHECK(channel_cap >= 1);
  VOD_CHECK_MSG(config_.client_stream_cap == 0,
                "bounded admission assumes unlimited client bandwidth");
  // A successful bounded admission places instances the memoized plan does
  // not know about; a rejected one leaves the schedule untouched, but
  // invalidating unconditionally keeps the memo logic trivially safe.
  memo_valid_ = false;
  const Slot arrival = schedule_.now();
  const int n = config_.num_segments;
  const bool fast = use_index_;

  // Tentative additions per window slot; nothing touches the schedule
  // until every segment has found a home. Index mode records the tentative
  // placements as +1 overlay deltas so the range-min query prices them in;
  // naive mode keeps the explicit per-slot array. Scratch-arena backed,
  // rewound on every exit path.
  const Arena::Mark scratch_mark = scratch_.mark();
  int* bounded_added = nullptr;
  if (!fast) {
    bounded_added = scratch_.alloc_array<int>(static_cast<size_t>(window_));
    std::fill_n(bounded_added, static_cast<size_t>(window_), 0);
  }
  struct Placement {
    Segment segment;
    Slot slot;
  };
  auto* placements = scratch_.alloc_array<Placement>(static_cast<size_t>(n));
  size_t placed = 0;

  DhbRequestResult result;
  result.plan.arrival_slot = arrival;
  result.plan.reception_slot.resize(static_cast<size_t>(n));

  for (Segment j = 1; j <= n; ++j) {
    const Slot lo = arrival + 1;
    const Slot hi = arrival + periods_[static_cast<size_t>(j - 1)];
    const uint64_t width = static_cast<uint64_t>(hi - lo + 1);
    c_probes_->inc(width);

    Slot chosen = 0;
    c_work_->inc(kWorkShareProbe);
    if (std::optional<Slot> shared = schedule_.find_instance(j, lo, hi)) {
      chosen = *shared;
      ++result.shared_instances;
    } else {
      // Min-load-latest over slots still under the channel cap, counting
      // this request's own tentative placements.
      if (fast) {
        c_work_->inc(kWorkIndexQuery);
        const SlotSchedule::MinLoad m = schedule_.min_load_latest(lo, hi);
        if (m.load < channel_cap) chosen = m.slot;
      } else {
        c_work_->inc(width);
        int best_load = channel_cap;
        for (Slot s = hi; s >= lo; --s) {
          const int load =
              schedule_.load(s) + bounded_added[static_cast<size_t>(s - lo)];
          if (load < best_load) {
            best_load = load;
            chosen = s;
          }
        }
      }
      if (chosen == 0) {
        // Would exceed the cap: count the attempt, so the probes charged
        // above stay attributable (probes per attempt = probes /
        // (admitted + rejected)) instead of silently skewing the
        // per-admission cost metric.
        if (fast) schedule_.clear_load_overlay();
        scratch_.rewind(scratch_mark);
        c_rejected_->inc();
        VOD_TRACE_INSTANT("admission/rejected", "dhb", arrival,
                          {"segment", j}, {"channel_cap", channel_cap});
        return std::nullopt;
      }
      if (fast) {
        schedule_.add_load_overlay(chosen, 1);
      } else {
        ++bounded_added[static_cast<size_t>(chosen - lo)];
      }
      placements[placed++] = Placement{j, chosen};
      ++result.new_instances;
      c_work_->inc(kWorkCommit);
    }
    result.plan.reception_slot[static_cast<size_t>(j - 1)] = chosen;
  }

  // Commit: drop the tentative overlay first so add_instance's real +1s
  // are not double-counted by the index.
  if (fast) schedule_.clear_load_overlay();
  for (size_t p = 0; p < placed; ++p) {
    schedule_.add_instance(placements[p].segment, placements[p].slot);
  }
  scratch_.rewind(scratch_mark);
  c_requests_->inc();
  c_new_->inc(static_cast<uint64_t>(result.new_instances));
  c_shared_->inc(static_cast<uint64_t>(result.shared_instances));
  (result.new_instances > 0 ? c_adm_placed_ : c_adm_all_shared_)->inc();
  VOD_TRACE_INSTANT(result.new_instances > 0 ? "admission/placed"
                                             : "admission/shared",
                    "dhb", arrival, {"new", result.new_instances},
                    {"shared", result.shared_instances},
                    {"channel_cap", channel_cap}, {"cap_violations", 0});
  return result;
}

void DhbScheduler::set_heuristic(SlotHeuristic heuristic) {
  VOD_DCHECK_SERIAL(serial_);
  VOD_CHECK_MSG(!schedule_.has_load_overlay(),
                "cannot switch heuristics under a live load overlay");
  if (heuristic == config_.heuristic) return;
  config_.heuristic = heuristic;
  // The coalescing memo caches a plan whose placements ran under the old
  // rule; the first admission after the switch must re-admit (it still
  // shares every in-window instance — sharing precedes placement — but the
  // counters and any fresh placements must reflect the new rule).
  memo_valid_ = false;
  VOD_TRACE_INSTANT("heuristic/switch", "dhb", schedule_.now(),
                    {"heuristic", static_cast<int>(heuristic)});
}

std::span<const Segment> DhbScheduler::advance_slot_view() {
  VOD_DCHECK_SERIAL(serial_);
  memo_valid_ = false;  // plans are per-arrival-slot; the clock moved
  // Slot boundary: every per-admission scratch allocation is dead, so the
  // arena drops back to empty (blocks retained — warm slots allocate
  // nothing from the system).
  scratch_.reset();
  const std::span<const Segment> out = schedule_.advance();
  // Per-slot server bandwidth in streams: a Chrome counter track that
  // renders the paper's Figure 7/8 load curves directly in the trace UI.
  VOD_TRACE_COUNTER("streams", "dhb", schedule_.now(), out.size());
#ifdef VOD_AUDIT
  // Self-checking builds (cmake -DVOD_AUDIT=ON): deep-audit the schedule
  // invariants after every slot; abort with a violation report on failure.
  audit_or_die(*this);
#endif
  return out;
}

std::vector<Segment> DhbScheduler::advance_slot() {
  const std::span<const Segment> out = advance_slot_view();
  return std::vector<Segment>(out.begin(), out.end());
}

}  // namespace vod
