// Slot-choice heuristics for dynamic broadcasting.
//
// When DHB must schedule a new instance of segment S_j for a request that
// arrived during slot i, it picks one slot inside the window (i, i+T[j]].
// The paper's heuristic (Figure 6) takes the slot with the minimum number
// of already-scheduled instances, breaking ties toward the latest slot.
// The alternatives exist to reproduce §3's design argument as an ablation:
// "always latest" recreates the factorial-alignment bandwidth spikes the
// heuristic was designed to suppress, "earliest" destroys sharing with
// future requests, and "random" is the straw-man load balancer.
#pragma once

#include <cstdint>
#include <string>

#include "schedule/slot_schedule.h"
#include "schedule/types.h"
#include "sim/random.h"

namespace vod {

enum class SlotHeuristic {
  kMinLoadLatest,    // the paper's rule (Figure 6)
  kMinLoadEarliest,  // min load, ties toward the earliest slot
  kLatest,           // naive "delay as long as possible" (no load term)
  kEarliest,         // schedule immediately in the first slot
  kRandom,           // uniform over the window
};

std::string to_string(SlotHeuristic h);

// Picks a slot in [lo, hi] according to the heuristic. `rng` is only
// consulted by kRandom and may be null for the deterministic rules.
//
// The min-load rules answer through the schedule's O(log window) range-min
// placement index by default; `use_index = false` forces the literal O(W)
// Figure 6 scan instead. Both return the same slot for every input — the
// naive scan is kept as the differential oracle (and for callers that must
// ignore a live load overlay, which only the index sees).
Slot choose_slot(SlotHeuristic h, const SlotSchedule& schedule, Slot lo,
                 Slot hi, Rng* rng, bool use_index = true);

}  // namespace vod
