#include "core/protocol_controller.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace vod {

ProtocolController::ProtocolController(const ControllerConfig& config)
    : config_(config) {
  VOD_CHECK_MSG(!config_.bands.empty(),
                "a controller needs at least one band (two rungs)");
  for (size_t i = 0; i < config_.bands.size(); ++i) {
    const HysteresisBand& b = config_.bands[i];
    VOD_CHECK_MSG(std::isfinite(b.up) && std::isfinite(b.down),
                  "band thresholds must be finite");
    VOD_CHECK_MSG(b.down >= 0.0, "switch-down threshold must be >= 0");
    VOD_CHECK_MSG(b.down < b.up,
                  "hysteresis needs down < up (equal thresholds chatter)");
    if (i > 0) {
      VOD_CHECK_MSG(config_.bands[i - 1].up <= b.up &&
                        config_.bands[i - 1].down <= b.down,
                    "bands must be ordered along the ladder");
    }
  }
  VOD_CHECK_MSG(config_.min_dwell_slots >= 1, "dwell must be >= 1 slot");
  const int top = static_cast<int>(config_.bands.size());
  config_.min_mode = std::clamp(config_.min_mode, 0, top);
  config_.max_mode = std::clamp(config_.max_mode, config_.min_mode, top);
  VOD_CHECK_MSG(config_.initial_mode >= config_.min_mode &&
                    config_.initial_mode <= config_.max_mode,
                "initial mode outside [min_mode, max_mode]");
  mode_ = config_.initial_mode;
}

int ProtocolController::on_slot(double rate_estimate) {
  VOD_CHECK_MSG(!std::isnan(rate_estimate), "rate estimate is NaN");
  ++dwell_;
  if (dwell_ < config_.min_dwell_slots) return mode_;
  int next = mode_;
  if (mode_ < config_.max_mode &&
      rate_estimate >= config_.bands[static_cast<size_t>(mode_)].up) {
    next = mode_ + 1;
  } else if (mode_ > config_.min_mode &&
             rate_estimate <=
                 config_.bands[static_cast<size_t>(mode_ - 1)].down) {
    next = mode_ - 1;
  }
  if (next != mode_) {
    mode_ = next;
    dwell_ = 0;
    ++switches_;
  }
  return mode_;
}

}  // namespace vod
