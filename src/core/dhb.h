// The Dynamic Heuristic Broadcasting protocol (the paper's contribution).
//
// DhbScheduler implements the algorithm of the paper's Figure 6, including
// the two §4 generalizations:
//   * per-segment maximum periods T[j] (VBR-tuned videos delay high-numbered
//     segments beyond their CBR window), and
//   * an optional client reception-bandwidth cap (the §5 future-work item:
//     limit the STB to c simultaneous streams).
//
// Operation. The scheduler owns a SlotSchedule. A request arriving during
// the current slot i is admitted with on_request(): for each segment S_j
// (j = 1..n) the window (i, i + T[j]] is examined; an existing instance is
// shared when present, otherwise a new instance is placed by the configured
// slot heuristic. advance_slot() moves to the next slot and reports what
// the server transmits during it.
//
// Complexity. State is O(n + window). *Logical* cost is unchanged from the
// paper: a request examines O(sum_j T[j]) window slots (total_slot_probes()
// keeps charging exactly that, for comparability across experiments). The
// *actual* cost rides the schedule's placement fast path: each sharing
// check is O(1) via the latest-instance cache and each fresh placement is
// O(log window) via the range-min index, so an admission runs in
// O(n log window) instead of O(n·window) = O(n²) — and requests coalesced
// into the same slot cost O(1) each (see DhbConfig::coalesce_same_slot).
// total_work_units() meters the actual data-structure operations. Every
// fast path is bit-identical to the naive Figure 6 scans (the differential
// fuzzer compares them decision by decision); set
// DhbConfig::use_placement_index = false to run the naive scans instead.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/heuristics.h"
#include "obs/metrics.h"
#include "schedule/client_plan.h"
#include "schedule/slot_schedule.h"
#include "schedule/types.h"
#include "sim/random.h"
#include "util/arena.h"
#include "util/thread_checker.h"

namespace vod {

struct DhbConfig {
  // Number of segments n (the paper's figures use 99).
  int num_segments = 99;
  // Per-segment maximum periods T[j], 1-based at index j-1. Empty means the
  // CBR base protocol, T[j] = j. Values must satisfy 1 <= T[j] and T[1] = 1;
  // VBR-tuned configurations may have T[j] > j (work-ahead slack).
  std::vector<int> periods;
  // Slot-choice rule; the paper's protocol is kMinLoadLatest.
  SlotHeuristic heuristic = SlotHeuristic::kMinLoadLatest;
  // Maximum simultaneous streams a client may receive; 0 = unlimited (the
  // paper's base protocol).
  int client_stream_cap = 0;
  // Seed for the kRandom heuristic only.
  uint64_t heuristic_seed = 1;
  // Answer min-load placements through the O(log W) range-min index (true)
  // or the literal O(W) Figure 6 scan (false). Same decisions either way;
  // the naive mode exists as the differential-testing oracle.
  bool use_placement_index = true;
  // Memoize the current-slot full-request plan: under uncapped DHB every
  // further full request arriving in the same slot shares every segment and
  // receives the identical plan (a direct consequence of the §3 sharing
  // invariant), so followers are answered in O(1) without touching the
  // schedule. Bit-identical results and counters either way.
  bool coalesce_same_slot = true;
  // Adaptive cutover for the placement index: with use_placement_index on,
  // the O(log W) range-min index only engages when num_segments * window
  // reaches this product; smaller videos run the naive prefix scan, whose
  // constant factor wins below the threshold (BENCH_admission.json showed
  // the index *losing* 0.56x wall clock at n=20 before the cutover).
  // Measured crossover (CBR, so window = n): the index first beats the
  // scan near n*window ~ 2.5e4 at sparse arrivals and ~6e4 at dense ones,
  // where coalescing absorbs most placements anyway — so the default picks
  // the low-rate knee, rounded to a power of two. 0 disables the cutover
  // (the index always engages — the differential-testing mode).
  // Decisions are bit-identical on both sides of the threshold; only
  // total_work_units() accounting differs (naive queries charge the window
  // width).
  uint64_t placement_index_cutover = 32768;
};

struct DhbRequestResult {
  ClientPlan plan;
  int new_instances = 0;     // segments that needed a fresh transmission
  int shared_instances = 0;  // segments shared with earlier requests
  int cap_violations = 0;    // slots where the client cap could not be met
};

class DhbScheduler {
 public:
  explicit DhbScheduler(const DhbConfig& config);

  // Admits a request arriving during the current slot.
  DhbRequestResult on_request();

  // Admits `count` requests arriving during the current slot; equivalent to
  // calling on_request() `count` times (bit-identical schedule, plans, and
  // counters) and returns the last request's result. With coalescing
  // enabled the count-1 followers cost O(1) *total* counter arithmetic —
  // the batch entry point run_multi_video_simulation uses for same-slot
  // Poisson arrivals. Requires count >= 1.
  DhbRequestResult on_request_batch(uint64_t count);

  // Exactly on_request_batch(count) minus the returned plan: the same
  // schedule mutations, memo handling, and counter arithmetic,
  // bit-identically, but nothing is materialized for the caller. The
  // multi-video engine's hot entry point — with a warm scheduler this
  // admits a batch with zero heap allocations (the steady-state
  // allocation audit holds the engine loop to that).
  void on_request_batch_discard(uint64_t count);

  // Admits a VCR resume/seek: a client that wants to watch segments
  // first..n starting next slot (it watches S_j during slot
  // now + (j - first + 1)). The windows are the base windows clamped to
  // the tighter resume deadlines, so resumed clients share instances with
  // ordinary requests whenever timing allows. on_request() == on_resume(1).
  // The returned plan's reception_slot[0] corresponds to segment `first`.
  DhbRequestResult on_resume(Segment first_segment);

  // General range admission: watch segments first..last starting next
  // slot. on_request() == on_range(1, n); on_resume(f) == on_range(f, n).
  // A declared-length prefix (on_range(1, L)) models a viewer known to
  // leave after L segments — the oracle against which the cost of DHB's
  // never-cancel rule under abandonment is measured (bench/abandonment).
  DhbRequestResult on_range(Segment first_segment, Segment last_segment);

  // The effective period vector a resume at `first_segment` runs under
  // (entry 0 corresponds to that segment); pass it to verify_plan.
  std::vector<int> resume_periods(Segment first_segment) const;

  // Channel-bounded admission: admits the request only if every segment
  // can be served without any slot exceeding `channel_cap` concurrent
  // transmissions. Returns nullopt — with NO schedule mutation — when the
  // request would need a 'channel_cap+1'-th channel somewhere; the caller
  // (an admission controller) retries next slot, trading extra client
  // waiting for a hard bandwidth ceiling. Uses the paper's min-load-latest
  // rule restricted to under-cap slots. Unlimited-client-bandwidth only
  // (client_stream_cap must be 0).
  std::optional<DhbRequestResult> on_request_bounded(int channel_cap);

  // Advances to the next slot; returns the segments the server transmits
  // during it (the per-slot bandwidth in streams is the vector's size).
  std::vector<Segment> advance_slot();

  // advance_slot() without the copy: the span views the schedule's slab
  // row for the new current slot, valid until the next mutating call on
  // this scheduler. The zero-allocation path the engine loop runs.
  std::span<const Segment> advance_slot_view();

  // Switches the slot-choice rule live, mid-schedule — the reactive⇄DHB leg
  // of an adaptive protocol transition (server/adaptive_video.h). Committed
  // instances are never moved (the §3 never-cancel rule), so only future
  // placements change; the same-slot coalescing memo is invalidated because
  // its cached plan was computed under the old rule, and the call refuses to
  // run while a transient load overlay is live (bounded admissions must
  // fully unwind first). The latest-instance cache and the range-min index
  // describe schedule *contents*, which this call does not touch — the
  // placement audit (kPlacementIndexMismatch) stays green across a switch,
  // and tests/adaptive_video_test.cc cross-checks fast ≡ naive placement on
  // the admissions immediately after one. No-op when the rule is unchanged.
  void set_heuristic(SlotHeuristic heuristic);

  Slot current_slot() const { return schedule_.now(); }
  const SlotSchedule& schedule() const { return schedule_; }
  const std::vector<int>& periods() const { return periods_; }
  int num_segments() const { return config_.num_segments; }
  const DhbConfig& config() const { return config_; }

  // True when admissions run through the range-min placement index: the
  // config asks for it AND the video clears the adaptive cutover
  // (num_segments * window >= placement_index_cutover). Fixed at
  // construction; exposed so benches and tests can assert which side of
  // the cutover a configuration landed on.
  bool placement_index_active() const { return use_index_; }

  // True once any clamped-window admission (on_resume / mid-video
  // on_range) has run. Such admissions may legally schedule a second
  // future instance of a segment, so auditors must drop the strict
  // ≤1-instance sharing check for this scheduler's lifetime.
  bool had_clamped_admissions() const { return had_clamped_admissions_; }

  // Lifetime counters (for the scheduling-cost analysis of §3). The
  // counters live in an obs::MetricShard owned by this scheduler — the
  // accessors below are thin views over registry handles, so the same
  // numbers flow unchanged into the Prometheus / JSONL exporters via
  // metrics() without a second accounting path.
  // total_requests() counts admissions only; a bounded admission that was
  // refused shows up in total_rejected_admissions() instead, so the §3
  // probes-per-attempt metric is
  // total_slot_probes() / (total_requests() + total_rejected_admissions()).
  uint64_t total_requests() const { return c_requests_->value(); }
  uint64_t total_new_instances() const { return c_new_->value(); }
  uint64_t total_shared() const { return c_shared_->value(); }
  uint64_t total_slot_probes() const { return c_probes_->value(); }
  uint64_t total_rejected_admissions() const { return c_rejected_->value(); }

  // Actual data-structure operations performed, as opposed to the logical
  // slot probes above: 1 per sharing check, plus a placement-attempt charge
  // of query + commit (index mode: 1 + 1; naive mode: window-width + 1,
  // the commit charged only when an instance is placed), plus 1 per
  // coalesced follower (the memo copy). ScheduleAuditor asserts the
  // conservation law
  //   work_units >= requests + 2 * new_instances + rejected.
  uint64_t total_work_units() const { return c_work_->value(); }

  // Requests answered from the same-slot plan memo without touching the
  // schedule (always 0 when coalesce_same_slot is off).
  uint64_t total_coalesced_requests() const { return c_coalesced_->value(); }

  // The scheduler's metric shard: the counters above under their exported
  // names (dhb_requests_total, dhb_work_units_total, ...) plus admission-
  // outcome tallies and, refreshed on access, schedule_* structural-op
  // counters sampled from the SlotSchedule/LoadIndex fast path.
  const obs::MetricShard& metrics() const;

  // Folds this scheduler's shard into `out` (counters add) — how the
  // multi-video engine aggregates per-video schedulers into its per-shard
  // registry shards.
  void export_metrics(obs::MetricShard* out) const;

 private:
  // Slot choice restricted to slots where the client still has reception
  // capacity; nullopt when no slot in [lo, hi] qualifies. `client_load`
  // has window_ entries (scratch-arena backed).
  std::optional<Slot> choose_capped_slot(Slot lo, Slot hi,
                                         const int* client_load,
                                         Slot arrival) const;

  // Shared admission path; windows (now, now + min(T[j], j - first + 1)].
  // Writes into *out (plan storage is reused across calls, so a warm
  // scheduler admits without allocating); public entry points copy out of
  // the member scratch when they must return by value.
  void admit(Segment first_segment, Segment last_segment,
             DhbRequestResult* out);

  // Single-writer discipline (DESIGN.md §11): a scheduler — its schedule,
  // rng, memo, and the lifetime counters in metrics_ — is mutated by one
  // thread at a time. The sharded engine honors this by giving every video
  // its own scheduler on one worker; Debug builds enforce it on each
  // mutating entry point via VOD_DCHECK_SERIAL.
  ThreadChecker serial_;

  DhbConfig config_;
  std::vector<int> periods_;  // resolved T[], index j-1
  int window_;                // max_j T[j]
  bool use_index_;            // placement_index_active(): cutover resolved
  uint64_t sum_periods_;      // sum_j T[j]: the probe charge of one request
  SlotSchedule schedule_;
  Rng rng_;

  // Counter storage + cached stable handles (see metrics()). The handles
  // keep the hot-path cost at one pointer indirection per bump; the names
  // are resolved once in the constructor.
  mutable obs::MetricShard metrics_;  // mutable: metrics() refreshes the
                                      // schedule_* samples on access
  obs::Counter* c_requests_;
  obs::Counter* c_new_;
  obs::Counter* c_shared_;
  obs::Counter* c_probes_;
  obs::Counter* c_rejected_;
  obs::Counter* c_work_;
  obs::Counter* c_coalesced_;
  obs::Counter* c_adm_placed_;      // admissions that placed >= 1 instance
  obs::Counter* c_adm_all_shared_;  // admissions sharing every segment
  obs::Counter* c_cap_violations_;  // client-cap violation slots
  bool had_clamped_admissions_ = false;

  // Same-slot coalescing memo: once a full request has been admitted in the
  // current slot, every further full request this slot gets `memo_result_`
  // (the follower view: all segments shared). Invalidated by the clock and
  // by any admission that may mutate the schedule under different windows.
  bool memo_valid_ = false;
  DhbRequestResult memo_result_;

  // Reusable admission result; admit() writes here and the public entry
  // points copy out when their signature returns by value (the discard
  // batch path never does).
  DhbRequestResult result_scratch_;

  // Per-scheduler scratch region (DESIGN.md §14): transient per-admission
  // arrays — capped-mode client loads, bounded-mode tentative placements —
  // are bump-allocated here under a mark()/rewind() pair, and the whole
  // region is reset when the clock advances. After warmup the region
  // recycles its warm blocks: zero system allocations per slot.
  Arena scratch_{size_t{4096}};
};

}  // namespace vod
