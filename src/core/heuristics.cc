#include "core/heuristics.h"

#include "util/check.h"

namespace vod {

std::string to_string(SlotHeuristic h) {
  switch (h) {
    case SlotHeuristic::kMinLoadLatest:
      return "min-load-latest";
    case SlotHeuristic::kMinLoadEarliest:
      return "min-load-earliest";
    case SlotHeuristic::kLatest:
      return "latest";
    case SlotHeuristic::kEarliest:
      return "earliest";
    case SlotHeuristic::kRandom:
      return "random";
  }
  return "?";
}

Slot choose_slot(SlotHeuristic h, const SlotSchedule& schedule, Slot lo,
                 Slot hi, Rng* rng, bool use_index) {
  VOD_CHECK(lo <= hi);
  switch (h) {
    case SlotHeuristic::kLatest:
      return hi;
    case SlotHeuristic::kEarliest:
      return lo;
    case SlotHeuristic::kRandom: {
      VOD_CHECK(rng != nullptr);
      return lo + static_cast<Slot>(
                      rng->uniform_index(static_cast<uint64_t>(hi - lo + 1)));
    }
    case SlotHeuristic::kMinLoadLatest:
      // "let m_min := min {m_k | lo <= k <= hi};
      //  let k_max := max {k | m_k = m_min}" — Figure 6. The naive mode is
      // the same hi→lo linear scan, batched over the contiguous load ring
      // (scan_min_load_latest probes the raw counters range-wise, no
      // per-slot modulo).
      if (use_index) return schedule.min_load_latest(lo, hi).slot;
      return schedule.scan_min_load_latest(lo, hi).slot;
    case SlotHeuristic::kMinLoadEarliest:
      if (use_index) return schedule.min_load_earliest(lo, hi).slot;
      return schedule.scan_min_load_earliest(lo, hi).slot;
  }
  VOD_CHECK(false);
  return lo;
}

}  // namespace vod
