// End-to-end audit of the adaptive-migration invariant.
//
// An AdaptiveVideo promises (server/adaptive_video.h): *every admitted
// client receives every segment of its committed plan, on time, no matter
// how many protocol transitions happen while it is watching.* This class
// checks that promise mechanically, from the outside, with no knowledge of
// how the modes drain or overlap — it only sees what an omniscient client
// would see through the AdaptiveProbe hook:
//
//   * on_admission — the plan is checked against its deadline vector the
//     moment it is committed (kPlanDeadlineMiss), and every reception is
//     indexed by slot;
//   * on_slot — each reception due in the slot must appear in the merged
//     transmission list; a miss is the transition invariant's failure mode,
//     kTransitionCoverageGap. The video's clock must advance by exactly one
//     per slot (kNonMonotoneClock);
//   * on_transition — boundary bookkeeping only (a transition must land on
//     the slot it claims and actually change the mode).
//
// Because coverage is checked against the *transmitted* list — not against
// scheduler state — it catches every way a migration could drop a client:
// retiring a dynamic schedule before it drains, shutting a static stream
// off while an admitted client still needs it, or admitting a client into
// a mode that never serves it. The fuzzer (tests/fuzz_schedule_audit.cc)
// drives this auditor over >10k slots of random arrivals with random
// forced switch points; bench/adaptive_switching runs it over the diurnal
// sweep and reports the violation count (required: zero).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "analysis/schedule_auditor.h"
#include "schedule/types.h"
#include "server/adaptive_video.h"

namespace vod {

class TransitionAuditor final : public AdaptiveProbe {
 public:
  TransitionAuditor() = default;

  // AdaptiveProbe implementation (all slots are the video's global slots).
  void on_transition(Slot slot, ServingMode from, ServingMode to) override;
  void on_admission(const ClientPlan& plan, const std::vector<int>& periods,
                    uint64_t count, ServingMode mode) override;
  void on_slot(Slot slot, const std::vector<Segment>& transmitted) override;

  // Accumulated violations across the whole run ("ok" when the invariant
  // held on every audited slot).
  const AuditReport& report() const { return report_; }

  uint64_t slots_audited() const { return slots_audited_; }
  uint64_t plans_admitted() const { return plans_admitted_; }
  uint64_t transitions_seen() const { return transitions_seen_; }
  uint64_t receptions_checked() const { return receptions_checked_; }
  // Receptions committed but not yet due.
  uint64_t pending_receptions() const { return pending_receptions_; }

 private:
  struct DueReception {
    Segment segment;
    Slot arrival;  // the owning plan's arrival slot (for messages)
  };

  AuditReport report_;
  Slot last_slot_ = 0;
  bool clock_started_ = false;

  // reception slot -> segments some admitted plan receives then. One entry
  // per (plan, segment); a single transmission legitimately serves any
  // number of clients, so coverage is presence, not counting.
  std::map<Slot, std::vector<DueReception>> due_;

  uint64_t slots_audited_ = 0;
  uint64_t plans_admitted_ = 0;
  uint64_t transitions_seen_ = 0;
  uint64_t receptions_checked_ = 0;
  uint64_t pending_receptions_ = 0;

  std::vector<bool> sent_scratch_;  // per-segment presence, reused per slot
};

}  // namespace vod
