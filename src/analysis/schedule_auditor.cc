#include "analysis/schedule_auditor.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <sstream>

#include "core/dhb.h"
#include "obs/trace.h"
#include "schedule/bandwidth_meter.h"
#include "util/check.h"

namespace vod {
namespace {

void add_violation(AuditReport* report, AuditViolationKind kind,
                   Segment segment, Slot slot, std::string message) {
  // Every failed invariant also lands in the ambient trace/metric sink, so
  // a Perfetto timeline shows *where in slot time* the schedule went bad
  // and vod_audit_violations_total alerts without parsing report text.
  VOD_TRACE_INSTANT("audit/violation", "audit", slot,
                    {"kind", static_cast<int64_t>(kind)},
                    {"segment", segment});
  VOD_METRIC_INC("audit_violations_total", 1);
  report->violations.push_back(
      AuditViolation{kind, segment, slot, std::move(message)});
}

std::string describe(const AuditViolation& v) {
  std::ostringstream out;
  out << to_string(v.kind);
  if (v.segment != 0) out << " segment=" << v.segment;
  if (v.slot != 0) out << " slot=" << v.slot;
  if (!v.message.empty()) out << ": " << v.message;
  return out.str();
}

}  // namespace

std::string to_string(AuditViolationKind kind) {
  switch (kind) {
    case AuditViolationKind::kDuplicateFutureInstance:
      return "duplicate-future-instance";
    case AuditViolationKind::kInstanceOutsideWindow:
      return "instance-outside-window";
    case AuditViolationKind::kIndexNotSorted:
      return "index-not-sorted";
    case AuditViolationKind::kLoadMismatch:
      return "load-mismatch";
    case AuditViolationKind::kContentsMismatch:
      return "contents-mismatch";
    case AuditViolationKind::kTotalMismatch:
      return "total-mismatch";
    case AuditViolationKind::kPlanDeadlineMiss:
      return "plan-deadline-miss";
    case AuditViolationKind::kPlanInstanceMissing:
      return "plan-instance-missing";
    case AuditViolationKind::kNonMonotoneClock:
      return "non-monotone-clock";
    case AuditViolationKind::kCounterRegression:
      return "counter-regression";
    case AuditViolationKind::kInstanceLeak:
      return "instance-leak";
    case AuditViolationKind::kMeterMismatch:
      return "meter-mismatch";
    case AuditViolationKind::kPlacementIndexMismatch:
      return "placement-index-mismatch";
    case AuditViolationKind::kTransitionCoverageGap:
      return "transition-coverage-gap";
  }
  return "?";
}

bool AuditReport::has(AuditViolationKind kind) const {
  return std::any_of(violations.begin(), violations.end(),
                     [kind](const AuditViolation& v) { return v.kind == kind; });
}

std::string AuditReport::to_string() const {
  if (ok()) return "ok";
  std::ostringstream out;
  for (size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) out << "; ";
    out << describe(violations[i]);
  }
  return out.str();
}

ScheduleAuditor::ScheduleAuditor(AuditOptions options) : options_(options) {}

AuditReport ScheduleAuditor::audit_schedule(const SlotSchedule& s) const {
  AuditReport report;
  const Slot now = s.now();
  const Slot horizon = now + s.window();

  // Per-segment index: containment, ordering, and the sharing invariant.
  std::vector<int> counted(static_cast<size_t>(s.window()) + 1, 0);
  int indexed_total = 0;
  for (Segment j = 1; j <= s.num_segments(); ++j) {
    const std::span<const Slot> slots = s.instances_of(j);
    if (slots.empty() != !s.has_future_instance(j)) {
      add_violation(&report, AuditViolationKind::kContentsMismatch, j, 0,
                    "has_future_instance disagrees with instances_of");
    }
    const Slot cached_latest = s.latest_instance(j);
    const Slot true_latest = slots.empty() ? 0 : slots.back();
    if (cached_latest != true_latest) {
      std::ostringstream msg;
      msg << "latest-instance cache says " << cached_latest
          << ", per-segment index says " << true_latest;
      add_violation(&report, AuditViolationKind::kPlacementIndexMismatch, j,
                    cached_latest, msg.str());
    }
    if (!options_.allow_multiple_instances && slots.size() > 1) {
      std::ostringstream msg;
      msg << slots.size() << " future instances scheduled";
      add_violation(&report, AuditViolationKind::kDuplicateFutureInstance, j,
                    slots.back(), msg.str());
    }
    Slot prev = 0;
    for (Slot slot : slots) {
      if (prev != 0 && slot <= prev) {
        add_violation(&report, AuditViolationKind::kIndexNotSorted, j, slot,
                      "per-segment slot list not strictly ascending");
      }
      prev = slot;
      if (slot <= now || slot > horizon) {
        std::ostringstream msg;
        msg << "instance at slot " << slot << " outside (" << now << ", "
            << horizon << "]";
        add_violation(&report, AuditViolationKind::kInstanceOutsideWindow, j,
                      slot, msg.str());
        continue;  // out-of-window slots cannot be attributed to the ring
      }
      ++counted[static_cast<size_t>(slot - now - 1)];
      ++indexed_total;
    }
  }

  // Per-slot load counters and the content ring against the index.
  int load_total = 0;
  for (Slot slot = now + 1; slot <= horizon; ++slot) {
    const int load = s.load(slot);
    load_total += load;
    const int indexed = counted[static_cast<size_t>(slot - now - 1)];
    if (load != indexed) {
      std::ostringstream msg;
      msg << "load counter says " << load << ", per-segment index says "
          << indexed;
      add_violation(&report, AuditViolationKind::kLoadMismatch, 0, slot,
                    msg.str());
    }
    const std::span<const Segment> ring = s.contents(slot);
    bool ring_matches = static_cast<int>(ring.size()) == indexed;
    if (ring_matches) {
      for (Segment j : ring) {
        const std::span<const Slot> slots = s.instances_of(j);
        const auto begin = std::lower_bound(slots.begin(), slots.end(), slot);
        const auto end = std::upper_bound(begin, slots.end(), slot);
        const auto ring_count = std::count(ring.begin(), ring.end(), j);
        if (end - begin != ring_count) {
          ring_matches = false;
          break;
        }
      }
    }
    if (!ring_matches) {
      std::ostringstream msg;
      msg << "content ring holds " << ring.size()
          << " instances that do not match the per-segment index";
      add_violation(&report, AuditViolationKind::kContentsMismatch, 0, slot,
                    msg.str());
    }
  }

  if (s.total_scheduled() != load_total ||
      s.total_scheduled() != indexed_total) {
    std::ostringstream msg;
    msg << "total_scheduled=" << s.total_scheduled() << ", per-slot loads sum "
        << load_total << ", per-segment index holds " << indexed_total;
    add_violation(&report, AuditViolationKind::kTotalMismatch, 0, 0,
                  msg.str());
  }

  // Range-min placement index vs the naive Figure 6 scans, for every
  // admission window (now, hi] the scheduler can issue (admissions always
  // start at now+1). The naive answers grow incrementally with hi: "min
  // load, ties latest" adopts a new slot on load <= min, "ties earliest"
  // only on load < min. Skipped while a transient overlay is live — the
  // index then intentionally diverges from the raw load counters.
  if (!s.has_load_overlay()) {
    Slot best_latest = 0;
    Slot best_earliest = 0;
    int best_latest_load = 0;
    int best_earliest_load = 0;
    for (Slot hi = now + 1; hi <= horizon; ++hi) {
      const int load = s.load(hi);
      if (best_latest == 0 || load <= best_latest_load) {
        best_latest = hi;
        best_latest_load = load;
      }
      if (best_earliest == 0 || load < best_earliest_load) {
        best_earliest = hi;
        best_earliest_load = load;
      }
      const SlotSchedule::MinLoad latest = s.min_load_latest(now + 1, hi);
      const SlotSchedule::MinLoad earliest = s.min_load_earliest(now + 1, hi);
      if (latest.slot != best_latest || latest.load != best_latest_load ||
          earliest.slot != best_earliest ||
          earliest.load != best_earliest_load) {
        std::ostringstream msg;
        msg << "window (" << now << ", " << hi << "]: index says latest "
            << latest.slot << "@" << latest.load << " / earliest "
            << earliest.slot << "@" << earliest.load << ", naive scan says "
            << best_latest << "@" << best_latest_load << " / "
            << best_earliest << "@" << best_earliest_load;
        add_violation(&report, AuditViolationKind::kPlacementIndexMismatch, 0,
                      hi, msg.str());
      }
    }
  }
  return report;
}

void ScheduleAuditor::check_clock(const DhbScheduler& d, AuditReport* report) {
  const Slot now = d.current_slot();
  if (seen_scheduler_ && now < last_now_) {
    std::ostringstream msg;
    msg << "clock moved backwards: " << last_now_ << " -> " << now;
    add_violation(report, AuditViolationKind::kNonMonotoneClock, 0, now,
                  msg.str());
  }
  seen_scheduler_ = true;
  last_now_ = std::max(last_now_, now);
}

void ScheduleAuditor::check_counters(const DhbScheduler& d,
                                     AuditReport* report) {
  const uint64_t requests = d.total_requests();
  const uint64_t fresh = d.total_new_instances();
  const uint64_t shared = d.total_shared();
  const uint64_t probes = d.total_slot_probes();
  const uint64_t rejected = d.total_rejected_admissions();
  const uint64_t work = d.total_work_units();
  const uint64_t coalesced = d.total_coalesced_requests();
  if (requests < last_requests_ || fresh < last_new_ || shared < last_shared_ ||
      probes < last_probes_ || rejected < last_rejected_ ||
      work < last_work_units_ || coalesced < last_coalesced_) {
    std::ostringstream msg;
    msg << "a lifetime counter decreased (requests " << last_requests_
        << "->" << requests << ", new " << last_new_ << "->" << fresh
        << ", shared " << last_shared_ << "->" << shared << ", probes "
        << last_probes_ << "->" << probes << ", rejected " << last_rejected_
        << "->" << rejected << ", work " << last_work_units_ << "->" << work
        << ", coalesced " << last_coalesced_ << "->" << coalesced << ")";
    add_violation(report, AuditViolationKind::kCounterRegression, 0, 0,
                  msg.str());
  }
  // Probe conservation: every admitted segment examined at least one slot,
  // and every rejected bounded admission probed at least segment 1's
  // window before refusing, so probes can never undercount the admitted
  // segment demand plus the rejected attempts.
  if (probes < fresh + shared + rejected) {
    std::ostringstream msg;
    msg << "slot probes (" << probes << ") below admitted segment demand + "
        << "rejected attempts (" << fresh + shared + rejected << ")";
    add_violation(report, AuditViolationKind::kCounterRegression, 0, 0,
                  msg.str());
  }
  // Work-unit conservation (see the pricing table in core/dhb.cc): every
  // admitted request makes at least one sharing check or memo copy, every
  // placed instance costs a query plus a commit, and every rejection pays
  // its failed query — in both index and naive mode.
  if (work < requests + 2 * fresh + rejected) {
    std::ostringstream msg;
    msg << "work units (" << work << ") below requests + 2*new + rejected ("
        << requests + 2 * fresh + rejected << ")";
    add_violation(report, AuditViolationKind::kCounterRegression, 0, 0,
                  msg.str());
  }
  // Coalesced followers are a subset of the requests, and each shared a
  // full plan's worth of segments.
  if (coalesced > requests ||
      shared < coalesced * static_cast<uint64_t>(d.num_segments())) {
    std::ostringstream msg;
    msg << "coalesced followers (" << coalesced
        << ") inconsistent with requests (" << requests << ") / shared ("
        << shared << ")";
    add_violation(report, AuditViolationKind::kCounterRegression, 0, 0,
                  msg.str());
  }
  last_requests_ = requests;
  last_new_ = fresh;
  last_shared_ = shared;
  last_probes_ = probes;
  last_rejected_ = rejected;
  last_work_units_ = work;
  last_coalesced_ = coalesced;

  if (attached_) {
    // Every new instance is transmitted exactly once: instances created
    // since attach() either already left through advance_slot() or are
    // still in the window. DHB never cancels, so this is an equality.
    const uint64_t created = fresh - base_new_;
    const int64_t still_scheduled =
        d.schedule().total_scheduled() - base_scheduled_;
    if (static_cast<int64_t>(created) !=
        static_cast<int64_t>(transmitted_seen_) + still_scheduled) {
      std::ostringstream msg;
      msg << "created " << created << " instances but transmitted "
          << transmitted_seen_ << " with " << still_scheduled
          << " still scheduled";
      add_violation(report, AuditViolationKind::kInstanceLeak, 0, 0,
                    msg.str());
    }
  }
}

void ScheduleAuditor::check_plans(const DhbScheduler& d, AuditReport* report) {
  const Slot now = d.current_slot();
  std::erase_if(plans_,
                [now](const TrackedPlan& t) { return t.last_reception <= now; });
  for (const TrackedPlan& t : plans_) {
    const int entries = t.plan.num_segments();
    for (int k = 0; k < entries; ++k) {
      const Segment j = t.first_segment + k;
      const Slot reception = t.plan.reception_slot[static_cast<size_t>(k)];
      const Slot deadline =
          t.plan.arrival_slot + t.periods[static_cast<size_t>(k)];
      if (reception <= t.plan.arrival_slot || reception > deadline) {
        std::ostringstream msg;
        msg << "reception at slot " << reception << " outside window ("
            << t.plan.arrival_slot << ", " << deadline << "]";
        add_violation(report, AuditViolationKind::kPlanDeadlineMiss, j,
                      reception, msg.str());
      }
      if (reception > now) {
        const std::span<const Slot> slots = d.schedule().instances_of(j);
        if (!std::binary_search(slots.begin(), slots.end(), reception)) {
          std::ostringstream msg;
          msg << "plan expects segment " << j << " in slot " << reception
              << " but no instance is scheduled there";
          add_violation(report, AuditViolationKind::kPlanInstanceMissing, j,
                        reception, msg.str());
        }
      }
    }
  }
}

AuditReport ScheduleAuditor::audit(const DhbScheduler& d) {
  AuditReport report = audit_schedule(d.schedule());
  check_clock(d, &report);
  check_counters(d, &report);
  check_plans(d, &report);
  return report;
}

void ScheduleAuditor::attach(const DhbScheduler& d) {
  attached_ = true;
  base_new_ = d.total_new_instances();
  base_scheduled_ = d.schedule().total_scheduled();
  advances_seen_ = 0;
  transmitted_seen_ = 0;
  max_transmitted_ = 0;
}

void ScheduleAuditor::track_plan(const ClientPlan& plan, Segment first_segment,
                                 std::vector<int> periods) {
  VOD_CHECK_MSG(static_cast<int>(periods.size()) == plan.num_segments(),
                "tracked plan needs one period per reception entry");
  Slot last = plan.arrival_slot;
  for (Slot s : plan.reception_slot) last = std::max(last, s);
  plans_.push_back(TrackedPlan{plan, first_segment, std::move(periods), last});
}

AuditReport ScheduleAuditor::on_advance(const DhbScheduler& d,
                                        const std::vector<Segment>& transmitted) {
  AuditReport report;
  const Slot now = d.current_slot();
  if (seen_scheduler_ && now != last_now_ + 1) {
    std::ostringstream msg;
    msg << "advance moved the clock " << last_now_ << " -> " << now;
    add_violation(&report, AuditViolationKind::kNonMonotoneClock, 0, now,
                  msg.str());
  }
  seen_scheduler_ = true;
  last_now_ = std::max(last_now_, now);
  ++advances_seen_;
  transmitted_seen_ += transmitted.size();
  max_transmitted_ =
      std::max(max_transmitted_, static_cast<int>(transmitted.size()));
  return report;
}

AuditReport ScheduleAuditor::audit_meter(const BandwidthMeter& meter) const {
  AuditReport report;
  if (meter.measured_slots() != advances_seen_) {
    std::ostringstream msg;
    msg << "meter measured " << meter.measured_slots() << " slots, auditor saw "
        << advances_seen_;
    add_violation(&report, AuditViolationKind::kMeterMismatch, 0, 0,
                  msg.str());
  }
  if (advances_seen_ == 0) return report;
  const double mean = static_cast<double>(transmitted_seen_) /
                      static_cast<double>(advances_seen_);
  if (std::abs(meter.mean_streams() - mean) > 1e-9 * (1.0 + mean)) {
    std::ostringstream msg;
    msg << "meter mean " << meter.mean_streams() << " != observed " << mean;
    add_violation(&report, AuditViolationKind::kMeterMismatch, 0, 0,
                  msg.str());
  }
  if (meter.max_streams() != static_cast<double>(max_transmitted_)) {
    std::ostringstream msg;
    msg << "meter max " << meter.max_streams() << " != observed "
        << max_transmitted_;
    add_violation(&report, AuditViolationKind::kMeterMismatch, 0, 0,
                  msg.str());
  }
  return report;
}

void audit_or_die(const DhbScheduler& scheduler) {
  ScheduleAuditor auditor(
      AuditOptions{.allow_multiple_instances =
                       scheduler.config().client_stream_cap > 0 ||
                       scheduler.had_clamped_admissions()});
  const AuditReport report = auditor.audit_schedule(scheduler.schedule());
  VOD_CHECK_MSG(report.ok(), report.to_string().c_str());
}

}  // namespace vod
