// Runtime invariant auditor for slotted dynamic-broadcasting schedules.
//
// The paper's §3 correctness argument rests on a small set of invariants;
// this module checks all of them mechanically against live scheduler state,
// so aggressive refactors of the scheduling core are caught by tests (and,
// under VOD_AUDIT builds, by every simulation) instead of by plot drift.
//
// Invariants audited:
//   * sharing      — each segment has at most one scheduled future instance.
//                    This is the paper's §3 invariant and holds for uniform
//                    windows (pure on_request workloads). Clamped-window
//                    admissions (on_resume/on_range) and the client-
//                    bandwidth-capped variant may legally double-schedule;
//                    exempt them via AuditOptions::allow_multiple_instances;
//   * containment  — every instance lies in (now, now+window], the
//                    per-segment index is sorted and duplicate-free, and
//                    every live client plan's future receptions lie in the
//                    plan's own window (arrival, arrival + T[j]] and point
//                    at a slot where the segment really is scheduled (DHB
//                    never moves or cancels an instance);
//   * load         — the per-slot load counters, the per-slot content ring,
//                    the per-segment index, and total_scheduled() all agree;
//   * placement    — the O(log W) placement fast path answers exactly like
//                    the naive scans it replaces: the latest-instance cache
//                    equals the back of every per-segment list, and the
//                    range-min index reproduces the linear min-load scan
//                    (both tie-break directions) for every admission window
//                    (now, hi]. Skipped while a transient load overlay is
//                    live (the index legitimately diverges from raw loads);
//   * clock        — the slot clock never moves backwards, and advances by
//                    exactly one per observed advance_slot();
//   * conservation — lifetime counters (incl. rejected bounded admissions
//                    and work units) only grow, slot probes cover the
//                    admitted segment demand plus every rejected attempt,
//                    work units cover every request, placement, and
//                    rejection (work >= requests + 2·new + rejected, by the
//                    pricing in core/dhb.cc), and (once attached)
//                    every new instance is transmitted exactly once:
//                    new_instances == transmitted so far + still scheduled;
//   * metering     — a BandwidthMeter fed one add_slot per advance agrees
//                    with the auditor's own count/mean/max accounting.
//
// Two usage modes:
//   * deep audit   — construct a ScheduleAuditor, optionally attach() it to
//                    a scheduler and feed it plans/advances, then call
//                    audit() / audit_schedule() and inspect the AuditReport;
//   * debug hook   — audit_or_die(scheduler) aborts through VOD_CHECK on
//                    the first violation. DhbScheduler::advance_slot() calls
//                    it automatically in VOD_AUDIT builds (cmake
//                    -DVOD_AUDIT=ON), making every simulation self-checking.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "schedule/client_plan.h"
#include "schedule/slot_schedule.h"
#include "schedule/types.h"

namespace vod {

class BandwidthMeter;
class DhbScheduler;

enum class AuditViolationKind {
  kDuplicateFutureInstance,  // >1 future instance of one segment (uncapped)
  kInstanceOutsideWindow,    // indexed instance outside (now, now+window]
  kIndexNotSorted,           // per-segment slot list not strictly ascending
  kLoadMismatch,             // load(s) disagrees with the instances in s
  kContentsMismatch,         // content ring disagrees with per-segment index
  kTotalMismatch,            // total_scheduled() != sum of per-slot loads
  kPlanDeadlineMiss,         // a plan reception lies outside its window
  kPlanInstanceMissing,      // a future plan reception has no instance
  kNonMonotoneClock,         // now() went backwards / skipped a slot
  kCounterRegression,        // a lifetime counter decreased or disagrees
  kInstanceLeak,             // new instances != transmitted + scheduled
  kMeterMismatch,            // BandwidthMeter disagrees with observed slots
  kPlacementIndexMismatch,   // fast placement path != naive scan answer
  kTransitionCoverageGap,    // a committed reception was never transmitted
                             // (the adaptive-migration invariant;
                             // analysis/transition_auditor.h)
};

// Stable name for a violation kind ("duplicate-future-instance", ...).
std::string to_string(AuditViolationKind kind);

struct AuditViolation {
  AuditViolationKind kind;
  Segment segment = 0;  // 0 when the violation is not about one segment
  Slot slot = 0;        // 0 when the violation is not about one slot
  std::string message;  // specific human-readable report
};

struct AuditReport {
  std::vector<AuditViolation> violations;

  bool ok() const { return violations.empty(); }
  bool has(AuditViolationKind kind) const;
  // One line per violation; "ok" when clean.
  std::string to_string() const;
};

struct AuditOptions {
  // Set when the workload may legitimately schedule several future
  // instances of one segment: the client-bandwidth-capped variant
  // (DhbConfig::client_stream_cap > 0), or any mix containing
  // on_resume()/on_range() admissions (their clamped windows can miss an
  // instance scheduled beyond the tightened deadline).
  bool allow_multiple_instances = false;
};

class ScheduleAuditor {
 public:
  explicit ScheduleAuditor(AuditOptions options = {});

  // Structural deep audit of a schedule alone: sharing, containment, load,
  // and index-consistency invariants. Stateless; const.
  AuditReport audit_schedule(const SlotSchedule& schedule) const;

  // Full audit of a scheduler: audit_schedule() plus clock monotonicity,
  // counter conservation, tracked client plans, and (when attached) the
  // instance-conservation law. Stateful: remembers the clock and counters
  // it last saw, so call it on one scheduler only.
  AuditReport audit(const DhbScheduler& scheduler);

  // Captures baseline counters so audit() can also enforce the instance
  // conservation law (new instances == transmitted + still scheduled).
  // Call before the first admission, and report every advance_slot()
  // result through on_advance().
  void attach(const DhbScheduler& scheduler);

  // Registers an admitted plan for window-containment auditing. `periods`
  // is the effective per-entry maximum-delay vector the admission ran
  // under: scheduler.periods() for on_request()/on_request_bounded(),
  // resume_periods(first) for on_resume(first), and the appropriate prefix
  // for on_range(). Expired plans are pruned automatically.
  void track_plan(const ClientPlan& plan, Segment first_segment,
                  std::vector<int> periods);

  // Reports one advance_slot() outcome: checks the clock moved forward by
  // exactly one and accumulates the transmitted-instance statistics the
  // conservation and metering audits use.
  AuditReport on_advance(const DhbScheduler& scheduler,
                         const std::vector<Segment>& transmitted);

  // Compares a meter fed exactly one add_slot(transmitted.size()) per
  // observed on_advance() — and no warmup trimming — with the auditor's
  // own accounting.
  AuditReport audit_meter(const BandwidthMeter& meter) const;

  uint64_t advances_seen() const { return advances_seen_; }
  uint64_t transmitted_seen() const { return transmitted_seen_; }
  size_t live_plans() const { return plans_.size(); }

 private:
  struct TrackedPlan {
    ClientPlan plan;
    Segment first_segment;
    std::vector<int> periods;
    Slot last_reception;  // prune once now >= this
  };

  void check_clock(const DhbScheduler& scheduler, AuditReport* report);
  void check_counters(const DhbScheduler& scheduler, AuditReport* report);
  void check_plans(const DhbScheduler& scheduler, AuditReport* report);

  AuditOptions options_;

  // Clock / counter snapshots from the previous audit() or on_advance().
  bool seen_scheduler_ = false;
  Slot last_now_ = 0;
  uint64_t last_requests_ = 0;
  uint64_t last_new_ = 0;
  uint64_t last_shared_ = 0;
  uint64_t last_probes_ = 0;
  uint64_t last_rejected_ = 0;
  uint64_t last_work_units_ = 0;
  uint64_t last_coalesced_ = 0;

  // Conservation baseline (attach()).
  bool attached_ = false;
  uint64_t base_new_ = 0;
  int base_scheduled_ = 0;

  // Advance accounting.
  uint64_t advances_seen_ = 0;
  uint64_t transmitted_seen_ = 0;
  int max_transmitted_ = 0;

  std::vector<TrackedPlan> plans_;
};

// The cheap per-slot debug hook: deep-audits `scheduler` (structural
// invariants only — no plan tracking) and aborts through VOD_CHECK with the
// report text on the first violation. Compiled in always; called on every
// advance_slot() when the library is built with VOD_AUDIT.
void audit_or_die(const DhbScheduler& scheduler);

}  // namespace vod
