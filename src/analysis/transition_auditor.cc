#include "analysis/transition_auditor.h"

#include <sstream>

namespace vod {
namespace {

void add_violation(AuditReport* report, AuditViolationKind kind,
                   Segment segment, Slot slot, std::string message) {
  AuditViolation v;
  v.kind = kind;
  v.segment = segment;
  v.slot = slot;
  v.message = std::move(message);
  report->violations.push_back(std::move(v));
}

}  // namespace

void TransitionAuditor::on_transition(Slot slot, ServingMode from,
                                      ServingMode to) {
  ++transitions_seen_;
  if (from == to) {
    add_violation(&report_, AuditViolationKind::kNonMonotoneClock, 0, slot,
                  "transition into the mode already being served (" +
                      to_string(to) + ")");
  }
  // Transitions commit at the boundary *into* a slot, before that slot is
  // audited: the claimed slot must be the one we are about to see.
  if (clock_started_ && slot != last_slot_ + 1) {
    std::ostringstream msg;
    msg << "transition claims slot " << slot << " but the next audited slot "
        << "is " << (last_slot_ + 1);
    add_violation(&report_, AuditViolationKind::kNonMonotoneClock, 0, slot,
                  msg.str());
  }
}

void TransitionAuditor::on_admission(const ClientPlan& plan,
                                     const std::vector<int>& periods,
                                     uint64_t count, ServingMode mode) {
  ++plans_admitted_;
  if (count == 0) {
    add_violation(&report_, AuditViolationKind::kCounterRegression, 0,
                  plan.arrival_slot, "admission batch of zero clients");
    return;
  }
  // Admissions for slot t arrive after slot t was audited.
  if (plan.arrival_slot != last_slot_) {
    std::ostringstream msg;
    msg << "plan admitted during slot " << plan.arrival_slot
        << " under mode " << to_string(mode) << ", but the current slot is "
        << last_slot_;
    add_violation(&report_, AuditViolationKind::kPlanDeadlineMiss, 0,
                  plan.arrival_slot, msg.str());
  }
  if (periods.size() != plan.reception_slot.size()) {
    std::ostringstream msg;
    msg << "plan has " << plan.reception_slot.size() << " receptions but "
        << periods.size() << " period entries";
    add_violation(&report_, AuditViolationKind::kPlanDeadlineMiss, 0,
                  plan.arrival_slot, msg.str());
    return;
  }
  for (size_t k = 0; k < plan.reception_slot.size(); ++k) {
    const Segment j = static_cast<Segment>(k) + 1;
    const Slot r = plan.reception_slot[k];
    const Slot deadline = plan.arrival_slot + periods[k];
    if (r <= plan.arrival_slot || r > deadline) {
      std::ostringstream msg;
      msg << "segment " << j << " planned for slot " << r
          << ", outside (" << plan.arrival_slot << ", " << deadline << "]";
      add_violation(&report_, AuditViolationKind::kPlanDeadlineMiss, j, r,
                    msg.str());
      continue;
    }
    due_[r].push_back({j, plan.arrival_slot});
    ++pending_receptions_;
  }
}

void TransitionAuditor::on_slot(Slot slot,
                                const std::vector<Segment>& transmitted) {
  ++slots_audited_;
  if (clock_started_ && slot != last_slot_ + 1) {
    std::ostringstream msg;
    msg << "slot clock jumped from " << last_slot_ << " to " << slot;
    add_violation(&report_, AuditViolationKind::kNonMonotoneClock, 0, slot,
                  msg.str());
  }
  clock_started_ = true;
  last_slot_ = slot;

  const auto it = due_.find(slot);
  if (it == due_.end()) return;

  for (const Segment j : transmitted) {
    const size_t idx = static_cast<size_t>(j);
    if (idx >= sent_scratch_.size()) sent_scratch_.resize(idx + 1, false);
    sent_scratch_[idx] = true;
  }
  for (const DueReception& need : it->second) {
    ++receptions_checked_;
    --pending_receptions_;
    const size_t idx = static_cast<size_t>(need.segment);
    if (idx < sent_scratch_.size() && sent_scratch_[idx]) continue;
    std::ostringstream msg;
    msg << "client of slot " << need.arrival << " expected segment "
        << need.segment << " in slot " << slot
        << " but it was not transmitted (playback gap)";
    add_violation(&report_, AuditViolationKind::kTransitionCoverageGap,
                  need.segment, slot, msg.str());
  }
  for (const Segment j : transmitted) {
    sent_scratch_[static_cast<size_t>(j)] = false;
  }
  due_.erase(it);
}

}  // namespace vod
