#include "NestedVectorHotPathCheck.h"

#include "VodCheckUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclTemplate.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/Twine.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace vod {

namespace {

constexpr char kDefaultHotPathDirs[] =
    "src/schedule/;src/core/;src/protocols/;"
    "fixtures/nested_vector_hot_path";

// The std::vector specialization behind T (through sugar), or null.
const ClassTemplateSpecializationDecl *asStdVector(QualType T) {
  const auto *RT = T.getCanonicalType()->getAs<RecordType>();
  if (RT == nullptr) return nullptr;
  const auto *Spec = dyn_cast<ClassTemplateSpecializationDecl>(RT->getDecl());
  if (Spec == nullptr) return nullptr;
  const NamedDecl *Template = Spec->getSpecializedTemplate();
  if (Template == nullptr || Template->getName() != "vector") return nullptr;
  if (!Template->getDeclContext()->getRedeclContext()->isStdNamespace()) {
    return nullptr;
  }
  return Spec;
}

// True for std::vector<std::vector<...>> (through typedef sugar on both
// levels).
bool isNestedVector(QualType T) {
  const ClassTemplateSpecializationDecl *Outer = asStdVector(T);
  if (Outer == nullptr || Outer->getTemplateArgs().size() == 0) return false;
  const TemplateArgument &Elem = Outer->getTemplateArgs()[0];
  if (Elem.getKind() != TemplateArgument::Type) return false;
  return asStdVector(Elem.getAsType()) != nullptr;
}

}  // namespace

NestedVectorHotPathCheck::NestedVectorHotPathCheck(StringRef Name,
                                                   ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      // Twine round-trip: OptionsView::get returned std::string before
      // LLVM 16 and StringRef after; Twine swallows both.
      HotPathDirsRaw(
          (llvm::Twine() + Options.get("HotPathDirs", kDefaultHotPathDirs))
              .str()),
      HotPathDirs(splitOptionList(HotPathDirsRaw)) {}

void NestedVectorHotPathCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "HotPathDirs", HotPathDirsRaw);
}

void NestedVectorHotPathCheck::registerMatchers(MatchFinder *Finder) {
  // Every field; the type and location tests live in check() where the
  // sugar can be unwound with plain AST calls instead of matcher gymnastics.
  Finder->addMatcher(fieldDecl().bind("field"), this);
}

void NestedVectorHotPathCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Field = Result.Nodes.getNodeAs<FieldDecl>("field");
  const SourceManager &SM = *Result.SourceManager;
  const SourceLocation Loc = Field->getLocation();
  if (Loc.isInvalid() || Loc.isMacroID()) return;
  // Scope: only classes declared in the hot-path layers are held to the
  // slab rule (inApprovedFile is a plain substring test — reused here as
  // the inclusion filter rather than the escape hatch).
  if (!inApprovedFile(Loc, SM, HotPathDirs)) return;
  if (!isNestedVector(Field->getType())) return;
  diag(Loc,
       "nested std::vector member %0 in a slot-kernel hot path; store rows "
       "in a flat capacity-strided slab or CSR layout instead "
       "(DESIGN.md #14 — one allocation, one stride, no per-row pointer "
       "chase)")
      << Field;
}

}  // namespace vod
}  // namespace tidy
}  // namespace clang
