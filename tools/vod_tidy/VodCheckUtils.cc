#include "VodCheckUtils.h"

#include "clang/AST/Decl.h"
#include "clang/AST/ExprCXX.h"
#include "clang/Basic/SourceManager.h"

namespace clang {
namespace tidy {
namespace vod {

const char kDefaultSlotNameRegex[] =
    "(^|_)(slot|seg|segment|stride|phase|cycle)s?(_|$)";

bool typeMentionsSlotAlias(QualType T) {
  // Walk the sugar chain one typedef at a time; getAs<> sees through
  // elaborated/qualified sugar between typedef layers.
  while (!T.isNull()) {
    const auto *TT = T->getAs<TypedefType>();
    if (TT == nullptr) return false;
    StringRef Name = TT->getDecl()->getName();
    if (Name == "Slot" || Name == "Segment") return true;
    T = TT->getDecl()->getUnderlyingType();
  }
  return false;
}

namespace {

bool declIsSlotLike(const ValueDecl *D, const llvm::Regex &NameRegex) {
  if (D == nullptr) return false;
  if (typeMentionsSlotAlias(D->getType())) return true;
  if (const IdentifierInfo *II = D->getIdentifier()) {
    return NameRegex.match(II->getName().lower());
  }
  return false;
}

}  // namespace

bool isSlotLikeExpr(const Expr *E, const llvm::Regex &NameRegex) {
  if (E == nullptr) return false;
  // Iterative preorder walk: the expressions in question are small, but
  // avoid recursion depth surprises on pathological inputs all the same.
  llvm::SmallVector<const Stmt *, 16> Work;
  Work.push_back(E);
  while (!Work.empty()) {
    const Stmt *S = Work.pop_back_val();
    if (S == nullptr) continue;
    if (const auto *Ex = dyn_cast<Expr>(S)) {
      if (typeMentionsSlotAlias(Ex->getType())) return true;
      if (const auto *DRE = dyn_cast<DeclRefExpr>(Ex)) {
        if (declIsSlotLike(DRE->getDecl(), NameRegex)) return true;
      } else if (const auto *ME = dyn_cast<MemberExpr>(Ex)) {
        if (declIsSlotLike(ME->getMemberDecl(), NameRegex)) return true;
      }
    }
    for (const Stmt *Child : S->children()) Work.push_back(Child);
  }
  return false;
}

llvm::SmallVector<llvm::StringRef, 8> splitOptionList(llvm::StringRef Raw) {
  llvm::SmallVector<llvm::StringRef, 8> Out;
  llvm::SmallVector<llvm::StringRef, 8> Parts;
  Raw.split(Parts, ';', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
  for (llvm::StringRef P : Parts) {
    P = P.trim();
    if (!P.empty()) Out.push_back(P);
  }
  return Out;
}

bool inApprovedFile(SourceLocation Loc, const SourceManager &SM,
                    const llvm::SmallVectorImpl<llvm::StringRef> &Approved) {
  if (Loc.isInvalid()) return false;
  StringRef File = SM.getFilename(SM.getFileLoc(Loc));
  for (llvm::StringRef Entry : Approved) {
    if (File.contains(Entry)) return true;
  }
  return false;
}

}  // namespace vod
}  // namespace tidy
}  // namespace clang
