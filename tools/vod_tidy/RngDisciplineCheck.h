// vod-rng-discipline
//
// Enforces the repo's two RNG stream-hygiene rules on vod::Rng
// (sim/random.h, DESIGN.md "Determinism by construction"):
//
// 1. Seeding: constructing an Rng from a runtime integral expression that
//    is neither a compile-time constant nor visibly a seed (no referenced
//    declaration whose name contains "seed") is flagged outside approved
//    factory files. This is how wall-clock / address-entropy seeding slips
//    in — the one thing that breaks run-to-run reproducibility.
//
// 2. Fork discipline: once a function calls parent.fork(...), drawing from
//    that same parent later in the function is flagged. fork(stream_id) is
//    const and derives child state from the parent's *current* position:
//    interleaving further parent draws silently re-keys every later fork,
//    recreating the exact stream-coupling bug the substream design exists
//    to prevent. Draw before forking, or draw from a child.
//
// Options:
//   ApprovedFiles  path substrings where rule 1 does not apply (default:
//                  sim/ — the library that implements seeding itself).
#pragma once

#include <map>
#include <string>
#include <utility>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace vod {

class RngDisciplineCheck : public ClangTidyCheck {
 public:
  RngDisciplineCheck(StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;
  void onStartOfTranslationUnit() override { ForkedAt.clear(); }

 private:
  const std::string ApprovedFilesRaw;
  llvm::SmallVector<llvm::StringRef, 8> ApprovedFiles;

  // First fork() site per (enclosing function, Rng object) pair, filled in
  // AST traversal order (= source order within a function body).
  std::map<std::pair<const Decl *, const Decl *>, SourceLocation> ForkedAt;
};

}  // namespace vod
}  // namespace tidy
}  // namespace clang
