// vod-nested-vector-hot-path
//
// Flags `std::vector<std::vector<...>>` data members declared in the slot
// kernel's hot-path layers (src/schedule/, src/core/, src/protocols/).
// The data-oriented kernel (DESIGN.md §14) keeps per-slot and per-segment
// state in flat capacity-strided slabs or CSR arrays: one allocation, one
// stride, no pointer chase per row. A nested-vector member reintroduces
// exactly the allocation churn and cache-hostile layout the slab refactor
// removed — at 10k schedulers the per-row mallocs dominated wall clock and
// inverted parallel scaling before the flat layout landed.
//
// Local variables, parameters, and members outside the hot-path layers are
// out of scope: the check polices persistent kernel STATE, not transient
// build-time scaffolding (e.g. the NPB packer flattens a temporary into
// CSR — the temporary is fine, a nested member would not be).
//
// Options:
//   HotPathDirs  semicolon list of path substrings whose classes are held
//                to the slab rule (default: the three kernel layers plus
//                the check's own fixtures).
#pragma once

#include <string>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace vod {

class NestedVectorHotPathCheck : public ClangTidyCheck {
 public:
  NestedVectorHotPathCheck(StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  const std::string HotPathDirsRaw;
  llvm::SmallVector<llvm::StringRef, 8> HotPathDirs;
};

}  // namespace vod
}  // namespace tidy
}  // namespace clang
