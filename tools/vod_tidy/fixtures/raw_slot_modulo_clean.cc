// Negative fixture for vod-raw-slot-modulo: zero findings expected.

namespace vod {
using Slot = long long;
}  // namespace vod

namespace fixture {

// Plain integer index math is out of scope: no slot type, no slot name.
int round_robin(int i) { return i % 4; }

unsigned hash_bucket(unsigned h, unsigned buckets) { return h % buckets; }

// Ring-buffer arithmetic over container sizes, the obs/trace.cc idiom.
unsigned long ring_advance(unsigned long next, unsigned long capacity) {
  return (next + 1) % capacity;
}

// Slot arithmetic without '%' is fine — only raw modulo is quarantined.
vod::Slot deadline(vod::Slot now, int period) { return now + period; }

}  // namespace fixture
