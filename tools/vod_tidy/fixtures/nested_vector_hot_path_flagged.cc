// Positive fixture for vod-nested-vector-hot-path: nested std::vector
// data members in (what the check's HotPathDirs treats as) a hot-path
// file must be flagged. Self-contained — fixtures compile with no include
// paths, so a minimal std::vector stub stands in for <vector>; the check
// keys on the template's name and namespace, not on the real header.
namespace std {
template <typename T>
class vector {
 public:
  vector() : data_(nullptr), size_(0) {}
  T* data_;
  unsigned long size_;
};
}  // namespace std

namespace vod {

using Slot = long long;
using Segment = int;

// The pre-slab SlotSchedule shape: one heap block per ring position and
// per segment row. Exactly what DESIGN.md #14 removed.
class RingOfRows {
  std::vector<std::vector<Segment>> contents_;  // LINT-EXPECT: vod-nested-vector-hot-path
  std::vector<int> loads_;                      // flat: fine
};

struct PerSegmentIndex {
  std::vector<std::vector<Slot>> per_segment;  // LINT-EXPECT: vod-nested-vector-hot-path
};

// Sugar must not hide the nesting: a typedef'd row is still a row.
using Row = std::vector<Slot>;
class SugaredRows {
  std::vector<Row> rows_;  // LINT-EXPECT: vod-nested-vector-hot-path
};

// Local variables are NOT members — transient build scaffolding is out of
// scope (the NPB packer flattens a temporary like this into CSR).
inline unsigned long flatten() {
  std::vector<std::vector<int>> scratch;
  return scratch.size_;
}

}  // namespace vod
