// Negative fixture for vod-float-slot-accumulation: zero findings.

namespace vod {
using Slot = long long;
}  // namespace vod

namespace fixture {

// Integer induction over slots: the required idiom.
long long integer_induction(vod::Slot horizon) {
  long long acc = 0;
  for (vod::Slot t = 1; t <= horizon; ++t) acc += t;
  return acc;
}

// Keeping slot sums in integers, then one explicit cast at the reporting
// boundary, is the sanctioned exit from the slot domain.
double mean_streams(const vod::Slot* stream_counts, int n) {
  long long total = 0;
  for (int i = 0; i < n; ++i) total += stream_counts[i];
  double mean = 0.0;
  mean += static_cast<double>(total) / n;  // explicit cast: intentional
  return mean;
}

// Float accumulation of genuinely continuous quantities is out of scope.
double mean_of(const double* samples, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += samples[i];
  return sum / n;
}

// Float induction over a non-slot domain is fine too.
double integrate(double width) {
  double area = 0.0;
  for (double x = 0.0; x < width; x += 0.5) area += x;
  return area;
}

}  // namespace fixture
