// Positive fixture for vod-macro-side-effects. The stub macros mirror the
// real ones just enough to create macro-argument expansions: each argument
// is expanded (void)-cast, exactly like the compiled-out real definitions.

#define VOD_TRACE_INSTANT(name, category, slot) \
  do {                                          \
    (void)(name);                               \
    (void)(category);                           \
    (void)(slot);                               \
  } while (0)
#define VOD_TRACE_COUNTER(name, category, slot, value) \
  do {                                                 \
    (void)(name);                                      \
    (void)(category);                                  \
    (void)(slot);                                      \
    (void)(value);                                     \
  } while (0)
#define VOD_METRIC_INC(counter, n) \
  do {                             \
    (void)(counter);               \
    (void)(n);                     \
  } while (0)
#define VOD_DCHECK(expr) (void)(expr)

namespace fixture {

struct Cursor {
  int pos = 0;
  int advance() { return ++pos; }      // non-const: a draw-like mutation
  int peek() const { return pos; }
};

void traces(Cursor c, int slot) {
  VOD_TRACE_INSTANT("ev", "cat",
                    slot++);  // LINT-EXPECT: vod-macro-side-effects
  VOD_TRACE_COUNTER("ev", "cat", slot,
                    c.advance());  // LINT-EXPECT: vod-macro-side-effects
  int hits = 0;
  VOD_METRIC_INC("hits",
                 hits = 1);  // LINT-EXPECT: vod-macro-side-effects
}

void checks(Cursor c) {
  VOD_DCHECK(c.advance() > 0);  // LINT-EXPECT: vod-macro-side-effects
}

}  // namespace fixture
