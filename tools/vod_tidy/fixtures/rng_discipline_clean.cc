// Negative fixture for vod-rng-discipline: zero findings expected.

namespace vod {
class Rng {
 public:
  explicit Rng(unsigned long long seed) : state_(seed) {}
  Rng fork(unsigned long long stream_id) const {
    const unsigned long long child_seed = state_ ^ stream_id;
    return Rng(child_seed);
  }
  unsigned long long next_u64() { return ++state_; }

 private:
  unsigned long long state_;
};
}  // namespace vod

namespace fixture {

struct Config {
  unsigned long long heuristic_seed = 1;
};

// Constant seeds and seed-named provenance are both fine.
unsigned long long good_seeds(const Config& config) {
  vod::Rng fixed(42);
  vod::Rng routed(config.heuristic_seed);
  vod::Rng salted(config.heuristic_seed * 7 + 1);
  return fixed.next_u64() + routed.next_u64() + salted.next_u64();
}

// Draws strictly before the forks, then children only: the multi-video
// engine's substream pattern.
unsigned long long fork_discipline(unsigned long long seed) {
  vod::Rng parent(seed);
  const unsigned long long warmup = parent.next_u64();  // before any fork
  vod::Rng child_a = parent.fork(1);
  vod::Rng child_b = parent.fork(2);
  return warmup + child_a.next_u64() + child_b.next_u64();
}

// Different Rng objects are independent streams; forking one does not
// freeze the other.
unsigned long long two_parents(unsigned long long seed) {
  vod::Rng a(seed);
  vod::Rng b(seed + 1);
  vod::Rng child = a.fork(1);
  return b.next_u64() + child.next_u64();
}

}  // namespace fixture
