// Positive fixture for vod-raw-slot-modulo: every LINT-EXPECT line below
// must produce exactly one warning (scripts/run_vod_tidy.py --self-test).
// Self-contained on purpose — fixtures compile with no include paths.

namespace vod {
using Slot = long long;
using Segment = int;
}  // namespace vod

namespace fixture {

// Signal 1: Slot-typed operand, regardless of variable naming.
long long wrap_by_type(vod::Slot s, long long ring) {
  return s % ring;  // LINT-EXPECT: vod-raw-slot-modulo
}

vod::Segment phase_by_type(vod::Slot s, vod::Segment count) {
  return static_cast<vod::Segment>(
      (s - 1) % count);  // LINT-EXPECT: vod-raw-slot-modulo
}

// Signal 2: raw ints whose names place them in the slot domain.
int wrap_by_name(int current_slot, int window) {
  return current_slot % window;  // LINT-EXPECT: vod-raw-slot-modulo
}

// Compound assignment form.
void wrap_in_place(vod::Slot& s, long long ring) {
  s %= ring;  // LINT-EXPECT: vod-raw-slot-modulo
}

// Slot-likeness on the right-hand side only (stride arithmetic).
bool hits(long long x, vod::Slot stride) {
  return x % stride == 0;  // LINT-EXPECT: vod-raw-slot-modulo
}

}  // namespace fixture
