// Positive fixture for vod-rng-discipline. The Rng stub mirrors
// sim/random.h's shape: const fork(), non-const draws.

namespace vod {
class Rng {
 public:
  explicit Rng(unsigned long long seed) : state_(seed) {}
  Rng fork(unsigned long long stream_id) const {
    const unsigned long long child_seed = state_ ^ stream_id;
    return Rng(child_seed);
  }
  unsigned long long next_u64() { return ++state_; }
  double uniform() { return static_cast<double>(next_u64()); }

 private:
  unsigned long long state_;
};
}  // namespace vod

namespace fixture {

unsigned long long entropy_source();

// Rule 1: runtime seed with no visible seed provenance.
double opaque_seed() {
  vod::Rng rng(entropy_source());  // LINT-EXPECT: vod-rng-discipline
  return rng.uniform();
}

// Rule 2: parent drawn after forking re-keys every later fork.
unsigned long long draw_after_fork(unsigned long long seed) {
  vod::Rng parent(seed);
  vod::Rng child_a = parent.fork(1);
  const unsigned long long stolen =
      parent.next_u64();  // LINT-EXPECT: vod-rng-discipline
  vod::Rng child_b = parent.fork(2);
  return stolen + child_a.next_u64() + child_b.next_u64();
}

}  // namespace fixture
