// Negative fixture for vod-macro-side-effects: zero findings expected.
//
// VOD_METRIC_INC's body deliberately contains a non-const call (`bump()`),
// mirroring the real macro's `->inc()`: side effects in the macro's own
// body belong to the macro and must not be attributed to callers.

namespace fixture {
struct Counter {
  int v = 0;
  void bump(int n) { v += n; }  // non-const, but only called by the macro body
};
inline Counter& ambient_counter() {
  static Counter c;
  return c;
}
}  // namespace fixture

#define VOD_TRACE_INSTANT(name, category, slot) \
  do {                                          \
    (void)(name);                               \
    (void)(category);                           \
    (void)(slot);                               \
  } while (0)
#define VOD_METRIC_INC(counter, n) fixture::ambient_counter().bump(n)
#define VOD_DCHECK(expr) (void)(expr)

namespace fixture {

struct Cursor {
  int pos = 0;
  int peek() const { return pos; }
};

void traces(const Cursor& c, int slot) {
  // Pure arguments: const calls, reads, arithmetic.
  VOD_TRACE_INSTANT("ev", "cat", slot + 1);
  VOD_TRACE_INSTANT("ev", "cat", c.peek());
  VOD_METRIC_INC("hits", 1);
  VOD_DCHECK(c.peek() >= 0);
}

void unlisted_macros_are_free(Cursor c) {
  // Side effects in arguments of macros outside the configured list are
  // some other check's business.
#define FIXTURE_APPLY(x) (void)(x)
  FIXTURE_APPLY(c.pos++);
#undef FIXTURE_APPLY
}

}  // namespace fixture
