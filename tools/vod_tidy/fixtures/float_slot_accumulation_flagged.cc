// Positive fixture for vod-float-slot-accumulation.

namespace vod {
using Slot = long long;
}  // namespace vod

namespace fixture {

// Pattern 1: floating-point induction variable iterating the slot clock.
double float_induction(vod::Slot horizon) {
  double acc = 0.0;
  for (double t = 0.0;  // LINT-EXPECT: vod-float-slot-accumulation
       t < static_cast<double>(horizon); t += 1.0) {
    acc += t;
  }
  return acc;
}

// Pattern 2: slot-domain values accumulated into a double.
double bandwidth_by_type(const vod::Slot* stream_counts, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += stream_counts[i];  // LINT-EXPECT: vod-float-slot-accumulation
  }
  return total;
}

double bandwidth_by_name(const int* per_slot_streams, int num_slots) {
  double total = 0.0;
  for (int i = 0; i < num_slots; ++i) {
    total -= per_slot_streams[i];  // LINT-EXPECT: vod-float-slot-accumulation
  }
  return total;
}

}  // namespace fixture
