// Negative fixture for vod-nested-vector-hot-path: the flat layouts the
// check steers toward, plus the transient shapes it must leave alone.
// This file is inside the check's scope (the fixture path matches the
// default HotPathDirs) and must produce zero findings.
namespace std {
template <typename T>
class vector {
 public:
  vector() : data_(nullptr), size_(0) {}
  T* data_;
  unsigned long size_;
};
}  // namespace std

namespace vod {

using Slot = long long;
using Segment = int;

// The slab idiom: capacity-strided row storage plus a length array.
class FlatRing {
  std::vector<Segment> contents_;  // row k at contents_[k * cap_]
  std::vector<int> len_;
  unsigned long cap_ = 4;
};

// The CSR idiom: offsets plus one flat entry array.
struct CsrIndex {
  std::vector<int> stream_offsets_;
  std::vector<Slot> entries_;
};

// A nested vector as a LOCAL is transient build scaffolding, not kernel
// state — the NPB packer does exactly this before flattening into CSR.
inline unsigned long pack() {
  std::vector<std::vector<Slot>> staging;
  return staging.size_;
}

// Nested, but not vector-of-vector: element type is a flat struct.
struct Cell {
  Slot slot;
  Segment segment;
};
class PooledCells {
  std::vector<Cell> cells_;
  std::vector<int> len_;
};

}  // namespace vod
