#include "RngDisciplineCheck.h"

#include "VodCheckUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/Twine.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace vod {

namespace {

constexpr char kDefaultApprovedFiles[] = "sim/";

// The declaration an Rng-valued expression names, when it names one
// directly (variable, member, or parameter); nullptr for temporaries and
// computed objects, which the fork-tracking rule conservatively skips.
const Decl *referencedRngDecl(const Expr *E) {
  if (E == nullptr) return nullptr;
  E = E->IgnoreParenImpCasts();
  if (const auto *DRE = dyn_cast<DeclRefExpr>(E)) return DRE->getDecl();
  if (const auto *ME = dyn_cast<MemberExpr>(E)) return ME->getMemberDecl();
  return nullptr;
}

// True when some declaration referenced inside E has "seed" in its name —
// the visible-provenance escape hatch for rule 1.
bool mentionsSeedDecl(const Expr *E) {
  if (E == nullptr) return false;
  llvm::SmallVector<const Stmt *, 16> Work;
  Work.push_back(E);
  while (!Work.empty()) {
    const Stmt *S = Work.pop_back_val();
    if (S == nullptr) continue;
    const NamedDecl *D = nullptr;
    if (const auto *DRE = dyn_cast<DeclRefExpr>(S)) {
      D = DRE->getDecl();
    } else if (const auto *ME = dyn_cast<MemberExpr>(S)) {
      D = ME->getMemberDecl();
    }
    if (D != nullptr) {
      if (const IdentifierInfo *II = D->getIdentifier()) {
        if (II->getName().lower().find("seed") != std::string::npos) {
          return true;
        }
      }
    }
    for (const Stmt *Child : S->children()) Work.push_back(Child);
  }
  return false;
}

}  // namespace

RngDisciplineCheck::RngDisciplineCheck(StringRef Name,
                                       ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      ApprovedFilesRaw(
          (llvm::Twine() + Options.get("ApprovedFiles", kDefaultApprovedFiles))
              .str()),
      ApprovedFiles(splitOptionList(ApprovedFilesRaw)) {}

void RngDisciplineCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "ApprovedFiles", ApprovedFilesRaw);
}

void RngDisciplineCheck::registerMatchers(MatchFinder *Finder) {
  const auto RngClass = cxxRecordDecl(hasName("::vod::Rng"));
  // Rule 1: one-argument construction (the seed constructor).
  Finder->addMatcher(
      cxxConstructExpr(hasDeclaration(cxxConstructorDecl(ofClass(RngClass))),
                       argumentCountIs(1))
          .bind("ctor"),
      this);
  // Rule 2: every member call on an Rng object, inside a function body.
  Finder->addMatcher(
      cxxMemberCallExpr(on(expr(hasType(RngClass)).bind("object")),
                        forFunction(functionDecl().bind("fn")))
          .bind("call"),
      this);
}

void RngDisciplineCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;

  if (const auto *Ctor = Result.Nodes.getNodeAs<CXXConstructExpr>("ctor")) {
    const Expr *Arg = Ctor->getArg(0)->IgnoreParenImpCasts();
    // Copy/move construction is stream duplication, not seeding; that is
    // a deliberate operation (e.g. value semantics in containers) and out
    // of scope here.
    if (Arg->getType()->getAsCXXRecordDecl() != nullptr) return;
    const SourceLocation Loc = Ctor->getBeginLoc();
    if (Loc.isMacroID()) return;
    if (inApprovedFile(Loc, SM, ApprovedFiles)) return;
    if (Arg->isValueDependent() ||
        Arg->isIntegerConstantExpr(*Result.Context)) {
      return;  // compile-time seed: reproducible by construction
    }
    if (mentionsSeedDecl(Arg)) return;  // visibly a seed
    diag(Loc,
         "Rng seeded from an expression with no visible seed provenance; "
         "route the value through a declaration named *seed* or construct "
         "inside an approved factory (determinism audit trail)");
    return;
  }

  const auto *Call = Result.Nodes.getNodeAs<CXXMemberCallExpr>("call");
  const auto *Fn = Result.Nodes.getNodeAs<FunctionDecl>("fn");
  const Decl *Object = referencedRngDecl(Call->getImplicitObjectArgument());
  if (Object == nullptr || Fn == nullptr) return;
  const CXXMethodDecl *Method = Call->getMethodDecl();
  if (Method == nullptr) return;
  const SourceLocation Loc = Call->getExprLoc();
  const auto Key = std::make_pair(static_cast<const Decl *>(Fn), Object);

  const IdentifierInfo *MethodId = Method->getIdentifier();
  if (MethodId != nullptr && MethodId->getName() == "fork") {
    ForkedAt.insert({Key, Loc});  // keep the first fork site
    return;
  }
  // Draw methods are exactly the non-const members (fork and accessors are
  // const); a const call can't advance the stream, so it is always safe.
  if (Method->isConst()) return;
  const auto It = ForkedAt.find(Key);
  if (It == ForkedAt.end()) return;
  if (!SM.isBeforeInTranslationUnit(It->second, Loc)) return;
  diag(Loc,
       "parent Rng drawn after fork() in this function; later forks would "
       "be re-keyed by this draw — draw before forking, or draw from a "
       "forked child");
  diag(It->second, "first fork of this Rng was here", DiagnosticIDs::Note);
}

}  // namespace vod
}  // namespace tidy
}  // namespace clang
