// Shared helpers for the vod-* clang-tidy checks.
//
// "Slot-likeness" is the common question all four checks ask about an
// expression: does it talk about the slot/segment domain? Two signals, in
// priority order:
//   1. Type sugar: the expression (or any subexpression) carries a typedef
//      whose chain mentions the vod::Slot / vod::Segment aliases
//      (schedule/types.h). This is the precise signal — the aliases exist
//      so that slot arithmetic is visible in the type system.
//   2. Naming: a referenced declaration matches SlotNameRegex. This is the
//      fallback for code that erodes the aliases into raw ints; it is kept
//      deliberately narrow (whole identifier tokens only) so `i % 4` style
//      index math never matches.
//
// The helpers live outside any check so the heuristics stay consistent:
// an expression either is or is not slot-like, for every check, with one
// definition to tune when the codebase grows new naming conventions.
#pragma once

#include <string>

#include "clang/AST/Expr.h"
#include "clang/AST/Type.h"
#include "llvm/Support/Regex.h"

namespace clang {
namespace tidy {
namespace vod {

// True when the typedef-sugar chain of T mentions the Slot or Segment
// aliases (at any desugaring depth: `const Slot`, `Slot&`, a typedef of a
// typedef of Slot, ...).
bool typeMentionsSlotAlias(QualType T);

// True when E or any subexpression is slot-like per the two signals above.
// NameRegex is matched against the names of referenced value declarations
// (variables, fields, enumerators); pass the check's configured regex.
bool isSlotLikeExpr(const Expr *E, const llvm::Regex &NameRegex);

// Default identifier pattern for signal 2. Whole tokens only, optionally
// pluralized, optionally embedded between underscores: slot, seg, segment,
// stride, phase, cycle. ("offset" is deliberately absent — too generic;
// offsets that matter are Slot-typed and caught by signal 1.)
extern const char kDefaultSlotNameRegex[];

// Splits a semicolon-separated option value ("a;b;c") into trimmed,
// non-empty entries.
llvm::SmallVector<llvm::StringRef, 8> splitOptionList(llvm::StringRef Raw);

// True when the file containing Loc (after macro expansion) matches one of
// the path substrings in ApprovedEntries. Used for the per-check escape
// hatch: files that legitimately own the flagged idiom.
bool inApprovedFile(SourceLocation Loc, const SourceManager &SM,
                    const llvm::SmallVectorImpl<llvm::StringRef> &Approved);

}  // namespace vod
}  // namespace tidy
}  // namespace clang
