#include "RawSlotModuloCheck.h"

#include "VodCheckUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/Twine.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace vod {

namespace {
constexpr char kDefaultApprovedFiles[] =
    "schedule/slot_math.h;schedule/slot_schedule;schedule/load_index";
}  // namespace

RawSlotModuloCheck::RawSlotModuloCheck(StringRef Name,
                                       ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      // Twine round-trip: OptionsView::get returned std::string before
      // LLVM 16 and StringRef after; Twine swallows both.
      ApprovedFilesRaw(
          (llvm::Twine() + Options.get("ApprovedFiles", kDefaultApprovedFiles))
              .str()),
      SlotNameRegexRaw(
          (llvm::Twine() + Options.get("SlotNameRegex", kDefaultSlotNameRegex))
              .str()),
      ApprovedFiles(splitOptionList(ApprovedFilesRaw)),
      SlotNameRegex(SlotNameRegexRaw) {}

void RawSlotModuloCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "ApprovedFiles", ApprovedFilesRaw);
  Options.store(Opts, "SlotNameRegex", SlotNameRegexRaw);
}

void RawSlotModuloCheck::registerMatchers(MatchFinder *Finder) {
  // binaryOperator also covers CompoundAssignOperator, so one matcher
  // catches both `a % b` and `a %= b`.
  Finder->addMatcher(
      binaryOperator(hasAnyOperatorName("%", "%=")).bind("mod"), this);
}

void RawSlotModuloCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Op = Result.Nodes.getNodeAs<BinaryOperator>("mod");
  const SourceManager &SM = *Result.SourceManager;
  const SourceLocation Loc = Op->getOperatorLoc();
  // Expressions materialized by macro bodies are the macro owner's
  // responsibility; arguments still get flagged at their spelling site
  // when the TU also contains them outside the macro.
  if (Loc.isMacroID()) return;
  if (inApprovedFile(Loc, SM, ApprovedFiles)) return;
  const bool LhsSlot = isSlotLikeExpr(Op->getLHS(), SlotNameRegex);
  if (!LhsSlot && !isSlotLikeExpr(Op->getRHS(), SlotNameRegex)) return;
  diag(Loc,
       "raw '%0' on slot/segment arithmetic; use cycle_phase/stride_hits/"
       "congruent_mod from schedule/slot_math.h (or the SlotSchedule ring "
       "helpers), which carry the wrap-seam preconditions")
      << Op->getOpcodeStr();
}

}  // namespace vod
}  // namespace tidy
}  // namespace clang
