// vod-float-slot-accumulation
//
// Flags floating-point arithmetic creeping into slot-domain accounting.
// Slots and per-slot stream counts are exact integers; the protocol's
// bandwidth figures (Figures 7-9) are sums of those integers, and the
// repo's reproduction pins them bit-exactly. Accumulating them through
// float/double loses exactness silently past 2^53 — and, worse,
// non-associatively, so per-shard partial sums stop agreeing with the
// sequential oracle.
//
// Two patterns are flagged:
//
// 1. Float induction: a for-loop whose init declares a floating-point
//    loop variable while the loop condition talks about slots — iterating
//    the slot clock in floating point.
//
// 2. Float accumulation: `f += e` / `f -= e` where f is floating-point
//    and e is slot-like *without* a top-level explicit cast. Spelling
//    `f += static_cast<double>(e)` is the sanctioned idiom for the final
//    hop into reporting code: the cast marks the domain exit as
//    intentional (and keeps -Wconversion quiet), so it is exempt.
//
// Options:
//   SlotNameRegex  identifier fallback pattern for slot-likeness (default:
//                  kDefaultSlotNameRegex in VodCheckUtils.h).
#pragma once

#include <string>

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

namespace clang {
namespace tidy {
namespace vod {

class FloatSlotAccumulationCheck : public ClangTidyCheck {
 public:
  FloatSlotAccumulationCheck(StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  const std::string SlotNameRegexRaw;
  llvm::Regex SlotNameRegex;
};

}  // namespace vod
}  // namespace tidy
}  // namespace clang
