#include "MacroSideEffectsCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Lex/Lexer.h"
#include "llvm/ADT/Twine.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace vod {

namespace {
constexpr char kDefaultMacros[] =
    "VOD_TRACE_INSTANT;VOD_TRACE_COUNTER;VOD_TRACE_WALL_SPAN;VOD_METRIC_INC;"
    "VOD_AUDIT;VOD_DCHECK;VOD_DCHECK_SERIAL";
}  // namespace

MacroSideEffectsCheck::MacroSideEffectsCheck(StringRef Name,
                                             ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      MacrosRaw(
          (llvm::Twine() + Options.get("Macros", kDefaultMacros)).str()) {
  llvm::SmallVector<llvm::StringRef, 8> Parts;
  llvm::StringRef(MacrosRaw).split(Parts, ';', /*MaxSplit=*/-1,
                                   /*KeepEmpty=*/false);
  for (llvm::StringRef P : Parts) {
    P = P.trim();
    if (!P.empty()) Macros.insert(P);
  }
}

void MacroSideEffectsCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "Macros", MacrosRaw);
}

void MacroSideEffectsCheck::registerMatchers(MatchFinder *Finder) {
  // Each side-effect form binds as "effect"; the macro question is a
  // source-location property, answered in check().
  Finder->addMatcher(
      unaryOperator(hasAnyOperatorName("++", "--")).bind("effect"), this);
  Finder->addMatcher(binaryOperator(isAssignmentOperator()).bind("effect"),
                     this);
  Finder->addMatcher(
      cxxOperatorCallExpr(isAssignmentOperator()).bind("effect"), this);
  Finder->addMatcher(
      cxxMemberCallExpr(unless(callee(cxxMethodDecl(isConst()))))
          .bind("effect"),
      this);
}

void MacroSideEffectsCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *E = Result.Nodes.getNodeAs<Expr>("effect");
  const SourceManager &SM = *Result.SourceManager;
  SourceLocation Loc = E->getBeginLoc();
  if (!Loc.isMacroID()) return;

  // Climb the expansion chain. At each level, resolve the macro whose
  // expansion produced the location. Hitting a listed macro decides the
  // verdict at that level:
  //   * the location is a macro-argument expansion -> caller-written
  //     expression inside the listed macro's parentheses: flag it;
  //   * otherwise the expression lives in the listed macro's own body:
  //     the macro owns it, stay silent.
  // Unlisted macros are climbed through, so an argument that reaches a
  // listed macro via a helper-macro hop is still attributed to the listed
  // macro.
  while (Loc.isValid() && Loc.isMacroID()) {
    const StringRef MacroName =
        Lexer::getImmediateMacroName(Loc, SM, getLangOpts());
    if (Macros.count(MacroName) != 0) {
      if (SM.isMacroArgExpansion(Loc)) {
        diag(SM.getFileLoc(Loc),
             "side effect in argument of %0, which compiles out in some "
             "build configurations; hoist the effect out of the macro")
            << MacroName;
      }
      return;
    }
    Loc = SM.getImmediateMacroCallerLoc(Loc);
  }
}

}  // namespace vod
}  // namespace tidy
}  // namespace clang
