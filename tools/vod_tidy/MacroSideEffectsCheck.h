// vod-macro-side-effects
//
// Flags side-effecting expressions passed as arguments to macros that
// compile out in some build configurations: the VOD_TRACE_* /
// VOD_METRIC_INC observability macros (gone under VOD_OBSERVE_DISABLED)
// and the VOD_DCHECK* family (gone under NDEBUG). A side effect inside
// such an argument makes program behavior depend on the build flavor —
// the exact divergence the repo's determinism discipline exists to
// prevent.
//
// Side effects recognized: ++/--, any (compound) assignment including
// overloaded operators, and calls to non-const member functions.
//
// The check distinguishes macro *arguments* from macro *bodies*: an
// expression spelled inside the macro's own definition (e.g. the
// `->inc()` in VOD_METRIC_INC's body) belongs to the macro and is never
// flagged; only expressions the caller wrote into the parentheses are.
//
// Options:
//   Macros  semicolon list of macro names whose arguments must be pure
//           (default: the compiled-out families above).
#pragma once

#include <string>

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/ADT/StringSet.h"

namespace clang {
namespace tidy {
namespace vod {

class MacroSideEffectsCheck : public ClangTidyCheck {
 public:
  MacroSideEffectsCheck(StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  const std::string MacrosRaw;
  llvm::StringSet<> Macros;
};

}  // namespace vod
}  // namespace tidy
}  // namespace clang
