#include "FloatSlotAccumulationCheck.h"

#include "VodCheckUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/Twine.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace vod {

FloatSlotAccumulationCheck::FloatSlotAccumulationCheck(
    StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      SlotNameRegexRaw(
          (llvm::Twine() + Options.get("SlotNameRegex", kDefaultSlotNameRegex))
              .str()),
      SlotNameRegex(SlotNameRegexRaw) {}

void FloatSlotAccumulationCheck::storeOptions(
    ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "SlotNameRegex", SlotNameRegexRaw);
}

void FloatSlotAccumulationCheck::registerMatchers(MatchFinder *Finder) {
  // Pattern 1: float induction variable; the slot question about the
  // condition is answered in check().
  Finder->addMatcher(
      forStmt(hasLoopInit(declStmt(hasSingleDecl(
                  varDecl(hasType(realFloatingPointType())).bind("ivar")))))
          .bind("loop"),
      this);
  // Pattern 2: compound accumulation into a float.
  Finder->addMatcher(
      binaryOperator(hasAnyOperatorName("+=", "-="),
                     hasLHS(expr(hasType(realFloatingPointType()))))
          .bind("accum"),
      this);
}

void FloatSlotAccumulationCheck::check(
    const MatchFinder::MatchResult &Result) {
  if (const auto *Loop = Result.Nodes.getNodeAs<ForStmt>("loop")) {
    const auto *IVar = Result.Nodes.getNodeAs<VarDecl>("ivar");
    const SourceLocation Loc = IVar->getLocation();
    if (Loc.isMacroID()) return;
    if (!isSlotLikeExpr(Loop->getCond(), SlotNameRegex)) return;
    diag(Loc,
         "floating-point induction variable %0 iterates the slot domain; "
         "slots are exact integers — loop on Slot and convert only for "
         "reporting")
        << IVar;
    return;
  }

  const auto *Op = Result.Nodes.getNodeAs<BinaryOperator>("accum");
  const SourceLocation Loc = Op->getOperatorLoc();
  if (Loc.isMacroID()) return;
  const Expr *Rhs = Op->getRHS()->IgnoreParenImpCasts();
  // static_cast<double>(...) (or any explicit cast) marks the exit from
  // the integer slot domain as intentional.
  if (isa<ExplicitCastExpr>(Rhs)) return;
  if (!isSlotLikeExpr(Rhs, SlotNameRegex)) return;
  diag(Loc,
       "slot-domain value accumulated into floating point; keep slot and "
       "stream-count sums in integers (cast explicitly at the reporting "
       "boundary if a ratio is needed)");
}

}  // namespace vod
}  // namespace tidy
}  // namespace clang
