// The vod clang-tidy module: domain-semantic checks for this repo's
// slot/RNG/macro invariants, loaded out-of-tree:
//
//   clang-tidy --load libvod_tidy_checks.so --checks='-*,vod-*' ...
//
// scripts/run_vod_tidy.py wraps the invocation (fixture self-test + tree
// scan); the `vod-tidy` CMake target wires it into the build, and CI runs
// it at zero findings. See tools/vod_tidy/README.md for the catalog and
// for how to add a check.
#include "FloatSlotAccumulationCheck.h"
#include "MacroSideEffectsCheck.h"
#include "NestedVectorHotPathCheck.h"
#include "RawSlotModuloCheck.h"
#include "RngDisciplineCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace clang {
namespace tidy {
namespace vod {

class VodTidyModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories &CheckFactories) override {
    CheckFactories.registerCheck<RawSlotModuloCheck>("vod-raw-slot-modulo");
    CheckFactories.registerCheck<MacroSideEffectsCheck>(
        "vod-macro-side-effects");
    CheckFactories.registerCheck<RngDisciplineCheck>("vod-rng-discipline");
    CheckFactories.registerCheck<FloatSlotAccumulationCheck>(
        "vod-float-slot-accumulation");
    CheckFactories.registerCheck<NestedVectorHotPathCheck>(
        "vod-nested-vector-hot-path");
  }
};

}  // namespace vod

// Register under the "vod-module" name; the registry is what --load taps.
static ClangTidyModuleRegistry::Add<vod::VodTidyModule> X(
    "vod-module", "Domain-semantic checks for the VoD broadcasting repo.");

// Some clang-tidy builds strip unreferenced module objects; exporting an
// anchor the loader resolves keeps the static registrar alive.
volatile int VodTidyModuleAnchorSource = 0;

}  // namespace tidy
}  // namespace clang
