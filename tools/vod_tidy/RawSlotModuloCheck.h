// vod-raw-slot-modulo
//
// Flags raw `%` / `%=` where either operand is slot-like. Modular slot
// arithmetic is the codebase's most bug-prone idiom — the load ring's
// wrap seam produced real historical bugs — so it is quarantined in
// approved homes: schedule/slot_math.h (cycle_phase, stride_hits,
// congruent_mod), SlotSchedule::ring_index, and the LoadIndex internals.
// Everything else must call those helpers, which carry the domain
// preconditions (1-based slots, offsets within stride) as VOD_DCHECKs.
//
// Options:
//   ApprovedFiles  semicolon list of path substrings where raw slot modulo
//                  is allowed (default: the three homes above).
//   SlotNameRegex  identifier fallback pattern for slot-likeness (default:
//                  kDefaultSlotNameRegex in VodCheckUtils.h).
//
// Plain integer index math (`i % 4`, hashing, ring buffers over sizes) is
// out of scope by construction: it is neither Slot/Segment-typed nor named
// after the slot domain.
#pragma once

#include <string>

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

namespace clang {
namespace tidy {
namespace vod {

class RawSlotModuloCheck : public ClangTidyCheck {
 public:
  RawSlotModuloCheck(StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  const std::string ApprovedFilesRaw;
  const std::string SlotNameRegexRaw;
  llvm::SmallVector<llvm::StringRef, 8> ApprovedFiles;
  llvm::Regex SlotNameRegex;
};

}  // namespace vod
}  // namespace tidy
}  // namespace clang
