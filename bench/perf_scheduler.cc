// Scheduling-cost microbenchmarks (paper §3: "each incoming request will
// result in the separate scheduling of 99 possible new segment instances.
// Fortunately ... the actual complexity of the task will be greatly
// reduced at high arrival rates because most of the segment instances
// required by a particular request would have been already scheduled").
//
// BM_RequestAdmission parameterizes the arrival intensity (requests per
// slot, x100) and reports the admission cost: it falls as load rises, as
// the paper argues. BM_AdvanceSlot measures the per-slot bookkeeping.
#include <benchmark/benchmark.h>

#include "core/dhb.h"
#include "sim/random.h"

namespace {

using namespace vod;

void BM_RequestAdmission(benchmark::State& state) {
  const double per_slot = static_cast<double>(state.range(0)) / 100.0;
  DhbConfig config;
  config.num_segments = 99;
  DhbScheduler scheduler(config);
  Rng rng(1);
  // Prime the schedule to steady state for this load.
  for (int i = 0; i < 500; ++i) {
    scheduler.advance_slot();
    for (uint64_t a = rng.poisson(per_slot); a > 0; --a) {
      scheduler.on_request();
    }
  }
  uint64_t requests = 0;
  for (auto _ : state) {
    scheduler.advance_slot();
    for (uint64_t a = 1 + rng.poisson(per_slot); a > 0; --a) {
      benchmark::DoNotOptimize(scheduler.on_request());
      ++requests;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(requests));
  state.counters["new_instances/req"] =
      static_cast<double>(scheduler.total_new_instances()) /
      static_cast<double>(scheduler.total_requests());
}
BENCHMARK(BM_RequestAdmission)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_AdvanceSlot(benchmark::State& state) {
  DhbConfig config;
  config.num_segments = 99;
  DhbScheduler scheduler(config);
  for (auto _ : state) {
    scheduler.advance_slot();
    benchmark::DoNotOptimize(scheduler.on_request());
  }
}
BENCHMARK(BM_AdvanceSlot);

void BM_IdleRequestFullSchedule(benchmark::State& state) {
  // Worst case: an idle system schedules all n fresh instances, probing
  // the whole O(sum T[j]) window.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    DhbConfig config;
    config.num_segments = n;
    DhbScheduler scheduler(config);
    scheduler.advance_slot();
    benchmark::DoNotOptimize(scheduler.on_request());
  }
}
BENCHMARK(BM_IdleRequestFullSchedule)->Arg(9)->Arg(99)->Arg(299);

}  // namespace
