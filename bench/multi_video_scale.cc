// Scaling of the sharded multi-video engine: slots/sec and parallel
// speedup for 100 / 1,000 / 10,000-video Zipf catalogs at 1 / 2 / 4 / 8
// threads, with a built-in bit-identity check (every thread count must
// reproduce the 1-thread result exactly — see DESIGN.md §8) folded into a
// per-point FNV checksum over every per-video figure.
//
// The checksum is a deterministic function of the scheduling decisions on
// a fixed seed, so it doubles as the slab-layout identity proof: the
// data-oriented slot kernel (DESIGN.md §14) must reproduce the legacy
// vector-of-vectors layout's checksums bit for bit, and
// scripts/bench_compare.py compares them across regenerations against the
// committed BENCH_multi_video.json.
//
// Usage: multi_video_scale [--smoke] [output.json]
//   --smoke  quick CI variant: smallest catalog only, 1 and 2 threads —
//   but the SAME workload parameters as the full grid, so the smoke
//   points replay committed baseline points exactly (checksums match).
//   Writes a machine-readable record to BENCH_multi_video.json (or the
//   given path) next to the human-readable table.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "server/multi_video.h"
#include "util/table.h"

namespace {

using vod::MultiVideoConfig;
using vod::MultiVideoResult;

struct Measurement {
  int catalog = 0;
  int threads = 0;
  double seconds = 0.0;
  double slots_per_sec = 0.0;  // video-slot advances per wall second
  double speedup = 1.0;        // vs the 1-thread run of the same catalog
  uint64_t checksum = 0;       // FNV-1a over every per-video figure
  MultiVideoResult result;
};

void mix(uint64_t v, uint64_t* checksum) {
  *checksum ^= v;
  *checksum *= 1099511628211ull;  // FNV prime
}

void mix_double(double v, uint64_t* checksum) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  mix(bits, checksum);
}

uint64_t result_checksum(const MultiVideoResult& r) {
  uint64_t checksum = 1469598103934665603ull;  // FNV-1a offset basis
  mix(r.requests, &checksum);
  mix(r.measured_slots, &checksum);
  mix_double(r.avg_streams, &checksum);
  mix_double(r.max_streams, &checksum);
  mix_double(r.avg_kbs, &checksum);
  mix_double(r.max_kbs, &checksum);
  for (double a : r.per_video_avg) mix_double(a, &checksum);
  for (uint64_t q : r.per_video_requests) mix(q, &checksum);
  return checksum;
}

MultiVideoConfig scale_config(int catalog) {
  MultiVideoConfig c;
  c.catalog_size = catalog;
  c.num_segments = 99;
  c.total_requests_per_hour = 2000.0;
  c.warmup_hours = 2.0;
  c.measured_hours = 20.0;
  c.seed = 20010416;
  return c;
}

bool identical(const Measurement& a, const Measurement& b) {
  return a.checksum == b.checksum && a.result.avg_streams == b.result.avg_streams &&
         a.result.max_streams == b.result.max_streams &&
         a.result.avg_kbs == b.result.avg_kbs &&
         a.result.max_kbs == b.result.max_kbs &&
         a.result.requests == b.result.requests &&
         a.result.measured_slots == b.result.measured_slots &&
         a.result.per_video_avg == b.result.per_video_avg &&
         a.result.per_video_requests == b.result.per_video_requests;
}

Measurement run_point(int catalog, int threads) {
  MultiVideoConfig c = scale_config(catalog);
  c.num_threads = threads;
  const auto start = std::chrono::steady_clock::now();
  Measurement m;
  m.result = run_multi_video_simulation(c);
  const auto end = std::chrono::steady_clock::now();
  m.catalog = catalog;
  m.threads = threads;
  m.seconds = std::chrono::duration<double>(end - start).count();
  m.checksum = result_checksum(m.result);
  const double total_slots =
      static_cast<double>(m.result.measured_slots) +
      std::ceil(c.warmup_hours * 3600.0 / c.slot_duration_s);
  m.slots_per_sec = total_slots * static_cast<double>(catalog) /
                    (m.seconds > 0.0 ? m.seconds : 1e-9);
  return m;
}

void write_json(const std::string& path,
                const std::vector<Measurement>& points, bool all_identical) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"multi_video_scale\",\n");
  std::fprintf(f, "  \"bit_identical_across_threads\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(f, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const Measurement& m = points[i];
    std::fprintf(f,
                 "    {\"catalog\": %d, \"threads\": %d, "
                 "\"seconds\": %.6f, \"slots_per_sec\": %.1f, "
                 "\"speedup\": %.3f, \"avg_streams\": %.6f, "
                 "\"max_streams\": %.1f, \"requests\": %llu, "
                 "\"checksum\": %llu}%s\n",
                 m.catalog, m.threads, m.seconds, m.slots_per_sec, m.speedup,
                 m.result.avg_streams, m.result.max_streams,
                 static_cast<unsigned long long>(m.result.requests),
                 static_cast<unsigned long long>(m.checksum),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vod;

  bool smoke = false;
  std::string json_path = "BENCH_multi_video.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }

  const std::vector<int> catalogs =
      smoke ? std::vector<int>{100} : std::vector<int>{100, 1000, 10000};
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};

  std::printf("== Sharded multi-video engine scaling%s ==\n",
              smoke ? " (smoke)" : "");
  std::printf(
      "Zipf(0.729) catalog, 2000 req/h aggregate, DHB per video;\n"
      "slots/sec = video-slot advances per wall second; speedup vs the\n"
      "1-thread run; results must be bit-identical at every thread "
      "count.\n\n");

  std::vector<Measurement> points;
  bool all_identical = true;
  Table table({"catalog", "threads", "seconds", "slots/sec", "speedup",
               "identical"});
  for (int catalog : catalogs) {
    Measurement baseline;
    for (int threads : thread_counts) {
      Measurement m = run_point(catalog, threads);
      if (threads == 1) {
        baseline = m;
      } else {
        m.speedup = baseline.seconds / (m.seconds > 0.0 ? m.seconds : 1e-9);
      }
      const bool same = threads == 1 || identical(baseline, m);
      all_identical = all_identical && same;
      table.add_row({std::to_string(catalog), std::to_string(threads),
                     format_double(m.seconds, 3),
                     format_double(m.slots_per_sec, 0),
                     format_double(m.speedup, 2), same ? "yes" : "NO"});
      points.push_back(m);
    }
  }
  table.print();
  write_json(json_path, points, all_identical);

  if (!all_identical) {
    std::printf("FAILURE: results differ across thread counts\n");
    return 1;
  }
  return 0;
}
