// Scaling of the sharded multi-video engine: slots/sec and parallel
// speedup for 100 / 1,000 / 10,000-video Zipf catalogs at 1 / 2 / 4 / 8
// threads, with a built-in bit-identity check (every thread count must
// reproduce the 1-thread result exactly — see DESIGN.md §8).
//
// Usage: multi_video_scale [--smoke] [output.json]
//   --smoke  quick CI variant: smallest catalog only, 1 and 2 threads.
//   Writes a machine-readable record to BENCH_multi_video.json (or the
//   given path) next to the human-readable table.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "server/multi_video.h"
#include "util/table.h"

namespace {

using vod::MultiVideoConfig;
using vod::MultiVideoResult;

struct Measurement {
  int catalog = 0;
  int threads = 0;
  double seconds = 0.0;
  double slots_per_sec = 0.0;  // video-slot advances per wall second
  double speedup = 1.0;        // vs the 1-thread run of the same catalog
  MultiVideoResult result;
};

MultiVideoConfig scale_config(int catalog, bool smoke) {
  MultiVideoConfig c;
  c.catalog_size = catalog;
  c.num_segments = 99;
  c.total_requests_per_hour = 2000.0;
  c.warmup_hours = smoke ? 0.5 : 2.0;
  c.measured_hours = smoke ? 4.0 : 20.0;
  c.seed = 20010416;
  return c;
}

bool identical(const MultiVideoResult& a, const MultiVideoResult& b) {
  return a.avg_streams == b.avg_streams && a.max_streams == b.max_streams &&
         a.avg_kbs == b.avg_kbs && a.max_kbs == b.max_kbs &&
         a.requests == b.requests && a.measured_slots == b.measured_slots &&
         a.per_video_avg == b.per_video_avg &&
         a.per_video_requests == b.per_video_requests;
}

Measurement run_point(int catalog, int threads, bool smoke) {
  MultiVideoConfig c = scale_config(catalog, smoke);
  c.num_threads = threads;
  const auto start = std::chrono::steady_clock::now();
  Measurement m;
  m.result = run_multi_video_simulation(c);
  const auto end = std::chrono::steady_clock::now();
  m.catalog = catalog;
  m.threads = threads;
  m.seconds = std::chrono::duration<double>(end - start).count();
  const double total_slots =
      static_cast<double>(m.result.measured_slots) +
      std::ceil(c.warmup_hours * 3600.0 / c.slot_duration_s);
  m.slots_per_sec = total_slots * static_cast<double>(catalog) /
                    (m.seconds > 0.0 ? m.seconds : 1e-9);
  return m;
}

void write_json(const std::string& path,
                const std::vector<Measurement>& points, bool all_identical) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"multi_video_scale\",\n");
  std::fprintf(f, "  \"bit_identical_across_threads\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(f, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const Measurement& m = points[i];
    std::fprintf(f,
                 "    {\"catalog\": %d, \"threads\": %d, "
                 "\"seconds\": %.6f, \"slots_per_sec\": %.1f, "
                 "\"speedup\": %.3f, \"avg_streams\": %.6f, "
                 "\"max_streams\": %.1f, \"requests\": %llu}%s\n",
                 m.catalog, m.threads, m.seconds, m.slots_per_sec, m.speedup,
                 m.result.avg_streams, m.result.max_streams,
                 static_cast<unsigned long long>(m.result.requests),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vod;

  bool smoke = false;
  std::string json_path = "BENCH_multi_video.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }

  const std::vector<int> catalogs =
      smoke ? std::vector<int>{100} : std::vector<int>{100, 1000, 10000};
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};

  std::printf("== Sharded multi-video engine scaling%s ==\n",
              smoke ? " (smoke)" : "");
  std::printf(
      "Zipf(0.729) catalog, 2000 req/h aggregate, DHB per video;\n"
      "slots/sec = video-slot advances per wall second; speedup vs the\n"
      "1-thread run; results must be bit-identical at every thread "
      "count.\n\n");

  std::vector<Measurement> points;
  bool all_identical = true;
  Table table({"catalog", "threads", "seconds", "slots/sec", "speedup",
               "identical"});
  for (int catalog : catalogs) {
    Measurement baseline;
    for (int threads : thread_counts) {
      Measurement m = run_point(catalog, threads, smoke);
      if (threads == 1) {
        baseline = m;
      } else {
        m.speedup = baseline.seconds / (m.seconds > 0.0 ? m.seconds : 1e-9);
      }
      const bool same =
          threads == 1 || identical(baseline.result, m.result);
      all_identical = all_identical && same;
      table.add_row({std::to_string(catalog), std::to_string(threads),
                     format_double(m.seconds, 3),
                     format_double(m.slots_per_sec, 0),
                     format_double(m.speedup, 2), same ? "yes" : "NO"});
      points.push_back(m);
    }
  }
  table.print();
  write_json(json_path, points, all_identical);

  if (!all_identical) {
    std::printf("FAILURE: results differ across thread counts\n");
    return 1;
  }
  return 0;
}
