// Ablation A — the slot-choice heuristic (paper §3's design argument).
//
// The naive rule "delay every segment as long as possible" (kLatest) makes
// slot numbers with many divisors collect one instance of every divisor
// segment — the paper's example: with one request per slot, slot 120!
// carries all 120 segments. The Figure 6 heuristic (min load, ties late)
// keeps the same average but caps the peaks. kEarliest destroys sharing
// with future requests; kRandom balances load but gives away delay.
//
// Output: average and maximum bandwidth per heuristic at three arrival
// rates, 99 segments.
#include "bench_common.h"

#include "core/dhb_simulator.h"
#include "util/table.h"

int main() {
  using namespace vod;
  using namespace vod::bench;

  print_header("Ablation: DHB slot-choice heuristics (99 segments)",
               "avg/max in multiples of the consumption rate b");

  const SlotHeuristic heuristics[] = {
      SlotHeuristic::kMinLoadLatest, SlotHeuristic::kLatest,
      SlotHeuristic::kMinLoadEarliest, SlotHeuristic::kEarliest,
      SlotHeuristic::kRandom};

  for (const double rate : {10.0, 100.0, 1000.0}) {
    std::printf("-- %.0f requests/hour --\n", rate);
    Table table({"heuristic", "avg", "max", "client buffer (seg)"});
    for (const SlotHeuristic h : heuristics) {
      DhbConfig dhb;
      dhb.heuristic = h;
      const SlottedSimResult r = run_dhb_simulation(dhb, slotted_config(rate));
      table.add_row({to_string(h), format_double(r.avg_streams, 2),
                     format_double(r.max_streams, 0),
                     std::to_string(r.max_client_buffer_segments)});
    }
    table.print();
    std::printf("\n");
  }

  std::printf(
      "Shape checks: 'latest' matches min-load-latest on average but its\n"
      "maximum grows with the rate (divisor-alignment spikes); 'earliest'\n"
      "pays more average bandwidth at every rate (no future sharing) AND\n"
      "needs a whole-video client buffer; the paper heuristic keeps both\n"
      "the server peak and the STB storage in check.\n");
  return 0;
}
