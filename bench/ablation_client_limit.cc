// Ablation C — client-bandwidth-limited DHB (the paper's §5 future-work
// item: "dynamic heuristic broadcasting protocols that limit the client
// bandwidth to two or three data streams", the constraint SB/DSB/HMSM
// operate under).
//
// With a cap the scheduler prefers shared instances and fresh slots the
// client can still listen to; when no window slot fits it falls back and
// records a violation. The sweep shows the server-bandwidth price of the
// cap and the residual violation rate.
#include "bench_common.h"

#include "core/dhb_simulator.h"
#include "util/table.h"

int main() {
  using namespace vod;
  using namespace vod::bench;

  print_header("Ablation: client stream cap (99 segments)",
               "cap 0 = unlimited (the paper's base protocol)");

  for (const double rate : {10.0, 100.0, 1000.0}) {
    std::printf("-- %.0f requests/hour --\n", rate);
    Table table({"cap", "avg", "max", "violations/req", "client streams",
                 "client buffer (seg)"});
    for (const int cap : {0, 2, 3, 5}) {
      DhbConfig dhb;
      dhb.client_stream_cap = cap;
      const SlottedSimResult r = run_dhb_simulation(dhb, slotted_config(rate));
      const double vio =
          r.requests ? static_cast<double>(r.cap_violations) /
                           static_cast<double>(r.requests)
                     : 0.0;
      table.add_row({std::to_string(cap), format_double(r.avg_streams, 2),
                     format_double(r.max_streams, 0), format_double(vio, 4),
                     std::to_string(r.max_client_streams),
                     std::to_string(r.max_client_buffer_segments)});
    }
    table.print();
    std::printf("\n");
  }

  std::printf(
      "Shape checks: capping the client costs server bandwidth (less\n"
      "sharing); cap 3 is nearly free, cap 2 measurably dearer — matching\n"
      "the SB-vs-NPB trade-off of §2.\n");
  return 0;
}
