// Figure 9 — Compared average bandwidth requirements of the UD protocol
// and four implementations of the DHB protocol on a compressed (VBR)
// video, in MB/s.
//
// The input video is the synthetic stand-in for the paper's DVD trace of
// The Matrix (8170 s, 636 KB/s mean, 951 KB/s one-second peak — see
// src/vbr/synthetic.h for the substitution note). Derived parameters are
// printed first so the run documents its own §4 reproduction:
//   paper: DHB-a 137 seg @ 951, DHB-b @ 789, DHB-c/d 129 seg @ 671 KB/s.
//
// Expected shape: UD (peak-provisioned) worst; a > b > c >= d; switching
// to the deterministic waiting time (b) is the biggest single saving,
// frequency adjustment (d) the next (§4's conclusion).
#include <cstdio>

#include "bench_common.h"

#include "core/dhb_simulator.h"
#include "protocols/ud.h"
#include "util/table.h"
#include "vbr/synthetic.h"
#include "vbr/variants.h"

namespace {

using namespace vod;

// Runs one DHB variant and returns its average bandwidth in MB/s.
double run_variant_mbs(const DhbVariant& v, double rate) {
  SlottedSimConfig sim = vod::bench::slotted_config(rate);
  sim.video.duration_s = v.slot_s * v.num_segments;
  sim.video.num_segments = v.num_segments;
  const SlottedSimResult r = run_dhb_simulation(v.dhb_config(), sim);
  return r.avg_streams * v.stream_rate_kbs / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vod;
  using namespace vod::bench;

  const VbrTrace trace = generate_synthetic_vbr(SyntheticVbrParams{});
  const VariantAnalysis va = analyze_variants(trace, 60.0);

  print_header("Figure 9: average bandwidth on a VBR video (MB/s)",
               "synthetic stand-in for The Matrix DVD trace");

  std::printf("trace: %d s, mean %.0f KB/s, 1s peak %.0f KB/s\n",
              trace.duration_s(), trace.mean_rate_kbs(),
              trace.peak_rate_kbs(1));
  std::printf("DHB-a: %3d segments @ %.0f KB/s   (paper: 137 @ 951)\n",
              va.a.num_segments, va.a.stream_rate_kbs);
  std::printf("DHB-b: %3d segments @ %.0f KB/s   (paper: 137 @ 789)\n",
              va.b.num_segments, va.b.stream_rate_kbs);
  std::printf("DHB-c: %3d segments @ %.0f KB/s   (paper: 129 @ 671)\n",
              va.c.num_segments, va.c.stream_rate_kbs);
  int delayed = 0, max_delay = 0;
  for (size_t k = 0; k < va.d.periods.size(); ++k) {
    const int delay = va.d.periods[k] - static_cast<int>(k + 1);
    if (delay > 0) ++delayed;
    max_delay = std::max(max_delay, delay);
  }
  std::printf(
      "DHB-d: T[1]=%d T[2]=%d T[3]=%d; %d/%d segments delayed, max delay %d "
      "slots\n       (paper: T[1]=1, T[2]=3, T[3]=3, nearly all delayed by "
      "1-8 slots)\n\n",
      va.d.periods[0], va.d.periods[1], va.d.periods[2], delayed,
      va.d.num_segments, max_delay);

  Table table({"req/h", "UD", "DHB-a", "DHB-b", "DHB-c", "DHB-d"});
  for (const double rate : paper_rates()) {
    // UD cannot exploit the video's VBR profile: it runs the playback
    // segmentation at the peak rate.
    SlottedSimConfig ud_sim = slotted_config(rate);
    ud_sim.video.duration_s = static_cast<double>(trace.duration_s());
    ud_sim.video.num_segments = va.a.num_segments;
    const SlottedSimResult ud = run_ud_simulation(ud_sim);
    table.add_numeric_row({rate,
                           ud.avg_streams * va.peak_rate_kbs / 1000.0,
                           run_variant_mbs(va.a, rate),
                           run_variant_mbs(va.b, rate),
                           run_variant_mbs(va.c, rate),
                           run_variant_mbs(va.d, rate)},
                          3);
  }
  table.print();
  if (argc > 1) {
    // Optional CSV export for plotting: ./binary out.csv
    FILE* csv = std::fopen(argv[1], "w");
    if (csv != nullptr) {
      std::fputs(table.to_csv().c_str(), csv);
      std::fclose(csv);
      std::printf("\n(series written to %s)\n", argv[1]);
    }
  }

  std::printf(
      "\nShape checks: UD worst at every rate; a > b > c >= d; the b step\n"
      "(deterministic waiting time) is the largest single saving.\n");
  return 0;
}
