// Ablation D — eliminating bandwidth peaks with client buffer (§5 future
// work: "investigate how we could reduce or eliminate bandwidth peaks
// without increasing the average video bandwidth"; §4 cites Salehi et
// al.'s smoothing by work-ahead).
//
// For the synthetic Matrix trace: the optimal (taut-string) transmission
// peak as a function of the STB buffer, against the §4 reference rates
// (DHB-a's 951 peak-provisioning, DHB-b's 822 per-segment rate, DHB-c/d's
// 671 constant work-ahead rate) and the whole-video average slope — the
// floor no buffer can beat on this front-loaded movie.
#include <cstdio>

#include "util/table.h"
#include "vbr/optimal_smoothing.h"
#include "vbr/segmentation.h"
#include "vbr/smoothing.h"
#include "vbr/synthetic.h"

int main() {
  using namespace vod;

  const VbrTrace trace = generate_synthetic_vbr(SyntheticVbrParams{});
  const double d = 8170.0 / 137.0;
  const double delay = 60.0;

  std::printf("== Smoothing peaks with client buffer (synthetic Matrix) ==\n");
  std::printf(
      "reference rates: 1s peak %.0f | DHB-b %.0f | DHB-c/d %.0f | mean %.0f "
      "KB/s\n\n",
      trace.peak_rate_kbs(1), max_segment_rate_kbs(trace, d),
      min_workahead_rate_kbs(trace, d), trace.mean_rate_kbs());

  Table table({"STB buffer (MB)", "peak rate (KB/s)", "rate changes",
               "peak / mean"});
  for (const double mb : {2.0, 8.0, 32.0, 64.0, 128.0, 256.0, 512.0}) {
    const SmoothingPlan plan =
        optimal_smoothing_plan(trace, mb * 1000.0, delay);
    if (!verify_smoothing_plan(trace, mb * 1000.0, delay, plan)) {
      std::printf("INTERNAL ERROR: infeasible plan at %.0f MB\n", mb);
      return 1;
    }
    table.add_row({format_double(mb, 0),
                   format_double(plan.peak_rate_kbs(), 0),
                   std::to_string(plan.rate_changes()),
                   format_double(plan.peak_rate_kbs() / trace.mean_rate_kbs(),
                                 3)});
  }
  table.print();

  std::printf(
      "\nShape checks: the peak falls monotonically with buffer, from near\n"
      "the 1 s peak down to the whole-video average slope (the 60 s start-up\n"
      "delay even relaxes the DHB-c prefix bound); tens of MB of year-2001\n"
      "STB buffer already remove most of the VBR penalty — the §4 result,\n"
      "generalized across buffer sizes.\n");
  return 0;
}
