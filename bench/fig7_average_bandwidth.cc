// Figure 7 — Compared average bandwidth requirements of stream tapping,
// NPB, UD and DHB protocols with 99 segments (two-hour video, Poisson
// arrivals, bandwidth in multiples of the consumption rate b).
//
// Expected shape (paper §3): the reactive curve is marginally best at one
// request/hour and worst above ~2/hour; DHB requires less average
// bandwidth than every rival above two requests/hour; NPB is flat at its
// stream count (6 for 99 segments); UD saturates at FB's 7 streams. Two
// reference curves are added: the EVZ lower bound for delayed service and
// the ideal-merging (HMSM-class) idealization §2 discusses.
#include <cstdio>

#include "bench_common.h"

#include "core/dhb_simulator.h"
#include "protocols/harmonic.h"
#include "protocols/npb.h"
#include "protocols/stream_tapping.h"
#include "protocols/ud.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace vod;
  using namespace vod::bench;

  // --trace-out / --metrics-out record the DHB runs of the sweep.
  BenchObservability obs(argc, argv);

  const VideoParams video;  // two hours, 99 segments
  const double npb_streams =
      static_cast<double>(NpbMapping::streams_for(video.num_segments));

  print_header(
      "Figure 7: average bandwidth vs request arrival rate (99 segments)",
      "columns in multiples of the video consumption rate b;\n"
      "tap/patch = stream tapping with the optimized restart threshold");

  Table table({"req/h", "tap/patch", "UD", "DHB", "NPB", "merge(HMSM)",
               "EVZ-bound"});
  for (const double rate : paper_rates()) {
    const TappingResult st =
        run_tapping_simulation(tapping_config(rate, TappingMode::kStreamTapping));
    const SlottedSimResult ud = run_ud_simulation(slotted_config(rate));
    const SlottedSimResult dhb =
        run_dhb_simulation(DhbConfig{}, slotted_config(rate));
    TappingConfig merge_cfg =
        tapping_config(rate, TappingMode::kIdealMerging);
    merge_cfg.restart_threshold_s = merge_cfg.video_duration_s;
    const TappingResult merge = run_tapping_simulation(merge_cfg);
    const double evz = evz_lower_bound_delayed(
        per_hour(rate), video.duration_s, video.slot_duration_s());
    table.add_numeric_row({rate, st.avg_streams, ud.avg_streams,
                           dhb.avg_streams, npb_streams, merge.avg_streams,
                           evz},
                          2);
  }
  table.print();
  if (obs.enabled() && !obs.write()) return 1;
  if (argc > 1 && argv[1][0] != '-') {
    // Optional CSV export for plotting: ./binary out.csv
    FILE* csv = std::fopen(argv[1], "w");
    if (csv != nullptr) {
      std::fputs(table.to_csv().c_str(), csv);
      std::fclose(csv);
      std::printf("\n(series written to %s)\n", argv[1]);
    }
  }

  std::printf(
      "\nShape checks: DHB < NPB at every rate; DHB < UD at every rate;\n"
      "tap/patch best at 1 req/h, worst above ~2 req/h; UD -> 7 (FB).\n");
  return 0;
}
