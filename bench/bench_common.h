// Shared helpers for the figure/table regeneration binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/dhb_simulator.h"
#include "protocols/stream_tapping.h"

namespace vod::bench {

// The arrival-rate grid of the paper's Figures 7-9 (requests/hour, log-ish).
inline std::vector<double> paper_rates() {
  return {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0};
}

// Simulation lengths chosen so every point has thousands of events but the
// whole sweep stays interactive: long runs at low rates (few arrivals per
// hour), shorter at high rates (plenty of arrivals anyway).
inline SlottedSimConfig slotted_config(double requests_per_hour) {
  SlottedSimConfig sim;
  sim.requests_per_hour = requests_per_hour;
  sim.warmup_hours = 8.0;
  sim.measured_hours = requests_per_hour < 10.0 ? 400.0 : 150.0;
  sim.seed = 20010416;  // ICDCS 2001, Mesa AZ, April 16
  return sim;
}

inline TappingConfig tapping_config(double requests_per_hour,
                                    TappingMode mode) {
  TappingConfig c;
  c.requests_per_hour = requests_per_hour;
  c.warmup_hours = 8.0;
  c.measured_hours = requests_per_hour < 10.0 ? 400.0 : 150.0;
  c.seed = 20010416;
  c.mode = mode;
  return c;
}

inline void print_header(const std::string& title, const std::string& notes) {
  std::printf("== %s ==\n%s\n\n", title.c_str(), notes.c_str());
}

}  // namespace vod::bench
