// Shared helpers for the figure/table regeneration binaries.
#pragma once

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "core/dhb_simulator.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "protocols/stream_tapping.h"

namespace vod::bench {

// The arrival-rate grid of the paper's Figures 7-9 (requests/hour, log-ish).
inline std::vector<double> paper_rates() {
  return {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0};
}

// Simulation lengths chosen so every point has thousands of events but the
// whole sweep stays interactive: long runs at low rates (few arrivals per
// hour), shorter at high rates (plenty of arrivals anyway).
inline SlottedSimConfig slotted_config(double requests_per_hour) {
  SlottedSimConfig sim;
  sim.requests_per_hour = requests_per_hour;
  sim.warmup_hours = 8.0;
  sim.measured_hours = requests_per_hour < 10.0 ? 400.0 : 150.0;
  sim.seed = 20010416;  // ICDCS 2001, Mesa AZ, April 16
  return sim;
}

inline TappingConfig tapping_config(double requests_per_hour,
                                    TappingMode mode) {
  TappingConfig c;
  c.requests_per_hour = requests_per_hour;
  c.warmup_hours = 8.0;
  c.measured_hours = requests_per_hour < 10.0 ? 400.0 : 150.0;
  c.seed = 20010416;
  c.mode = mode;
  return c;
}

inline void print_header(const std::string& title, const std::string& notes) {
  std::printf("== %s ==\n%s\n\n", title.c_str(), notes.c_str());
}

// Optional observability surface shared by every bench binary: construct
// with argv, and when the user passed --trace-out and/or --metrics-out an
// ambient ObsSink is installed for the object's lifetime (so simulator
// runs record trace events and snapshot their counters). Call write() once
// the sweep is done. With neither flag the object is inert.
class BenchObservability {
 public:
  BenchObservability(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--trace-out") == 0) {
        trace_out_ = argv[i + 1];
      } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
        metrics_out_ = argv[i + 1];
      }
    }
    if (enabled()) {
      sink_.metrics = &metrics_;
      sink_.trace = &trace_;
      scoped_.emplace(&sink_);
    }
  }

  bool enabled() const {
    return !trace_out_.empty() || !metrics_out_.empty();
  }

  // Writes the requested outputs; .prom selects Prometheus text, any other
  // metrics extension JSONL. Returns false when a file cannot be written.
  bool write() const {
    bool ok = true;
    if (!trace_out_.empty()) {
      ok = obs::write_chrome_trace(trace_out_, {&trace_}) && ok;
    }
    if (!metrics_out_.empty()) {
      const bool prom =
          metrics_out_.size() >= 5 &&
          metrics_out_.compare(metrics_out_.size() - 5, 5, ".prom") == 0;
      ok = (prom ? obs::write_prometheus(metrics_out_, metrics_)
                 : obs::write_metrics_jsonl(metrics_out_, metrics_)) &&
           ok;
    }
    return ok;
  }

  obs::MetricShard& metrics() { return metrics_; }
  obs::TraceBuffer& trace() { return trace_; }

 private:
  obs::MetricShard metrics_;
  obs::TraceBuffer trace_;
  obs::ObsSink sink_;
  std::optional<obs::ScopedObsSink> scoped_;
  std::string trace_out_;
  std::string metrics_out_;
};

}  // namespace vod::bench
