// Channel provisioning — what a deployment actually allocates.
//
// DHB's *maximum* bandwidth exceeds NPB's by up to two streams (Figure 8),
// but the maximum is a worst slot over days of operation. This table shows
// the stream budget covering 99% and 99.9% of slots next to the average
// and the absolute maximum: the paper's "very reasonable price" argument
// in an operator's terms (the p99.9 budget is NPB-level or below at every
// rate).
#include "bench_common.h"

#include "core/dhb_simulator.h"
#include "protocols/npb.h"
#include "util/table.h"

int main() {
  using namespace vod;
  using namespace vod::bench;

  print_header("Channel provisioning for DHB (99 segments)",
               "streams needed to cover a fraction of slots; NPB = 6 always");

  Table table({"req/h", "avg", "p99", "p99.9", "max"});
  for (const double rate : paper_rates()) {
    SlottedSimConfig sim = slotted_config(rate);
    sim.measured_hours = rate < 10.0 ? 600.0 : 300.0;  // long tails need data
    const SlottedSimResult r = run_dhb_simulation(DhbConfig{}, sim);
    table.add_numeric_row(
        {rate, r.avg_streams, r.p99_streams, r.p999_streams, r.max_streams},
        1);
  }
  table.print();

  std::printf(
      "\nShape checks: p99 sits ~1 stream above the average; even p99.9\n"
      "stays at or below NPB's 6 dedicated streams until saturation, where\n"
      "it meets the Figure 8 maximum of 8.\n");
  return 0;
}
