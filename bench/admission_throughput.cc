// Single-video admission throughput: the sub-quadratic hot path (range-min
// placement index + same-slot coalescing) against the naive Figure 6 scans
// it replaces, across video sizes and Poisson arrival rates.
//
// Every point first replays one identical arrival trace through both modes
// and insists on bit-identical results (lifetime counters plus an FNV
// checksum over every transmission and admitted plan); only then is each
// mode timed separately, auto-scaling its slot count until the measurement
// is long enough to trust. requests/sec is admissions completed per wall
// second, advance_slot() included; `speedup` (fast / naive) is the
// machine-portable metric the CI regression guard tracks.
//
// Usage: admission_throughput [--smoke] [output.json]
//   --smoke  quick CI variant: small videos, short measurements.
//   Writes a machine-readable record to BENCH_admission.json (or the given
//   path) next to the human-readable table.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/dhb.h"
#include "sim/random.h"
#include "util/table.h"

namespace {

using vod::DhbConfig;
using vod::DhbRequestResult;
using vod::DhbScheduler;
using vod::Rng;
using vod::Segment;

constexpr uint64_t kSeed = 20010416;

struct Run {
  double seconds = 0.0;
  uint64_t requests = 0;
  uint64_t new_instances = 0;
  uint64_t shared = 0;
  uint64_t probes = 0;
  uint64_t work_units = 0;
  uint64_t checksum = 0;
};

DhbConfig mode_config(int segments, bool fast) {
  DhbConfig config;
  config.num_segments = segments;
  config.use_placement_index = fast;
  config.coalesce_same_slot = fast;
  return config;
}

// Replays `slots` slots of Poisson(rate) same-slot arrival batches. The
// naive mode admits the batch one request at a time — exactly the pre-PR
// admission loop; the fast mode uses on_request_batch. The checksum folds
// in every transmitted segment and every admitted plan (the batch head's
// plan is every follower's plan, so hashing it once per batch covers all).
Run run_mode(int segments, double rate, uint64_t slots, bool fast) {
  DhbScheduler scheduler(mode_config(segments, fast));
  Rng arrivals(kSeed);
  uint64_t checksum = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&checksum](uint64_t v) {
    checksum ^= v;
    checksum *= 1099511628211ull;  // FNV prime
  };

  const auto start = std::chrono::steady_clock::now();
  for (uint64_t slot = 0; slot < slots; ++slot) {
    for (Segment j : scheduler.advance_slot()) {
      mix(static_cast<uint64_t>(j));
    }
    const uint64_t batch = arrivals.poisson(rate);
    if (batch == 0) continue;
    DhbRequestResult last;
    if (fast) {
      last = scheduler.on_request_batch(batch);
    } else {
      for (uint64_t i = 0; i < batch; ++i) last = scheduler.on_request();
    }
    mix(batch);
    for (vod::Slot s : last.plan.reception_slot) {
      mix(static_cast<uint64_t>(s));
    }
  }
  const auto end = std::chrono::steady_clock::now();

  Run run;
  run.seconds = std::chrono::duration<double>(end - start).count();
  run.requests = scheduler.total_requests();
  run.new_instances = scheduler.total_new_instances();
  run.shared = scheduler.total_shared();
  run.probes = scheduler.total_slot_probes();
  run.work_units = scheduler.total_work_units();
  run.checksum = checksum;
  return run;
}

bool identical(const Run& a, const Run& b) {
  // work_units intentionally differs between modes; everything observable
  // must not.
  return a.requests == b.requests && a.new_instances == b.new_instances &&
         a.shared == b.shared && a.probes == b.probes &&
         a.checksum == b.checksum;
}

double rps_of(const Run& run) {
  return static_cast<double>(run.requests) /
         (run.seconds > 0.0 ? run.seconds : 1e-9);
}

// Times one mode: grows the slot count geometrically until a single run is
// long enough to trust, then takes the best of `reps` repetitions at that
// length. Best-of filters scheduler/cache interference, which otherwise
// dominates the fast mode's sub-microsecond admissions.
Run timed_run(int segments, double rate, bool fast, double min_seconds,
              int reps) {
  uint64_t slots = 256;
  Run best = run_mode(segments, rate, slots, fast);
  while (best.seconds < min_seconds && slots < (1ull << 24)) {
    double grow = best.seconds > 0.0 ? (1.5 * min_seconds) / best.seconds : 8.0;
    if (grow < 2.0) grow = 2.0;
    if (grow > 16.0) grow = 16.0;
    slots = slots * static_cast<uint64_t>(grow);
    best = run_mode(segments, rate, slots, fast);
  }
  for (int r = 1; r < reps; ++r) {
    const Run again = run_mode(segments, rate, slots, fast);
    if (rps_of(again) > rps_of(best)) best = again;
  }
  return best;
}

struct Point {
  int segments = 0;
  double rate = 0.0;
  uint64_t requests = 0;
  double fast_rps = 0.0;
  double naive_rps = 0.0;
  double speedup = 0.0;
  // Deterministic algorithmic-cost metrics from the fixed-length identity
  // runs: identical on every machine, every run. work_ratio is the CI
  // guard's primary metric — it moves iff the algorithm itself changes.
  double fast_work_per_req = 0.0;
  double naive_work_per_req = 0.0;
  double work_ratio = 0.0;
  double probes_per_req = 0.0;
  bool same = false;
};

void write_json(const std::string& path, const std::vector<Point>& points,
                bool all_identical) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"admission_throughput\",\n");
  std::fprintf(f, "  \"bit_identical_fast_vs_naive\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(f, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(f,
                 "    {\"segments\": %d, \"arrivals_per_slot\": %.2f, "
                 "\"requests\": %llu, \"fast_rps\": %.1f, "
                 "\"naive_rps\": %.1f, \"speedup\": %.3f, "
                 "\"fast_work_per_req\": %.4f, "
                 "\"naive_work_per_req\": %.4f, \"work_ratio\": %.4f, "
                 "\"probes_per_req\": %.1f, \"identical\": %s}%s\n",
                 p.segments, p.rate,
                 static_cast<unsigned long long>(p.requests), p.fast_rps,
                 p.naive_rps, p.speedup, p.fast_work_per_req,
                 p.naive_work_per_req, p.work_ratio, p.probes_per_req,
                 p.same ? "true" : "false", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::printf("\nwrote %s\n", path.c_str());
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  using vod::Table;
  using vod::format_double;

  bool smoke = false;
  std::string json_path = "BENCH_admission.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }

  const std::vector<int> sizes =
      smoke ? std::vector<int>{20, 100} : std::vector<int>{20, 100, 500, 2000};
  const std::vector<double> rates = {0.25, 4.0, 32.0};
  const double min_seconds = smoke ? 0.05 : 0.2;
  const int reps = 3;
  // Same length in smoke and full mode, so the deterministic work_ratio the
  // CI guard compares is computed over the exact same trace everywhere.
  const uint64_t identity_slots = 500;

  std::printf("== Single-video admission throughput%s ==\n",
              smoke ? " (smoke)" : "");
  std::printf(
      "fast = range-min placement index + same-slot coalescing;\n"
      "naive = the pre-PR linear Figure 6 scans. Each point checks the two\n"
      "modes bit-identical on a shared trace before timing them.\n\n");

  std::vector<Point> points;
  bool all_identical = true;
  Table table({"segments", "arrivals/slot", "requests", "fast req/s",
               "naive req/s", "speedup", "work ratio", "identical"});
  for (int segments : sizes) {
    for (double rate : rates) {
      Point p;
      p.segments = segments;
      p.rate = rate;

      const Run check_fast = run_mode(segments, rate, identity_slots, true);
      const Run check_naive = run_mode(segments, rate, identity_slots, false);
      p.same = identical(check_fast, check_naive);
      all_identical = all_identical && p.same;
      if (check_fast.requests > 0) {
        p.fast_work_per_req = static_cast<double>(check_fast.work_units) /
                              static_cast<double>(check_fast.requests);
        p.naive_work_per_req = static_cast<double>(check_naive.work_units) /
                               static_cast<double>(check_naive.requests);
        p.work_ratio = p.naive_work_per_req /
                       (p.fast_work_per_req > 0.0 ? p.fast_work_per_req : 1.0);
        p.probes_per_req = static_cast<double>(check_fast.probes) /
                           static_cast<double>(check_fast.requests);
      }

      const Run fast = timed_run(segments, rate, true, min_seconds, reps);
      const Run naive = timed_run(segments, rate, false, min_seconds, reps);
      p.requests = fast.requests;
      p.fast_rps = rps_of(fast);
      p.naive_rps = rps_of(naive);
      p.speedup = p.fast_rps / (p.naive_rps > 0.0 ? p.naive_rps : 1e-9);

      table.add_row({std::to_string(segments), format_double(rate, 2),
                     std::to_string(p.requests), format_double(p.fast_rps, 0),
                     format_double(p.naive_rps, 0),
                     format_double(p.speedup, 2),
                     format_double(p.work_ratio, 2), p.same ? "yes" : "NO"});
      points.push_back(p);
    }
  }
  table.print();
  write_json(json_path, points, all_identical);

  if (!all_identical) {
    std::printf("FAILURE: fast and naive admission modes diverged\n");
    return 1;
  }
  return 0;
}
