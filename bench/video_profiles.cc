// §5 future work, item 1: "apply our DHB protocol to other videos in order
// to learn how its performance is affected by the individual
// characteristics of each video."
//
// Runs the full §4 pipeline (DHB-a..d derivation) over four content
// profiles and prints the derived rates, segment counts and frequency
// slack side by side. The interesting dimension is how much each
// optimization step is worth per content class:
//   * action  — sustained high rate: b/c/d all collapse toward a (little
//     to smooth);
//   * drama   — nearly CBR: everything collapses toward the mean;
//   * documentary (back-loaded) — work-ahead shines: the c rate drops to
//     the global mean and most segments can wait many slots.
#include <cstdio>

#include "util/table.h"
#include "vbr/synthetic.h"
#include "vbr/variants.h"

int main() {
  using namespace vod;

  std::printf("== DHB variants across video profiles (60 s wait bound) ==\n");
  std::printf("rates in KB/s; delay = max extra slots a segment can wait\n\n");

  Table table({"profile", "dur(s)", "mean", "peak(a)", "b", "c", "c/mean",
               "segs a->c", "delayed", "max delay"});

  struct Profile {
    const char* name;
    SyntheticVbrParams params;
  };
  const Profile profiles[] = {
      {"matrix", matrix_profile()},
      {"action", action_profile()},
      {"drama", drama_profile()},
      {"documentary", documentary_profile()},
  };

  for (const Profile& p : profiles) {
    const VbrTrace trace = generate_synthetic_vbr(p.params);
    const VariantAnalysis va = analyze_variants(trace, 60.0);
    int delayed = 0, max_delay = 0;
    for (size_t k = 0; k < va.d.periods.size(); ++k) {
      const int delay = va.d.periods[k] - static_cast<int>(k + 1);
      if (delay > 0) ++delayed;
      max_delay = std::max(max_delay, delay);
    }
    table.add_row(
        {p.name, std::to_string(trace.duration_s()),
         format_double(trace.mean_rate_kbs(), 0),
         format_double(va.peak_rate_kbs, 0),
         format_double(va.segment_rate_kbs, 0),
         format_double(va.workahead_rate_kbs, 0),
         format_double(va.workahead_rate_kbs / trace.mean_rate_kbs(), 3),
         std::to_string(va.a.num_segments) + "->" +
             std::to_string(va.c.num_segments),
         std::to_string(delayed) + "/" + std::to_string(va.d.num_segments),
         std::to_string(max_delay)});
  }
  table.print();

  std::printf(
      "\nShape checks: the drama is near-CBR (c/mean ~ 1, few delays); the\n"
      "action movie leaves smoothing little headroom (peak close to b and\n"
      "c); the back-loaded documentary smooths all the way to its mean and\n"
      "delays nearly every segment — confirming §4's conclusion that\n"
      "tuning to the video beats switching protocols.\n");
  return 0;
}
