// Admission control under a hard channel budget.
//
// Figure 8 prices DHB's flexibility at up to two streams over NPB's six.
// This table asks the operator's follow-up: what happens if the server
// owns exactly K channels and defers requests that would need a K+1-th?
// (FIFO retry each slot, giving up after 50 slots ~ one hour.)
//
// Expected shape: at K = 8 (the Figure 8 maximum) nothing ever waits; at
// K = 6 (NPB's budget) a small fraction of requests wait a slot or two at
// high rates. At K = 5 — below the H_99 = 5.18 unbounded saturation
// average — the system does NOT collapse: deferral synchronizes arrivals
// into shared admission slots, so DHB degrades into a batching protocol
// with bounded extra wait. The harmonic floor applies to one-admission-
// per-slot operation, not to the protocol itself.
#include "bench_common.h"

#include "core/dhb_simulator.h"
#include "util/table.h"

int main() {
  using namespace vod;
  using namespace vod::bench;

  print_header("DHB with K dedicated channels (99 segments)",
               "deferral = admitted late; reject = gave up after 50 slots");

  for (const double rate : {100.0, 500.0, 1000.0}) {
    std::printf("-- %.0f requests/hour --\n", rate);
    Table table({"K", "avg", "max", "deferred %", "avg wait (slots)",
                 "max wait", "rejected %"});
    for (const int cap : {5, 6, 7, 8}) {
      BoundedSimConfig sim;
      sim.base = slotted_config(rate);
      sim.base.measured_hours = 150.0;
      sim.channel_cap = cap;
      const BoundedSimResult r = run_bounded_dhb_simulation(DhbConfig{}, sim);
      const double offered =
          static_cast<double>(r.requests + r.rejected);
      table.add_row(
          {std::to_string(cap), format_double(r.avg_streams, 2),
           format_double(r.max_streams, 0),
           format_double(100.0 * static_cast<double>(r.deferred) /
                             std::max(1.0, offered), 2),
           format_double(r.avg_extra_wait_slots, 3),
           std::to_string(r.max_extra_wait_slots),
           format_double(100.0 * static_cast<double>(r.rejected) /
                             std::max(1.0, offered), 2)});
    }
    table.print();
    std::printf("\n");
  }

  std::printf(
      "Shape checks: K=8 never defers (the Figure 8 maximum); K=6 defers a\n"
      "small tail with sub-slot average extra wait; even K=5 < H_99 keeps\n"
      "serving everyone (self-batching), at ~1/3 of requests waiting a few\n"
      "slots.\n");
  return 0;
}
