// Capacity table — how many segments k equal-bandwidth streams can carry
// under each static protocol, against the harmonic upper bound (§2's
// protocol comparison: NPB packs 9 segments on 3 streams where FB packs 7
// and SB only 5; no fixed-segment protocol can beat H_n <= k).
//
// Also prints the paper's working configuration: streams needed for 99
// segments (maximum wait 73 s on a two-hour video) and DHB's saturation
// average for reference.
#include <cstdio>

#include "protocols/fast_broadcasting.h"
#include "protocols/harmonic.h"
#include "protocols/npb.h"
#include "protocols/pyramid.h"
#include "protocols/skyscraper.h"
#include "util/table.h"

int main() {
  using namespace vod;

  std::printf("== Segment capacity per stream count ==\n\n");
  Table capacity({"streams", "SB", "FB", "NPB(RFS)", "harmonic bound"});
  for (int k = 1; k <= 7; ++k) {
    capacity.add_row({std::to_string(k),
                      std::to_string(SbMapping::capacity(k)),
                      std::to_string(FbMapping::capacity(k)),
                      std::to_string(NpbMapping::capacity(k)),
                      std::to_string(NpbMapping::harmonic_capacity(k))});
  }
  capacity.print();
  std::printf(
      "\npublished reference points: NPB packs 9 segments on 3 streams\n"
      "(paper Figure 2) while FB packs 7 (Figure 1); SB trades capacity\n"
      "for its 2-stream client cap (Figure 3).\n\n");

  std::printf("== Streams needed for the paper's 99-segment video ==\n\n");
  Table streams({"protocol", "streams", "note"});
  streams.add_row({"SB", std::to_string(SbMapping::streams_for(99)),
                   "2-stream clients"});
  streams.add_row({"FB", std::to_string(FbMapping::streams_for(99)),
                   "UD saturation level"});
  streams.add_row({"NPB", std::to_string(NpbMapping::streams_for(99)),
                   "Figures 7/8 flat line"});
  streams.add_row({"harmonic", "6",
                   "H_99 = " + format_double(harmonic_number(99), 3) +
                       " > 5: six streams provably necessary"});
  streams.add_row({"DHB @ saturation",
                   format_double(harmonic_number(99), 2),
                   "average streams (on-demand ~ H_n)"});
  streams.add_row({"pyramid (alpha=2.5)",
                   format_double(pyramid_bandwidth(
                       pyramid_channels_for(73.0, 2.5, 7200.0), 2.5), 1),
                   "consumption-rate units, 2.5x-rate channels"});
  streams.print();
  return 0;
}
