// Adaptive protocol switching under a diurnal demand curve.
//
// Each point runs one Zipf catalog over the §1 day/night sinusoid (400:1
// peak-to-trough per point scale) four ways through the *same* engine
// code path: the adaptive ladder (EWMA + hysteresis controller,
// server/adaptive_video.h) and the three pinned ladders — reactive
// (kLatest), DHB (kMinLoadLatest) and static NPB — i.e. the uniform
// protocol pins an operator could deploy instead. The figure of merit is
// provisioned bandwidth: the mean per-window (~1 h) peak stream count per
// video, summed over the catalog (the paper's Figure 8 metric; DESIGN.md
// §13).
//
// Reported per point:
//   * adaptive vs the per-video *frontier* — sum over videos of the best
//     pin for that video. frontier_ratio = adaptive / frontier must stay
//     <= 1.05: switching tracks the per-rate-optimal static choice.
//   * adaptive vs the *worst* uniform pin. worst_pin_ratio must stay
//     <= 0.80: adapting is much cheaper than pinning wrong.
//   * bit identity: the adaptive run repeated at every thread count must
//     produce FNV-identical per-video provisioned/request/switch vectors.
//   * a migration gap audit: the hottest rank re-run standalone with a
//     TransitionAuditor probe over the same diurnal arrivals —
//     gap_violations (kTransitionCoverageGap et al.) is required to be 0
//     while the controller switches on its own.
//
// scripts/bench_compare.py re-checks all of the above from the committed
// JSON and compares checksums across regenerations of matching points.
//
// Usage: adaptive_switching [--smoke] [output.json]
//   Writes BENCH_adaptive.json (or the given path) next to the table.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/transition_auditor.h"
#include "protocols/npb.h"
#include "server/adaptive_video.h"
#include "server/multi_video.h"
#include "sim/arrival_process.h"
#include "sim/random.h"
#include "sim/zipf.h"
#include "util/table.h"

namespace {

using vod::AdaptiveVideo;
using vod::AdaptiveVideoConfig;
using vod::MultiVideoConfig;
using vod::MultiVideoResult;
using vod::NonHomogeneousPoissonProcess;
using vod::NpbMapping;
using vod::Rng;
using vod::TransitionAuditor;
using vod::VideoPolicy;
using vod::ZipfDistribution;

constexpr uint64_t kSeed = 20010416;
constexpr int kModes = 3;  // reactive / dhb / static rungs

// One demand scale on the diurnal curve. The catalog, horizon and window
// are shared; only the aggregate off-peak/peak rates sweep.
struct Workload {
  int catalog = 12;
  int segments = 99;
  double off_peak_per_hour = 8.0;    // aggregate trough rate
  double peak_per_hour = 1600.0;     // aggregate prime-time rate
  double warmup_hours = 12.0;
  double measured_hours = 96.0;      // four diurnal cycles
  uint64_t provision_window_slots = 50;  // ~1 h at the 72.7 s slot
};

struct PolicyRun {
  double provisioned_total = 0.0;
  std::vector<double> per_video;  // provisioned streams per rank
  uint64_t requests = 0;
  uint64_t switches = 0;
  uint64_t checksum = 0;
};

void mix(uint64_t v, uint64_t* checksum) {
  *checksum ^= v;
  *checksum *= 1099511628211ull;  // FNV prime
}

void mix_double(double v, uint64_t* checksum) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  mix(bits, checksum);
}

MultiVideoConfig engine_config(const Workload& w) {
  MultiVideoConfig c;
  c.catalog_size = w.catalog;
  c.num_segments = w.segments;
  c.policy = VideoPolicy::kAdaptive;
  c.total_requests_per_hour = w.off_peak_per_hour;
  c.diurnal_peak_requests_per_hour = w.peak_per_hour;
  c.warmup_hours = w.warmup_hours;
  c.measured_hours = w.measured_hours;
  c.provision_window_slots = w.provision_window_slots;
  c.seed = kSeed;
  return c;
}

// Runs the engine with the ladder either free (pin < 0) or pinned to one
// rung — the uniform-protocol baselines ride the identical code path, so
// the comparison isolates the switching decision itself.
PolicyRun run_policy(const Workload& w, int pin, int threads) {
  MultiVideoConfig c = engine_config(w);
  c.num_threads = threads;
  if (pin >= 0) {
    c.adaptive.controller.initial_mode = pin;
    c.adaptive.controller.min_mode = pin;
    c.adaptive.controller.max_mode = pin;
  }
  const MultiVideoResult r = run_multi_video_simulation(c);

  PolicyRun run;
  run.per_video = r.per_video_provisioned;
  for (double p : r.per_video_provisioned) run.provisioned_total += p;
  run.requests = r.requests;
  for (uint64_t s : r.per_video_switches) run.switches += s;
  run.checksum = 1469598103934665603ull;  // FNV-1a offset basis
  mix(r.requests, &run.checksum);
  for (double p : r.per_video_provisioned) mix_double(p, &run.checksum);
  for (double a : r.per_video_avg) mix_double(a, &run.checksum);
  for (uint64_t q : r.per_video_requests) mix(q, &run.checksum);
  for (uint64_t s : r.per_video_switches) mix(s, &run.checksum);
  return run;
}

struct GapAudit {
  uint64_t transitions = 0;
  uint64_t violations = 0;
  uint64_t receptions = 0;
  uint64_t pending = 0;
  uint64_t switches = 0;
};

// Re-runs one rank standalone with the TransitionAuditor attached: the
// same diurnal arrival law the engine uses (that rank's Zipf share, same
// substream construction), the controller free-running. The auditor checks
// every committed reception against the merged transmissions, so a single
// missed slot anywhere across the run's migrations fails the bench.
GapAudit run_gap_audit_rank(const Workload& w, int rank) {
  const MultiVideoConfig c = engine_config(w);
  const ZipfDistribution zipf(w.catalog, c.zipf_exponent);
  const double share = zipf.probability(rank);

  TransitionAuditor auditor;
  const NpbMapping mapping =
      *NpbMapping::build(NpbMapping::streams_for(w.segments), w.segments);
  AdaptiveVideoConfig acfg = c.adaptive;
  acfg.num_segments = w.segments;
  AdaptiveVideo video(acfg, &mapping, &auditor);

  NonHomogeneousPoissonProcess arrivals(
      vod::daily_demand_curve(w.off_peak_per_hour * share,
                              w.peak_per_hour * share),
      vod::per_hour(w.peak_per_hour * share),
      Rng(kSeed).fork(static_cast<uint64_t>(rank) + 1));
  const double d = c.slot_duration_s;
  const uint64_t slots = static_cast<uint64_t>(
      std::ceil((w.warmup_hours + w.measured_hours) * 3600.0 / d));

  double next_arrival = arrivals.next();
  for (uint64_t step = 1; step <= slots; ++step) {
    video.advance_slot();
    const double slot_end = static_cast<double>(step) * d;
    uint64_t batch = 0;
    while (next_arrival < slot_end) {
      ++batch;
      next_arrival = arrivals.next();
    }
    video.on_slot_arrivals(batch);
  }
  // Drain: no further admissions; every committed reception is due within
  // one static window / dynamic plan horizon (<= segments slots).
  for (int i = 0; i < 2 * w.segments + 2; ++i) {
    video.advance_slot();
    video.on_slot_arrivals(0);
  }

  GapAudit audit;
  audit.transitions = auditor.transitions_seen();
  audit.violations = auditor.report().violations.size();
  audit.receptions = auditor.receptions_checked();
  audit.pending = auditor.pending_receptions();
  audit.switches = video.switches();
  if (!auditor.report().ok()) {
    std::fprintf(stderr, "gap audit violations (rank %d):\n%s\n", rank,
                 auditor.report().to_string().c_str());
  }
  return audit;
}

// Audits the two extremes of the catalog: the hottest rank (static almost
// all day; the dynamic->static commit and its drain) and the coldest (it
// crosses the static boundary every evening, so it exercises round trips
// daily).
GapAudit run_gap_audit(const Workload& w) {
  GapAudit total;
  for (int rank : {0, w.catalog - 1}) {
    const GapAudit one = run_gap_audit_rank(w, rank);
    total.transitions += one.transitions;
    total.violations += one.violations;
    total.receptions += one.receptions;
    total.pending += one.pending;
    total.switches += one.switches;
  }
  return total;
}

struct Point {
  Workload workload;
  double peak_arrivals_per_slot = 0.0;
  uint64_t requests = 0;
  double adaptive_provisioned = 0.0;
  double pin_provisioned[kModes] = {0.0, 0.0, 0.0};
  double frontier_provisioned = 0.0;
  double worst_pin_provisioned = 0.0;
  double frontier_ratio = 0.0;
  double worst_pin_ratio = 0.0;
  uint64_t switches = 0;
  uint64_t checksum = 0;
  bool bit_identical = false;
  GapAudit audit;
};

void write_json(const std::string& path, const std::vector<Point>& points,
                const std::vector<int>& threads, bool all_identical,
                bool all_gap_free) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::string thread_list;
  for (size_t i = 0; i < threads.size(); ++i) {
    thread_list += (i > 0 ? ", " : "") + std::to_string(threads[i]);
  }
  std::fprintf(f, "{\n  \"benchmark\": \"adaptive_switching\",\n");
  std::fprintf(f, "  \"threads\": [%s],\n", thread_list.c_str());
  std::fprintf(f, "  \"bit_identical_across_threads\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(f, "  \"gap_free\": %s,\n", all_gap_free ? "true" : "false");
  std::fprintf(f, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    const Workload& w = p.workload;
    std::fprintf(
        f,
        "    {\"segments\": %d, \"arrivals_per_slot\": %.4f, "
        "\"catalog\": %d, \"off_peak_per_hour\": %.2f, "
        "\"peak_per_hour\": %.2f, \"measured_hours\": %.1f, "
        "\"requests\": %llu, \"adaptive_provisioned\": %.4f, "
        "\"reactive_pin_provisioned\": %.4f, \"dhb_pin_provisioned\": %.4f, "
        "\"static_pin_provisioned\": %.4f, \"frontier_provisioned\": %.4f, "
        "\"worst_pin_provisioned\": %.4f, \"frontier_ratio\": %.4f, "
        "\"worst_pin_ratio\": %.4f, \"switches\": %llu, "
        "\"gap_transitions\": %llu, \"gap_violations\": %llu, "
        "\"gap_receptions\": %llu, \"checksum\": %llu, "
        "\"bit_identical\": %s}%s\n",
        w.segments, p.peak_arrivals_per_slot, w.catalog, w.off_peak_per_hour,
        w.peak_per_hour, w.measured_hours,
        static_cast<unsigned long long>(p.requests), p.adaptive_provisioned,
        p.pin_provisioned[0], p.pin_provisioned[1], p.pin_provisioned[2],
        p.frontier_provisioned, p.worst_pin_provisioned, p.frontier_ratio,
        p.worst_pin_ratio, static_cast<unsigned long long>(p.switches),
        static_cast<unsigned long long>(p.audit.transitions),
        static_cast<unsigned long long>(p.audit.violations),
        static_cast<unsigned long long>(p.audit.receptions),
        static_cast<unsigned long long>(p.checksum),
        p.bit_identical ? "true" : "false",
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::printf("\nwrote %s\n", path.c_str());
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  using vod::Table;
  using vod::format_double;

  bool smoke = false;
  std::string json_path = "BENCH_adaptive.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }

  // Aggregate (off-peak, peak) demand scales — three day/night swing
  // ratios (50:1, 20:1, 10:1) across which the ladder keeps switching for
  // real (~1 round trip per video per day) while every guard holds. The
  // mid point is shared by smoke and full runs so bench_compare can match
  // checksums across them.
  std::vector<Workload> workloads(smoke ? 1 : 3);
  if (smoke) {
    workloads[0].off_peak_per_hour = 120.0;
    workloads[0].peak_per_hour = 2400.0;
  } else {
    workloads[0].off_peak_per_hour = 60.0;
    workloads[0].peak_per_hour = 3000.0;
    workloads[1].off_peak_per_hour = 120.0;
    workloads[1].peak_per_hour = 2400.0;
    workloads[2].off_peak_per_hour = 160.0;
    workloads[2].peak_per_hour = 1600.0;
  }
  const std::vector<int> threads =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};

  std::printf("== Adaptive protocol switching%s ==\n", smoke ? " (smoke)" : "");
  std::printf(
      "Diurnal sinusoid (peak 21:00, trough 09:00), Zipf catalog; adaptive\n"
      "ladder vs the three uniform pins through the identical engine path.\n"
      "provisioned = mean per-window peak streams, summed over videos.\n\n");

  std::vector<Point> points;
  bool all_identical = true;
  bool all_gap_free = true;
  Table table({"peak arr/slot", "requests", "adaptive", "reactive pin",
               "dhb pin", "static pin", "frontier", "frontier ratio",
               "worst-pin ratio", "switches", "gaps", "identical"});
  for (const Workload& w : workloads) {
    Point p;
    p.workload = w;
    p.peak_arrivals_per_slot = w.peak_per_hour * 72.7 / 3600.0;

    const PolicyRun adaptive = run_policy(w, /*pin=*/-1, threads[0]);
    p.requests = adaptive.requests;
    p.adaptive_provisioned = adaptive.provisioned_total;
    p.switches = adaptive.switches;
    p.checksum = adaptive.checksum;
    p.bit_identical = true;
    for (size_t t = 1; t < threads.size(); ++t) {
      const PolicyRun again = run_policy(w, /*pin=*/-1, threads[t]);
      p.bit_identical = p.bit_identical && again.checksum == adaptive.checksum;
    }
    all_identical = all_identical && p.bit_identical;

    std::vector<PolicyRun> pins;
    pins.reserve(kModes);
    for (int m = 0; m < kModes; ++m) {
      pins.push_back(run_policy(w, m, threads[0]));
      p.pin_provisioned[m] = pins.back().provisioned_total;
      p.worst_pin_provisioned =
          std::max(p.worst_pin_provisioned, pins.back().provisioned_total);
    }
    for (int v = 0; v < w.catalog; ++v) {
      double best = pins[0].per_video[static_cast<size_t>(v)];
      for (int m = 1; m < kModes; ++m) {
        best = std::min(best, pins[static_cast<size_t>(m)]
                                  .per_video[static_cast<size_t>(v)]);
      }
      p.frontier_provisioned += best;
    }
    p.frontier_ratio =
        p.adaptive_provisioned /
        (p.frontier_provisioned > 0.0 ? p.frontier_provisioned : 1e-9);
    p.worst_pin_ratio =
        p.adaptive_provisioned /
        (p.worst_pin_provisioned > 0.0 ? p.worst_pin_provisioned : 1e-9);

    p.audit = run_gap_audit(w);
    all_gap_free = all_gap_free && p.audit.violations == 0 &&
                   p.audit.pending == 0 && p.audit.transitions > 0;

    table.add_row({format_double(p.peak_arrivals_per_slot, 2),
                   std::to_string(p.requests),
                   format_double(p.adaptive_provisioned, 2),
                   format_double(p.pin_provisioned[0], 2),
                   format_double(p.pin_provisioned[1], 2),
                   format_double(p.pin_provisioned[2], 2),
                   format_double(p.frontier_provisioned, 2),
                   format_double(p.frontier_ratio, 3),
                   format_double(p.worst_pin_ratio, 3),
                   std::to_string(p.switches),
                   std::to_string(p.audit.violations),
                   p.bit_identical ? "yes" : "NO"});
    points.push_back(p);
  }
  table.print();
  write_json(json_path, points, threads, all_identical, all_gap_free);

  bool ok = all_identical && all_gap_free;
  for (const Point& p : points) {
    if (p.frontier_ratio > 1.05) {
      std::printf("FAILURE: frontier ratio %.3f > 1.05 at peak %.2f/slot\n",
                  p.frontier_ratio, p.peak_arrivals_per_slot);
      ok = false;
    }
    if (p.worst_pin_ratio > 0.80) {
      std::printf("FAILURE: worst-pin ratio %.3f > 0.80 at peak %.2f/slot\n",
                  p.worst_pin_ratio, p.peak_arrivals_per_slot);
      ok = false;
    }
  }
  if (!all_identical) {
    std::printf("FAILURE: thread counts diverged — the shard decomposition "
                "leaked state\n");
  }
  if (!all_gap_free) {
    std::printf("FAILURE: migration gap audit found violations\n");
  }
  return ok ? 0 : 1;
}
