// Figure 8 — Compared maximum bandwidth requirements of NPB, UD and DHB
// protocols with 99 segments.
//
// Expected shape (paper §3): NPB has the smallest maximum (its constant
// stream count), DHB the highest, and the DHB-NPB difference never exceeds
// two streams ("a very reasonable price to pay for the better average
// performance"). UD's maximum is capped by FB's stream count.
#include <cstdio>

#include "bench_common.h"

#include "core/dhb_simulator.h"
#include "protocols/npb.h"
#include "protocols/ud.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace vod;
  using namespace vod::bench;

  const VideoParams video;
  const double npb_streams =
      static_cast<double>(NpbMapping::streams_for(video.num_segments));

  print_header(
      "Figure 8: maximum bandwidth vs request arrival rate (99 segments)",
      "columns in multiples of the video consumption rate b");

  Table table({"req/h", "UD", "DHB", "NPB", "DHB-NPB gap"});
  double worst_gap = 0.0;
  for (const double rate : paper_rates()) {
    const SlottedSimResult ud = run_ud_simulation(slotted_config(rate));
    const SlottedSimResult dhb =
        run_dhb_simulation(DhbConfig{}, slotted_config(rate));
    const double gap = dhb.max_streams - npb_streams;
    worst_gap = std::max(worst_gap, gap);
    table.add_numeric_row(
        {rate, ud.max_streams, dhb.max_streams, npb_streams, gap}, 1);
  }
  table.print();
  if (argc > 1) {
    // Optional CSV export for plotting: ./binary out.csv
    FILE* csv = std::fopen(argv[1], "w");
    if (csv != nullptr) {
      std::fputs(table.to_csv().c_str(), csv);
      std::fclose(csv);
      std::printf("\n(series written to %s)\n", argv[1]);
    }
  }

  std::printf(
      "\nShape checks: NPB smallest, DHB highest; worst DHB-NPB gap = %.1f "
      "streams (paper: never exceeds 2).\n",
      worst_gap);
  return 0;
}
