// Early departure — what DHB's never-cancel rule costs when viewers leave.
//
// DHB schedules a client's entire suffix at admission and never cancels a
// transmission, so a viewer who quits after L segments still leaves the
// tail of fresh instances on the wire. This bench quantifies the waste:
//
//   standard — every viewer admitted with on_request() (schedules all n);
//   oracle   — every viewer declares its (geometric, mean half the video)
//              watch length and is admitted with on_range(1, L): exactly
//              the transmissions some viewer actually consumes.
//
// The gap is an upper bound on what a cancellation or lazy-scheduling
// extension could recover. Expected shape: small at low rates (isolated
// viewers waste their own tails) converging toward zero at saturation
// (whatever the quitter scheduled, later arrivals share anyway).
#include "bench_common.h"

#include <cstdio>

#include "core/dhb.h"
#include "sim/random.h"
#include "util/table.h"

namespace {

using namespace vod;

double run(double rate, bool oracle, uint64_t seed) {
  const int n = 99;
  const double d = 7200.0 / 99.0;
  DhbConfig config;
  DhbScheduler scheduler(config);
  Rng rng(seed);
  Rng lengths = rng.fork(1);
  const double per_slot = rate / 3600.0 * d;

  const int warmup = 500, measured = 10000;
  uint64_t transmissions = 0;
  for (int step = 0; step < warmup + measured; ++step) {
    const auto tx = scheduler.advance_slot();
    if (step >= warmup) transmissions += tx.size();
    for (uint64_t a = rng.poisson(per_slot); a > 0; --a) {
      // Geometric watch length, mean ~ n/2, clamped to [1, n].
      const Segment len = static_cast<Segment>(std::min<uint64_t>(
          1 + lengths.geometric(2.0 / static_cast<double>(n)),
          static_cast<uint64_t>(n)));
      if (oracle) {
        scheduler.on_range(1, len);
      } else {
        scheduler.on_request();
      }
    }
  }
  return static_cast<double>(transmissions) / static_cast<double>(measured);
}

}  // namespace

int main() {
  using namespace vod::bench;

  print_header("Early departure: never-cancel waste (99 segments)",
               "viewers watch a geometric length, mean ~half the video");

  vod::Table table({"req/h", "standard DHB", "oracle (declared)",
                    "waste %"});
  for (const double rate : {2.0, 10.0, 50.0, 200.0, 1000.0}) {
    const double standard = run(rate, false, 20010416);
    const double oracle = run(rate, true, 20010416);
    table.add_numeric_row(
        {rate, standard, oracle, 100.0 * (standard - oracle) / standard}, 2);
  }
  table.print();

  std::printf(
      "\nShape checks: the waste of scheduling whole suffixes for viewers\n"
      "who leave early shrinks with load — at saturation later arrivals\n"
      "share the quitter's tail anyway, so DHB's never-cancel simplicity\n"
      "costs little exactly where bandwidth matters most.\n");
  return 0;
}
